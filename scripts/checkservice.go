//go:build ignore

// Checkservice is the partitiond end-to-end smoke: it starts the daemon
// on an ephemeral port, registers two tenants by profile upload, requests
// a plan for the pair, and cross-checks the served allocation and group
// miss ratio against the offline optpart CLI run on the same profiles at
// the same geometry — the two paths must agree exactly (the service's
// bit-exactness contract, observed end to end through both CLIs). The
// registrations are staged to exercise the plan-lifecycle surface: the
// first tenant's epoch is captured from GET /v1/plan, a long-poll on
// GET /v1/plan/changes is parked, and the second registration must wake
// it with an epoch event whose per-tenant deltas exactly match the
// difference of the two served plans. It also asserts the observability
// surface: traceparent propagation on a plan request, the Prometheus
// exposition at /metrics/prom (including the service_plan_epoch gauge),
// the flight recorder at /debug/requests, and the /debug/epochs
// timeline. It then SIGTERMs the daemon and asserts the drain contract:
// exit status 0 and a manifest that parses and names the tool.
//
// Usage:
//
//	go run scripts/checkservice.go PARTITIOND_BIN OPTPART_BIN A.hotl B.hotl
//
// The binaries are prebuilt by the caller (go build -o ...) so the
// daemon receives signals directly rather than through a go-run wrapper.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"
)

const (
	units         = 256
	blocksPerUnit = 4
)

func main() {
	if len(os.Args) != 5 {
		fail("usage: checkservice PARTITIOND_BIN OPTPART_BIN A.hotl B.hotl")
	}
	daemonBin, optpartBin := os.Args[1], os.Args[2]
	profiles := os.Args[3:5]

	dir, err := os.MkdirTemp("", "checkservice-")
	if err != nil {
		fail("%v", err)
	}
	defer os.RemoveAll(dir)
	addrFile := filepath.Join(dir, "addr")
	manifestPath := filepath.Join(dir, "manifest.json")

	// Start the daemon on an ephemeral port; the bound address lands in
	// addr-file once the listener is up.
	daemon := exec.Command(daemonBin,
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-store", filepath.Join(dir, "store"),
		"-units", strconv.Itoa(units),
		"-blocksperunit", strconv.Itoa(blocksPerUnit),
		"-manifest", manifestPath,
	)
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		fail("start partitiond: %v", err)
	}
	defer daemon.Process.Kill()

	base := "http://" + waitForAddr(addrFile)

	// Register the tenants one at a time, under names "a" and "b" so the
	// plan's allocation order is pinned to the argument order. The stagger
	// produces two distinct epochs, which the change-feed check below
	// diffs against each other.
	names := []string{"a", "b"}
	registerTenant(base, names[0], profiles[0])
	plan1 := waitForServedPlan(base, names[:1])

	// Park a long-poll past plan1's epoch before the churn that ends it.
	pollCh := make(chan []byte, 1)
	go func() {
		status, body := doReq("GET", fmt.Sprintf(
			"%s/v1/plan/changes?since_epoch=%d&wait_ms=10000", base, plan1.Epoch), nil)
		if status != http.StatusOK {
			fail("long-poll /v1/plan/changes = %d %s", status, body)
		}
		pollCh <- body
	}()
	time.Sleep(50 * time.Millisecond) // give the poll time to park

	registerTenant(base, names[1], profiles[1])
	plan2 := waitForServedPlan(base, names)
	checkChangeFeedEvent(pollCh, plan1, plan2)

	status, resp := doReq("POST", base+"/v1/plan", []byte(`{"tenants":["a","b"]}`))
	if status != http.StatusOK {
		fail("POST /v1/plan = %d %s", status, resp)
	}
	var plan struct {
		Alloc          []int   `json:"alloc"`
		GroupMissRatio float64 `json:"group_miss_ratio"`
	}
	if err := json.Unmarshal(resp, &plan); err != nil {
		fail("plan does not parse: %v: %s", err, resp)
	}
	if len(plan.Alloc) != 2 {
		fail("plan has %d allocations, want 2: %s", len(plan.Alloc), resp)
	}

	// The offline optimizer on the same profiles at the same geometry.
	wantAlloc, wantMR := offlineOptimal(optpartBin, profiles)
	if plan.Alloc[0] != wantAlloc[0] || plan.Alloc[1] != wantAlloc[1] {
		fail("daemon alloc %v, offline optpart alloc %v", plan.Alloc, wantAlloc)
	}
	if got := fmt.Sprintf("%.6f", plan.GroupMissRatio); got != wantMR {
		fail("daemon group miss ratio %s, offline optpart %s", got, wantMR)
	}

	if status, _ := doReq("GET", base+"/readyz", nil); status != http.StatusOK {
		fail("readyz = %d", status)
	}

	checkObservability(base)

	// Drain contract: SIGTERM, clean exit 0, manifest written and parseable.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		fail("signal: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- daemon.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			fail("partitiond exit after SIGTERM: %v (want status 0)", err)
		}
	case <-time.After(30 * time.Second):
		fail("partitiond did not drain within 30s of SIGTERM")
	}
	data, err := os.ReadFile(manifestPath)
	if err != nil {
		fail("drained daemon left no manifest: %v", err)
	}
	var m struct {
		Tool string `json:"tool"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		fail("manifest does not parse: %v", err)
	}
	if m.Tool != "partitiond" {
		fail("manifest tool = %q, want partitiond", m.Tool)
	}
	fmt.Printf("checkservice OK: plan %v mr %s matches offline optpart; clean drain with manifest\n",
		plan.Alloc, wantMR)
}

// servedPlan is the slice of the plan document the lifecycle checks
// need: identity (epoch), membership, and the allocation.
type servedPlan struct {
	Epoch    int64    `json:"epoch"`
	Tenants  []string `json:"tenants"`
	Alloc    []int    `json:"alloc"`
	Degraded bool     `json:"degraded"`
}

func registerTenant(base, name, profilePath string) {
	body, err := os.ReadFile(profilePath)
	if err != nil {
		fail("%v", err)
	}
	status, resp := doReq("PUT", base+"/v1/tenants/"+name, body)
	if status != http.StatusOK {
		fail("PUT tenant %s = %d %s", name, status, resp)
	}
}

// waitForServedPlan polls GET /v1/plan until the background loop serves
// a fresh plan covering exactly the wanted tenant set.
func waitForServedPlan(base string, want []string) servedPlan {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		status, body := doReq("GET", base+"/v1/plan", nil)
		if status == http.StatusOK {
			var p servedPlan
			if err := json.Unmarshal(body, &p); err != nil {
				fail("served plan does not parse: %v: %s", err, body)
			}
			if !p.Degraded && len(p.Tenants) == len(want) {
				match := true
				for i := range want {
					if p.Tenants[i] != want[i] {
						match = false
						break
					}
				}
				if match {
					return p
				}
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	fail("daemon never served a fresh plan for %v", want)
	return servedPlan{}
}

// checkChangeFeedEvent receives the parked long-poll's response and
// cross-checks the reported epoch event against the two served plans:
// the event must be plan2's epoch, and every per-tenant delta must be
// exactly the difference between the allocations the daemon actually
// served — the feed reports what a client would compute from its own
// polls, no more and no less.
func checkChangeFeedEvent(pollCh <-chan []byte, plan1, plan2 servedPlan) {
	var body []byte
	select {
	case body = <-pollCh:
	case <-time.After(15 * time.Second):
		fail("long-poll on /v1/plan/changes never returned after churn")
	}
	var resp struct {
		LastEpoch int64 `json:"last_epoch"`
		Events    []struct {
			Provenance struct {
				Epoch int64  `json:"epoch"`
				Cause string `json:"cause"`
			} `json:"provenance"`
			Diff struct {
				FromEpoch int64 `json:"from_epoch"`
				ToEpoch   int64 `json:"to_epoch"`
				Deltas    []struct {
					Tenant     string `json:"tenant"`
					FromUnits  int    `json:"from_units"`
					ToUnits    int    `json:"to_units"`
					DeltaUnits int    `json:"delta_units"`
				} `json:"deltas"`
			} `json:"diff"`
		} `json:"events"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		fail("change-feed response does not parse: %v: %s", err, body)
	}
	if len(resp.Events) == 0 {
		fail("change feed woke with no events: %s", body)
	}
	unitsOf := func(p servedPlan) map[string]int {
		m := make(map[string]int, len(p.Tenants))
		for i, n := range p.Tenants {
			m[n] = p.Alloc[i]
		}
		return m
	}
	from, to := unitsOf(plan1), unitsOf(plan2)
	for _, ev := range resp.Events {
		if ev.Provenance.Epoch != plan2.Epoch {
			continue
		}
		if ev.Provenance.Cause != "churn" {
			fail("epoch %d event cause %q, want churn", plan2.Epoch, ev.Provenance.Cause)
		}
		if ev.Diff.FromEpoch != plan1.Epoch || ev.Diff.ToEpoch != plan2.Epoch {
			fail("diff bounds %d->%d, want %d->%d",
				ev.Diff.FromEpoch, ev.Diff.ToEpoch, plan1.Epoch, plan2.Epoch)
		}
		for _, d := range ev.Diff.Deltas {
			if d.FromUnits != from[d.Tenant] || d.ToUnits != to[d.Tenant] ||
				d.DeltaUnits != d.ToUnits-d.FromUnits {
				fail("delta for %s is %+v, served plans say %d -> %d",
					d.Tenant, d, from[d.Tenant], to[d.Tenant])
			}
		}
		// Every tenant that moved has an entry.
		reported := make(map[string]bool, len(ev.Diff.Deltas))
		for _, d := range ev.Diff.Deltas {
			reported[d.Tenant] = true
		}
		for n, u := range to {
			if u != from[n] && !reported[n] {
				fail("tenant %s moved %d -> %d but the event has no delta for it", n, from[n], u)
			}
		}
		return
	}
	fail("change feed never reported epoch %d: %s", plan2.Epoch, body)
}

// checkObservability asserts the daemon's request-telemetry surface:
// W3C trace-context propagation on a plan request, the Prometheus text
// exposition at /metrics/prom (content type, HELP/TYPE metadata,
// monotone cumulative histogram buckets, a live service_requests_total
// rollup, and the service_plan_epoch gauge tracking the published
// epoch), a non-empty flight recorder at /debug/requests, and the
// /debug/epochs timeline rendering the audited transitions.
func checkObservability(base string) {
	// A well-formed caller traceparent: the daemon must keep the trace
	// ID (so the caller can correlate) but mint its own span ID.
	const callerTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	const callerSpan = "00f067aa0ba902b7"
	status, _, hdr := doReqTrace("POST", base+"/v1/plan",
		[]byte(`{"tenants":["a","b"]}`), "00-"+callerTrace+"-"+callerSpan+"-01")
	if status != http.StatusOK {
		fail("traced POST /v1/plan = %d", status)
	}
	echo := hdr.Get("traceparent")
	parts := strings.Split(echo, "-")
	if len(parts) != 4 || parts[1] != callerTrace {
		fail("traceparent trace ID not propagated: sent %s, echoed %q", callerTrace, echo)
	}
	if parts[2] == callerSpan {
		fail("daemon echoed the caller's span ID instead of minting its own: %q", echo)
	}

	status, prom, hdr := doReqTrace("GET", base+"/metrics/prom", nil, "")
	if status != http.StatusOK {
		fail("GET /metrics/prom = %d", status)
	}
	const wantCT = "text/plain; version=0.0.4; charset=utf-8"
	if ct := hdr.Get("Content-Type"); ct != wantCT {
		fail("/metrics/prom content type %q, want %q", ct, wantCT)
	}
	text := string(prom)
	if !strings.Contains(text, "# HELP ") || !strings.Contains(text, "# TYPE ") {
		fail("/metrics/prom exposition lacks HELP/TYPE metadata:\n%s", text)
	}
	total, sawTotal := int64(0), false
	planEpoch, sawPlanEpoch := int64(0), false
	prevBucketMetric, prevBucket := "", int64(-1)
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "service_plan_epoch ") {
			v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				fail("service_plan_epoch line %q: %v", line, err)
			}
			planEpoch, sawPlanEpoch = v, true
		}
		if strings.HasPrefix(line, "service_requests_total ") {
			v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				fail("service_requests_total line %q: %v", line, err)
			}
			total, sawTotal = v, true
		}
		if i := strings.Index(line, "_bucket{le="); i >= 0 && !strings.HasPrefix(line, "#") {
			metric := line[:i]
			v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				fail("bucket line %q: %v", line, err)
			}
			if metric != prevBucketMetric {
				prevBucketMetric, prevBucket = metric, -1
			}
			if v < prevBucket {
				fail("%s cumulative buckets not monotone: %d after %d", metric, v, prevBucket)
			}
			prevBucket = v
		}
	}
	if !sawTotal || total < 1 {
		fail("service_requests_total missing or zero after served requests (saw=%v total=%d)", sawTotal, total)
	}
	if prevBucketMetric == "" {
		fail("/metrics/prom exposition carries no histogram buckets")
	}
	if !sawPlanEpoch || planEpoch < 2 {
		fail("service_plan_epoch missing or behind after two epochs (saw=%v epoch=%d)", sawPlanEpoch, planEpoch)
	}

	status, epochs, _ := doReqTrace("GET", base+"/debug/epochs", nil, "")
	if status != http.StatusOK {
		fail("GET /debug/epochs = %d", status)
	}
	if !strings.Contains(string(epochs), "cause=churn") {
		fail("/debug/epochs timeline lacks provenance lines:\n%s", epochs)
	}

	status, flight, _ := doReqTrace("GET", base+"/debug/requests", nil, "")
	if status != http.StatusOK {
		fail("GET /debug/requests = %d", status)
	}
	var snap struct {
		Total  int64 `json:"total"`
		Recent []struct {
			TraceID string `json:"trace_id"`
		} `json:"recent"`
	}
	if err := json.Unmarshal(flight, &snap); err != nil {
		fail("/debug/requests does not parse: %v: %s", err, flight)
	}
	if snap.Total < 1 || len(snap.Recent) == 0 {
		fail("flight recorder empty after served requests: %s", flight)
	}
	if snap.Recent[0].TraceID == "" {
		fail("flight record lacks a trace ID: %s", flight)
	}
}

// waitForAddr polls the daemon's addr-file until the bound address
// appears.
func waitForAddr(path string) string {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(path); err == nil {
			if addr := strings.TrimSpace(string(data)); addr != "" {
				return addr
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	fail("daemon never wrote its address to %s", path)
	return ""
}

// offlineOptimal runs the optpart CLI on the profiles and parses the
// Optimal scheme's block: per-program unit allocations and the group
// miss ratio as printed (6 decimals).
func offlineOptimal(bin string, profiles []string) ([2]int, string) {
	args := []string{
		"-units", strconv.Itoa(units),
		"-blocksperunit", strconv.Itoa(blocksPerUnit),
		"-baselines=false",
	}
	args = append(args, profiles...)
	out, err := exec.Command(bin, args...).Output()
	if err != nil {
		fail("optpart: %v", err)
	}
	lines := strings.Split(string(out), "\n")
	for i, line := range lines {
		if !strings.HasPrefix(line, "Optimal ") {
			continue
		}
		f := strings.Fields(line)
		mr := f[len(f)-1]
		var alloc [2]int
		for j := 0; j < 2; j++ {
			df := strings.Fields(lines[i+1+j])
			// "name NNN units mr 0.NNNNNN"
			u, err := strconv.Atoi(df[1])
			if err != nil {
				fail("optpart detail line %q: %v", lines[i+1+j], err)
			}
			alloc[j] = u
		}
		return alloc, mr
	}
	fail("optpart output lacks the Optimal scheme:\n%s", out)
	return [2]int{}, ""
}

func doReq(method, url string, body []byte) (int, []byte) {
	status, data, _ := doReqTrace(method, url, body, "")
	return status, data
}

// doReqTrace is doReq plus an optional traceparent header on the
// request, returning the response headers for echo assertions.
func doReqTrace(method, url string, body []byte, traceparent string) (int, []byte, http.Header) {
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		fail("%v", err)
	}
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fail("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		fail("%v", err)
	}
	return resp.StatusCode, data, resp.Header
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "checkservice: "+format+"\n", args...)
	os.Exit(1)
}
