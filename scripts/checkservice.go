//go:build ignore

// Checkservice is the partitiond end-to-end smoke: it starts the daemon
// on an ephemeral port, registers two tenants by profile upload, requests
// a plan for the pair, and cross-checks the served allocation and group
// miss ratio against the offline optpart CLI run on the same profiles at
// the same geometry — the two paths must agree exactly (the service's
// bit-exactness contract, observed end to end through both CLIs). It
// also asserts the observability surface: traceparent propagation on a
// plan request, the Prometheus exposition at /metrics/prom, and the
// flight recorder at /debug/requests. It then SIGTERMs the daemon and
// asserts the drain contract: exit status 0 and a manifest that parses
// and names the tool.
//
// Usage:
//
//	go run scripts/checkservice.go PARTITIOND_BIN OPTPART_BIN A.hotl B.hotl
//
// The binaries are prebuilt by the caller (go build -o ...) so the
// daemon receives signals directly rather than through a go-run wrapper.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"
)

const (
	units         = 256
	blocksPerUnit = 4
)

func main() {
	if len(os.Args) != 5 {
		fail("usage: checkservice PARTITIOND_BIN OPTPART_BIN A.hotl B.hotl")
	}
	daemonBin, optpartBin := os.Args[1], os.Args[2]
	profiles := os.Args[3:5]

	dir, err := os.MkdirTemp("", "checkservice-")
	if err != nil {
		fail("%v", err)
	}
	defer os.RemoveAll(dir)
	addrFile := filepath.Join(dir, "addr")
	manifestPath := filepath.Join(dir, "manifest.json")

	// Start the daemon on an ephemeral port; the bound address lands in
	// addr-file once the listener is up.
	daemon := exec.Command(daemonBin,
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-store", filepath.Join(dir, "store"),
		"-units", strconv.Itoa(units),
		"-blocksperunit", strconv.Itoa(blocksPerUnit),
		"-manifest", manifestPath,
	)
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		fail("start partitiond: %v", err)
	}
	defer daemon.Process.Kill()

	base := "http://" + waitForAddr(addrFile)

	// Register both tenants by profile upload, under names "a" and "b"
	// so the plan's allocation order is pinned to the argument order.
	names := []string{"a", "b"}
	for i, path := range profiles {
		body, err := os.ReadFile(path)
		if err != nil {
			fail("%v", err)
		}
		status, resp := doReq("PUT", base+"/v1/tenants/"+names[i], body)
		if status != http.StatusOK {
			fail("PUT tenant %s = %d %s", names[i], status, resp)
		}
	}

	status, resp := doReq("POST", base+"/v1/plan", []byte(`{"tenants":["a","b"]}`))
	if status != http.StatusOK {
		fail("POST /v1/plan = %d %s", status, resp)
	}
	var plan struct {
		Alloc          []int   `json:"alloc"`
		GroupMissRatio float64 `json:"group_miss_ratio"`
	}
	if err := json.Unmarshal(resp, &plan); err != nil {
		fail("plan does not parse: %v: %s", err, resp)
	}
	if len(plan.Alloc) != 2 {
		fail("plan has %d allocations, want 2: %s", len(plan.Alloc), resp)
	}

	// The offline optimizer on the same profiles at the same geometry.
	wantAlloc, wantMR := offlineOptimal(optpartBin, profiles)
	if plan.Alloc[0] != wantAlloc[0] || plan.Alloc[1] != wantAlloc[1] {
		fail("daemon alloc %v, offline optpart alloc %v", plan.Alloc, wantAlloc)
	}
	if got := fmt.Sprintf("%.6f", plan.GroupMissRatio); got != wantMR {
		fail("daemon group miss ratio %s, offline optpart %s", got, wantMR)
	}

	if status, _ := doReq("GET", base+"/readyz", nil); status != http.StatusOK {
		fail("readyz = %d", status)
	}

	checkObservability(base)

	// Drain contract: SIGTERM, clean exit 0, manifest written and parseable.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		fail("signal: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- daemon.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			fail("partitiond exit after SIGTERM: %v (want status 0)", err)
		}
	case <-time.After(30 * time.Second):
		fail("partitiond did not drain within 30s of SIGTERM")
	}
	data, err := os.ReadFile(manifestPath)
	if err != nil {
		fail("drained daemon left no manifest: %v", err)
	}
	var m struct {
		Tool string `json:"tool"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		fail("manifest does not parse: %v", err)
	}
	if m.Tool != "partitiond" {
		fail("manifest tool = %q, want partitiond", m.Tool)
	}
	fmt.Printf("checkservice OK: plan %v mr %s matches offline optpart; clean drain with manifest\n",
		plan.Alloc, wantMR)
}

// checkObservability asserts the daemon's request-telemetry surface:
// W3C trace-context propagation on a plan request, the Prometheus text
// exposition at /metrics/prom (content type, HELP/TYPE metadata,
// monotone cumulative histogram buckets, a live service_requests_total
// rollup), and a non-empty flight recorder at /debug/requests.
func checkObservability(base string) {
	// A well-formed caller traceparent: the daemon must keep the trace
	// ID (so the caller can correlate) but mint its own span ID.
	const callerTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	const callerSpan = "00f067aa0ba902b7"
	status, _, hdr := doReqTrace("POST", base+"/v1/plan",
		[]byte(`{"tenants":["a","b"]}`), "00-"+callerTrace+"-"+callerSpan+"-01")
	if status != http.StatusOK {
		fail("traced POST /v1/plan = %d", status)
	}
	echo := hdr.Get("traceparent")
	parts := strings.Split(echo, "-")
	if len(parts) != 4 || parts[1] != callerTrace {
		fail("traceparent trace ID not propagated: sent %s, echoed %q", callerTrace, echo)
	}
	if parts[2] == callerSpan {
		fail("daemon echoed the caller's span ID instead of minting its own: %q", echo)
	}

	status, prom, hdr := doReqTrace("GET", base+"/metrics/prom", nil, "")
	if status != http.StatusOK {
		fail("GET /metrics/prom = %d", status)
	}
	const wantCT = "text/plain; version=0.0.4; charset=utf-8"
	if ct := hdr.Get("Content-Type"); ct != wantCT {
		fail("/metrics/prom content type %q, want %q", ct, wantCT)
	}
	text := string(prom)
	if !strings.Contains(text, "# HELP ") || !strings.Contains(text, "# TYPE ") {
		fail("/metrics/prom exposition lacks HELP/TYPE metadata:\n%s", text)
	}
	total, sawTotal := int64(0), false
	prevBucketMetric, prevBucket := "", int64(-1)
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "service_requests_total ") {
			v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				fail("service_requests_total line %q: %v", line, err)
			}
			total, sawTotal = v, true
		}
		if i := strings.Index(line, "_bucket{le="); i >= 0 && !strings.HasPrefix(line, "#") {
			metric := line[:i]
			v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				fail("bucket line %q: %v", line, err)
			}
			if metric != prevBucketMetric {
				prevBucketMetric, prevBucket = metric, -1
			}
			if v < prevBucket {
				fail("%s cumulative buckets not monotone: %d after %d", metric, v, prevBucket)
			}
			prevBucket = v
		}
	}
	if !sawTotal || total < 1 {
		fail("service_requests_total missing or zero after served requests (saw=%v total=%d)", sawTotal, total)
	}
	if prevBucketMetric == "" {
		fail("/metrics/prom exposition carries no histogram buckets")
	}

	status, flight, _ := doReqTrace("GET", base+"/debug/requests", nil, "")
	if status != http.StatusOK {
		fail("GET /debug/requests = %d", status)
	}
	var snap struct {
		Total  int64 `json:"total"`
		Recent []struct {
			TraceID string `json:"trace_id"`
		} `json:"recent"`
	}
	if err := json.Unmarshal(flight, &snap); err != nil {
		fail("/debug/requests does not parse: %v: %s", err, flight)
	}
	if snap.Total < 1 || len(snap.Recent) == 0 {
		fail("flight recorder empty after served requests: %s", flight)
	}
	if snap.Recent[0].TraceID == "" {
		fail("flight record lacks a trace ID: %s", flight)
	}
}

// waitForAddr polls the daemon's addr-file until the bound address
// appears.
func waitForAddr(path string) string {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(path); err == nil {
			if addr := strings.TrimSpace(string(data)); addr != "" {
				return addr
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	fail("daemon never wrote its address to %s", path)
	return ""
}

// offlineOptimal runs the optpart CLI on the profiles and parses the
// Optimal scheme's block: per-program unit allocations and the group
// miss ratio as printed (6 decimals).
func offlineOptimal(bin string, profiles []string) ([2]int, string) {
	args := []string{
		"-units", strconv.Itoa(units),
		"-blocksperunit", strconv.Itoa(blocksPerUnit),
		"-baselines=false",
	}
	args = append(args, profiles...)
	out, err := exec.Command(bin, args...).Output()
	if err != nil {
		fail("optpart: %v", err)
	}
	lines := strings.Split(string(out), "\n")
	for i, line := range lines {
		if !strings.HasPrefix(line, "Optimal ") {
			continue
		}
		f := strings.Fields(line)
		mr := f[len(f)-1]
		var alloc [2]int
		for j := 0; j < 2; j++ {
			df := strings.Fields(lines[i+1+j])
			// "name NNN units mr 0.NNNNNN"
			u, err := strconv.Atoi(df[1])
			if err != nil {
				fail("optpart detail line %q: %v", lines[i+1+j], err)
			}
			alloc[j] = u
		}
		return alloc, mr
	}
	fail("optpart output lacks the Optimal scheme:\n%s", out)
	return [2]int{}, ""
}

func doReq(method, url string, body []byte) (int, []byte) {
	status, data, _ := doReqTrace(method, url, body, "")
	return status, data
}

// doReqTrace is doReq plus an optional traceparent header on the
// request, returning the response headers for echo assertions.
func doReqTrace(method, url string, body []byte, traceparent string) (int, []byte, http.Header) {
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		fail("%v", err)
	}
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fail("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		fail("%v", err)
	}
	return resp.StatusCode, data, resp.Header
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "checkservice: "+format+"\n", args...)
	os.Exit(1)
}
