//go:build ignore

// Checkmanifest asserts that a run manifest written by cmd/experiments is
// well-formed: it exists, parses as JSON, carries the expected schema
// version and tool name, recorded at least one completed group, and — the
// smoke gate's whole point — zero failed groups. CI runs it against the
// manifest of an `experiments -small` run:
//
//	go run scripts/checkmanifest.go /tmp/obs-smoke/manifest.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) != 2 {
		fail("usage: go run scripts/checkmanifest.go MANIFEST.json")
	}
	path := os.Args[1]
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var m struct {
		ManifestVersion int            `json:"manifest_version"`
		Tool            string         `json:"tool"`
		Config          map[string]any `json:"config"`
		Stages          []struct {
			Name   string `json:"name"`
			WallNS int64  `json:"wall_ns"`
		} `json:"stages"`
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		fail("%s: not valid JSON: %v", path, err)
	}
	if m.ManifestVersion != 1 {
		fail("%s: manifest_version = %d, want 1", path, m.ManifestVersion)
	}
	if m.Tool != "experiments" {
		fail("%s: tool = %q, want \"experiments\"", path, m.Tool)
	}
	if len(m.Config) == 0 {
		fail("%s: empty config section", path)
	}
	if len(m.Stages) == 0 {
		fail("%s: no stage spans recorded", path)
	}
	if n := m.Counters["experiment.groups_completed"]; n <= 0 {
		fail("%s: experiment.groups_completed = %d, want > 0", path, n)
	}
	if n := m.Counters["experiment.groups_failed"]; n != 0 {
		fail("%s: experiment.groups_failed = %d, want 0", path, n)
	}
	fmt.Printf("manifest OK: %s (%d groups completed, %d stages)\n",
		path, m.Counters["experiment.groups_completed"], len(m.Stages))
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "checkmanifest: "+format+"\n", args...)
	os.Exit(1)
}
