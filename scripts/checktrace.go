//go:build ignore

// Checktrace asserts that a -trace-events file written by cmd/experiments
// is a well-formed Chrome trace_event document: it parses as JSON, holds
// at least one complete ("X") event, names the expected pipeline spans
// (a DP solve, a reuse collection, a checkpoint flush), and contains at
// least one parented span — the hierarchy is the feature, so a flat
// timeline fails the gate. CI runs it against the trace of an
// `experiments -small -trace-events` run:
//
//	go run scripts/checktrace.go /tmp/obs-smoke/trace.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

func main() {
	if len(os.Args) != 2 {
		fail("usage: go run scripts/checktrace.go TRACE.json")
	}
	path := os.Args[1]
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TID  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		fail("%s: not valid JSON: %v", path, err)
	}
	if doc.DisplayTimeUnit != "ms" {
		fail("%s: displayTimeUnit = %q, want \"ms\"", path, doc.DisplayTimeUnit)
	}
	var complete, parented, lanes int
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			lanes++
		case "X":
			complete++
			names[ev.Name] = true
			if _, ok := ev.Args["parent"]; ok {
				parented++
			}
		}
	}
	if complete == 0 {
		fail("%s: no complete (\"X\") events", path)
	}
	if parented == 0 {
		fail("%s: no parented spans — the span hierarchy is missing", path)
	}
	if lanes == 0 {
		fail("%s: no thread_name lane metadata", path)
	}
	for _, want := range []string{"experiment.dp_solve", "workload.", "experiment.checkpoint_"} {
		found := false
		for n := range names {
			if strings.HasPrefix(n, strings.TrimSuffix(want, ".")) {
				found = true
				break
			}
		}
		if !found {
			fail("%s: no span matching %q among %d names", path, want, len(names))
		}
	}
	fmt.Printf("trace OK: %s (%d events, %d parented, %d lanes)\n",
		path, complete, parented, lanes)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "checktrace: "+format+"\n", args...)
	os.Exit(1)
}
