//go:build ignore

// Checksolver asserts that an optpart run manifest recorded the solver
// ladder's behavior: the manifest parses, names the optpart tool, carries
// a non-empty solver_paths map (the SolverPath each DP scheme took), and
// counted at least one DP solve. An optional second argument pins the
// rung the Optimal scheme must have taken — the CI smoke uses it to prove
// the large-C configuration really exercises the refinement rung:
//
//	go run scripts/checksolver.go /tmp/obs-smoke/optpart.json refine
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) != 2 && len(os.Args) != 3 {
		fail("usage: go run scripts/checksolver.go MANIFEST.json [want-optimal-path]")
	}
	path := os.Args[1]
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var m struct {
		ManifestVersion int    `json:"manifest_version"`
		Tool            string `json:"tool"`
		Config          struct {
			Solver      string            `json:"solver"`
			SolverPaths map[string]string `json:"solver_paths"`
		} `json:"config"`
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		fail("%s: not valid JSON: %v", path, err)
	}
	if m.ManifestVersion != 1 {
		fail("%s: manifest_version = %d, want 1", path, m.ManifestVersion)
	}
	if m.Tool != "optpart" {
		fail("%s: tool = %q, want \"optpart\"", path, m.Tool)
	}
	if m.Config.Solver == "" {
		fail("%s: config.solver missing", path)
	}
	if len(m.Config.SolverPaths) == 0 {
		fail("%s: config.solver_paths empty — no DP solve recorded its rung", path)
	}
	if n := m.Counters["partition.solves"]; n <= 0 {
		fail("%s: partition.solves = %d, want > 0", path, n)
	}
	if len(os.Args) == 3 {
		want := os.Args[2]
		got, ok := m.Config.SolverPaths["Optimal"]
		if !ok {
			fail("%s: no solver path recorded for the Optimal scheme", path)
		}
		if got != want {
			fail("%s: Optimal solver path = %q, want %q", path, got, want)
		}
	}
	fmt.Printf("solver manifest OK: %s (solver=%s, %d schemes recorded, %d solves)\n",
		path, m.Config.Solver, len(m.Config.SolverPaths), m.Counters["partition.solves"])
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "checksolver: "+format+"\n", args...)
	os.Exit(1)
}
