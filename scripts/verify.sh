#!/bin/sh
# Extended verify gate: the tier-1 checks (build, vet, vetkit, tests with
# shuffled order, race), a short fuzz smoke run per native fuzz target,
# and (when the tool is installed) a vulnerability scan. Run from the
# repository root:
#
#   sh scripts/verify.sh            # everything
#   FUZZTIME=30s sh scripts/verify.sh
#
# Exit code is non-zero on any tier-1, vetkit, or fuzz failure, and on
# real govulncheck findings; a missing govulncheck binary prints an
# explicit SKIP line and does not fail, so the gate works offline.
set -eu

FUZZTIME="${FUZZTIME:-5s}"

echo "== tier-1: go build ./..."
go build ./...
echo "== tier-1: go vet ./..."
go vet ./...
echo "== tier-1: vetkit (project invariant analyzers, DESIGN.md §10)"
# The gate has a 60-second budget (mirrored in CI); a hung or quadratic
# analyzer fails here instead of stalling the whole verify run.
if command -v timeout >/dev/null 2>&1; then
	timeout 60 go run ./cmd/vetkit ./...
else
	go run ./cmd/vetkit ./...
fi
echo "== tier-1: go test -shuffle=on ./..."
go test -shuffle=on ./...
echo "== tier-1: go test -race -shuffle=on ./..."
go test -race -shuffle=on ./...

# Fuzz smoke: each target runs for a few seconds so input-hardening
# regressions (parser panics, reference divergence) surface in CI-sized
# time. Targets are pinned here, not discovered, so a renamed target
# fails loudly instead of silently dropping out of the gate.
echo "== fuzz smoke (${FUZZTIME} per target)"
go test -run=NONE -fuzz='^FuzzProfileRoundTrip$' -fuzztime="$FUZZTIME" ./internal/profileio
go test -run=NONE -fuzz='^FuzzCollect$' -fuzztime="$FUZZTIME" ./internal/reuse
go test -run=NONE -fuzz='^FuzzOptimize$' -fuzztime="$FUZZTIME" ./internal/partition

# Observability smoke: a real -small run must produce a manifest that
# exists, parses, and reports zero failed groups (checkmanifest also
# verifies schema version, stage spans, and a positive completed count),
# plus a Chrome trace_event timeline with the expected parented pipeline
# spans (checktrace) and a metrics time series folded into the manifest.
echo "== obs smoke: experiments -small + manifest + trace checks"
OBS_SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$OBS_SMOKE_DIR"' EXIT
go run ./cmd/experiments -small -out "$OBS_SMOKE_DIR" \
	-manifest "$OBS_SMOKE_DIR/manifest.json" \
	-trace-events "$OBS_SMOKE_DIR/trace.json" \
	-metrics-interval 50ms >/dev/null
go run scripts/checkmanifest.go "$OBS_SMOKE_DIR/manifest.json"
go run scripts/checktrace.go "$OBS_SMOKE_DIR/trace.json"

# Solver-ladder smoke: a large-C auto solve through the real optimizer
# CLI must take the coarse-to-fine refinement rung and record it.
# Profiles come from hotlprof at the reduced geometry; the solve itself
# runs at units=16384 (-baselines=false skips the quadratic
# baseline-constrained DPs, which are not what this gate measures), and
# checksolver pins the Optimal scheme's recorded path to "refine".
echo "== obs smoke: optpart large-C solver path"
go run ./cmd/hotlprof -workload lbm -small -out "$OBS_SMOKE_DIR/lbm.hotl" >/dev/null
go run ./cmd/hotlprof -workload mcf -small -out "$OBS_SMOKE_DIR/mcf.hotl" >/dev/null
go run ./cmd/optpart -units 16384 -blocksperunit 1 -solver auto -baselines=false \
	-manifest "$OBS_SMOKE_DIR/optpart.json" \
	"$OBS_SMOKE_DIR/lbm.hotl" "$OBS_SMOKE_DIR/mcf.hotl" >/dev/null
go run scripts/checksolver.go "$OBS_SMOKE_DIR/optpart.json" refine

# Service smoke: the partitiond daemon end to end — register two tenants,
# request a plan, cross-check it against the offline optpart CLI on the
# same profiles (the bit-exactness contract through both front ends),
# SIGTERM, and assert the clean-drain contract (exit 0, parseable
# manifest). Binaries are prebuilt so the daemon receives the signal
# directly rather than through a go-run wrapper.
echo "== service smoke: partitiond register/plan/drain"
go build -o "$OBS_SMOKE_DIR/partitiond" ./cmd/partitiond
go build -o "$OBS_SMOKE_DIR/optpart" ./cmd/optpart
go run scripts/checkservice.go "$OBS_SMOKE_DIR/partitiond" "$OBS_SMOKE_DIR/optpart" \
	"$OBS_SMOKE_DIR/lbm.hotl" "$OBS_SMOKE_DIR/mcf.hotl"

# Perf-regression watch: advisory here (hardware differs run to run, so
# a local diff against the committed baseline must not fail the gate);
# CI runs the same comparison. The || true keeps set -e from tripping.
echo "== benchdiff (advisory): BENCH_PR9.json vs BENCH_PR10.json"
if [ -f BENCH_PR9.json ] && [ -f BENCH_PR10.json ]; then
	go run ./cmd/benchdiff BENCH_PR9.json BENCH_PR10.json || true
else
	echo "SKIP: snapshot files missing (generate with: go run ./cmd/benchsnap -label pr10)"
fi

echo "== govulncheck"
if command -v govulncheck >/dev/null 2>&1; then
	# Exits non-zero (failing the gate, via set -e) only on real findings.
	govulncheck ./...
else
	echo "SKIP: govulncheck not installed (install: go install golang.org/x/vuln/cmd/govulncheck@latest)"
fi

echo "== verify OK"
