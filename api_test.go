package partitionshare_test

import (
	"math"
	"testing"

	ps "partitionshare"
)

// TestPublicPipeline drives the whole library through the public facade:
// generate, profile, compose, optimize, simulate.
func TestPublicPipeline(t *testing.T) {
	const (
		cacheBlocks   = 1024
		units         = 32
		blocksPerUnit = cacheBlocks / units
		n             = 1 << 16
	)
	a := ps.Generate(ps.NewLoop(700, 1), n)
	b := ps.Generate(ps.NewDeterministicMix(
		[]ps.Generator{ps.NewStreaming(4), ps.Region{Gen: ps.NewSawtooth(100), Base: 1 << 24}},
		[]float64{0.5, 0.5}), n)

	fpA, fpB := ps.ProfileTrace(a), ps.ProfileTrace(b)
	if fpA.N() != n || fpA.M() != 700 {
		t.Fatalf("fpA: n=%d m=%d", fpA.N(), fpA.M())
	}

	progs := []ps.Program{{Name: "a", Fp: fpA, Rate: 1}, {Name: "b", Fp: fpB, Rate: 1}}
	occ := ps.NaturalPartition(progs, cacheBlocks)
	if math.Abs(occ[0]+occ[1]-cacheBlocks) > 1e-3 {
		t.Fatalf("occupancies sum to %v", occ[0]+occ[1])
	}
	if g := ps.SharedGroupMissRatio(progs, cacheBlocks); g <= 0 || g > 1 {
		t.Fatalf("group mr = %v", g)
	}

	curves := []ps.Curve{
		ps.CurveFromFootprint("a", fpA, units, blocksPerUnit, 1),
		ps.CurveFromFootprint("b", fpB, units, blocksPerUnit, 1),
	}
	opt, err := ps.Optimize(ps.Problem{Curves: curves, Units: units})
	if err != nil {
		t.Fatal(err)
	}
	sttw := ps.STTW(curves, units)
	if opt.GroupMissRatio > sttw.GroupMissRatio+1e-12 {
		t.Fatalf("optimal %v worse than STTW %v", opt.GroupMissRatio, sttw.GroupMissRatio)
	}
	// The loop program must get its working set (700 blocks ≈ 22 units).
	if opt.Alloc[0] < 22 {
		t.Fatalf("optimal alloc %v starves the loop program", opt.Alloc)
	}

	// Simulate the shared cache and sanity-check against prediction.
	iv := ps.InterleaveProportional([]ps.Trace{a, b}, []float64{1, 1}, 2*n)
	sim := ps.SimulateShared(iv, cacheBlocks, n/2)
	pred := ps.SharedMissRatios(progs, cacheBlocks)
	for p := 0; p < 2; p++ {
		if math.Abs(sim.MissRatio(p)-pred[p]) > 0.08 {
			t.Errorf("program %d: simulated %v vs predicted %v", p, sim.MissRatio(p), pred[p])
		}
	}
}

// TestAblationHOTLvsExactMRC runs the DP on curves derived from the HOTL
// model versus exact stack-distance curves for the same traces. The two
// allocations must deliver nearly identical group miss ratios — the
// model's accuracy is what makes the paper's profiling-based optimization
// legitimate.
func TestAblationHOTLvsExactMRC(t *testing.T) {
	const (
		cacheBlocks   = 2048
		units         = 64
		blocksPerUnit = cacheBlocks / units
		n             = 1 << 17
	)
	traces := []ps.Trace{
		ps.Generate(ps.NewZipf(3000, 0.6, 3), n),
		ps.Generate(ps.NewLoop(1200, 1), n),
		ps.Generate(ps.NewSawtooth(2500), n),
	}
	var hotl, exact []ps.Curve
	for i, tr := range traces {
		name := string(rune('a' + i))
		hotl = append(hotl, ps.CurveFromFootprint(name, ps.ProfileTrace(tr), units, int64(blocksPerUnit), 1))
		mrBlocks := ps.ExactLRUMissRatioCurve(tr, cacheBlocks)
		mr := make([]float64, units+1)
		for u := 0; u <= units; u++ {
			mr[u] = mrBlocks[u*blocksPerUnit]
		}
		exact = append(exact, ps.Curve{Name: name, MR: mr, Accesses: int64(n), AccessRate: 1})
	}
	optH, err := ps.Optimize(ps.Problem{Curves: hotl, Units: units})
	if err != nil {
		t.Fatal(err)
	}
	optE, err := ps.Optimize(ps.Problem{Curves: exact, Units: units})
	if err != nil {
		t.Fatal(err)
	}
	// Score the HOTL-derived allocation on the exact curves: how much do
	// we lose by optimizing on the model?
	lossy, err := ps.Evaluate(ps.Problem{Curves: exact, Units: units}, optH.Alloc)
	if err != nil {
		t.Fatal(err)
	}
	if diff := lossy.GroupMissRatio - optE.GroupMissRatio; diff > 0.01 {
		t.Errorf("model-based allocation loses %.4f vs exact-curve optimum (%v vs %v)",
			diff, lossy.GroupMissRatio, optE.GroupMissRatio)
	}
}

// TestPublicPartitionSharing exercises the sharing API: the reduction of
// partition-sharing to partitioning at fine granularity.
func TestPublicPartitionSharing(t *testing.T) {
	n := 1 << 15
	progs := []ps.Program{
		{Name: "a", Fp: ps.ProfileTrace(ps.Generate(ps.NewZipf(500, 0.5, 1), n)), Rate: 1},
		{Name: "b", Fp: ps.ProfileTrace(ps.Generate(ps.NewZipf(300, 0.5, 2), n)), Rate: 2},
	}
	res := ps.ExhaustivePartitionSharing(progs, 16, 16)
	if res.Best.GroupMissRatio > res.BestPartitioningOnly.GroupMissRatio+1e-12 {
		t.Fatal("best overall cannot be worse than best partitioning-only")
	}
	ev := ps.EvaluateSharingScheme(progs,
		ps.SharingScheme{Groups: [][]int{{0, 1}}, Units: []int{16}}, 16)
	if ev.GroupMissRatio <= 0 {
		t.Fatalf("shared scheme mr = %v", ev.GroupMissRatio)
	}
}

// TestPublicQoSAndFairness exercises the QoS and minimax objectives.
func TestPublicQoSAndFairness(t *testing.T) {
	n := 1 << 15
	tr1 := ps.Generate(ps.NewLoop(400, 1), n)
	tr2 := ps.Generate(ps.NewSawtooth(800), n)
	curves := []ps.Curve{
		ps.CurveFromFootprint("loop", ps.ProfileTrace(tr1), 32, 32, 1),
		ps.CurveFromFootprint("sweep", ps.ProfileTrace(tr2), 32, 32, 1),
	}
	target := curves[0].MissRatio(16)
	sol, err := ps.OptimizeWithQoS(curves, 32, []float64{target, math.NaN()})
	if err != nil {
		t.Fatal(err)
	}
	if sol.MissRatios[0] > target+1e-9 {
		t.Errorf("QoS target violated: %v > %v", sol.MissRatios[0], target)
	}
	fair, err := ps.Optimize(ps.Problem{Curves: curves, Units: 32, Combine: ps.Minimax})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := ps.Optimize(ps.Problem{Curves: curves, Units: 32})
	if err != nil {
		t.Fatal(err)
	}
	worst := func(s ps.Solution) float64 {
		w := 0.0
		for p, c := range curves {
			if mc := c.MissCount(s.Alloc[p]); mc > w {
				w = mc
			}
		}
		return w
	}
	if worst(fair) > worst(opt)+1e-9 {
		t.Errorf("minimax worst %v exceeds sum-optimal worst %v", worst(fair), worst(opt))
	}
}

// TestPublicIncremental exercises the incremental optimizer facade.
func TestPublicIncremental(t *testing.T) {
	n := 1 << 14
	c1 := ps.CurveFromFootprint("a", ps.ProfileTrace(ps.Generate(ps.NewLoop(200, 1), n)), 16, 32, 1)
	c2 := ps.CurveFromFootprint("b", ps.ProfileTrace(ps.Generate(ps.NewSawtooth(300), n)), 16, 32, 1)
	inc := ps.NewIncremental(16)
	if err := inc.Push(c1); err != nil {
		t.Fatal(err)
	}
	if err := inc.Push(c2); err != nil {
		t.Fatal(err)
	}
	got, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	want, err := ps.Optimize(ps.Problem{Curves: []ps.Curve{c1, c2}, Units: 16})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Objective-want.Objective) > 1e-9 {
		t.Errorf("incremental %v vs batch %v", got.Objective, want.Objective)
	}
}

// TestPublicSetAssocEstimate exercises the Smith associativity model
// facade against the set-associative simulator.
func TestPublicSetAssocEstimate(t *testing.T) {
	tr := ps.Generate(ps.NewZipf(800, 0.3, 9), 1<<16)
	est := ps.SetAssocMissRatioEstimate(tr, 32, 8)
	sa := ps.NewSetAssoc(32, 8)
	var misses int64
	for _, d := range tr {
		if !sa.Access(d) {
			misses++
		}
	}
	sim := float64(misses) / float64(len(tr))
	if math.Abs(est-sim) > 0.03 {
		t.Errorf("estimate %v vs simulated %v", est, sim)
	}
}

// TestPublicFeedback exercises the rate-feedback extension facade.
func TestPublicFeedback(t *testing.T) {
	n := 1 << 14
	progs := []ps.Program{
		{Name: "stream", Fp: ps.ProfileTrace(ps.Generate(ps.NewStreaming(1), n)), Rate: 1},
		{Name: "sweep", Fp: ps.ProfileTrace(ps.Generate(ps.NewSawtooth(900), n)), Rate: 1},
	}
	res := ps.NaturalPartitionWithFeedback(progs, 600, 20, 100)
	if !res.Converged {
		t.Fatalf("feedback did not converge: %+v", res)
	}
	if res.EffectiveRates[0] >= res.EffectiveRates[1] {
		t.Errorf("high-miss program should slow more: %v", res.EffectiveRates)
	}
}

// TestPublicSuite exercises the workload + evaluation facade at a tiny
// scale.
func TestPublicSuite(t *testing.T) {
	cfg := ps.SmallWorkloadConfig()
	specs := ps.SPECLikeSuite()[:5]
	progs, err := ps.ProfileSuite(nil, specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ps.RunEvaluation(nil, progs, 4, cfg.Units, cfg.BlocksPerUnit, ps.EvaluationOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 5 { // C(5,4)
		t.Fatalf("got %d groups, want 5", len(res.Groups))
	}
}

// TestPublicCRD exercises the concurrent-reuse-distance facade: exact
// agreement with the shared-cache simulator.
func TestPublicCRD(t *testing.T) {
	n := 1 << 14
	a := ps.Generate(ps.NewZipf(300, 0.5, 3), n)
	b := ps.Generate(ps.NewLoop(120, 1), n)
	iv := ps.InterleaveProportional([]ps.Trace{a, b}, []float64{1, 1}, 2*n)
	crd := ps.ConcurrentReuseDistances(iv)
	sim := ps.SimulateShared(iv, 200, 0)
	for p := 0; p < 2; p++ {
		if got, want := crd.SharedMissRatio(p, 200), sim.MissRatio(p); got != want {
			t.Fatalf("program %d: CRD %v vs simulated %v", p, got, want)
		}
	}
}

// TestPublicPolicies exercises the CLOCK and random caches.
func TestPublicPolicies(t *testing.T) {
	tr := ps.Generate(ps.NewLoop(150, 1), 1<<14)
	var clockMisses, rndMisses int64
	clock := ps.NewClock(100)
	rnd := ps.NewRandomCache(100, 5)
	for _, d := range tr {
		if !clock.Access(d) {
			clockMisses++
		}
		if !rnd.Access(d) {
			rndMisses++
		}
	}
	// CLOCK approximates LRU: it thrashes on the loop; random does not.
	if rndMisses >= clockMisses {
		t.Errorf("random (%d) should beat CLOCK (%d) on a thrashing loop", rndMisses, clockMisses)
	}
}

// TestPublicEpochPartitioning exercises phase-aware repartitioning.
func TestPublicEpochPartitioning(t *testing.T) {
	const epochLen = 2048
	mk := func(bigFirst bool) ps.Trace {
		big := ps.Phase{Gen: ps.NewSawtooth(90), Len: epochLen}
		tiny := ps.Phase{Gen: ps.Region{Gen: ps.NewSawtooth(2), Base: 1 << 20}, Len: epochLen}
		if bigFirst {
			return ps.Generate(ps.NewPhased(big, tiny), epochLen*6)
		}
		return ps.Generate(ps.NewPhased(tiny, big), epochLen*6)
	}
	pa, err := ps.ProfileEpochs("a", 1, mk(true), epochLen)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := ps.ProfileEpochs("b", 1, mk(false), epochLen)
	if err != nil {
		t.Fatal(err)
	}
	progs := []ps.EpochProgram{pa, pb}
	static, err := ps.PlanStaticPartition(progs, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	dynamic, err := ps.PlanDynamicPartition(progs, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	sS, err := ps.SimulateRepartitioning(progs, static, epochLen, 8)
	if err != nil {
		t.Fatal(err)
	}
	sD, err := ps.SimulateRepartitioning(progs, dynamic, epochLen, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sD.GroupMissRatio() >= sS.GroupMissRatio() {
		t.Errorf("dynamic %.4f should beat static %.4f on antiphase workload",
			sD.GroupMissRatio(), sS.GroupMissRatio())
	}
}

// TestPublicGrouping exercises the symbiosis facade.
func TestPublicGrouping(t *testing.T) {
	n := 1 << 14
	progs := []ps.Program{
		{Name: "s1", Fp: ps.ProfileTrace(ps.Generate(ps.NewStreaming(1), n)), Rate: 2},
		{Name: "s2", Fp: ps.ProfileTrace(ps.Generate(ps.NewStreaming(1), n)), Rate: 2},
		{Name: "l1", Fp: ps.ProfileTrace(ps.Generate(ps.NewLoop(150, 1), n)), Rate: 1},
		{Name: "l2", Fp: ps.ProfileTrace(ps.Generate(ps.NewLoop(170, 1), n)), Rate: 1},
	}
	ex, err := ps.OptimalGrouping(progs, 2, 400)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := ps.GreedyGrouping(progs, 2, 400, 30)
	if err != nil {
		t.Fatal(err)
	}
	if gr.MissRatio < ex.MissRatio-1e-12 {
		t.Fatalf("greedy %v beats exhaustive %v", gr.MissRatio, ex.MissRatio)
	}
}

// TestPublicElastic exercises the elastic fairness knob: lambda sweeps
// from unconstrained optimal to the equal baseline.
func TestPublicElastic(t *testing.T) {
	n := 1 << 15
	curves := []ps.Curve{
		ps.CurveFromFootprint("a", ps.ProfileTrace(ps.Generate(ps.NewLoop(600, 1), n)), 32, 32, 1),
		ps.CurveFromFootprint("b", ps.ProfileTrace(ps.Generate(ps.NewSawtooth(900), n)), 32, 32, 1),
		ps.CurveFromFootprint("c", ps.ProfileTrace(ps.Generate(ps.NewZipf(500, 0.8, 3), n)), 32, 32, 1),
	}
	opt, err := ps.Optimize(ps.Problem{Curves: curves, Units: 32})
	if err != nil {
		t.Fatal(err)
	}
	prev := opt.GroupMissRatio
	for _, lambda := range []float64{0, 0.5, 1.0} {
		sol, err := ps.OptimizeElastic(curves, 32, lambda)
		if err != nil {
			t.Fatal(err)
		}
		if sol.GroupMissRatio < prev-1e-12 && lambda > 0 {
			t.Errorf("lambda %v: group mr %v improved over looser constraint %v", lambda, sol.GroupMissRatio, prev)
		}
		if lambda == 0 && sol.GroupMissRatio > opt.GroupMissRatio+1e-12 {
			t.Errorf("lambda 0 should equal unconstrained optimal: %v vs %v", sol.GroupMissRatio, opt.GroupMissRatio)
		}
		prev = sol.GroupMissRatio
	}
	if _, err := ps.OptimizeElastic(curves, 32, 1.5); err == nil {
		t.Error("lambda > 1 should error")
	}
}

// TestPublicMechanisms exercises the hardware-mechanism comparison: both
// real mechanisms deliver the optimizer's intended capacity within a
// small conflict-miss gap on random traces.
func TestPublicMechanisms(t *testing.T) {
	traces := []ps.Trace{
		ps.Generate(ps.NewZipf(2000, 0.5, 3), 1<<15),
		ps.Generate(ps.NewZipf(1000, 0.5, 4), 1<<15),
	}
	res, err := ps.ComparePartitionMechanisms(traces, []int{1024, 512}, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	for p := range traces {
		if d := res.Way[p] - res.Ideal[p]; d > 0.05 || d < -0.05 {
			t.Errorf("program %d: way partitioning %v far from ideal %v", p, res.Way[p], res.Ideal[p])
		}
		if d := res.Set[p] - res.Ideal[p]; d > 0.05 || d < -0.05 {
			t.Errorf("program %d: set partitioning %v far from ideal %v", p, res.Set[p], res.Ideal[p])
		}
	}
	if _, err := ps.ComparePartitionMechanisms(traces, []int{1000, 512}, 32, 8); err == nil {
		t.Error("non-divisible allocation should error")
	}
}

// TestPublicTraceIO exercises the trace file facade.
func TestPublicTraceIO(t *testing.T) {
	dir := t.TempDir()
	tr := ps.Generate(ps.NewSawtooth(500), 1<<12)
	path := dir + "/t.bin"
	if err := ps.WriteTraceFile(path, tr, true); err != nil {
		t.Fatal(err)
	}
	got, err := ps.ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tr) {
		t.Fatalf("length %d, want %d", len(got), len(tr))
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Fatal("round trip corrupted trace")
		}
	}
}

// TestFigure1Scenario reproduces the paper's Figure 1 in test form: with
// synchronized antiphase working sets, a partition-sharing scheme beats
// the best strict partitioning (the case the natural-partition reduction
// deliberately excludes via the random-phase assumption, §VIII).
func TestFigure1Scenario(t *testing.T) {
	const (
		cache    = 24
		phaseLen = 2048
		perProg  = 1 << 14
	)
	mkPhased := func(bigFirst bool) ps.Trace {
		big := ps.Phase{Gen: ps.NewSawtooth(14), Len: phaseLen}
		tiny := ps.Phase{Gen: ps.Region{Gen: ps.NewSawtooth(1), Base: 1 << 20}, Len: phaseLen}
		if bigFirst {
			return ps.Generate(ps.NewPhased(big, tiny), perProg)
		}
		return ps.Generate(ps.NewPhased(tiny, big), perProg)
	}
	traces := []ps.Trace{
		ps.Generate(ps.NewStreaming(1), perProg),
		ps.Generate(ps.NewStreaming(1), perProg),
		mkPhased(true),
		mkPhased(false),
	}
	iv := ps.InterleaveProportional(traces, []float64{1, 1, 1, 1}, 4*perProg)

	// The paper's partition-sharing scheme: streamers walled off, the
	// antiphase pair sharing the rest.
	sharing := ps.SimulatePartitionShared(iv,
		[][]int{{0}, {1}, {2, 3}}, []int{1, 1, cache - 2})

	// Best strict partitioning over all unit allocations (4 programs,
	// 24 units of 1 block): the phased pair needs 14+14 blocks at peak,
	// which no static split can provide.
	// Search allocations on a step-2 grid: misses vary smoothly in the
	// streamers' shares, and the phased programs' peaks (14 blocks each)
	// cannot both be met regardless, so the coarse grid finds the best
	// static split's neighbourhood.
	best := 2.0
	for a := 0; a <= cache; a += 2 {
		for b := 0; a+b <= cache; b += 2 {
			for c := 0; a+b+c <= cache; c += 2 {
				d := cache - a - b - c
				res := ps.SimulatePartitionShared(iv,
					[][]int{{0}, {1}, {2}, {3}}, []int{a, b, c, d})
				if mr := res.GroupMissRatio(); mr < best {
					best = mr
				}
			}
		}
	}
	if sharing.GroupMissRatio() >= best {
		t.Errorf("partition-sharing (%.4f) should beat best partitioning (%.4f) on antiphase phases",
			sharing.GroupMissRatio(), best)
	}
}
