package partitionshare

import (
	"context"

	"partitionshare/internal/cachesim"
	"partitionshare/internal/compose"
	"partitionshare/internal/epoch"
	"partitionshare/internal/experiment"
	"partitionshare/internal/footprint"
	"partitionshare/internal/mrc"
	"partitionshare/internal/partition"
	"partitionshare/internal/reuse"
	"partitionshare/internal/sharing"
	"partitionshare/internal/symbiosis"
	"partitionshare/internal/trace"
	"partitionshare/internal/workload"
)

// ---------------------------------------------------------------- traces

// Trace is a sequence of accesses to abstract cache blocks.
type Trace = trace.Trace

// Generator produces an endless stream of block IDs.
type Generator = trace.Generator

// Interleaved is a merged multi-program access stream with ownership.
type Interleaved = trace.Interleaved

// Region shifts a generator's block IDs into a private range.
type Region = trace.Region

// Phase is one phase of a phased generator.
type Phase = trace.Phase

// Generate draws n accesses from g.
func Generate(g Generator, n int) Trace { return trace.Generate(g, n) }

// NewStreaming returns a generator touching fresh blocks, each repeat
// times in a row.
func NewStreaming(repeat int) Generator { return trace.NewStreaming(repeat) }

// NewLoop returns a cyclic sweep over size blocks (a working-set cliff
// under LRU).
func NewLoop(size uint32, repeat int) Generator { return trace.NewLoop(size, repeat) }

// NewSawtooth returns a forward-backward sweep over size blocks (a smooth
// convex miss-ratio curve under LRU).
func NewSawtooth(size uint32) Generator { return trace.NewSawtooth(size) }

// NewZipf returns a seeded Zipfian generator over size blocks with
// exponent theta.
func NewZipf(size uint32, theta float64, seed uint64) Generator {
	return trace.NewZipf(size, theta, seed)
}

// NewPhased cycles through the given phases (programs whose working set
// changes over time, as in the paper's Figure 1).
func NewPhased(phases ...Phase) Generator { return trace.NewPhased(phases...) }

// NewMixture draws each access from a component with probability
// proportional to its weight, seeded deterministically.
func NewMixture(seed uint64, gens []Generator, weights []float64) Generator {
	return trace.NewMixture(seed, gens, weights)
}

// NewDeterministicMix interleaves components proportionally with a
// largest-deficit scheduler (sharp reuse times, crisp cliffs).
func NewDeterministicMix(gens []Generator, weights []float64) Generator {
	return trace.NewDeterministicMix(gens, weights)
}

// InterleaveProportional merges program traces in exact proportion to
// their access rates.
func InterleaveProportional(traces []Trace, rates []float64, n int) Interleaved {
	return trace.InterleaveProportional(traces, rates, n)
}

// InterleaveRandom merges program traces by seeded rate-weighted draws.
func InterleaveRandom(seed uint64, traces []Trace, rates []float64, n int) Interleaved {
	return trace.InterleaveRandom(seed, traces, rates, n)
}

// -------------------------------------------------------------- locality

// Footprint evaluates the HOTL metrics of one program: average footprint
// fp(w), fill time, inter-miss time, and miss ratio (paper §III).
type Footprint = footprint.Footprint

// ReuseProfile holds a trace's reuse-time and boundary histograms.
type ReuseProfile = reuse.Profile

// ProfileTrace computes a trace's HOTL footprint in one O(n log n) pass.
func ProfileTrace(t Trace) Footprint { return footprint.FromTrace(t) }

// CollectReuse computes the reuse-time profile of a trace.
func CollectReuse(t Trace) ReuseProfile { return reuse.Collect(t) }

// CollectReuseParallel computes the same profile as CollectReuse by
// scanning disjoint trace segments concurrently and merging exactly —
// bit-identical results, sharded across workers (<= 0 means all CPUs).
// Cancelling ctx drains the shards and returns ctx.Err(); a nil ctx never
// cancels.
func CollectReuseParallel(ctx context.Context, t Trace, workers int) (ReuseProfile, error) {
	return reuse.CollectParallel(ctx, t, workers)
}

// CollectReuseSampled computes an approximate reuse profile by spatial
// (datum) sampling at ~rate, an order of magnitude faster at rate 0.1 —
// the paper's sampled-profiling trade-off (§VII-A).
func CollectReuseSampled(t Trace, rate float64, seed uint64) ReuseProfile {
	return reuse.CollectSampled(t, rate, seed)
}

// NewFootprint wraps a reuse profile for footprint evaluation.
func NewFootprint(p ReuseProfile) Footprint { return footprint.New(p) }

// StackDistances returns the exact LRU stack distance of every access
// (reuse.ColdMiss for first accesses) — the ground-truth LRU model.
func StackDistances(t Trace) []int64 { return reuse.StackDistances(t) }

// ColdMiss marks a first access in StackDistances output.
const ColdMiss = reuse.ColdMiss

// ExactLRUMissRatioCurve returns the LRU miss ratio at capacities
// 0..maxC blocks from exact stack distances.
func ExactLRUMissRatioCurve(t Trace, maxC int64) []float64 {
	return reuse.HistogramDistances(reuse.StackDistances(t)).MissRatioCurve(maxC)
}

// SetAssocMissRatioEstimate estimates a set-associative LRU cache's miss
// ratio from a trace's fully-associative stack distances using Smith's
// random-mapping model (paper §VIII).
func SetAssocMissRatioEstimate(t Trace, sets, ways int) float64 {
	return reuse.SetAssocMissRatio(reuse.HistogramDistances(reuse.StackDistances(t)), sets, ways)
}

// ---------------------------------------------------------------- curves

// Curve is a miss-ratio curve at partition-unit granularity, carrying the
// program's access count and rate.
type Curve = mrc.Curve

// CurveFromFootprint samples a footprint into a unit-granularity curve.
func CurveFromFootprint(name string, fp Footprint, units int, blocksPerUnit int64, accessRate float64) Curve {
	return mrc.FromFootprint(name, fp, units, blocksPerUnit, accessRate)
}

// GroupMissRatio returns total misses over total accesses for the given
// per-program allocations.
func GroupMissRatio(curves []Curve, alloc []int) float64 {
	return mrc.GroupMissRatio(curves, alloc)
}

// ----------------------------------------------------------- composition

// Program is one member of a co-run group: a footprint plus an access
// rate.
type Program = compose.Program

// CombinedFootprint evaluates the composed (stretched) footprint of a
// group at combined window length w (paper Eq. 9).
func CombinedFootprint(progs []Program, w float64) float64 {
	return compose.CombinedFp(progs, w)
}

// NaturalPartition returns each program's steady-state occupancy in a
// shared cache of c blocks (paper §V-A, Fig. 4).
func NaturalPartition(progs []Program, c float64) []float64 {
	return compose.NaturalPartition(progs, c)
}

// NaturalPartitionUnits rounds the natural partition to whole cache units
// summing exactly to units.
func NaturalPartitionUnits(progs []Program, units int, blocksPerUnit int64) []int {
	return compose.NaturalPartitionUnits(progs, units, blocksPerUnit)
}

// SharedMissRatios predicts each program's miss ratio in a freely shared
// cache of c blocks under the natural partition assumption (Eq. 11).
func SharedMissRatios(progs []Program, c float64) []float64 {
	return compose.SharedMissRatios(progs, c)
}

// SharedGroupMissRatio predicts the group's overall shared-cache miss
// ratio.
func SharedGroupMissRatio(progs []Program, c float64) float64 {
	return compose.SharedGroupMissRatio(progs, c)
}

// FeedbackResult reports a rate-feedback natural partition (the miss-stall
// feedback loop the paper leaves to future work, §IV footnote 4).
type FeedbackResult = compose.FeedbackResult

// NaturalPartitionWithFeedback iterates the natural partition with
// miss-driven access-rate degradation to a fixed point.
func NaturalPartitionWithFeedback(progs []Program, c float64, missPenalty float64, maxIter int) FeedbackResult {
	return compose.NaturalPartitionWithFeedback(progs, c, missPenalty, maxIter)
}

// ---------------------------------------------------------- partitioning

// Problem describes a partitioning instance for Optimize.
type Problem = partition.Problem

// Solution is an optimized or evaluated allocation.
type Solution = partition.Solution

// Allocation assigns cache units to programs.
type Allocation = partition.Allocation

// Combine selects the objective aggregation.
type Combine = partition.Combine

// Objective aggregations.
const (
	// Sum minimizes total miss count (the paper's primary objective).
	Sum = partition.Sum
	// Minimax minimizes the worst per-program cost (pure fairness).
	Minimax = partition.Minimax
)

// Optimize finds the optimal partition by dynamic programming over the
// entire solution space — no convexity assumption (paper §V-B, Eq. 15–16).
func Optimize(pr Problem) (Solution, error) { return partition.Optimize(pr) }

// Evaluate scores a fixed allocation under a problem's objective.
func Evaluate(pr Problem, alloc Allocation) (Solution, error) {
	return partition.Evaluate(pr, alloc)
}

// EqualAllocation splits units evenly among n programs.
func EqualAllocation(n, units int) Allocation { return partition.EqualAllocation(n, units) }

// OptimizeWithBaseline minimizes group misses subject to no program doing
// worse than under the baseline allocation (paper §VI).
func OptimizeWithBaseline(curves []Curve, units int, baseline Allocation) (Solution, error) {
	return partition.OptimizeWithBaseline(curves, units, baseline)
}

// STTW computes the classical Stone–Thiebaut–Turek–Wolf greedy partition,
// optimal only for convex curves.
func STTW(curves []Curve, units int) Solution { return partition.STTW(curves, units) }

// OptimizeParallel is Optimize with each DP layer parallelized across
// workers (0 = GOMAXPROCS); same optimum, useful at fine granularity.
// Cancelling ctx stops between DP layers and returns ctx.Err(); a nil ctx
// never cancels.
func OptimizeParallel(ctx context.Context, pr Problem, workers int) (Solution, error) {
	return partition.OptimizeParallel(ctx, pr, workers)
}

// OptimizeWithQoS minimizes group misses subject to per-program miss-ratio
// ceilings (NaN or >= 1 leaves a program unconstrained).
func OptimizeWithQoS(curves []Curve, units int, maxMR []float64) (Solution, error) {
	return partition.OptimizeWithQoS(curves, units, maxMR)
}

// Incremental maintains the optimal-partition DP as programs join and
// leave (push one O(C²) layer per join, O(1) leave) — for schedulers that
// score many candidate groups.
type Incremental = partition.Incremental

// NewIncremental returns an empty incremental optimizer for a cache of the
// given units.
func NewIncremental(units int) *Incremental { return partition.NewIncremental(units) }

// OptimizeElastic guarantees each program a lambda-fraction of its equal
// share's performance while minimizing group misses (elastic cache
// utility, the paper's reference [18]).
func OptimizeElastic(curves []Curve, units int, lambda float64) (Solution, error) {
	return partition.OptimizeElastic(curves, units, lambda)
}

// ------------------------------------------------------------ simulation

// LRU is a fully-associative LRU cache simulator.
type LRU = cachesim.LRU

// SetAssoc is a set-associative LRU cache simulator.
type SetAssoc = cachesim.SetAssoc

// CoRunResult reports a shared-cache co-run simulation.
type CoRunResult = cachesim.CoRunResult

// NewLRU returns an empty fully-associative LRU cache of the given
// capacity in blocks.
func NewLRU(capacity int) *LRU { return cachesim.NewLRU(capacity) }

// NewSetAssoc returns a set-associative LRU cache.
func NewSetAssoc(sets, ways int) *SetAssoc { return cachesim.NewSetAssoc(sets, ways) }

// SimulateShared runs an interleaved trace through one shared LRU cache,
// reporting per-program misses and mean occupancies.
func SimulateShared(iv Interleaved, capacity, warmup int) CoRunResult {
	return cachesim.SimulateShared(iv, capacity, warmup)
}

// SimulatePartitionShared simulates an arbitrary partition-sharing scheme:
// groups of programs sharing partitions of given block capacities.
func SimulatePartitionShared(iv Interleaved, groups [][]int, capacities []int) CoRunResult {
	return cachesim.SimulatePartitionShared(iv, groups, capacities)
}

// ----------------------------------------------------- partition-sharing

// SharingScheme is a partition-sharing arrangement: program groups with a
// unit allocation per group.
type SharingScheme = sharing.Scheme

// ExhaustivePartitionSharing searches every grouping and allocation of a
// small instance, returning the best overall and best partitioning-only
// arrangements (paper §II/§V-A reduction check).
func ExhaustivePartitionSharing(progs []Program, units int, blocksPerUnit int64) sharing.ExhaustiveResult {
	return sharing.Exhaustive(progs, units, blocksPerUnit)
}

// EvaluateSharingScheme predicts a partition-sharing scheme's per-program
// and group miss ratios under the HOTL model.
func EvaluateSharingScheme(progs []Program, s SharingScheme, blocksPerUnit int64) sharing.Evaluation {
	return sharing.EvaluateScheme(progs, s, blocksPerUnit)
}

// ------------------------------------------------------ CRD & policies

// ConcurrentReuseDistances computes the concurrent reuse distances of an
// interleaved trace (§IX): exact shared-cache miss ratios for every cache
// size, but specific to this co-run group and interleaving.
func ConcurrentReuseDistances(iv Interleaved) reuse.CRD {
	return reuse.ConcurrentDistances(iv)
}

// PolicyCache is the policy-neutral cache simulator interface (LRU,
// CLOCK, random replacement).
type PolicyCache = cachesim.Cache

// NewClock returns a CLOCK (second-chance) cache simulator — the LRU
// approximation real hardware uses (§VIII).
func NewClock(capacity int) *cachesim.Clock { return cachesim.NewClock(capacity) }

// NewRandomCache returns a seeded random-replacement cache simulator.
func NewRandomCache(capacity int, seed uint64) *cachesim.Random {
	return cachesim.NewRandom(capacity, seed)
}

// Hierarchy simulates a multi-level LRU cache where each level sees the
// misses of the level above (§VIII: HOTL holds at every level when
// applied to each level's input stream).
type Hierarchy = cachesim.Hierarchy

// NewHierarchy builds a cache hierarchy with strictly increasing
// capacities in blocks, closest level first.
func NewHierarchy(capacities ...int) *Hierarchy { return cachesim.NewHierarchy(capacities...) }

// MechanismResult compares per-program miss ratios under ideal capacity
// partitioning, way partitioning (CAT-style), and set partitioning (page
// coloring).
type MechanismResult = cachesim.MechanismResult

// ComparePartitionMechanisms measures the gap between the optimizer's
// abstract capacity units and the two hardware partitioning mechanisms.
func ComparePartitionMechanisms(traces []Trace, blocks []int, sets, ways int) (MechanismResult, error) {
	return cachesim.ComparePartitionMechanisms(traces, blocks, sets, ways)
}

// ReadTraceFile reads a trace from a file in either the text (one decimal
// ID per line) or binary delta-varint format, auto-detected.
func ReadTraceFile(path string) (Trace, error) { return trace.ReadFile(path) }

// WriteTraceFile writes a trace to a file, in the compact binary format
// when binaryFormat is true.
func WriteTraceFile(path string, t Trace, binaryFormat bool) error {
	return trace.WriteFile(path, t, binaryFormat)
}

// ----------------------------------------------- epochs & co-run grouping

// EpochProgram is one co-run program profiled per fixed-length epoch for
// phase-aware (dynamic) partitioning.
type EpochProgram = epoch.Program

// EpochPlan is a per-epoch sequence of partition allocations.
type EpochPlan = epoch.Plan

// ProfileEpochs profiles a trace whole and per epoch.
func ProfileEpochs(name string, rate float64, t Trace, epochLen int) (EpochProgram, error) {
	return epoch.ProfileEpochs(name, rate, t, epochLen)
}

// PlanStaticPartition computes one whole-trace optimal partition repeated
// every epoch.
func PlanStaticPartition(progs []EpochProgram, units int, blocksPerUnit int64) (EpochPlan, error) {
	return epoch.PlanStatic(progs, units, blocksPerUnit)
}

// PlanDynamicPartition re-optimizes the partition per epoch.
func PlanDynamicPartition(progs []EpochProgram, units int, blocksPerUnit int64) (EpochPlan, error) {
	return epoch.PlanDynamic(progs, units, blocksPerUnit)
}

// SimulateRepartitioning runs programs through private LRU partitions
// resized at each epoch boundary per the plan.
func SimulateRepartitioning(progs []EpochProgram, plan EpochPlan, epochLen int, blocksPerUnit int64) (epoch.Result, error) {
	return epoch.Simulate(progs, plan, epochLen, blocksPerUnit)
}

// Grouping assigns co-run programs to shared caches.
type Grouping = symbiosis.Grouping

// OptimalGrouping finds the best assignment of programs to shared caches
// by exhaustive search over set partitions (programs <= 10).
func OptimalGrouping(progs []Program, caches int, cacheBlocks float64) (Grouping, error) {
	return symbiosis.Exhaustive(progs, caches, cacheBlocks)
}

// GreedyGrouping finds a good assignment by move/swap local search.
func GreedyGrouping(progs []Program, caches int, cacheBlocks float64, maxRounds int) (Grouping, error) {
	return symbiosis.Greedy(progs, caches, cacheBlocks, maxRounds)
}

// ------------------------------------------------- workloads & evaluation

// WorkloadConfig fixes the cache geometry and profiling scale of the
// synthetic suite.
type WorkloadConfig = workload.Config

// WorkloadSpec declares one synthetic program.
type WorkloadSpec = workload.Spec

// SuiteProgram is a profiled synthetic program.
type SuiteProgram = workload.Program

// SPECLikeSuite returns the 16 synthetic programs standing in for the
// paper's SPEC CPU2006 selection.
func SPECLikeSuite() []WorkloadSpec { return workload.Specs() }

// DefaultWorkloadConfig is the full experiment geometry (1024-unit cache).
func DefaultWorkloadConfig() WorkloadConfig { return workload.DefaultConfig() }

// SmallWorkloadConfig is a reduced geometry for quick runs and tests.
func SmallWorkloadConfig() WorkloadConfig { return workload.TestConfig() }

// ProfileSuite profiles the given specs in parallel. Cancelling ctx skips
// not-yet-started programs and returns ctx.Err(); a nil ctx never cancels.
func ProfileSuite(ctx context.Context, specs []WorkloadSpec, cfg WorkloadConfig) ([]SuiteProgram, error) {
	return workload.ProfileAll(ctx, specs, cfg)
}

// EvaluationResult is a full multi-group evaluation run.
type EvaluationResult = experiment.Result

// EvaluationScheme identifies one of the six evaluated policies.
type EvaluationScheme = experiment.Scheme

// EvaluationOpts tunes a RunEvaluation sweep: worker count, fail-fast vs
// error-collection, and checkpoint/resume.
type EvaluationOpts = experiment.RunOpts

// GroupEvaluationError is the typed per-group failure (including recovered
// worker panics) surfaced by RunEvaluation; test with errors.As.
type GroupEvaluationError = experiment.GroupError

// EvaluationCheckpoint is the crash-recovery snapshot of a partially
// completed sweep.
type EvaluationCheckpoint = experiment.Checkpoint

// ReadEvaluationCheckpoint loads and validates a checkpoint file for
// EvaluationOpts.Resume.
func ReadEvaluationCheckpoint(path string) (*EvaluationCheckpoint, error) {
	return experiment.ReadCheckpoint(path)
}

// RunEvaluation evaluates every groupSize-subset of the programs under the
// six schemes, in parallel (paper §VII). Cancelling ctx drains the workers
// and returns ctx.Err(); a nil ctx never cancels. A zero EvaluationOpts
// reproduces the defaults (all CPUs, collect errors, no checkpointing).
func RunEvaluation(ctx context.Context, progs []SuiteProgram, groupSize, units int, blocksPerUnit int64, opts EvaluationOpts) (EvaluationResult, error) {
	return experiment.Run(ctx, progs, groupSize, units, blocksPerUnit, opts)
}
