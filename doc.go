// Package partitionshare is a from-scratch reproduction of "Optimal Cache
// Partition-Sharing" (Brock, Ye, Ding, Li, Wang, Luo — ICPP 2015): a
// library for modelling shared-cache performance with the higher-order
// theory of locality (HOTL) and for computing optimal, fair, and classical
// cache partitions.
//
// The library is organised in layers, all re-exported here as a single
// public API:
//
//   - Traces: synthetic memory-access generators (streaming, loops,
//     sawtooth sweeps, Zipfian mixes) and rate-proportional interleaving.
//   - Locality: reuse-time histograms, the exact linear-time average
//     footprint fp(w), fill time, inter-miss time, and miss-ratio curves;
//     exact LRU stack distances as ground truth.
//   - Composition: stretched-footprint composition of co-run programs and
//     the Natural Cache Partition — the occupancies free-for-all sharing
//     converges to, which reduce partition-sharing to partitioning.
//   - Partitioning: a dynamic-programming optimizer over arbitrary
//     (non-convex) miss-ratio curves and objectives, baseline-constrained
//     fair optimization, and the Stone–Thiebaut–Turek–Wolf greedy.
//   - Simulation: fully-associative and set-associative LRU caches, shared
//     and partition-shared co-run simulation for validation.
//   - Evaluation: the paper's 16-program synthetic suite and the harness
//     that regenerates Table I and Figures 5–7.
//
// Quick start:
//
//	tr := partitionshare.Generate(partitionshare.NewLoop(512, 1), 1<<20)
//	fp := partitionshare.ProfileTrace(tr)
//	fmt.Println(fp.MissRatio(256), fp.MissRatio(1024))
//
// See examples/ for runnable programs and cmd/ for the CLI tools.
package partitionshare
