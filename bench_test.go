// Benchmarks regenerating each experiment of the paper's evaluation
// (§VII): one benchmark per table and figure, the per-group optimizer
// costs the paper reports timing for, and the ablation sweeps called out
// in DESIGN.md. Full-geometry outputs come from cmd/experiments; these
// benchmarks measure the same code paths at measured, repeatable sizes.
package partitionshare_test

import (
	"sync"
	"testing"

	ps "partitionshare"
	"partitionshare/internal/experiment"
	"partitionshare/internal/mrc"
	"partitionshare/internal/partition"
	"partitionshare/internal/reuse"
	"partitionshare/internal/sharing"
	"partitionshare/internal/trace"
	"partitionshare/internal/workload"
)

// ---------------------------------------------------------------- shared

var (
	benchOnce  sync.Once
	benchProgs []workload.Program // 16 programs at test geometry
	benchRes   experiment.Result  // full 1820-group run at test geometry
	benchFull4 []workload.Program // 4 programs at full 1024-unit geometry
)

func benchSetup(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		cfg := workload.TestConfig()
		var err error
		benchProgs, err = workload.ProfileAll(nil, workload.Specs(), cfg)
		if err != nil {
			panic(err)
		}
		benchRes, err = experiment.Run(nil, benchProgs, 4, cfg.Units, cfg.BlocksPerUnit, experiment.RunOpts{})
		if err != nil {
			panic(err)
		}
		full := workload.DefaultConfig()
		benchFull4, err = workload.ProfileAll(nil, workload.Specs()[:4], full)
		if err != nil {
			panic(err)
		}
	})
}

func fullCurves(b *testing.B) []mrc.Curve {
	benchSetup(b)
	curves := make([]mrc.Curve, len(benchFull4))
	for i, p := range benchFull4 {
		curves[i] = p.Curve
	}
	return curves
}

// ------------------------------------------------------- paper artefacts

// BenchmarkTableI regenerates Table I: all 1820 co-run groups under six
// schemes plus the improvement statistics (reduced geometry; the
// full-geometry run is cmd/experiments).
func BenchmarkTableI(b *testing.B) {
	benchSetup(b)
	cfg := workload.TestConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiment.Run(nil, benchProgs, 4, cfg.Units, cfg.BlocksPerUnit, experiment.RunOpts{})
		if err != nil {
			b.Fatal(err)
		}
		experiment.TableI(res)
	}
}

// BenchmarkFigure5 regenerates Figure 5's data: per-program miss-ratio
// series under five schemes for all 16 programs.
func BenchmarkFigure5(b *testing.B) {
	benchSetup(b)
	schemes := []experiment.Scheme{experiment.Natural, experiment.Equal,
		experiment.NaturalBaseline, experiment.EqualBaseline, experiment.Optimal}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := range benchProgs {
			experiment.ProgramSeries(benchRes, p, schemes)
		}
	}
}

// BenchmarkFigure6 regenerates Figure 6's data: group miss ratios of five
// schemes sorted by Optimal.
func BenchmarkFigure6(b *testing.B) {
	benchSetup(b)
	schemes := []experiment.Scheme{experiment.Natural, experiment.Equal,
		experiment.NaturalBaseline, experiment.EqualBaseline, experiment.Optimal}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiment.GroupSeries(benchRes, schemes)
	}
}

// BenchmarkFigure7 regenerates Figure 7's data: Optimal vs STTW.
func BenchmarkFigure7(b *testing.B) {
	benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiment.GroupSeries(benchRes, []experiment.Scheme{experiment.STTW, experiment.Optimal})
	}
}

// BenchmarkSearchSpaceS2 computes the §II worked example (S2 for npr=4,
// C=131072 — 375,368,690,761,743).
func BenchmarkSearchSpaceS2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sharing.SpacePartitionSharing(4, 131072)
	}
}

// BenchmarkValidationPair measures one §VII-C pair validation (prediction
// plus shared-cache simulation) at reduced scale.
func BenchmarkValidationPair(b *testing.B) {
	cfg := workload.TestConfig()
	specs := workload.Specs()[:2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.ValidatePairs(nil, specs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------- per-group solver costs

// BenchmarkOptimalPartitionGroup is the §VII-A cost the paper reports as
// ~0.21 s per group on a 2012 laptop: one O(P·C²) DP over 4 programs and
// 1024 units.
func BenchmarkOptimalPartitionGroup(b *testing.B) {
	curves := fullCurves(b)
	pr := partition.Problem{Curves: curves, Units: 1024}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.Optimize(pr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimalPartitionGroupParallel is the same DP with parallel
// layers.
func BenchmarkOptimalPartitionGroupParallel(b *testing.B) {
	curves := fullCurves(b)
	pr := partition.Problem{Curves: curves, Units: 1024}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.OptimizeParallel(nil, pr, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimalPartitionGroupReference is the "before" half of the
// kernel pair: the original allocation-per-call scatter-form DP, preserved
// as partition.ReferenceOptimize. Comparing it with
// BenchmarkOptimalPartitionGroup measures the pooled gather kernel's gain;
// BENCH_PR1.json snapshots both.
func BenchmarkOptimalPartitionGroupReference(b *testing.B) {
	curves := fullCurves(b)
	pr := partition.Problem{Curves: curves, Units: 1024}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.ReferenceOptimize(pr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSTTWGroup is the paper's STTW per-group cost (~0.11 s there).
func BenchmarkSTTWGroup(b *testing.B) {
	curves := fullCurves(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		partition.STTW(curves, 1024)
	}
}

// BenchmarkBaselineOptimizationGroup is one §VI equal-baseline DP.
func BenchmarkBaselineOptimizationGroup(b *testing.B) {
	curves := fullCurves(b)
	base := partition.EqualAllocation(len(curves), 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.OptimizeWithBaseline(curves, 1024, base); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNaturalPartitionGroup is one natural-partition computation
// (bisection over composed footprints).
func BenchmarkNaturalPartitionGroup(b *testing.B) {
	benchSetup(b)
	comps := make([]ps.Program, len(benchFull4))
	for i, p := range benchFull4 {
		comps[i] = ps.Program{Name: p.Name, Fp: p.Fp, Rate: p.Rate}
	}
	cfg := workload.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps.NaturalPartitionUnits(comps, cfg.Units, cfg.BlocksPerUnit)
	}
}

// --------------------------------------------------------------- ablations

// BenchmarkDPGranularity sweeps the partition-unit granularity, the
// paper's own cost lever (§VII-A: 8 KB units make the DP 128² times
// cheaper than 64 B blocks).
func BenchmarkDPGranularity(b *testing.B) {
	benchSetup(b)
	cfg := workload.DefaultConfig()
	for _, units := range []int{128, 256, 512, 1024, 2048} {
		blocksPerUnit := cfg.CacheBlocks() / int64(units)
		curves := make([]mrc.Curve, len(benchFull4))
		for i, p := range benchFull4 {
			curves[i] = mrc.FromFootprint(p.Name, p.Fp, units, blocksPerUnit, p.Rate)
		}
		pr := partition.Problem{Curves: curves, Units: units}
		b.Run(unitsName(units), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := partition.Optimize(pr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func unitsName(u int) string {
	switch u {
	case 128:
		return "units=128"
	case 256:
		return "units=256"
	case 512:
		return "units=512"
	case 1024:
		return "units=1024"
	default:
		return "units=2048"
	}
}

// BenchmarkHullSTTW measures the Suh-style convex-hull repair of STTW
// (ablation: hull construction plus greedy vs plain greedy vs DP).
func BenchmarkHullSTTW(b *testing.B) {
	curves := fullCurves(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		partition.STTWOnConvexHull(curves, 1024)
	}
}

// BenchmarkIncrementalCandidateScan measures the scheduler scenario: score
// 16 candidate fourth members against a fixed base trio via push/pop
// versus full re-optimization.
func BenchmarkIncrementalCandidateScan(b *testing.B) {
	benchSetup(b)
	cfg := workload.TestConfig()
	base := benchProgs[:3]
	cands := benchProgs[3:]
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			inc := partition.NewIncremental(cfg.Units)
			for _, p := range base {
				if err := inc.Push(p.Curve); err != nil {
					b.Fatal(err)
				}
			}
			for _, c := range cands {
				if err := inc.Push(c.Curve); err != nil {
					b.Fatal(err)
				}
				if _, err := inc.Solve(); err != nil {
					b.Fatal(err)
				}
				if err := inc.Pop(); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, c := range cands {
				curves := []mrc.Curve{base[0].Curve, base[1].Curve, base[2].Curve, c.Curve}
				if _, err := partition.Optimize(partition.Problem{Curves: curves, Units: cfg.Units}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkProfileProgram measures one full-trace profiling pass (the
// paper: "on average 23 times slowdown" for full-trace footprint
// analysis).
func BenchmarkProfileProgram(b *testing.B) {
	cfg := workload.TestConfig()
	spec := workload.Specs()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := workload.Profile(spec, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectReuse pairs the profiling scans on one workload-scale
// trace: the dense-slice fast path ("after"), the map-based reference scan
// ("before", preserved as reuse.CollectReference), and the sharded parallel
// scan. All three produce bit-identical profiles.
func BenchmarkCollectReuse(b *testing.B) {
	cfg := workload.TestConfig()
	spec := workload.Specs()[0]
	gen := spec.Build(uint32(cfg.CacheBlocks()), cfg.Seed)
	tr := trace.Generate(gen, cfg.TraceLen)
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reuse.Collect(tr)
		}
	})
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reuse.CollectReference(tr)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reuse.CollectParallel(nil, tr, 0)
		}
	})
}

// BenchmarkExhaustivePartitionSharing measures the small-scale exhaustive
// §II search used to verify the natural-partition reduction.
func BenchmarkExhaustivePartitionSharing(b *testing.B) {
	benchSetup(b)
	comps := []ps.Program{
		{Name: "a", Fp: benchProgs[0].Fp, Rate: benchProgs[0].Rate},
		{Name: "b", Fp: benchProgs[5].Fp, Rate: benchProgs[5].Rate},
		{Name: "c", Fp: benchProgs[10].Fp, Rate: benchProgs[10].Rate},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sharing.Exhaustive(comps, 8, 64)
	}
}

// BenchmarkHierarchy measures the 3-level hierarchy simulator.
func BenchmarkHierarchy(b *testing.B) {
	tr := ps.Generate(ps.NewZipf(4000, 0.7, 3), 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := ps.NewHierarchy(128, 1024, 4096)
		h.Run(tr)
	}
}

// BenchmarkCRD measures concurrent-reuse-distance analysis of an
// interleaved pair.
func BenchmarkCRD(b *testing.B) {
	a := ps.Generate(ps.NewZipf(2000, 0.6, 1), 1<<15)
	c := ps.Generate(ps.NewLoop(900, 1), 1<<15)
	iv := ps.InterleaveProportional([]ps.Trace{a, c}, []float64{1, 1}, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps.ConcurrentReuseDistances(iv)
	}
}

// BenchmarkSampledVsFullProfiling is the §VII-A profiling cost trade:
// full-trace reuse collection vs 10% spatial sampling.
func BenchmarkSampledVsFullProfiling(b *testing.B) {
	tr := ps.Generate(ps.NewZipf(1<<15, 0.7, 9), 1<<20)
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ps.CollectReuse(tr)
		}
	})
	b.Run("sampled10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ps.CollectReuseSampled(tr, 0.1, 7)
		}
	})
}

// BenchmarkMechanisms measures the hardware-mechanism comparison.
func BenchmarkMechanisms(b *testing.B) {
	traces := []ps.Trace{
		ps.Generate(ps.NewZipf(3000, 0.7, 1), 1<<15),
		ps.Generate(ps.NewSawtooth(1500), 1<<15),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ps.ComparePartitionMechanisms(traces, []int{1024, 2048}, 64, 16); err != nil {
			b.Fatal(err)
		}
	}
}
