// Command partitiond is the cache partition-sharing daemon: it registers
// tenants by hotlprof profile upload, serves miss-ratio-curve queries and
// optimal partition plans for ad-hoc co-run groups, and re-optimizes the
// shared plan in the background as tenants churn — warm-starting the DP
// from the previous epoch and serving the last good plan (flagged
// degraded) when re-optimization fails.
//
// Usage:
//
//	partitiond [-addr HOST:PORT] [-store DIR] [-units N] ...
//
// API (JSON; errors use a typed {"error","detail"} envelope):
//
//	PUT    /v1/tenants/{name}       register/replace (body: hotlprof profile)
//	DELETE /v1/tenants/{name}       unregister
//	GET    /v1/tenants              list tenants
//	GET    /v1/tenants/{name}/mrc   miss-ratio curve (?units=N)
//	POST   /v1/plan                 plan for an ad-hoc group {"tenants":[...]}
//	GET    /v1/plan                 current background epoch plan
//	GET    /v1/plan/history         epoch audit records (?since_epoch=N)
//	GET    /v1/plan/changes         change feed: long-poll (?wait_ms) or SSE (?stream=sse)
//	GET    /healthz, /readyz        liveness / readiness
//
// Every served plan carries a provenance record (epoch, input digest,
// solver path, warm/cold start, triggering cause and trace); every epoch
// transition is diffed, appended to a crash-safe audit log in the store
// directory, and fanned out to /v1/plan/changes subscribers without ever
// back-pressuring re-optimization (slow consumers see a gap marker).
// /debug/epochs renders the retained timeline human-readably.
//
// Robustness: requests run under deadlines (?deadline_ms, capped by
// -deadline) propagated into the DP solve; admission is bounded
// (-max-inflight, -queue-depth) with typed 429/503 shedding; the tenant
// store is crash-safe (atomic snapshot + CRC-framed journal, proven
// byte-identical across kill -9 in the chaos tests). SIGINT/SIGTERM
// trigger a graceful drain: in-flight requests finish (bounded by
// -drain-timeout), listeners stop, the run manifest is written, and the
// process exits 0 on a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"partitionshare/internal/atomicio"
	"partitionshare/internal/obs"
	"partitionshare/internal/service"
)

// finish writes the manifest and closes the debug server exactly once;
// every exit path routes through it.
var finish = func() {}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound listen address to this file (atomic; for scripts wrapping -addr :0)")
	storeDir := flag.String("store", "partitiond-store", "tenant store directory (snapshot + journal)")
	units := flag.Int("units", 1024, "cache size in partition units")
	blocksPerUnit := flag.Int64("blocksperunit", 4, "cache blocks per partition unit")
	maxInflight := flag.Int("max-inflight", 8, "concurrent plan solves admitted")
	queueDepth := flag.Int("queue-depth", 64, "solve requests queued beyond -max-inflight before shedding 429s")
	deadline := flag.Duration("deadline", 2*time.Second, "default (and maximum) per-request deadline")
	reoptDeadline := flag.Duration("reopt-deadline", 10*time.Second, "deadline per background re-optimization attempt")
	retryMax := flag.Int("retry-max", 3, "background re-optimization retries before degraded mode")
	retryBase := flag.Duration("retry-base", 50*time.Millisecond, "base backoff between re-optimization retries (jittered, doubling)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "maximum wait for in-flight requests on shutdown")
	manifestPath := flag.String("manifest", "", "run-manifest path written at exit (empty disables)")
	debugAddr := flag.String("debug-addr", "", "serve live expvar metrics and pprof on this address")
	flightCap := flag.Int("flight-cap", obs.DefaultFlightCap, "request flight-recorder ring capacity for /debug/requests (0 disables)")
	tenantSeriesCap := flag.Int("tenant-series-cap", obs.DefaultChildSetCap, "live per-tenant metric series kept before folding into the 'other' bucket")
	feedBuffer := flag.Int("feed-buffer", 0, "pending epoch events buffered per /v1/plan/changes subscriber before drop-oldest (0 = default)")
	auditRetain := flag.Int("audit-retain", 0, "epoch audit records retained for /v1/plan/history (0 = default)")
	metricsInterval := flag.Duration("metrics-interval", 0, "registry sampling interval for /metrics/history (0 disables)")
	logLevel := flag.String("log-level", "info", "diagnostic log level: debug|info|warn|error")
	logJSON := flag.Bool("log-json", false, "emit the diagnostic log as JSON instead of text")
	flag.Parse()

	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	obs.InitLogging(os.Stderr, level, *logJSON)
	obs.Enable(obs.NewRegistry())
	if *flightCap > 0 {
		obs.EnableFlightRecorder(obs.NewFlightRecorder(*flightCap))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *metricsInterval > 0 {
		samp := obs.StartSampler(ctx, obs.Enabled(), *metricsInterval, 0)
		obs.EnableSampler(samp)
		defer samp.Stop()
	}

	manifest := obs.NewManifest("partitiond", map[string]any{
		"addr":            *addr,
		"store":           *storeDir,
		"units":           *units,
		"blocks_per_unit": *blocksPerUnit,
		"max_inflight":    *maxInflight,
		"queue_depth":     *queueDepth,
		"deadline_ms":     deadline.Milliseconds(),
		"retry_max":       *retryMax,
	})
	dbg, err := obs.StartDebugServer(ctx, *debugAddr)
	if err != nil {
		fatal(err)
	}
	var finishOnce sync.Once
	finish = func() {
		finishOnce.Do(func() {
			dbg.Close()
			if *manifestPath != "" {
				m := manifest.Build(obs.Enabled())
				if err := m.Write(*manifestPath); err != nil {
					obs.Logger().Error("manifest write", "err", err)
				} else {
					obs.Logger().Info("manifest written", "path", *manifestPath)
				}
			}
		})
	}
	defer finish()

	store, err := service.OpenStore(*storeDir, 0)
	if err != nil {
		fatal(err)
	}
	defer store.Close()
	svc, err := service.New(service.Config{
		Units:           *units,
		BlocksPerUnit:   *blocksPerUnit,
		MaxInflight:     *maxInflight,
		QueueDepth:      *queueDepth,
		DefaultDeadline: *deadline,
		ReoptDeadline:   *reoptDeadline,
		RetryMax:        *retryMax,
		RetryBase:       *retryBase,
		TenantSeriesCap: *tenantSeriesCap,
		FeedBuffer:      *feedBuffer,
		AuditRetain:     *auditRetain,
		Seed:            1,
	}, store)
	if err != nil {
		fatal(err)
	}
	defer svc.Close()
	if n := store.Len(); n > 0 {
		obs.Logger().Info("recovered tenants from store", "count", n, "dir", *storeDir)
	}

	srv, err := service.StartServer(ctx, svc, *addr)
	if err != nil {
		fatal(err)
	}
	if *addrFile != "" {
		err := atomicio.WriteFile(*addrFile, func(w io.Writer) error {
			_, err := fmt.Fprintln(w, srv.Addr())
			return err
		})
		if err != nil {
			fatal(err)
		}
	}

	// Serve until a signal cancels ctx or the listener fails.
	select {
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills hard
		obs.Logger().Info("signal received; draining")
		if err := srv.Drain(*drainTimeout); err != nil {
			obs.Logger().Error("drain incomplete", "err", err)
			finish()
			os.Exit(1)
		}
		<-svc.Stopped()
		obs.Logger().Info("drained cleanly")
	case err, ok := <-srv.Err():
		if ok && err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	finish()
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "partitiond: interrupted")
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "partitiond:", err)
	os.Exit(1)
}
