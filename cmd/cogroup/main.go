// Command cogroup assigns programs to shared caches from their HOTL
// profile files — the program-symbiosis scheduling workflow the paper's
// §IV motivates. Profiles come from hotlprof.
//
// Usage:
//
//	cogroup [-caches 2] [-cacheblocks 4096] [-exhaustive] a.hotl b.hotl ...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"partitionshare/internal/compose"
	"partitionshare/internal/obs"
	"partitionshare/internal/profileio"
	"partitionshare/internal/symbiosis"
)

func main() {
	caches := flag.Int("caches", 2, "number of shared caches")
	cacheBlocks := flag.Float64("cacheblocks", 4096, "capacity of each cache in blocks")
	exhaustive := flag.Bool("exhaustive", false, "exhaustive search (<= 10 programs) instead of local search")
	rounds := flag.Int("rounds", 50, "local-search round limit")
	flag.Parse()
	if flag.NArg() < 2 {
		fatal(fmt.Errorf("need at least two profile files"))
	}

	var progs []compose.Program
	for _, path := range flag.Args() {
		p, err := profileio.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		progs = append(progs, compose.Program{Name: p.Name, Fp: p.Footprint(), Rate: p.Rate})
	}

	var grouping symbiosis.Grouping
	var err error
	if *exhaustive {
		grouping, err = symbiosis.Exhaustive(progs, *caches, *cacheBlocks)
	} else {
		grouping, err = symbiosis.Greedy(progs, *caches, *cacheBlocks, *rounds)
	}
	if err != nil {
		fatal(err)
	}

	obs.Progressf("predicted overall miss ratio: %.6f\n", grouping.MissRatio)
	for c, members := range grouping.Caches {
		// Assemble the membership line whole so the serialized reporter
		// emits it in one write, never split mid-line.
		var line strings.Builder
		fmt.Fprintf(&line, "cache %d (%.0f blocks):", c, *cacheBlocks)
		if len(members) == 0 {
			line.WriteString(" (empty)")
		}
		for _, p := range members {
			fmt.Fprintf(&line, " %s", progs[p].Name)
		}
		obs.Progressln(line.String())
	}

	// Per-cache detail: natural occupancies and per-program miss ratios.
	for c, members := range grouping.Caches {
		if len(members) == 0 {
			continue
		}
		sub := make([]compose.Program, len(members))
		for i, p := range members {
			sub[i] = progs[p]
		}
		occ := compose.NaturalPartition(sub, *cacheBlocks)
		mrs := compose.SharedMissRatios(sub, *cacheBlocks)
		for i, p := range members {
			obs.Progressf("  cache %d %-12s occupancy %8.1f blocks  mr %.6f\n",
				c, progs[p].Name, occ[i], mrs[i])
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cogroup:", err)
	os.Exit(1)
}
