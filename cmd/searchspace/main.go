// Command searchspace prints the partition-sharing search-space sizes of
// the paper's §II (Eq. 1–3): S1 (sharing over multiple caches), S2
// (partition-sharing in one cache), and S3 (partitioning only), including
// the paper's worked example of 4 programs on an 8 MB cache of 64 B units.
package main

import (
	"flag"
	"math/big"

	"partitionshare/internal/obs"
	"partitionshare/internal/sharing"
)

func main() {
	npr := flag.Int("programs", 4, "number of programs")
	c := flag.Int("cache", 131072, "cache size in allocation units")
	nc := flag.Int("caches", 2, "number of caches for the S1 (multi-cache sharing) row")
	flag.Parse()

	s1 := sharing.SpaceSharingMultipleCaches(*npr, *nc)
	s2 := sharing.SpacePartitionSharing(*npr, *c)
	s3 := sharing.SpacePartitioningOnly(*npr, *c)

	obs.Progressf("programs npr = %d, cache units C = %d\n\n", *npr, *c)
	obs.Progressf("S1  sharing, %d caches (Stirling {npr,nc}):  %s\n", *nc, group(s1))
	obs.Progressf("S2  partition-sharing, single cache:         %s\n", group(s2))
	obs.Progressf("S3  partitioning only:                       %s\n", group(s3))

	ratio := new(big.Float).Quo(new(big.Float).SetInt(s3), new(big.Float).SetInt(s2))
	f, _ := ratio.Float64()
	obs.Progressf("\npartitioning-only covers %.6f%% of the partition-sharing space\n", f*100)
}

// group inserts thousands separators, matching the paper's presentation.
func group(x *big.Int) string {
	s := x.String()
	neg := false
	if len(s) > 0 && s[0] == '-' {
		neg, s = true, s[1:]
	}
	var out []byte
	for i, ch := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, ch)
	}
	if neg {
		return "-" + string(out)
	}
	return string(out)
}
