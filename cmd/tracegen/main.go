// Command tracegen generates synthetic memory-access traces to files,
// completing the CLI workflow: tracegen → hotlprof → optpart / cogroup.
//
// Usage:
//
//	tracegen -pattern loop -size 4096 -n 1048576 -out loop.trace
//	tracegen -workload lbm -small -binary -out lbm.trace
//
// Patterns: stream (with -repeat), loop, sawtooth, zipf (with -theta),
// or any named synthetic workload via -workload.
package main

import (
	"flag"
	"fmt"
	"os"

	"partitionshare/internal/obs"
	"partitionshare/internal/trace"
	"partitionshare/internal/workload"
)

func main() {
	pattern := flag.String("pattern", "", "stream | loop | sawtooth | zipf")
	wl := flag.String("workload", "", "named synthetic workload (e.g. lbm); alternative to -pattern")
	size := flag.Uint("size", 4096, "working-set size in blocks (loop/sawtooth/zipf)")
	repeat := flag.Int("repeat", 1, "accesses per block (stream/loop)")
	theta := flag.Float64("theta", 1.0, "zipf exponent")
	n := flag.Int("n", 1<<20, "trace length in accesses")
	seed := flag.Uint64("seed", 1, "random seed")
	binaryFormat := flag.Bool("binary", false, "write the compact binary format")
	out := flag.String("out", "", "output path (required)")
	small := flag.Bool("small", false, "use the reduced geometry for -workload")
	flag.Parse()

	if *out == "" {
		fatal(fmt.Errorf("need -out PATH"))
	}
	if *n <= 0 {
		fatal(fmt.Errorf("invalid -n %d", *n))
	}

	var gen trace.Generator
	switch {
	case *pattern != "" && *wl != "":
		fatal(fmt.Errorf("use either -pattern or -workload, not both"))
	case *wl != "":
		cfg := workload.DefaultConfig()
		if *small {
			cfg = workload.TestConfig()
		}
		found := false
		for _, s := range workload.Specs() {
			if s.Name == *wl {
				gen = s.Build(uint32(cfg.CacheBlocks()), *seed)
				if !flagSet("n") {
					*n = cfg.TraceLen
				}
				found = true
				break
			}
		}
		if !found {
			fatal(fmt.Errorf("unknown workload %q", *wl))
		}
	case *pattern == "stream":
		gen = trace.NewStreaming(*repeat)
	case *pattern == "loop":
		gen = trace.NewLoop(uint32(*size), *repeat)
	case *pattern == "sawtooth":
		gen = trace.NewSawtooth(uint32(*size))
	case *pattern == "zipf":
		gen = trace.NewZipf(uint32(*size), *theta, *seed)
	default:
		fatal(fmt.Errorf("need -pattern or -workload"))
	}

	tr := trace.Generate(gen, *n)
	if err := trace.WriteFile(*out, tr, *binaryFormat); err != nil {
		fatal(err)
	}
	obs.Progressf("wrote %d accesses (%d distinct blocks) to %s\n", len(tr), tr.DistinctData(), *out)
}

func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
