package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"partitionshare/internal/faultinject"
	"partitionshare/internal/profileio"
	"partitionshare/internal/reuse"
	"partitionshare/internal/trace"
)

// writeProfiles generates two small hotlprof files for driving run().
func writeProfiles(t *testing.T, dir string) []string {
	t.Helper()
	var paths []string
	for i := uint64(1); i <= 2; i++ {
		g := trace.NewZipf(512, 0.7, i)
		p := profileio.Profile{
			Name:  fmt.Sprintf("p%d", i),
			Rate:  1.0,
			Reuse: reuse.Collect(trace.Generate(g, 4096)),
		}
		path := filepath.Join(dir, p.Name+".hotl")
		if err := profileio.WriteFile(path, p); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}
	return paths
}

func testOptions(t *testing.T, dir string) options {
	t.Helper()
	return options{
		units:         64,
		blocksPerUnit: 4,
		baselines:     true,
		paths:         writeProfiles(t, dir),
	}
}

// TestRunProducesSchemes: the happy path prints all six schemes and
// records their solver paths in the manifest.
func TestRunProducesSchemes(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(t, dir)
	opts.manifestPath = filepath.Join(dir, "manifest.json")
	var buf bytes.Buffer
	if err := run(context.Background(), &buf, opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, scheme := range []string{"Equal", "Natural", "Equal baseline", "Natural baseline", "Optimal", "STTW"} {
		if !strings.Contains(out, scheme) {
			t.Fatalf("output lacks scheme %q:\n%s", scheme, out)
		}
	}
	data, err := os.ReadFile(opts.manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Config struct {
			SolverPaths map[string]string `json:"solver_paths"`
		} `json:"config"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest does not parse: %v", err)
	}
	if m.Config.SolverPaths["Optimal"] == "" {
		t.Fatalf("manifest lacks the Optimal solver path: %s", data)
	}
}

// TestRunCancelledDrainsCleanly: a cancelled context stops the pipeline
// with context.Canceled, still writes the manifest (the drain
// contract), and leaks no goroutines.
func TestRunCancelledDrainsCleanly(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(t, dir)
	opts.manifestPath = filepath.Join(dir, "manifest.json")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	before := runtime.NumGoroutine()
	var buf bytes.Buffer
	err := run(ctx, &buf, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("run(cancelled) = %v, want context.Canceled", err)
	}
	if _, err := os.Stat(opts.manifestPath); err != nil {
		t.Fatalf("interrupted run skipped the manifest: %v", err)
	}
	// Give any stray worker a moment, then require the goroutine count
	// back at (or below) the baseline.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, got)
	}
}

// TestRunMidPipelineCancel interrupts between schemes via the armed
// fault point: completed schemes are printed, later ones are not, and
// the manifest records only the completed solver paths.
func TestRunMidPipelineCancel(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(t, dir)
	opts.manifestPath = filepath.Join(dir, "manifest.json")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	plan := faultinject.NewPlan()
	// Second step: a long benign delay holds the pipeline inside step 2
	// while the watcher cancels; the step's ctx poll must stop the run.
	// The hit counter increments before the injected sleep, so the
	// watcher reliably observes hit 2 during the delay — a short delay
	// loses this race on a single-CPU container.
	plan.Set(FaultSolve, faultinject.Rule{After: 1, Count: 1, Err: faultinject.Benign, Delay: 250 * time.Millisecond})
	faultinject.Enable(plan)
	defer faultinject.Enable(nil)
	go func() {
		for plan.Hits(FaultSolve) < 2 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	var buf bytes.Buffer
	err := run(ctx, &buf, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run = %v, want context.Canceled", err)
	}
	if !strings.Contains(buf.String(), "Equal") {
		t.Fatalf("first scheme missing from interrupted output:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "STTW") {
		t.Fatalf("schemes after the interrupt still ran:\n%s", buf.String())
	}
	if _, err := os.Stat(opts.manifestPath); err != nil {
		t.Fatalf("interrupted run skipped the manifest: %v", err)
	}
}

// TestOptpartSIGTERMExit130 is the end-to-end drain test: a re-exec'd
// optpart main is SIGTERMed mid-pipeline and must exit 130 with the
// manifest written.
func TestOptpartSIGTERMExit130(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	paths := writeProfiles(t, dir)
	manifest := filepath.Join(dir, "manifest.json")

	cmd := exec.Command(os.Args[0], "-test.run", "TestOptpartMainHelper")
	cmd.Env = append(os.Environ(),
		"OPTPART_MAIN_HELPER=1",
		"OPTPART_ARGS=-units 64 -manifest "+manifest+" "+paths[0]+" "+paths[1],
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait for the first scheme to print, then signal while the armed
	// delay holds the pipeline before the next solve.
	sc := bufio.NewScanner(stdout)
	found := false
	for sc.Scan() {
		if strings.Contains(sc.Text(), "Equal") {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("helper never printed the first scheme")
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	err = cmd.Wait()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 130 {
		t.Fatalf("helper exit = %v, want status 130", err)
	}
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatalf("SIGTERM exit skipped the manifest: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest does not parse after SIGTERM: %v", err)
	}
}

// TestOptpartMainHelper is the subprocess half of the SIGTERM test: it
// arms a long delay on the solve fault point and runs the real main.
func TestOptpartMainHelper(t *testing.T) {
	if os.Getenv("OPTPART_MAIN_HELPER") == "" {
		t.Skip("helper process only")
	}
	plan := faultinject.NewPlan()
	plan.Set(FaultSolve, faultinject.Rule{After: 1, Err: faultinject.Benign, Delay: 250 * time.Millisecond})
	faultinject.Enable(plan)
	os.Args = append([]string{"optpart"}, strings.Fields(os.Getenv("OPTPART_ARGS"))...)
	main()
}
