// Command optpart computes cache allocations for a co-run group from HOTL
// profile files, mirroring the paper's optimizer workflow (§VII-A: "the
// optimizer reads 4 footprints from 4 files"). It prints all six schemes —
// Equal, Natural, Equal-baseline, Natural-baseline, Optimal, STTW — with
// per-program allocations and miss ratios.
//
// Usage:
//
//	optpart [-units 1024] [-blocksperunit 4] prog1.hotl prog2.hotl ...
package main

import (
	"flag"
	"fmt"
	"os"

	"partitionshare/internal/compose"
	"partitionshare/internal/mrc"
	"partitionshare/internal/partition"
	"partitionshare/internal/profileio"
)

func main() {
	units := flag.Int("units", 1024, "cache size in partition units")
	blocksPerUnit := flag.Int64("blocksperunit", 4, "cache blocks per partition unit")
	minimax := flag.Bool("minimax", false, "also print the minimax-fair optimal partition")
	flag.Parse()
	if flag.NArg() < 2 {
		fatal(fmt.Errorf("need at least two profile files"))
	}
	if *units < 1 || *blocksPerUnit < 1 {
		fatal(fmt.Errorf("invalid geometry"))
	}

	var curves []mrc.Curve
	var comps []compose.Program
	for _, path := range flag.Args() {
		p, err := profileio.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		fp := p.Footprint()
		curve := mrc.FromFootprint(p.Name, fp, *units, *blocksPerUnit, p.Rate)
		curve.Accesses = int64(float64(curve.Accesses) * p.Rate)
		curves = append(curves, curve)
		comps = append(comps, compose.Program{Name: p.Name, Fp: fp, Rate: p.Rate})
	}

	pr := partition.Problem{Curves: curves, Units: *units}
	show := func(label string, sol partition.Solution) {
		fmt.Printf("%-17s group miss ratio %.6f\n", label, sol.GroupMissRatio)
		for i, c := range curves {
			fmt.Printf("  %-12s %5d units  mr %.6f\n", c.Name, sol.Alloc[i], sol.MissRatios[i])
		}
	}

	equalAlloc := partition.EqualAllocation(len(curves), *units)
	sol, err := partition.Evaluate(pr, equalAlloc)
	if err != nil {
		fatal(err)
	}
	show("Equal", sol)

	naturalAlloc := partition.Allocation(compose.NaturalPartitionUnits(comps, *units, *blocksPerUnit))
	sol, err = partition.Evaluate(pr, naturalAlloc)
	if err != nil {
		fatal(err)
	}
	show("Natural", sol)

	sol, err = partition.OptimizeWithBaseline(curves, *units, equalAlloc)
	if err != nil {
		fatal(err)
	}
	show("Equal baseline", sol)

	sol, err = partition.OptimizeWithBaseline(curves, *units, naturalAlloc)
	if err != nil {
		fatal(err)
	}
	show("Natural baseline", sol)

	sol, err = partition.Optimize(pr)
	if err != nil {
		fatal(err)
	}
	show("Optimal", sol)

	show("STTW", partition.STTW(curves, *units))

	if *minimax {
		sol, err = partition.Optimize(partition.Problem{Curves: curves, Units: *units, Combine: partition.Minimax})
		if err != nil {
			fatal(err)
		}
		show("Minimax", sol)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "optpart:", err)
	os.Exit(1)
}
