// Command optpart computes cache allocations for a co-run group from HOTL
// profile files, mirroring the paper's optimizer workflow (§VII-A: "the
// optimizer reads 4 footprints from 4 files"). It prints all six schemes —
// Equal, Natural, Equal-baseline, Natural-baseline, Optimal, STTW — with
// per-program allocations and miss ratios.
//
// -solver selects the DP strategy (auto walks the solver ladder of
// DESIGN.md §13; exact, dc, and refine force a rung), -baselines=false
// skips everything but the Optimal solve (the large-C timing
// configuration: the baseline-constrained DPs are quadratic in C and
// would dominate a solver-rung measurement), and -manifest writes a run
// manifest recording the geometry, the solver counters, and the
// SolverPath each DP scheme actually took.
//
// SIGINT/SIGTERM drain gracefully: the in-flight solve finishes (the
// Optimal DP itself is cancellable between layers), the manifest is
// written with whatever schemes completed, and the process exits 130.
//
// Usage:
//
//	optpart [-units 1024] [-blocksperunit 4] [-solver auto] prog1.hotl prog2.hotl ...
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"partitionshare/internal/compose"
	"partitionshare/internal/faultinject"
	"partitionshare/internal/mrc"
	"partitionshare/internal/obs"
	"partitionshare/internal/partition"
	"partitionshare/internal/profileio"
)

// FaultSolve fires before each scheme's solve; the drain test arms it
// with a delay to hold the optimizer mid-run while a signal lands.
const FaultSolve = "optpart.solve"

// options carries the parsed flag record into run, so tests can drive
// the full pipeline in-process.
type options struct {
	units         int
	blocksPerUnit int64
	minimax       bool
	solver        partition.Solver
	baselines     bool
	manifestPath  string
	paths         []string
}

func main() {
	units := flag.Int("units", 1024, "cache size in partition units")
	blocksPerUnit := flag.Int64("blocksperunit", 4, "cache blocks per partition unit")
	minimax := flag.Bool("minimax", false, "also print the minimax-fair optimal partition")
	solverFlag := flag.String("solver", "auto", "DP solver: auto|exact|dc|refine")
	baselines := flag.Bool("baselines", true, "compute the baseline schemes (Equal, Natural, Equal/Natural baseline, STTW), not just Optimal")
	manifestPath := flag.String("manifest", "", "run-manifest path recording solver paths and counters (empty disables)")
	flag.Parse()
	if flag.NArg() < 2 {
		fatal(fmt.Errorf("need at least two profile files"))
	}
	if *units < 1 || *blocksPerUnit < 1 {
		fatal(fmt.Errorf("invalid geometry"))
	}
	solver, err := partition.ParseSolver(*solverFlag)
	if err != nil {
		fatal(err)
	}

	// SIGINT/SIGTERM cancel ctx; run drains at the next solve boundary
	// (or mid-DP: the kernel polls ctx between layers), the deferred
	// manifest write still lands, and the exit status is the
	// conventional 130.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err = run(ctx, os.Stdout, options{
		units:         *units,
		blocksPerUnit: *blocksPerUnit,
		minimax:       *minimax,
		solver:        solver,
		baselines:     *baselines,
		manifestPath:  *manifestPath,
		paths:         flag.Args(),
	})
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "optpart: interrupted")
		os.Exit(130)
	}
	if err != nil {
		fatal(err)
	}
}

// run executes the optimizer pipeline, writing scheme reports to w. It
// returns context.Canceled when interrupted; the manifest (when
// requested) is written on every exit path, recording whichever schemes
// completed before the interruption.
func run(ctx context.Context, w io.Writer, opts options) (err error) {
	var curves []mrc.Curve
	var comps []compose.Program
	for _, path := range opts.paths {
		p, rerr := profileio.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		fp := p.Footprint()
		curve := mrc.FromFootprint(p.Name, fp, opts.units, opts.blocksPerUnit, p.Rate)
		curve.Accesses = int64(float64(curve.Accesses) * p.Rate)
		curves = append(curves, curve)
		comps = append(comps, compose.Program{Name: p.Name, Fp: fp, Rate: p.Rate})
	}

	// The manifest, when requested, captures the flag record plus — filled
	// in after each DP solve below — the ladder rung every scheme actually
	// ran (solver_paths), alongside the registry's per-path counters.
	solverPaths := map[string]any{}
	if opts.manifestPath != "" {
		obs.Enable(obs.NewRegistry())
		manifest := obs.NewManifest("optpart", map[string]any{
			"units":           opts.units,
			"blocks_per_unit": opts.blocksPerUnit,
			"programs":        len(opts.paths),
			"solver":          opts.solver.String(),
			"baselines":       opts.baselines,
			"minimax":         opts.minimax,
			"solver_paths":    solverPaths,
		})
		defer func() {
			if werr := manifest.Build(obs.Enabled()).Write(opts.manifestPath); werr != nil && err == nil {
				err = werr
			}
		}()
	}

	pr := partition.Problem{Curves: curves, Units: opts.units, Solver: opts.solver}
	show := func(label string, sol partition.Solution) {
		if sol.SolverPath != "" {
			solverPaths[label] = sol.SolverPath
		}
		fmt.Fprintf(w, "%-17s group miss ratio %.6f\n", label, sol.GroupMissRatio)
		for i, c := range curves {
			fmt.Fprintf(w, "  %-12s %5d units  mr %.6f\n", c.Name, sol.Alloc[i], sol.MissRatios[i])
		}
	}
	// step gates each scheme's solve: the armed fault point (drain tests
	// hold the pipeline here) and then the cancellation poll.
	step := func() error {
		if err := faultinject.Hit(FaultSolve); err != nil {
			return err
		}
		return ctx.Err()
	}

	if opts.baselines {
		equalAlloc := partition.EqualAllocation(len(curves), opts.units)
		if err := step(); err != nil {
			return err
		}
		sol, err := partition.Evaluate(pr, equalAlloc)
		if err != nil {
			return err
		}
		show("Equal", sol)

		naturalAlloc := partition.Allocation(compose.NaturalPartitionUnits(comps, opts.units, opts.blocksPerUnit))
		if err := step(); err != nil {
			return err
		}
		sol, err = partition.Evaluate(pr, naturalAlloc)
		if err != nil {
			return err
		}
		show("Natural", sol)

		if err := step(); err != nil {
			return err
		}
		sol, err = partition.OptimizeBaseline(pr, equalAlloc)
		if err != nil {
			return err
		}
		show("Equal baseline", sol)

		if err := step(); err != nil {
			return err
		}
		sol, err = partition.OptimizeBaseline(pr, naturalAlloc)
		if err != nil {
			return err
		}
		show("Natural baseline", sol)
	}

	if err := step(); err != nil {
		return err
	}
	// workers=1: the serial solve, but cancellable between DP layers.
	sol, err := partition.OptimizeParallel(ctx, pr, 1)
	if err != nil {
		return err
	}
	show("Optimal", sol)

	if opts.baselines {
		if err := step(); err != nil {
			return err
		}
		show("STTW", partition.STTW(curves, opts.units))
	}

	if opts.minimax {
		if err := step(); err != nil {
			return err
		}
		sol, err = partition.OptimizeParallel(ctx, partition.Problem{Curves: curves, Units: opts.units, Combine: partition.Minimax, Solver: opts.solver}, 1)
		if err != nil {
			return err
		}
		show("Minimax", sol)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "optpart:", err)
	os.Exit(1)
}
