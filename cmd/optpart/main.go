// Command optpart computes cache allocations for a co-run group from HOTL
// profile files, mirroring the paper's optimizer workflow (§VII-A: "the
// optimizer reads 4 footprints from 4 files"). It prints all six schemes —
// Equal, Natural, Equal-baseline, Natural-baseline, Optimal, STTW — with
// per-program allocations and miss ratios.
//
// -solver selects the DP strategy (auto walks the solver ladder of
// DESIGN.md §13; exact, dc, and refine force a rung), -baselines=false
// skips everything but the Optimal solve (the large-C timing
// configuration: the baseline-constrained DPs are quadratic in C and
// would dominate a solver-rung measurement), and -manifest writes a run
// manifest recording the geometry, the solver counters, and the
// SolverPath each DP scheme actually took.
//
// Usage:
//
//	optpart [-units 1024] [-blocksperunit 4] [-solver auto] prog1.hotl prog2.hotl ...
package main

import (
	"flag"
	"fmt"
	"os"

	"partitionshare/internal/compose"
	"partitionshare/internal/mrc"
	"partitionshare/internal/obs"
	"partitionshare/internal/partition"
	"partitionshare/internal/profileio"
)

func main() {
	units := flag.Int("units", 1024, "cache size in partition units")
	blocksPerUnit := flag.Int64("blocksperunit", 4, "cache blocks per partition unit")
	minimax := flag.Bool("minimax", false, "also print the minimax-fair optimal partition")
	solverFlag := flag.String("solver", "auto", "DP solver: auto|exact|dc|refine")
	baselines := flag.Bool("baselines", true, "compute the baseline schemes (Equal, Natural, Equal/Natural baseline, STTW), not just Optimal")
	manifestPath := flag.String("manifest", "", "run-manifest path recording solver paths and counters (empty disables)")
	flag.Parse()
	if flag.NArg() < 2 {
		fatal(fmt.Errorf("need at least two profile files"))
	}
	if *units < 1 || *blocksPerUnit < 1 {
		fatal(fmt.Errorf("invalid geometry"))
	}
	solver, err := partition.ParseSolver(*solverFlag)
	if err != nil {
		fatal(err)
	}

	var curves []mrc.Curve
	var comps []compose.Program
	for _, path := range flag.Args() {
		p, err := profileio.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		fp := p.Footprint()
		curve := mrc.FromFootprint(p.Name, fp, *units, *blocksPerUnit, p.Rate)
		curve.Accesses = int64(float64(curve.Accesses) * p.Rate)
		curves = append(curves, curve)
		comps = append(comps, compose.Program{Name: p.Name, Fp: fp, Rate: p.Rate})
	}

	// The manifest, when requested, captures the flag record plus — filled
	// in after each DP solve below — the ladder rung every scheme actually
	// ran (solver_paths), alongside the registry's per-path counters.
	solverPaths := map[string]any{}
	var manifest *obs.ManifestBuilder
	if *manifestPath != "" {
		obs.Enable(obs.NewRegistry())
		manifest = obs.NewManifest("optpart", map[string]any{
			"units":           *units,
			"blocks_per_unit": *blocksPerUnit,
			"programs":        flag.NArg(),
			"solver":          solver.String(),
			"baselines":       *baselines,
			"minimax":         *minimax,
			"solver_paths":    solverPaths,
		})
	}

	pr := partition.Problem{Curves: curves, Units: *units, Solver: solver}
	show := func(label string, sol partition.Solution) {
		if sol.SolverPath != "" {
			solverPaths[label] = sol.SolverPath
		}
		fmt.Printf("%-17s group miss ratio %.6f\n", label, sol.GroupMissRatio)
		for i, c := range curves {
			fmt.Printf("  %-12s %5d units  mr %.6f\n", c.Name, sol.Alloc[i], sol.MissRatios[i])
		}
	}

	if *baselines {
		equalAlloc := partition.EqualAllocation(len(curves), *units)
		sol, err := partition.Evaluate(pr, equalAlloc)
		if err != nil {
			fatal(err)
		}
		show("Equal", sol)

		naturalAlloc := partition.Allocation(compose.NaturalPartitionUnits(comps, *units, *blocksPerUnit))
		sol, err = partition.Evaluate(pr, naturalAlloc)
		if err != nil {
			fatal(err)
		}
		show("Natural", sol)

		sol, err = partition.OptimizeBaseline(pr, equalAlloc)
		if err != nil {
			fatal(err)
		}
		show("Equal baseline", sol)

		sol, err = partition.OptimizeBaseline(pr, naturalAlloc)
		if err != nil {
			fatal(err)
		}
		show("Natural baseline", sol)
	}

	sol, err := partition.Optimize(pr)
	if err != nil {
		fatal(err)
	}
	show("Optimal", sol)

	if *baselines {
		show("STTW", partition.STTW(curves, *units))
	}

	if *minimax {
		sol, err = partition.Optimize(partition.Problem{Curves: curves, Units: *units, Combine: partition.Minimax, Solver: solver})
		if err != nil {
			fatal(err)
		}
		show("Minimax", sol)
	}

	if manifest != nil {
		if err := manifest.Build(obs.Enabled()).Write(*manifestPath); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "optpart:", err)
	os.Exit(1)
}
