// Command benchdiff is the perf-regression watchdog: it compares two
// benchsnap snapshot files benchstat-style and exits nonzero when any
// benchmark slowed down past the threshold, so CI and scripts/verify.sh
// can gate on it.
//
// Usage:
//
//	benchdiff [flags] OLD.json NEW.json
//	benchdiff [flags] -run OLD.json
//
// Each positional file is a benchsnap snapshot; the label to compare is
// taken from -old-label/-new-label, else from the BENCH_<label>.json
// filename convention, else the file's only label. With -run the new
// side is not a file: the benchmark suite is measured live in-process
// (several minutes) and compared against OLD directly.
//
// Exit status: 0 when no benchmark regressed, 1 when at least one
// regressed past -threshold, 2 on usage or file errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"partitionshare/internal/benchdiff"
	"partitionshare/internal/benchsuite"
	"partitionshare/internal/obs"
)

func main() {
	threshold := flag.Float64("threshold", benchdiff.DefaultThresholdPct,
		"regression threshold in percent; a benchmark slower by more than this fails the diff")
	oldLabel := flag.String("old-label", "", "snapshot label to read from OLD (default: infer)")
	newLabel := flag.String("new-label", "", "snapshot label to read from NEW (default: infer)")
	run := flag.Bool("run", false, "measure the benchmark suite live instead of reading NEW.json")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: benchdiff [flags] OLD.json NEW.json\n       benchdiff [flags] -run OLD.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	wantArgs := 2
	if *run {
		wantArgs = 1
	}
	if flag.NArg() != wantArgs {
		flag.Usage()
		os.Exit(2)
	}

	oldPath := flag.Arg(0)
	oldFile, err := benchdiff.Load(oldPath)
	if err != nil {
		fatal(err)
	}
	oldName, err := benchdiff.ChooseLabel(oldFile, oldPath, *oldLabel)
	if err != nil {
		fatal(err)
	}
	oldSnap := oldFile.Snapshots[oldName]

	var newSnap benchdiff.Snapshot
	newName := *newLabel
	if *run {
		if newName == "" {
			newName = "live"
		}
		obs.Logger().Info("profiling workloads (one-time setup)")
		suite, err := benchsuite.New()
		if err != nil {
			fatal(err)
		}
		newSnap = benchsuite.Run(suite.Benches(), func(name string, nsPerOp int64, iters int) {
			obs.Progressf("%-34s %12d ns/op  (%d iters)\n", name, nsPerOp, iters)
		})
		suite.Close()
	} else {
		newPath := flag.Arg(1)
		newFile, err := benchdiff.Load(newPath)
		if err != nil {
			fatal(err)
		}
		newName, err = benchdiff.ChooseLabel(newFile, newPath, *newLabel)
		if err != nil {
			fatal(err)
		}
		newSnap = newFile.Snapshots[newName]
	}

	deltas := benchdiff.Diff(oldSnap, newSnap)
	fmt.Print(benchdiff.Format(deltas, oldName, newName))

	regs := benchdiff.Regressions(deltas, *threshold)
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed past %.1f%%:\n", len(regs), *threshold)
		for _, d := range regs {
			fmt.Fprintf(os.Stderr, "  %s: %d -> %d ns/op (%+.2f%%)\n", d.Name, d.OldNS, d.NewNS, d.Pct)
		}
		os.Exit(1)
	}
	fmt.Printf("benchdiff: no regressions past %.1f%% (%s -> %s, %d benchmarks compared)\n",
		*threshold, oldName, newName, len(deltas))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}
