// Command benchsnap measures the repository's key benchmarks in-process
// (via testing.Benchmark) and records the results in a JSON snapshot file,
// so a PR can document its performance effect next to the code change.
//
// The measured paths mirror the named benchmarks of bench_test.go:
// the per-group optimal-partition DP (pooled kernel, parallel layers, and
// the preserved scatter-form reference), the baseline-constrained DP, the
// DP granularity sweep, one full-trace profiling pass, the three
// reuse-collection scans (dense, map reference, sharded parallel), and the
// full Table I regeneration.
//
// Each run merges its numbers into the output file under -label, keeping
// any other labels already present; a snapshot file therefore accumulates
// e.g. a "seed" column (the pre-change implementation, measurable at any
// time through the *Reference paths) and a "pr1" column.
//
// The run also gates the observability layer's cost: the per-group DP is
// measured with the metrics registry disabled and enabled (best of three
// each), and the process fails if enabling it slows the solve by more
// than obsOverheadLimitPct.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"

	"partitionshare/internal/atomicio"
	"partitionshare/internal/experiment"
	"partitionshare/internal/mrc"
	"partitionshare/internal/obs"
	"partitionshare/internal/partition"
	"partitionshare/internal/reuse"
	"partitionshare/internal/trace"
	"partitionshare/internal/workload"
)

// obsOverheadLimitPct is the acceptance ceiling on the slowdown of the
// per-group optimal-partition DP when the metrics registry is enabled.
const obsOverheadLimitPct = 3.0

// snapshot maps a benchmark name to nanoseconds per operation.
type snapshot map[string]int64

type snapFile struct {
	GoOS      string              `json:"goos"`
	GoArch    string              `json:"goarch"`
	CPUs      int                 `json:"cpus"`
	Snapshots map[string]snapshot `json:"snapshots"`
}

func main() {
	out := flag.String("out", "BENCH_PR4.json", "snapshot file to create or merge into")
	label := flag.String("label", "current", "label for this run's column in the snapshot")
	flag.Parse()

	// Read (and validate) any existing snapshot up front, so a corrupt or
	// unreadable -out fails before minutes of benchmarking, not after.
	f := snapFile{Snapshots: map[string]snapshot{}}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			fatal(fmt.Errorf("%s: %v", *out, err))
		}
	}

	obs.Logger().Info("profiling workloads (one-time setup)")
	cfg := workload.TestConfig()
	progs, err := workload.ProfileAll(nil, workload.Specs(), cfg)
	if err != nil {
		fatal(err)
	}
	full := workload.DefaultConfig()
	full4, err := workload.ProfileAll(nil, workload.Specs()[:4], full)
	if err != nil {
		fatal(err)
	}
	fullCurves := make([]mrc.Curve, len(full4))
	for i, p := range full4 {
		fullCurves[i] = p.Curve
	}
	groupPr := partition.Problem{Curves: fullCurves, Units: 1024}
	equalBase := partition.EqualAllocation(len(fullCurves), 1024)

	spec := workload.Specs()[0]
	gen := spec.Build(uint32(cfg.CacheBlocks()), cfg.Seed)
	tr := trace.Generate(gen, cfg.TraceLen)

	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"OptimalPartitionGroup", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := partition.Optimize(groupPr); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"OptimalPartitionGroupParallel", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := partition.OptimizeParallel(nil, groupPr, 0); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"OptimalPartitionGroupReference", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := partition.ReferenceOptimize(groupPr); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"BaselineOptimizationGroup", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := partition.OptimizeWithBaseline(fullCurves, 1024, equalBase); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ProfileProgram", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := workload.Profile(spec, cfg); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"CollectReuse/dense", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				reuse.Collect(tr)
			}
		}},
		{"CollectReuse/reference", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				reuse.CollectReference(tr)
			}
		}},
		{"CollectReuse/parallel", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := reuse.CollectParallel(nil, tr, 0); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"TableI", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiment.Run(nil, progs, 4, cfg.Units, cfg.BlocksPerUnit, experiment.RunOpts{})
				if err != nil {
					b.Fatal(err)
				}
				experiment.TableI(res)
			}
		}},
	}
	for _, units := range []int{128, 256, 512, 1024, 2048} {
		blocksPerUnit := full.CacheBlocks() / int64(units)
		curves := make([]mrc.Curve, len(full4))
		for i, p := range full4 {
			curves[i] = mrc.FromFootprint(p.Name, p.Fp, units, blocksPerUnit, p.Rate)
		}
		pr := partition.Problem{Curves: curves, Units: units}
		benches = append(benches, struct {
			name string
			fn   func(b *testing.B)
		}{fmt.Sprintf("DPGranularity/units=%d", units), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := partition.Optimize(pr); err != nil {
					b.Fatal(err)
				}
			}
		}})
	}

	snap := snapshot{}
	for _, bm := range benches {
		r := testing.Benchmark(bm.fn)
		snap[bm.name] = r.NsPerOp()
		obs.Progressf("%-34s %12d ns/op  (%d iters)\n", bm.name, r.NsPerOp(), r.N)
	}

	// Observability overhead gate: the per-group DP with the registry
	// disabled vs enabled, best of three runs each to suppress scheduler
	// noise. Both numbers land in the snapshot; a regression past the
	// limit fails the run (after the snapshot is written, so the evidence
	// is preserved).
	optimalBench := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := partition.Optimize(groupPr); err != nil {
				b.Fatal(err)
			}
		}
	}
	obs.Enable(nil)
	offNs := bestOf(3, optimalBench)
	obs.Enable(obs.NewRegistry())
	onNs := bestOf(3, optimalBench)
	obs.Enable(nil)
	snap["ObsOverhead/off"] = offNs
	snap["ObsOverhead/on"] = onNs
	overheadPct := 100 * (float64(onNs) - float64(offNs)) / float64(offNs)
	obs.Progressf("%-34s %12d ns/op\n", "ObsOverhead/off", offNs)
	obs.Progressf("%-34s %12d ns/op  (%+.2f%% vs off, limit %.1f%%)\n",
		"ObsOverhead/on", onNs, overheadPct, obsOverheadLimitPct)

	f.GoOS, f.GoArch, f.CPUs = runtime.GOOS, runtime.GOARCH, runtime.NumCPU()
	if f.Snapshots == nil {
		f.Snapshots = map[string]snapshot{}
	}
	f.Snapshots[*label] = snap

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fatal(err)
	}
	// Atomic write: a kill mid-write must not clobber the accumulated
	// snapshot labels.
	if err := atomicio.WriteFileBytes(*out, append(data, '\n')); err != nil {
		fatal(err)
	}

	labels := make([]string, 0, len(f.Snapshots))
	for l := range f.Snapshots {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	obs.Progressf("wrote %s (labels: %v)\n", *out, labels)

	if overheadPct > obsOverheadLimitPct {
		fatal(fmt.Errorf("observability overhead %.2f%% exceeds the %.1f%% limit (off=%d ns/op, on=%d ns/op)",
			overheadPct, obsOverheadLimitPct, offNs, onNs))
	}
}

// bestOf runs the benchmark n times and returns the fastest ns/op — the
// standard defense against one-off scheduling noise in a pass/fail gate.
func bestOf(n int, fn func(b *testing.B)) int64 {
	best := int64(0)
	for i := 0; i < n; i++ {
		r := testing.Benchmark(fn)
		if ns := r.NsPerOp(); best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchsnap:", err)
	os.Exit(1)
}
