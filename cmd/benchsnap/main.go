// Command benchsnap measures the repository's key benchmarks in-process
// (via testing.Benchmark) and records the results in a JSON snapshot file,
// so a PR can document its performance effect next to the code change.
//
// The benchmark definitions live in internal/benchsuite (shared with
// cmd/benchdiff's -run mode); the snapshot schema lives in
// internal/benchdiff, which also compares two snapshot files.
//
// Each run merges its numbers into the output file under -label, keeping
// any other labels already present; a snapshot file therefore accumulates
// e.g. a "seed" column (the pre-change implementation, measurable at any
// time through the *Reference paths) and a "pr1" column.
//
// The run also gates the observability layer's cost: the per-group DP is
// measured with the metrics registry disabled and enabled (best of three
// each), and the process fails if enabling it slows the solve by more
// than obsOverheadLimitPct.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"partitionshare/internal/atomicio"
	"partitionshare/internal/benchdiff"
	"partitionshare/internal/benchsuite"
	"partitionshare/internal/obs"
)

// obsOverheadLimitPct is the acceptance ceiling on the slowdown of the
// per-group optimal-partition DP when the metrics registry is enabled,
// and of the service plan-request path when the full request-telemetry
// envelope (registry, tracer, flight recorder, trace context) is live.
const obsOverheadLimitPct = 3.0

func main() {
	out := flag.String("out", "BENCH_PR10.json", "snapshot file to create or merge into")
	label := flag.String("label", "current", "label for this run's column in the snapshot")
	flag.Parse()

	// Read (and validate) any existing snapshot up front, so a corrupt or
	// unreadable -out fails before minutes of benchmarking, not after.
	f := benchdiff.File{Snapshots: map[string]benchdiff.Snapshot{}}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			fatal(fmt.Errorf("%s: %v", *out, err))
		}
	}

	obs.Logger().Info("profiling workloads (one-time setup)")
	suite, err := benchsuite.New()
	if err != nil {
		fatal(err)
	}
	defer suite.Close()

	snap := benchdiff.Snapshot(benchsuite.Run(suite.Benches(), func(name string, nsPerOp int64, iters int) {
		obs.Progressf("%-34s %12d ns/op  (%d iters)\n", name, nsPerOp, iters)
	}))

	// Observability overhead gate: the per-group DP with the registry
	// disabled vs enabled, best of three runs each to suppress scheduler
	// noise. Both numbers land in the snapshot; a regression past the
	// limit fails the run (after the snapshot is written, so the evidence
	// is preserved).
	// Vetkit self-run wall time: the tier-1 static-analysis gate's cost,
	// recorded so a slow analyzer surfaces as a perf regression just like
	// a kernel change (the CI budget for the gate is 60 seconds).
	obs.Logger().Info("measuring vetkit self-run")
	vetNs := benchsuite.BestOf(1, benchsuite.VetkitSelfRunBench())
	snap["VetkitSelfRun"] = vetNs
	obs.Progressf("%-34s %12d ns/op\n", "VetkitSelfRun", vetNs)

	// Both overhead gates interleave their off/on rounds (BestOfPaired):
	// sequential best-of blocks sample different machine phases, and the
	// phase-to-phase drift on a shared box can exceed the 3% threshold
	// on its own.
	optimalBench := suite.OptimalBench()
	offNs, onNs := benchsuite.BestOfPaired(3,
		func() { obs.Enable(nil) }, optimalBench,
		func() { obs.Enable(obs.NewRegistry()) }, optimalBench)
	snap["ObsOverhead/off"] = offNs
	snap["ObsOverhead/on"] = onNs
	overheadPct := 100 * (float64(onNs) - float64(offNs)) / float64(offNs)
	obs.Progressf("%-34s %12d ns/op\n", "ObsOverhead/off", offNs)
	obs.Progressf("%-34s %12d ns/op  (%+.2f%% vs off, limit %.1f%%)\n",
		"ObsOverhead/on", onNs, overheadPct, obsOverheadLimitPct)

	// The service-layer twin of the DP gate: the plan-request path bare
	// (every telemetry global nil) vs under the full request-telemetry
	// envelope with registry, tracer, and flight recorder live. This is
	// the per-request tax the request middleware adds, gated at the same
	// ceiling.
	telemetryOff := func() {
		obs.Enable(nil)
		obs.EnableTracer(nil)
		obs.EnableFlightRecorder(nil)
	}
	telemetryOn := func() {
		obs.Enable(obs.NewRegistry())
		obs.EnableTracer(obs.NewTracer(0, nil))
		obs.EnableFlightRecorder(obs.NewFlightRecorder(0))
	}
	svcOffNs, svcOnNs := benchsuite.BestOfPaired(3,
		telemetryOff, suite.ServicePlanBench(false),
		telemetryOn, suite.ServicePlanBench(true))
	snap["ObsOverheadService/off"] = svcOffNs
	snap["ObsOverheadService/on"] = svcOnNs
	svcOverheadPct := 100 * (float64(svcOnNs) - float64(svcOffNs)) / float64(svcOffNs)
	obs.Progressf("%-34s %12d ns/op\n", "ObsOverheadService/off", svcOffNs)
	obs.Progressf("%-34s %12d ns/op  (%+.2f%% vs off, limit %.1f%%)\n",
		"ObsOverheadService/on", svcOnNs, svcOverheadPct, obsOverheadLimitPct)

	f.GoOS, f.GoArch, f.CPUs = runtime.GOOS, runtime.GOARCH, runtime.NumCPU()
	if f.Snapshots == nil {
		f.Snapshots = map[string]benchdiff.Snapshot{}
	}
	f.Snapshots[*label] = snap

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fatal(err)
	}
	// Atomic write: a kill mid-write must not clobber the accumulated
	// snapshot labels.
	if err := atomicio.WriteFileBytes(*out, append(data, '\n')); err != nil {
		fatal(err)
	}
	obs.Progressf("wrote %s (labels: %v)\n", *out, f.Labels())

	if overheadPct > obsOverheadLimitPct {
		fatal(fmt.Errorf("observability overhead %.2f%% exceeds the %.1f%% limit (off=%d ns/op, on=%d ns/op)",
			overheadPct, obsOverheadLimitPct, offNs, onNs))
	}
	if svcOverheadPct > obsOverheadLimitPct {
		fatal(fmt.Errorf("service telemetry overhead %.2f%% exceeds the %.1f%% limit (off=%d ns/op, on=%d ns/op)",
			svcOverheadPct, obsOverheadLimitPct, svcOffNs, svcOnNs))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchsnap:", err)
	os.Exit(1)
}
