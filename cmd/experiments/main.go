// Command experiments reproduces the paper's evaluation (§VII): it
// profiles the 16-program synthetic suite, evaluates all 1820 4-program
// co-run groups under the six allocation schemes, and regenerates Table I
// and Figures 5, 6, and 7 as ASCII charts plus CSV files.
//
// Usage:
//
//	experiments [-small] [-out DIR] [-groupsize N] [-validate] [-resume]
//
// The group sweep periodically checkpoints completed groups to
// DIR/checkpoint.json (atomic write-temp+rename). SIGINT/SIGTERM trigger a
// graceful drain: in-flight groups finish, the checkpoint is flushed, and
// the process exits with status 130. A subsequent run with -resume loads
// the checkpoint and evaluates only the remaining groups; outputs are
// byte-identical to an uninterrupted run. The checkpoint is deleted after
// a fully successful sweep.
//
// Observability: every run records a manifest (-manifest, default
// DIR/manifest.json) — config, build version, per-stage wall/CPU time,
// and the pipeline's counters (groups completed/failed/resumed, DP cells,
// cache-sim accesses) — written atomically on every exit path, including
// interruption. -debug-addr serves live expvar metrics and pprof;
// -cpuprofile/-memprofile/-trace capture profiles; -log-level/-log-json
// shape the structured diagnostic log on stderr.
//
// CSV outputs in DIR (default "results"):
//
//	table1.csv   — improvement of Optimal over the other five schemes
//	fig5_<p>.csv — per-program miss ratios across co-run groups
//	fig6.csv     — group miss ratio of five schemes, sorted by Optimal
//	fig7.csv     — Optimal vs STTW, sorted by Optimal
//	validate.csv — HOTL-predicted vs simulated miss ratios (with -validate)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"partitionshare/internal/atomicio"
	"partitionshare/internal/experiment"
	"partitionshare/internal/obs"
	"partitionshare/internal/partition"
	"partitionshare/internal/textplot"
	"partitionshare/internal/workload"
)

// finish runs the shutdown sequence — stop profiles, write the heap
// profile, flush the manifest, close the debug server — exactly once.
// Installed by main; fatal routes through it so no exit path skips the
// manifest.
var finish = func() {}

func main() {
	small := flag.Bool("small", false, "use the reduced test geometry")
	outDir := flag.String("out", "results", "directory for CSV outputs")
	groupSize := flag.Int("groupsize", 4, "programs per co-run group")
	validate := flag.Bool("validate", false, "also run the pair-prediction validation (slow)")
	correlate := flag.Bool("correlate", false, "also run the locality-performance correlation study (slow)")
	granularity := flag.Bool("granularity", false, "also run the partition-granularity ablation")
	policy := flag.Bool("policy", false, "also run the replacement-policy study (slow)")
	epochFlag := flag.Bool("epoch", false, "also run the dynamic-vs-static repartitioning study on the phased suite")
	resume := flag.Bool("resume", false, "resume the group sweep from the checkpoint in -out")
	checkpointEvery := flag.Int("checkpoint-every", 0, "checkpoint after this many completed groups (0 = default interval)")
	workers := flag.Int("workers", 0, "worker goroutines for the group sweep (0 = GOMAXPROCS)")
	solverFlag := flag.String("solver", "auto", "DP solver for every scheme's solve: auto|exact|dc|refine")
	failFast := flag.Bool("failfast", false, "abort the sweep on the first group error instead of collecting errors")
	debugAddr := flag.String("debug-addr", "", "serve live expvar metrics and pprof on this address (e.g. localhost:6060)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	traceOut := flag.String("trace", "", "write a runtime execution trace to this file")
	traceEvents := flag.String("trace-events", "", "write a Chrome trace_event JSON timeline to this file (view in Perfetto)")
	metricsInterval := flag.Duration("metrics-interval", 0, "sample registry metrics at this interval for /metrics/history and the manifest (0 disables)")
	manifestPath := flag.String("manifest", "", "run-manifest path (default <out>/manifest.json; \"none\" disables)")
	logLevel := flag.String("log-level", "info", "diagnostic log level: debug|info|warn|error")
	logJSON := flag.Bool("log-json", false, "emit the diagnostic log as JSON instead of text")
	flag.Parse()

	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	obs.InitLogging(os.Stderr, level, *logJSON)
	solver, err := partition.ParseSolver(*solverFlag)
	if err != nil {
		fatal(err)
	}
	obs.Enable(obs.NewRegistry())

	// SIGINT/SIGTERM cancel ctx; every stage below drains gracefully and
	// returns context.Canceled, which exits with the conventional 130.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := workload.DefaultConfig()
	if *small {
		cfg = workload.TestConfig()
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	ckptPath := filepath.Join(*outDir, "checkpoint.json")
	if *manifestPath == "" {
		*manifestPath = filepath.Join(*outDir, "manifest.json")
	}

	manifest := obs.NewManifest("experiments", map[string]any{
		"small":           *small,
		"groupsize":       *groupSize,
		"units":           cfg.Units,
		"blocks_per_unit": cfg.BlocksPerUnit,
		"trace_len":       cfg.TraceLen,
		"workers":         *workers,
		"solver":          solver.String(),
		"validate":        *validate,
		"correlate":       *correlate,
		"granularity":     *granularity,
		"policy":          *policy,
		"epoch":           *epochFlag,
	})

	srv, err := obs.StartDebugServer(ctx, *debugAddr)
	if err != nil {
		fatal(err)
	}
	var tracer *obs.Tracer
	if *traceEvents != "" {
		tw, err := obs.StartTraceEvents(*traceEvents)
		if err != nil {
			fatal(err)
		}
		tracer = obs.NewTracer(0, tw)
		obs.EnableTracer(tracer)
	}
	sampler := obs.StartSampler(ctx, obs.Enabled(), *metricsInterval, 0)
	obs.EnableSampler(sampler)
	stopCPU := func() error { return nil }
	if *cpuProfile != "" {
		if stopCPU, err = obs.StartCPUProfile(*cpuProfile); err != nil {
			fatal(err)
		}
	}
	stopTrace := func() error { return nil }
	if *traceOut != "" {
		if stopTrace, err = obs.StartTrace(*traceOut); err != nil {
			fatal(err)
		}
	}
	var finishOnce sync.Once
	finish = func() {
		finishOnce.Do(func() {
			if err := stopCPU(); err != nil {
				obs.Logger().Error("cpu profile", "err", err)
			}
			if err := stopTrace(); err != nil {
				obs.Logger().Error("execution trace", "err", err)
			}
			if *memProfile != "" {
				if err := obs.WriteHeapProfile(*memProfile); err != nil {
					obs.Logger().Error("heap profile", "err", err)
				}
			}
			sampler.Stop()
			obs.EnableSampler(nil)
			if err := tracer.Close(); err != nil {
				obs.Logger().Error("trace events", "err", err)
			}
			obs.EnableTracer(nil)
			srv.Close()
			if *manifestPath != "none" {
				m := manifest.Build(obs.Enabled()).WithTimeSeries(sampler)
				if err := m.Write(*manifestPath); err != nil {
					obs.Logger().Error("manifest write", "err", err)
				} else {
					obs.Logger().Info("manifest written", "path", *manifestPath,
						"wall_ns", m.Meta.WallNS, "cpu_ns", m.Meta.CPUNS)
				}
			}
		})
	}
	defer finish()

	start := time.Now()
	obs.Progressf("profiling %d programs (units=%d, blocks/unit=%d, trace=%d)...\n",
		len(workload.Specs()), cfg.Units, cfg.BlocksPerUnit, cfg.TraceLen)
	profileCtx, profileSpan := obs.Enabled().StartSpan(ctx, "profile")
	progs, err := workload.ProfileAll(profileCtx, workload.Specs(), cfg)
	if err != nil {
		fatal(err)
	}
	profileSpan.End()
	obs.Progressf("profiled in %v\n", time.Since(start).Round(time.Millisecond))

	opts := experiment.RunOpts{
		Workers:         *workers,
		FailFast:        *failFast,
		CheckpointPath:  ckptPath,
		CheckpointEvery: *checkpointEvery,
		Solver:          solver,
		OnProgress:      sweepProgress(),
	}
	if *resume {
		ck, err := experiment.ReadCheckpoint(ckptPath)
		switch {
		case errors.Is(err, os.ErrNotExist):
			obs.Progressf("no checkpoint at %s; starting from scratch\n", ckptPath)
		case err != nil:
			fatal(err)
		default:
			obs.Progressf("resuming: %d groups already completed in %s\n", len(ck.Groups), ckptPath)
			opts.Resume = ck
		}
	}

	start = time.Now()
	sweepCtx, sweepSpan := obs.Enabled().StartSpan(ctx, "sweep")
	res, err := experiment.Run(sweepCtx, progs, *groupSize, cfg.Units, cfg.BlocksPerUnit, opts)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			obs.Logger().Warn("interrupted; checkpoint saved", "path", ckptPath)
			fmt.Fprintf(os.Stderr, "experiments: interrupted; checkpoint saved to %s (rerun with -resume)\n", ckptPath)
			finish()
			os.Exit(130)
		}
		fatal(err)
	}
	sweepSpan.End()
	// The sweep finished; the checkpoint has served its purpose.
	if err := os.Remove(ckptPath); err != nil && !errors.Is(err, os.ErrNotExist) {
		obs.Logger().Warn("cannot remove checkpoint", "path", ckptPath, "err", err)
	}
	obs.Progressf("evaluated %d co-run groups x 6 schemes in %v (%.1f ms/group)\n\n",
		len(res.Groups), time.Since(start).Round(time.Millisecond),
		float64(time.Since(start).Milliseconds())/float64(len(res.Groups)))

	_, reportsSpan := obs.Enabled().StartSpan(ctx, "reports")

	// ---- Table I ----
	rows := experiment.TableI(res)
	obs.Progressln("Table I: improvement of group performance by Optimal")
	obs.Progressf("%s", experiment.FormatTableI(rows))
	tableSeries := []textplot.Series{}
	for _, r := range rows {
		tableSeries = append(tableSeries, textplot.Series{
			Name:   r.Baseline.String(),
			Values: []float64{r.Max, r.Avg, r.Median, r.AtLeast10, r.AtLeast20},
		})
	}
	writeCSV(*outDir, "table1.csv", tableSeries)

	// ---- Figure 6: five schemes sorted by Optimal ----
	schemes := []experiment.Scheme{experiment.Natural, experiment.Equal,
		experiment.NaturalBaseline, experiment.EqualBaseline, experiment.Optimal}
	g6 := experiment.GroupSeries(res, schemes)
	var fig6 []textplot.Series
	for _, s := range schemes {
		fig6 = append(fig6, textplot.Series{Name: s.String(), Values: g6[s]})
	}
	writeCSV(*outDir, "fig6.csv", fig6)
	obs.Progressln(textplot.Chart{
		Title:  "Figure 6: group miss ratio of the five partitioning methods (sorted by Optimal)",
		Series: fig6,
	}.Render())

	// ---- Figure 7: Optimal vs STTW ----
	g7 := experiment.GroupSeries(res, []experiment.Scheme{experiment.STTW, experiment.Optimal})
	fig7 := []textplot.Series{
		{Name: "Stone-Thiebaut-Turek-Wolf", Values: g7[experiment.STTW]},
		{Name: "Optimal", Values: g7[experiment.Optimal]},
	}
	writeCSV(*outDir, "fig7.csv", fig7)
	obs.Progressln(textplot.Chart{
		Title:  "Figure 7: group miss ratio of Optimal and STTW (sorted by Optimal)",
		Series: fig7,
	}.Render())

	// ---- Figure 5: per-program miss ratios ----
	fig5Schemes := []experiment.Scheme{experiment.Natural, experiment.Equal,
		experiment.NaturalBaseline, experiment.EqualBaseline, experiment.Optimal}
	obs.Progressln("Figure 5: per-program miss ratio across co-run groups")
	obs.Progressf("%-10s %9s %9s %9s %9s %9s   %s\n",
		"program", "equal", "nat(avg)", "natbase", "eqbase", "opt(avg)", "gain/tie/loss vs equal")
	for i, p := range res.Programs {
		series := experiment.ProgramSeries(res, i, fig5Schemes)
		var out []textplot.Series
		for _, s := range fig5Schemes {
			out = append(out, textplot.Series{Name: s.String(), Values: series[s]})
		}
		writeCSV(*outDir, fmt.Sprintf("fig5_%s.csv", p.Name), out)
		gain, tie, loss := experiment.GainLoss(res, i, 0.02)
		obs.Progressf("%-10s %9.5f %9.5f %9.5f %9.5f %9.5f   %d/%d/%d\n",
			p.Name,
			series[experiment.Equal][0],
			mean(series[experiment.Natural]),
			mean(series[experiment.NaturalBaseline]),
			mean(series[experiment.EqualBaseline]),
			mean(series[experiment.Optimal]),
			gain, tie, loss)
	}

	// ---- Unfairness of Optimal (§VII-B) ----
	obs.Progressln("\nUnfairness of Optimal (groups where Optimal makes the program worse):")
	obs.Progressf("%-10s %18s %18s\n", "program", "vs Natural", "vs Equal")
	for i, p := range res.Programs {
		wn, tn := experiment.UnfairnessCount(res, i, experiment.Natural)
		we, te := experiment.UnfairnessCount(res, i, experiment.Equal)
		obs.Progressf("%-10s %11d/%d %11d/%d\n", p.Name, wn, tn, we, te)
	}
	reportsSpan.End()

	if *validate {
		vctx, span := obs.Enabled().StartSpan(ctx, "validate")
		runValidation(vctx, cfg, *outDir)
		span.End()
	}
	if *correlate {
		cctx, span := obs.Enabled().StartSpan(ctx, "correlate")
		runCorrelation(cctx, cfg, *outDir)
		span.End()
	}
	if *granularity {
		_, span := obs.Enabled().StartSpan(ctx, "granularity")
		runGranularity(res.Programs, cfg)
		span.End()
	}
	if *policy {
		pctx, span := obs.Enabled().StartSpan(ctx, "policy")
		runPolicy(pctx, cfg)
		span.End()
	}
	if *epochFlag {
		ectx, span := obs.Enabled().StartSpan(ctx, "epoch")
		runEpochStudy(ectx, cfg)
		span.End()
	}
}

// sweepProgress returns the Run OnProgress callback: it reports sweep
// completion through the serialized progress reporter once per 10% step,
// so concurrent workers produce a handful of whole lines rather than
// thousands of interleaved fragments.
func sweepProgress() func(processed, total int) {
	var lastDecile atomic.Int64
	lastDecile.Store(-1)
	return func(processed, total int) {
		if total == 0 {
			return
		}
		decile := int64(processed * 10 / total)
		for {
			last := lastDecile.Load()
			if decile <= last {
				return
			}
			if lastDecile.CompareAndSwap(last, decile) {
				obs.Progressf("sweep: %d/%d groups (%d%%)\n", processed, total, decile*10)
				return
			}
		}
	}
}

// runEpochStudy prints the dynamic-vs-static repartitioning comparison on
// the phased (antiphase) suite — the §VIII random-phase caveat.
func runEpochStudy(ctx context.Context, cfg workload.Config) {
	ecfg := cfg
	if ecfg.TraceLen > 1<<21 {
		ecfg.TraceLen = 1 << 21
	}
	specs := workload.PhasedSpecs()
	phaseLen := ecfg.TraceLen / 8
	groups := [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {0, 1, 2, 3}, {4, 5, 6, 7}, {0, 3, 4, 7}}
	rows, err := experiment.EpochStudy(ctx, specs, ecfg, groups, phaseLen)
	if err != nil {
		fatal(err)
	}
	obs.Progressf("\nDynamic vs static repartitioning on the phased suite (§VIII caveat):\n")
	obs.Progressf("%-40s %12s %12s %9s\n", "group", "static MR", "dynamic MR", "gain")
	for _, r := range rows {
		obs.Progressf("%-40s %12.5f %12.5f %8.1f%%\n",
			fmt.Sprint(r.Members), r.StaticMR, r.DynamicMR, 100*r.Gain())
	}
}

// runCorrelation reproduces the §VIII locality-performance correlation:
// predicted miss ratio vs simulated co-run time over sampled groups.
func runCorrelation(ctx context.Context, cfg workload.Config, outDir string) {
	ccfg := cfg
	if ccfg.TraceLen > 1<<20 {
		ccfg.TraceLen = 1 << 20
	}
	specs := workload.Specs()
	all, err := experiment.Combinations(len(specs), 4)
	if err != nil {
		fatal(err)
	}
	var sample [][]int
	for i := 0; i < len(all); i += 18 { // ~100 groups
		sample = append(sample, all[i])
	}
	start := time.Now()
	res, err := experiment.CorrelationStudy(ctx, specs, ccfg, sample, 100)
	if err != nil {
		fatal(err)
	}
	obs.Progressf("\nLocality-performance correlation (§VIII): %d groups simulated in %v\n",
		len(sample), time.Since(start).Round(time.Millisecond))
	obs.Progressf("Pearson r(predicted miss ratio, simulated time) = %.3f (paper: 0.938)\n", res.Pearson)
	writeCSV(outDir, "correlation.csv", []textplot.Series{
		{Name: "predicted_mr", Values: res.Predicted},
		{Name: "simulated_time", Values: res.SimulatedTime},
	})
}

// runGranularity prints the §VII-A granularity ablation.
func runGranularity(progs []workload.Program, cfg workload.Config) {
	groups, err := experiment.Combinations(len(progs), 4)
	if err != nil {
		fatal(err)
	}
	var sample [][]int
	for i := 0; i < len(groups); i += 36 { // ~50 groups
		sample = append(sample, groups[i])
	}
	counts := []int{cfg.Units, cfg.Units / 4, cfg.Units / 16, cfg.Units / 64}
	pts, err := experiment.GranularityStudy(progs, cfg, sample, counts)
	if err != nil {
		fatal(err)
	}
	obs.Progressf("\nGranularity ablation (§VII-A), %d sampled groups:\n", len(sample))
	obs.Progressf("%8s %14s %14s %14s\n", "units", "blocks/unit", "mean groupMR", "DP time")
	for _, p := range pts {
		obs.Progressf("%8d %14d %14.5f %14v\n", p.Units, p.BlocksPerUnit, p.MeanGroupMR, p.MeanSolveTime.Round(time.Microsecond))
	}
}

// runPolicy prints the §VIII replacement-policy comparison.
func runPolicy(ctx context.Context, cfg workload.Config) {
	pcfg := cfg
	if pcfg.TraceLen > 1<<21 {
		pcfg.TraceLen = 1 << 21
	}
	specs := workload.Specs()[:8]
	caps := []int{int(pcfg.CacheBlocks()) / 4, int(pcfg.CacheBlocks())}
	rows, err := experiment.PolicyStudy(ctx, specs, pcfg, caps)
	if err != nil {
		fatal(err)
	}
	obs.Progressf("\nReplacement-policy study (§VIII): simulated miss ratios vs the HOTL (LRU) model\n")
	obs.Progressf("%-10s %10s %9s %9s %9s %9s\n", "program", "capacity", "LRU", "CLOCK", "random", "HOTL")
	for _, r := range rows {
		obs.Progressf("%-10s %10d %9.5f %9.5f %9.5f %9.5f\n", r.Program, r.Capacity, r.LRU, r.Clock, r.Random, r.HOTL)
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// writeCSV writes one CSV output atomically, so a kill mid-run never
// leaves a truncated results file.
func writeCSV(dir, name string, series []textplot.Series) {
	err := atomicio.WriteFile(filepath.Join(dir, name), func(w io.Writer) error {
		return textplot.WriteCSV(w, series)
	})
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	finish()
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "experiments: interrupted")
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
