package main

import (
	"context"
	"time"

	"partitionshare/internal/experiment"
	"partitionshare/internal/obs"
	"partitionshare/internal/textplot"
	"partitionshare/internal/workload"
)

// runValidation reproduces the §VII-C validation: for all program pairs,
// the HOTL-predicted co-run miss ratios are compared against a shared-LRU
// simulation (standing in for the paper's hardware counters). It prints
// the error distribution and writes validate.csv.
func runValidation(ctx context.Context, cfg workload.Config, outDir string) {
	// Validation re-generates and simulates traces; cap the scale.
	vcfg := cfg
	if vcfg.TraceLen > 1<<20 {
		vcfg.TraceLen = 1 << 20
	}
	specs := workload.Specs()
	nPairs, err := experiment.CombinationCount(len(specs), 2)
	if err != nil {
		fatal(err)
	}
	obs.Progressf("\nValidation (§VII-C): HOTL prediction vs shared-LRU simulation, %d pairs\n", nPairs)
	start := time.Now()
	vs, err := experiment.ValidatePairs(ctx, specs, vcfg)
	if err != nil {
		fatal(err)
	}
	sum := experiment.SummarizeValidation(vs, 0.01)
	obs.Progressf("predicted %d miss ratios in %v: mean |err| = %.4f, max |err| = %.4f, %.1f%% within 0.01\n",
		sum.N, time.Since(start).Round(time.Millisecond),
		sum.MeanAbsErr, sum.MaxAbsErr, 100*sum.WithinTol)

	pred := textplot.Series{Name: "predicted"}
	meas := textplot.Series{Name: "measured"}
	for _, v := range vs {
		pred.Values = append(pred.Values, v.Predicted)
		meas.Values = append(meas.Values, v.Measured)
	}
	writeCSV(outDir, "validate.csv", []textplot.Series{pred, meas})
}
