// Vetkit is the project's static-analysis gate: a multichecker bundling
// the invariant analyzers under internal/analysis (see DESIGN.md §10).
// It speaks the cmd/go vet-tool protocol, so the same binary serves
// three invocations:
//
//	go run ./cmd/vetkit ./...                # standalone over packages
//	go vet -vettool=$(which vetkit) ./...    # as a vet tool
//	vetkit -atomicwrite ./...                # a subset of analyzers
//
// Standalone mode re-executes itself through `go vet -vettool`, which
// loads packages exactly the way the build does — test files included,
// dependencies served from compiler export data — so there is no
// second, subtly different package loader to maintain. Since PR 8 the
// protocol also carries facts: each unit writes the facts its analyzers
// exported to its VetxOutput file, and later units read dependencies'
// facts back through the vet.cfg PackageVetx map, making the suite
// interprocedural across package boundaries.
//
// Standalone mode prints a summary line (packages, diagnostics,
// suppressions honored) and can emit a SARIF 2.1.0 report with -sarif
// for CI inline annotations.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"partitionshare/internal/analysis"
	"partitionshare/internal/analysis/atomicwrite"
	"partitionshare/internal/analysis/chanclose"
	"partitionshare/internal/analysis/ctxplumb"
	"partitionshare/internal/analysis/deadlineprop"
	"partitionshare/internal/analysis/errsentinel"
	"partitionshare/internal/analysis/floatcmp"
	"partitionshare/internal/analysis/goroutinejoin"
	"partitionshare/internal/analysis/httpenvelope"
	"partitionshare/internal/analysis/lockorder"
	"partitionshare/internal/analysis/obsname"
	"partitionshare/internal/analysis/sarif"
	"partitionshare/internal/atomicio"
)

// all is the full suite, in the order diagnostics are reported.
var all = []*analysis.Analyzer{
	atomicwrite.Analyzer,
	chanclose.Analyzer,
	ctxplumb.Analyzer,
	deadlineprop.Analyzer,
	errsentinel.Analyzer,
	floatcmp.Analyzer,
	goroutinejoin.Analyzer,
	httpenvelope.Analyzer,
	lockorder.Analyzer,
	obsname.Analyzer,
}

// allNames is handed to every unit run so //vetkit:ignore comments can
// be validated against the full suite even when a subset is enabled.
func allNames() []string {
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return names
}

func main() {
	// cmd/go probes `-V=full` (for the build cache key) and `-flags`
	// (to learn which command-line flags the tool accepts) before any
	// real work; both must answer on stdout and exit 0.
	if len(os.Args) == 2 {
		switch os.Args[1] {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			printFlags()
			return
		}
	}

	enabled := make(map[string]*bool, len(all))
	for _, a := range all {
		enabled[a.Name] = flag.Bool(a.Name, false, "run only the "+a.Name+" analyzer (with any others explicitly enabled)")
	}
	sarifPath := flag.String("sarif", "", "also write a SARIF 2.1.0 report to this path (standalone mode)")
	flag.Usage = usage
	flag.Parse()

	// Like x/tools' multichecker: naming any analyzer flag runs just the
	// named subset; naming none runs everything.
	suite := all
	var subset []*analysis.Analyzer
	for _, a := range all {
		if *enabled[a.Name] {
			subset = append(subset, a)
		}
	}
	if len(subset) > 0 {
		suite = subset
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0], suite, allNames()))
	}
	os.Exit(standalone(suite, args, *sarifPath))
}

// standalone re-invokes the current binary through `go vet -vettool` on
// the given package patterns, then aggregates the per-unit diagnostic
// records into a summary line and an optional SARIF report.
func standalone(suite []*analysis.Analyzer, patterns []string, sarifPath string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "vetkit: cannot locate own executable: %v\n", err)
		return 1
	}
	diagDir, err := os.MkdirTemp("", "vetkit-diag-")
	if err != nil {
		fmt.Fprintf(os.Stderr, "vetkit: %v\n", err)
		return 1
	}
	defer os.RemoveAll(diagDir)

	vetArgs := []string{"vet", "-vettool=" + exe}
	if len(suite) != len(all) {
		for _, a := range suite {
			vetArgs = append(vetArgs, "-"+a.Name)
		}
	}
	vetArgs = append(vetArgs, patterns...)
	cmd := exec.Command("go", vetArgs...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Env = append(os.Environ(), diagDirEnv+"="+diagDir)
	code := 0
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else {
			fmt.Fprintf(os.Stderr, "vetkit: %v\n", err)
			return 1
		}
	}

	records := readRecords(diagDir)
	nDiags, nSup, nFail := 0, 0, 0
	for _, r := range records {
		nDiags += len(r.Diags)
		nSup += len(r.Suppressed)
		nFail += len(r.Failures)
	}
	fmt.Fprintf(os.Stderr, "vetkit: %d packages analyzed, %d diagnostics, %d suppressions honored\n",
		len(records), nDiags, nSup)
	if nFail > 0 && code == 0 {
		code = 1
	}

	if sarifPath != "" {
		if err := writeSARIF(sarifPath, records); err != nil {
			fmt.Fprintf(os.Stderr, "vetkit: writing SARIF: %v\n", err)
			return 1
		}
	}
	return code
}

// readRecords loads every per-unit record the unit runs dropped. One
// record per analyzed module unit, diagnostics or not, so the record
// count is the analyzed-package count.
func readRecords(dir string) []diagRecord {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var records []diagRecord
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		var rec diagRecord
		if json.Unmarshal(data, &rec) == nil {
			records = append(records, rec)
		}
	}
	sort.Slice(records, func(i, j int) bool { return records[i].ImportPath < records[j].ImportPath })
	return records
}

// writeSARIF converts the aggregated records into a SARIF 2.1.0 report.
// File paths are made repo-relative so CI can resolve them against the
// checkout root (uriBaseId SRCROOT).
func writeSARIF(path string, records []diagRecord) error {
	cwd, _ := os.Getwd()
	rules := make([]sarif.Rule, 0, len(all)+1)
	for _, a := range all {
		rules = append(rules, sarif.Rule{ID: a.Name, Doc: a.Doc})
	}
	rules = append(rules, sarif.Rule{ID: "vetkit", Doc: "malformed //vetkit:ignore suppressions"})
	var results []sarif.Result
	for _, rec := range records {
		for _, d := range rec.Diags {
			results = append(results, sarif.Result{
				RuleID:  d.Analyzer,
				Message: d.Message,
				File:    relPath(cwd, d.File),
				Line:    d.Line,
				Column:  d.Column,
			})
		}
	}
	data, err := sarif.Report("vetkit", rules, results)
	if err != nil {
		return err
	}
	return atomicio.WriteFileBytes(path, data)
}

func relPath(base, file string) string {
	if base == "" || !filepath.IsAbs(file) {
		return filepath.ToSlash(file)
	}
	rel, err := filepath.Rel(base, file)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(file)
	}
	return filepath.ToSlash(rel)
}

// printVersion answers cmd/go's -V=full probe. The "devel …
// buildID=<content hash>" shape is what toolID in cmd/go parses; the
// hash of our own binary makes the vet cache invalidate when the
// analyzers change.
func printVersion() {
	h := [sha256.Size]byte{}
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			h = sha256.Sum256(data)
		}
	}
	fmt.Printf("vetkit version devel buildID=%x\n", h)
}

// printFlags answers cmd/go's -flags probe with the JSON flag
// descriptions it uses to split `go vet` arguments into flags and
// package patterns.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := make([]jsonFlag, 0, len(all))
	for _, a := range all {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	out, err := json.Marshal(flags)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vetkit: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(out)
	fmt.Println()
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: vetkit [-<analyzer>]... [-sarif report.sarif] [package pattern]...\n\n")
	fmt.Fprintf(os.Stderr, "vetkit enforces the partition-sharing pipeline's invariants (DESIGN.md §10):\n\n")
	for _, a := range all {
		fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nWith no analyzer flags, the whole suite runs.\n")
	fmt.Fprintf(os.Stderr, "Suppress one finding with `//vetkit:ignore(<analyzer>): <reason>` — the reason is mandatory.\n")
}
