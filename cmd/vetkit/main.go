// Vetkit is the project's static-analysis gate: a multichecker bundling
// the invariant analyzers under internal/analysis (see DESIGN.md §10).
// It speaks the cmd/go vet-tool protocol, so the same binary serves
// three invocations:
//
//	go run ./cmd/vetkit ./...                # standalone over packages
//	go vet -vettool=$(which vetkit) ./...    # as a vet tool
//	vetkit -atomicwrite ./...                # a subset of analyzers
//
// Standalone mode re-executes itself through `go vet -vettool`, which
// loads packages exactly the way the build does — test files included,
// dependencies served from compiler export data — so there is no
// second, subtly different package loader to maintain.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"partitionshare/internal/analysis"
	"partitionshare/internal/analysis/atomicwrite"
	"partitionshare/internal/analysis/chanclose"
	"partitionshare/internal/analysis/ctxplumb"
	"partitionshare/internal/analysis/errsentinel"
	"partitionshare/internal/analysis/floatcmp"
)

// all is the full suite, in the order diagnostics are reported.
var all = []*analysis.Analyzer{
	atomicwrite.Analyzer,
	chanclose.Analyzer,
	ctxplumb.Analyzer,
	errsentinel.Analyzer,
	floatcmp.Analyzer,
}

func main() {
	// cmd/go probes `-V=full` (for the build cache key) and `-flags`
	// (to learn which command-line flags the tool accepts) before any
	// real work; both must answer on stdout and exit 0.
	if len(os.Args) == 2 {
		switch os.Args[1] {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			printFlags()
			return
		}
	}

	enabled := make(map[string]*bool, len(all))
	for _, a := range all {
		enabled[a.Name] = flag.Bool(a.Name, false, "run only the "+a.Name+" analyzer (with any others explicitly enabled)")
	}
	flag.Usage = usage
	flag.Parse()

	// Like x/tools' multichecker: naming any analyzer flag runs just the
	// named subset; naming none runs everything.
	suite := all
	var subset []*analysis.Analyzer
	for _, a := range all {
		if *enabled[a.Name] {
			subset = append(subset, a)
		}
	}
	if len(subset) > 0 {
		suite = subset
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0], suite))
	}
	os.Exit(standalone(suite, args))
}

// standalone re-invokes the current binary through `go vet -vettool` on
// the given package patterns.
func standalone(suite []*analysis.Analyzer, patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "vetkit: cannot locate own executable: %v\n", err)
		return 1
	}
	vetArgs := []string{"vet", "-vettool=" + exe}
	if len(suite) != len(all) {
		for _, a := range suite {
			vetArgs = append(vetArgs, "-"+a.Name)
		}
	}
	vetArgs = append(vetArgs, patterns...)
	cmd := exec.Command("go", vetArgs...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "vetkit: %v\n", err)
		return 1
	}
	return 0
}

// printVersion answers cmd/go's -V=full probe. The "devel …
// buildID=<content hash>" shape is what toolID in cmd/go parses; the
// hash of our own binary makes the vet cache invalidate when the
// analyzers change.
func printVersion() {
	h := [sha256.Size]byte{}
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			h = sha256.Sum256(data)
		}
	}
	fmt.Printf("vetkit version devel buildID=%x\n", h)
}

// printFlags answers cmd/go's -flags probe with the JSON flag
// descriptions it uses to split `go vet` arguments into flags and
// package patterns.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := make([]jsonFlag, 0, len(all))
	for _, a := range all {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	out, err := json.Marshal(flags)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vetkit: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(out)
	fmt.Println()
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: vetkit [-<analyzer>]... [package pattern]...\n\n")
	fmt.Fprintf(os.Stderr, "vetkit enforces the partition-sharing pipeline's invariants (DESIGN.md §10):\n\n")
	for _, a := range all {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nWith no analyzer flags, the whole suite runs.\n")
}
