package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"partitionshare/internal/analysis"
)

// writeCfg marshals a vet.cfg into dir and returns its path.
func writeCfg(t *testing.T, dir string, cfg vetConfig) string {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeSrc drops one source file into dir.
func writeSrc(t *testing.T, dir, name, src string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// flagEverything reports one diagnostic per file, for exercising the
// driver without depending on real analyzer behavior.
var flagEverything = &analysis.Analyzer{
	Name: "flagall",
	Doc:  "test analyzer: reports once per file",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			pass.Reportf(f.Package, "flagged %s", pass.Pkg.Path())
		}
		return nil
	},
}

var panicky = &analysis.Analyzer{
	Name: "panicky",
	Doc:  "test analyzer: always panics",
	Run:  func(*analysis.Pass) error { panic("boom") },
}

func TestMalformedConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(path, []byte("{this is not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := unitcheck(path, all, allNames()); code != 1 {
		t.Fatalf("malformed cfg exit = %d, want 1", code)
	}
	if code := unitcheck(filepath.Join(dir, "missing.cfg"), all, allNames()); code != 1 {
		t.Fatalf("missing cfg exit = %d, want 1", code)
	}
}

func TestMissingExportData(t *testing.T) {
	dir := t.TempDir()
	src := writeSrc(t, dir, "edge.go", "package edge\n\nimport \"fmt\"\n\nfunc F() { fmt.Println() }\n")
	vetx := filepath.Join(dir, "out.vetx")
	cfg := vetConfig{
		ImportPath: "partitionshare/edge",
		GoFiles:    []string{src},
		VetxOutput: vetx,
		// PackageFile deliberately empty: the gc importer cannot resolve
		// "fmt", the shape cmd/go produces when a dependency failed to
		// build.
	}
	if code := unitcheck(writeCfg(t, dir, cfg), all, allNames()); code != 1 {
		t.Fatalf("missing export data exit = %d, want 1", code)
	}

	cfg.SucceedOnTypecheckFailure = true
	if code := unitcheck(writeCfg(t, dir, cfg), all, allNames()); code != 0 {
		t.Fatalf("SucceedOnTypecheckFailure exit = %d, want 0", code)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("vetx not written on tolerated typecheck failure: %v", err)
	}
}

func TestEmptyPackage(t *testing.T) {
	dir := t.TempDir()
	vetx := filepath.Join(dir, "out.vetx")
	cfg := vetConfig{
		ImportPath: "partitionshare/internal/empty",
		VetxOutput: vetx,
	}
	if code := unitcheck(writeCfg(t, dir, cfg), all, allNames()); code != 0 {
		t.Fatalf("empty package exit = %d, want 0", code)
	}
	data, err := os.ReadFile(vetx)
	if err != nil || len(data) != 0 {
		t.Fatalf("empty package vetx = (%q, %v), want empty file", data, err)
	}
}

func TestNonModuleFastPath(t *testing.T) {
	dir := t.TempDir()
	cfg := vetConfig{
		ImportPath: "fmt",
		// A file that does not exist: the fast path must skip without
		// parsing anything.
		GoFiles:    []string{filepath.Join(dir, "does-not-exist.go")},
		VetxOutput: filepath.Join(dir, "out.vetx"),
	}
	if code := unitcheck(writeCfg(t, dir, cfg), all, allNames()); code != 0 {
		t.Fatalf("non-module package exit = %d, want 0", code)
	}
}

func TestAnalyzerPanicIsolation(t *testing.T) {
	dir := t.TempDir()
	src := writeSrc(t, dir, "edge.go", "package edge\n\nfunc F() {}\n")
	records := t.TempDir()
	t.Setenv(diagDirEnv, records)
	cfg := vetConfig{
		ImportPath: "partitionshare/edge",
		GoFiles:    []string{src},
		VetxOutput: filepath.Join(dir, "out.vetx"),
	}
	suite := []*analysis.Analyzer{panicky, flagEverything}
	if code := unitcheck(writeCfg(t, dir, cfg), suite, []string{"panicky", "flagall"}); code != 1 {
		t.Fatalf("panicking suite exit = %d, want 1 (tool failure)", code)
	}

	// The crash must not have eaten the healthy analyzer's finding: the
	// diagnostic record carries both the finding and the failure.
	recs := readRecords(records)
	if len(recs) != 1 {
		t.Fatalf("records = %d, want 1", len(recs))
	}
	rec := recs[0]
	if len(rec.Diags) != 1 || rec.Diags[0].Analyzer != "flagall" {
		t.Fatalf("diags = %+v, want the flagall finding", rec.Diags)
	}
	if len(rec.Failures) != 1 {
		t.Fatalf("failures = %+v, want the panicky crash", rec.Failures)
	}
}

func TestSuppressionRecorded(t *testing.T) {
	dir := t.TempDir()
	// The standalone ignore on line 1 covers the package clause on line
	// 2, where flagEverything reports.
	src := writeSrc(t, dir, "edge.go",
		"//vetkit:ignore(flagall): fixture exercises suppression accounting\npackage edge\n\nfunc F() {}\n")
	records := t.TempDir()
	t.Setenv(diagDirEnv, records)
	cfg := vetConfig{
		ImportPath: "partitionshare/edge",
		GoFiles:    []string{src},
		VetxOutput: filepath.Join(dir, "out.vetx"),
	}
	suite := []*analysis.Analyzer{flagEverything}
	if code := unitcheck(writeCfg(t, dir, cfg), suite, []string{"flagall"}); code != 0 {
		t.Fatalf("suppressed run exit = %d, want 0", code)
	}
	recs := readRecords(records)
	if len(recs) != 1 || len(recs[0].Suppressed) != 1 || len(recs[0].Diags) != 0 {
		t.Fatalf("records = %+v, want one suppression and no diagnostics", recs)
	}
	if recs[0].Suppressed[0].Reason == "" {
		t.Fatalf("suppression lost its reason: %+v", recs[0].Suppressed[0])
	}
}

func TestVetxOnlySkipsDiagnostics(t *testing.T) {
	dir := t.TempDir()
	src := writeSrc(t, dir, "edge.go", "package edge\n\nfunc F() {}\n")
	vetx := filepath.Join(dir, "out.vetx")
	cfg := vetConfig{
		ImportPath: "partitionshare/edge",
		GoFiles:    []string{src},
		VetxOutput: vetx,
		VetxOnly:   true,
	}
	suite := []*analysis.Analyzer{flagEverything}
	if code := unitcheck(writeCfg(t, dir, cfg), suite, []string{"flagall"}); code != 0 {
		t.Fatalf("VetxOnly exit = %d, want 0 (facts-gathering runs never fail on findings)", code)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("VetxOnly run did not write vetx: %v", err)
	}
}
