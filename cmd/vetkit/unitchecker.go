package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"

	"partitionshare/internal/analysis"
	"partitionshare/internal/atomicio"
)

// modulePath is the import-path prefix of packages this suite analyzes.
// Everything else (stdlib, vendored deps) gets an empty facts file and a
// clean exit without parsing, which keeps the whole-repo run inside the
// CI time budget even though facts force go vet to schedule VetxOnly
// runs over every dependency.
const modulePath = "partitionshare"

// diagDirEnv, when set by the standalone front end, names a directory
// where each unit run drops a JSON record of its findings so the parent
// process can print a summary line and emit SARIF. The vet-tool protocol
// itself only carries text on stderr, which cannot be merged reliably.
const diagDirEnv = "VETKIT_DIAG_DIR"

// vetConfig mirrors the JSON configuration cmd/go writes for each
// package when a vet tool runs (see cmd/go/internal/work.vetConfig);
// unknown fields are ignored on decode.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	PackageVetx map[string]string
	Standard    map[string]bool
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

var goVersionRE = regexp.MustCompile(`^go[0-9]+(\.[0-9]+)*$`)

// diagRecord is the per-package JSON dropped into VETKIT_DIAG_DIR.
type diagRecord struct {
	ImportPath string
	Diags      []recordDiag
	Suppressed []recordSuppression
	Failures   []string
}

type recordDiag struct {
	File     string
	Line     int
	Column   int
	Analyzer string
	Message  string
}

type recordSuppression struct {
	File     string
	Line     int
	Analyzer string
	Reason   string
	Message  string
}

// inModule reports whether path belongs to this repository's module.
func inModule(path string) bool {
	return path == modulePath || strings.HasPrefix(path, modulePath+"/") ||
		strings.HasSuffix(path, ".test") && strings.HasPrefix(path, modulePath)
}

// unitcheck analyzes the single package described by the cfg file and
// returns the process exit code: 0 clean, 1 driver failure, 2 findings.
func unitcheck(cfgPath string, suite []*analysis.Analyzer, known []string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vetkit: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "vetkit: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// writeVetx records the unit's exported facts; cmd/go reads the file
	// after every run, so even packages with nothing to say must write it.
	writeVetx := func(facts []byte) bool {
		if cfg.VetxOutput == "" {
			return true
		}
		if err := atomicio.WriteFileBytes(cfg.VetxOutput, facts); err != nil {
			fmt.Fprintf(os.Stderr, "vetkit: %v\n", err)
			return false
		}
		return true
	}

	// Fast path: packages outside this module (stdlib and friends) hold
	// no facts our analyzers export, so skip parsing them entirely.
	// Empty packages (build-constrained away) have nothing to analyze.
	if !inModule(cfg.ImportPath) || len(cfg.GoFiles) == 0 {
		if !writeVetx(nil) {
			return 1
		}
		return 0
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx(nil)
				return 0
			}
			fmt.Fprintf(os.Stderr, "vetkit: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	// Dependencies are served from the compiler export data cmd/go
	// already built, keyed by canonical import path.
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	conf := &types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Sizes:    types.SizesFor("gc", buildArch()),
	}
	if goVersionRE.MatchString(cfg.GoVersion) {
		conf.GoVersion = cfg.GoVersion
	}

	// Dependency facts come from the vetx files cmd/go collected from
	// earlier runs of this same tool. Only module-internal deps can have
	// any; a missing or unreadable file is treated as fact-free rather
	// than fatal, since cmd/go occasionally lists vetx paths for units
	// it never scheduled.
	depFacts := make(map[string][]byte)
	for dep, file := range cfg.PackageVetx {
		if canon, ok := cfg.ImportMap[dep]; ok {
			dep = canon
		}
		if !inModule(dep) {
			continue
		}
		if data, err := os.ReadFile(file); err == nil && len(data) > 0 {
			depFacts[dep] = data
		}
	}

	res, _, err := analysis.Check(conf, fset, cfg.ImportPath, files, suite, &analysis.Options{
		DepFacts:       depFacts,
		KnownAnalyzers: known,
		FactsOnly:      cfg.VetxOnly,
	})
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(nil)
			return 0
		}
		fmt.Fprintf(os.Stderr, "vetkit: %v\n", err)
		return 1
	}
	if !writeVetx(res.Facts) {
		return 1
	}
	if cfg.VetxOnly {
		return 0
	}

	writeDiagRecord(fset, &cfg, res)

	// An analyzer crash is a tool failure, not a finding: report it
	// loudly (exit 1) but only after printing what the healthy analyzers
	// found, so one buggy analyzer never hides the others' results.
	for _, d := range res.Diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	for _, f := range res.Failures {
		fmt.Fprintf(os.Stderr, "vetkit: %s: internal failure in %s: %v (other analyzers completed)\n",
			cfg.ImportPath, f.Analyzer, f.Err)
	}
	switch {
	case len(res.Failures) > 0:
		return 1
	case len(res.Diags) > 0:
		return 2
	}
	return 0
}

// writeDiagRecord drops this unit's findings where the standalone front
// end can aggregate them. Best-effort: summary and SARIF are reporting
// conveniences, the authoritative exit code travels through go vet.
func writeDiagRecord(fset *token.FileSet, cfg *vetConfig, res *analysis.Result) {
	dir := os.Getenv(diagDirEnv)
	if dir == "" {
		return
	}
	rec := diagRecord{ImportPath: cfg.ImportPath}
	for _, d := range res.Diags {
		p := fset.Position(d.Pos)
		rec.Diags = append(rec.Diags, recordDiag{
			File: p.Filename, Line: p.Line, Column: p.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	for _, s := range res.Suppressed {
		p := fset.Position(s.Pos)
		rec.Suppressed = append(rec.Suppressed, recordSuppression{
			File: p.Filename, Line: p.Line,
			Analyzer: s.Analyzer, Reason: s.Reason, Message: s.Message,
		})
	}
	for _, f := range res.Failures {
		rec.Failures = append(rec.Failures, fmt.Sprintf("%s: %v", f.Analyzer, f.Err))
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return
	}
	// Test variants of a package ("p" and "p [p.test]") share an import
	// path; hashing the unit ID keeps their records distinct.
	name := fmt.Sprintf("%x.json", sha256.Sum256([]byte(cfg.ID+"\x00"+cfg.ImportPath)))
	_ = atomicio.WriteFileBytes(filepath.Join(dir, name), data)
}

func buildArch() string {
	if v := os.Getenv("GOARCH"); v != "" {
		return v
	}
	return runtime.GOARCH
}
