package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"

	"partitionshare/internal/analysis"
	"partitionshare/internal/atomicio"
)

// vetConfig mirrors the JSON configuration cmd/go writes for each
// package when a vet tool runs (see cmd/go/internal/work.vetConfig);
// unknown fields are ignored on decode.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

var goVersionRE = regexp.MustCompile(`^go[0-9]+(\.[0-9]+)*$`)

// unitcheck analyzes the single package described by the cfg file and
// returns the process exit code: 0 clean, 1 driver failure, 2 findings.
func unitcheck(cfgPath string, suite []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vetkit: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "vetkit: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// cmd/go reads the vetx (facts) output after every run, including
	// fact-gathering runs over dependencies. These analyzers keep no
	// cross-package facts, so an empty file is always the right answer —
	// written first so every early return below still produces it.
	if cfg.VetxOutput != "" {
		if err := atomicio.WriteFileBytes(cfg.VetxOutput, nil); err != nil {
			fmt.Fprintf(os.Stderr, "vetkit: %v\n", err)
			return 1
		}
	}
	// A VetxOnly run exists only to collect facts for later packages;
	// with no facts to collect there is nothing to do.
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "vetkit: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	// Dependencies are served from the compiler export data cmd/go
	// already built, keyed by canonical import path.
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	conf := &types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Sizes:    types.SizesFor("gc", buildArch()),
	}
	if goVersionRE.MatchString(cfg.GoVersion) {
		conf.GoVersion = cfg.GoVersion
	}

	diags, _, err := analysis.Check(conf, fset, cfg.ImportPath, files, suite)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "vetkit: %v\n", err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	return 2
}

func buildArch() string {
	if v := os.Getenv("GOARCH"); v != "" {
		return v
	}
	return runtime.GOARCH
}
