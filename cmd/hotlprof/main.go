// Command hotlprof profiles a memory-access trace into a HOTL locality
// profile file — the equivalent of the paper's full-trace footprint
// analysis (§VII-A). The profile stores the reuse-time and boundary
// histograms, from which the average footprint, fill time, and miss-ratio
// curve are derived exactly (§III).
//
// Input is either a trace file (-in; text with one decimal ID per line,
// or the binary delta-varint format, auto-detected; "-" reads text from
// stdin) or a named synthetic workload (-workload, see internal/
// workload). Output (-out) is the ASCII profile format of
// internal/profileio. With -mrc set, the miss-ratio curve is also printed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"partitionshare/internal/footprint"
	"partitionshare/internal/profileio"
	"partitionshare/internal/reuse"
	"partitionshare/internal/trace"
	"partitionshare/internal/workload"
)

func main() {
	in := flag.String("in", "", "trace file: one decimal datum ID per line (\"-\" = stdin)")
	wl := flag.String("workload", "", "synthetic workload name (e.g. lbm); alternative to -in")
	out := flag.String("out", "", "output profile path (default <name>.hotl)")
	name := flag.String("name", "", "program name recorded in the profile")
	rate := flag.Float64("rate", 1.0, "relative access rate recorded in the profile")
	mrcFlag := flag.Bool("mrc", false, "also print the miss-ratio curve")
	units := flag.Int("units", 1024, "cache units for -mrc")
	blocksPerUnit := flag.Int64("blocksperunit", 4, "blocks per unit for -mrc")
	small := flag.Bool("small", false, "use the reduced test geometry for -workload")
	workers := flag.Int("workers", 0, "profiling shards: 0 = all CPUs, 1 = serial scan")
	flag.Parse()

	// SIGINT/SIGTERM cancel the profiling scan; the shards drain and the
	// process exits without writing a partial profile.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var tr trace.Trace
	var err error
	switch {
	case *in != "" && *wl != "":
		fatal(fmt.Errorf("use either -in or -workload, not both"))
	case *in == "-":
		tr, err = trace.ReadText(os.Stdin)
		if err != nil {
			fatal(err)
		}
		if len(tr) == 0 {
			fatal(fmt.Errorf("stdin: empty trace"))
		}
		if *name == "" {
			*name = "trace"
		}
	case *in != "":
		tr, err = trace.ReadFile(*in)
		if err != nil {
			fatal(err)
		}
		if len(tr) == 0 {
			fatal(fmt.Errorf("%s: empty trace", *in))
		}
		if *name == "" {
			*name = "trace"
		}
	case *wl != "":
		cfg := workload.DefaultConfig()
		if *small {
			cfg = workload.TestConfig()
		}
		spec, ok := findSpec(*wl)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q", *wl))
		}
		gen := spec.Build(uint32(cfg.CacheBlocks()), cfg.Seed)
		tr = trace.Generate(gen, cfg.TraceLen)
		if *name == "" {
			*name = spec.Name
		}
		if *rate == 1.0 {
			*rate = spec.Rate
		}
	default:
		fatal(fmt.Errorf("need -in FILE or -workload NAME"))
	}

	rp, err := reuse.CollectParallel(ctx, tr, *workers)
	if err != nil {
		fatal(err)
	}
	prof := profileio.Profile{Name: *name, Rate: *rate, Reuse: rp}
	path := *out
	if path == "" {
		path = *name + ".hotl"
	}
	if err := profileio.WriteFile(path, prof); err != nil {
		fatal(err)
	}
	fmt.Printf("profiled %d accesses, %d distinct blocks -> %s\n",
		prof.Reuse.N, prof.Reuse.M, path)

	if *mrcFlag {
		fp := footprint.New(prof.Reuse)
		fmt.Printf("units miss_ratio\n")
		for u := 0; u <= *units; u += max(1, *units/64) {
			fmt.Printf("%5d %.6f\n", u, fp.MissRatio(float64(int64(u)**blocksPerUnit)))
		}
	}
}

func findSpec(name string) (workload.Spec, bool) {
	for _, s := range workload.Specs() {
		if s.Name == name {
			return s, true
		}
	}
	return workload.Spec{}, false
}

func fatal(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "hotlprof: interrupted")
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "hotlprof:", err)
	os.Exit(1)
}
