// Command hotlprof profiles a memory-access trace into a HOTL locality
// profile file — the equivalent of the paper's full-trace footprint
// analysis (§VII-A). The profile stores the reuse-time and boundary
// histograms, from which the average footprint, fill time, and miss-ratio
// curve are derived exactly (§III).
//
// Input is either a trace file (-in; text with one decimal ID per line,
// or the binary delta-varint format, auto-detected; "-" reads text from
// stdin) or a named synthetic workload (-workload, see internal/
// workload). Output (-out) is the ASCII profile format of
// internal/profileio. With -mrc set, the miss-ratio curve is also printed.
//
// Observability mirrors cmd/experiments: -manifest records the run
// (config, stage timings, reuse-scan counters), -debug-addr serves live
// expvar metrics and pprof, -cpuprofile/-memprofile/-trace capture
// profiles, -log-level/-log-json shape the stderr diagnostic log.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"partitionshare/internal/footprint"
	"partitionshare/internal/obs"
	"partitionshare/internal/profileio"
	"partitionshare/internal/reuse"
	"partitionshare/internal/trace"
	"partitionshare/internal/workload"
)

// Observability names, prefixed with this command's package base per
// the obsname registry convention.
const (
	mTraceAccesses  = "hotlprof.trace_accesses"
	mDistinctBlocks = "hotlprof.distinct_blocks"
)

// finish runs the shutdown sequence (profiles, manifest, debug server)
// exactly once; fatal routes through it.
var finish = func() {}

func main() {
	in := flag.String("in", "", "trace file: one decimal datum ID per line (\"-\" = stdin)")
	wl := flag.String("workload", "", "synthetic workload name (e.g. lbm); alternative to -in")
	out := flag.String("out", "", "output profile path (default <name>.hotl)")
	name := flag.String("name", "", "program name recorded in the profile")
	rate := flag.Float64("rate", 1.0, "relative access rate recorded in the profile")
	mrcFlag := flag.Bool("mrc", false, "also print the miss-ratio curve")
	units := flag.Int("units", 1024, "cache units for -mrc")
	blocksPerUnit := flag.Int64("blocksperunit", 4, "blocks per unit for -mrc")
	small := flag.Bool("small", false, "use the reduced test geometry for -workload")
	workers := flag.Int("workers", 0, "profiling shards: 0 = all CPUs, 1 = serial scan")
	debugAddr := flag.String("debug-addr", "", "serve live expvar metrics and pprof on this address")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	traceOut := flag.String("trace", "", "write a runtime execution trace to this file")
	traceEvents := flag.String("trace-events", "", "write a Chrome trace_event JSON timeline to this file (view in Perfetto)")
	metricsInterval := flag.Duration("metrics-interval", 0, "sample registry metrics at this interval for /metrics/history and the manifest (0 disables)")
	manifestPath := flag.String("manifest", "", "run-manifest path (empty disables)")
	logLevel := flag.String("log-level", "info", "diagnostic log level: debug|info|warn|error")
	logJSON := flag.Bool("log-json", false, "emit the diagnostic log as JSON instead of text")
	flag.Parse()

	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	obs.InitLogging(os.Stderr, level, *logJSON)
	obs.Enable(obs.NewRegistry())

	// SIGINT/SIGTERM cancel the profiling scan; the shards drain and the
	// process exits without writing a partial profile.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	manifest := obs.NewManifest("hotlprof", map[string]any{
		"in":       *in,
		"workload": *wl,
		"small":    *small,
		"workers":  *workers,
	})
	srv, err := obs.StartDebugServer(ctx, *debugAddr)
	if err != nil {
		fatal(err)
	}
	var tracer *obs.Tracer
	if *traceEvents != "" {
		tw, err := obs.StartTraceEvents(*traceEvents)
		if err != nil {
			fatal(err)
		}
		tracer = obs.NewTracer(0, tw)
		obs.EnableTracer(tracer)
	}
	sampler := obs.StartSampler(ctx, obs.Enabled(), *metricsInterval, 0)
	obs.EnableSampler(sampler)
	stopCPU := func() error { return nil }
	if *cpuProfile != "" {
		if stopCPU, err = obs.StartCPUProfile(*cpuProfile); err != nil {
			fatal(err)
		}
	}
	stopTrace := func() error { return nil }
	if *traceOut != "" {
		if stopTrace, err = obs.StartTrace(*traceOut); err != nil {
			fatal(err)
		}
	}
	var finishOnce sync.Once
	finish = func() {
		finishOnce.Do(func() {
			if err := stopCPU(); err != nil {
				obs.Logger().Error("cpu profile", "err", err)
			}
			if err := stopTrace(); err != nil {
				obs.Logger().Error("execution trace", "err", err)
			}
			if *memProfile != "" {
				if err := obs.WriteHeapProfile(*memProfile); err != nil {
					obs.Logger().Error("heap profile", "err", err)
				}
			}
			sampler.Stop()
			obs.EnableSampler(nil)
			if err := tracer.Close(); err != nil {
				obs.Logger().Error("trace events", "err", err)
			}
			obs.EnableTracer(nil)
			srv.Close()
			if *manifestPath != "" {
				if err := manifest.Build(obs.Enabled()).WithTimeSeries(sampler).Write(*manifestPath); err != nil {
					obs.Logger().Error("manifest write", "err", err)
				}
			}
		})
	}
	defer finish()

	_, readSpan := obs.Enabled().StartSpan(ctx, "read")
	var tr trace.Trace
	switch {
	case *in != "" && *wl != "":
		fatal(fmt.Errorf("use either -in or -workload, not both"))
	case *in == "-":
		tr, err = trace.ReadText(os.Stdin)
		if err != nil {
			fatal(err)
		}
		if len(tr) == 0 {
			fatal(fmt.Errorf("stdin: empty trace"))
		}
		if *name == "" {
			*name = "trace"
		}
	case *in != "":
		tr, err = trace.ReadFile(*in)
		if err != nil {
			fatal(err)
		}
		if len(tr) == 0 {
			fatal(fmt.Errorf("%s: empty trace", *in))
		}
		if *name == "" {
			*name = "trace"
		}
	case *wl != "":
		cfg := workload.DefaultConfig()
		if *small {
			cfg = workload.TestConfig()
		}
		spec, ok := findSpec(*wl)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q", *wl))
		}
		gen := spec.Build(uint32(cfg.CacheBlocks()), cfg.Seed)
		tr = trace.Generate(gen, cfg.TraceLen)
		if *name == "" {
			*name = spec.Name
		}
		if *rate == 1.0 {
			*rate = spec.Rate
		}
	default:
		fatal(fmt.Errorf("need -in FILE or -workload NAME"))
	}
	readSpan.End()

	collectCtx, collectSpan := obs.Enabled().StartSpan(ctx, "collect")
	rp, err := reuse.CollectParallel(collectCtx, tr, *workers)
	if err != nil {
		fatal(err)
	}
	collectSpan.End()

	_, writeSpan := obs.Enabled().StartSpan(ctx, "write")
	prof := profileio.Profile{Name: *name, Rate: *rate, Reuse: rp}
	path := *out
	if path == "" {
		path = *name + ".hotl"
	}
	if err := profileio.WriteFile(path, prof); err != nil {
		fatal(err)
	}
	writeSpan.End()
	if reg := obs.Enabled(); reg != nil {
		reg.Counter(mTraceAccesses).Add(prof.Reuse.N)
		reg.Counter(mDistinctBlocks).Add(prof.Reuse.M)
	}
	obs.Progressf("profiled %d accesses, %d distinct blocks -> %s\n",
		prof.Reuse.N, prof.Reuse.M, path)

	if *mrcFlag {
		fp := footprint.New(prof.Reuse)
		obs.Progressf("units miss_ratio\n")
		for u := 0; u <= *units; u += max(1, *units/64) {
			obs.Progressf("%5d %.6f\n", u, fp.MissRatio(float64(int64(u)**blocksPerUnit)))
		}
	}
}

func findSpec(name string) (workload.Spec, bool) {
	for _, s := range workload.Specs() {
		if s.Name == name {
			return s, true
		}
	}
	return workload.Spec{}, false
}

func fatal(err error) {
	finish()
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "hotlprof: interrupted")
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "hotlprof:", err)
	os.Exit(1)
}
