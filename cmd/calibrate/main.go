// Command calibrate prints the solo behaviour of the synthetic workload
// suite — equal-partition miss ratios, miss-ratio curve shape, convexity,
// and footprint growth — plus gain/loss under sharing for sample co-run
// groups. It is the tool used to tune internal/workload against the
// qualitative facts of the paper's Figure 5.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"partitionshare/internal/compose"
	"partitionshare/internal/experiment"
	"partitionshare/internal/obs"
	"partitionshare/internal/workload"
)

func main() {
	small := flag.Bool("small", false, "use the reduced test geometry")
	group := flag.String("group", "", "comma-separated program names: print per-scheme allocations for that co-run group")
	logLevel := flag.String("log-level", "info", "diagnostic log level: debug|info|warn|error")
	flag.Parse()

	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	obs.InitLogging(os.Stderr, level, false)

	cfg := workload.DefaultConfig()
	if *small {
		cfg = workload.TestConfig()
	}
	if *group != "" {
		inspectGroup(cfg, strings.Split(*group, ","))
		return
	}
	progs, err := workload.ProfileAll(nil, workload.Specs(), cfg)
	if err != nil {
		fatal(err)
	}
	equalShare := cfg.Units / 4

	sort.Slice(progs, func(i, j int) bool {
		return progs[i].Curve.MissRatio(equalShare) > progs[j].Curve.MissRatio(equalShare)
	})

	obs.Progressf("%-10s %6s %9s %9s %9s %9s %8s %9s %8s\n",
		"program", "rate", "mr@C/8", "mr@C/4", "mr@C/2", "mr@C", "convex", "fp(n)", "coldRate")
	for _, p := range progs {
		obs.Progressf("%-10s %6.1f %9.5f %9.5f %9.5f %9.5f %8v %9d %8.5f\n",
			p.Name, p.Rate,
			p.Curve.MissRatio(cfg.Units/8),
			p.Curve.MissRatio(equalShare),
			p.Curve.MissRatio(cfg.Units/2),
			p.Curve.MissRatio(cfg.Units),
			p.Curve.IsConvex(),
			p.Fp.M(),
			float64(p.Fp.M())/float64(p.Fp.N()))
	}

	// Gains and losses in a few sample groups: compare natural (shared)
	// with equal partitioning.
	obs.Progressf("\nsample groups (occ = natural occupancy in units, eq share = %d):\n", equalShare)
	groups := [][]int{{0, 1, 2, 3}, {0, 5, 10, 15}, {12, 13, 14, 15}, {0, 10, 11, 12}}
	for _, g := range groups {
		sub := make([]compose.Program, len(g))
		for i, idx := range g {
			sub[i] = compose.Program{Name: progs[idx].Name, Fp: progs[idx].Fp, Rate: progs[idx].Rate}
		}
		occ := compose.NaturalPartitionUnits(sub, cfg.Units, cfg.BlocksPerUnit)
		mrs := compose.SharedMissRatios(sub, float64(cfg.CacheBlocks()))
		obs.Progressf("  group:")
		for i, idx := range g {
			eqMr := progs[idx].Curve.MissRatio(equalShare)
			verdict := "≈"
			if mrs[i] < eqMr*0.95 {
				verdict = "gain"
			} else if mrs[i] > eqMr*1.05 {
				verdict = "lose"
			}
			obs.Progressf(" %s[occ=%d nat=%.5f eq=%.5f %s]", progs[idx].Name, occ[i], mrs[i], eqMr, verdict)
		}
		obs.Progressln()
	}
}

// inspectGroup prints each scheme's allocation and per-program miss ratios
// for one named co-run group.
func inspectGroup(cfg workload.Config, names []string) {
	progs, err := workload.ProfileAll(nil, workload.Specs(), cfg)
	if err != nil {
		fatal(err)
	}
	idx := map[string]int{}
	for i, p := range progs {
		idx[p.Name] = i
	}
	var members []int
	for _, n := range names {
		i, ok := idx[strings.TrimSpace(n)]
		if !ok {
			fatal(fmt.Errorf("unknown program %q", n))
		}
		members = append(members, i)
	}
	gr, err := experiment.EvaluateGroup(progs, members, cfg.Units, cfg.BlocksPerUnit)
	if err != nil {
		fatal(err)
	}
	obs.Progressf("group:")
	for _, m := range members {
		obs.Progressf(" %s", progs[m].Name)
	}
	obs.Progressf("  (units=%d)\n", cfg.Units)
	for s := experiment.Scheme(0); s < experiment.NumSchemes; s++ {
		obs.Progressf("%-17s groupMR=%.5f  alloc=%v  mr=[", s, gr.GroupMR[s], gr.Alloc[s])
		for i, v := range gr.ProgramMR[s] {
			if i > 0 {
				obs.Progressf(" ")
			}
			obs.Progressf("%.5f", v)
		}
		obs.Progressln("]")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "calibrate:", err)
	os.Exit(1)
}
