package trace

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestTextRoundTrip(t *testing.T) {
	tr := Generate(NewZipf(1000, 0.8, 3), 5000)
	var b bytes.Buffer
	if err := WriteText(&b, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tr) {
		t.Fatalf("length %d, want %d", len(got), len(tr))
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Fatalf("access %d: %d != %d", i, got[i], tr[i])
		}
	}
}

func TestReadTextSkipsBlanksAndRejectsGarbage(t *testing.T) {
	got, err := ReadText(strings.NewReader("1\n\n2\n\n3\n"))
	if err != nil || len(got) != 3 {
		t.Fatalf("got %v err %v", got, err)
	}
	if _, err := ReadText(strings.NewReader("1\nxyz\n")); err == nil {
		t.Fatal("expected error for garbage line")
	}
	if _, err := ReadText(strings.NewReader("99999999999999\n")); err == nil {
		t.Fatal("expected error for out-of-range ID")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		tr := Generate(NewZipf(500, 0.5, seed), 2000)
		var b bytes.Buffer
		if err := WriteBinary(&b, tr); err != nil {
			return false
		}
		br := bufio.NewReader(&b)
		// Skip magic.
		if _, err := br.Discard(len(binaryMagic)); err != nil {
			return false
		}
		got, err := ReadBinary(br)
		if err != nil || len(got) != len(tr) {
			return false
		}
		for i := range tr {
			if got[i] != tr[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	var b bytes.Buffer
	if err := WriteBinary(&b, nil); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(&b)
	br.Discard(len(binaryMagic))
	got, err := ReadBinary(br)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v err %v", got, err)
	}
}

func TestReadBinaryTruncated(t *testing.T) {
	tr := Generate(NewLoop(100, 1), 1000)
	var b bytes.Buffer
	if err := WriteBinary(&b, tr); err != nil {
		t.Fatal(err)
	}
	data := b.Bytes()[len(binaryMagic) : b.Len()/2]
	if _, err := ReadBinary(bufio.NewReader(bytes.NewReader(data))); err == nil {
		t.Fatal("expected error for truncated data")
	}
}

func TestFileRoundTripAutoDetect(t *testing.T) {
	dir := t.TempDir()
	tr := Generate(NewSawtooth(300), 3000)
	for _, binaryFormat := range []bool{true, false} {
		path := filepath.Join(dir, "t")
		if err := WriteFile(path, tr, binaryFormat); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(tr) {
			t.Fatalf("binary=%v: length %d, want %d", binaryFormat, len(got), len(tr))
		}
		for i := range tr {
			if got[i] != tr[i] {
				t.Fatalf("binary=%v: access %d differs", binaryFormat, i)
			}
		}
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	tr := Generate(NewSawtooth(10000), 100000) // strongly local deltas
	dir := t.TempDir()
	txt, bin := filepath.Join(dir, "t.txt"), filepath.Join(dir, "t.bin")
	if err := WriteFile(txt, tr, false); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(bin, tr, true); err != nil {
		t.Fatal(err)
	}
	st, _ := os.Stat(txt)
	sb, _ := os.Stat(bin)
	if sb.Size()*2 >= st.Size() {
		t.Errorf("binary %d bytes not much smaller than text %d", sb.Size(), st.Size())
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected error")
	}
}
