// Package trace provides synthetic memory-access traces and trace
// combinators.
//
// The paper's evaluation profiles SPEC CPU2006 executions; those traces are
// proprietary, so this package supplies deterministic synthetic equivalents
// built from the access patterns the locality literature models: streaming
// (no reuse), cyclic loops (LRU-hostile reuse), sawtooth sweeps
// (LRU-friendly reuse), Zipfian hot/cold mixes, and phased working sets.
// A trace is a sequence of abstract datum IDs; one datum corresponds to one
// cache block.
package trace

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Trace is a sequence of accesses to abstract data identified by uint32 IDs.
type Trace []uint32

// DistinctData returns the number of distinct datum IDs in the trace.
func (t Trace) DistinctData() int {
	seen := make(map[uint32]struct{}, 1024)
	for _, d := range t {
		seen[d] = struct{}{}
	}
	return len(seen)
}

// ToBlocks maps a word-granularity trace onto cache blocks of
// wordsPerBlock words each (integer division of IDs): the line-size knob. Larger
// blocks exploit spatial locality — sequential word streams collapse into
// few block accesses — at the cost of capacity in blocks. It panics for
// wordsPerBlock < 1.
func (t Trace) ToBlocks(wordsPerBlock uint32) Trace {
	if wordsPerBlock < 1 {
		panic("trace: wordsPerBlock must be at least 1")
	}
	out := make(Trace, len(t))
	for i, d := range t {
		out[i] = d / wordsPerBlock
	}
	return out
}

// Offset returns a copy of the trace with every datum ID shifted by base.
// It is used to give co-run programs disjoint data spaces.
func (t Trace) Offset(base uint32) Trace {
	out := make(Trace, len(t))
	for i, d := range t {
		out[i] = d + base
	}
	return out
}

// A Generator produces an endless stream of datum IDs. Generators are not
// safe for concurrent use.
type Generator interface {
	// Next returns the next datum ID in the stream.
	Next() uint32
	// MaxData returns an upper bound (exclusive) on the IDs the generator
	// can emit, i.e. the size of its data space in blocks. Streaming
	// generators with unbounded data return the bound implied by the
	// number of accesses generated so far plus one step.
	MaxData() uint32
}

// Generate draws n accesses from g.
func Generate(g Generator, n int) Trace {
	t := make(Trace, n)
	for i := range t {
		t[i] = g.Next()
	}
	return t
}

// Streaming emits fresh data forever: datum IDs increase by one every
// Repeat accesses. Repeat models spatial locality within a block (a block
// of B words streamed word-by-word is accessed B times in a row at block
// granularity). A streaming program's footprint grows linearly with window
// length and its LRU miss ratio is 1/Repeat at every cache size.
type Streaming struct {
	Repeat int // accesses per block; values < 1 are treated as 1
	pos    uint32
	cnt    int
}

// NewStreaming returns a streaming generator with the given per-block
// repeat count.
func NewStreaming(repeat int) *Streaming {
	if repeat < 1 {
		repeat = 1
	}
	return &Streaming{Repeat: repeat}
}

// Next implements Generator.
func (s *Streaming) Next() uint32 {
	d := s.pos
	s.cnt++
	if s.cnt >= s.Repeat {
		s.cnt = 0
		s.pos++
	}
	return d
}

// MaxData implements Generator.
func (s *Streaming) MaxData() uint32 { return s.pos + 1 }

// Loop sweeps cyclically over Size blocks: 0,1,...,Size-1,0,1,... Every
// reuse has stack distance Size, so an LRU cache smaller than Size misses
// on every access while a cache of at least Size blocks hits on every
// access after the first sweep. This is the canonical non-convex
// "working-set cliff" pattern that breaks the STTW convexity assumption.
type Loop struct {
	Size   uint32
	Repeat int
	pos    uint32
	cnt    int
}

// NewLoop returns a cyclic generator over size blocks, touching each block
// repeat times per visit.
func NewLoop(size uint32, repeat int) *Loop {
	if size < 1 {
		size = 1
	}
	if repeat < 1 {
		repeat = 1
	}
	return &Loop{Size: size, Repeat: repeat}
}

// Next implements Generator.
func (l *Loop) Next() uint32 {
	d := l.pos
	l.cnt++
	if l.cnt >= l.Repeat {
		l.cnt = 0
		l.pos++
		if l.pos >= l.Size {
			l.pos = 0
		}
	}
	return d
}

// MaxData implements Generator.
func (l *Loop) MaxData() uint32 { return l.Size }

// Sawtooth sweeps forward then backward over Size blocks
// (0..Size-1..0..). Unlike Loop, reuse distances span 1..Size, producing a
// smooth, convex miss-ratio curve under LRU.
type Sawtooth struct {
	Size uint32
	pos  uint32
	dir  int32
}

// NewSawtooth returns a forward-backward sweep generator over size blocks.
func NewSawtooth(size uint32) *Sawtooth {
	if size < 1 {
		size = 1
	}
	return &Sawtooth{Size: size, dir: 1}
}

// Next implements Generator.
func (s *Sawtooth) Next() uint32 {
	d := s.pos
	if s.Size == 1 {
		return d
	}
	next := int64(s.pos) + int64(s.dir)
	if next >= int64(s.Size) {
		s.dir = -1
		next = int64(s.Size) - 2
	} else if next < 0 {
		s.dir = 1
		next = 1
	}
	s.pos = uint32(next)
	return d
}

// MaxData implements Generator.
func (s *Sawtooth) MaxData() uint32 { return s.Size }

// Zipf draws from a Zipfian distribution over Size blocks with exponent
// Theta (0 < Theta). Rank-1 data are hottest. Zipf access produces smooth
// concave footprint growth: a small cache captures most hits, with a long
// diminishing-returns tail.
type Zipf struct {
	Size  uint32
	Theta float64
	rng   *rand.Rand
	cdf   []float64
}

// NewZipf returns a Zipfian generator over size blocks with the given
// exponent, seeded deterministically.
func NewZipf(size uint32, theta float64, seed uint64) *Zipf {
	if size < 1 {
		size = 1
	}
	z := &Zipf{
		Size:  size,
		Theta: theta,
		rng:   rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
	}
	z.cdf = make([]float64, size)
	var sum float64
	for i := uint32(0); i < size; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
		z.cdf[i] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z
}

// Next implements Generator. It draws by binary search on the CDF.
func (z *Zipf) Next() uint32 {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint32(lo)
}

// MaxData implements Generator.
func (z *Zipf) MaxData() uint32 { return z.Size }

// Phased alternates among a list of sub-generators, running each for its
// configured phase length before moving to the next, cyclically. It models
// programs whose working set changes over time (Figure 1 of the paper).
type Phased struct {
	Phases []Phase
	idx    int
	left   int
}

// Phase is one phase of a Phased generator.
type Phase struct {
	Gen Generator
	Len int // number of accesses in this phase per cycle
}

// NewPhased returns a generator cycling through the given phases. It panics
// if phases is empty or any phase has a non-positive length.
func NewPhased(phases ...Phase) *Phased {
	if len(phases) == 0 {
		panic("trace: NewPhased needs at least one phase")
	}
	for i, p := range phases {
		if p.Len <= 0 {
			panic(fmt.Sprintf("trace: phase %d has non-positive length %d", i, p.Len))
		}
		if p.Gen == nil {
			panic(fmt.Sprintf("trace: phase %d has nil generator", i))
		}
	}
	return &Phased{Phases: phases, left: phases[0].Len}
}

// Next implements Generator.
func (p *Phased) Next() uint32 {
	if p.left == 0 {
		p.idx = (p.idx + 1) % len(p.Phases)
		p.left = p.Phases[p.idx].Len
	}
	p.left--
	return p.Phases[p.idx].Gen.Next()
}

// MaxData implements Generator.
func (p *Phased) MaxData() uint32 {
	var max uint32
	for _, ph := range p.Phases {
		if m := ph.Gen.MaxData(); m > max {
			max = m
		}
	}
	return max
}

// Mixture interleaves sub-generators probabilistically: each access is
// drawn from component i with probability Weights[i]/sum(Weights). The
// components must use disjoint data spaces if the mixture is meant to model
// independent regions; use Region to shift a component's IDs.
type Mixture struct {
	Gens    []Generator
	Weights []float64
	rng     *rand.Rand
	cum     []float64
}

// NewMixture returns a seeded probabilistic mixture of generators. It
// panics on mismatched lengths, empty input, or non-positive total weight.
func NewMixture(seed uint64, gens []Generator, weights []float64) *Mixture {
	if len(gens) == 0 || len(gens) != len(weights) {
		panic(fmt.Sprintf("trace: mixture needs matching non-empty gens/weights, got %d/%d", len(gens), len(weights)))
	}
	m := &Mixture{
		Gens:    gens,
		Weights: weights,
		rng:     rand.New(rand.NewPCG(seed, seed^0xda942042e4dd58b5)),
		cum:     make([]float64, len(weights)),
	}
	var sum float64
	for i, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("trace: negative mixture weight %v", w))
		}
		sum += w
		m.cum[i] = sum
	}
	if sum <= 0 {
		panic("trace: mixture weights sum to zero")
	}
	for i := range m.cum {
		m.cum[i] /= sum
	}
	return m
}

// Next implements Generator.
func (m *Mixture) Next() uint32 {
	u := m.rng.Float64()
	for i, c := range m.cum {
		if u <= c {
			return m.Gens[i].Next()
		}
	}
	return m.Gens[len(m.Gens)-1].Next()
}

// MaxData implements Generator.
func (m *Mixture) MaxData() uint32 {
	var max uint32
	for _, g := range m.Gens {
		if v := g.MaxData(); v > max {
			max = v
		}
	}
	return max
}

// DeterministicMix interleaves sub-generators deterministically in
// proportion to their weights using a largest-deficit scheduler: at every
// step the component whose emitted share lags its weight the most goes
// next. Unlike Mixture, the gap between consecutive accesses of a
// component is (nearly) constant, so a cyclic component's reuse times are
// sharply concentrated — producing the crisp working-set cliffs of real
// loop nests rather than randomly smeared ones.
type DeterministicMix struct {
	Gens    []Generator
	weights []float64
	emitted []float64
	step    float64
}

// NewDeterministicMix returns a deterministic proportional mixture. It
// panics on mismatched lengths, empty input, negative weights, or a
// non-positive total weight.
func NewDeterministicMix(gens []Generator, weights []float64) *DeterministicMix {
	if len(gens) == 0 || len(gens) != len(weights) {
		panic(fmt.Sprintf("trace: mix needs matching non-empty gens/weights, got %d/%d", len(gens), len(weights)))
	}
	var sum float64
	for _, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("trace: negative mix weight %v", w))
		}
		sum += w
	}
	if sum <= 0 {
		panic("trace: mix weights sum to zero")
	}
	m := &DeterministicMix{
		Gens:    gens,
		weights: make([]float64, len(weights)),
		emitted: make([]float64, len(weights)),
	}
	for i, w := range weights {
		m.weights[i] = w / sum
	}
	return m
}

// Next implements Generator.
func (m *DeterministicMix) Next() uint32 {
	m.step++
	best, bestDef := 0, m.weights[0]*m.step-m.emitted[0]
	for i := 1; i < len(m.weights); i++ {
		if def := m.weights[i]*m.step - m.emitted[i]; def > bestDef {
			best, bestDef = i, def
		}
	}
	m.emitted[best]++
	return m.Gens[best].Next()
}

// MaxData implements Generator.
func (m *DeterministicMix) MaxData() uint32 {
	var max uint32
	for _, g := range m.Gens {
		if v := g.MaxData(); v > max {
			max = v
		}
	}
	return max
}

// Region shifts a generator's datum IDs by Base, giving it a private data
// space.
type Region struct {
	Gen  Generator
	Base uint32
}

// Next implements Generator.
func (r Region) Next() uint32 { return r.Gen.Next() + r.Base }

// MaxData implements Generator.
func (r Region) MaxData() uint32 { return r.Gen.MaxData() + r.Base }
