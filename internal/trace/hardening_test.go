package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

// All parse failures — text or binary — must wrap ErrMalformed so callers
// can distinguish bad input data from I/O errors.
func TestReadErrorsWrapErrMalformed(t *testing.T) {
	if _, err := ReadText(strings.NewReader("12\nxyz\n")); !errors.Is(err, ErrMalformed) {
		t.Errorf("text garbage error = %v, want ErrMalformed", err)
	}
	if _, err := ReadText(strings.NewReader("-5\n")); !errors.Is(err, ErrMalformed) {
		t.Errorf("negative ID error = %v, want ErrMalformed", err)
	}

	var b bytes.Buffer
	if err := WriteBinary(&b, Trace{1, 2, 3, 100, 2}); err != nil {
		t.Fatal(err)
	}
	// WriteBinary's output starts with the magic; ReadBinary takes the
	// stream after it.
	body := b.Bytes()[len(binaryMagic):]
	if _, err := ReadBinary(bytes.NewReader(body[:len(body)-1])); !errors.Is(err, ErrMalformed) {
		t.Errorf("truncated binary error = %v, want ErrMalformed", err)
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); !errors.Is(err, ErrMalformed) {
		t.Errorf("missing header error = %v, want ErrMalformed", err)
	}
}

// A forged header with an absurd length must fail fast on the
// plausibility check rather than attempting a giant allocation, and a
// huge-but-plausible declared count backed by no data must fail on the
// first missing varint, not in make().
func TestReadBinaryImplausibleLength(t *testing.T) {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], 1<<40)
	if _, err := ReadBinary(bytes.NewReader(hdr[:n])); !errors.Is(err, ErrMalformed) {
		t.Errorf("absurd length error = %v, want ErrMalformed", err)
	}
	n = binary.PutUvarint(hdr[:], 1<<33) // plausible count, empty body
	if _, err := ReadBinary(bytes.NewReader(hdr[:n])); !errors.Is(err, ErrMalformed) {
		t.Errorf("unbacked length error = %v, want ErrMalformed", err)
	}
}
