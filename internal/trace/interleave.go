package trace

import (
	"fmt"
	"math/rand/v2"
)

// Interleaved is the result of merging several program traces into one
// shared-cache access stream.
type Interleaved struct {
	// Trace is the merged access stream. Datum IDs are offset so that
	// program data spaces are disjoint.
	Trace Trace
	// Owner[i] is the index of the program that issued access i.
	Owner []uint8
	// Bases[p] is the ID offset applied to program p's data.
	Bases []uint32
	// Counts[p] is the number of accesses program p contributed.
	Counts []int
}

// InterleaveProportional merges the traces deterministically in proportion
// to the given access rates, emitting n total accesses. At every step the
// program with the largest deficit (rate·t − emitted) goes next; ties break
// toward the lower program index. This models the paper's assumption of
// uniform interleaving by access rate. Program traces are cycled if they
// are shorter than their share of n. It panics on mismatched lengths,
// empty input, non-positive rates, or an empty component trace.
func InterleaveProportional(traces []Trace, rates []float64, n int) Interleaved {
	validateInterleave(traces, rates)
	total := 0.0
	for _, r := range rates {
		total += r
	}
	bases := dataBases(traces)
	out := Interleaved{
		Trace:  make(Trace, 0, n),
		Owner:  make([]uint8, 0, n),
		Bases:  bases,
		Counts: make([]int, len(traces)),
	}
	pos := make([]int, len(traces))
	emitted := make([]float64, len(traces))
	for t := 1; t <= n; t++ {
		best, bestDef := 0, rates[0]/total*float64(t)-emitted[0]
		for p := 1; p < len(traces); p++ {
			def := rates[p]/total*float64(t) - emitted[p]
			if def > bestDef {
				best, bestDef = p, def
			}
		}
		out.append(best, traces[best][pos[best]]+bases[best])
		pos[best] = (pos[best] + 1) % len(traces[best])
		emitted[best]++
	}
	return out
}

// InterleaveRandom merges the traces by drawing the next program at random
// with probability proportional to its rate, seeded deterministically. This
// models the paper's random phase-interaction assumption (§VIII). The same
// panics as InterleaveProportional apply.
func InterleaveRandom(seed uint64, traces []Trace, rates []float64, n int) Interleaved {
	validateInterleave(traces, rates)
	rng := rand.New(rand.NewPCG(seed, seed^0x2545f4914f6cdd1d))
	cum := make([]float64, len(rates))
	var sum float64
	for i, r := range rates {
		sum += r
		cum[i] = sum
	}
	bases := dataBases(traces)
	out := Interleaved{
		Trace:  make(Trace, 0, n),
		Owner:  make([]uint8, 0, n),
		Bases:  bases,
		Counts: make([]int, len(traces)),
	}
	pos := make([]int, len(traces))
	for t := 0; t < n; t++ {
		u := rng.Float64() * sum
		p := 0
		for p < len(cum)-1 && cum[p] < u {
			p++
		}
		out.append(p, traces[p][pos[p]]+bases[p])
		pos[p] = (pos[p] + 1) % len(traces[p])
	}
	return out
}

func (iv *Interleaved) append(p int, d uint32) {
	iv.Trace = append(iv.Trace, d)
	iv.Owner = append(iv.Owner, uint8(p))
	iv.Counts[p]++
}

func validateInterleave(traces []Trace, rates []float64) {
	if len(traces) == 0 || len(traces) != len(rates) {
		panic(fmt.Sprintf("trace: interleave needs matching non-empty traces/rates, got %d/%d", len(traces), len(rates)))
	}
	if len(traces) > 256 {
		panic(fmt.Sprintf("trace: interleave supports at most 256 programs, got %d", len(traces)))
	}
	for i, tr := range traces {
		if len(tr) == 0 {
			panic(fmt.Sprintf("trace: program %d has an empty trace", i))
		}
		if rates[i] <= 0 {
			panic(fmt.Sprintf("trace: program %d has non-positive rate %v", i, rates[i]))
		}
	}
}

// dataBases assigns each program a disjoint ID range, with a guard gap so
// that no two programs can alias even if a trace exceeds its declared
// maximum.
func dataBases(traces []Trace) []uint32 {
	bases := make([]uint32, len(traces))
	var next uint32
	for i, tr := range traces {
		bases[i] = next
		var max uint32
		for _, d := range tr {
			if d > max {
				max = d
			}
		}
		next += max + 2
	}
	return bases
}
