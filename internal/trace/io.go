package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"

	"partitionshare/internal/atomicio"
)

// ErrMalformed reports trace input that does not parse — a non-numeric
// text line, a truncated varint stream, an out-of-range ID. Trace files
// are user data, so every such failure is a wrapped sentinel testable with
// errors.Is, never a panic.
var ErrMalformed = errors.New("trace: malformed trace")

// Trace file formats:
//
//   - Text: one decimal block ID per line. Interoperable with standard
//     tracing tools; large.
//   - Binary: the magic "PSTR1\n" followed by varint-encoded deltas
//     (zig-zag of the signed difference from the previous ID). Memory
//     traces are strongly local, so deltas are small and the format
//     compresses 3-5x against text.
//
// ReadFile auto-detects the format from the magic.

const binaryMagic = "PSTR1\n"

// WriteText writes the trace as one decimal ID per line.
func WriteText(w io.Writer, t Trace) error {
	bw := bufio.NewWriter(w)
	for _, d := range t {
		if _, err := fmt.Fprintln(bw, d); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses one decimal ID per line, skipping blank lines.
func ReadText(r io.Reader) (Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var t Trace
	line := 0
	for sc.Scan() {
		line++
		txt := sc.Text()
		if txt == "" {
			continue
		}
		v, err := strconv.ParseUint(txt, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrMalformed, line, err)
		}
		t = append(t, uint32(v))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteBinary writes the delta-varint binary format.
func WriteBinary(w io.Writer, t Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(t)))
	if _, err := bw.Write(lenBuf[:n]); err != nil {
		return err
	}
	prev := int64(0)
	var buf [binary.MaxVarintLen64]byte
	for _, d := range t {
		delta := int64(d) - prev
		n := binary.PutVarint(buf[:], delta)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		prev = int64(d)
	}
	return bw.Flush()
}

// ReadBinary parses the delta-varint binary format (after the caller has
// consumed and verified the magic — use ReadFile for auto-detection).
func ReadBinary(r io.ByteReader) (Trace, error) {
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("%w: bad binary header: %v", ErrMalformed, err)
	}
	if count > 1<<34 {
		return nil, fmt.Errorf("%w: implausible trace length %d", ErrMalformed, count)
	}
	// The declared count is untrusted until the stream backs it up: cap
	// the pre-allocation so a short file with a huge header fails on the
	// first missing varint, not with a multi-gigabyte make().
	capHint := count
	if capHint > 1<<22 {
		capHint = 1 << 22
	}
	t := make(Trace, 0, capHint)
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		delta, err := binary.ReadVarint(r)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated at access %d: %v", ErrMalformed, i, err)
		}
		v := prev + delta
		if v < 0 || v > int64(^uint32(0)) {
			return nil, fmt.Errorf("%w: access %d out of uint32 range (%d)", ErrMalformed, i, v)
		}
		t = append(t, uint32(v))
		prev = v
	}
	return t, nil
}

// WriteFile writes the trace to path atomically (write-temp+rename):
// binary when binaryFormat is true, otherwise text.
func WriteFile(path string, t Trace, binaryFormat bool) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		if binaryFormat {
			return WriteBinary(w, t)
		}
		return WriteText(w, t)
	})
}

// ReadFile reads a trace from path, auto-detecting text vs binary by the
// magic prefix.
func ReadFile(path string) (Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, err := br.Peek(len(binaryMagic))
	if err == nil && string(head) == binaryMagic {
		if _, err := br.Discard(len(binaryMagic)); err != nil {
			return nil, err
		}
		t, err := ReadBinary(br)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return t, nil
	}
	t, err := ReadText(br)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}
