package trace

import (
	"testing"
	"testing/quick"
)

func TestStreamingFreshData(t *testing.T) {
	g := NewStreaming(1)
	tr := Generate(g, 100)
	if got := tr.DistinctData(); got != 100 {
		t.Fatalf("streaming repeat=1: distinct = %d, want 100", got)
	}
	for i, d := range tr {
		if d != uint32(i) {
			t.Fatalf("access %d = %d, want %d", i, d, i)
		}
	}
}

func TestStreamingRepeat(t *testing.T) {
	g := NewStreaming(4)
	tr := Generate(g, 100)
	if got := tr.DistinctData(); got != 25 {
		t.Fatalf("streaming repeat=4: distinct = %d, want 25", got)
	}
	// Each block appears exactly 4 times, consecutively.
	for i := 0; i < 100; i++ {
		if tr[i] != uint32(i/4) {
			t.Fatalf("access %d = %d, want %d", i, tr[i], i/4)
		}
	}
}

func TestStreamingClampRepeat(t *testing.T) {
	g := NewStreaming(0)
	if g.Repeat != 1 {
		t.Fatalf("repeat clamped to %d, want 1", g.Repeat)
	}
}

func TestLoopCycles(t *testing.T) {
	g := NewLoop(5, 1)
	tr := Generate(g, 12)
	want := Trace{0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0, 1}
	for i := range want {
		if tr[i] != want[i] {
			t.Fatalf("loop trace = %v, want %v", tr, want)
		}
	}
	if g.MaxData() != 5 {
		t.Errorf("MaxData = %d, want 5", g.MaxData())
	}
}

func TestLoopRepeat(t *testing.T) {
	g := NewLoop(2, 3)
	tr := Generate(g, 8)
	want := Trace{0, 0, 0, 1, 1, 1, 0, 0}
	for i := range want {
		if tr[i] != want[i] {
			t.Fatalf("loop repeat trace = %v, want %v", tr, want)
		}
	}
}

func TestSawtoothSweep(t *testing.T) {
	g := NewSawtooth(4)
	tr := Generate(g, 10)
	want := Trace{0, 1, 2, 3, 2, 1, 0, 1, 2, 3}
	for i := range want {
		if tr[i] != want[i] {
			t.Fatalf("sawtooth trace = %v, want %v", tr, want)
		}
	}
}

func TestSawtoothSizeOne(t *testing.T) {
	g := NewSawtooth(1)
	tr := Generate(g, 5)
	for _, d := range tr {
		if d != 0 {
			t.Fatalf("sawtooth size 1 emitted %d", d)
		}
	}
}

func TestZipfBoundsAndSkew(t *testing.T) {
	g := NewZipf(100, 1.0, 42)
	counts := make(map[uint32]int)
	n := 20000
	for i := 0; i < n; i++ {
		d := g.Next()
		if d >= 100 {
			t.Fatalf("zipf emitted out-of-range ID %d", d)
		}
		counts[d]++
	}
	// Rank 0 should be much hotter than rank 50.
	if counts[0] <= counts[50]*3 {
		t.Errorf("zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
}

func TestZipfDeterministic(t *testing.T) {
	a := Generate(NewZipf(64, 0.8, 7), 1000)
	b := Generate(NewZipf(64, 0.8, 7), 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("zipf with same seed diverged")
		}
	}
}

func TestPhasedAlternation(t *testing.T) {
	g := NewPhased(
		Phase{Gen: NewLoop(3, 1), Len: 3},
		Phase{Gen: Region{Gen: NewLoop(2, 1), Base: 100}, Len: 2},
	)
	tr := Generate(g, 10)
	want := Trace{0, 1, 2, 100, 101, 0, 1, 2, 100, 101}
	for i := range want {
		if tr[i] != want[i] {
			t.Fatalf("phased trace = %v, want %v", tr, want)
		}
	}
}

func TestPhasedPanics(t *testing.T) {
	cases := []func(){
		func() { NewPhased() },
		func() { NewPhased(Phase{Gen: NewLoop(1, 1), Len: 0}) },
		func() { NewPhased(Phase{Gen: nil, Len: 1}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestMixtureWeights(t *testing.T) {
	// Component 0 over IDs [0,10), component 1 over [100,110).
	g := NewMixture(9,
		[]Generator{NewLoop(10, 1), Region{Gen: NewLoop(10, 1), Base: 100}},
		[]float64{3, 1})
	n := 40000
	lo := 0
	for i := 0; i < n; i++ {
		if g.Next() < 100 {
			lo++
		}
	}
	frac := float64(lo) / float64(n)
	if frac < 0.70 || frac > 0.80 {
		t.Errorf("mixture weight 3:1 gave fraction %v, want ~0.75", frac)
	}
}

func TestMixturePanics(t *testing.T) {
	cases := []func(){
		func() { NewMixture(1, nil, nil) },
		func() { NewMixture(1, []Generator{NewLoop(1, 1)}, []float64{1, 2}) },
		func() { NewMixture(1, []Generator{NewLoop(1, 1)}, []float64{0}) },
		func() { NewMixture(1, []Generator{NewLoop(1, 1)}, []float64{-1}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestRegionShift(t *testing.T) {
	g := Region{Gen: NewLoop(3, 1), Base: 50}
	tr := Generate(g, 3)
	if tr[0] != 50 || tr[1] != 51 || tr[2] != 52 {
		t.Fatalf("region trace = %v", tr)
	}
	if g.MaxData() != 53 {
		t.Errorf("MaxData = %d, want 53", g.MaxData())
	}
}

func TestOffset(t *testing.T) {
	tr := Trace{0, 1, 2}
	got := tr.Offset(10)
	if got[0] != 10 || got[2] != 12 {
		t.Fatalf("Offset = %v", got)
	}
	if tr[0] != 0 {
		t.Fatal("Offset mutated the receiver")
	}
}

func TestInterleaveProportionalRates(t *testing.T) {
	a := Generate(NewLoop(4, 1), 100)
	b := Generate(NewLoop(4, 1), 100)
	iv := InterleaveProportional([]Trace{a, b}, []float64{3, 1}, 400)
	if iv.Counts[0] != 300 || iv.Counts[1] != 100 {
		t.Fatalf("counts = %v, want [300 100]", iv.Counts)
	}
	if len(iv.Trace) != 400 || len(iv.Owner) != 400 {
		t.Fatalf("lengths = %d/%d, want 400/400", len(iv.Trace), len(iv.Owner))
	}
}

func TestInterleaveDisjointDataSpaces(t *testing.T) {
	a := Generate(NewLoop(8, 1), 50)
	b := Generate(NewLoop(8, 1), 50)
	iv := InterleaveProportional([]Trace{a, b}, []float64{1, 1}, 100)
	seen := map[uint32]uint8{}
	for i, d := range iv.Trace {
		if prev, ok := seen[d]; ok && prev != iv.Owner[i] {
			t.Fatalf("datum %d accessed by programs %d and %d", d, prev, iv.Owner[i])
		}
		seen[d] = iv.Owner[i]
	}
}

func TestInterleavePreservesPerProgramOrder(t *testing.T) {
	a := Generate(NewStreaming(1), 64)
	b := Generate(NewLoop(4, 1), 64)
	iv := InterleaveProportional([]Trace{a, b}, []float64{1, 2}, 120)
	// Extract program 0's accesses; they must equal a's prefix (cycled),
	// shifted by its base.
	var got Trace
	for i, d := range iv.Trace {
		if iv.Owner[i] == 0 {
			got = append(got, d-iv.Bases[0])
		}
	}
	for i, d := range got {
		if d != a[i%len(a)] {
			t.Fatalf("program 0 access %d = %d, want %d", i, d, a[i%len(a)])
		}
	}
}

func TestInterleaveRandomApproximatesRates(t *testing.T) {
	a := Generate(NewLoop(4, 1), 16)
	b := Generate(NewLoop(4, 1), 16)
	iv := InterleaveRandom(11, []Trace{a, b}, []float64{1, 3}, 10000)
	frac := float64(iv.Counts[1]) / 10000
	if frac < 0.72 || frac > 0.78 {
		t.Errorf("random interleave fraction = %v, want ~0.75", frac)
	}
}

func TestInterleavePanics(t *testing.T) {
	good := Trace{0, 1}
	cases := []func(){
		func() { InterleaveProportional(nil, nil, 10) },
		func() { InterleaveProportional([]Trace{good}, []float64{1, 2}, 10) },
		func() { InterleaveProportional([]Trace{{}}, []float64{1}, 10) },
		func() { InterleaveProportional([]Trace{good}, []float64{0}, 10) },
		func() { InterleaveRandom(1, []Trace{good}, []float64{-1}, 10) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// Property: proportional interleaving emits each program a number of
// accesses within 1 of its exact proportional share at every prefix.
func TestInterleaveProportionalSmoothness(t *testing.T) {
	a := Generate(NewLoop(4, 1), 16)
	b := Generate(NewLoop(4, 1), 16)
	c := Generate(NewLoop(4, 1), 16)
	rates := []float64{1, 2, 5}
	iv := InterleaveProportional([]Trace{a, b, c}, rates, 800)
	counts := make([]float64, 3)
	total := 8.0
	for i, owner := range iv.Owner {
		counts[owner]++
		for p := 0; p < 3; p++ {
			share := rates[p] / total * float64(i+1)
			if diff := counts[p] - share; diff > 1.5 || diff < -1.5 {
				t.Fatalf("prefix %d: program %d count %v vs share %v", i+1, p, counts[p], share)
			}
		}
	}
}

// Property: DistinctData of a loop trace never exceeds the loop size.
func TestLoopDistinctBound(t *testing.T) {
	f := func(size uint16, n uint16) bool {
		s := uint32(size%500) + 1
		tr := Generate(NewLoop(s, 1), int(n%2000)+1)
		return tr.DistinctData() <= int(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestToBlocks(t *testing.T) {
	tr := Trace{0, 1, 2, 3, 8, 9, 100}
	got := tr.ToBlocks(4)
	want := Trace{0, 0, 0, 0, 2, 2, 25}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ToBlocks = %v, want %v", got, want)
		}
	}
	if tr[0] != 0 || tr[4] != 8 {
		t.Fatal("ToBlocks mutated receiver")
	}
}

func TestToBlocksIdentity(t *testing.T) {
	tr := Generate(NewZipf(100, 0.5, 1), 500)
	got := tr.ToBlocks(1)
	for i := range tr {
		if got[i] != tr[i] {
			t.Fatal("wordsPerBlock=1 should be identity")
		}
	}
}

func TestToBlocksPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Trace{1}.ToBlocks(0)
}

// Line-size study: a sequential word stream at larger block sizes has
// proportionally fewer distinct blocks and (per word access) a lower
// block miss ratio — spatial locality quantified.
func TestToBlocksLineSizeStudy(t *testing.T) {
	words := Generate(NewStreaming(1), 1<<14) // sequential words
	prevDistinct := 1 << 20
	for _, wpb := range []uint32{1, 4, 16, 64} {
		blocks := words.ToBlocks(wpb)
		distinct := blocks.DistinctData()
		wantDistinct := (1 << 14) / int(wpb)
		if distinct != wantDistinct {
			t.Fatalf("wpb=%d: distinct = %d, want %d", wpb, distinct, wantDistinct)
		}
		if distinct >= prevDistinct {
			t.Fatalf("distinct blocks should shrink with block size")
		}
		prevDistinct = distinct
	}
}
