// Package footprint implements the higher-order theory of locality (HOTL)
// metrics of the paper's §III: the average footprint fp(w), fill time
// ft(c) = fp⁻¹(c), inter-miss time im(c) = ft(c+1) − ft(c), and miss ratio
// mr(c) = 1/im(c) = fp(ft(c)+1) − c.
//
// The average footprint is computed exactly from the reuse-time histogram
// in closed form. For a trace of n accesses to m distinct data,
//
//	fp(w) = m − [ Σ_{t>w} (t−w)·freq(t)
//	            + Σ_k max(0, f_k−w)
//	            + Σ_k max(0, l_k−w) ] / (n−w+1)
//
// where freq is the reuse-time histogram, f_k the first-access time of
// datum k, and l_k = n − last_k + 1 its reverse last-access time. The three
// sums are answered in O(log n) by reuse.TailSum, so a full miss-ratio
// curve costs O(C log² n) instead of the O(n·C) of direct window counting.
package footprint

import (
	"context"
	"fmt"
	"math"

	"partitionshare/internal/reuse"
	"partitionshare/internal/trace"
)

// Footprint evaluates the HOTL metrics of one program's trace. The zero
// value is not usable; build one with New or FromTrace.
type Footprint struct {
	p reuse.Profile
}

// New wraps a reuse profile for footprint evaluation.
func New(p reuse.Profile) Footprint {
	if p.N <= 0 {
		panic("footprint: profile has no accesses")
	}
	return Footprint{p: p}
}

// FromTrace profiles the trace and wraps it.
func FromTrace(t trace.Trace) Footprint { return New(reuse.Collect(t)) }

// FromTraceParallel is FromTrace with the profiling scan sharded across
// workers (reuse.CollectParallel); the resulting footprint is bit-identical
// to FromTrace's. workers <= 0 uses all CPUs. It returns reuse.ErrEmptyTrace
// on an empty trace and ctx.Err() if cancelled mid-scan.
func FromTraceParallel(ctx context.Context, t trace.Trace, workers int) (Footprint, error) {
	p, err := reuse.CollectParallel(ctx, t, workers)
	if err != nil {
		return Footprint{}, err
	}
	return New(p), nil
}

// N returns the trace length.
func (f Footprint) N() int64 { return f.p.N }

// M returns the number of distinct data (the footprint of the whole trace).
func (f Footprint) M() int64 { return f.p.M }

// AtInt returns fp(w) for an integer window length. fp(0) = 0,
// fp(w >= n) = m.
func (f Footprint) AtInt(w int64) float64 {
	switch {
	case w <= 0:
		return 0
	case w >= f.p.N:
		return float64(f.p.M)
	}
	deficit := f.p.Reuse.Excess(w) + f.p.First.Excess(w) + f.p.Last.Excess(w)
	return float64(f.p.M) - float64(deficit)/float64(f.p.N-w+1)
}

// At returns fp(w) for a real-valued window length, linearly interpolating
// between integer window lengths. Fractional windows arise from footprint
// stretching in co-run composition (paper Eq. 9).
func (f Footprint) At(w float64) float64 {
	if w <= 0 {
		return 0
	}
	if w >= float64(f.p.N) {
		return float64(f.p.M)
	}
	lo := math.Floor(w)
	frac := w - lo
	flo := f.AtInt(int64(lo))
	if frac == 0 {
		return flo
	}
	fhi := f.AtInt(int64(lo) + 1)
	return flo + frac*(fhi-flo)
}

// FillTime returns ft(c), the (real-valued) window length at which the
// average footprint reaches c blocks: the smallest w with fp(w) = c, using
// linear interpolation. It panics if c is negative and returns +Inf when
// c exceeds the total footprint m.
func (f Footprint) FillTime(c float64) float64 {
	if c < 0 {
		panic(fmt.Sprintf("footprint: negative cache size %v", c))
	}
	if c == 0 {
		return 0
	}
	if c > float64(f.p.M) {
		return math.Inf(1)
	}
	// Binary search for the smallest integer w with fp(w) >= c.
	lo, hi := int64(0), f.p.N
	for lo < hi {
		mid := (lo + hi) / 2
		if f.AtInt(mid) >= c {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	flo := f.AtInt(lo - 1)
	fhi := f.AtInt(lo)
	if fhi <= flo {
		return float64(lo)
	}
	return float64(lo-1) + (c-flo)/(fhi-flo)
}

// MissRatio returns the HOTL miss ratio mr(c) = fp(ft(c)+1) − c for a
// fully-associative LRU cache of c blocks (paper Eq. 10). For c at or above
// the total footprint m the only misses are cold, so mr = m/n; this matches
// the stack-distance (ground-truth) curve, which counts cold misses.
func (f Footprint) MissRatio(c float64) float64 {
	if c < 0 {
		panic(fmt.Sprintf("footprint: negative cache size %v", c))
	}
	if c >= float64(f.p.M) {
		return float64(f.p.M) / float64(f.p.N)
	}
	w := f.FillTime(c)
	mr := f.At(w+1) - c
	if mr < 0 {
		return 0
	}
	if mr > 1 {
		return 1
	}
	return mr
}

// InterMissTime returns im(c) = ft(c+1) − ft(c), the expected number of
// accesses between consecutive misses at cache size c (paper Eq. 7). It is
// +Inf when c+1 exceeds the total footprint.
func (f Footprint) InterMissTime(c float64) float64 {
	return f.FillTime(c+1) - f.FillTime(c)
}

// MissRatioWindow returns the miss ratio averaged over the cache-size
// window [c−dc/2, c+dc/2]: (hi−lo)/(ft(hi)−ft(lo)), the harmonic-mean
// smoothing of mr over dc blocks. For an exact full-trace profile and
// small dc it coincides with MissRatio; for sampled profiles — whose
// footprint is a staircase with steps the size of the inverse sampling
// rate — the windowed secant is the meaningful local derivative. dc <= 0
// falls back to MissRatio.
func (f Footprint) MissRatioWindow(c, dc float64) float64 {
	if dc <= 0 {
		return f.MissRatio(c)
	}
	if c < 0 {
		panic(fmt.Sprintf("footprint: negative cache size %v", c))
	}
	m := float64(f.p.M)
	if c >= m {
		return f.MissRatio(c)
	}
	lo := c - dc/2
	if lo < 0 {
		lo = 0
	}
	hi := c + dc/2
	if hi > m {
		hi = m
	}
	if hi-lo < 1e-12 {
		return f.MissRatio(c)
	}
	w1, w2 := f.FillTime(lo), f.FillTime(hi)
	if math.IsInf(w2, 1) || w2 <= w1 {
		return f.MissRatio(c)
	}
	mr := (hi - lo) / (w2 - w1)
	if mr < 0 {
		return 0
	}
	if mr > 1 {
		return 1
	}
	return mr
}

// MissRatioCurve samples mr at integer cache sizes 0..maxC in steps of
// step blocks, returning a slice r with r[i] = mr(i*step). It panics if
// step or maxC is not positive.
func (f Footprint) MissRatioCurve(maxC, step int64) []float64 {
	if step <= 0 || maxC <= 0 {
		panic(fmt.Sprintf("footprint: invalid curve parameters maxC=%d step=%d", maxC, step))
	}
	out := make([]float64, maxC/step+1)
	for i := range out {
		out[i] = f.MissRatio(float64(int64(i) * step))
	}
	return out
}

// BruteForceFp computes the exact average footprint fp(w) of a trace by
// direct enumeration of all n−w+1 windows using a sliding window, in O(n)
// per window length. It exists to validate the closed-form formula and is
// exported for tests and examples only.
func BruteForceFp(t trace.Trace, w int) float64 {
	n := len(t)
	if w <= 0 {
		return 0
	}
	if w >= n {
		return float64(trace.Trace(t).DistinctData())
	}
	counts := make(map[uint32]int, 1024)
	distinct := 0
	var total int64
	for i, d := range t {
		if counts[d] == 0 {
			distinct++
		}
		counts[d]++
		if i >= w {
			old := t[i-w]
			counts[old]--
			if counts[old] == 0 {
				distinct--
			}
		}
		if i >= w-1 {
			total += int64(distinct)
		}
	}
	return float64(total) / float64(n-w+1)
}
