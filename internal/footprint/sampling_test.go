package footprint

import (
	"math"
	"testing"

	"partitionshare/internal/reuse"
	"partitionshare/internal/trace"
)

// A miss-ratio curve derived from a 10%-sampled profile must track the
// full-trace curve — the accuracy/cost trade the paper discusses for
// sampled footprint profiling (§VII-A).
func TestSampledProfileMRCAccuracy(t *testing.T) {
	// Spatial sampling keeps rate·M data, so its noise is ~1/sqrt(rate·M):
	// the method targets real traces with 10^5+ distinct blocks. Use
	// pools large enough that a 10% sample keeps a few thousand data.
	const n = 300000
	traces := []trace.Trace{
		randomTrace(21, n, 20000),
		trace.Generate(trace.NewZipf(30000, 0.8, 5), n),
		trace.Generate(trace.NewDeterministicMix(
			[]trace.Generator{
				trace.NewSawtooth(15000),
				trace.Region{Gen: trace.NewStreaming(8), Base: 1 << 24},
			},
			[]float64{0.7, 0.3}), n),
	}
	seeds := []uint64{17, 31, 43, 59, 71}
	for ti, tr := range traces {
		full := New(reuse.Collect(tr))
		var sampled []Footprint
		for _, seed := range seeds {
			sampled = append(sampled, New(reuse.CollectSampled(tr, 0.1, seed)))
		}
		for _, c := range []float64{1000, 4000, 10000, 18000} {
			f := full.MissRatio(c)
			mean := 0.0
			for si, s := range sampled {
				// A 10% sample's footprint moves in steps of ~10 blocks;
				// evaluate the windowed miss ratio (as mrc.FromFootprint
				// does per unit).
				v := s.MissRatioWindow(c, 400)
				mean += v
				// Per-seed bound is loose for the Zipf trace: its
				// heavy-tailed per-datum weights inflate sampling
				// variance; the mean bound below is the real check.
				if math.Abs(f-v) > 0.08 {
					t.Errorf("trace %d c=%v seed %d: full mr %.4f vs sampled mr %.4f", ti, c, seeds[si], f, v)
				}
			}
			mean /= float64(len(sampled))
			if math.Abs(f-mean) > 0.02 {
				t.Errorf("trace %d c=%v: full mr %.4f vs mean sampled mr %.4f", ti, c, f, mean)
			}
		}
	}
}

// Sampling must also preserve the footprint function itself within a few
// percent of the data size.
func TestSampledProfileFpAccuracy(t *testing.T) {
	tr := randomTrace(23, 300000, 20000)
	full := New(reuse.Collect(tr))
	seeds := []uint64{19, 29, 41, 53, 67}
	for _, w := range []int64{1000, 10000, 50000, 150000} {
		f := full.AtInt(w)
		denom := math.Max(f, 1)
		mean := 0.0
		for _, seed := range seeds {
			s := New(reuse.CollectSampled(tr, 0.1, seed)).AtInt(w)
			mean += s
			if math.Abs(f-s)/denom > 0.10 {
				t.Errorf("w=%d seed=%d: full fp %.1f vs sampled fp %.1f", w, seed, f, s)
			}
		}
		mean /= float64(len(seeds))
		if math.Abs(f-mean)/denom > 0.04 {
			t.Errorf("w=%d: full fp %.1f vs mean sampled fp %.1f", w, f, mean)
		}
	}
}
