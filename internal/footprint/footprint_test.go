package footprint

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"partitionshare/internal/reuse"
	"partitionshare/internal/trace"
)

func randomTrace(seed uint64, n, pool int) trace.Trace {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	t := make(trace.Trace, n)
	for i := range t {
		t[i] = uint32(rng.IntN(pool))
	}
	return t
}

// The closed-form fp(w) must match brute-force window enumeration exactly
// (up to float rounding) for every window length, on a variety of traces.
func TestClosedFormMatchesBruteForce(t *testing.T) {
	traces := []trace.Trace{
		{0, 1, 0},                                      // tiny
		trace.Generate(trace.NewLoop(5, 1), 23),        // cyclic
		trace.Generate(trace.NewStreaming(1), 17),      // streaming
		trace.Generate(trace.NewStreaming(3), 31),      // streaming w/ repeat
		trace.Generate(trace.NewSawtooth(6), 40),       // sawtooth
		randomTrace(7, 120, 10),                        // random
		randomTrace(8, 200, 50),                        // sparser random
		trace.Generate(trace.NewZipf(30, 1.0, 5), 150), // zipf
	}
	for ti, tr := range traces {
		fp := FromTrace(tr)
		for w := 1; w <= len(tr); w++ {
			want := BruteForceFp(tr, w)
			got := fp.AtInt(int64(w))
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trace %d: fp(%d) = %v, want %v", ti, w, got, want)
			}
		}
	}
}

func TestClosedFormMatchesBruteForceProperty(t *testing.T) {
	f := func(seed uint64, poolRaw uint8) bool {
		pool := int(poolRaw%40) + 1
		tr := randomTrace(seed, 80, pool)
		fp := FromTrace(tr)
		for w := 1; w <= 80; w += 7 {
			if math.Abs(fp.AtInt(int64(w))-BruteForceFp(tr, w)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFpBoundaries(t *testing.T) {
	tr := randomTrace(1, 100, 10)
	fp := FromTrace(tr)
	if got := fp.AtInt(0); got != 0 {
		t.Errorf("fp(0) = %v, want 0", got)
	}
	if got := fp.AtInt(int64(len(tr))); got != float64(tr.DistinctData()) {
		t.Errorf("fp(n) = %v, want %v", got, tr.DistinctData())
	}
	if got := fp.AtInt(1); got != 1 {
		t.Errorf("fp(1) = %v, want 1", got)
	}
	if got := fp.At(1e18); got != float64(fp.M()) {
		t.Errorf("fp(huge) = %v, want m", got)
	}
}

func TestFpMonotoneNondecreasing(t *testing.T) {
	f := func(seed uint64) bool {
		tr := randomTrace(seed, 150, 12)
		fp := FromTrace(tr)
		prev := 0.0
		for w := int64(0); w <= fp.N(); w++ {
			cur := fp.AtInt(w)
			if cur < prev-1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestInterpolation(t *testing.T) {
	tr := randomTrace(2, 100, 8)
	fp := FromTrace(tr)
	a, b := fp.AtInt(10), fp.AtInt(11)
	got := fp.At(10.5)
	want := (a + b) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("At(10.5) = %v, want %v", got, want)
	}
	if fp.At(10) != a {
		t.Errorf("At(10) = %v, want AtInt(10) = %v", fp.At(10), a)
	}
}

func TestFillTimeInvertsFp(t *testing.T) {
	tr := randomTrace(3, 300, 20)
	fp := FromTrace(tr)
	for c := 0.5; c < float64(fp.M()); c += 0.7 {
		w := fp.FillTime(c)
		if got := fp.At(w); math.Abs(got-c) > 1e-6 {
			t.Fatalf("fp(ft(%v)) = %v, want %v (w=%v)", c, got, c, w)
		}
	}
	if fp.FillTime(0) != 0 {
		t.Error("ft(0) != 0")
	}
	if !math.IsInf(fp.FillTime(float64(fp.M())+1), 1) {
		t.Error("ft(m+1) should be +Inf")
	}
}

func TestFillTimePanicsOnNegative(t *testing.T) {
	fp := FromTrace(trace.Trace{0, 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fp.FillTime(-1)
}

func TestStreamingMissRatioIsOne(t *testing.T) {
	// Pure streaming: every access is a miss at any cache size below m.
	tr := trace.Generate(trace.NewStreaming(1), 1000)
	fp := FromTrace(tr)
	for _, c := range []float64{1, 10, 100, 500} {
		if got := fp.MissRatio(c); math.Abs(got-1) > 0.01 {
			t.Errorf("streaming mr(%v) = %v, want ~1", c, got)
		}
	}
}

func TestStreamingWithRepeatMissRatio(t *testing.T) {
	// Repeat=4: one miss per 4 accesses.
	tr := trace.Generate(trace.NewStreaming(4), 4000)
	fp := FromTrace(tr)
	if got := fp.MissRatio(100); math.Abs(got-0.25) > 0.01 {
		t.Errorf("mr(100) = %v, want ~0.25", got)
	}
}

func TestLoopMissRatioCliff(t *testing.T) {
	// Loop over k blocks: mr ~1 below k, cold-only at or above k.
	k := int64(50)
	tr := trace.Generate(trace.NewLoop(uint32(k), 1), 5000)
	fp := FromTrace(tr)
	if got := fp.MissRatio(float64(k) / 2); got < 0.95 {
		t.Errorf("mr(k/2) = %v, want ~1", got)
	}
	coldRate := float64(k) / 5000
	if got := fp.MissRatio(float64(k)); math.Abs(got-coldRate) > 0.02 {
		t.Errorf("mr(k) = %v, want ~%v", got, coldRate)
	}
}

// The HOTL miss ratio must agree with the exact stack-distance LRU curve on
// traces satisfying the reuse-window hypothesis (uniformly random access is
// the canonical case). This is the §VII-C validation in miniature.
func TestHOTLMatchesStackDistanceMRC(t *testing.T) {
	tr := randomTrace(11, 20000, 400)
	fp := FromTrace(tr)
	hist := reuse.HistogramDistances(reuse.StackDistances(tr))
	for _, c := range []int64{10, 50, 100, 200, 300} {
		hotl := fp.MissRatio(float64(c))
		exact := hist.MissRatio(c)
		if math.Abs(hotl-exact) > 0.03 {
			t.Errorf("c=%d: HOTL mr %v vs exact %v", c, hotl, exact)
		}
	}
}

func TestMissRatioCurve(t *testing.T) {
	tr := randomTrace(4, 2000, 100)
	fp := FromTrace(tr)
	curve := fp.MissRatioCurve(120, 10)
	if len(curve) != 13 {
		t.Fatalf("curve length = %d, want 13", len(curve))
	}
	for i, v := range curve {
		if want := fp.MissRatio(float64(i * 10)); v != want {
			t.Fatalf("curve[%d] = %v, want %v", i, v, want)
		}
	}
}

func TestMissRatioCurvePanics(t *testing.T) {
	fp := FromTrace(trace.Trace{0, 1, 0})
	for _, f := range []func(){
		func() { fp.MissRatioCurve(0, 1) },
		func() { fp.MissRatioCurve(10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestInterMissTime(t *testing.T) {
	// Streaming with repeat r: one miss per r accesses, so im(c) = r.
	tr := trace.Generate(trace.NewStreaming(5), 5000)
	fp := FromTrace(tr)
	im := fp.InterMissTime(100)
	if math.Abs(im-5) > 0.2 {
		t.Errorf("im(100) = %v, want ~5", im)
	}
	// mr(c) == 1/im(c) (paper Eq. 8) up to interpolation error.
	mr := fp.MissRatio(100)
	if math.Abs(mr-1/im) > 0.02 {
		t.Errorf("mr %v vs 1/im %v", mr, 1/im)
	}
}

func TestNewPanicsOnEmptyProfile(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(reuse.Profile{})
}

func BenchmarkAtInt(b *testing.B) {
	tr := randomTrace(1, 200000, 10000)
	fp := FromTrace(tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fp.AtInt(int64(i%200000) + 1)
	}
}

func BenchmarkMissRatioCurve1024(b *testing.B) {
	tr := randomTrace(1, 200000, 20000)
	fp := FromTrace(tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fp.MissRatioCurve(16384, 16)
	}
}
