package epoch

import (
	"testing"

	"partitionshare/internal/trace"
)

// antiphasePair builds the Figure 1 scenario: two programs alternating
// big/small working sets in antiphase, plus trace lengths aligned to the
// epoch grid.
func antiphasePair(epochLen, epochs int, bigWS, tinyWS uint32) (a, b trace.Trace) {
	mk := func(bigFirst bool) trace.Trace {
		big := trace.Phase{Gen: trace.NewSawtooth(bigWS), Len: epochLen}
		tiny := trace.Phase{Gen: trace.Region{Gen: trace.NewSawtooth(tinyWS), Base: 1 << 20}, Len: epochLen}
		var g trace.Generator
		if bigFirst {
			g = trace.NewPhased(big, tiny)
		} else {
			g = trace.NewPhased(tiny, big)
		}
		return trace.Generate(g, epochLen*epochs)
	}
	return mk(true), mk(false)
}

func TestProfileEpochs(t *testing.T) {
	tr := trace.Generate(trace.NewLoop(50, 1), 1000)
	p, err := ProfileEpochs("x", 1, tr, 300)
	if err != nil {
		t.Fatal(err)
	}
	if p.Epochs() != 4 { // 300+300+300+100
		t.Fatalf("epochs = %d, want 4", p.Epochs())
	}
	if p.WholeFp.N() != 1000 {
		t.Fatalf("whole N = %d", p.WholeFp.N())
	}
	if p.EpochFps[3].N() != 100 {
		t.Fatalf("final epoch N = %d, want 100", p.EpochFps[3].N())
	}
}

func TestProfileEpochsErrors(t *testing.T) {
	if _, err := ProfileEpochs("x", 1, nil, 10); err == nil {
		t.Error("empty trace should error")
	}
	if _, err := ProfileEpochs("x", 1, trace.Trace{1}, 0); err == nil {
		t.Error("bad epoch length should error")
	}
}

func TestPlansAndSimulateDynamicBeatsStatic(t *testing.T) {
	const (
		epochLen      = 4096
		epochs        = 8
		units         = 16
		blocksPerUnit = 8 // cache = 128 blocks
	)
	// Working sets: big 100 blocks, tiny 2. Static partitioning cannot
	// cover both programs' big phases (200 > 128); a per-epoch plan gives
	// the big-phase program ~100 blocks while the other idles at ~2.
	ta, tb := antiphasePair(epochLen, epochs, 100, 2)
	pa, err := ProfileEpochs("a", 1, ta, epochLen)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := ProfileEpochs("b", 1, tb, epochLen)
	if err != nil {
		t.Fatal(err)
	}
	progs := []Program{pa, pb}

	static, err := PlanStatic(progs, units, blocksPerUnit)
	if err != nil {
		t.Fatal(err)
	}
	dynamic, err := PlanDynamic(progs, units, blocksPerUnit)
	if err != nil {
		t.Fatal(err)
	}
	if len(static.Alloc) != epochs || len(dynamic.Alloc) != epochs {
		t.Fatalf("plan lengths %d/%d", len(static.Alloc), len(dynamic.Alloc))
	}
	// The dynamic plan must actually change across epochs.
	changed := false
	for e := 1; e < epochs; e++ {
		if dynamic.Alloc[e][0] != dynamic.Alloc[e-1][0] {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("dynamic plan never repartitions on a phased workload")
	}

	sStatic, err := Simulate(progs, static, epochLen, blocksPerUnit)
	if err != nil {
		t.Fatal(err)
	}
	sDynamic, err := Simulate(progs, dynamic, epochLen, blocksPerUnit)
	if err != nil {
		t.Fatal(err)
	}
	if sDynamic.GroupMissRatio() >= sStatic.GroupMissRatio() {
		t.Errorf("dynamic (%.4f) should beat static (%.4f) on antiphase phases",
			sDynamic.GroupMissRatio(), sStatic.GroupMissRatio())
	}
}

func TestPlansAgreeOnPhaselessWorkload(t *testing.T) {
	// Without phases, re-optimizing per epoch yields (nearly) the static
	// performance — the §VIII random-phase argument.
	const (
		epochLen      = 8192
		epochs        = 4
		units         = 16
		blocksPerUnit = 8
	)
	ta := trace.Generate(trace.NewZipf(400, 0.7, 3), epochLen*epochs)
	tb := trace.Generate(trace.NewZipf(200, 0.7, 4), epochLen*epochs)
	pa, _ := ProfileEpochs("a", 1, ta, epochLen)
	pb, _ := ProfileEpochs("b", 1, tb, epochLen)
	progs := []Program{pa, pb}
	static, err := PlanStatic(progs, units, blocksPerUnit)
	if err != nil {
		t.Fatal(err)
	}
	dynamic, err := PlanDynamic(progs, units, blocksPerUnit)
	if err != nil {
		t.Fatal(err)
	}
	sStatic, _ := Simulate(progs, static, epochLen, blocksPerUnit)
	sDynamic, _ := Simulate(progs, dynamic, epochLen, blocksPerUnit)
	diff := sDynamic.GroupMissRatio() - sStatic.GroupMissRatio()
	if diff > 0.02 || diff < -0.02 {
		t.Errorf("phaseless: dynamic %.4f vs static %.4f differ too much",
			sDynamic.GroupMissRatio(), sStatic.GroupMissRatio())
	}
}

func TestSimulateErrors(t *testing.T) {
	tr := trace.Generate(trace.NewLoop(10, 1), 100)
	p, _ := ProfileEpochs("a", 1, tr, 50)
	good := Plan{Units: 4, Alloc: [][]int{{4}, {4}}}
	if _, err := Simulate(nil, good, 50, 2); err == nil {
		t.Error("no programs should error")
	}
	if _, err := Simulate([]Program{p}, Plan{Units: 4, Alloc: [][]int{{4}}}, 50, 2); err == nil {
		t.Error("plan/epoch mismatch should error")
	}
	if _, err := Simulate([]Program{p}, good, 0, 2); err == nil {
		t.Error("bad epoch length should error")
	}
	if _, err := Simulate([]Program{p}, Plan{Units: 4, Alloc: [][]int{{4, 1}, {4, 1}}}, 50, 2); err == nil {
		t.Error("plan width mismatch should error")
	}
	q, _ := ProfileEpochs("b", 1, tr, 25)
	if _, err := PlanStatic([]Program{p, q}, 4, 2); err == nil {
		t.Error("mismatched epoch counts should error")
	}
}
