// Package epoch implements time-windowed (phase-aware) cache
// partitioning: traces are profiled per fixed-length epoch and the
// partition is re-optimized at every epoch boundary.
//
// The paper's optimization is static — one partition from whole-execution
// profiles — and its §VIII "Random Phase Interaction" assumption is
// exactly the condition under which static is enough. This package
// provides the dynamic counterpart for workloads that violate it (the
// Figure 1 scenario): per-epoch DP plans plus a repartitioning simulator
// to measure what phase awareness is worth.
package epoch

import (
	"fmt"

	"partitionshare/internal/cachesim"
	"partitionshare/internal/footprint"
	"partitionshare/internal/mrc"
	"partitionshare/internal/partition"
	"partitionshare/internal/trace"
)

// Program is one co-run program profiled per epoch.
type Program struct {
	Name string
	Rate float64
	// Trace is the program's full access trace.
	Trace trace.Trace
	// EpochFps[e] is the footprint of epoch e (a slice of the trace).
	EpochFps []footprint.Footprint
	// WholeFp is the whole-trace footprint (for the static plan).
	WholeFp footprint.Footprint
}

// ProfileEpochs profiles a trace whole and in fixed-length epochs. The
// final partial epoch (if any) is profiled too. It returns an error for
// an empty trace or non-positive epoch length.
func ProfileEpochs(name string, rate float64, t trace.Trace, epochLen int) (Program, error) {
	if len(t) == 0 {
		return Program{}, fmt.Errorf("epoch: empty trace for %q", name)
	}
	if epochLen <= 0 {
		return Program{}, fmt.Errorf("epoch: non-positive epoch length %d", epochLen)
	}
	p := Program{Name: name, Rate: rate, Trace: t, WholeFp: footprint.FromTrace(t)}
	for start := 0; start < len(t); start += epochLen {
		end := start + epochLen
		if end > len(t) {
			end = len(t)
		}
		p.EpochFps = append(p.EpochFps, footprint.FromTrace(t[start:end]))
	}
	return p, nil
}

// Epochs returns the number of epochs profiled.
func (p Program) Epochs() int { return len(p.EpochFps) }

// Plan is a per-epoch sequence of allocations (units per program).
type Plan struct {
	// Alloc[e][i] is program i's units during epoch e.
	Alloc [][]int
	// Units is the cache size in units.
	Units int
}

// PlanStatic computes one optimal partition from whole-trace profiles and
// repeats it every epoch — the paper's (static) optimizer applied to the
// epoch framework.
func PlanStatic(progs []Program, units int, blocksPerUnit int64) (Plan, error) {
	epochs, err := commonEpochs(progs)
	if err != nil {
		return Plan{}, err
	}
	curves := make([]mrc.Curve, len(progs))
	for i, p := range progs {
		curves[i] = mrc.FromFootprint(p.Name, p.WholeFp, units, blocksPerUnit, p.Rate)
	}
	sol, err := partition.Optimize(partition.Problem{Curves: curves, Units: units})
	if err != nil {
		return Plan{}, err
	}
	plan := Plan{Units: units, Alloc: make([][]int, epochs)}
	for e := range plan.Alloc {
		plan.Alloc[e] = sol.Alloc
	}
	return plan, nil
}

// PlanDynamic re-optimizes the partition for every epoch from that
// epoch's profiles.
func PlanDynamic(progs []Program, units int, blocksPerUnit int64) (Plan, error) {
	epochs, err := commonEpochs(progs)
	if err != nil {
		return Plan{}, err
	}
	plan := Plan{Units: units, Alloc: make([][]int, epochs)}
	for e := 0; e < epochs; e++ {
		curves := make([]mrc.Curve, len(progs))
		for i, p := range progs {
			curves[i] = mrc.FromFootprint(p.Name, p.EpochFps[e], units, blocksPerUnit, p.Rate)
		}
		sol, err := partition.Optimize(partition.Problem{Curves: curves, Units: units})
		if err != nil {
			return Plan{}, fmt.Errorf("epoch %d: %w", e, err)
		}
		plan.Alloc[e] = sol.Alloc
	}
	return plan, nil
}

func commonEpochs(progs []Program) (int, error) {
	if len(progs) == 0 {
		return 0, fmt.Errorf("epoch: no programs")
	}
	epochs := progs[0].Epochs()
	for _, p := range progs[1:] {
		if p.Epochs() != epochs {
			return 0, fmt.Errorf("epoch: %q has %d epochs, %q has %d — profile with equal trace and epoch lengths",
				p.Name, p.Epochs(), progs[0].Name, epochs)
		}
	}
	return epochs, nil
}

// Result reports a repartitioning simulation.
type Result struct {
	// Misses[i] is program i's total miss count.
	Misses []int64
	// Accesses[i] is program i's access count.
	Accesses []int64
}

// GroupMissRatio returns total misses over total accesses.
func (r Result) GroupMissRatio() float64 {
	var m, a int64
	for i := range r.Misses {
		m += r.Misses[i]
		a += r.Accesses[i]
	}
	if a == 0 {
		return 0
	}
	return float64(m) / float64(a)
}

// Simulate runs the programs through private LRU partitions that are
// resized at every epoch boundary according to the plan (shrinking evicts
// LRU blocks, the hardware way-repartitioning model). Programs advance in
// lockstep epochs of epochLen accesses each.
func Simulate(progs []Program, plan Plan, epochLen int, blocksPerUnit int64) (Result, error) {
	epochs, err := commonEpochs(progs)
	if err != nil {
		return Result{}, err
	}
	if len(plan.Alloc) != epochs {
		return Result{}, fmt.Errorf("epoch: plan has %d epochs, programs have %d", len(plan.Alloc), epochs)
	}
	if epochLen <= 0 || blocksPerUnit <= 0 {
		return Result{}, fmt.Errorf("epoch: invalid geometry epochLen=%d blocksPerUnit=%d", epochLen, blocksPerUnit)
	}
	res := Result{
		Misses:   make([]int64, len(progs)),
		Accesses: make([]int64, len(progs)),
	}
	caches := make([]*cachesim.LRU, len(progs))
	for i := range caches {
		caches[i] = cachesim.NewLRU(0)
	}
	for e := 0; e < epochs; e++ {
		if len(plan.Alloc[e]) != len(progs) {
			return Result{}, fmt.Errorf("epoch %d: plan covers %d programs, want %d", e, len(plan.Alloc[e]), len(progs))
		}
		for i, p := range progs {
			caches[i].Resize(plan.Alloc[e][i] * int(blocksPerUnit))
			start := e * epochLen
			end := start + epochLen
			if end > len(p.Trace) {
				end = len(p.Trace)
			}
			if start >= end {
				continue
			}
			seg := p.Trace[start:end]
			res.Accesses[i] += int64(len(seg))
			res.Misses[i] += caches[i].Run(seg)
		}
	}
	return res, nil
}
