package mrc

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"partitionshare/internal/footprint"
	"partitionshare/internal/trace"
)

func mk(name string, accesses int64, mr ...float64) Curve {
	return Curve{Name: name, MR: mr, Accesses: accesses, AccessRate: 1}
}

func TestValidate(t *testing.T) {
	if err := mk("ok", 100, 0.5, 0.2, 0.1).Validate(); err != nil {
		t.Errorf("valid curve rejected: %v", err)
	}
	bad := []Curve{
		mk("short", 100, 0.5),
		mk("noacc", 0, 0.5, 0.2),
		mk("neg", 100, 0.5, -0.1),
		mk("big", 100, 1.5, 0.2),
		mk("nan", 100, math.NaN(), 0.2),
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("curve %q should fail validation", c.Name)
		}
	}
}

func TestMissRatioClamping(t *testing.T) {
	c := mk("c", 10, 0.9, 0.5, 0.1)
	if c.MissRatio(-5) != 0.9 {
		t.Error("negative units should clamp to 0")
	}
	if c.MissRatio(99) != 0.1 {
		t.Error("oversize units should clamp to C")
	}
	if c.Units() != 2 {
		t.Errorf("Units = %d, want 2", c.Units())
	}
}

func TestMissCount(t *testing.T) {
	c := mk("c", 1000, 0.9, 0.5, 0.1)
	if got := c.MissCount(1); got != 500 {
		t.Errorf("MissCount(1) = %v, want 500", got)
	}
}

func TestMonotoneRepair(t *testing.T) {
	c := mk("c", 10, 0.5, 0.6, 0.3, 0.4, 0.2)
	r := c.MonotoneRepair()
	want := []float64{0.6, 0.6, 0.4, 0.4, 0.2}
	for i := range want {
		if math.Abs(r.MR[i]-want[i]) > 1e-12 {
			t.Fatalf("repaired = %v, want %v", r.MR, want)
		}
	}
	// Original unchanged.
	if c.MR[0] != 0.5 {
		t.Error("MonotoneRepair mutated receiver")
	}
}

func TestIsConvex(t *testing.T) {
	if !mk("lin", 10, 1.0, 0.75, 0.5, 0.25, 0.0).IsConvex() {
		t.Error("linear curve should be convex")
	}
	if !mk("cvx", 10, 1.0, 0.5, 0.3, 0.2, 0.15).IsConvex() {
		t.Error("diminishing-returns curve should be convex")
	}
	// Working-set cliff: flat then drop — not convex.
	if mk("cliff", 10, 1.0, 1.0, 1.0, 0.0, 0.0).IsConvex() {
		t.Error("cliff curve should not be convex")
	}
}

func TestConvexMinorant(t *testing.T) {
	c := mk("cliff", 10, 1.0, 1.0, 1.0, 0.1, 0.1)
	h := c.ConvexMinorant()
	if !h.IsConvex() {
		t.Fatalf("minorant not convex: %v", h.MR)
	}
	for u := range h.MR {
		if h.MR[u] > c.MR[u]+1e-12 {
			t.Fatalf("minorant above curve at %d: %v > %v", u, h.MR[u], c.MR[u])
		}
	}
	// Endpoints preserved.
	if h.MR[0] != 1.0 || math.Abs(h.MR[4]-0.1) > 1e-12 {
		t.Errorf("endpoints changed: %v", h.MR)
	}
}

func TestConvexMinorantIdempotentOnConvex(t *testing.T) {
	c := mk("lin", 10, 1.0, 0.75, 0.5, 0.25, 0.0)
	h := c.ConvexMinorant()
	for u := range h.MR {
		if math.Abs(h.MR[u]-c.MR[u]) > 1e-12 {
			t.Fatalf("minorant changed a convex curve at %d: %v vs %v", u, h.MR[u], c.MR[u])
		}
	}
}

func TestConvexMinorantProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^77))
		mr := make([]float64, 20)
		v := 1.0
		for i := range mr {
			mr[i] = v
			v *= rng.Float64()*0.5 + 0.5
		}
		c := Curve{Name: "r", MR: mr, Accesses: 1, AccessRate: 1}
		h := c.ConvexMinorant()
		if !h.IsConvex() {
			return false
		}
		for u := range h.MR {
			if h.MR[u] > c.MR[u]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFromFootprint(t *testing.T) {
	tr := trace.Generate(trace.NewLoop(256, 1), 4096)
	fp := footprint.FromTrace(tr)
	c := FromFootprint("loop", fp, 8, 64, 1.0)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Units() != 8 {
		t.Fatalf("units = %d, want 8", c.Units())
	}
	if c.Accesses != 4096 {
		t.Errorf("accesses = %d, want 4096", c.Accesses)
	}
	// Loop of 256 blocks = 4 units: thrash below, cold-only at >= 4 units.
	if c.MR[2] < 0.9 {
		t.Errorf("MR[2] = %v, want ~1 (thrash)", c.MR[2])
	}
	if c.MR[6] > 0.1 {
		t.Errorf("MR[6] = %v, want ~0 (fits)", c.MR[6])
	}
}

func TestFromFootprintPanics(t *testing.T) {
	fp := footprint.FromTrace(trace.Trace{0, 1, 0})
	for i, f := range []func(){
		func() { FromFootprint("x", fp, 0, 64, 1) },
		func() { FromFootprint("x", fp, 8, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestGroupMissRatio(t *testing.T) {
	a := mk("a", 1000, 0.5, 0.4, 0.3)
	b := mk("b", 3000, 0.2, 0.1, 0.0)
	// a gets 0 units (mr 0.5, 500 misses), b gets 2 (mr 0, 0 misses).
	got := GroupMissRatio([]Curve{a, b}, []int{0, 2})
	if want := 500.0 / 4000.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("GroupMissRatio = %v, want %v", got, want)
	}
}

func TestGroupMissRatioPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GroupMissRatio([]Curve{mk("a", 1, 1, 0)}, []int{0, 1})
}
