package mrc

import (
	"errors"
	"math"
	"testing"
)

func TestValidateMonotone(t *testing.T) {
	good := Curve{Name: "g", MR: []float64{0.5, 0.4, 0.4, 0.1}, Accesses: 10}
	if err := good.ValidateMonotone(0); err != nil {
		t.Fatalf("non-increasing curve rejected: %v", err)
	}

	rising := Curve{Name: "r", MR: []float64{0.3, 0.5, 0.2}, Accesses: 10}
	if err := rising.ValidateMonotone(0.01); !errors.Is(err, ErrNonMonotone) {
		t.Fatalf("rising curve error = %v, want ErrNonMonotone", err)
	}
	// Within tolerance: measurement noise passes.
	if err := rising.ValidateMonotone(0.5); err != nil {
		t.Fatalf("rise within tolerance rejected: %v", err)
	}

	if err := good.ValidateMonotone(math.NaN()); err == nil {
		t.Fatal("NaN tolerance accepted")
	}
	if err := good.ValidateMonotone(-1); err == nil {
		t.Fatal("negative tolerance accepted")
	}

	// MonotoneRepair output always passes the check at zero tolerance.
	if err := rising.MonotoneRepair().ValidateMonotone(0); err != nil {
		t.Fatalf("repaired curve rejected: %v", err)
	}
}

// Validate's range check also rejects Inf and NaN points (Inf falls
// outside [0,1]); the curve boundary is user-data-reachable via profiles.
func TestValidateRejectsNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -0.1, 1.1} {
		c := Curve{Name: "x", MR: []float64{0.5, v}, Accesses: 1}
		if err := c.Validate(); err == nil {
			t.Errorf("MR value %v accepted", v)
		}
	}
}
