// Package mrc defines miss-ratio curves at partition-unit granularity —
// the interface between the locality substrate (footprint / stack-distance
// analysis) and the partitioning optimizers.
//
// The paper partitions an 8 MB cache in 8 KB units (128 cache blocks of
// 64 B), so a curve here is the miss ratio sampled at 0, 1, ..., C units.
// The optimizers minimize miss *counts* (miss ratio times accesses,
// paper Eq. 15), so each curve also carries its program's access count.
package mrc

import (
	"errors"
	"fmt"
	"math"

	"partitionshare/internal/footprint"
)

// ErrNonMonotone reports a curve that increases with cache size beyond the
// caller's tolerance; every ValidateMonotone failure wraps it.
var ErrNonMonotone = errors.New("mrc: non-monotone curve")

// Curve is one program's miss ratio as a function of allocated cache units.
type Curve struct {
	// Name identifies the program (for reports).
	Name string
	// MR[u] is the miss ratio with u units of cache; len(MR) = C+1 where
	// C is the number of units in the whole cache.
	MR []float64
	// Accesses is the program's total memory access count n_i.
	Accesses int64
	// AccessRate is the program's accesses per unit time (used for
	// footprint stretching in co-run composition).
	AccessRate float64
}

// Validate checks structural invariants: at least two points, ratios in
// [0,1], and a positive access count.
func (c Curve) Validate() error {
	if len(c.MR) < 2 {
		return fmt.Errorf("mrc: curve %q has %d points, need >= 2", c.Name, len(c.MR))
	}
	if c.Accesses <= 0 {
		return fmt.Errorf("mrc: curve %q has non-positive access count %d", c.Name, c.Accesses)
	}
	for u, r := range c.MR {
		if math.IsNaN(r) || r < 0 || r > 1 {
			return fmt.Errorf("mrc: curve %q has invalid miss ratio %v at %d units", c.Name, r, u)
		}
	}
	return nil
}

// ValidateMonotone checks that the curve is non-increasing within tol:
// MR[u+1] may exceed MR[u] by at most tol. Fully-associative LRU curves
// are non-increasing by the inclusion property, so a violation beyond
// measurement noise means the curve was corrupted in transit or built from
// inconsistent data; failures wrap ErrNonMonotone. Use MonotoneRepair to
// clamp small violations instead of rejecting them.
func (c Curve) ValidateMonotone(tol float64) error {
	if math.IsNaN(tol) || tol < 0 {
		return fmt.Errorf("mrc: invalid monotonicity tolerance %v", tol)
	}
	for u := 1; u < len(c.MR); u++ {
		if c.MR[u] > c.MR[u-1]+tol {
			return fmt.Errorf("%w: curve %q rises %v -> %v at %d units (tol %v)",
				ErrNonMonotone, c.Name, c.MR[u-1], c.MR[u], u, tol)
		}
	}
	return nil
}

// Units returns C, the number of cache units the curve covers.
func (c Curve) Units() int { return len(c.MR) - 1 }

// MissRatio returns the miss ratio at u units, clamping u to [0, C].
func (c Curve) MissRatio(u int) float64 {
	if u < 0 {
		u = 0
	}
	if u >= len(c.MR) {
		u = len(c.MR) - 1
	}
	return c.MR[u]
}

// MissCount returns the expected miss count at u units: mr(u) · accesses.
func (c Curve) MissCount(u int) float64 {
	return c.MissRatio(u) * float64(c.Accesses)
}

// MonotoneRepair returns a copy with the curve forced non-increasing by a
// right-to-left running minimum. Fully-associative LRU curves are
// non-increasing by the inclusion property; measurement noise or synthetic
// construction can violate it slightly.
func (c Curve) MonotoneRepair() Curve {
	out := c.clone()
	for u := len(out.MR) - 2; u >= 0; u-- {
		if out.MR[u] < out.MR[u+1] {
			out.MR[u] = out.MR[u+1]
		}
	}
	return out
}

// IsConvex reports whether the curve is convex (non-increasing marginal
// gain), the assumption STTW optimality requires.
func (c Curve) IsConvex() bool {
	for u := 1; u < len(c.MR)-1; u++ {
		// Convex iff MR[u] <= (MR[u-1] + MR[u+1]) / 2 at every interior
		// point, i.e. second difference >= 0.
		if c.MR[u-1]+c.MR[u+1]-2*c.MR[u] < -1e-12 {
			return false
		}
	}
	return true
}

// ConvexMinorant returns the greatest convex curve lying at or below c
// (its lower convex hull). It is what a convex optimizer effectively
// assumes the program's behaviour to be; comparing partitions computed on
// the hull versus the true curve quantifies the cost of the convexity
// assumption (§VII-B, STTW discussion).
func (c Curve) ConvexMinorant() Curve {
	out := c.clone()
	n := len(out.MR)
	// Andrew's monotone chain on points (u, MR[u]), keeping the lower hull.
	type pt struct{ x, y float64 }
	hull := make([]pt, 0, n)
	for u := 0; u < n; u++ {
		p := pt{float64(u), out.MR[u]}
		for len(hull) >= 2 {
			a, b := hull[len(hull)-2], hull[len(hull)-1]
			// Pop b if it lies on or above segment a-p.
			if (b.y-a.y)*(p.x-a.x) >= (p.y-a.y)*(b.x-a.x) {
				hull = hull[:len(hull)-1]
			} else {
				break
			}
		}
		hull = append(hull, p)
	}
	// Interpolate the hull back onto the unit grid.
	seg := 0
	for u := 0; u < n; u++ {
		x := float64(u)
		for seg+1 < len(hull)-1 && hull[seg+1].x <= x {
			seg++
		}
		a, b := hull[seg], hull[seg+1]
		// Guard the exact quantity we divide by: IEEE subtraction of
		// finite doubles yields 0 iff the operands are equal, so this is
		// the degenerate-segment check, not a rounding-sensitive compare.
		if b.x-a.x == 0 {
			out.MR[u] = math.Min(a.y, b.y)
			continue
		}
		t := (x - a.x) / (b.x - a.x)
		out.MR[u] = a.y + t*(b.y-a.y)
	}
	return out
}

func (c Curve) clone() Curve {
	out := c
	out.MR = make([]float64, len(c.MR))
	copy(out.MR, c.MR)
	return out
}

// FromFootprint samples a HOTL footprint into a unit-granularity curve.
// The cache has units partition units of blocksPerUnit cache blocks each.
func FromFootprint(name string, fp footprint.Footprint, units int, blocksPerUnit int64, accessRate float64) Curve {
	if units <= 0 || blocksPerUnit <= 0 {
		panic(fmt.Sprintf("mrc: invalid geometry units=%d blocksPerUnit=%d", units, blocksPerUnit))
	}
	c := Curve{
		Name:       name,
		MR:         make([]float64, units+1),
		Accesses:   fp.N(),
		AccessRate: accessRate,
	}
	// Sample the miss ratio smoothed over one unit width: identical to
	// the instantaneous mr for exact profiles, and the right local
	// derivative for sampled (staircase) footprints.
	for u := 0; u <= units; u++ {
		c.MR[u] = fp.MissRatioWindow(float64(int64(u)*blocksPerUnit), float64(blocksPerUnit))
	}
	return c.MonotoneRepair()
}

// GroupMissRatio returns the overall miss ratio of a set of programs given
// each one's allocation in units: total misses over total accesses.
func GroupMissRatio(curves []Curve, alloc []int) float64 {
	if len(curves) != len(alloc) {
		panic(fmt.Sprintf("mrc: %d curves but %d allocations", len(curves), len(alloc)))
	}
	var misses, accesses float64
	for i, c := range curves {
		misses += c.MissCount(alloc[i])
		accesses += float64(c.Accesses)
	}
	if accesses == 0 {
		return 0
	}
	return misses / accesses
}
