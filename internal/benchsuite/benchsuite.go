// Package benchsuite defines the repository's key benchmarks as data:
// the one-time profiled fixtures plus a named list of benchmark
// functions runnable through testing.Benchmark. cmd/benchsnap runs the
// suite to record a PR's snapshot file, and cmd/benchdiff -run runs it
// to compare a live measurement against a stored baseline — both see
// the same definitions, so their numbers are comparable by name.
//
// The measured paths mirror the named benchmarks of bench_test.go: the
// per-group optimal-partition DP (pooled kernel, parallel layers, and
// the preserved scatter-form reference), the baseline-constrained DP,
// the DP granularity sweep, one full-trace profiling pass, the three
// reuse-collection scans (dense, map reference, sharded parallel), the
// full Table I regeneration, and the daemon's service paths: the
// admission-gated plan request and the warm-vs-cold re-optimization
// epoch.
package benchsuite

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"testing"

	"partitionshare/internal/experiment"
	"partitionshare/internal/mrc"
	"partitionshare/internal/obs"
	"partitionshare/internal/partition"
	"partitionshare/internal/profileio"
	"partitionshare/internal/reuse"
	"partitionshare/internal/service"
	"partitionshare/internal/trace"
	"partitionshare/internal/workload"
)

// A Bench is one named benchmark over the suite's shared fixtures.
type Bench struct {
	Name string
	Fn   func(b *testing.B)
}

// A Suite holds the profiled fixtures the benchmarks run against. Build
// one with New — profiling the workloads takes a few seconds and is
// deliberately done once, outside any measurement.
type Suite struct {
	progs      []workload.Program
	cfg        workload.Config
	full4      []workload.Program
	fullCfg    workload.Config
	groupPr    partition.Problem
	equalBase  partition.Allocation
	fullCurves []mrc.Curve
	spec       workload.Spec
	tr         trace.Trace

	// Service fixture: a daemon service over a throwaway store with four
	// registered tenants, for the plan-request-path benchmark. Close
	// releases it.
	storeDir string
	store    *service.Store
	svc      *service.Service
	tenants  []string
	// groupA/groupB are the tenant curves and a one-member-churned
	// variant, the two endpoints of the ReOptimize epoch benchmarks.
	groupA []mrc.Curve
	groupB []mrc.Curve
}

// New profiles the fixtures: the 16-program suite at test geometry (for
// the Table I sweep), the first four programs at full geometry (for the
// group DP), and one generated trace (for the reuse scans).
func New() (*Suite, error) {
	s := &Suite{cfg: workload.TestConfig(), fullCfg: workload.DefaultConfig()}
	var err error
	s.progs, err = workload.ProfileAll(nil, workload.Specs(), s.cfg)
	if err != nil {
		return nil, err
	}
	s.full4, err = workload.ProfileAll(nil, workload.Specs()[:4], s.fullCfg)
	if err != nil {
		return nil, err
	}
	s.fullCurves = make([]mrc.Curve, len(s.full4))
	for i, p := range s.full4 {
		s.fullCurves[i] = p.Curve
	}
	s.groupPr = partition.Problem{Curves: s.fullCurves, Units: 1024}
	s.equalBase = partition.EqualAllocation(len(s.fullCurves), 1024)
	s.spec = workload.Specs()[0]
	gen := s.spec.Build(uint32(s.cfg.CacheBlocks()), s.cfg.Seed)
	s.tr = trace.Generate(gen, s.cfg.TraceLen)

	// The service fixture: four Zipf tenants registered through the real
	// store, so ServicePlanRequest measures the daemon's full plan path
	// (admission, curve gather, cancellable DP) at default geometry.
	s.storeDir, err = os.MkdirTemp("", "benchsuite-store-")
	if err != nil {
		return nil, err
	}
	s.store, err = service.OpenStore(s.storeDir, 0)
	if err != nil {
		return nil, err
	}
	s.svc, err = service.New(service.Config{Units: 1024, BlocksPerUnit: 4, Seed: 1}, s.store)
	if err != nil {
		return nil, err
	}
	for i := uint64(1); i <= 4; i++ {
		name := fmt.Sprintf("t%d", i)
		p := profileio.Profile{
			Name:  name,
			Rate:  1.0,
			Reuse: reuse.Collect(trace.Generate(trace.NewZipf(512, 0.7, i), 4096)),
		}
		if err := s.svc.Register(nil, name, p); err != nil {
			return nil, err
		}
		s.tenants = append(s.tenants, name)
	}
	s.groupA = make([]mrc.Curve, len(s.tenants))
	for i, name := range s.tenants {
		if s.groupA[i], err = s.svc.CurveFor(name, 1024); err != nil {
			return nil, err
		}
	}
	// groupB churns the last member: same curve data under a different
	// identity, so a rebase keeps the three-layer prefix and re-pushes
	// exactly one layer.
	s.groupB = append(append([]mrc.Curve{}, s.groupA[:len(s.groupA)-1]...), s.groupA[0])
	s.groupB[len(s.groupB)-1].Name = "t1-churned"
	return s, nil
}

// Close releases the service fixture's store and its throwaway
// directory.
func (s *Suite) Close() {
	if s.svc != nil {
		s.svc.Close()
	}
	if s.store != nil {
		s.store.Close()
	}
	if s.storeDir != "" {
		os.RemoveAll(s.storeDir)
	}
}

// largeCurves resamples the four full-geometry footprints at one block
// per unit over a units-block modeled cache, duplicating the program set
// when npr exceeds it.
func (s *Suite) largeCurves(units, npr int) []mrc.Curve {
	curves := make([]mrc.Curve, npr)
	for i := range curves {
		p := s.full4[i%len(s.full4)]
		name := p.Name
		if i >= len(s.full4) {
			name = fmt.Sprintf("%s#%d", p.Name, i/len(s.full4)+1)
		}
		curves[i] = mrc.FromFootprint(name, p.Fp, units, 1, p.Rate)
	}
	return curves
}

// spanBenchPlan labels the root span the traced plan benchmark opens
// around each request, standing in for the middleware's service.req
// root (the benchmark measures the service layer without HTTP).
const spanBenchPlan = "benchsuite.plan_request"

// ServicePlanBench returns the daemon's plan-request benchmark —
// admission, curve gather, and the cancellable DP. With traced=true
// each iteration additionally carries the request-telemetry envelope
// the HTTP middleware applies: a fresh W3C trace context, a stage
// collector, a root span, and one flight-recorder entry. Run it under
// both global telemetry states to measure the observability tax on the
// full request path (the ObsOverheadService gate in cmd/benchsnap).
func (s *Suite) ServicePlanBench(traced bool) func(b *testing.B) {
	return func(b *testing.B) {
		base := context.Background()
		for i := 0; i < b.N; i++ {
			if !traced {
				if _, err := s.svc.PlanFor(base, s.tenants, 1024); err != nil {
					b.Fatal(err)
				}
				continue
			}
			tc, _ := obs.EnsureTraceContext("")
			ctx := obs.WithTraceContext(base, tc)
			ctx, stages := obs.WithReqStages(ctx)
			ctx, root := obs.StartTraceSpan(ctx, spanBenchPlan, "benchsuite")
			_, err := s.svc.PlanFor(ctx, s.tenants, 1024)
			root.End()
			if err != nil {
				b.Fatal(err)
			}
			fr := obs.ActiveFlightRecorder()
			fr.Record(obs.RequestRecord{
				Route:   "plan_bench",
				Status:  200,
				TraceID: tc.TraceIDString(),
				Stages:  stages.Stages(),
			})
		}
	}
}

// OptimalBench returns the per-group optimal-partition DP benchmark —
// the subject of the ObsOverhead off/on gate, exposed separately so the
// gate can run it under both registry states.
func (s *Suite) OptimalBench() func(b *testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := partition.Optimize(s.groupPr); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Benches returns the full named benchmark list in its canonical order.
func (s *Suite) Benches() []Bench {
	benches := []Bench{
		{"OptimalPartitionGroup", s.OptimalBench()},
		{"OptimalPartitionGroupParallel", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := partition.OptimizeParallel(nil, s.groupPr, 0); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"OptimalPartitionGroupReference", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := partition.ReferenceOptimize(s.groupPr); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"BaselineOptimizationGroup", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := partition.OptimizeWithBaseline(s.fullCurves, 1024, s.equalBase); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ProfileProgram", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := workload.Profile(s.spec, s.cfg); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"CollectReuse/dense", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				reuse.Collect(s.tr)
			}
		}},
		{"CollectReuse/reference", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				reuse.CollectReference(s.tr)
			}
		}},
		{"CollectReuse/parallel", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := reuse.CollectParallel(nil, s.tr, 0); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"TableI", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiment.Run(nil, s.progs, 4, s.cfg.Units, s.cfg.BlocksPerUnit, experiment.RunOpts{})
				if err != nil {
					b.Fatal(err)
				}
				experiment.TableI(res)
			}
		}},
	}
	// Large-C group solves (ROADMAP item 2): the same four profiled
	// footprints resampled at one block per unit, modeling much larger
	// caches at fine granularity, plus an npr=8 variant that duplicates
	// the program set. Auto solver — these measure the refinement rung;
	// the matching forced-exact entry pins down the speedup factor.
	for _, lg := range []struct{ units, npr int }{{4096, 4}, {16384, 4}, {16384, 8}} {
		pr := partition.Problem{Curves: s.largeCurves(lg.units, lg.npr), Units: lg.units}
		name := fmt.Sprintf("OptimalPartitionGroup/units=%d", lg.units)
		if lg.npr != len(s.full4) {
			name = fmt.Sprintf("%s/npr=%d", name, lg.npr)
		}
		benches = append(benches, Bench{
			Name: name,
			Fn: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := partition.Optimize(pr); err != nil {
						b.Fatal(err)
					}
				}
			},
		})
	}
	prExact := partition.Problem{
		Curves: s.largeCurves(4096, 4),
		Units:  4096,
		Solver: partition.SolverExact,
	}
	benches = append(benches, Bench{
		Name: "OptimalPartitionExact/units=4096",
		Fn: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := partition.Optimize(prExact); err != nil {
					b.Fatal(err)
				}
			}
		},
	})
	for _, units := range []int{128, 256, 512, 1024, 2048} {
		blocksPerUnit := s.fullCfg.CacheBlocks() / int64(units)
		curves := make([]mrc.Curve, len(s.full4))
		for i, p := range s.full4 {
			curves[i] = mrc.FromFootprint(p.Name, p.Fp, units, blocksPerUnit, p.Rate)
		}
		pr := partition.Problem{Curves: curves, Units: units}
		benches = append(benches, Bench{
			Name: fmt.Sprintf("DPGranularity/units=%d", units),
			Fn: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := partition.Optimize(pr); err != nil {
						b.Fatal(err)
					}
				}
			},
		})
	}

	// Service paths (PR 7). ServicePlanRequest is the daemon's plan
	// request end to end minus HTTP: admission, curve gather, and the
	// cancellable DP under the default deadline. The ReOptimize pair
	// measures one churn epoch — the group's last member swapped — as the
	// background loop runs it: warm rebases onto the shared three-layer
	// prefix and pushes one layer, cold re-runs the full DP from scratch;
	// their ratio is the warm-start payoff the incremental optimizer buys.
	benches = append(benches, Bench{
		Name: "ServicePlanRequest",
		Fn:   s.ServicePlanBench(false),
	})
	// The same path with the full request-telemetry envelope and every
	// telemetry global live, so the traced/untraced pair is trackable
	// across snapshots by name (the gated ratio lives in benchsnap's
	// ObsOverheadService entries).
	benches = append(benches, Bench{
		Name: "ServiceTracedPlanRequest",
		Fn: func(b *testing.B) {
			prevReg, prevTr, prevFr := obs.Enabled(), obs.ActiveTracer(), obs.ActiveFlightRecorder()
			obs.Enable(obs.NewRegistry())
			obs.EnableTracer(obs.NewTracer(0, nil))
			obs.EnableFlightRecorder(obs.NewFlightRecorder(0))
			defer func() {
				obs.Enable(prevReg)
				obs.EnableTracer(prevTr)
				obs.EnableFlightRecorder(prevFr)
			}()
			s.ServicePlanBench(true)(b)
		},
	})
	benches = append(benches, Bench{
		Name: "ReOptimize/warm",
		Fn: func(b *testing.B) {
			inc := partition.NewIncremental(1024)
			if _, err := inc.Rebase(nil, s.groupA); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				target := s.groupA
				if i%2 == 0 {
					target = s.groupB
				}
				if _, err := inc.Rebase(nil, target); err != nil {
					b.Fatal(err)
				}
				if _, err := inc.Solve(); err != nil {
					b.Fatal(err)
				}
			}
		},
	})
	benches = append(benches, Bench{
		Name: "ReOptimize/cold",
		Fn: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				target := s.groupA
				if i%2 == 0 {
					target = s.groupB
				}
				pr := partition.Problem{Curves: target, Units: 1024}
				if _, err := partition.OptimizeParallel(nil, pr, 1); err != nil {
					b.Fatal(err)
				}
			}
		},
	})
	// Plan-lifecycle paths (PR 10). PlanDiff is the per-epoch diff the
	// publisher computes synchronously before every plan swap, at a
	// larger-than-typical group size so the gate bounds the worst case.
	// ChangeFeedFanout is one epoch publication fanned out to eight live
	// subscribers — the other synchronous cost the feed adds to the
	// re-optimization loop (drop-oldest, so it must stay flat even when
	// subscribers lag).
	benches = append(benches, Bench{
		Name: "PlanDiff",
		Fn: func(b *testing.B) {
			const n = 64
			prev := &service.Plan{Epoch: 1, Tenants: make([]string, n), Alloc: make([]int, n)}
			next := &service.Plan{Epoch: 2, Tenants: make([]string, n), Alloc: make([]int, n)}
			for i := 0; i < n; i++ {
				prev.Tenants[i] = fmt.Sprintf("tenant-%03d", i)
				next.Tenants[i] = prev.Tenants[i]
				prev.Alloc[i] = 16
				next.Alloc[i] = 16 + (i%5 - 2) // most tenants move a little
			}
			next.Tenants[n-1] = "tenant-joined" // plus one join/leave pair
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := service.ComputePlanDiff(prev, next)
				if d.UnitsMoved == 0 {
					b.Fatal("diff collapsed")
				}
			}
		},
	})
	benches = append(benches, Bench{
		Name: "ChangeFeedFanout",
		Fn:   changeFeedFanoutBench,
	})
	return benches
}

// changeFeedFanoutBench publishes b.N epoch records to a feed with
// eight live draining subscribers. The subscriber goroutines run for
// the benchmark's duration only: Close wakes every Next with
// ErrFeedClosed and wg joins them before the function returns.
func changeFeedFanoutBench(b *testing.B) {
	feed := service.NewChangeFeed(0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		sub := feed.Subscribe()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer sub.Close()
			for {
				if _, _, err := sub.Next(context.Background()); err != nil {
					return
				}
			}
		}()
	}
	rec := service.EpochRecord{Provenance: service.PlanProvenance{Cause: service.CauseChurn}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Provenance.Epoch = int64(i + 1)
		feed.Publish(rec)
	}
	b.StopTimer()
	feed.Close()
	wg.Wait()
}

// VetkitSelfRunBench measures one full vetkit pass over the repository
// (go run ./cmd/vetkit ./...), the wall time CI pays for the tier-1
// static-analysis gate. It is not part of Benches(): it shells out to
// the go toolchain and needs the repository root as working directory,
// so only cmd/benchsnap records it (as "VetkitSelfRun").
func VetkitSelfRunBench() func(b *testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cmd := exec.Command("go", "run", "./cmd/vetkit", "./...")
			cmd.Stdout, cmd.Stderr = io.Discard, io.Discard
			if err := cmd.Run(); err != nil {
				b.Fatalf("vetkit self-run: %v", err)
			}
		}
	}
}

// Run measures every benchmark once and returns name → ns/op. progress,
// when non-nil, is called after each measurement.
func Run(benches []Bench, progress func(name string, nsPerOp int64, iters int)) map[string]int64 {
	out := make(map[string]int64, len(benches))
	for _, bm := range benches {
		r := testing.Benchmark(bm.Fn)
		out[bm.Name] = r.NsPerOp()
		if progress != nil {
			progress(bm.Name, r.NsPerOp(), r.N)
		}
	}
	return out
}

// BestOf runs the benchmark n times and returns the fastest ns/op — the
// standard defense against one-off scheduling noise in a pass/fail gate.
func BestOf(n int, fn func(b *testing.B)) int64 {
	best := int64(0)
	for i := 0; i < n; i++ {
		r := testing.Benchmark(fn)
		if ns := r.NsPerOp(); best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// BestOfPaired interleaves n rounds of two benchmark variants —
// a, b, a, b, … — and returns each variant's fastest ns/op. For an
// overhead gate comparing the two, interleaving matters: sequential
// best-of blocks sample different machine phases, and on a shared box
// the drift between phases can exceed the gate's threshold by itself.
// setupA/setupB run before every round of their variant (installing or
// clearing telemetry globals); the last setup run is setupA's, so
// callers that clear state in setupA end clean.
func BestOfPaired(n int, setupA func(), a func(b *testing.B), setupB func(), b func(bb *testing.B)) (bestA, bestB int64) {
	for i := 0; i < n; i++ {
		setupA()
		if ns := testing.Benchmark(a).NsPerOp(); bestA == 0 || ns < bestA {
			bestA = ns
		}
		setupB()
		if ns := testing.Benchmark(b).NsPerOp(); bestB == 0 || ns < bestB {
			bestB = ns
		}
	}
	setupA()
	return bestA, bestB
}
