package cachesim

import (
	"math"
	"testing"

	"partitionshare/internal/trace"
)

func TestClockBasics(t *testing.T) {
	c := NewClock(2)
	if c.Access(1) {
		t.Fatal("cold access hit")
	}
	if !c.Access(1) {
		t.Fatal("re-access missed")
	}
	c.Access(2)
	if c.Access(3) { // evicts someone
		t.Fatal("cold access hit")
	}
	if c.Capacity() != 2 {
		t.Fatal("capacity wrong")
	}
	// The just-inserted block must be resident.
	if !c.Access(3) {
		t.Fatal("3 should be cached right after insertion")
	}
}

func TestClockZeroCapacity(t *testing.T) {
	c := NewClock(0)
	for i := 0; i < 5; i++ {
		if c.Access(7) {
			t.Fatal("zero-capacity cache hit")
		}
	}
}

func TestClockApproximatesLRU(t *testing.T) {
	// On random traces CLOCK tracks LRU closely.
	tr := randomTrace(3, 30000, 500)
	for _, capacity := range []int{50, 150, 300} {
		lru := float64(NewLRU(capacity).Run(tr)) / float64(len(tr))
		clock := float64(RunPolicy(NewClock(capacity), tr)) / float64(len(tr))
		if math.Abs(lru-clock) > 0.05 {
			t.Errorf("cap %d: LRU mr %.4f vs CLOCK mr %.4f", capacity, lru, clock)
		}
	}
}

func TestClockHitsWorkingSet(t *testing.T) {
	// A loop that fits has only cold misses under CLOCK too.
	tr := trace.Generate(trace.NewLoop(40, 1), 4000)
	if got := RunPolicy(NewClock(40), tr); got != 40 {
		t.Errorf("fitting loop: %d misses, want 40", got)
	}
}

func TestRandomBeatsLRUOnThrashingLoop(t *testing.T) {
	// Loop of 150 blocks in a 100-block cache: LRU misses every access;
	// random replacement hits roughly C/L of the time — the §VIII
	// non-LRU policy contrast.
	tr := trace.Generate(trace.NewLoop(150, 1), 30000)
	lruMisses := NewLRU(100).Run(tr)
	if lruMisses != 30000 {
		t.Fatalf("LRU should thrash: %d misses", lruMisses)
	}
	rndMisses := RunPolicy(NewRandom(100, 7), tr)
	rndMR := float64(rndMisses) / 30000
	if rndMR > 0.75 {
		t.Errorf("random replacement mr %.3f, want well below 1 (LRU thrash)", rndMR)
	}
}

func TestRandomWorseOnFriendlyTrace(t *testing.T) {
	// Zipf-skewed access favours recency; LRU should beat random.
	tr := trace.Generate(trace.NewZipf(2000, 1.0, 11), 40000)
	capacity := 300
	lru := NewLRU(capacity).Run(tr)
	rnd := RunPolicy(NewRandom(capacity, 13), tr)
	if rnd < lru {
		t.Errorf("random (%d) should not beat LRU (%d) on a recency-friendly trace", rnd, lru)
	}
}

func TestRandomDeterministicSeed(t *testing.T) {
	tr := randomTrace(9, 5000, 200)
	a := RunPolicy(NewRandom(50, 42), tr)
	b := RunPolicy(NewRandom(50, 42), tr)
	if a != b {
		t.Fatal("same seed, different miss counts")
	}
}

func TestRandomZeroCapacity(t *testing.T) {
	r := NewRandom(0, 1)
	if r.Access(3) {
		t.Fatal("zero-capacity hit")
	}
}

func TestPolicyPanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewClock(-1) },
		func() { NewRandom(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestAsCacheAdapter(t *testing.T) {
	c := AsCache(NewLRU(2))
	if c.Capacity() != 2 {
		t.Fatal("capacity")
	}
	if c.Access(1) {
		t.Fatal("cold hit")
	}
	if !c.Access(1) {
		t.Fatal("miss on cached block")
	}
	// RunPolicy over the adapter matches LRU.Run.
	tr := randomTrace(5, 2000, 100)
	a := RunPolicy(AsCache(NewLRU(64)), tr)
	b := NewLRU(64).Run(tr)
	if a != b {
		t.Fatalf("adapter misses %d vs direct %d", a, b)
	}
}

func BenchmarkClockAccess(b *testing.B) {
	tr := randomTrace(1, 1<<16, 10000)
	c := NewClock(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(tr[i&(1<<16-1)])
	}
}
