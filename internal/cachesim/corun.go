package cachesim

import (
	"context"
	"fmt"
	"sort"

	"partitionshare/internal/obs"
	"partitionshare/internal/trace"
)

// Observability names, package-prefixed dotted.snake per the obsname
// registry convention. The simulators pass their span constant through
// simSpan, so each name still appears exactly once.
const (
	spanShared          = "cachesim.shared"
	spanPartitioned     = "cachesim.partitioned"
	spanPartitionShared = "cachesim.partition_shared"

	mAccesses = "cachesim.accesses"
	mMisses   = "cachesim.misses"
)

// simSpan opens a root trace span for one simulation. The simulators
// take no context (they are pure CPU loops called from study helpers),
// so their spans are parentless — they still land on the caller
// goroutine's default lane and show where co-run simulation time goes.
func simSpan(name string) *obs.TraceSpan {
	_, ts := obs.StartTraceSpan(context.Background(), name, "sim") //vetkit:ignore(obsname): name is forwarded verbatim from the span constants above
	return ts
}

// countSim batches one simulation's volume into the registry: a single
// pair of atomic adds per simulated trace, never per access.
func countSim(accesses, misses int64) {
	if reg := obs.Enabled(); reg != nil {
		reg.Counter(mAccesses).Add(accesses)
		reg.Counter(mMisses).Add(misses)
	}
}

func sumCounts(accesses, misses []int64) (a, m int64) {
	for p := range accesses {
		a += accesses[p]
		m += misses[p]
	}
	return a, m
}

// CoRunResult reports a shared-cache co-run simulation.
type CoRunResult struct {
	// Accesses[p] and Misses[p] count program p's accesses and misses.
	Accesses []int64
	Misses   []int64
	// MeanOccupancy[p] is program p's average cache occupancy in blocks,
	// sampled every access after warmup — the empirical counterpart of
	// the natural cache partition (paper §V-A).
	MeanOccupancy []float64
}

// MissRatio returns program p's miss ratio.
func (r CoRunResult) MissRatio(p int) float64 {
	if r.Accesses[p] == 0 {
		return 0
	}
	return float64(r.Misses[p]) / float64(r.Accesses[p])
}

// GroupMissRatio returns total misses over total accesses.
func (r CoRunResult) GroupMissRatio() float64 {
	var m, a int64
	for p := range r.Misses {
		m += r.Misses[p]
		a += r.Accesses[p]
	}
	if a == 0 {
		return 0
	}
	return float64(m) / float64(a)
}

// SimulateShared runs an interleaved trace through one shared
// fully-associative LRU cache of the given capacity (in blocks), charging
// each access to its owning program. Occupancy is sampled on every access
// after the first warmup accesses. This is free-for-all sharing — the
// paper's "Natural" configuration measured directly.
func SimulateShared(iv trace.Interleaved, capacity, warmup int) CoRunResult {
	nprogs := len(iv.Counts)
	if nprogs == 0 {
		panic("cachesim: interleaved trace has no programs")
	}
	if warmup < 0 || warmup >= len(iv.Trace) {
		panic(fmt.Sprintf("cachesim: warmup %d out of range for trace of %d", warmup, len(iv.Trace)))
	}
	ts := simSpan(spanShared)
	defer ts.Arg("accesses", int64(len(iv.Trace))).End()
	res := CoRunResult{
		Accesses:      make([]int64, nprogs),
		Misses:        make([]int64, nprogs),
		MeanOccupancy: make([]float64, nprogs),
	}
	cache := NewLRU(capacity)
	occ := make([]int64, nprogs)    // current occupancy in blocks
	occSum := make([]int64, nprogs) // accumulated post-warmup samples
	samples := int64(0)
	owner := ownerResolver(iv.Bases)
	for i, d := range iv.Trace {
		p := int(iv.Owner[i])
		res.Accesses[p]++
		hit, ev, didEvict := cache.Access(d)
		if !hit {
			res.Misses[p]++
			occ[p]++
			if didEvict {
				occ[owner(ev)]--
			}
		}
		if i >= warmup {
			samples++
			for q := 0; q < nprogs; q++ {
				occSum[q] += occ[q]
			}
		}
	}
	if samples > 0 {
		for q := 0; q < nprogs; q++ {
			res.MeanOccupancy[q] = float64(occSum[q]) / float64(samples)
		}
	}
	countSim(sumCounts(res.Accesses, res.Misses))
	return res
}

// ownerResolver returns a function mapping a datum ID to the program that
// owns it, given the per-program base offsets assigned by the interleaver.
func ownerResolver(bases []uint32) func(uint32) int {
	sorted := make([]uint32, len(bases))
	copy(sorted, bases)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// bases from the interleaver are already ascending, but don't rely on it.
	return func(d uint32) int {
		i := sort.Search(len(sorted), func(i int) bool { return sorted[i] > d }) - 1
		base := sorted[i]
		for p, b := range bases {
			if b == base {
				return p
			}
		}
		panic(fmt.Sprintf("cachesim: datum %d has no owner", d))
	}
}

// PartitionResult reports a partitioned-cache simulation.
type PartitionResult struct {
	Accesses []int64
	Misses   []int64
}

// MissRatio returns program p's miss ratio.
func (r PartitionResult) MissRatio(p int) float64 {
	if r.Accesses[p] == 0 {
		return 0
	}
	return float64(r.Misses[p]) / float64(r.Accesses[p])
}

// GroupMissRatio returns total misses over total accesses.
func (r PartitionResult) GroupMissRatio() float64 {
	var m, a int64
	for p := range r.Misses {
		m += r.Misses[p]
		a += r.Accesses[p]
	}
	if a == 0 {
		return 0
	}
	return float64(m) / float64(a)
}

// SimulatePartitioned gives each program a private fully-associative LRU
// partition of capacities[p] blocks and runs its trace through it. With
// strict partitioning, co-run interleaving is irrelevant: each program
// behaves as in a solo run on a smaller cache.
func SimulatePartitioned(traces []trace.Trace, capacities []int) PartitionResult {
	if len(traces) != len(capacities) {
		panic(fmt.Sprintf("cachesim: %d traces but %d capacities", len(traces), len(capacities)))
	}
	ts := simSpan(spanPartitioned)
	defer ts.End()
	res := PartitionResult{
		Accesses: make([]int64, len(traces)),
		Misses:   make([]int64, len(traces)),
	}
	for p, tr := range traces {
		cache := NewLRU(capacities[p])
		res.Accesses[p] = int64(len(tr))
		res.Misses[p] = cache.Run(tr)
	}
	countSim(sumCounts(res.Accesses, res.Misses))
	return res
}

// SimulatePartitionShared runs a partition-sharing configuration: groups[g]
// lists the programs sharing partition g, which has capacities[g] blocks.
// Programs within a group access their shared partition in the interleaved
// order given by iv, restricted to that group's members; programs are
// identified by their index in iv. Every program must appear in exactly one
// group. This directly evaluates arbitrary partition-sharing schemes
// (paper §II, scenario 2).
func SimulatePartitionShared(iv trace.Interleaved, groups [][]int, capacities []int) CoRunResult {
	nprogs := len(iv.Counts)
	if len(groups) != len(capacities) {
		panic(fmt.Sprintf("cachesim: %d groups but %d capacities", len(groups), len(capacities)))
	}
	groupOf := make([]int, nprogs)
	for p := range groupOf {
		groupOf[p] = -1
	}
	for g, members := range groups {
		for _, p := range members {
			if p < 0 || p >= nprogs {
				panic(fmt.Sprintf("cachesim: group %d has invalid program %d", g, p))
			}
			if groupOf[p] != -1 {
				panic(fmt.Sprintf("cachesim: program %d in multiple groups", p))
			}
			groupOf[p] = g
		}
	}
	for p, g := range groupOf {
		if g == -1 {
			panic(fmt.Sprintf("cachesim: program %d not in any group", p))
		}
	}
	ts := simSpan(spanPartitionShared)
	defer ts.Arg("accesses", int64(len(iv.Trace))).End()
	res := CoRunResult{
		Accesses:      make([]int64, nprogs),
		Misses:        make([]int64, nprogs),
		MeanOccupancy: make([]float64, nprogs),
	}
	caches := make([]*LRU, len(groups))
	for g := range caches {
		caches[g] = NewLRU(capacities[g])
	}
	for i, d := range iv.Trace {
		p := int(iv.Owner[i])
		res.Accesses[p]++
		if hit, _, _ := caches[groupOf[p]].Access(d); !hit {
			res.Misses[p]++
		}
	}
	countSim(sumCounts(res.Accesses, res.Misses))
	return res
}
