// Package cachesim simulates caches at block granularity. It is the
// ground-truth substrate for validating the HOTL predictions and the
// natural-partition assumption (paper §VII-C): the paper validates against
// hardware counters on real machines; here a fully-associative LRU
// simulator plays that role, which is exactly the cache model the HOTL
// theory targets. A set-associative variant quantifies the associativity
// gap the paper discusses in §VIII.
package cachesim

import (
	"fmt"

	"partitionshare/internal/trace"
)

// LRU is a fully-associative LRU cache over abstract block IDs. The zero
// value is not usable; construct with NewLRU.
type LRU struct {
	capacity int
	index    map[uint32]int32
	nodes    []node // nodes[0] is the sentinel; list is circular
	free     []int32
}

type node struct {
	key        uint32
	prev, next int32
}

// NewLRU returns an empty LRU cache holding up to capacity blocks.
// Capacity 0 is legal: every access misses.
func NewLRU(capacity int) *LRU {
	if capacity < 0 {
		panic(fmt.Sprintf("cachesim: negative capacity %d", capacity))
	}
	c := &LRU{
		capacity: capacity,
		index:    make(map[uint32]int32, capacity+1),
		nodes:    make([]node, 1, capacity+1),
	}
	c.nodes[0] = node{prev: 0, next: 0} // sentinel: empty circular list
	return c
}

// Capacity returns the cache capacity in blocks.
func (c *LRU) Capacity() int { return c.capacity }

// Len returns the number of blocks currently cached.
func (c *LRU) Len() int { return len(c.index) }

// Access touches block d, returning true on a hit. On a miss the block is
// inserted, evicting the least recently used block if the cache is full;
// evicted reports what was evicted.
func (c *LRU) Access(d uint32) (hit bool, evicted uint32, didEvict bool) {
	if i, ok := c.index[d]; ok {
		c.unlink(i)
		c.pushFront(i)
		return true, 0, false
	}
	if c.capacity == 0 {
		return false, 0, false
	}
	if len(c.index) >= c.capacity {
		// Evict from the back (LRU end).
		victim := c.nodes[0].prev
		evicted = c.nodes[victim].key
		didEvict = true
		c.unlink(victim)
		delete(c.index, evicted)
		c.free = append(c.free, victim)
	}
	var i int32
	if n := len(c.free); n > 0 {
		i = c.free[n-1]
		c.free = c.free[:n-1]
		c.nodes[i].key = d
	} else {
		c.nodes = append(c.nodes, node{key: d})
		i = int32(len(c.nodes) - 1)
	}
	c.index[d] = i
	c.pushFront(i)
	return false, evicted, didEvict
}

// Contains reports whether block d is cached, without touching recency.
func (c *LRU) Contains(d uint32) bool {
	_, ok := c.index[d]
	return ok
}

func (c *LRU) unlink(i int32) {
	p, n := c.nodes[i].prev, c.nodes[i].next
	c.nodes[p].next = n
	c.nodes[n].prev = p
}

func (c *LRU) pushFront(i int32) {
	first := c.nodes[0].next
	c.nodes[i].prev = 0
	c.nodes[i].next = first
	c.nodes[first].prev = i
	c.nodes[0].next = i
}

// Resize changes the cache capacity in place. Shrinking evicts the least
// recently used blocks immediately (the hardware way-repartitioning
// model); growing keeps current contents. It returns the evicted blocks,
// in eviction (LRU-first) order.
func (c *LRU) Resize(capacity int) (evicted []uint32) {
	if capacity < 0 {
		panic(fmt.Sprintf("cachesim: negative capacity %d", capacity))
	}
	c.capacity = capacity
	for len(c.index) > capacity {
		victim := c.nodes[0].prev
		key := c.nodes[victim].key
		c.unlink(victim)
		delete(c.index, key)
		c.free = append(c.free, victim)
		evicted = append(evicted, key)
	}
	return evicted
}

// Run feeds a whole trace through the cache and returns the miss count.
func (c *LRU) Run(t trace.Trace) (misses int64) {
	for _, d := range t {
		if hit, _, _ := c.Access(d); !hit {
			misses++
		}
	}
	return misses
}

// SetAssoc is a set-associative LRU cache: sets × ways blocks total, with
// block d mapping to set d mod sets.
type SetAssoc struct {
	sets []LRUSlice
	ways int
}

// LRUSlice is a small fixed-capacity LRU list used as one cache set. Linear
// scan is fine for realistic associativities (4–32 ways).
type LRUSlice struct {
	blocks []uint32 // MRU first
}

// NewSetAssoc returns a set-associative cache with the given geometry.
func NewSetAssoc(sets, ways int) *SetAssoc {
	if sets <= 0 || ways <= 0 {
		panic(fmt.Sprintf("cachesim: invalid geometry sets=%d ways=%d", sets, ways))
	}
	return &SetAssoc{sets: make([]LRUSlice, sets), ways: ways}
}

// Capacity returns total blocks.
func (c *SetAssoc) Capacity() int { return len(c.sets) * c.ways }

// Access touches block d, returning true on a hit.
func (c *SetAssoc) Access(d uint32) bool {
	s := &c.sets[d%uint32(len(c.sets))]
	for i, b := range s.blocks {
		if b == d {
			copy(s.blocks[1:i+1], s.blocks[:i])
			s.blocks[0] = d
			return true
		}
	}
	if len(s.blocks) < c.ways {
		s.blocks = append(s.blocks, 0)
	}
	copy(s.blocks[1:], s.blocks)
	s.blocks[0] = d
	return false
}

// Run feeds a whole trace through the cache and returns the miss count.
func (c *SetAssoc) Run(t trace.Trace) (misses int64) {
	for _, d := range t {
		if !c.Access(d) {
			misses++
		}
	}
	return misses
}
