package cachesim

import (
	"math"
	"testing"

	"partitionshare/internal/trace"
)

func TestWayPartitionedBasics(t *testing.T) {
	// 2 sets, quotas [2, 1]: program 0 holds up to 4 blocks, program 1
	// up to 2.
	w := NewWayPartitioned(2, []int{2, 1})
	if w.Capacity() != 6 {
		t.Fatalf("capacity %d, want 6", w.Capacity())
	}
	if w.Access(0, 1) {
		t.Fatal("cold hit")
	}
	if !w.Access(0, 1) {
		t.Fatal("re-access missed")
	}
	// Program 1's insertions cannot evict program 0's blocks.
	for d := uint32(100); d < 120; d += 2 { // even IDs -> set 0
		w.Access(1, d)
	}
	if !w.Access(0, 1) {
		t.Fatal("program 1 evicted program 0's block across the way boundary")
	}
}

func TestWayPartitionedZeroQuota(t *testing.T) {
	w := NewWayPartitioned(4, []int{0, 4})
	for i := 0; i < 3; i++ {
		if w.Access(0, 7) {
			t.Fatal("zero-quota program hit its own insertion")
		}
	}
}

func TestSetPartitionedBasics(t *testing.T) {
	sp := NewSetPartitioned(2, []int{2, 2})
	if sp.Capacity() != 8 {
		t.Fatalf("capacity %d, want 8", sp.Capacity())
	}
	if sp.Access(0, 5) {
		t.Fatal("cold hit")
	}
	if !sp.Access(0, 5) {
		t.Fatal("re-access missed")
	}
	// Different programs' identical block IDs live in disjoint sets.
	if sp.Access(1, 5) {
		t.Fatal("program 1 hit program 0's block")
	}
}

func TestMechanismPanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewWayPartitioned(0, []int{1}) },
		func() { NewWayPartitioned(2, nil) },
		func() { NewWayPartitioned(2, []int{-1}) },
		func() { NewWayPartitioned(2, []int{1}).Access(5, 1) },
		func() { NewSetPartitioned(0, []int{1}) },
		func() { NewSetPartitioned(2, nil) },
		func() { NewSetPartitioned(2, []int{-1}) },
		func() { NewSetPartitioned(2, []int{1}).Access(5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// The mechanism study: on random traces all three mechanisms deliver
// nearly the same miss ratio (conflicts are rare at 16 ways / many sets),
// so the paper's abstract capacity units are implementable.
func TestMechanismsCloseOnRandomTraces(t *testing.T) {
	traces := []trace.Trace{
		randomTrace(3, 40000, 3000),
		randomTrace(4, 40000, 1500),
	}
	// 1024 and 2048 blocks; 64 sets, 16 ways each where divisible.
	res, err := ComparePartitionMechanisms(traces, []int{1024, 2048}, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	for p := range traces {
		if math.Abs(res.Way[p]-res.Ideal[p]) > 0.03 {
			t.Errorf("program %d: way-partitioned %v far from ideal %v", p, res.Way[p], res.Ideal[p])
		}
		if math.Abs(res.Set[p]-res.Ideal[p]) > 0.03 {
			t.Errorf("program %d: set-partitioned %v far from ideal %v", p, res.Set[p], res.Ideal[p])
		}
	}
}

// Page coloring with low associativity suffers conflict misses that way
// partitioning avoids on a sequential (sawtooth) workload at tight
// capacity — the known mechanism asymmetry.
func TestMechanismConflictAsymmetry(t *testing.T) {
	tr := trace.Generate(trace.NewSawtooth(1000), 40000)
	res, err := ComparePartitionMechanisms([]trace.Trace{tr}, []int{1024}, 128, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Ideal fits the sweep almost entirely; both mechanisms are within a
	// few percent for sequential IDs, but must stay ordered sensibly.
	if res.Ideal[0] > 0.05 {
		t.Fatalf("ideal mr %v, want small (sweep nearly fits)", res.Ideal[0])
	}
	if res.Way[0] < res.Ideal[0]-1e-9 || res.Set[0] < res.Ideal[0]-1e-9 {
		t.Errorf("mechanisms cannot beat ideal: way %v set %v ideal %v", res.Way[0], res.Set[0], res.Ideal[0])
	}
}

func TestCompareMechanismsErrors(t *testing.T) {
	tr := trace.Generate(trace.NewLoop(10, 1), 100)
	if _, err := ComparePartitionMechanisms([]trace.Trace{tr}, []int{100, 200}, 4, 4); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := ComparePartitionMechanisms([]trace.Trace{tr}, []int{100}, 0, 4); err == nil {
		t.Error("bad geometry should error")
	}
	if _, err := ComparePartitionMechanisms([]trace.Trace{tr}, []int{100}, 3, 4); err == nil {
		t.Error("non-divisible allocation should error")
	}
	if _, err := ComparePartitionMechanisms([]trace.Trace{{}}, []int{16}, 4, 4); err == nil {
		t.Error("empty trace should error")
	}
}
