package cachesim

import (
	"fmt"

	"partitionshare/internal/trace"
)

// The paper allocates abstract capacity units; real hardware implements
// partitions with one of two mechanisms:
//
//   - way partitioning (e.g. Intel CAT): all programs index the same
//     sets, but each may only replace within its quota of ways;
//   - set partitioning (page coloring): each program is confined to a
//     disjoint subset of sets and uses all ways there.
//
// Both deliver the intended capacity with different conflict behaviour.
// These simulators measure the mechanism gap against the ideal
// (fully-associative) capacity partitioning the optimizer assumes.

// WayPartitioned is a set-associative cache whose ways are statically
// divided among programs: program p may hit on any block in its sets but
// only inserts into (and evicts from) its own way quota.
type WayPartitioned struct {
	sets   int
	quotas []int
	// per set, per program: an LRU list of that program's blocks in the
	// set, capped at its quota.
	lists [][][]uint32
	index map[uint32]struct{ set, prog int }
}

// NewWayPartitioned builds a way-partitioned cache with the given set
// count and per-program way quotas. Total ways = sum of quotas.
func NewWayPartitioned(sets int, quotas []int) *WayPartitioned {
	if sets <= 0 {
		panic(fmt.Sprintf("cachesim: invalid set count %d", sets))
	}
	if len(quotas) == 0 {
		panic("cachesim: need at least one program quota")
	}
	for p, q := range quotas {
		if q < 0 {
			panic(fmt.Sprintf("cachesim: negative quota %d for program %d", q, p))
		}
	}
	w := &WayPartitioned{
		sets:   sets,
		quotas: append([]int(nil), quotas...),
		lists:  make([][][]uint32, sets),
		index:  make(map[uint32]struct{ set, prog int }),
	}
	for s := range w.lists {
		w.lists[s] = make([][]uint32, len(quotas))
	}
	return w
}

// Capacity returns total blocks (sets × total ways).
func (w *WayPartitioned) Capacity() int {
	total := 0
	for _, q := range w.quotas {
		total += q
	}
	return w.sets * total
}

// Access touches block d on behalf of program p, returning true on a hit.
// Blocks are owned by the inserting program; block IDs must be globally
// unique across programs (offset each program's data space as
// ComparePartitionMechanisms does), or programs will alias each other's
// blocks.
func (w *WayPartitioned) Access(p int, d uint32) bool {
	if p < 0 || p >= len(w.quotas) {
		panic(fmt.Sprintf("cachesim: invalid program %d", p))
	}
	if loc, ok := w.index[d]; ok {
		// Move to MRU within its owner's list.
		list := w.lists[loc.set][loc.prog]
		for i, b := range list {
			if b == d {
				copy(list[1:i+1], list[:i])
				list[0] = d
				break
			}
		}
		return true
	}
	if w.quotas[p] == 0 {
		return false
	}
	s := int(d) % w.sets
	list := w.lists[s][p]
	if len(list) >= w.quotas[p] {
		victim := list[len(list)-1]
		delete(w.index, victim)
		list = list[:len(list)-1]
	}
	list = append(list, 0)
	copy(list[1:], list)
	list[0] = d
	w.lists[s][p] = list
	w.index[d] = struct{ set, prog int }{s, p}
	return false
}

// SetPartitioned is a page-coloring cache: the sets are divided into
// contiguous disjoint ranges, one per program, and each program has the
// full associativity within its range.
type SetPartitioned struct {
	ways   int
	ranges []struct{ start, count int }
	sets   []LRUSlice
}

// NewSetPartitioned builds a set-partitioned (page-colored) cache with
// the given associativity and per-program set counts.
func NewSetPartitioned(ways int, setCounts []int) *SetPartitioned {
	if ways <= 0 {
		panic(fmt.Sprintf("cachesim: invalid ways %d", ways))
	}
	if len(setCounts) == 0 {
		panic("cachesim: need at least one program")
	}
	sp := &SetPartitioned{ways: ways}
	total := 0
	for p, c := range setCounts {
		if c < 0 {
			panic(fmt.Sprintf("cachesim: negative set count %d for program %d", c, p))
		}
		sp.ranges = append(sp.ranges, struct{ start, count int }{total, c})
		total += c
	}
	sp.sets = make([]LRUSlice, total)
	return sp
}

// Capacity returns total blocks.
func (sp *SetPartitioned) Capacity() int { return len(sp.sets) * sp.ways }

// Access touches block d on behalf of program p.
func (sp *SetPartitioned) Access(p int, d uint32) bool {
	if p < 0 || p >= len(sp.ranges) {
		panic(fmt.Sprintf("cachesim: invalid program %d", p))
	}
	r := sp.ranges[p]
	if r.count == 0 {
		return false
	}
	s := &sp.sets[r.start+int(d)%r.count]
	for i, b := range s.blocks {
		if b == d {
			copy(s.blocks[1:i+1], s.blocks[:i])
			s.blocks[0] = d
			return true
		}
	}
	if len(s.blocks) < sp.ways {
		s.blocks = append(s.blocks, 0)
	}
	copy(s.blocks[1:], s.blocks)
	s.blocks[0] = d
	return false
}

// MechanismResult compares partitioning mechanisms on the same workload
// and allocation.
type MechanismResult struct {
	// Ideal, Way, Set are per-program miss ratios under ideal
	// (fully-associative) capacity partitioning, way partitioning, and
	// set partitioning (page coloring).
	Ideal, Way, Set []float64
}

// ComparePartitionMechanisms runs each program's trace through the three
// mechanisms with equivalent capacity: program p gets blocks[p] blocks —
// as a private fully-associative LRU (ideal), as blocks[p]/sets ways of a
// sets-set shared cache (way partitioning), and as blocks[p]/ways sets of
// an assoc-way cache (page coloring). blocks[p] must be divisible by both
// sets and ways.
func ComparePartitionMechanisms(traces []trace.Trace, blocks []int, sets, ways int) (MechanismResult, error) {
	if len(traces) != len(blocks) {
		return MechanismResult{}, fmt.Errorf("cachesim: %d traces but %d allocations", len(traces), len(blocks))
	}
	if sets <= 0 || ways <= 0 {
		return MechanismResult{}, fmt.Errorf("cachesim: invalid geometry sets=%d ways=%d", sets, ways)
	}
	quotas := make([]int, len(blocks))
	setCounts := make([]int, len(blocks))
	for p, b := range blocks {
		if b%sets != 0 || b%ways != 0 {
			return MechanismResult{}, fmt.Errorf("cachesim: allocation %d not divisible by sets %d and ways %d", b, sets, ways)
		}
		quotas[p] = b / sets
		setCounts[p] = b / ways
	}
	res := MechanismResult{
		Ideal: make([]float64, len(traces)),
		Way:   make([]float64, len(traces)),
		Set:   make([]float64, len(traces)),
	}
	way := NewWayPartitioned(sets, quotas)
	set := NewSetPartitioned(ways, setCounts)
	// Programs do not share data: give each a disjoint block-ID range so
	// identical raw IDs cannot alias across programs in the shared-set
	// way-partitioned cache. The offset is a multiple of the set count,
	// preserving each block's set index.
	var base uint32
	for p, tr := range traces {
		if len(tr) == 0 {
			return MechanismResult{}, fmt.Errorf("cachesim: program %d has an empty trace", p)
		}
		var maxID uint32
		for _, d := range tr {
			if d > maxID {
				maxID = d
			}
		}
		n := float64(len(tr))
		res.Ideal[p] = float64(NewLRU(blocks[p]).Run(tr)) / n
		var wm, sm int64
		for _, d := range tr {
			if !way.Access(p, base+d) {
				wm++
			}
			if !set.Access(p, d) { // set ranges are disjoint already
				sm++
			}
		}
		res.Way[p] = float64(wm) / n
		res.Set[p] = float64(sm) / n
		base += (maxID/uint32(sets) + 2) * uint32(sets)
	}
	return res, nil
}
