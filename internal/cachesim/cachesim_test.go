package cachesim

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"partitionshare/internal/reuse"
	"partitionshare/internal/trace"
)

func randomTrace(seed uint64, n, pool int) trace.Trace {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	t := make(trace.Trace, n)
	for i := range t {
		t[i] = uint32(rng.IntN(pool))
	}
	return t
}

func TestLRUBasicEviction(t *testing.T) {
	c := NewLRU(2)
	hit, _, _ := c.Access(1)
	if hit {
		t.Fatal("first access should miss")
	}
	c.Access(2)
	if hit, _, _ := c.Access(1); !hit {
		t.Fatal("1 should still be cached")
	}
	// Cache: [1 MRU, 2 LRU]; inserting 3 evicts 2.
	_, ev, did := c.Access(3)
	if !did || ev != 2 {
		t.Fatalf("evicted %v (did=%v), want 2", ev, did)
	}
	if c.Contains(2) {
		t.Fatal("2 should be evicted")
	}
	if !c.Contains(1) || !c.Contains(3) {
		t.Fatal("1 and 3 should be cached")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestLRUZeroCapacity(t *testing.T) {
	c := NewLRU(0)
	for i := uint32(0); i < 10; i++ {
		if hit, _, did := c.Access(i % 2); hit || did {
			t.Fatal("zero-capacity cache must always miss and never evict")
		}
	}
	if c.Len() != 0 {
		t.Fatal("zero-capacity cache must stay empty")
	}
}

func TestLRUNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLRU(-1)
}

// The simulator must agree exactly with the stack-distance oracle: an
// access hits iff its stack distance is <= capacity.
func TestLRUMatchesStackDistanceOracle(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		tr := randomTrace(seed, 500, 40)
		dists := reuse.StackDistances(tr)
		for _, capacity := range []int{1, 3, 7, 20, 40} {
			c := NewLRU(capacity)
			for i, d := range tr {
				hit, _, _ := c.Access(d)
				wantHit := dists[i] != reuse.ColdMiss && dists[i] <= int64(capacity)
				if hit != wantHit {
					t.Fatalf("seed %d cap %d access %d: hit=%v, oracle=%v", seed, capacity, i, hit, wantHit)
				}
			}
		}
	}
}

func TestLRURunMissCount(t *testing.T) {
	// Loop over 5 blocks, cache of 5: only 5 cold misses.
	tr := trace.Generate(trace.NewLoop(5, 1), 100)
	if got := NewLRU(5).Run(tr); got != 5 {
		t.Errorf("misses = %d, want 5", got)
	}
	// Cache of 4: everything misses.
	if got := NewLRU(4).Run(tr); got != 100 {
		t.Errorf("misses = %d, want 100", got)
	}
}

func TestSetAssocDegeneratesToFullyAssoc(t *testing.T) {
	f := func(seed uint64) bool {
		tr := randomTrace(seed, 400, 30)
		sa := NewSetAssoc(1, 16)
		fa := NewLRU(16)
		return sa.Run(tr) == fa.Run(tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSetAssocConflictMisses(t *testing.T) {
	// Two blocks mapping to the same set of a 2-set, 1-way cache conflict.
	c := NewSetAssoc(2, 1)
	if c.Capacity() != 2 {
		t.Fatalf("capacity = %d, want 2", c.Capacity())
	}
	// 0 and 2 both map to set 0.
	c.Access(0)
	c.Access(2)
	if c.Access(0) {
		t.Fatal("0 should have been evicted by the conflicting 2")
	}
	// 1 maps to set 1 and stays resident.
	c.Access(1)
	if !c.Access(1) {
		t.Fatal("1 should hit")
	}
}

func TestSetAssocPanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewSetAssoc(0, 4) },
		func() { NewSetAssoc(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestSimulateSharedCountsAndOccupancy(t *testing.T) {
	// Two identical random programs sharing a cache: by symmetry each
	// should occupy about half.
	a := randomTrace(1, 4000, 300)
	b := randomTrace(2, 4000, 300).Offset(0) // interleaver re-bases anyway
	iv := trace.InterleaveProportional([]trace.Trace{a, b}, []float64{1, 1}, 8000)
	res := SimulateShared(iv, 200, 2000)
	if res.Accesses[0] != 4000 || res.Accesses[1] != 4000 {
		t.Fatalf("accesses = %v", res.Accesses)
	}
	total := res.MeanOccupancy[0] + res.MeanOccupancy[1]
	if math.Abs(total-200) > 1 {
		t.Errorf("total occupancy = %v, want ~200 (cache full)", total)
	}
	ratio := res.MeanOccupancy[0] / total
	if ratio < 0.45 || ratio > 0.55 {
		t.Errorf("occupancy split = %v, want ~0.5", ratio)
	}
	if res.GroupMissRatio() <= 0 || res.GroupMissRatio() > 1 {
		t.Errorf("group miss ratio = %v", res.GroupMissRatio())
	}
}

func TestSimulateSharedStreamingPollutes(t *testing.T) {
	// A streaming program co-run with a loop that would fit the whole
	// cache alone: sharing lets streaming evict the loop's blocks.
	loop := trace.Generate(trace.NewLoop(80, 1), 4000)
	stream := trace.Generate(trace.NewStreaming(1), 4000)
	iv := trace.InterleaveProportional([]trace.Trace{loop, stream}, []float64{1, 1}, 8000)
	shared := SimulateShared(iv, 100, 1000)
	// Solo, the loop program would have only cold misses in 100 blocks.
	solo := NewLRU(100).Run(loop)
	if shared.Misses[0] <= solo*2 {
		t.Errorf("sharing should hurt the loop program: shared %d vs solo %d", shared.Misses[0], solo)
	}
}

func TestSimulateSharedPanics(t *testing.T) {
	a := trace.Generate(trace.NewLoop(4, 1), 10)
	iv := trace.InterleaveProportional([]trace.Trace{a}, []float64{1}, 10)
	for i, f := range []func(){
		func() { SimulateShared(trace.Interleaved{}, 10, 0) },
		func() { SimulateShared(iv, 10, -1) },
		func() { SimulateShared(iv, 10, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestSimulatePartitioned(t *testing.T) {
	loop := trace.Generate(trace.NewLoop(50, 1), 1000)
	stream := trace.Generate(trace.NewStreaming(1), 1000)
	res := SimulatePartitioned([]trace.Trace{loop, stream}, []int{50, 50})
	if res.Misses[0] != 50 {
		t.Errorf("loop in fitting partition: %d misses, want 50 cold", res.Misses[0])
	}
	if res.Misses[1] != 1000 {
		t.Errorf("streaming: %d misses, want 1000", res.Misses[1])
	}
	if got := res.MissRatio(1); got != 1.0 {
		t.Errorf("streaming miss ratio = %v, want 1", got)
	}
	want := float64(1050) / 2000
	if got := res.GroupMissRatio(); math.Abs(got-want) > 1e-12 {
		t.Errorf("group miss ratio = %v, want %v", got, want)
	}
}

func TestSimulatePartitionedPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SimulatePartitioned([]trace.Trace{{0}}, []int{1, 2})
}

func TestPartitionSharedSingletonsEqualPartitioned(t *testing.T) {
	a := randomTrace(5, 2000, 100)
	b := randomTrace(6, 2000, 150)
	iv := trace.InterleaveProportional([]trace.Trace{a, b}, []float64{1, 1}, 4000)
	ps := SimulatePartitionShared(iv, [][]int{{0}, {1}}, []int{60, 80})
	// Interleaving is irrelevant under strict partitioning, but the
	// per-program streams are cycled by the interleaver; compare against
	// partitioned simulation of the same cycled streams.
	var sa, sb trace.Trace
	for i, d := range iv.Trace {
		if iv.Owner[i] == 0 {
			sa = append(sa, d)
		} else {
			sb = append(sb, d)
		}
	}
	part := SimulatePartitioned([]trace.Trace{sa, sb}, []int{60, 80})
	for p := 0; p < 2; p++ {
		if ps.Misses[p] != part.Misses[p] {
			t.Errorf("program %d: partition-shared %d vs partitioned %d misses", p, ps.Misses[p], part.Misses[p])
		}
	}
}

func TestPartitionSharedOneGroupEqualsShared(t *testing.T) {
	a := randomTrace(7, 2000, 120)
	b := randomTrace(8, 2000, 120)
	iv := trace.InterleaveProportional([]trace.Trace{a, b}, []float64{1, 2}, 4000)
	ps := SimulatePartitionShared(iv, [][]int{{0, 1}}, []int{100})
	sh := SimulateShared(iv, 100, 100)
	for p := 0; p < 2; p++ {
		if ps.Misses[p] != sh.Misses[p] {
			t.Errorf("program %d: partition-shared %d vs shared %d misses", p, ps.Misses[p], sh.Misses[p])
		}
	}
}

func TestPartitionSharedPanics(t *testing.T) {
	a := trace.Generate(trace.NewLoop(4, 1), 10)
	b := trace.Generate(trace.NewLoop(4, 1), 10)
	iv := trace.InterleaveProportional([]trace.Trace{a, b}, []float64{1, 1}, 20)
	for i, f := range []func(){
		func() { SimulatePartitionShared(iv, [][]int{{0, 1}}, []int{10, 20}) },     // count mismatch
		func() { SimulatePartitionShared(iv, [][]int{{0}}, []int{10}) },            // program 1 unassigned
		func() { SimulatePartitionShared(iv, [][]int{{0, 1}, {1}}, []int{10, 5}) }, // duplicated
		func() { SimulatePartitionShared(iv, [][]int{{0, 7}}, []int{10}) },         // invalid index
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func BenchmarkLRUAccess(b *testing.B) {
	tr := randomTrace(1, 1<<16, 10000)
	c := NewLRU(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(tr[i&(1<<16-1)])
	}
}

func BenchmarkSetAssocAccess(b *testing.B) {
	tr := randomTrace(1, 1<<16, 10000)
	c := NewSetAssoc(256, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(tr[i&(1<<16-1)])
	}
}

func TestLRUResize(t *testing.T) {
	c := NewLRU(4)
	for d := uint32(1); d <= 4; d++ {
		c.Access(d)
	}
	// Shrink to 2: evicts LRU blocks 1 and 2, in that order.
	ev := c.Resize(2)
	if len(ev) != 2 || ev[0] != 1 || ev[1] != 2 {
		t.Fatalf("evicted %v, want [1 2]", ev)
	}
	if c.Len() != 2 || !c.Contains(3) || !c.Contains(4) {
		t.Fatal("shrink kept the wrong blocks")
	}
	// Grow back: contents stay, capacity rises.
	if ev := c.Resize(5); len(ev) != 0 {
		t.Fatalf("grow evicted %v", ev)
	}
	if c.Capacity() != 5 || c.Len() != 2 {
		t.Fatal("grow wrong")
	}
	// The cache still behaves correctly after resizing.
	c.Access(7)
	c.Access(8)
	c.Access(9)
	if c.Len() != 5 {
		t.Fatalf("Len = %d, want 5", c.Len())
	}
	if hit, _, _ := c.Access(3); !hit {
		t.Fatal("3 should still be resident")
	}
}

func TestLRUResizeToZero(t *testing.T) {
	c := NewLRU(3)
	c.Access(1)
	c.Access(2)
	ev := c.Resize(0)
	if len(ev) != 2 || c.Len() != 0 {
		t.Fatalf("resize to zero: evicted %v, len %d", ev, c.Len())
	}
	if hit, _, _ := c.Access(1); hit {
		t.Fatal("zero-capacity cache hit")
	}
}

func TestLRUResizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLRU(2).Resize(-1)
}
