package cachesim

import (
	"fmt"
	"math/rand/v2"
)

// Cache is the common interface of the replacement-policy simulators.
type Cache interface {
	// Access touches block d and reports whether it hit.
	Access(d uint32) bool
	// Capacity returns the cache size in blocks.
	Capacity() int
}

// lruAdapter exposes *LRU through the Cache interface.
type lruAdapter struct{ c *LRU }

func (a lruAdapter) Access(d uint32) bool {
	hit, _, _ := a.c.Access(d)
	return hit
}
func (a lruAdapter) Capacity() int { return a.c.Capacity() }

// AsCache wraps an *LRU in the policy-neutral Cache interface.
func AsCache(c *LRU) Cache { return lruAdapter{c} }

// Clock is a CLOCK (second-chance) cache: an approximation of LRU used by
// real hardware and OS page caches. The paper's HOTL results assume exact
// LRU (§VIII: "the replacement policy may be an approximation or
// improvement of LRU"); Clock quantifies how much that approximation
// moves the miss ratio.
type Clock struct {
	capacity int
	index    map[uint32]int
	blocks   []uint32
	ref      []bool
	hand     int
}

// NewClock returns an empty CLOCK cache holding up to capacity blocks.
func NewClock(capacity int) *Clock {
	if capacity < 0 {
		panic(fmt.Sprintf("cachesim: negative capacity %d", capacity))
	}
	return &Clock{
		capacity: capacity,
		index:    make(map[uint32]int, capacity+1),
	}
}

// Capacity implements Cache.
func (c *Clock) Capacity() int { return c.capacity }

// Access implements Cache.
func (c *Clock) Access(d uint32) bool {
	if i, ok := c.index[d]; ok {
		c.ref[i] = true
		return true
	}
	if c.capacity == 0 {
		return false
	}
	if len(c.blocks) < c.capacity {
		c.index[d] = len(c.blocks)
		c.blocks = append(c.blocks, d)
		c.ref = append(c.ref, true)
		return false
	}
	// Advance the hand, clearing reference bits, until an unreferenced
	// victim is found.
	for c.ref[c.hand] {
		c.ref[c.hand] = false
		c.hand = (c.hand + 1) % c.capacity
	}
	delete(c.index, c.blocks[c.hand])
	c.blocks[c.hand] = d
	c.ref[c.hand] = true
	c.index[d] = c.hand
	c.hand = (c.hand + 1) % c.capacity
	return false
}

// Random is a random-replacement cache. Unlike LRU it has no pathological
// thrash on cyclic working sets slightly larger than the cache: a loop of
// L > C blocks hits with probability ≈ C/L per access instead of never —
// the classic LRU-vs-random trade the working-set cliffs exercise.
type Random struct {
	capacity int
	index    map[uint32]int
	blocks   []uint32
	rng      *rand.Rand
}

// NewRandom returns an empty random-replacement cache, seeded
// deterministically.
func NewRandom(capacity int, seed uint64) *Random {
	if capacity < 0 {
		panic(fmt.Sprintf("cachesim: negative capacity %d", capacity))
	}
	return &Random{
		capacity: capacity,
		index:    make(map[uint32]int, capacity+1),
		rng:      rand.New(rand.NewPCG(seed, seed^0xa0761d6478bd642f)),
	}
}

// Capacity implements Cache.
func (r *Random) Capacity() int { return r.capacity }

// Access implements Cache.
func (r *Random) Access(d uint32) bool {
	if _, ok := r.index[d]; ok {
		return true
	}
	if r.capacity == 0 {
		return false
	}
	if len(r.blocks) < r.capacity {
		r.index[d] = len(r.blocks)
		r.blocks = append(r.blocks, d)
		return false
	}
	v := r.rng.IntN(r.capacity)
	delete(r.index, r.blocks[v])
	r.blocks[v] = d
	r.index[d] = v
	return false
}

// RunPolicy feeds a trace through any Cache and returns its miss count.
func RunPolicy(c Cache, t []uint32) (misses int64) {
	for _, d := range t {
		if !c.Access(d) {
			misses++
		}
	}
	return misses
}
