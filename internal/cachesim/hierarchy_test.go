package cachesim

import (
	"math"
	"testing"

	"partitionshare/internal/footprint"
	"partitionshare/internal/trace"
)

func TestHierarchyBasics(t *testing.T) {
	h := NewHierarchy(2, 8)
	if h.Levels() != 2 {
		t.Fatal("levels")
	}
	// First access misses everywhere.
	if lvl := h.Access(1); lvl != 2 {
		t.Fatalf("cold access hit level %d", lvl)
	}
	// Immediate re-access hits L1.
	if lvl := h.Access(1); lvl != 0 {
		t.Fatalf("hot access served by level %d", lvl)
	}
	// Push 1 out of the 2-block L1 but not out of L2.
	h.Access(2)
	h.Access(3)
	if lvl := h.Access(1); lvl != 1 {
		t.Fatalf("L1-evicted block served by level %d, want 1", lvl)
	}
}

func TestHierarchyPanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewHierarchy() },
		func() { NewHierarchy(8, 8) },  // not increasing
		func() { NewHierarchy(16, 8) }, // decreasing
		func() { NewHierarchy(0, 8) },  // empty level
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestHierarchyTrafficAccounting(t *testing.T) {
	tr := randomTrace(3, 20000, 600)
	h := NewHierarchy(64, 256, 1024)
	streams := h.Run(tr)
	if h.Accesses[0] != int64(len(tr)) {
		t.Fatalf("L1 accesses %d", h.Accesses[0])
	}
	// Level i+1's accesses equal level i's misses.
	for i := 0; i < 2; i++ {
		if h.Accesses[i+1] != h.Misses[i] {
			t.Fatalf("level %d misses %d != level %d accesses %d", i, h.Misses[i], i+1, h.Accesses[i+1])
		}
		if int64(len(streams[i])) != h.Misses[i] {
			t.Fatalf("stream %d length %d != misses %d", i, len(streams[i]), h.Misses[i])
		}
	}
	// Local miss ratios multiply into the global one.
	global := h.GlobalMissRatio(2)
	product := h.MissRatio(0) * h.MissRatio(1) * h.MissRatio(2)
	if math.Abs(global-product) > 1e-12 {
		t.Fatalf("global %v != product of locals %v", global, product)
	}
}

// Each level of the hierarchy must behave exactly like a solo LRU cache
// run on the stream the level above forwarded — the filtering semantics.
func TestHierarchyLevelsMatchSoloLRU(t *testing.T) {
	tr := randomTrace(7, 30000, 800)
	h := NewHierarchy(64, 512)
	streams := h.Run(tr)
	// L2 = solo LRU(512) over L1's miss stream.
	solo := NewLRU(512)
	soloMisses := solo.Run(streams[0])
	if soloMisses != h.Misses[1] {
		t.Fatalf("L2 misses %d vs solo replay %d", h.Misses[1], soloMisses)
	}
}

// The §VIII multi-level claim in miniature: profiling each level's input
// stream with HOTL predicts that level's miss ratio.
func TestHOTLPredictsEveryHierarchyLevel(t *testing.T) {
	tr := randomTrace(11, 60000, 1500)
	caps := []int{128, 512, 2048}
	h := NewHierarchy(caps[0], caps[1], caps[2])
	streams := h.Run(tr)
	input := tr
	for level := 0; level < 3; level++ {
		fp := footprint.FromTrace(input)
		pred := fp.MissRatio(float64(caps[level]))
		got := h.MissRatio(level)
		if math.Abs(pred-got) > 0.05 {
			t.Errorf("level %d: HOTL predicts %.4f, simulated %.4f", level, pred, got)
		}
		if level < 2 {
			input = streams[level]
		}
	}
}

func TestHierarchyLoopCliffPlacement(t *testing.T) {
	// A loop of 300 blocks thrashes a 100-block L1 but fits the 400-block
	// L2: L1 mr ~1, L2 mr ~0 after warmup.
	tr := trace.Generate(trace.NewLoop(300, 1), 30000)
	h := NewHierarchy(100, 400)
	h.Run(tr)
	if h.MissRatio(0) < 0.95 {
		t.Errorf("L1 mr %v, want ~1 (thrash)", h.MissRatio(0))
	}
	if h.MissRatio(1) > 0.02 {
		t.Errorf("L2 mr %v, want ~0 (loop fits)", h.MissRatio(1))
	}
}
