package cachesim

import (
	"fmt"

	"partitionshare/internal/trace"
)

// Hierarchy simulates a multi-level cache: each level is a
// fully-associative LRU cache that sees exactly the misses of the level
// above (a non-inclusive victim-less hierarchy). The paper's §VIII notes
// that the HOTL theory was validated "for all three levels of cache" on
// real machines; this simulator provides the same multi-level ground
// truth for the model, which predicts level i's miss ratio by profiling
// the (simulated or modelled) miss stream of level i−1.
type Hierarchy struct {
	levels []*LRU
	// Accesses[i] and Misses[i] count level i's traffic.
	Accesses []int64
	Misses   []int64
}

// NewHierarchy builds a hierarchy with the given per-level capacities in
// blocks, smallest (closest to the core) first. Capacities must be
// strictly increasing, as in real cache hierarchies.
func NewHierarchy(capacities ...int) *Hierarchy {
	if len(capacities) == 0 {
		panic("cachesim: hierarchy needs at least one level")
	}
	h := &Hierarchy{
		Accesses: make([]int64, len(capacities)),
		Misses:   make([]int64, len(capacities)),
	}
	prev := 0
	for i, c := range capacities {
		if c <= prev {
			panic(fmt.Sprintf("cachesim: level %d capacity %d not larger than level above (%d)", i, c, prev))
		}
		h.levels = append(h.levels, NewLRU(c))
		prev = c
	}
	return h
}

// Levels returns the number of cache levels.
func (h *Hierarchy) Levels() int { return len(h.levels) }

// Access sends one reference down the hierarchy, returning the level that
// hit (0-based) or Levels() for a memory access (global miss).
func (h *Hierarchy) Access(d uint32) int {
	for i, l := range h.levels {
		h.Accesses[i]++
		if hit, _, _ := l.Access(d); hit {
			return i
		}
		h.Misses[i]++
	}
	return len(h.levels)
}

// Run feeds a whole trace through the hierarchy and returns, for each
// level, the filtered miss stream it forwarded downward (the stream level
// i+1 saw). The last entry is the memory traffic.
func (h *Hierarchy) Run(t trace.Trace) []trace.Trace {
	streams := make([]trace.Trace, len(h.levels))
	for _, d := range t {
		level := h.Access(d)
		for i := 0; i < level && i < len(h.levels); i++ {
			streams[i] = append(streams[i], d)
		}
	}
	return streams
}

// MissRatio returns level i's local miss ratio: its misses over the
// accesses that reached it.
func (h *Hierarchy) MissRatio(i int) float64 {
	if h.Accesses[i] == 0 {
		return 0
	}
	return float64(h.Misses[i]) / float64(h.Accesses[i])
}

// GlobalMissRatio returns level i's misses over the total references fed
// to the hierarchy.
func (h *Hierarchy) GlobalMissRatio(i int) float64 {
	if h.Accesses[0] == 0 {
		return 0
	}
	return float64(h.Misses[i]) / float64(h.Accesses[0])
}
