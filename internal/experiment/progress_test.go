package experiment

import (
	"sort"
	"sync"
	"testing"
)

// progressRecorder collects OnProgress callbacks under a mutex — workers
// invoke the callback concurrently, so the recorder itself is what makes
// this test meaningful under -race.
type progressRecorder struct {
	mu     sync.Mutex
	values []int
	totals []int
}

func (r *progressRecorder) record(processed, total int) {
	r.mu.Lock()
	r.values = append(r.values, processed)
	r.totals = append(r.totals, total)
	r.mu.Unlock()
}

// checkCounts asserts the recorded processed values are exactly
// {from, from+1, ..., total}, each reported once: monotone coverage with
// no gap, no duplicate, and in particular no repeated final callback.
func (r *progressRecorder) checkCounts(t *testing.T, from, total int) {
	t.Helper()
	r.mu.Lock()
	values := append([]int(nil), r.values...)
	totals := append([]int(nil), r.totals...)
	r.mu.Unlock()
	for _, tot := range totals {
		if tot != total {
			t.Fatalf("OnProgress total = %d, want %d", tot, total)
		}
	}
	sort.Ints(values)
	want := make([]int, 0, total-from+1)
	for v := from; v <= total; v++ {
		want = append(want, v)
	}
	if len(values) != len(want) {
		t.Fatalf("OnProgress fired %d times with values %v, want %d values %v..%v",
			len(values), values, len(want), from, total)
	}
	for i, v := range values {
		if v != want[i] {
			t.Fatalf("OnProgress values (sorted) = %v, want exactly %d..%d each once", values, from, total)
		}
	}
}

// A fresh parallel sweep reports every count from 1 to the group total
// exactly once, with a constant total.
func TestOnProgressFullSweep(t *testing.T) {
	rec := &progressRecorder{}
	runFault(t, RunOpts{Workers: 4, OnProgress: rec.record})
	rec.checkCounts(t, 1, 20)
}

// A resumed sweep first reports the resumed count, then one callback per
// remaining group up to the total — never re-reporting resumed groups
// individually and never duplicating the final count.
func TestOnProgressResume(t *testing.T) {
	full := runFault(t, RunOpts{})

	// A checkpoint as a mid-sweep kill would leave it: half the groups
	// (every second one) already completed.
	partial := &Checkpoint{
		Version: CheckpointVersion, NumPrograms: 6, GroupSize: 3,
		Units: faultCfg.Units, BlocksPerUnit: faultCfg.BlocksPerUnit,
	}
	for g := 0; g < len(full.Groups); g += 2 {
		partial.Groups = append(partial.Groups, full.Groups[g])
	}
	resumed := len(partial.Groups)

	rec := &progressRecorder{}
	runFault(t, RunOpts{Workers: 4, Resume: partial, OnProgress: rec.record})
	rec.checkCounts(t, resumed, 20)

	// The first callback must be the resume summary, before any worker
	// reports — the consumer (a progress bar) renders it as the baseline.
	rec.mu.Lock()
	first := rec.values[0]
	rec.mu.Unlock()
	if first != resumed {
		t.Fatalf("first OnProgress value = %d, want resumed count %d", first, resumed)
	}
}

// Resuming from a complete checkpoint reports exactly one callback: the
// resume summary already at the total, with nothing dispatched after it.
func TestOnProgressResumeComplete(t *testing.T) {
	full := runFault(t, RunOpts{})
	complete := &Checkpoint{
		Version: CheckpointVersion, NumPrograms: 6, GroupSize: 3,
		Units: faultCfg.Units, BlocksPerUnit: faultCfg.BlocksPerUnit,
		Groups: full.Groups,
	}
	rec := &progressRecorder{}
	runFault(t, RunOpts{Resume: complete, OnProgress: rec.record})
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.values) != 1 || rec.values[0] != 20 {
		t.Fatalf("OnProgress calls = %v, want exactly one call at 20", rec.values)
	}
}
