package experiment

import (
	"fmt"
	"sort"
	"strings"

	"partitionshare/internal/stats"
)

// ImprovementRow is one row of Table I: how much Optimal improves on a
// baseline scheme across all groups.
type ImprovementRow struct {
	Baseline Scheme
	// Max, Avg, Median are relative improvements: (base − opt) / opt.
	Max, Avg, Median float64
	// AtLeast10, AtLeast20 are the fractions of groups improved by at
	// least 10% and 20%.
	AtLeast10, AtLeast20 float64
}

// TableI computes the paper's Table I from a run: the improvement of
// Optimal over the five other schemes.
func TableI(res Result) []ImprovementRow {
	order := []Scheme{Equal, EqualBaseline, Natural, NaturalBaseline, STTW}
	rows := make([]ImprovementRow, 0, len(order))
	for _, s := range order {
		imps := Improvements(res, s)
		sum := stats.Summarize(imps)
		rows = append(rows, ImprovementRow{
			Baseline:  s,
			Max:       sum.Max,
			Avg:       sum.Mean,
			Median:    sum.Median,
			AtLeast10: stats.FractionAtLeast(imps, 0.10),
			AtLeast20: stats.FractionAtLeast(imps, 0.20),
		})
	}
	return rows
}

// Improvements returns the per-group relative improvement of Optimal over
// the given scheme: (scheme − optimal) / optimal.
func Improvements(res Result, s Scheme) []float64 {
	out := make([]float64, len(res.Groups))
	for g, gr := range res.Groups {
		out[g] = stats.Improvement(gr.GroupMR[s], gr.GroupMR[Optimal])
	}
	return out
}

// FormatTableI renders Table I in the paper's layout.
func FormatTableI(rows []ImprovementRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %12s %10s %10s %8s %8s\n",
		"Methods", "Max", "Avg", "Median", ">=10%", ">=20%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %11.2f%% %9.2f%% %9.2f%% %7.2f%% %7.2f%%\n",
			r.Baseline, r.Max*100, r.Avg*100, r.Median*100, r.AtLeast10*100, r.AtLeast20*100)
	}
	return b.String()
}

// GroupSeries returns each scheme's group miss ratios with groups sorted
// by the Optimal scheme's miss ratio — the data behind Figures 6 and 7.
func GroupSeries(res Result, schemes []Scheme) map[Scheme][]float64 {
	order := make([]int, len(res.Groups))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return res.Groups[order[a]].GroupMR[Optimal] < res.Groups[order[b]].GroupMR[Optimal]
	})
	out := make(map[Scheme][]float64, len(schemes))
	for _, s := range schemes {
		series := make([]float64, len(order))
		for i, g := range order {
			series[i] = res.Groups[g].GroupMR[s]
		}
		out[s] = series
	}
	return out
}

// ProgramSeries returns, for one program, its per-group miss ratio under
// each scheme across all groups containing it, groups ordered as in the
// run — the data behind Figure 5.
func ProgramSeries(res Result, program int, schemes []Scheme) map[Scheme][]float64 {
	out := make(map[Scheme][]float64, len(schemes))
	for _, s := range schemes {
		var series []float64
		for _, gr := range res.Groups {
			for i, m := range gr.Members {
				if m == program {
					series = append(series, gr.ProgramMR[s][i])
					break
				}
			}
		}
		out[s] = series
	}
	return out
}

// GainLoss counts, for one program, the groups where free-for-all sharing
// (Natural) beats, ties with, or loses to the Equal partition — the
// gainer/loser classification of §VII-B. Ties are within tol relative.
func GainLoss(res Result, program int, tol float64) (gain, tie, loss int) {
	for _, gr := range res.Groups {
		for i, m := range gr.Members {
			if m != program {
				continue
			}
			nat, eq := gr.ProgramMR[Natural][i], gr.ProgramMR[Equal][i]
			switch {
			case nat < eq*(1-tol):
				gain++
			case nat > eq*(1+tol):
				loss++
			default:
				tie++
			}
		}
	}
	return gain, tie, loss
}

// UnfairnessCount counts, for one program, the groups where Optimal makes
// it worse than the given baseline scheme — the §VII-B unfairness
// evidence.
func UnfairnessCount(res Result, program int, baseline Scheme) (worse, total int) {
	for _, gr := range res.Groups {
		for i, m := range gr.Members {
			if m != program {
				continue
			}
			total++
			if gr.ProgramMR[Optimal][i] > gr.ProgramMR[baseline][i]*(1+1e-9) {
				worse++
			}
		}
	}
	return worse, total
}
