package experiment

import (
	"context"
	"fmt"

	"partitionshare/internal/epoch"
	"partitionshare/internal/workload"
)

// EpochStudyRow compares static and per-epoch (dynamic) optimal
// partitioning for one co-run group of phased programs.
type EpochStudyRow struct {
	Members []string
	// StaticMR and DynamicMR are simulated group miss ratios under the
	// whole-trace optimal partition and the per-epoch re-optimized one.
	StaticMR, DynamicMR float64
}

// Gain returns the relative improvement of dynamic over static.
func (r EpochStudyRow) Gain() float64 {
	if r.DynamicMR == 0 {
		return 0
	}
	return r.StaticMR/r.DynamicMR - 1
}

// EpochStudy quantifies the paper's §VIII random-phase caveat at suite
// scale: for each group of phased programs, a static optimal partition
// (the paper's method) is compared against per-epoch re-optimization,
// both *simulated* on the actual traces with LRU repartitioning. When
// phases synchronize, dynamic wins; the static optimum is exactly what
// the paper's model can see. Cancelling ctx stops between programs or
// groups and returns ctx.Err().
func EpochStudy(ctx context.Context, specs []workload.PhasedSpec, cfg workload.Config, groups [][]int, phaseLen int) ([]EpochStudyRow, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(specs) == 0 || len(groups) == 0 {
		return nil, fmt.Errorf("experiment: empty epoch study")
	}
	// Generate and epoch-profile every program once.
	progs := make([]epoch.Program, len(specs))
	for i, s := range specs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tr, err := workload.GeneratePhased(s, cfg, phaseLen)
		if err != nil {
			return nil, err
		}
		progs[i], err = epoch.ProfileEpochs(s.Name, s.Rate, tr, phaseLen)
		if err != nil {
			return nil, err
		}
	}
	var rows []EpochStudyRow
	for _, members := range groups {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sub := make([]epoch.Program, len(members))
		names := make([]string, len(members))
		for i, m := range members {
			if m < 0 || m >= len(progs) {
				return nil, fmt.Errorf("experiment: invalid member %d", m)
			}
			sub[i] = progs[m]
			names[i] = progs[m].Name
		}
		static, err := epoch.PlanStatic(sub, cfg.Units, cfg.BlocksPerUnit)
		if err != nil {
			return nil, err
		}
		dynamic, err := epoch.PlanDynamic(sub, cfg.Units, cfg.BlocksPerUnit)
		if err != nil {
			return nil, err
		}
		sRes, err := epoch.Simulate(sub, static, phaseLen, cfg.BlocksPerUnit)
		if err != nil {
			return nil, err
		}
		dRes, err := epoch.Simulate(sub, dynamic, phaseLen, cfg.BlocksPerUnit)
		if err != nil {
			return nil, err
		}
		rows = append(rows, EpochStudyRow{
			Members:   names,
			StaticMR:  sRes.GroupMissRatio(),
			DynamicMR: dRes.GroupMissRatio(),
		})
	}
	return rows, nil
}
