package experiment

import (
	"math"
	"sync"
	"testing"

	"partitionshare/internal/partition"
	"partitionshare/internal/workload"
)

var (
	suiteOnce sync.Once
	suiteRes  Result
	suiteErr  error
)

// suite runs the full 1820-group evaluation once at test geometry.
func suite(t *testing.T) Result {
	t.Helper()
	suiteOnce.Do(func() {
		cfg := workload.TestConfig()
		progs, err := workload.ProfileAll(nil, workload.Specs(), cfg)
		if err != nil {
			suiteErr = err
			return
		}
		suiteRes, suiteErr = Run(nil, progs, 4, cfg.Units, cfg.BlocksPerUnit, RunOpts{})
	})
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return suiteRes
}

func mustCombinations(t *testing.T, n, k int) [][]int {
	t.Helper()
	cs, err := Combinations(n, k)
	if err != nil {
		t.Fatalf("Combinations(%d, %d): %v", n, k, err)
	}
	return cs
}

func TestCombinations(t *testing.T) {
	if got := len(mustCombinations(t, 16, 4)); got != 1820 {
		t.Fatalf("C(16,4) = %d, want 1820", got)
	}
	if got := len(mustCombinations(t, 4, 4)); got != 1 {
		t.Fatalf("C(4,4) = %d, want 1", got)
	}
	if got := len(mustCombinations(t, 5, 1)); got != 5 {
		t.Fatalf("C(5,1) = %d, want 5", got)
	}
	// Lexicographic order and distinct members.
	combos := mustCombinations(t, 5, 3)
	for _, c := range combos {
		if !(c[0] < c[1] && c[1] < c[2]) {
			t.Fatalf("combo %v not strictly increasing", c)
		}
	}
}

func TestCombinationsErrors(t *testing.T) {
	for i, args := range [][2]int{{3, 4}, {-1, 1}, {5, -1}} {
		if _, err := Combinations(args[0], args[1]); err == nil {
			t.Errorf("case %d: Combinations(%d, %d) expected error", i, args[0], args[1])
		}
	}
}

func TestRunProducesAllGroups(t *testing.T) {
	res := suite(t)
	if len(res.Groups) != 1820 {
		t.Fatalf("got %d groups, want 1820", len(res.Groups))
	}
	for g, gr := range res.Groups {
		if len(gr.Members) != 4 {
			t.Fatalf("group %d has %d members", g, len(gr.Members))
		}
		for s := Scheme(0); s < NumSchemes; s++ {
			if len(gr.ProgramMR[s]) != 4 || len(gr.Alloc[s]) != 4 {
				t.Fatalf("group %d scheme %v: missing per-program data", g, s)
			}
			total := 0
			for _, u := range gr.Alloc[s] {
				total += u
			}
			if total != res.Units {
				t.Fatalf("group %d scheme %v: alloc sums to %d, want %d", g, s, total, res.Units)
			}
			if gr.GroupMR[s] < 0 || gr.GroupMR[s] > 1 || math.IsNaN(gr.GroupMR[s]) {
				t.Fatalf("group %d scheme %v: bad miss ratio %v", g, s, gr.GroupMR[s])
			}
		}
	}
}

// The DP's defining property: Optimal is at least as good as every other
// scheme in every single group.
func TestOptimalDominatesEverywhere(t *testing.T) {
	res := suite(t)
	for g, gr := range res.Groups {
		opt := gr.GroupMR[Optimal]
		for s := Scheme(0); s < NumSchemes; s++ {
			if gr.GroupMR[s] < opt-1e-12 {
				t.Fatalf("group %d: scheme %v (%v) beats Optimal (%v)", g, s, gr.GroupMR[s], opt)
			}
		}
	}
}

// Baseline optimization never makes any member worse than its baseline
// (§VI), and never worsens the group.
func TestBaselineConstraintsHold(t *testing.T) {
	res := suite(t)
	tol := 1 + partition.DefaultBaselineTolerance
	for g, gr := range res.Groups {
		for i := range gr.Members {
			if gr.ProgramMR[EqualBaseline][i] > gr.ProgramMR[Equal][i]*tol+1e-12 {
				t.Fatalf("group %d member %d: equal baseline worsened a program", g, i)
			}
			if gr.ProgramMR[NaturalBaseline][i] > gr.ProgramMR[Natural][i]*tol+1e-12 {
				t.Fatalf("group %d member %d: natural baseline worsened a program", g, i)
			}
		}
		if gr.GroupMR[EqualBaseline] > gr.GroupMR[Equal]+1e-12 {
			t.Fatalf("group %d: equal baseline worsened the group", g)
		}
		if gr.GroupMR[NaturalBaseline] > gr.GroupMR[Natural]+1e-12 {
			t.Fatalf("group %d: natural baseline worsened the group", g)
		}
	}
}

// Paper Table I shape: Optimal improves Equal far more than it improves
// Natural, and baseline-equal recovers much of Equal's loss while
// baseline-natural barely improves Natural.
func TestTableIShape(t *testing.T) {
	res := suite(t)
	rows := TableI(res)
	byScheme := map[Scheme]ImprovementRow{}
	for _, r := range rows {
		byScheme[r.Baseline] = r
		if r.Max < r.Avg || r.Avg < 0 {
			t.Errorf("%v: inconsistent stats %+v", r.Baseline, r)
		}
	}
	if byScheme[Equal].Avg <= byScheme[Natural].Avg {
		t.Errorf("improvement over Equal (%.3f) should exceed improvement over Natural (%.3f)",
			byScheme[Equal].Avg, byScheme[Natural].Avg)
	}
	if byScheme[EqualBaseline].Avg >= byScheme[Equal].Avg {
		t.Errorf("equal-baseline (%.3f) should close part of Equal's gap (%.3f)",
			byScheme[EqualBaseline].Avg, byScheme[Equal].Avg)
	}
	// Natural baseline barely improves Natural: the two rows are close.
	if d := byScheme[Natural].Avg - byScheme[NaturalBaseline].Avg; d < 0 || d > 0.20 {
		t.Errorf("natural vs natural-baseline gap %.3f out of expected narrow range", d)
	}
	// STTW loses visibly in a nontrivial share of groups.
	if byScheme[STTW].AtLeast10 < 0.05 {
		t.Errorf("STTW should be >=10%% worse than Optimal in a nontrivial share of groups, got %.3f",
			byScheme[STTW].AtLeast10)
	}
}

func TestFormatTableI(t *testing.T) {
	res := suite(t)
	out := FormatTableI(TableI(res))
	for _, want := range []string{"Equal", "Natural baseline", "STTW", "Max", "Median"} {
		if !contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestGroupSeriesSorted(t *testing.T) {
	res := suite(t)
	series := GroupSeries(res, []Scheme{Optimal, Natural, STTW})
	opt := series[Optimal]
	if len(opt) != len(res.Groups) {
		t.Fatalf("series length %d, want %d", len(opt), len(res.Groups))
	}
	for i := 1; i < len(opt); i++ {
		if opt[i] < opt[i-1] {
			t.Fatal("optimal series not sorted ascending")
		}
	}
	// Natural and STTW are pointwise >= Optimal.
	for i := range opt {
		if series[Natural][i] < opt[i]-1e-12 || series[STTW][i] < opt[i]-1e-12 {
			t.Fatalf("series point %d below optimal", i)
		}
	}
}

func TestProgramSeriesCoverage(t *testing.T) {
	res := suite(t)
	// Each program appears in C(15,3) = 455 groups.
	series := ProgramSeries(res, 0, []Scheme{Equal, Natural, Optimal})
	for s, v := range series {
		if len(v) != 455 {
			t.Fatalf("scheme %v: series length %d, want 455", s, len(v))
		}
	}
	// Equal miss ratio is constant per program.
	eq := series[Equal]
	for _, v := range eq {
		if v != eq[0] {
			t.Fatal("equal-partition miss ratio should be constant across groups")
		}
	}
}

// Figure 5 narrative: lbm mostly gains from sharing; perlbench and namd
// mostly lose.
func TestGainLossNarrative(t *testing.T) {
	res := suite(t)
	idx := map[string]int{}
	for i, p := range res.Programs {
		idx[p.Name] = i
	}
	gain, _, loss := GainLoss(res, idx["lbm"], 0.02)
	if gain <= loss {
		t.Errorf("lbm: gain %d vs loss %d, want mostly gains", gain, loss)
	}
	gain, _, loss = GainLoss(res, idx["perlbench"], 0.02)
	if loss <= gain {
		t.Errorf("perlbench: gain %d vs loss %d, want mostly losses", gain, loss)
	}
	gain, _, loss = GainLoss(res, idx["namd"], 0.02)
	if loss <= gain {
		t.Errorf("namd: gain %d vs loss %d, want mostly losses", gain, loss)
	}
}

// §VII-B: Optimal is unfair — for some programs it usually helps (sphinx3)
// and for namd it usually hurts, relative to Natural.
func TestUnfairnessNarrative(t *testing.T) {
	res := suite(t)
	idx := map[string]int{}
	for i, p := range res.Programs {
		idx[p.Name] = i
	}
	// namd is almost always made worse (its misses are cheap, so the DP
	// strips it below an equal share).
	worse, total := UnfairnessCount(res, idx["namd"], Equal)
	if total != 455 {
		t.Fatalf("namd appears in %d groups, want 455", total)
	}
	if worse*2 < total {
		t.Errorf("namd: worse than Equal in %d/%d under Optimal, want majority", worse, total)
	}
	// sphinx3 is almost always made better (its affordable cliff is a
	// high-value DP target).
	worseNat, _ := UnfairnessCount(res, idx["sphinx3"], Natural)
	worseEq, _ := UnfairnessCount(res, idx["sphinx3"], Equal)
	if worseNat > total/5 || worseEq > total/5 {
		t.Errorf("sphinx3: worse in %d/%d (vs Natural) and %d/%d (vs Equal), want rarely worse",
			worseNat, total, worseEq, total)
	}
}

func TestEvaluateGroupErrors(t *testing.T) {
	cfg := workload.TestConfig()
	progs, err := workload.ProfileAll(nil, workload.Specs()[:2], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvaluateGroup(progs, nil, cfg.Units, cfg.BlocksPerUnit); err == nil {
		t.Error("expected error for empty group")
	}
	if _, err := EvaluateGroup(progs, []int{0, 5}, cfg.Units, cfg.BlocksPerUnit); err == nil {
		t.Error("expected error for invalid member")
	}
	if _, err := Run(nil, progs, 3, cfg.Units, cfg.BlocksPerUnit, RunOpts{}); err == nil {
		t.Error("expected error for oversized group")
	}
}
