// Package experiment reproduces the paper's evaluation (§VII): all
// 4-program co-run groups drawn from the 16-program suite, each evaluated
// under the six cache-allocation schemes (Equal, Natural, Equal-baseline,
// Natural-baseline, Optimal, STTW), summarized as in Table I and Figures
// 5–7. Groups are independent, so the harness fans out over a worker pool.
package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"partitionshare/internal/compose"
	"partitionshare/internal/mrc"
	"partitionshare/internal/partition"
	"partitionshare/internal/workload"
)

// Scheme identifies one of the evaluated allocation policies.
type Scheme int

// The six schemes of §VII-A, in the paper's order.
const (
	Equal Scheme = iota
	Natural
	EqualBaseline
	NaturalBaseline
	Optimal
	STTW
	NumSchemes
)

// String returns the paper's name for the scheme.
func (s Scheme) String() string {
	switch s {
	case Equal:
		return "Equal"
	case Natural:
		return "Natural"
	case EqualBaseline:
		return "Equal baseline"
	case NaturalBaseline:
		return "Natural baseline"
	case Optimal:
		return "Optimal"
	case STTW:
		return "STTW"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// GroupResult holds one co-run group's evaluation.
type GroupResult struct {
	// Members are indices into the program list.
	Members []int
	// GroupMR[s] is the group miss ratio under scheme s.
	GroupMR [NumSchemes]float64
	// ProgramMR[s][i] is member i's miss ratio under scheme s.
	ProgramMR [NumSchemes][]float64
	// Alloc[s][i] is member i's allocation in units under scheme s.
	Alloc [NumSchemes][]int
}

// Result is a full evaluation run.
type Result struct {
	Programs []workload.Program
	Units    int
	Groups   []GroupResult
}

// Combinations enumerates all k-subsets of {0..n-1} in lexicographic order.
func Combinations(n, k int) [][]int {
	if k < 0 || n < 0 || k > n {
		panic(fmt.Sprintf("experiment: invalid Combinations(%d, %d)", n, k))
	}
	var out [][]int
	idx := make([]int, k)
	var rec func(start, d int)
	rec = func(start, d int) {
		if d == k {
			cp := make([]int, k)
			copy(cp, idx)
			out = append(out, cp)
			return
		}
		for i := start; i < n; i++ {
			idx[d] = i
			rec(i+1, d+1)
		}
	}
	rec(0, 0)
	return out
}

// EvaluateGroup runs all six schemes on one co-run group.
func EvaluateGroup(progs []workload.Program, members []int, units int, blocksPerUnit int64) (GroupResult, error) {
	return evaluateGroup(progs, members, units, blocksPerUnit, nil)
}

// CostTable precomputes each program's miss-count column cost[p][u] =
// Curves[p].MissCount(u) for u in [0, units]. Run computes it once and
// shares the rows across all groups and schemes, so the sweep's thousands
// of DP solves never rebuild per-program costs; the entries are the exact
// values the solvers would compute themselves.
func CostTable(progs []workload.Program, units int) [][]float64 {
	tab := make([][]float64, len(progs))
	for i := range progs {
		row := make([]float64, units+1)
		for u := range row {
			row[u] = progs[i].Curve.MissCount(u)
		}
		tab[i] = row
	}
	return tab
}

// evaluateGroup is EvaluateGroup with an optional precomputed cost table
// indexed by program (not group-member) position.
func evaluateGroup(progs []workload.Program, members []int, units int, blocksPerUnit int64, costTab [][]float64) (GroupResult, error) {
	n := len(members)
	if n == 0 {
		return GroupResult{}, fmt.Errorf("experiment: empty group")
	}
	curves := make([]mrc.Curve, n)
	comps := make([]compose.Program, n)
	var groupTab [][]float64
	if costTab != nil {
		groupTab = make([][]float64, n)
	}
	for i, m := range members {
		if m < 0 || m >= len(progs) {
			return GroupResult{}, fmt.Errorf("experiment: invalid member %d", m)
		}
		curves[i] = progs[m].Curve
		comps[i] = compose.Program{Name: progs[m].Name, Fp: progs[m].Fp, Rate: progs[m].Rate}
		if costTab != nil {
			groupTab[i] = costTab[m]
		}
	}
	res := GroupResult{Members: append([]int(nil), members...)}
	pr := partition.Problem{Curves: curves, Units: units, CostTable: groupTab}

	record := func(s Scheme, sol partition.Solution) {
		res.GroupMR[s] = sol.GroupMissRatio
		res.ProgramMR[s] = sol.MissRatios
		res.Alloc[s] = sol.Alloc
	}

	// Equal: fixed even split.
	equalAlloc := partition.EqualAllocation(n, units)
	sol, err := partition.Evaluate(pr, equalAlloc)
	if err != nil {
		return GroupResult{}, fmt.Errorf("experiment: equal: %w", err)
	}
	record(Equal, sol)

	// Natural: free-for-all sharing, modelled by the natural cache
	// partition at unit granularity.
	naturalAlloc := partition.Allocation(compose.NaturalPartitionUnits(comps, units, blocksPerUnit))
	sol, err = partition.Evaluate(pr, naturalAlloc)
	if err != nil {
		return GroupResult{}, fmt.Errorf("experiment: natural: %w", err)
	}
	record(Natural, sol)

	// Baseline optimizations (§VI), sharing the group's cost table.
	sol, err = partition.OptimizeBaseline(pr, equalAlloc)
	if err != nil {
		return GroupResult{}, fmt.Errorf("experiment: equal baseline: %w", err)
	}
	record(EqualBaseline, sol)
	sol, err = partition.OptimizeBaseline(pr, naturalAlloc)
	if err != nil {
		return GroupResult{}, fmt.Errorf("experiment: natural baseline: %w", err)
	}
	record(NaturalBaseline, sol)

	// Optimal: unconstrained DP.
	sol, err = partition.Optimize(pr)
	if err != nil {
		return GroupResult{}, fmt.Errorf("experiment: optimal: %w", err)
	}
	record(Optimal, sol)

	// STTW: the classic greedy.
	record(STTW, partition.STTW(curves, units))

	return res, nil
}

// Run evaluates every groupSize-subset of the programs in parallel and
// returns the results in lexicographic group order.
func Run(progs []workload.Program, groupSize, units int, blocksPerUnit int64) (Result, error) {
	if groupSize < 1 || groupSize > len(progs) {
		return Result{}, fmt.Errorf("experiment: group size %d out of range for %d programs", groupSize, len(progs))
	}
	groups := Combinations(len(progs), groupSize)
	res := Result{Programs: progs, Units: units, Groups: make([]GroupResult, len(groups))}
	errs := make([]error, len(groups))
	costTab := CostTable(progs, units)

	// The jobs channel holds the whole work list so the feeder never
	// blocks and workers drain it back-to-back; each worker's sequential
	// solves then reuse one pooled DP scratch arena, keeping the sweep's
	// hot path allocation-free.
	var wg sync.WaitGroup
	jobs := make(chan int, len(groups))
	for g := range groups {
		jobs <- g
	}
	close(jobs)
	workers := runtime.GOMAXPROCS(0)
	if workers > len(groups) {
		workers = len(groups)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range jobs {
				res.Groups[g], errs[g] = evaluateGroup(progs, groups[g], units, blocksPerUnit, costTab)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	return res, nil
}
