// Package experiment reproduces the paper's evaluation (§VII): all
// 4-program co-run groups drawn from the 16-program suite, each evaluated
// under the six cache-allocation schemes (Equal, Natural, Equal-baseline,
// Natural-baseline, Optimal, STTW), summarized as in Table I and Figures
// 5–7. Groups are independent, so the harness fans out over a worker pool.
package experiment

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"partitionshare/internal/compose"
	"partitionshare/internal/mrc"
	"partitionshare/internal/obs"
	"partitionshare/internal/partition"
	"partitionshare/internal/workload"
)

// Observability names for the sweep, package-prefixed dotted.snake per
// the obsname registry convention.
const (
	spanGroup           = "experiment.group"
	spanDPSolve         = "experiment.dp_solve"
	spanCheckpointLoad  = "experiment.checkpoint_load"
	spanCheckpointFlush = "experiment.checkpoint_flush"

	mGroupsCompleted   = "experiment.groups_completed"
	mGroupsFailed      = "experiment.groups_failed"
	mGroupsResumed     = "experiment.groups_resumed"
	mGroups            = "experiment.groups"
	mGroupNS           = "experiment.group_ns"
	mCheckpointLoads   = "experiment.checkpoint_loads"
	mCheckpointFlushes = "experiment.checkpoint_flushes"
)

// Scheme identifies one of the evaluated allocation policies.
type Scheme int

// The six schemes of §VII-A, in the paper's order.
const (
	Equal Scheme = iota
	Natural
	EqualBaseline
	NaturalBaseline
	Optimal
	STTW
	NumSchemes
)

// String returns the paper's name for the scheme.
func (s Scheme) String() string {
	switch s {
	case Equal:
		return "Equal"
	case Natural:
		return "Natural"
	case EqualBaseline:
		return "Equal baseline"
	case NaturalBaseline:
		return "Natural baseline"
	case Optimal:
		return "Optimal"
	case STTW:
		return "STTW"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// GroupResult holds one co-run group's evaluation.
type GroupResult struct {
	// Members are indices into the program list.
	Members []int
	// GroupMR[s] is the group miss ratio under scheme s.
	GroupMR [NumSchemes]float64
	// ProgramMR[s][i] is member i's miss ratio under scheme s.
	ProgramMR [NumSchemes][]float64
	// Alloc[s][i] is member i's allocation in units under scheme s.
	Alloc [NumSchemes][]int
}

// Result is a full evaluation run.
type Result struct {
	Programs []workload.Program
	Units    int
	Groups   []GroupResult
}

// ErrTooManyGroups reports a search space too large to count in uint64 or
// to materialize in memory.
var ErrTooManyGroups = errors.New("experiment: search space too large")

// maxEnumerate bounds how many groups Combinations will materialize; each
// group costs O(k) memory and the sweep evaluates every one, so anything
// beyond this is a mis-parameterization, not a workload.
const maxEnumerate = 1 << 28

// CombinationCount returns C(n, k) computed in uint64 with explicit
// overflow detection: it wraps ErrTooManyGroups instead of silently
// wrapping around, which an int-typed product would do from n ≈ 62 up.
func CombinationCount(n, k int) (uint64, error) {
	if k < 0 || n < 0 || k > n {
		return 0, fmt.Errorf("experiment: invalid combination count C(%d, %d)", n, k)
	}
	if k > n-k {
		k = n - k
	}
	// c = c·(n−k+i)/i is exact at every step: after i steps c = C(n−k+i, i).
	// The 128-bit intermediate product keeps the check exact; hi >= i would
	// make the quotient overflow uint64.
	c := uint64(1)
	for i := 1; i <= k; i++ {
		hi, lo := bits.Mul64(c, uint64(n-k+i))
		if hi >= uint64(i) {
			return 0, fmt.Errorf("%w: C(%d, %d) overflows uint64", ErrTooManyGroups, n, k)
		}
		c, _ = bits.Div64(hi, lo, uint64(i))
	}
	return c, nil
}

// Combinations enumerates all k-subsets of {0..n-1} in lexicographic order.
// Invalid arguments and search spaces too large to materialize return an
// error (wrapping ErrTooManyGroups for the latter) instead of panicking or
// overflowing.
func Combinations(n, k int) ([][]int, error) {
	count, err := CombinationCount(n, k)
	if err != nil {
		return nil, err
	}
	if count > maxEnumerate {
		return nil, fmt.Errorf("%w: C(%d, %d) = %d groups exceeds the %d enumeration cap",
			ErrTooManyGroups, n, k, count, maxEnumerate)
	}
	out := make([][]int, 0, count)
	idx := make([]int, k)
	var rec func(start, d int)
	rec = func(start, d int) {
		if d == k {
			cp := make([]int, k)
			copy(cp, idx)
			out = append(out, cp)
			return
		}
		for i := start; i < n; i++ {
			idx[d] = i
			rec(i+1, d+1)
		}
	}
	rec(0, 0)
	return out, nil
}

// EvaluateGroup runs all six schemes on one co-run group.
func EvaluateGroup(progs []workload.Program, members []int, units int, blocksPerUnit int64) (GroupResult, error) {
	return evaluateGroup(context.Background(), progs, members, units, blocksPerUnit, nil, partition.SolverAuto)
}

// CostTable precomputes each program's miss-count column cost[p][u] =
// Curves[p].MissCount(u) for u in [0, units]. Run computes it once and
// shares the rows across all groups and schemes, so the sweep's thousands
// of DP solves never rebuild per-program costs; the entries are the exact
// values the solvers would compute themselves.
func CostTable(progs []workload.Program, units int) [][]float64 {
	tab := make([][]float64, len(progs))
	for i := range progs {
		row := make([]float64, units+1)
		for u := range row {
			row[u] = progs[i].Curve.MissCount(u)
		}
		tab[i] = row
	}
	return tab
}

// evaluateGroup is EvaluateGroup with an optional precomputed cost table
// indexed by program (not group-member) position. ctx carries the trace
// parent (the worker's group span during a sweep), so each scheme's DP
// solve renders as a child "experiment.dp_solve" span in -trace-events
// timelines.
// solver selects the DP strategy for every scheme's solve; rungs an
// instance cannot certify (the baseline-constrained problems, small C)
// fall through to the exact kernel, so any value is safe here.
func evaluateGroup(ctx context.Context, progs []workload.Program, members []int, units int, blocksPerUnit int64, costTab [][]float64, solver partition.Solver) (GroupResult, error) {
	n := len(members)
	if n == 0 {
		return GroupResult{}, fmt.Errorf("experiment: empty group")
	}
	curves := make([]mrc.Curve, n)
	comps := make([]compose.Program, n)
	var groupTab [][]float64
	if costTab != nil {
		groupTab = make([][]float64, n)
	}
	for i, m := range members {
		if m < 0 || m >= len(progs) {
			return GroupResult{}, fmt.Errorf("experiment: invalid member %d", m)
		}
		curves[i] = progs[m].Curve
		comps[i] = compose.Program{Name: progs[m].Name, Fp: progs[m].Fp, Rate: progs[m].Rate}
		if costTab != nil {
			groupTab[i] = costTab[m]
		}
	}
	res := GroupResult{Members: append([]int(nil), members...)}
	pr := partition.Problem{Curves: curves, Units: units, CostTable: groupTab, Solver: solver}

	record := func(s Scheme, sol partition.Solution) {
		res.GroupMR[s] = sol.GroupMissRatio
		res.ProgramMR[s] = sol.MissRatios
		res.Alloc[s] = sol.Alloc
	}

	// Equal: fixed even split.
	equalAlloc := partition.EqualAllocation(n, units)
	sol, err := partition.Evaluate(pr, equalAlloc)
	if err != nil {
		return GroupResult{}, fmt.Errorf("experiment: equal: %w", err)
	}
	record(Equal, sol)

	// Natural: free-for-all sharing, modelled by the natural cache
	// partition at unit granularity.
	naturalAlloc := partition.Allocation(compose.NaturalPartitionUnits(comps, units, blocksPerUnit))
	sol, err = partition.Evaluate(pr, naturalAlloc)
	if err != nil {
		return GroupResult{}, fmt.Errorf("experiment: natural: %w", err)
	}
	record(Natural, sol)

	// solveSpan traces one scheme's DP solve; a nil tracer makes this an
	// atomic load per scheme, nothing more.
	solveSpan := func(s Scheme) *obs.TraceSpan {
		_, ts := obs.StartTraceSpan(ctx, spanDPSolve, "dp")
		return ts.Arg("scheme", int64(s))
	}

	// Baseline optimizations (§VI), sharing the group's cost table.
	ts := solveSpan(EqualBaseline)
	sol, err = partition.OptimizeBaseline(pr, equalAlloc)
	ts.End()
	if err != nil {
		return GroupResult{}, fmt.Errorf("experiment: equal baseline: %w", err)
	}
	record(EqualBaseline, sol)
	ts = solveSpan(NaturalBaseline)
	sol, err = partition.OptimizeBaseline(pr, naturalAlloc)
	ts.End()
	if err != nil {
		return GroupResult{}, fmt.Errorf("experiment: natural baseline: %w", err)
	}
	record(NaturalBaseline, sol)

	// Optimal: unconstrained DP.
	ts = solveSpan(Optimal)
	sol, err = partition.Optimize(pr)
	ts.End()
	if err != nil {
		return GroupResult{}, fmt.Errorf("experiment: optimal: %w", err)
	}
	record(Optimal, sol)

	// STTW: the classic greedy.
	record(STTW, partition.STTW(curves, units))

	return res, nil
}

// GroupError reports one co-run group's failure: a solver error or a
// recovered worker panic. The sweep isolates it — other groups complete —
// and the caller can identify the offending group from Members.
type GroupError struct {
	// Members are the failed group's program indices.
	Members []int
	// Cause is the underlying error; recovered panics include the panic
	// value and stack.
	Cause error
}

func (e *GroupError) Error() string {
	return fmt.Sprintf("experiment: group %v: %v", e.Members, e.Cause)
}

func (e *GroupError) Unwrap() error { return e.Cause }

// RunOpts tunes the sweep's parallelism and fault handling. The zero value
// is the default configuration: all CPUs, collect-errors mode, no
// checkpointing.
type RunOpts struct {
	// Workers is the worker-pool size. Values <= 0 default to
	// runtime.GOMAXPROCS(0); all values are capped at GOMAXPROCS (the DP
	// is CPU-bound, so oversubscription only adds scheduling noise) and at
	// the number of groups.
	Workers int
	// FailFast stops dispatching new groups after the first failure and
	// returns that group's error alone. When false (the default), every
	// group is attempted and all failures are returned joined, with the
	// successful groups' results retained.
	FailFast bool
	// CheckpointPath, when non-empty, enables crash recovery: completed
	// group results are periodically flushed to this path as a versioned
	// JSON checkpoint via atomic write-temp+rename, including a final
	// flush on cancellation. See Checkpoint.
	CheckpointPath string
	// CheckpointEvery is the flush interval in completed groups
	// (<= 0 means checkpointDefaultEvery). Flushing is O(completed), so
	// very small values turn the sweep quadratic; the default amortizes
	// to a few percent overhead.
	CheckpointEvery int
	// Resume, when non-nil, skips groups already present in the
	// checkpoint, reusing their recorded results. The checkpoint's
	// geometry must match the run's (ErrCheckpointMismatch otherwise).
	Resume *Checkpoint
	// Solver selects the DP strategy for every scheme's solve (see
	// partition.Solver). The zero value is SolverAuto — the solver
	// ladder — which is the right choice outside A/B experiments.
	Solver partition.Solver
	// OnProgress, when non-nil, is called after every processed group
	// (completed or failed, plus once up front covering any resumed
	// groups) with the running processed count and the total. Calls come
	// from worker goroutines concurrently, so the callback must be safe
	// for concurrent use — routing it into obs.Progressf (one serialized
	// reporter) is the intended wiring.
	OnProgress func(processed, total int)
}

// evaluateGroupSafe runs evaluateGroup with panics recovered into errors,
// so one pathological group (or a bug in a solver path) degrades to a
// typed GroupError instead of crashing the whole sweep.
func evaluateGroupSafe(ctx context.Context, progs []workload.Program, members []int, units int, blocksPerUnit int64, costTab [][]float64, solver partition.Solver) (gr GroupResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			// A panic value that is itself an error stays in the chain
			// (%w), so callers can errors.Is through the GroupError all
			// the way to a typed cause.
			if perr, ok := r.(error); ok {
				err = fmt.Errorf("panic: %w\n%s", perr, debug.Stack())
			} else {
				err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
			}
		}
	}()
	if testHookEvaluateGroup != nil {
		testHookEvaluateGroup(members)
	}
	return evaluateGroup(ctx, progs, members, units, blocksPerUnit, costTab, solver)
}

// testHookEvaluateGroup, when non-nil, runs at the top of every group
// evaluation inside the recovery envelope. Tests use it to inject faults.
var testHookEvaluateGroup func(members []int)

// Run evaluates every groupSize-subset of the programs in parallel and
// returns the results in lexicographic group order.
//
// Fault model: the sweep is cancellable (ctx), panic-isolated (a failing
// group becomes a GroupError, per opts.FailFast), and resumable
// (opts.CheckpointPath / opts.Resume). On cancellation it returns
// ctx.Err() after draining the workers and flushing a final checkpoint;
// the partial Result holds every group completed before the cut.
func Run(ctx context.Context, progs []workload.Program, groupSize, units int, blocksPerUnit int64, opts RunOpts) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if groupSize < 1 || groupSize > len(progs) {
		return Result{}, fmt.Errorf("experiment: group size %d out of range for %d programs", groupSize, len(progs))
	}
	for i := range progs {
		if err := progs[i].Curve.Validate(); err != nil {
			return Result{}, fmt.Errorf("experiment: program %d: %w", i, err)
		}
	}
	groups, err := Combinations(len(progs), groupSize)
	if err != nil {
		return Result{}, err
	}
	res := Result{Programs: progs, Units: units, Groups: make([]GroupResult, len(groups))}
	errs := make([]error, len(groups))

	// Resume: pre-fill results recorded by a previous (interrupted) run
	// and only dispatch the remainder.
	done := make([]bool, len(groups))
	if opts.Resume != nil {
		if err := opts.Resume.Compatible(len(progs), groupSize, units, blocksPerUnit); err != nil {
			return Result{}, err
		}
		seen := make(map[string]GroupResult, len(opts.Resume.Groups))
		for _, gr := range opts.Resume.Groups {
			seen[groupKey(gr.Members)] = gr
		}
		for g, members := range groups {
			if gr, ok := seen[groupKey(members)]; ok {
				res.Groups[g] = gr
				done[g] = true
			}
		}
	}
	var pending []int
	for g := range groups {
		if !done[g] {
			pending = append(pending, g)
		}
	}

	// Metric handles are resolved once per run; with the registry
	// disabled every handle is nil and each use below is a nil check.
	reg := obs.Enabled()
	completedCtr := reg.Counter(mGroupsCompleted)
	failedCtr := reg.Counter(mGroupsFailed)
	groupHist := reg.Histogram(mGroupNS, obs.DurationBuckets())
	resumed := len(groups) - len(pending)
	reg.Counter(mGroupsResumed).Add(int64(resumed))
	reg.Gauge(mGroups).Set(int64(len(groups)))

	// processed counts resumed + completed + failed groups; workers
	// publish it through OnProgress after every group.
	var processed atomic.Int64
	processed.Store(int64(resumed))
	if opts.OnProgress != nil && resumed > 0 {
		opts.OnProgress(resumed, len(groups))
	}

	costTab := CostTable(progs, units)

	// The checkpointer owns the done set ordering: workers report
	// completed indices over the channel (the send happens after the
	// result write, giving the checkpointer a happens-before edge), and
	// the checkpointer flushes a deterministic, lexicographically sorted
	// snapshot every CheckpointEvery completions plus once at the end.
	ckpt := startCheckpointer(ctx, &res, done, len(progs), groupSize, blocksPerUnit, opts)

	// FailFast cancels this derived context so in-flight workers stop
	// pulling jobs; parent cancellation flows through it too.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// The jobs channel holds the whole work list so the feeder never
	// blocks and workers drain it back-to-back; each worker's sequential
	// solves then reuse one pooled DP scratch arena, keeping the sweep's
	// hot path allocation-free.
	var wg sync.WaitGroup
	jobs := make(chan int, len(pending))
	for _, g := range pending {
		jobs <- g
	}
	close(jobs)
	maxWorkers := runtime.GOMAXPROCS(0)
	workers := opts.Workers
	if workers <= 0 || workers > maxWorkers {
		workers = maxWorkers
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns one trace lane (row in the exported
			// timeline); lane 0 stays the main goroutine's.
			laneCtx := obs.WithTraceLane(runCtx, int64(w+1))
			for g := range jobs {
				// Prompt drain: once cancelled (Ctrl-C or FailFast), skip
				// the remaining queue instead of solving it.
				if runCtx.Err() != nil {
					return
				}
				var start time.Time
				if reg != nil {
					start = time.Now()
				}
				gctx, gspan := obs.StartTraceSpan(laneCtx, spanGroup, "sweep")
				gr, err := evaluateGroupSafe(gctx, progs, groups[g], units, blocksPerUnit, costTab, opts.Solver)
				gspan.Arg("group", int64(g)).End()
				if reg != nil {
					groupHist.Observe(time.Since(start).Nanoseconds())
				}
				if err != nil {
					failedCtr.Inc()
					if opts.OnProgress != nil {
						opts.OnProgress(int(processed.Add(1)), len(groups))
					}
					errs[g] = &GroupError{Members: append([]int(nil), groups[g]...), Cause: err}
					if opts.FailFast {
						cancel()
					}
					continue
				}
				completedCtr.Inc()
				res.Groups[g] = gr
				ckpt.completed(g)
				if opts.OnProgress != nil {
					opts.OnProgress(int(processed.Add(1)), len(groups))
				}
			}
		}()
	}
	wg.Wait()
	if err := ckpt.finish(); err != nil {
		return res, err
	}

	if err := ctx.Err(); err != nil {
		return res, err
	}
	var groupErrs []error
	for _, err := range errs {
		if err != nil {
			groupErrs = append(groupErrs, err)
			if opts.FailFast {
				return res, err
			}
		}
	}
	if groupErrs != nil {
		// Collect mode: keep the completed groups (in lexicographic
		// order) and report every failure.
		kept := res.Groups[:0]
		for g := range groups {
			if errs[g] == nil {
				kept = append(kept, res.Groups[g])
			}
		}
		res.Groups = kept
		return res, errors.Join(groupErrs...)
	}
	return res, nil
}
