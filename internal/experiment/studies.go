package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"partitionshare/internal/cachesim"
	"partitionshare/internal/compose"
	"partitionshare/internal/footprint"
	"partitionshare/internal/mrc"
	"partitionshare/internal/partition"
	"partitionshare/internal/stats"
	"partitionshare/internal/trace"
	"partitionshare/internal/workload"
)

// CorrelationResult reports the locality-performance correlation study.
type CorrelationResult struct {
	// Predicted[g] is group g's HOTL-predicted shared-cache miss ratio.
	Predicted []float64
	// SimulatedTime[g] is the group's simulated co-run execution time in
	// cycles: one cycle per access plus missPenalty per simulated miss.
	SimulatedTime []float64
	// Pearson is the correlation coefficient between the two.
	Pearson float64
}

// CorrelationStudy reproduces the §VIII "Locality-performance
// Correlation" argument (Wang et al. measured r = 0.938 between predicted
// miss ratio and execution time over all 1820 groups): for each given
// group, the co-run is simulated on a shared LRU cache and its execution
// time modelled as accesses + missPenalty·misses, then correlated with
// the composition-predicted miss ratio. Groups are simulated in parallel;
// cancelling ctx drains the workers and returns ctx.Err().
func CorrelationStudy(ctx context.Context, specs []workload.Spec, cfg workload.Config, groups [][]int, missPenalty float64) (CorrelationResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(groups) < 2 {
		return CorrelationResult{}, fmt.Errorf("experiment: need at least 2 groups to correlate")
	}
	if missPenalty <= 0 {
		return CorrelationResult{}, fmt.Errorf("experiment: non-positive miss penalty %v", missPenalty)
	}
	// Generate and profile each program once.
	traces := make([]trace.Trace, len(specs))
	fps := make([]footprint.Footprint, len(specs))
	{
		var wg sync.WaitGroup
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		for i, s := range specs {
			wg.Add(1)
			go func(i int, s workload.Spec) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				if ctx.Err() != nil {
					return
				}
				gen := s.Build(uint32(cfg.CacheBlocks()), cfg.Seed*0x9e3779b9^uint64(i))
				traces[i] = trace.Generate(gen, cfg.TraceLen)
				fps[i] = footprint.FromTrace(traces[i])
			}(i, s)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return CorrelationResult{}, err
		}
	}
	res := CorrelationResult{
		Predicted:     make([]float64, len(groups)),
		SimulatedTime: make([]float64, len(groups)),
	}
	capacity := int(cfg.CacheBlocks())
	var wg sync.WaitGroup
	// Pre-filled and closed so workers drain it back-to-back and a
	// cancelled run never strands a feeder goroutine on a blocked send.
	jobs := make(chan int, len(groups))
	for g := range groups {
		jobs <- g
	}
	close(jobs)
	errs := make([]error, len(groups))
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range jobs {
				if ctx.Err() != nil {
					return
				}
				members := groups[g]
				progs := make([]compose.Program, 0, len(members))
				subTraces := make([]trace.Trace, 0, len(members))
				rates := make([]float64, 0, len(members))
				for _, m := range members {
					if m < 0 || m >= len(specs) {
						errs[g] = fmt.Errorf("experiment: invalid member %d", m)
						continue
					}
					progs = append(progs, compose.Program{Name: specs[m].Name, Fp: fps[m], Rate: specs[m].Rate})
					subTraces = append(subTraces, traces[m])
					rates = append(rates, specs[m].Rate)
				}
				if errs[g] != nil {
					continue
				}
				res.Predicted[g] = compose.SharedGroupMissRatio(progs, float64(capacity))
				iv := trace.InterleaveProportional(subTraces, rates, cfg.TraceLen)
				sim := cachesim.SimulateShared(iv, capacity, cfg.TraceLen/4)
				var misses, accesses int64
				for p := range sim.Misses {
					misses += sim.Misses[p]
					accesses += sim.Accesses[p]
				}
				res.SimulatedTime[g] = float64(accesses) + missPenalty*float64(misses)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return CorrelationResult{}, err
	}
	for _, err := range errs {
		if err != nil {
			return CorrelationResult{}, err
		}
	}
	res.Pearson = stats.Pearson(res.Predicted, res.SimulatedTime)
	return res, nil
}

// GranularityPoint is one row of the granularity ablation.
type GranularityPoint struct {
	Units         int
	BlocksPerUnit int64
	// MeanGroupMR is the mean group miss ratio over the sampled groups
	// when the partition is optimized at this granularity but evaluated
	// at the finest one.
	MeanGroupMR float64
	// MeanSolveTime is the average wall time of one DP solve.
	MeanSolveTime time.Duration
}

// GranularityStudy quantifies the paper's §VII-A cost/quality lever: the
// DP is O(P·C²) in the unit count, and the paper picked 8 KB units to
// keep it cheap. For each granularity, each sampled group is optimized at
// that granularity and the resulting allocation is scored on the
// finest-granularity curves. unitCounts must each divide the finest
// count, which must equal cfg.Units.
func GranularityStudy(progs []workload.Program, cfg workload.Config, groups [][]int, unitCounts []int) ([]GranularityPoint, error) {
	if len(groups) == 0 || len(unitCounts) == 0 {
		return nil, fmt.Errorf("experiment: empty granularity study")
	}
	fine := cfg.Units
	var out []GranularityPoint
	for _, units := range unitCounts {
		if units <= 0 || fine%units != 0 {
			return nil, fmt.Errorf("experiment: unit count %d does not divide %d", units, fine)
		}
		factor := fine / units
		blocksPerUnit := cfg.BlocksPerUnit * int64(factor)
		pt := GranularityPoint{Units: units, BlocksPerUnit: blocksPerUnit}
		var totalMR float64
		var totalSolve time.Duration
		for _, members := range groups {
			coarse := make([]mrc.Curve, len(members))
			finest := make([]mrc.Curve, len(members))
			for i, m := range members {
				if m < 0 || m >= len(progs) {
					return nil, fmt.Errorf("experiment: invalid member %d", m)
				}
				coarse[i] = mrc.FromFootprint(progs[m].Name, progs[m].Fp, units, blocksPerUnit, progs[m].Rate)
				coarse[i].Accesses = progs[m].Curve.Accesses
				finest[i] = progs[m].Curve
			}
			start := time.Now()
			sol, err := partition.Optimize(partition.Problem{Curves: coarse, Units: units})
			if err != nil {
				return nil, err
			}
			totalSolve += time.Since(start)
			// Scale the coarse allocation to fine units and score it on
			// the finest curves.
			fineAlloc := make(partition.Allocation, len(sol.Alloc))
			for i, u := range sol.Alloc {
				fineAlloc[i] = u * factor
			}
			totalMR += mrc.GroupMissRatio(finest, fineAlloc)
		}
		pt.MeanGroupMR = totalMR / float64(len(groups))
		pt.MeanSolveTime = totalSolve / time.Duration(len(groups))
		out = append(out, pt)
	}
	return out, nil
}

// PolicyRow is one program × capacity row of the replacement-policy study.
type PolicyRow struct {
	Program  string
	Capacity int
	LRU      float64 // simulated LRU miss ratio (ground truth for HOTL)
	Clock    float64 // simulated CLOCK miss ratio
	Random   float64 // simulated random-replacement miss ratio
	HOTL     float64 // model-predicted miss ratio
}

// PolicyStudy quantifies the §VIII replacement-policy assumption: the
// HOTL model targets exact LRU; CLOCK approximates it and random
// replacement departs from it (mildly on smooth workloads, strongly on
// thrashing loops). Each spec's trace is run through all three simulators
// at each capacity. Cancelling ctx drains the workers and returns
// ctx.Err().
func PolicyStudy(ctx context.Context, specs []workload.Spec, cfg workload.Config, capacities []int) ([]PolicyRow, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(specs) == 0 || len(capacities) == 0 {
		return nil, fmt.Errorf("experiment: empty policy study")
	}
	var rows []PolicyRow
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, s := range specs {
		wg.Add(1)
		go func(i int, s workload.Spec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return
			}
			tr := trace.Generate(s.Build(uint32(cfg.CacheBlocks()), cfg.Seed*0x9e3779b9^uint64(i)), cfg.TraceLen)
			fp := footprint.FromTrace(tr)
			n := float64(len(tr))
			for _, c := range capacities {
				if ctx.Err() != nil {
					return
				}
				row := PolicyRow{Program: s.Name, Capacity: c}
				row.LRU = float64(cachesim.NewLRU(c).Run(tr)) / n
				row.Clock = float64(cachesim.RunPolicy(cachesim.NewClock(c), tr)) / n
				row.Random = float64(cachesim.RunPolicy(cachesim.NewRandom(c, 7), tr)) / n
				row.HOTL = fp.MissRatio(float64(c))
				mu.Lock()
				rows = append(rows, row)
				mu.Unlock()
			}
		}(i, s)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return rows, nil
}
