package experiment

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"partitionshare/internal/workload"
)

// faultCfg is a deliberately tiny geometry: 6 programs × C(6,3) = 20
// groups keeps every fault-model test under a second.
var faultCfg = workload.Config{Units: 32, BlocksPerUnit: 4, TraceLen: 1 << 14, Seed: 1}

var (
	faultOnce  sync.Once
	faultProgs []workload.Program
	faultErr   error
)

func faultSuite(t *testing.T) []workload.Program {
	t.Helper()
	faultOnce.Do(func() {
		faultProgs, faultErr = workload.ProfileAll(nil, workload.Specs()[:6], faultCfg)
	})
	if faultErr != nil {
		t.Fatal(faultErr)
	}
	return faultProgs
}

func runFault(t *testing.T, opts RunOpts) Result {
	t.Helper()
	res, err := Run(nil, faultSuite(t), 3, faultCfg.Units, faultCfg.BlocksPerUnit, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCombinationCount(t *testing.T) {
	for _, tc := range []struct {
		n, k int
		want uint64
	}{
		{16, 4, 1820}, {4, 4, 1}, {5, 0, 1}, {0, 0, 1}, {5, 1, 5},
		{52, 26, 495918532948104}, {62, 31, 465428353255261088},
	} {
		got, err := CombinationCount(tc.n, tc.k)
		if err != nil || got != tc.want {
			t.Errorf("C(%d, %d) = %d, %v; want %d", tc.n, tc.k, got, err, tc.want)
		}
	}
}

// The int-typed product the package used before overflowed silently from
// n ≈ 62 up; the uint64 version must detect it instead.
func TestCombinationCountOverflow(t *testing.T) {
	if _, err := CombinationCount(100, 50); !errors.Is(err, ErrTooManyGroups) {
		t.Errorf("C(100, 50) error = %v, want ErrTooManyGroups", err)
	}
	if _, err := CombinationCount(16, 17); err == nil {
		t.Error("C(16, 17) should error")
	}
	// Countable but far beyond the enumeration cap.
	if _, err := Combinations(40, 20); !errors.Is(err, ErrTooManyGroups) {
		t.Errorf("Combinations(40, 20) error = %v, want ErrTooManyGroups", err)
	}
}

// Worker counts at both bounds (serial, and far beyond GOMAXPROCS) must
// produce the identical result set.
func TestRunWorkerBounds(t *testing.T) {
	want := runFault(t, RunOpts{})
	for _, workers := range []int{1, -5, 10000} {
		got := runFault(t, RunOpts{Workers: workers})
		if !reflect.DeepEqual(got.Groups, want.Groups) {
			t.Fatalf("Workers=%d: results differ from default run", workers)
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	res := runFault(t, RunOpts{CheckpointPath: path, CheckpointEvery: 4})
	ck, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Compatible(6, 3, faultCfg.Units, faultCfg.BlocksPerUnit); err != nil {
		t.Fatal(err)
	}
	if len(ck.Groups) != len(res.Groups) {
		t.Fatalf("checkpoint has %d groups, want %d", len(ck.Groups), len(res.Groups))
	}
	if !reflect.DeepEqual(ck.Groups, res.Groups) {
		t.Fatal("checkpoint groups differ from run results")
	}
}

func TestCheckpointRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := ReadCheckpoint(filepath.Join(dir, "missing.json")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file error = %v, want os.ErrNotExist", err)
	}
	if _, err := ReadCheckpoint(write("garbage.json", "{not json")); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("garbage error = %v, want ErrCheckpointCorrupt", err)
	}
	if _, err := ReadCheckpoint(write("vers.json",
		`{"version":99,"num_programs":6,"group_size":3,"units":32,"blocks_per_unit":4,"groups":[]}`)); !errors.Is(err, ErrCheckpointVersion) {
		t.Errorf("version error = %v, want ErrCheckpointVersion", err)
	}
	if _, err := ReadCheckpoint(write("geom.json",
		`{"version":1,"num_programs":0,"group_size":3,"units":32,"blocks_per_unit":4,"groups":[]}`)); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("geometry error = %v, want ErrCheckpointCorrupt", err)
	}
	if _, err := ReadCheckpoint(write("members.json",
		`{"version":1,"num_programs":6,"group_size":3,"units":32,"blocks_per_unit":4,"groups":[{"Members":[2,1,0]}]}`)); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("member-order error = %v, want ErrCheckpointCorrupt", err)
	}
}

func TestRunRejectsMismatchedCheckpoint(t *testing.T) {
	ck := &Checkpoint{Version: CheckpointVersion, NumPrograms: 9, GroupSize: 3,
		Units: faultCfg.Units, BlocksPerUnit: faultCfg.BlocksPerUnit}
	_, err := Run(nil, faultSuite(t), 3, faultCfg.Units, faultCfg.BlocksPerUnit, RunOpts{Resume: ck})
	if !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("error = %v, want ErrCheckpointMismatch", err)
	}
}

// Resuming from a checkpoint holding only part of the sweep must
// reproduce the uninterrupted run bit for bit — both the raw results and
// the rendered Table I.
func TestResumeReproducesBitIdentical(t *testing.T) {
	full := runFault(t, RunOpts{})
	// A checkpoint as a mid-sweep kill would leave it: an arbitrary
	// half of the groups completed (every second one).
	partial := &Checkpoint{
		Version: CheckpointVersion, NumPrograms: 6, GroupSize: 3,
		Units: faultCfg.Units, BlocksPerUnit: faultCfg.BlocksPerUnit,
	}
	for g := 0; g < len(full.Groups); g += 2 {
		partial.Groups = append(partial.Groups, full.Groups[g])
	}
	resumed := runFault(t, RunOpts{Resume: partial})
	if !reflect.DeepEqual(resumed.Groups, full.Groups) {
		t.Fatal("resumed results differ from the uninterrupted run")
	}
	if a, b := FormatTableI(TableI(full)), FormatTableI(TableI(resumed)); a != b {
		t.Fatalf("Table I differs after resume:\n%s\nvs\n%s", a, b)
	}
}

// A panicking group must surface as a typed GroupError naming the group,
// never crash the process, and (in collect mode) not take the other
// groups down with it.
func TestRunPanicIsolation(t *testing.T) {
	defer func() { testHookEvaluateGroup = nil }()
	poison := []int{0, 1, 2}
	errInjected := errors.New("injected fault")
	testHookEvaluateGroup = func(members []int) {
		if reflect.DeepEqual(members, poison) {
			panic(errInjected)
		}
	}
	progs := faultSuite(t)

	res, err := Run(nil, progs, 3, faultCfg.Units, faultCfg.BlocksPerUnit, RunOpts{})
	if err == nil {
		t.Fatal("expected an error from the poisoned group")
	}
	var ge *GroupError
	if !errors.As(err, &ge) {
		t.Fatalf("error %T does not unwrap to *GroupError: %v", err, err)
	}
	if !reflect.DeepEqual(ge.Members, poison) {
		t.Fatalf("GroupError.Members = %v, want %v", ge.Members, poison)
	}
	if !errors.Is(ge.Cause, errInjected) {
		t.Fatalf("GroupError.Cause = %v, want a chain containing the injected panic error", ge.Cause)
	}
	if want := 20 - 1; len(res.Groups) != want {
		t.Fatalf("collect mode kept %d groups, want %d", len(res.Groups), want)
	}
	for _, gr := range res.Groups {
		if reflect.DeepEqual(gr.Members, poison) {
			t.Fatal("poisoned group present in results")
		}
	}

	// FailFast: the same fault returns the GroupError directly.
	_, err = Run(nil, progs, 3, faultCfg.Units, faultCfg.BlocksPerUnit, RunOpts{FailFast: true, Workers: 1})
	if !errors.As(err, &ge) {
		t.Fatalf("FailFast error %T does not unwrap to *GroupError: %v", err, err)
	}
}

// Cancelling mid-sweep must return context.Canceled, keep the groups
// completed before the cut, flush a loadable checkpoint, and leak no
// goroutines.
func TestRunCancellationMidSweep(t *testing.T) {
	defer func() { testHookEvaluateGroup = nil }()
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired sync.Once
	var hookCalls int
	var mu sync.Mutex
	testHookEvaluateGroup = func([]int) {
		mu.Lock()
		hookCalls++
		n := hookCalls
		mu.Unlock()
		if n >= 3 {
			fired.Do(cancel)
		}
	}
	path := filepath.Join(t.TempDir(), "ckpt.json")
	res, err := Run(ctx, faultSuite(t), 3, faultCfg.Units, faultCfg.BlocksPerUnit,
		RunOpts{Workers: 2, CheckpointPath: path, CheckpointEvery: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if len(res.Groups) != 20 {
		t.Fatalf("partial result has %d group slots, want 20", len(res.Groups))
	}
	ck, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatalf("checkpoint after cancellation: %v", err)
	}
	if len(ck.Groups) == 0 {
		t.Fatal("cancellation flushed an empty checkpoint despite completed groups")
	}

	// No goroutine leaks: the pool and checkpointer must be gone.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, now)
	}
}

// A context cancelled before the sweep starts does no work at all.
func TestRunPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	defer func() { testHookEvaluateGroup = nil }()
	evaluated := false
	testHookEvaluateGroup = func([]int) { evaluated = true }
	_, err := Run(ctx, faultSuite(t), 3, faultCfg.Units, faultCfg.BlocksPerUnit, RunOpts{Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if evaluated {
		t.Fatal("groups were evaluated despite a pre-cancelled context")
	}
}
