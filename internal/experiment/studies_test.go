package experiment

import (
	"testing"
	"time"

	"partitionshare/internal/workload"
)

// The §VIII locality-performance correlation: predicted miss ratio must
// correlate strongly with simulated co-run execution time (paper cites
// r = 0.938 over all 1820 groups; we check a sampled subset at reduced
// scale).
func TestCorrelationStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := workload.TestConfig()
	specs := workload.Specs()
	groups := mustCombinations(t, len(specs), 4)
	// Sample every 60th group for speed: ~30 groups across the range.
	var sample [][]int
	for i := 0; i < len(groups); i += 60 {
		sample = append(sample, groups[i])
	}
	res, err := CorrelationStudy(nil, specs, cfg, sample, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Predicted) != len(sample) || len(res.SimulatedTime) != len(sample) {
		t.Fatalf("lengths %d/%d, want %d", len(res.Predicted), len(res.SimulatedTime), len(sample))
	}
	if res.Pearson < 0.9 {
		t.Errorf("correlation r = %.3f, want >= 0.9 (paper: 0.938)", res.Pearson)
	}
}

func TestCorrelationStudyErrors(t *testing.T) {
	cfg := workload.TestConfig()
	specs := workload.Specs()[:4]
	if _, err := CorrelationStudy(nil, specs, cfg, [][]int{{0, 1}}, 100); err == nil {
		t.Error("single group should error")
	}
	if _, err := CorrelationStudy(nil, specs, cfg, [][]int{{0, 1}, {2, 3}}, 0); err == nil {
		t.Error("zero penalty should error")
	}
	if _, err := CorrelationStudy(nil, specs, cfg, [][]int{{0, 9}, {1, 2}}, 100); err == nil {
		t.Error("invalid member should error")
	}
}

// Coarser granularity must never improve the evaluated solution quality
// and should cut solve time — the paper's §VII-A argument quantified.
func TestGranularityStudy(t *testing.T) {
	res := suite(t)
	cfg := workload.TestConfig()
	groups := mustCombinations(t, len(res.Programs), 4)[:20]
	pts, err := GranularityStudy(res.Programs, cfg, groups, []int{128, 32, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	// Finest first in our list: quality degrades (weakly) as units shrink.
	for i := 1; i < len(pts); i++ {
		if pts[i].MeanGroupMR < pts[i-1].MeanGroupMR-1e-9 {
			t.Errorf("coarser granularity %d units improved quality (%v < %v) — impossible",
				pts[i].Units, pts[i].MeanGroupMR, pts[i-1].MeanGroupMR)
		}
	}
	// And the fine solve costs more than the coarse one.
	if pts[0].MeanSolveTime < pts[2].MeanSolveTime {
		t.Errorf("fine solve (%v) should cost more than coarse (%v)",
			pts[0].MeanSolveTime, pts[2].MeanSolveTime)
	}
	if pts[0].MeanSolveTime <= 0 || pts[0].MeanSolveTime > time.Second {
		t.Errorf("suspicious solve time %v", pts[0].MeanSolveTime)
	}
}

func TestGranularityStudyErrors(t *testing.T) {
	res := suite(t)
	cfg := workload.TestConfig()
	groups := mustCombinations(t, len(res.Programs), 4)[:2]
	if _, err := GranularityStudy(res.Programs, cfg, nil, []int{8}); err == nil {
		t.Error("no groups should error")
	}
	if _, err := GranularityStudy(res.Programs, cfg, groups, []int{100}); err == nil {
		t.Error("non-dividing unit count should error")
	}
	if _, err := GranularityStudy(res.Programs, cfg, [][]int{{0, 99}}, []int{8}); err == nil {
		t.Error("invalid member should error")
	}
}

// The §VIII policy study: CLOCK tracks LRU; HOTL tracks LRU; random
// replacement departs on LRU-hostile programs.
func TestPolicyStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := workload.TestConfig()
	specs := workload.Specs()[:4] // the four streamers/loopers
	caps := []int{int(cfg.CacheBlocks()) / 4, int(cfg.CacheBlocks())}
	rows, err := PolicyStudy(nil, specs, cfg, caps)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(specs)*len(caps) {
		t.Fatalf("got %d rows, want %d", len(rows), len(specs)*len(caps))
	}
	for _, r := range rows {
		if r.LRU < 0 || r.LRU > 1 || r.Clock < 0 || r.Clock > 1 || r.Random < 0 || r.Random > 1 {
			t.Fatalf("out-of-range ratios: %+v", r)
		}
		// CLOCK approximates LRU.
		if d := r.Clock - r.LRU; d > 0.05 || d < -0.05 {
			t.Errorf("%s cap %d: CLOCK %v far from LRU %v", r.Program, r.Capacity, r.Clock, r.LRU)
		}
		// HOTL predicts LRU.
		if d := r.HOTL - r.LRU; d > 0.05 || d < -0.05 {
			t.Errorf("%s cap %d: HOTL %v far from LRU %v", r.Program, r.Capacity, r.HOTL, r.LRU)
		}
	}
}

func TestPolicyStudyErrors(t *testing.T) {
	cfg := workload.TestConfig()
	if _, err := PolicyStudy(nil, nil, cfg, []int{64}); err == nil {
		t.Error("no specs should error")
	}
	if _, err := PolicyStudy(nil, workload.Specs()[:1], cfg, nil); err == nil {
		t.Error("no capacities should error")
	}
}

// Dynamic (per-epoch) repartitioning must beat the static optimum on the
// antiphase suite, and never lose to it — the §VIII caveat quantified.
func TestEpochStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := workload.TestConfig()
	specs := workload.PhasedSpecs()
	phaseLen := cfg.TraceLen / 8
	// {4,5} is a contended pair (0.55C peak each — no static split can
	// cover both); the quads are contended in aggregate; {2,3} fits
	// statically, where dynamic only pays repartition churn.
	groups := [][]int{{2, 3}, {4, 5}, {0, 1, 2, 3}, {4, 5, 6, 7}}
	rows, err := EpochStudy(nil, specs, cfg, groups, phaseLen)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(groups) {
		t.Fatalf("got %d rows", len(rows))
	}
	wins := 0
	for _, r := range rows {
		// Dynamic may lose a little on uncontended groups: every resize
		// evicts the shrunk program's blocks, which must re-warm next
		// phase. Allow that churn as a small absolute term.
		if r.DynamicMR > r.StaticMR*1.02+0.002 {
			t.Errorf("group %v: dynamic (%.4f) worse than static (%.4f)", r.Members, r.DynamicMR, r.StaticMR)
		}
		if r.DynamicMR < r.StaticMR*0.98 {
			wins++
		}
	}
	if wins < 2 {
		t.Errorf("dynamic repartitioning won only %d/4 groups; want the contended ones", wins)
	}
}

func TestEpochStudyErrors(t *testing.T) {
	cfg := workload.TestConfig()
	if _, err := EpochStudy(nil, nil, cfg, [][]int{{0}}, 100); err == nil {
		t.Error("no specs should error")
	}
	if _, err := EpochStudy(nil, workload.PhasedSpecs(), cfg, [][]int{{0, 99}}, cfg.TraceLen/8); err == nil {
		t.Error("invalid member should error")
	}
}
