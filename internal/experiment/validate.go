package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"partitionshare/internal/cachesim"
	"partitionshare/internal/compose"
	"partitionshare/internal/footprint"
	"partitionshare/internal/trace"
	"partitionshare/internal/workload"
)

// PairValidation is one program's predicted-vs-measured miss ratio in one
// co-run pair (§VII-C: the paper validates the natural partition
// assumption on all 190 pairs of 20 programs using hardware counters; here
// a shared-LRU simulation is the ground truth).
type PairValidation struct {
	Program   string
	Partner   string
	Predicted float64
	Measured  float64
}

// Err returns the absolute prediction error.
func (v PairValidation) Err() float64 {
	d := v.Predicted - v.Measured
	if d < 0 {
		return -d
	}
	return d
}

// ValidatePairs generates the suite's traces at the given geometry,
// predicts each pair's co-run miss ratios from solo profiles (Eq. 11), and
// measures them by simulating the shared cache on the rate-proportionally
// interleaved trace. Pairs are processed in parallel; cancelling ctx
// drains the workers and returns ctx.Err(). The returned slice has two
// entries per pair (one per member), 2·C(len(specs),2) in total.
func ValidatePairs(ctx context.Context, specs []workload.Spec, cfg workload.Config) ([]PairValidation, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(specs) < 2 {
		return nil, fmt.Errorf("experiment: need at least 2 programs to validate pairs")
	}
	traces := make([]trace.Trace, len(specs))
	fps := make([]footprint.Footprint, len(specs))
	{
		var wg sync.WaitGroup
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		for i, s := range specs {
			wg.Add(1)
			go func(i int, s workload.Spec) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				if ctx.Err() != nil {
					return
				}
				gen := s.Build(uint32(cfg.CacheBlocks()), cfg.Seed*0x9e3779b9^uint64(i))
				traces[i] = trace.Generate(gen, cfg.TraceLen)
				fps[i] = footprint.FromTrace(traces[i])
			}(i, s)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	pairs, err := Combinations(len(specs), 2)
	if err != nil {
		return nil, err
	}
	out := make([]PairValidation, 2*len(pairs))
	capacity := int(cfg.CacheBlocks())
	var wg sync.WaitGroup
	jobs := make(chan int, len(pairs))
	for pi := range pairs {
		jobs <- pi
	}
	close(jobs)
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pi := range jobs {
				if ctx.Err() != nil {
					return
				}
				i, j := pairs[pi][0], pairs[pi][1]
				progs := []compose.Program{
					{Name: specs[i].Name, Fp: fps[i], Rate: specs[i].Rate},
					{Name: specs[j].Name, Fp: fps[j], Rate: specs[j].Rate},
				}
				pred := compose.SharedMissRatios(progs, float64(capacity))
				iv := trace.InterleaveProportional(
					[]trace.Trace{traces[i], traces[j]},
					[]float64{specs[i].Rate, specs[j].Rate}, cfg.TraceLen*2)
				sim := cachesim.SimulateShared(iv, capacity, cfg.TraceLen/2)
				for k := 0; k < 2; k++ {
					out[2*pi+k] = PairValidation{
						Program:   progs[k].Name,
						Partner:   progs[1-k].Name,
						Predicted: pred[k],
						Measured:  sim.MissRatio(k),
					}
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ValidationSummary aggregates pair-validation errors.
type ValidationSummary struct {
	N          int
	MeanAbsErr float64
	MaxAbsErr  float64
	// WithinTol is the fraction of predictions within tol of the
	// measurement.
	WithinTol float64
}

// SummarizeValidation computes error statistics with the given absolute
// tolerance.
func SummarizeValidation(vs []PairValidation, tol float64) ValidationSummary {
	s := ValidationSummary{N: len(vs)}
	if len(vs) == 0 {
		return s
	}
	within := 0
	for _, v := range vs {
		e := v.Err()
		s.MeanAbsErr += e
		if e > s.MaxAbsErr {
			s.MaxAbsErr = e
		}
		if e <= tol {
			within++
		}
	}
	s.MeanAbsErr /= float64(len(vs))
	s.WithinTol = float64(within) / float64(len(vs))
	return s
}
