package experiment

import (
	"testing"

	"partitionshare/internal/workload"
)

// The natural partition assumption must hold on the synthetic suite: the
// HOTL pair predictions track the simulated shared cache. The paper found
// the prediction "accurate or nearly accurate for all but two" of 380 miss
// ratios; here a handful of programs at reduced scale must stay within a
// small absolute error.
func TestNPAPairValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := workload.TestConfig()
	specs := workload.Specs()[:6] // C(6,2)=15 pairs, 30 predictions
	vs, err := ValidatePairs(nil, specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 30 {
		t.Fatalf("got %d validations, want 30", len(vs))
	}
	sum := SummarizeValidation(vs, 0.01)
	if sum.MeanAbsErr > 0.01 {
		t.Errorf("mean |err| = %.4f, want <= 0.01", sum.MeanAbsErr)
	}
	if sum.WithinTol < 0.8 {
		t.Errorf("only %.0f%% of predictions within 0.01", 100*sum.WithinTol)
	}
	for _, v := range vs {
		if v.Predicted < 0 || v.Predicted > 1 || v.Measured < 0 || v.Measured > 1 {
			t.Fatalf("out-of-range ratios: %+v", v)
		}
		if v.Err() > 0.05 {
			t.Errorf("%s (with %s): predicted %.4f vs measured %.4f",
				v.Program, v.Partner, v.Predicted, v.Measured)
		}
	}
}

func TestValidatePairsErrors(t *testing.T) {
	if _, err := ValidatePairs(nil, workload.Specs()[:1], workload.TestConfig()); err == nil {
		t.Fatal("expected error for fewer than 2 programs")
	}
}

func TestSummarizeValidationEmpty(t *testing.T) {
	s := SummarizeValidation(nil, 0.01)
	if s.N != 0 || s.MeanAbsErr != 0 || s.WithinTol != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestPairValidationErr(t *testing.T) {
	v := PairValidation{Predicted: 0.2, Measured: 0.5}
	if v.Err() != 0.3 {
		t.Fatalf("Err = %v", v.Err())
	}
	v = PairValidation{Predicted: 0.5, Measured: 0.2}
	if v.Err() != 0.3 {
		t.Fatalf("Err = %v", v.Err())
	}
}
