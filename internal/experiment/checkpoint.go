package experiment

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"

	"partitionshare/internal/atomicio"
	"partitionshare/internal/obs"
)

// CheckpointVersion is the current checkpoint format version. Readers
// reject other versions (ErrCheckpointVersion) rather than guessing.
const CheckpointVersion = 1

// checkpointDefaultEvery is the default flush interval in completed
// groups. A flush is O(completed) JSON encoding, so flushing every ~64
// groups keeps the overhead a few percent of the sweep while bounding
// lost work after a kill to under a second of computation.
const checkpointDefaultEvery = 64

// Typed checkpoint errors, testable with errors.Is.
var (
	// ErrCheckpointVersion reports a checkpoint written by an
	// incompatible format version.
	ErrCheckpointVersion = errors.New("experiment: unsupported checkpoint version")
	// ErrCheckpointMismatch reports a checkpoint whose recorded geometry
	// (program count, group size, units, blocks per unit) differs from
	// the resuming run's.
	ErrCheckpointMismatch = errors.New("experiment: checkpoint geometry mismatch")
	// ErrCheckpointCorrupt reports a checkpoint that fails to parse or
	// violates its own invariants.
	ErrCheckpointCorrupt = errors.New("experiment: corrupt checkpoint")
)

// Checkpoint is the crash-recovery snapshot of a partially completed
// sweep: the run geometry plus every completed group's result, in
// lexicographic group order. It is written atomically
// (write-temp+rename), so a file that exists is always internally
// consistent — a kill mid-flush leaves the previous snapshot.
type Checkpoint struct {
	Version       int           `json:"version"`
	NumPrograms   int           `json:"num_programs"`
	GroupSize     int           `json:"group_size"`
	Units         int           `json:"units"`
	BlocksPerUnit int64         `json:"blocks_per_unit"`
	Groups        []GroupResult `json:"groups"`
}

// Compatible reports whether a run with the given geometry can resume
// from this checkpoint; a mismatch wraps ErrCheckpointMismatch.
func (c *Checkpoint) Compatible(numPrograms, groupSize, units int, blocksPerUnit int64) error {
	if c.NumPrograms != numPrograms || c.GroupSize != groupSize ||
		c.Units != units || c.BlocksPerUnit != blocksPerUnit {
		return fmt.Errorf("%w: checkpoint has (programs=%d size=%d units=%d bpu=%d), run has (programs=%d size=%d units=%d bpu=%d)",
			ErrCheckpointMismatch,
			c.NumPrograms, c.GroupSize, c.Units, c.BlocksPerUnit,
			numPrograms, groupSize, units, blocksPerUnit)
	}
	return nil
}

func (c *Checkpoint) validate() error {
	if c.Version != CheckpointVersion {
		return fmt.Errorf("%w: %d (want %d)", ErrCheckpointVersion, c.Version, CheckpointVersion)
	}
	if c.NumPrograms <= 0 || c.GroupSize < 1 || c.GroupSize > c.NumPrograms ||
		c.Units <= 0 || c.BlocksPerUnit <= 0 {
		return fmt.Errorf("%w: invalid geometry (programs=%d size=%d units=%d bpu=%d)",
			ErrCheckpointCorrupt, c.NumPrograms, c.GroupSize, c.Units, c.BlocksPerUnit)
	}
	for _, gr := range c.Groups {
		if len(gr.Members) != c.GroupSize {
			return fmt.Errorf("%w: group %v has %d members, want %d",
				ErrCheckpointCorrupt, gr.Members, len(gr.Members), c.GroupSize)
		}
		for i, m := range gr.Members {
			if m < 0 || m >= c.NumPrograms || (i > 0 && m <= gr.Members[i-1]) {
				return fmt.Errorf("%w: group %v is not a strictly increasing subset of 0..%d",
					ErrCheckpointCorrupt, gr.Members, c.NumPrograms-1)
			}
		}
	}
	return nil
}

// ReadCheckpoint loads and validates a checkpoint file. Decode failures
// wrap ErrCheckpointCorrupt; a version mismatch wraps
// ErrCheckpointVersion.
func ReadCheckpoint(path string) (*Checkpoint, error) {
	// A root span: loads happen at command startup, before any stage
	// context exists.
	_, ts := obs.StartTraceSpan(context.Background(), spanCheckpointLoad, "checkpoint")
	defer ts.End()
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCheckpointCorrupt, path, err)
	}
	if err := c.validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	obs.Enabled().Counter(mCheckpointLoads).Inc()
	ts.Arg("groups", int64(len(c.Groups)))
	obs.Logger().Debug("checkpoint loaded", "path", path, "groups", len(c.Groups))
	return &c, nil
}

// WriteCheckpoint writes the checkpoint atomically (write-temp+rename).
func WriteCheckpoint(path string, c *Checkpoint) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		return enc.Encode(c)
	})
}

// groupKey is a map key identifying a group by its member indices.
func groupKey(members []int) string {
	b := make([]byte, 0, 4*len(members))
	for _, m := range members {
		b = strconv.AppendInt(b, int64(m), 10)
		b = append(b, ',')
	}
	return string(b)
}

// checkpointer serializes completed group results to disk from a single
// goroutine. Workers hand it completed indices over a buffered channel
// (the send follows the result write, so the checkpointer observes fully
// written GroupResults); it owns the done set and flushes a snapshot
// every opts.CheckpointEvery completions and once at finish. A nil
// CheckpointPath collapses it to a no-op.
type checkpointer struct {
	res     *Result
	done    []bool
	path    string
	every   int
	ch      chan int
	errc    chan error
	numProg int
	size    int
	bpu     int64
	// ctx carries the sweep's trace span so flushes render as its
	// children in -trace-events timelines. Never consulted for
	// cancellation: the checkpointer must flush even on a cancelled run.
	ctx context.Context
}

func startCheckpointer(ctx context.Context, res *Result, done []bool, numPrograms, groupSize int, blocksPerUnit int64, opts RunOpts) *checkpointer {
	if opts.CheckpointPath == "" {
		return nil
	}
	every := opts.CheckpointEvery
	if every <= 0 {
		every = checkpointDefaultEvery
	}
	c := &checkpointer{
		res:     res,
		done:    done,
		path:    opts.CheckpointPath,
		every:   every,
		ch:      make(chan int, len(done)),
		errc:    make(chan error, 1),
		numProg: numPrograms,
		size:    groupSize,
		bpu:     blocksPerUnit,
		ctx:     ctx,
	}
	go c.run()
	return c
}

// completed reports group g's result as written and ready to persist.
func (c *checkpointer) completed(g int) {
	if c == nil {
		return
	}
	c.ch <- g
}

// finish waits for the final flush and returns the first write error, if
// any. Call after all workers have exited.
func (c *checkpointer) finish() error {
	if c == nil {
		return nil
	}
	close(c.ch)
	return <-c.errc
}

func (c *checkpointer) run() {
	var firstErr error
	sinceFlush := 0
	for g := range c.ch {
		c.done[g] = true
		sinceFlush++
		if sinceFlush >= c.every {
			if err := c.flush(); err != nil && firstErr == nil {
				firstErr = err
			}
			sinceFlush = 0
		}
	}
	// Final flush: on clean completion and on cancellation alike, so a
	// SIGINT loses at most the groups in flight.
	if err := c.flush(); err != nil && firstErr == nil {
		firstErr = err
	}
	c.errc <- firstErr
}

// flush writes the current snapshot: every done group's result in
// lexicographic group order, which makes checkpoint bytes deterministic
// for a given completion set.
func (c *checkpointer) flush() error {
	_, ts := obs.StartTraceSpan(c.ctx, spanCheckpointFlush, "checkpoint")
	defer ts.End()
	snap := &Checkpoint{
		Version:       CheckpointVersion,
		NumPrograms:   c.numProg,
		GroupSize:     c.size,
		Units:         c.res.Units,
		BlocksPerUnit: c.bpu,
	}
	for g, ok := range c.done {
		if ok {
			snap.Groups = append(snap.Groups, c.res.Groups[g])
		}
	}
	ts.Arg("groups", int64(len(snap.Groups)))
	if err := WriteCheckpoint(c.path, snap); err != nil {
		return err
	}
	obs.Enabled().Counter(mCheckpointFlushes).Inc()
	obs.Logger().Debug("checkpoint flushed", "path", c.path, "groups", len(snap.Groups))
	return nil
}
