package reuse

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"partitionshare/internal/trace"
)

// naiveStackDistances is the O(n^2) reference implementation.
func naiveStackDistances(t trace.Trace) []int64 {
	out := make([]int64, len(t))
	for i, d := range t {
		prev := -1
		for j := i - 1; j >= 0; j-- {
			if t[j] == d {
				prev = j
				break
			}
		}
		if prev < 0 {
			out[i] = ColdMiss
			continue
		}
		seen := map[uint32]struct{}{}
		for j := prev + 1; j <= i; j++ {
			seen[t[j]] = struct{}{}
		}
		out[i] = int64(len(seen))
	}
	return out
}

func randomTrace(seed uint64, n, pool int) trace.Trace {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	t := make(trace.Trace, n)
	for i := range t {
		t[i] = uint32(rng.IntN(pool))
	}
	return t
}

func TestStackDistancesPaperFigure3(t *testing.T) {
	// Figure 3: trace "a a x b b y a a x b b y", reuse distances
	// "- 1 - - 1 - 4 1 4 4 1 4".
	tr := trace.Trace{0, 0, 1, 2, 2, 3, 0, 0, 1, 2, 2, 3}
	want := []int64{ColdMiss, 1, ColdMiss, ColdMiss, 1, ColdMiss, 4, 1, 4, 4, 1, 4}
	got := StackDistances(tr)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("distances = %v, want %v", got, want)
		}
	}
}

func TestStackDistancesMatchNaive(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		tr := randomTrace(seed, 300, int(seed)*3+2)
		got := StackDistances(tr)
		want := naiveStackDistances(tr)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d access %d: got %d, want %d", seed, i, got[i], want[i])
			}
		}
	}
}

func TestStackDistancesLoop(t *testing.T) {
	// A cyclic loop over k blocks: every reuse has distance exactly k.
	k := uint32(7)
	tr := trace.Generate(trace.NewLoop(k, 1), 70)
	dists := StackDistances(tr)
	for i, d := range dists {
		if i < int(k) {
			if d != ColdMiss {
				t.Fatalf("access %d: got %d, want cold", i, d)
			}
		} else if d != int64(k) {
			t.Fatalf("access %d: got %d, want %d", i, d, k)
		}
	}
}

func TestHistogramAndMissRatio(t *testing.T) {
	k := int64(5)
	tr := trace.Generate(trace.NewLoop(uint32(k), 1), 100)
	h := HistogramDistances(StackDistances(tr))
	if h.Cold != k {
		t.Fatalf("cold = %d, want %d", h.Cold, k)
	}
	// Cache of size k-1: every access misses.
	if got := h.MissRatio(k - 1); got != 1.0 {
		t.Errorf("MissRatio(%d) = %v, want 1", k-1, got)
	}
	// Cache of size k: only cold misses.
	if got := h.MissRatio(k); got != float64(k)/100 {
		t.Errorf("MissRatio(%d) = %v, want %v", k, got, float64(k)/100)
	}
}

func TestMissRatioCurveConsistent(t *testing.T) {
	tr := randomTrace(3, 500, 40)
	h := HistogramDistances(StackDistances(tr))
	curve := h.MissRatioCurve(60)
	for c := int64(0); c <= 60; c++ {
		if curve[c] != h.MissRatio(c) {
			t.Fatalf("curve[%d] = %v, want %v", c, curve[c], h.MissRatio(c))
		}
	}
}

func TestMissRatioCurveMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		tr := randomTrace(seed, 400, 30)
		h := HistogramDistances(StackDistances(tr))
		curve := h.MissRatioCurve(40)
		for c := 1; c < len(curve); c++ {
			if curve[c] > curve[c-1] {
				return false
			}
		}
		return curve[0] == 1.0 // size-0 cache misses everything
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCollectReusePairCount(t *testing.T) {
	// n accesses to m distinct data => exactly n-m reuse pairs.
	f := func(seed uint64) bool {
		tr := randomTrace(seed, 300, 25)
		p := Collect(tr)
		return p.Reuse.Total() == p.N-p.M &&
			p.First.Total() == p.M &&
			p.Last.Total() == p.M
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCollectSimple(t *testing.T) {
	// Trace: a b a  (positions 1,2,3). Reuse: a at gap 2. First: a@1, b@2.
	// Last: a@3 => l=1; b@2 => l=2.
	tr := trace.Trace{0, 1, 0}
	p := Collect(tr)
	if p.N != 3 || p.M != 2 {
		t.Fatalf("N,M = %d,%d", p.N, p.M)
	}
	if p.Reuse.Total() != 1 || p.Reuse.Max() != 2 {
		t.Errorf("reuse hist wrong: total %d max %d", p.Reuse.Total(), p.Reuse.Max())
	}
	if p.First.Excess(0) != 3 { // 1+2
		t.Errorf("first excess(0) = %d, want 3", p.First.Excess(0))
	}
	if p.Last.Excess(0) != 3 { // 1+2
		t.Errorf("last excess(0) = %d, want 3", p.Last.Excess(0))
	}
}

func TestCollectPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty trace")
		}
	}()
	Collect(nil)
}

func TestTailSumAgainstBruteForce(t *testing.T) {
	hist := map[int64]int64{1: 3, 4: 2, 7: 1, 100: 5}
	ts := NewTailSum(hist)
	for w := int64(0); w <= 110; w += 3 {
		var excess, cnt int64
		for v, c := range hist {
			if v > w {
				excess += (v - w) * c
				cnt += c
			}
		}
		if got := ts.Excess(w); got != excess {
			t.Errorf("Excess(%d) = %d, want %d", w, got, excess)
		}
		if got := ts.CountGreater(w); got != cnt {
			t.Errorf("CountGreater(%d) = %d, want %d", w, got, cnt)
		}
	}
	if ts.Total() != 11 {
		t.Errorf("Total = %d, want 11", ts.Total())
	}
	if ts.Max() != 100 {
		t.Errorf("Max = %d, want 100", ts.Max())
	}
}

func TestTailSumEmpty(t *testing.T) {
	ts := NewTailSum(nil)
	if ts.Total() != 0 || ts.Excess(0) != 0 || ts.CountGreater(0) != 0 || ts.Max() != 0 {
		t.Fatal("empty TailSum should answer zeros")
	}
}

func TestTailSumSkipsZeroCounts(t *testing.T) {
	ts := NewTailSum(map[int64]int64{5: 0, 3: 2})
	if ts.Total() != 2 || ts.Max() != 3 {
		t.Fatalf("zero-count entry not skipped: total %d max %d", ts.Total(), ts.Max())
	}
}

func TestTailSumPanics(t *testing.T) {
	cases := []map[int64]int64{
		{0: 1},  // non-positive value
		{-3: 1}, // negative value
		{2: -1}, // negative count
	}
	for i, h := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			NewTailSum(h)
		}()
	}
}

func TestHistogramDistancesPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid distance")
		}
	}()
	HistogramDistances([]int64{0})
}

func BenchmarkStackDistances(b *testing.B) {
	tr := randomTrace(1, 100000, 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StackDistances(tr)
	}
}

func BenchmarkCollect(b *testing.B) {
	tr := randomTrace(1, 100000, 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Collect(tr)
	}
}
