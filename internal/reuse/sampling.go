package reuse

import (
	"fmt"
	"sort"

	"partitionshare/internal/trace"
)

// CollectSampled builds an approximate reuse Profile by spatial (datum)
// sampling: only data whose hash falls under the sampling rate are
// tracked, and the resulting histogram counts are scaled up by the
// inverse rate. Because a datum's reuse pairs are kept or dropped as a
// unit, the sampled reuse-time histogram is an unbiased estimate of the
// full one.
//
// The rate is snapped to 1/R for the nearest positive integer R, and all
// counts are multiplied by exactly R: integer scaling introduces no
// rounding at all, so the value identity Σv·count = m(n+1) — which pins
// the small-window footprint to fp(w) ≈ w — survives sampling exactly
// for the sampled data. (Any fractional re-apportionment of counts
// systematically distorts that identity.)
//
// This stands in for the paper's adaptive bursty footprint profiling
// (§VII-A: full-trace analysis costs a 23× slowdown; Wang et al.'s
// sampling takes 0.09 s per program). A rate of 0.05–0.2 typically keeps
// the derived miss-ratio curve within a few percent of the full-trace
// curve; see the accuracy tests and benchmarks.
func CollectSampled(t trace.Trace, rate float64, seed uint64) Profile {
	if len(t) == 0 {
		panic("reuse: cannot profile an empty trace")
	}
	if rate <= 0 || rate > 1 {
		panic(fmt.Sprintf("reuse: sampling rate %v outside (0, 1]", rate))
	}
	r := int64(1/rate + 0.5)
	if r < 1 {
		r = 1
	}
	if r == 1 {
		return Collect(t)
	}
	// Keep a datum iff the top 53 hash bits fall under 2^53/R.
	threshold := (uint64(1) << 53) / uint64(r)
	// Pre-mix the seed so different seeds select genuinely different
	// datum subsets even when IDs are small consecutive integers.
	seedMix := hash64(seed)
	n := int64(len(t))
	lastPos := make(map[uint32]int64, 256)
	reuseHist := make(map[int64]int64)
	firstHist := make(map[int64]int64)
	for i, d := range t {
		if hash64(uint64(d)^seedMix)>>11 >= threshold {
			continue
		}
		pos := int64(i) + 1
		if p, ok := lastPos[d]; ok {
			reuseHist[pos-p]++
		} else {
			firstHist[pos]++
		}
		lastPos[d] = pos
	}
	if len(lastPos) == 0 {
		// Degenerate sample: fall back to tracking the first datum so the
		// profile stays structurally valid.
		return Collect(t[:1])
	}
	lastHist := make(map[int64]int64)
	for _, p := range lastPos {
		lastHist[n-p+1]++
	}
	scale := func(h map[int64]int64) map[int64]int64 {
		out := make(map[int64]int64, len(h))
		for v, c := range h {
			out[v] = c * r
		}
		return out
	}
	m := int64(len(lastPos)) * r
	if m > n {
		m = n
	}
	// A heavy sample can push the scaled pair total slightly past n−m.
	// Deliberately do NOT trim it back: any reshaping of the counts
	// breaks the value identity (Σv·count = m(n+1)) and distorts
	// small-window footprints far more than a percent-level count
	// overshoot ever could.
	sReuse := scale(reuseHist)
	sFirst := retotal(scale(firstHist), m)
	sLast := retotal(scale(lastHist), m)
	return Profile{
		N:     n,
		M:     m,
		Reuse: NewTailSum(sReuse),
		First: NewTailSum(sFirst),
		Last:  NewTailSum(sLast),
	}
}

func total(h map[int64]int64) int64 {
	var t int64
	for _, c := range h {
		t += c
	}
	return t
}

// retotal scales bucket counts proportionally so they sum exactly to
// want, using largest-remainder apportionment so no bucket is off by more
// than one count — dumping the rounding remainder anywhere in particular
// would visibly distort the footprint's value mass.
func retotal(h map[int64]int64, want int64) map[int64]int64 {
	have := total(h)
	if have == want {
		return h
	}
	if want <= 0 {
		return map[int64]int64{}
	}
	if have == 0 {
		return map[int64]int64{1: want}
	}
	type bucket struct {
		v    int64
		frac int64 // remainder of c*want/have, in units of 1/have
	}
	out := make(map[int64]int64, len(h))
	rem := make([]bucket, 0, len(h))
	var acc int64
	for v, c := range h {
		q, r := c*want/have, (c*want)%have
		if q > 0 {
			out[v] = q
		}
		acc += q
		if r > 0 {
			rem = append(rem, bucket{v, r})
		}
	}
	left := want - acc // in [0, len(rem))
	sort.Slice(rem, func(i, j int) bool {
		if rem[i].frac != rem[j].frac {
			return rem[i].frac > rem[j].frac
		}
		return rem[i].v < rem[j].v
	})
	for i := 0; i < len(rem) && left > 0; i++ {
		out[rem[i].v]++
		left--
	}
	// left can remain positive only in degenerate cases (want far above
	// have with few buckets); spread the rest round-robin.
	for i := 0; left > 0 && len(rem) > 0; i = (i + 1) % len(rem) {
		out[rem[i].v]++
		left--
	}
	if left > 0 {
		out[1] += left
	}
	return out
}

// hash64 is SplitMix64, a fast high-quality 64-bit mixer.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
