package reuse

import (
	"context"
	"errors"
	"math/rand/v2"
	"runtime"
	"testing"
	"time"
)

func TestCollectParallelEmptyTrace(t *testing.T) {
	if _, err := CollectParallel(nil, nil, 4); !errors.Is(err, ErrEmptyTrace) {
		t.Fatalf("error = %v, want ErrEmptyTrace", err)
	}
}

// A pre-cancelled context must abort the sharded scan with
// context.Canceled and leave no goroutines behind.
func TestCollectParallelCancelled(t *testing.T) {
	before := runtime.NumGoroutine()
	rng := rand.New(rand.NewPCG(1, 2))
	tr := randTrace(rng, 4*minShardLen)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CollectParallel(ctx, tr, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, now)
	}
}

// With a live (never-cancelled) context the parallel scan must still be
// bit-identical to the reference — the cancellation machinery may not
// perturb the merge.
func TestCollectParallelWithContextBitExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	tr := randTrace(rng, 3*minShardLen)
	got, err := CollectParallel(context.Background(), tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	profilesEqual(t, "ctx", got, CollectReference(tr))
}

func TestProfileValidate(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	p := Collect(randTrace(rng, 2000))
	if err := p.Validate(); err != nil {
		t.Fatalf("collected profile fails Validate: %v", err)
	}
	bad := p
	bad.M = p.N + 1
	if err := bad.Validate(); !errors.Is(err, ErrInvalidProfile) {
		t.Fatalf("M > N error = %v, want ErrInvalidProfile", err)
	}
	bad = p
	bad.N = 0
	if err := bad.Validate(); !errors.Is(err, ErrInvalidProfile) {
		t.Fatalf("N = 0 error = %v, want ErrInvalidProfile", err)
	}
}
