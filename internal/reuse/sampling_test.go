package reuse

import (
	"math"
	"testing"

	"partitionshare/internal/trace"
)

func TestCollectSampledRateOneMatchesFull(t *testing.T) {
	tr := randomTrace(3, 5000, 200)
	full := Collect(tr)
	sampled := CollectSampled(tr, 1.0, 7)
	if sampled.N != full.N || sampled.M != full.M {
		t.Fatalf("rate 1: n/m = %d/%d, want %d/%d", sampled.N, sampled.M, full.N, full.M)
	}
	if sampled.Reuse.Total() != full.Reuse.Total() {
		t.Errorf("reuse totals differ: %d vs %d", sampled.Reuse.Total(), full.Reuse.Total())
	}
	for w := int64(1); w < 5000; w += 97 {
		if sampled.Reuse.Excess(w) != full.Reuse.Excess(w) {
			t.Fatalf("excess(%d) differs", w)
		}
	}
}

func TestCollectSampledInvariants(t *testing.T) {
	tr := randomTrace(5, 20000, 800)
	for _, rate := range []float64{0.05, 0.1, 0.3, 0.7} {
		p := CollectSampled(tr, rate, 11)
		if p.N != int64(len(tr)) {
			t.Fatalf("rate %v: N = %d", rate, p.N)
		}
		// Counts are scaled uniformly (deliberately not rebalanced), so
		// the pair total matches the trace's pair budget only within
		// sampling noise.
		if got := p.Reuse.Total(); math.Abs(float64(got)-float64(p.N-p.M)) > 0.1*float64(p.N-p.M) {
			t.Errorf("rate %v: reuse total %d far from n-m %d", rate, got, p.N-p.M)
		}
		if p.First.Total() != p.M || p.Last.Total() != p.M {
			t.Errorf("rate %v: first/last totals %d/%d != m %d", rate, p.First.Total(), p.Last.Total(), p.M)
		}
		// The value identity that pins small-window footprints:
		// Σ v·count across the three histograms ≈ m(n+1).
		sum := p.Reuse.Excess(0) + p.First.Excess(0) + p.Last.Excess(0)
		want := float64(p.M) * float64(p.N+1)
		if rel := (float64(sum) - want) / want; rel > 0.02 || rel < -0.02 {
			t.Errorf("rate %v: value identity off by %.2f%%", rate, rel*100)
		}
	}
}

func TestCollectSampledEstimatesM(t *testing.T) {
	tr := randomTrace(9, 30000, 1000)
	full := Collect(tr)
	p := CollectSampled(tr, 0.2, 13)
	rel := math.Abs(float64(p.M-full.M)) / float64(full.M)
	if rel > 0.15 {
		t.Errorf("sampled m = %d vs true %d (%.0f%% off)", p.M, full.M, rel*100)
	}
}

func TestCollectSampledDegenerate(t *testing.T) {
	// A single-datum trace at a tiny rate may sample nothing; the
	// fallback must still produce a valid profile.
	tr := make(trace.Trace, 100)
	p := CollectSampled(tr, 0.0001, 1)
	if p.N <= 0 || p.M <= 0 {
		t.Fatalf("degenerate profile: %+v", p)
	}
}

func TestCollectSampledPanics(t *testing.T) {
	tr := trace.Trace{0, 1}
	for i, f := range []func(){
		func() { CollectSampled(nil, 0.5, 1) },
		func() { CollectSampled(tr, 0, 1) },
		func() { CollectSampled(tr, 1.5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestRetotal(t *testing.T) {
	h := map[int64]int64{1: 10, 5: 20, 9: 30}
	out := retotal(h, 90)
	if total(out) != 90 {
		t.Fatalf("retotal sum = %d, want 90", total(out))
	}
	out = retotal(h, 60)
	if total(out) != 60 {
		t.Fatalf("retotal (same) sum = %d", total(out))
	}
	out = retotal(map[int64]int64{}, 5)
	if total(out) != 5 {
		t.Fatalf("retotal from empty = %d", total(out))
	}
	if len(retotal(h, 0)) != 0 {
		t.Fatal("retotal to zero should be empty")
	}
}

func BenchmarkCollectFull(b *testing.B) {
	tr := randomTrace(1, 1<<20, 1<<15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Collect(tr)
	}
}

func BenchmarkCollectSampled10(b *testing.B) {
	tr := randomTrace(1, 1<<20, 1<<15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CollectSampled(tr, 0.1, 3)
	}
}
