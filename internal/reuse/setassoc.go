package reuse

import (
	"fmt"
	"math"
)

// SetAssocMissRatio estimates the miss ratio of a set-associative LRU
// cache (sets × ways) from the fully-associative stack-distance histogram,
// using Smith's statistical model (paper §VIII, citing Smith 1976): under
// random block-to-set mapping, an access with stack distance d hits iff
// fewer than `ways` of its d−1 intervening distinct blocks fall in its own
// set, a Binomial(d−1, 1/sets) tail event.
//
// The fully-associative curve is recovered exactly at sets = 1.
func SetAssocMissRatio(h DistanceHistogram, sets, ways int) float64 {
	if sets <= 0 || ways <= 0 {
		panic(fmt.Sprintf("reuse: invalid geometry sets=%d ways=%d", sets, ways))
	}
	if h.N == 0 {
		return 0
	}
	p := 1.0 / float64(sets)
	q := 1 - p
	misses := float64(h.Cold)
	for d := int64(1); d < int64(len(h.Counts)); d++ {
		cnt := h.Counts[d]
		if cnt == 0 {
			continue
		}
		misses += float64(cnt) * (1 - binomialCDF(d-1, p, q, ways-1))
	}
	return misses / float64(h.N)
}

// binomialCDF returns P(X <= kMax) for X ~ Binomial(n, p), computed by
// iterating terms from k = 0. Underflow of the first term is handled in
// log space.
func binomialCDF(n int64, p, q float64, kMax int) float64 {
	if n <= int64(kMax) {
		return 1
	}
	if p == 1 {
		return 0
	}
	// t0 = q^n via logs to survive large n.
	logT := float64(n) * math.Log(q)
	sum := 0.0
	t := math.Exp(logT)
	for k := 0; ; k++ {
		sum += t
		if k == kMax {
			break
		}
		// t_{k+1} = t_k * (n-k)/(k+1) * p/q
		t *= float64(n-int64(k)) / float64(k+1) * p / q
	}
	if sum > 1 {
		return 1
	}
	return sum
}
