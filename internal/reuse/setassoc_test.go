package reuse

import (
	"math"
	"testing"

	"partitionshare/internal/trace"
)

func TestSetAssocDegeneratesToFullyAssoc(t *testing.T) {
	tr := randomTrace(3, 5000, 300)
	h := HistogramDistances(StackDistances(tr))
	for _, ways := range []int{4, 16, 64} {
		model := SetAssocMissRatio(h, 1, ways)
		exact := h.MissRatio(int64(ways))
		if math.Abs(model-exact) > 1e-9 {
			t.Errorf("sets=1 ways=%d: model %v vs exact %v", ways, model, exact)
		}
	}
}

func TestSetAssocNearFullyAssocAtHighWays(t *testing.T) {
	// At equal capacity the model tracks the fully-associative curve,
	// approaching it as associativity grows. (It is not bounded below by
	// it: under random mapping a far reuse can luckily find its set
	// under-subscribed, so low-associativity estimates can dip slightly
	// under the stack curve as well as above it.)
	tr := randomTrace(5, 8000, 500)
	h := HistogramDistances(StackDistances(tr))
	for _, g := range []struct{ sets, ways int }{{2, 32}, {8, 8}, {32, 2}, {64, 1}} {
		model := SetAssocMissRatio(h, g.sets, g.ways)
		fa := h.MissRatio(int64(g.sets * g.ways))
		if model > 1 || model < 0 {
			t.Errorf("%dx%d: model %v out of range", g.sets, g.ways, model)
		}
		if math.Abs(model-fa) > 0.1 {
			t.Errorf("%dx%d: model %v far from fully-assoc %v", g.sets, g.ways, model, fa)
		}
	}
	// High associativity: conflict effects vanish.
	m := SetAssocMissRatio(h, 2, 128)
	fa := h.MissRatio(256)
	if math.Abs(m-fa) > 0.01 {
		t.Errorf("2x128: model %v should be close to fully-assoc %v", m, fa)
	}
}

func TestSetAssocMoreWaysNeverWorse(t *testing.T) {
	tr := randomTrace(7, 8000, 400)
	h := HistogramDistances(StackDistances(tr))
	prev := 1.0
	for _, ways := range []int{1, 2, 4, 8, 16} {
		mr := SetAssocMissRatio(h, 16, ways)
		if mr > prev+1e-12 {
			t.Errorf("16 sets: mr rose from %v to %v at %d ways", prev, mr, ways)
		}
		prev = mr
	}
}

// The model must track an actual set-associative simulation on random
// traces (where the random-mapping assumption holds).
func TestSetAssocModelMatchesSimulation(t *testing.T) {
	tr := randomTrace(11, 40000, 600)
	h := HistogramDistances(StackDistances(tr))
	for _, g := range []struct{ sets, ways int }{{16, 8}, {32, 8}, {64, 4}} {
		model := SetAssocMissRatio(h, g.sets, g.ways)
		sim := trace.Trace(tr)
		c := 0.0
		{
			cache := newSetAssocForTest(g.sets, g.ways)
			var misses int64
			for _, d := range sim {
				if !cache.access(d) {
					misses++
				}
			}
			c = float64(misses) / float64(len(sim))
		}
		if math.Abs(model-c) > 0.02 {
			t.Errorf("%dx%d: model %v vs simulated %v", g.sets, g.ways, model, c)
		}
	}
}

// newSetAssocForTest is a minimal local set-associative LRU (a copy of the
// cachesim logic; importing cachesim here would create an import cycle in
// spirit — reuse is below cachesim in the layering).
type testSetAssoc struct {
	sets [][]uint32
	ways int
}

func newSetAssocForTest(sets, ways int) *testSetAssoc {
	return &testSetAssoc{sets: make([][]uint32, sets), ways: ways}
}

func (c *testSetAssoc) access(d uint32) bool {
	s := d % uint32(len(c.sets))
	set := c.sets[s]
	for i, b := range set {
		if b == d {
			copy(set[1:i+1], set[:i])
			set[0] = d
			return true
		}
	}
	if len(set) < c.ways {
		set = append(set, 0)
	}
	copy(set[1:], set)
	set[0] = d
	c.sets[s] = set
	return false
}

func TestSetAssocPanicsOnBadGeometry(t *testing.T) {
	h := HistogramDistances(StackDistances(randomTrace(1, 100, 10)))
	for i, f := range []func(){
		func() { SetAssocMissRatio(h, 0, 4) },
		func() { SetAssocMissRatio(h, 4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestSetAssocEmptyHistogram(t *testing.T) {
	if got := SetAssocMissRatio(DistanceHistogram{}, 4, 4); got != 0 {
		t.Fatalf("empty histogram mr = %v", got)
	}
}

func TestBinomialCDF(t *testing.T) {
	// Binomial(4, 0.5): P(X<=1) = (1+4)/16 = 0.3125.
	if got := binomialCDF(4, 0.5, 0.5, 1); math.Abs(got-0.3125) > 1e-12 {
		t.Errorf("CDF = %v, want 0.3125", got)
	}
	// n <= kMax: certain.
	if got := binomialCDF(3, 0.5, 0.5, 5); got != 1 {
		t.Errorf("CDF = %v, want 1", got)
	}
	// Huge n must not underflow to NaN.
	if got := binomialCDF(1<<40, 1.0/1024, 1023.0/1024.0, 8); math.IsNaN(got) || got < 0 || got > 1 {
		t.Errorf("CDF = %v for huge n", got)
	}
}
