// Package reuse measures the time-based and distance-based reuse metrics of
// a memory trace: the reuse-time histogram that drives the HOTL footprint
// formula (paper §III), and exact LRU stack distances (reuse distances) that
// give the ground-truth miss-ratio curve of a fully-associative LRU cache.
package reuse

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"partitionshare/internal/trace"
)

// ErrEmptyTrace reports a profiling request over a trace with no accesses —
// reachable from user data (an empty or blank trace file), so it is an
// error, not a panic.
var ErrEmptyTrace = errors.New("reuse: empty trace")

// ErrInvalidProfile reports a Profile whose histograms violate the HOTL
// invariants; every Validate failure wraps it.
var ErrInvalidProfile = errors.New("reuse: invalid profile")

// TailSum answers queries of the form Q(w) = Σ_v max(0, v-w)·count(v) and
// N(w) = Σ_{v>w} count(v) over a multiset of positive integer values, in
// O(log k) per query after O(k log k) construction. The HOTL footprint
// formula is three such queries: over reuse times, first-access times, and
// reverse last-access times.
type TailSum struct {
	values []int64 // sorted ascending, unique
	counts []int64 // counts[i] = multiplicity of values[i]
	sufCnt []int64 // sufCnt[i] = Σ_{j>=i} counts[j]
	sufSum []int64 // sufSum[i] = Σ_{j>=i} values[j]*counts[j]
}

// NewTailSum builds a TailSum from a value→count histogram.
func NewTailSum(hist map[int64]int64) TailSum {
	ts := TailSum{}
	ts.values = make([]int64, 0, len(hist))
	for v, c := range hist {
		if c == 0 {
			continue
		}
		if v <= 0 {
			panic(fmt.Sprintf("reuse: TailSum values must be positive, got %d", v))
		}
		if c < 0 {
			panic(fmt.Sprintf("reuse: negative count %d for value %d", c, v))
		}
		ts.values = append(ts.values, v)
	}
	sort.Slice(ts.values, func(i, j int) bool { return ts.values[i] < ts.values[j] })
	ts.counts = make([]int64, len(ts.values))
	for i, v := range ts.values {
		ts.counts[i] = hist[v]
	}
	ts.buildSuffixes()
	return ts
}

// newTailSumDense builds a TailSum from a dense histogram indexed by value:
// hist[v] is the multiplicity of value v. Index 0 must hold count 0 (all
// TailSum values are positive). A dense scan yields values in ascending
// order directly, so the result is field-for-field identical to
// NewTailSum over the equivalent map — the suffix sums see the same values
// and counts in the same order.
func newTailSumDense(hist []int32) TailSum {
	if len(hist) > 0 && hist[0] != 0 {
		panic(fmt.Sprintf("reuse: TailSum values must be positive, got 0 with count %d", hist[0]))
	}
	k := 0
	for _, c := range hist {
		if c != 0 {
			k++
		}
	}
	ts := TailSum{
		values: make([]int64, 0, k),
		counts: make([]int64, 0, k),
	}
	for v, c := range hist {
		if c == 0 {
			continue
		}
		ts.values = append(ts.values, int64(v))
		ts.counts = append(ts.counts, int64(c))
	}
	ts.buildSuffixes()
	return ts
}

func (ts *TailSum) buildSuffixes() {
	ts.sufCnt = make([]int64, len(ts.values)+1)
	ts.sufSum = make([]int64, len(ts.values)+1)
	for i := len(ts.values) - 1; i >= 0; i-- {
		ts.sufCnt[i] = ts.sufCnt[i+1] + ts.counts[i]
		ts.sufSum[i] = ts.sufSum[i+1] + ts.values[i]*ts.counts[i]
	}
}

// Total returns the total multiplicity of the multiset.
func (ts TailSum) Total() int64 {
	if len(ts.sufCnt) == 0 {
		return 0
	}
	return ts.sufCnt[0]
}

// Excess returns Σ_v max(0, v-w)·count(v).
func (ts TailSum) Excess(w int64) int64 {
	i := sort.Search(len(ts.values), func(i int) bool { return ts.values[i] > w })
	return ts.sufSum[i] - w*ts.sufCnt[i]
}

// CountGreater returns Σ_{v>w} count(v).
func (ts TailSum) CountGreater(w int64) int64 {
	i := sort.Search(len(ts.values), func(i int) bool { return ts.values[i] > w })
	return ts.sufCnt[i]
}

// Each calls fn for every (value, count) pair in ascending value order.
// It is the export half of NewTailSum, used to serialize profiles.
func (ts TailSum) Each(fn func(value, count int64)) {
	for i, v := range ts.values {
		fn(v, ts.counts[i])
	}
}

// Len returns the number of distinct values.
func (ts TailSum) Len() int { return len(ts.values) }

// Max returns the largest value in the multiset, or 0 if empty.
func (ts TailSum) Max() int64 {
	if len(ts.values) == 0 {
		return 0
	}
	return ts.values[len(ts.values)-1]
}

// Profile holds the per-trace reuse statistics the HOTL theory consumes.
type Profile struct {
	N int64 // trace length
	M int64 // number of distinct data

	// Reuse is the histogram of reuse times. The reuse time of a pair of
	// consecutive accesses to the same datum at positions p < q (1-based)
	// is q-p, the time gap. A trace with n accesses to m distinct data
	// has exactly n-m reuse pairs.
	Reuse TailSum
	// First is the histogram of first-access times f_k (1-based position
	// of each datum's first access).
	First TailSum
	// Last is the histogram of reverse last-access times l_k = n-p+1
	// where p is the datum's last access position.
	Last TailSum
}

// Validate checks the structural invariants every scan-produced Profile
// satisfies, so profiles arriving from outside (deserialized files, remote
// callers) can be rejected with a typed error instead of corrupting the
// footprint math downstream. All failures wrap ErrInvalidProfile.
//
// Invariants: n > 0 accesses to m ∈ [1, n] distinct data; reuse times lie
// in [1, n−1] and first/last access times in [1, n]; the first- and
// last-access histograms each hold exactly one entry per datum. The
// reuse-pair total is exactly n−m for full-trace profiles; sampled profiles
// (CollectSampled) scale counts uniformly and may land a few percent off in
// either direction, so up to 10% slack over n−m is allowed.
func (p Profile) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrInvalidProfile, fmt.Sprintf(format, args...))
	}
	if p.N <= 0 {
		return fail("non-positive access count n=%d", p.N)
	}
	if p.M <= 0 || p.M > p.N {
		return fail("distinct-data count m=%d out of range [1, n=%d]", p.M, p.N)
	}
	if v := p.Reuse.Max(); v >= p.N {
		return fail("reuse time %d >= trace length %d", v, p.N)
	}
	if v := p.First.Max(); v > p.N {
		return fail("first-access time %d > trace length %d", v, p.N)
	}
	if v := p.Last.Max(); v > p.N {
		return fail("last-access time %d > trace length %d", v, p.N)
	}
	if got := p.First.Total(); got != p.M {
		return fail("first-access histogram total %d, want m = %d", got, p.M)
	}
	if got := p.Last.Total(); got != p.M {
		return fail("last-access histogram total %d, want m = %d", got, p.M)
	}
	nm := p.N - p.M
	if got := p.Reuse.Total(); got > nm+nm/10+1 {
		return fail("reuse histogram total %d far exceeds n-m = %d", got, nm)
	}
	return nil
}

// Collect scans the trace once and builds its reuse Profile. It panics on
// an empty trace.
//
// The scan is hash-free: every quantity it histograms is bounded — reuse,
// first-access, and last-access times by the trace length, datum IDs by
// uint32 — so the histograms are dense count slices indexed by value and
// the per-datum last-position table is a two-level paged array (posTable)
// instead of a map. The resulting TailSums are field-for-field identical
// to the map-based reference implementation (CollectReference), which
// remains the oracle in the differential tests and the fallback for traces
// too long for 32-bit positions.
func Collect(t trace.Trace) Profile {
	if len(t) == 0 {
		panic("reuse: cannot profile an empty trace")
	}
	if int64(len(t)) >= math.MaxInt32 {
		return CollectReference(t)
	}
	n := len(t)
	var maxAddr uint32
	for _, d := range t {
		if d > maxAddr {
			maxAddr = d
		}
	}
	pt := newPosTable(maxAddr)
	reuseHist := make([]int32, n+1)
	firstHist := make([]int32, n+1)
	m := 0
	for i, d := range t {
		pos := int32(i) + 1
		pg := pt.pages[d>>posPageBits]
		if pg == nil {
			pg = pt.page(d >> posPageBits)
		}
		prev := pg[d&posPageMask]
		pg[d&posPageMask] = pos
		if prev != 0 {
			reuseHist[pos-prev]++
		} else {
			firstHist[pos]++
			m++
		}
	}
	lastHist := make([]int32, n+1)
	pt.each(func(_ uint32, p int32) {
		lastHist[int32(n)-p+1]++
	})
	return Profile{
		N:     int64(n),
		M:     int64(m),
		Reuse: newTailSumDense(reuseHist),
		First: newTailSumDense(firstHist),
		Last:  newTailSumDense(lastHist),
	}
}

// posTable maps uint32 datum IDs to 1-based access positions through a
// two-level paged array: O(1) hash-free lookup, with memory proportional to
// the ID pages actually touched (region-based traces touch contiguous IDs,
// so pages fill densely). Position 0 means "never seen".
type posTable struct {
	pages [][]int32
}

const (
	posPageBits = 14
	posPageSize = 1 << posPageBits
	posPageMask = posPageSize - 1
)

func newPosTable(maxAddr uint32) *posTable {
	return &posTable{pages: make([][]int32, (maxAddr>>posPageBits)+1)}
}

// page materializes page pi.
func (pt *posTable) page(pi uint32) []int32 {
	pg := make([]int32, posPageSize)
	pt.pages[pi] = pg
	return pg
}

// set records datum d at position pos and returns the previous position
// (0 if unseen).
func (pt *posTable) set(d uint32, pos int32) int32 {
	pg := pt.pages[d>>posPageBits]
	if pg == nil {
		pg = pt.page(d >> posPageBits)
	}
	prev := pg[d&posPageMask]
	pg[d&posPageMask] = pos
	return prev
}

// get returns datum d's recorded position (0 if unseen).
func (pt *posTable) get(d uint32) int32 {
	pg := pt.pages[d>>posPageBits]
	if pg == nil {
		return 0
	}
	return pg[d&posPageMask]
}

// each calls fn for every datum with a recorded position.
func (pt *posTable) each(fn func(d uint32, pos int32)) {
	for pi, pg := range pt.pages {
		if pg == nil {
			continue
		}
		base := uint32(pi) << posPageBits
		for off, p := range pg {
			if p != 0 {
				fn(base|uint32(off), p)
			}
		}
	}
}
