// Package reuse measures the time-based and distance-based reuse metrics of
// a memory trace: the reuse-time histogram that drives the HOTL footprint
// formula (paper §III), and exact LRU stack distances (reuse distances) that
// give the ground-truth miss-ratio curve of a fully-associative LRU cache.
package reuse

import (
	"fmt"
	"sort"

	"partitionshare/internal/trace"
)

// TailSum answers queries of the form Q(w) = Σ_v max(0, v-w)·count(v) and
// N(w) = Σ_{v>w} count(v) over a multiset of positive integer values, in
// O(log k) per query after O(k log k) construction. The HOTL footprint
// formula is three such queries: over reuse times, first-access times, and
// reverse last-access times.
type TailSum struct {
	values []int64 // sorted ascending, unique
	counts []int64 // counts[i] = multiplicity of values[i]
	sufCnt []int64 // sufCnt[i] = Σ_{j>=i} counts[j]
	sufSum []int64 // sufSum[i] = Σ_{j>=i} values[j]*counts[j]
}

// NewTailSum builds a TailSum from a value→count histogram.
func NewTailSum(hist map[int64]int64) TailSum {
	ts := TailSum{}
	ts.values = make([]int64, 0, len(hist))
	for v, c := range hist {
		if c == 0 {
			continue
		}
		if v <= 0 {
			panic(fmt.Sprintf("reuse: TailSum values must be positive, got %d", v))
		}
		if c < 0 {
			panic(fmt.Sprintf("reuse: negative count %d for value %d", c, v))
		}
		ts.values = append(ts.values, v)
	}
	sort.Slice(ts.values, func(i, j int) bool { return ts.values[i] < ts.values[j] })
	ts.counts = make([]int64, len(ts.values))
	for i, v := range ts.values {
		ts.counts[i] = hist[v]
	}
	ts.sufCnt = make([]int64, len(ts.values)+1)
	ts.sufSum = make([]int64, len(ts.values)+1)
	for i := len(ts.values) - 1; i >= 0; i-- {
		ts.sufCnt[i] = ts.sufCnt[i+1] + ts.counts[i]
		ts.sufSum[i] = ts.sufSum[i+1] + ts.values[i]*ts.counts[i]
	}
	return ts
}

// Total returns the total multiplicity of the multiset.
func (ts TailSum) Total() int64 {
	if len(ts.sufCnt) == 0 {
		return 0
	}
	return ts.sufCnt[0]
}

// Excess returns Σ_v max(0, v-w)·count(v).
func (ts TailSum) Excess(w int64) int64 {
	i := sort.Search(len(ts.values), func(i int) bool { return ts.values[i] > w })
	return ts.sufSum[i] - w*ts.sufCnt[i]
}

// CountGreater returns Σ_{v>w} count(v).
func (ts TailSum) CountGreater(w int64) int64 {
	i := sort.Search(len(ts.values), func(i int) bool { return ts.values[i] > w })
	return ts.sufCnt[i]
}

// Each calls fn for every (value, count) pair in ascending value order.
// It is the export half of NewTailSum, used to serialize profiles.
func (ts TailSum) Each(fn func(value, count int64)) {
	for i, v := range ts.values {
		fn(v, ts.counts[i])
	}
}

// Len returns the number of distinct values.
func (ts TailSum) Len() int { return len(ts.values) }

// Max returns the largest value in the multiset, or 0 if empty.
func (ts TailSum) Max() int64 {
	if len(ts.values) == 0 {
		return 0
	}
	return ts.values[len(ts.values)-1]
}

// Profile holds the per-trace reuse statistics the HOTL theory consumes.
type Profile struct {
	N int64 // trace length
	M int64 // number of distinct data

	// Reuse is the histogram of reuse times. The reuse time of a pair of
	// consecutive accesses to the same datum at positions p < q (1-based)
	// is q-p, the time gap. A trace with n accesses to m distinct data
	// has exactly n-m reuse pairs.
	Reuse TailSum
	// First is the histogram of first-access times f_k (1-based position
	// of each datum's first access).
	First TailSum
	// Last is the histogram of reverse last-access times l_k = n-p+1
	// where p is the datum's last access position.
	Last TailSum
}

// Collect scans the trace once and builds its reuse Profile. It panics on
// an empty trace.
func Collect(t trace.Trace) Profile {
	if len(t) == 0 {
		panic("reuse: cannot profile an empty trace")
	}
	n := int64(len(t))
	lastPos := make(map[uint32]int64, 1024)
	reuseHist := make(map[int64]int64)
	firstHist := make(map[int64]int64)
	for i, d := range t {
		pos := int64(i) + 1
		if p, ok := lastPos[d]; ok {
			reuseHist[pos-p]++
		} else {
			firstHist[pos]++
		}
		lastPos[d] = pos
	}
	lastHist := make(map[int64]int64)
	for _, p := range lastPos {
		lastHist[n-p+1]++
	}
	return Profile{
		N:     n,
		M:     int64(len(lastPos)),
		Reuse: NewTailSum(reuseHist),
		First: NewTailSum(firstHist),
		Last:  NewTailSum(lastHist),
	}
}
