package reuse

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"partitionshare/internal/trace"
)

// randTrace builds a mixed trace with streaming (far, never-reused IDs),
// looping, and skewed-random components — the patterns the workload suite
// uses — so the differential tests cover sparse high IDs, dense low IDs,
// and every reuse shape.
func randTrace(rng *rand.Rand, n int) trace.Trace {
	t := make(trace.Trace, n)
	loopSize := uint32(rng.IntN(200) + 4)
	zipfPool := uint32(rng.IntN(500) + 10)
	var stream uint32 = 1 << 28
	var loopPos uint32
	for i := range t {
		switch rng.IntN(4) {
		case 0: // streaming: fresh far ID every time
			t[i] = stream
			stream++
		case 1: // cyclic loop
			t[i] = 100000 + loopPos
			loopPos = (loopPos + 1) % loopSize
		default: // skewed random pool
			t[i] = uint32(rng.IntN(int(zipfPool)))
		}
	}
	return t
}

// mustCollectParallel runs CollectParallel without cancellation and fails
// the test on error.
func mustCollectParallel(t *testing.T, tr trace.Trace, workers int) Profile {
	t.Helper()
	p, err := CollectParallel(nil, tr, workers)
	if err != nil {
		t.Fatalf("CollectParallel(workers=%d): %v", workers, err)
	}
	return p
}

func profilesEqual(t *testing.T, label string, got, want Profile) {
	t.Helper()
	if got.N != want.N || got.M != want.M {
		t.Fatalf("%s: N,M = %d,%d; want %d,%d", label, got.N, got.M, want.N, want.M)
	}
	for name, pair := range map[string][2]TailSum{
		"Reuse": {got.Reuse, want.Reuse},
		"First": {got.First, want.First},
		"Last":  {got.Last, want.Last},
	} {
		if !reflect.DeepEqual(pair[0], pair[1]) {
			t.Fatalf("%s: %s TailSum differs: got %+v want %+v", label, name, pair[0], pair[1])
		}
	}
}

// TestCollectBitExactWithReference asserts the dense-slice scan reproduces
// the map-based reference profile field for field.
func TestCollectBitExactWithReference(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		rng := rand.New(rand.NewPCG(seed, seed*31))
		tr := randTrace(rng, rng.IntN(5000)+1)
		profilesEqual(t, "dense", Collect(tr), CollectReference(tr))
	}
}

// TestCollectParallelBitExactAllWorkerCounts asserts the sharded scan
// merges to exactly the serial profile for every worker count, including
// counts that collapse to the serial path.
func TestCollectParallelBitExactAllWorkerCounts(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewPCG(seed, seed*131))
		// Long enough that several shards survive the minShardLen clamp.
		tr := randTrace(rng, 3*minShardLen+rng.IntN(minShardLen))
		want := CollectReference(tr)
		for workers := 1; workers <= 8; workers++ {
			profilesEqual(t, "parallel", mustCollectParallel(t, tr, workers), want)
		}
	}
}

// TestCollectParallelShortTrace covers the serial fallback and boundary
// sharding on traces too short to shard evenly.
func TestCollectParallelShortTrace(t *testing.T) {
	for _, n := range []int{1, 2, 3, 100, minShardLen - 1, minShardLen, 2*minShardLen + 1} {
		rng := rand.New(rand.NewPCG(uint64(n), 7))
		tr := randTrace(rng, n)
		profilesEqual(t, "short", mustCollectParallel(t, tr, 4), CollectReference(tr))
	}
}

// TestCollectParallelRepeatedDatum exercises the merge's boundary-pair
// reconstruction: one datum accessed in every segment yields one boundary
// reuse pair per segment joint.
func TestCollectParallelRepeatedDatum(t *testing.T) {
	n := 4 * minShardLen
	tr := make(trace.Trace, n)
	for i := range tr {
		tr[i] = uint32(i % 3) // three data, each reused constantly across all shards
	}
	profilesEqual(t, "repeated", mustCollectParallel(t, tr, 4), CollectReference(tr))
}
