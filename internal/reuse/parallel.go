package reuse

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"partitionshare/internal/obs"
	"partitionshare/internal/trace"
)

// Observability names for the parallel collector, package-prefixed
// dotted.snake per the obsname registry convention.
const (
	spanCollectParallel = "reuse.collect_parallel"
	spanShard           = "reuse.shard"

	mWorkerAccesses   = "reuse.worker_accesses"
	mParallelCollects = "reuse.parallel_collects"
	mShards           = "reuse.shards"
	mBoundaryReuses   = "reuse.boundary_reuses"
)

// minShardLen is the smallest trace segment worth a goroutine; below
// 2×minShardLen the serial scan wins outright.
const minShardLen = 1 << 15

// cancelStride is how many accesses a shard scans between cancellation
// checks: large enough that the check is free, small enough that a shard
// responds to Ctrl-C within a few milliseconds.
const cancelStride = 1 << 16

// CollectParallel computes the same Profile as Collect by profiling
// disjoint trace segments concurrently and merging the sub-profiles.
// workers <= 0 uses all CPUs. An empty trace returns ErrEmptyTrace; if ctx
// is cancelled mid-scan the shards drain promptly and ctx.Err() is
// returned.
//
// The decomposition is exact, not approximate: a reuse pair — two
// consecutive accesses to the same datum — either falls inside one segment
// (counted by that shard's scan) or straddles a segment boundary, in which
// case it is reconstructed during the merge from the earlier segment's
// last-access position and the later segment's first-access position.
// Every histogram therefore matches the serial scan's exactly, and the
// Profile's TailSums are field-for-field identical to Collect's and
// CollectReference's.
func CollectParallel(ctx context.Context, t trace.Trace, workers int) (Profile, error) {
	if len(t) == 0 {
		return Profile{}, ErrEmptyTrace
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return Profile{}, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := len(t) / minShardLen; workers > max {
		workers = max
	}
	if workers <= 1 || int64(len(t)) >= math.MaxInt32 {
		return Collect(t), nil
	}
	n := len(t)
	ctx, cps := obs.StartTraceSpan(ctx, spanCollectParallel, "profile")
	defer cps.Arg("workers", int64(workers)).End()

	// One watcher flips the flag on cancellation; shards poll it every
	// cancelStride accesses, which is far cheaper than calling ctx.Err()
	// (a mutex) from every worker's inner loop.
	var canceled atomic.Bool
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			canceled.Store(true)
		case <-watchDone:
		}
	}()

	// shardProfile is one segment's scan result: per-datum first and last
	// absolute positions, the histogram of segment-internal reuse times,
	// and the largest datum ID seen (to size the merge's global table).
	type shardProfile struct {
		first, last *posTable
		reuse       []int32
		maxAddr     uint32
	}
	shards := make([]shardProfile, workers)
	var wg sync.WaitGroup
	for s := 0; s < workers; s++ {
		start, end := s*n/workers, (s+1)*n/workers
		wg.Add(1)
		go func(s, start, end int) {
			defer wg.Done()
			_, ss := obs.StartTraceSpan(obs.WithTraceLane(ctx, int64(s+1)), spanShard, "profile")
			defer ss.Arg("accesses", int64(end-start)).End()
			seg := t[start:end]
			var maxAddr uint32
			for _, d := range seg {
				if d > maxAddr {
					maxAddr = d
				}
			}
			sp := shardProfile{
				first:   newPosTable(maxAddr),
				last:    newPosTable(maxAddr),
				reuse:   make([]int32, end-start+1),
				maxAddr: maxAddr,
			}
			for i, d := range seg {
				if i&(cancelStride-1) == 0 && canceled.Load() {
					return
				}
				pos := int32(start+i) + 1
				if prev := sp.last.set(d, pos); prev != 0 {
					sp.reuse[pos-prev]++
				} else {
					sp.first.set(d, pos)
				}
			}
			shards[s] = sp
			// Per-worker tally: one batched add per completed shard, so
			// the scan loop itself carries no instrumentation cost.
			if reg := obs.Enabled(); reg != nil {
				reg.Counter(mWorkerAccesses).Add(int64(end - start))
			}
		}(s, start, end)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return Profile{}, err
	}

	// Merge in segment order: internal reuse histograms add directly;
	// boundary pairs connect each shard's first access to the datum's most
	// recent access in any earlier shard.
	var maxAddr uint32
	for _, sp := range shards {
		if sp.maxAddr > maxAddr {
			maxAddr = sp.maxAddr
		}
	}
	global := newPosTable(maxAddr)
	reuseHist := make([]int32, n+1)
	firstHist := make([]int32, n+1)
	m := 0
	boundary := int64(0)
	for _, sp := range shards {
		for v, c := range sp.reuse {
			if c != 0 {
				reuseHist[v] += c
			}
		}
		sp.first.each(func(d uint32, f int32) {
			if prev := global.set(d, sp.last.get(d)); prev != 0 {
				reuseHist[f-prev]++
				boundary++
			} else {
				firstHist[f]++
				m++
			}
		})
	}
	if reg := obs.Enabled(); reg != nil {
		reg.Counter(mParallelCollects).Inc()
		reg.Counter(mShards).Add(int64(workers))
		reg.Counter(mBoundaryReuses).Add(boundary)
	}
	lastHist := make([]int32, n+1)
	global.each(func(_ uint32, p int32) {
		lastHist[int32(n)-p+1]++
	})
	return Profile{
		N:     int64(n),
		M:     int64(m),
		Reuse: newTailSumDense(reuseHist),
		First: newTailSumDense(firstHist),
		Last:  newTailSumDense(lastHist),
	}, nil
}
