package reuse

import (
	"fmt"

	"partitionshare/internal/trace"
)

// CRD holds concurrent reuse distances (§IX related work): the LRU stack
// distances of an *interleaved* multi-program trace, attributed to the
// issuing programs. CRD predicts shared-cache performance exactly (an
// access hits a shared LRU cache of c blocks iff its concurrent distance
// is <= c), but — as the paper argues — it is specific to one co-run
// group and interleaving: unlike footprint composition it cannot be
// reused when the group changes, which is why the paper builds on
// composable footprints instead.
type CRD struct {
	// PerProgram[p] is program p's histogram of concurrent distances.
	PerProgram []DistanceHistogram
	// Combined is the whole interleaved trace's histogram.
	Combined DistanceHistogram
}

// ConcurrentDistances computes the CRD of an interleaved trace.
func ConcurrentDistances(iv trace.Interleaved) CRD {
	nprogs := len(iv.Counts)
	if nprogs == 0 {
		panic("reuse: interleaved trace has no programs")
	}
	if len(iv.Trace) != len(iv.Owner) {
		panic(fmt.Sprintf("reuse: trace/owner length mismatch %d/%d", len(iv.Trace), len(iv.Owner)))
	}
	dists := StackDistances(iv.Trace)
	var maxD int64
	for _, d := range dists {
		if d > maxD {
			maxD = d
		}
	}
	crd := CRD{PerProgram: make([]DistanceHistogram, nprogs)}
	for p := range crd.PerProgram {
		crd.PerProgram[p] = DistanceHistogram{Counts: make([]int64, maxD+1)}
	}
	crd.Combined = DistanceHistogram{Counts: make([]int64, maxD+1), N: int64(len(dists))}
	for i, d := range dists {
		p := int(iv.Owner[i])
		crd.PerProgram[p].N++
		if d == ColdMiss {
			crd.PerProgram[p].Cold++
			crd.Combined.Cold++
		} else {
			crd.PerProgram[p].Counts[d]++
			crd.Combined.Counts[d]++
		}
	}
	return crd
}

// SharedMissRatio returns program p's miss ratio in a shared LRU cache of
// c blocks, computed exactly from the concurrent distances.
func (crd CRD) SharedMissRatio(p int, c int64) float64 {
	return crd.PerProgram[p].MissRatio(c)
}

// GroupMissRatio returns the group's shared-cache miss ratio at c blocks.
func (crd CRD) GroupMissRatio(c int64) float64 {
	return crd.Combined.MissRatio(c)
}
