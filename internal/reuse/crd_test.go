package reuse

import (
	"testing"

	"partitionshare/internal/trace"
)

// CRD must agree EXACTLY with a shared-cache LRU simulation at every
// cache size — two independent implementations of the same semantics
// (stack property of LRU). This is the strongest cross-validation in the
// repository: reuse.ConcurrentDistances shares no code with the
// simulator's linked-list LRU.
func TestCRDMatchesSharedSimulationExactly(t *testing.T) {
	a := randomTrace(31, 3000, 150)
	b := trace.Generate(trace.NewLoop(80, 1), 3000)
	c := trace.Generate(trace.NewStreaming(3), 3000)
	iv := trace.InterleaveProportional([]trace.Trace{a, b, c}, []float64{2, 1, 1}, 9000)
	crd := ConcurrentDistances(iv)
	for _, capacity := range []int{1, 10, 50, 150, 400} {
		// Simulate the same interleaved trace with a real LRU cache,
		// charging misses per program.
		cache := newSetAssocForTest(1, capacity) // 1 set = fully assoc
		misses := make([]int64, 3)
		accesses := make([]int64, 3)
		for i, d := range iv.Trace {
			p := iv.Owner[i]
			accesses[p]++
			if !cache.access(d) {
				misses[p]++
			}
		}
		for p := 0; p < 3; p++ {
			want := float64(misses[p]) / float64(accesses[p])
			got := crd.SharedMissRatio(p, int64(capacity))
			if got != want {
				t.Fatalf("cap %d program %d: CRD mr %v vs simulated %v", capacity, p, got, want)
			}
		}
		wantGroup := float64(misses[0]+misses[1]+misses[2]) / 9000
		if got := crd.GroupMissRatio(int64(capacity)); got != wantGroup {
			t.Fatalf("cap %d: CRD group mr %v vs simulated %v", capacity, got, wantGroup)
		}
	}
}

func TestCRDPerProgramCounts(t *testing.T) {
	a := trace.Generate(trace.NewLoop(10, 1), 100)
	b := trace.Generate(trace.NewLoop(10, 1), 100)
	iv := trace.InterleaveProportional([]trace.Trace{a, b}, []float64{3, 1}, 400)
	crd := ConcurrentDistances(iv)
	if crd.PerProgram[0].N != 300 || crd.PerProgram[1].N != 100 {
		t.Fatalf("per-program Ns = %d/%d", crd.PerProgram[0].N, crd.PerProgram[1].N)
	}
	if crd.Combined.N != 400 {
		t.Fatalf("combined N = %d", crd.Combined.N)
	}
	// Per-program cold counts sum to the combined cold count.
	if crd.PerProgram[0].Cold+crd.PerProgram[1].Cold != crd.Combined.Cold {
		t.Fatal("cold counts inconsistent")
	}
}

func TestCRDPanics(t *testing.T) {
	for i, f := range []func(){
		func() { ConcurrentDistances(trace.Interleaved{}) },
		func() {
			ConcurrentDistances(trace.Interleaved{
				Trace:  trace.Trace{1, 2},
				Owner:  []uint8{0},
				Counts: []int{2},
			})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
