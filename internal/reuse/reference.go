package reuse

import "partitionshare/internal/trace"

// CollectReference is the original map-based profiling scan, kept verbatim
// as the oracle for the dense-slice fast path: the differential tests
// assert that Collect and CollectParallel reproduce its TailSums field for
// field, and the paired benchmarks in bench_test.go measure the dense path
// against it. It is also the fallback for traces whose positions overflow
// the dense path's 32-bit counters.
func CollectReference(t trace.Trace) Profile {
	if len(t) == 0 {
		panic("reuse: cannot profile an empty trace")
	}
	n := int64(len(t))
	lastPos := make(map[uint32]int64, 1024)
	reuseHist := make(map[int64]int64)
	firstHist := make(map[int64]int64)
	for i, d := range t {
		pos := int64(i) + 1
		if p, ok := lastPos[d]; ok {
			reuseHist[pos-p]++
		} else {
			firstHist[pos]++
		}
		lastPos[d] = pos
	}
	lastHist := make(map[int64]int64)
	for _, p := range lastPos {
		lastHist[n-p+1]++
	}
	return Profile{
		N:     n,
		M:     int64(len(lastPos)),
		Reuse: NewTailSum(reuseHist),
		First: NewTailSum(firstHist),
		Last:  NewTailSum(lastHist),
	}
}
