package reuse

import (
	"encoding/binary"
	"testing"
)

// fuzzTrace decodes arbitrary fuzz bytes into a trace: 2 bytes per
// access, masked to a small ID space so reuses actually occur.
func fuzzTrace(data []byte) []uint32 {
	t := make([]uint32, 0, len(data)/2)
	for i := 0; i+1 < len(data); i += 2 {
		t = append(t, uint32(binary.LittleEndian.Uint16(data[i:]))&0x3ff)
	}
	return t
}

// FuzzCollect differentially tests the dense-slice scan against the
// map-based reference on arbitrary traces: identical histograms, a
// Validate-clean profile, and no panics.
func FuzzCollect(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 1, 0, 2, 0, 1, 0})
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	seed := make([]byte, 256)
	for i := range seed {
		seed[i] = byte(i * 7)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr := fuzzTrace(data)
		if len(tr) == 0 {
			return
		}
		got, want := Collect(tr), CollectReference(tr)
		if got.N != want.N || got.M != want.M {
			t.Fatalf("N,M = %d,%d; reference %d,%d", got.N, got.M, want.N, want.M)
		}
		for _, pair := range []struct {
			name     string
			got, ref TailSum
		}{
			{"Reuse", got.Reuse, want.Reuse},
			{"First", got.First, want.First},
			{"Last", got.Last, want.Last},
		} {
			if pair.got.Total() != pair.ref.Total() || pair.got.Len() != pair.ref.Len() || pair.got.Max() != pair.ref.Max() {
				t.Fatalf("%s histogram differs from reference", pair.name)
			}
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("collected profile fails Validate: %v", err)
		}
	})
}
