package reuse

import (
	"fmt"

	"partitionshare/internal/trace"
)

// ColdMiss marks an access with no prior access to the same datum.
const ColdMiss = int64(-1)

// fenwick is a binary indexed tree over 1-based positions supporting point
// add and prefix sum, used by the Bennett–Kruskal stack-distance algorithm.
type fenwick struct {
	tree []int64
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int64, n+1)} }

func (f *fenwick) add(i int, delta int64) {
	for ; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

func (f *fenwick) prefix(i int) int64 {
	var s int64
	for ; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// rangeSum returns the sum over positions [lo, hi].
func (f *fenwick) rangeSum(lo, hi int) int64 {
	if hi < lo {
		return 0
	}
	return f.prefix(hi) - f.prefix(lo-1)
}

// StackDistances computes the LRU stack distance of every access using the
// Bennett–Kruskal algorithm (a Fenwick tree over access times), in
// O(n log n) time. The stack distance of an access is the number of
// distinct data accessed since the previous access to the same datum,
// counting the datum itself — the convention of the paper's Figure 3, where
// an immediately repeated access has distance 1. Cold accesses get
// ColdMiss.
//
// Under a fully-associative LRU cache of capacity c blocks, an access hits
// iff its stack distance is <= c.
func StackDistances(t trace.Trace) []int64 {
	dists := make([]int64, len(t))
	ft := newFenwick(len(t))
	lastPos := make(map[uint32]int, 1024)
	for i, d := range t {
		pos := i + 1
		if p, ok := lastPos[d]; ok {
			// Distinct data accessed strictly between p and pos are
			// exactly the "current last access" markers in (p, pos);
			// +1 counts d itself.
			dists[i] = ft.rangeSum(p+1, pos-1) + 1
			ft.add(p, -1)
		} else {
			dists[i] = ColdMiss
		}
		ft.add(pos, 1)
		lastPos[d] = pos
	}
	return dists
}

// DistanceHistogram is a histogram of stack distances. Counts[d] is the
// number of accesses with stack distance d (Counts[0] is always 0 since
// distances start at 1); Cold counts first accesses.
type DistanceHistogram struct {
	Cold   int64
	Counts []int64
	N      int64 // total accesses
}

// HistogramDistances builds a DistanceHistogram from StackDistances output.
func HistogramDistances(dists []int64) DistanceHistogram {
	h := DistanceHistogram{N: int64(len(dists))}
	var max int64
	for _, d := range dists {
		if d > max {
			max = d
		}
	}
	h.Counts = make([]int64, max+1)
	for _, d := range dists {
		if d == ColdMiss {
			h.Cold++
		} else if d >= 1 {
			h.Counts[d]++
		} else {
			panic(fmt.Sprintf("reuse: invalid stack distance %d", d))
		}
	}
	return h
}

// MissRatio returns the LRU miss ratio at cache capacity c blocks: the
// fraction of accesses whose stack distance exceeds c, plus cold misses.
func (h DistanceHistogram) MissRatio(c int64) float64 {
	if h.N == 0 {
		return 0
	}
	misses := h.Cold
	for d := c + 1; d < int64(len(h.Counts)); d++ {
		misses += h.Counts[d]
	}
	return float64(misses) / float64(h.N)
}

// MissRatioCurve returns the LRU miss ratios for capacities 0..maxC as a
// slice indexed by capacity, computed in one pass.
func (h DistanceHistogram) MissRatioCurve(maxC int64) []float64 {
	out := make([]float64, maxC+1)
	if h.N == 0 {
		return out
	}
	// misses(c) = cold + Σ_{d>c} counts[d]; walk c upward subtracting.
	var tail int64
	for d := 1; d < len(h.Counts); d++ {
		tail += h.Counts[d]
	}
	misses := h.Cold + tail
	for c := int64(0); c <= maxC; c++ {
		if c > 0 && c < int64(len(h.Counts)) {
			misses -= h.Counts[c]
		}
		out[c] = float64(misses) / float64(h.N)
	}
	return out
}
