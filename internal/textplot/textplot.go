// Package textplot renders data series as ASCII line charts and CSV files
// — the output layer for the figure-regeneration harness.
package textplot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named line of y-values over an implicit 0..n-1 x-axis.
type Series struct {
	Name   string
	Values []float64
}

// Chart is a multi-series ASCII line chart.
type Chart struct {
	Title  string
	Width  int // plot columns (default 72)
	Height int // plot rows (default 20)
	Series []Series
}

// markers are assigned to series in order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the chart. Series are downsampled to the chart width by
// bucket means. Returns the multi-line string.
func (c Chart) Render() string {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}
	var ymin, ymax float64 = math.Inf(1), math.Inf(-1)
	maxLen := 0
	for _, s := range c.Series {
		for _, v := range s.Values {
			if v < ymin {
				ymin = v
			}
			if v > ymax {
				ymax = v
			}
		}
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	if maxLen == 0 {
		return c.Title + "\n(no data)\n"
	}
	// Degenerate-range guard on the exact quantity used as the scale
	// divisor (IEEE: ymax-ymin is 0 iff the values are equal).
	if ymax-ymin == 0 {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		for col := 0; col < width; col++ {
			lo := col * len(s.Values) / width
			hi := (col + 1) * len(s.Values) / width
			if hi <= lo {
				hi = lo + 1
			}
			if lo >= len(s.Values) {
				continue
			}
			if hi > len(s.Values) {
				hi = len(s.Values)
			}
			sum := 0.0
			for i := lo; i < hi; i++ {
				sum += s.Values[i]
			}
			v := sum / float64(hi-lo)
			row := int((ymax - v) / (ymax - ymin) * float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = m
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for r, row := range grid {
		y := ymax - (ymax-ymin)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%10.5f |%s\n", y, string(row))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", width))
	legend := make([]string, 0, len(c.Series))
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(&b, "%11s%s\n", "", strings.Join(legend, "   "))
	return b.String()
}

// WriteCSV writes the series as columns with a header row. Shorter series
// leave trailing cells empty. Column order follows the slice.
func WriteCSV(w io.Writer, series []Series) error {
	names := make([]string, len(series))
	maxLen := 0
	for i, s := range series {
		names[i] = csvEscape(s.Name)
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	if _, err := fmt.Fprintf(w, "index,%s\n", strings.Join(names, ",")); err != nil {
		return err
	}
	for row := 0; row < maxLen; row++ {
		cells := make([]string, len(series)+1)
		cells[0] = fmt.Sprint(row)
		for i, s := range series {
			if row < len(s.Values) {
				cells[i+1] = fmt.Sprintf("%g", s.Values[row])
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// SortedBy returns a copy of all series reordered by ascending value of
// the series named key (the paper sorts Figures 6 and 7 by Optimal).
func SortedBy(series []Series, key string) ([]Series, error) {
	var ref []float64
	for _, s := range series {
		if s.Name == key {
			ref = s.Values
		}
	}
	if ref == nil {
		return nil, fmt.Errorf("textplot: no series named %q", key)
	}
	order := make([]int, len(ref))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return ref[order[a]] < ref[order[b]] })
	out := make([]Series, len(series))
	for i, s := range series {
		vals := make([]float64, len(s.Values))
		for j, idx := range order {
			if idx < len(s.Values) {
				vals[j] = s.Values[idx]
			}
		}
		out[i] = Series{Name: s.Name, Values: vals}
	}
	return out, nil
}
