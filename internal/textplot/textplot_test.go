package textplot

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	c := Chart{
		Title:  "test chart",
		Width:  40,
		Height: 10,
		Series: []Series{
			{Name: "up", Values: []float64{0, 1, 2, 3, 4, 5, 6, 7}},
			{Name: "down", Values: []float64{7, 6, 5, 4, 3, 2, 1, 0}},
		},
	}
	out := c.Render()
	if !strings.Contains(out, "test chart") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "o down") {
		t.Errorf("missing legend:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// Title + height rows + axis + legend.
	if len(lines) < 13 {
		t.Errorf("unexpected line count %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("missing series markers")
	}
}

func TestRenderEmpty(t *testing.T) {
	out := Chart{Title: "empty"}.Render()
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty chart output: %q", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	out := Chart{Series: []Series{{Name: "flat", Values: []float64{2, 2, 2}}}}.Render()
	if !strings.Contains(out, "*") {
		t.Error("constant series should still draw")
	}
}

func TestRenderDownsamples(t *testing.T) {
	vals := make([]float64, 10000)
	for i := range vals {
		vals[i] = float64(i)
	}
	out := Chart{Width: 20, Height: 5, Series: []Series{{Name: "big", Values: vals}}}.Render()
	for _, line := range strings.Split(out, "\n") {
		if len(line) > 120 {
			t.Fatalf("line too long: %d chars", len(line))
		}
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, []Series{
		{Name: "a", Values: []float64{1, 2, 3}},
		{Name: "b,with comma", Values: []float64{4, 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "index,a,\"b,with comma\"\n0,1,4\n1,2,5\n2,3,\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestCSVEscapeQuotes(t *testing.T) {
	var b strings.Builder
	if err := WriteCSV(&b, []Series{{Name: `q"uote`, Values: []float64{1}}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"q""uote"`) {
		t.Errorf("quote escaping wrong: %q", b.String())
	}
}

func TestSortedBy(t *testing.T) {
	series := []Series{
		{Name: "key", Values: []float64{3, 1, 2}},
		{Name: "other", Values: []float64{30, 10, 20}},
	}
	out, err := SortedBy(series, "key")
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Values[0] != 1 || out[0].Values[1] != 2 || out[0].Values[2] != 3 {
		t.Errorf("key not sorted: %v", out[0].Values)
	}
	if out[1].Values[0] != 10 || out[1].Values[1] != 20 || out[1].Values[2] != 30 {
		t.Errorf("other not reordered with key: %v", out[1].Values)
	}
	// Originals untouched.
	if series[0].Values[0] != 3 {
		t.Error("SortedBy mutated input")
	}
}

func TestSortedByMissingKey(t *testing.T) {
	if _, err := SortedBy([]Series{{Name: "a"}}, "nope"); err == nil {
		t.Fatal("expected error for unknown key")
	}
}
