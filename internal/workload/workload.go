// Package workload defines the 16 synthetic programs standing in for the
// paper's 16 SPEC CPU2006 benchmarks (§VII-A). SPEC traces are proprietary;
// each stand-in keeps the original's name and is calibrated to reproduce
// the qualitative behaviour Figure 5 reports for it:
//
//   - the spread and ordering of equal-partition miss ratios, with
//     lbm/sphinx3 at the top and sjeng/namd at the bottom;
//   - gainers vs losers under free-for-all sharing: high-access-rate
//     programs (lbm, sphinx3, and the low-miss hmmer/tonto) naturally
//     occupy more than an equal share and gain, while low-rate programs
//     (perlbench, sjeng, namd, povray) get squeezed and lose;
//   - non-convex miss-ratio curves: several programs have working-set
//     cliffs (cyclic loops) at different fractions of the cache, which is
//     what defeats the STTW convexity assumption in ~1/3 of groups.
//
// Program working sets are expressed as fractions of the cache size, so
// one Config scales the whole suite: tests run a small geometry, the
// experiment harness runs the paper's 1024-unit cache.
package workload

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"partitionshare/internal/footprint"
	"partitionshare/internal/mrc"
	"partitionshare/internal/obs"
	"partitionshare/internal/trace"
)

// Observability names for profiling, package-prefixed dotted.snake per
// the obsname registry convention.
const (
	spanProfile       = "workload.profile"
	spanTraceGenerate = "workload.trace_generate"
	spanReuseCollect  = "workload.reuse_collect"

	mProgramsProfiled = "workload.programs_profiled"
	mTraceAccesses    = "workload.trace_accesses"
)

// Config fixes the cache geometry and profiling scale.
type Config struct {
	// Units is the number of partition units (paper: 1024).
	Units int
	// BlocksPerUnit is the unit size in cache blocks (paper: 128 blocks
	// of 64 B = 8 KB; the default here is 16 to keep synthetic working
	// sets and trace lengths laptop-sized at the same unit count).
	BlocksPerUnit int64
	// TraceLen is the number of accesses profiled per program.
	TraceLen int
	// Seed decorrelates the whole suite; per-program seeds derive from it.
	Seed uint64
}

// DefaultConfig is the full experiment geometry: a 1024-unit cache, as in
// the paper's evaluation. The trace length is chosen so that even the
// lowest-miss-ratio program touches a few cache-fuls of distinct data over
// its trace (footprint growth ≈ miss rate), keeping every 4-program group
// cache-contended as in the paper's 8 MB setup.
func DefaultConfig() Config {
	return Config{Units: 1024, BlocksPerUnit: 4, TraceLen: 1 << 23, Seed: 1}
}

// TestConfig is a reduced geometry for fast tests, proportional to
// DefaultConfig (same accesses-to-cache ratio).
func TestConfig() Config {
	return Config{Units: 128, BlocksPerUnit: 4, TraceLen: 1 << 19, Seed: 1}
}

// CacheBlocks returns the total cache size in blocks.
func (c Config) CacheBlocks() int64 { return int64(c.Units) * c.BlocksPerUnit }

func (c Config) validate() error {
	if c.Units <= 0 || c.BlocksPerUnit <= 0 || c.TraceLen <= 0 {
		return fmt.Errorf("workload: invalid config %+v", c)
	}
	return nil
}

// Spec declares one synthetic program.
type Spec struct {
	Name string
	// Rate is the program's relative access rate (accesses per unit
	// time); only ratios between co-run programs matter.
	Rate float64
	// Build returns the program's access-pattern generator for a cache of
	// cacheBlocks blocks.
	Build func(cacheBlocks uint32, seed uint64) trace.Generator
}

// frac returns f·cacheBlocks, at least 2 blocks.
func frac(cacheBlocks uint32, f float64) uint32 {
	v := uint32(f * float64(cacheBlocks))
	if v < 2 {
		v = 2
	}
	return v
}

// program recipe: every program is a mixture of
//
//   - a hot set (sawtooth over hotFrac·cache) absorbing the residual
//     weight — near-zero misses once a small allocation is in place;
//   - a streaming component with weight ws and per-block repeat r,
//     giving an irreducible miss-ratio floor of ws/r (cache-size
//     independent, like true streaming);
//   - zero or more loop components (size fraction, weight) — each one a
//     working-set cliff of height ≈ weight at ≈ size·cache, the
//     non-convexity that defeats STTW. A loop block's revisit gap is
//     size·cache/weight accesses, which must stay well under the trace
//     length for the cliff to be observable;
//   - an optional Zipf component (size fraction, theta, weight) giving a
//     smooth diminishing-returns slope.
type recipe struct {
	hotFrac      float64
	streamW      float64
	streamRepeat int
	loops        [][2]float64 // {sizeFrac, weight}
	zipfFrac     float64
	zipfTheta    float64
	zipfW        float64
}

func (rc recipe) build(cacheBlocks uint32, seed uint64) trace.Generator {
	var gens []trace.Generator
	var weights []float64
	var base uint32
	region := func(g trace.Generator, size uint32) trace.Generator {
		r := trace.Region{Gen: g, Base: base}
		base += size + 8
		return r
	}
	hotSize := frac(cacheBlocks, rc.hotFrac)
	hotW := 1.0 - rc.streamW - rc.zipfW
	for _, l := range rc.loops {
		hotW -= l[1]
	}
	if hotW <= 0 {
		panic(fmt.Sprintf("workload: recipe weights exceed 1 (hot %v)", hotW))
	}
	gens = append(gens, region(trace.NewSawtooth(hotSize), hotSize))
	weights = append(weights, hotW)
	if rc.streamW > 0 {
		gens = append(gens, trace.Region{Gen: trace.NewStreaming(rc.streamRepeat), Base: 1 << 28})
		weights = append(weights, rc.streamW)
	}
	for i, l := range rc.loops {
		size := frac(cacheBlocks, l[0])
		_ = i
		gens = append(gens, region(trace.NewLoop(size, 1), size))
		weights = append(weights, l[1])
	}
	if rc.zipfW > 0 {
		size := frac(cacheBlocks, rc.zipfFrac)
		gens = append(gens, region(trace.NewZipf(size, rc.zipfTheta, seed^0x5bd1e995), size))
		weights = append(weights, rc.zipfW)
	}
	// Deterministic scheduling keeps each loop component's reuse times
	// sharply concentrated, giving the crisp working-set cliffs that make
	// the curves non-convex; a random mixture would smear them into
	// near-convex slopes.
	return trace.NewDeterministicMix(gens, weights)
}

// Specs returns the 16 SPEC-named synthetic programs. Floors (streamW /
// streamRepeat), cliffs (loops), and slopes (zipf) are calibrated against
// the qualitative facts of the paper's Figure 5; see cmd/calibrate.
func Specs() []Spec {
	mk := func(name string, rate float64, rc recipe) Spec {
		return Spec{Name: name, Rate: rate, Build: rc.build}
	}
	// Structure note: each program's Zipf slope is confined to a pool
	// well below its loop cliff, leaving a flat "dead zone" in between.
	// The marginal-gain greedy (STTW) stalls at the pool edge; only the
	// DP jumps the dead zone to collect the cliff — the paper's
	// convexity-assumption failure (§VII-B).
	// Weights are chosen cliff-heavy: the streaming floor contributes
	// roughly a third of each program's equal-partition miss ratio and
	// the loop cliffs about half, so cache allocation decisions move most
	// of the misses — as with real SPEC working-set drop-offs.
	return []Spec{
		mk("lbm", 3.0, recipe{hotFrac: 0.02, streamW: 0.30, streamRepeat: 18,
			loops: [][2]float64{{0.60, 0.028}}, zipfFrac: 0.12, zipfTheta: 1.00, zipfW: 0.012}),
		mk("sphinx3", 2.5, recipe{hotFrac: 0.02, streamW: 0.26, streamRepeat: 20,
			loops: [][2]float64{{0.40, 0.018}}, zipfFrac: 0.15, zipfTheta: 1.00, zipfW: 0.010}),
		mk("mcf", 2.2, recipe{hotFrac: 0.03, streamW: 0.24, streamRepeat: 24,
			loops: [][2]float64{{0.42, 0.018}, {0.80, 0.006}}, zipfFrac: 0.18, zipfTheta: 0.95, zipfW: 0.012}),
		mk("soplex", 2.0, recipe{hotFrac: 0.03, streamW: 0.22, streamRepeat: 25,
			loops: [][2]float64{{0.50, 0.015}}, zipfFrac: 0.15, zipfTheta: 1.00, zipfW: 0.010}),
		mk("omnetpp", 1.8, recipe{hotFrac: 0.03, streamW: 0.20, streamRepeat: 30,
			loops: [][2]float64{{0.30, 0.012}}, zipfFrac: 0.22, zipfTheta: 1.00, zipfW: 0.012}),
		mk("perlbench", 0.7, recipe{hotFrac: 0.02, streamW: 0.18, streamRepeat: 36,
			loops: [][2]float64{{0.45, 0.010}, {0.10, 0.004}}, zipfFrac: 0.20, zipfTheta: 1.00, zipfW: 0.010}),
		mk("zeusmp", 1.6, recipe{hotFrac: 0.04, streamW: 0.12, streamRepeat: 40,
			loops: [][2]float64{{0.33, 0.010}}, zipfFrac: 0.20, zipfTheta: 1.10, zipfW: 0.008}),
		mk("bzip2", 1.4, recipe{hotFrac: 0.03, streamW: 0.11, streamRepeat: 45,
			loops: [][2]float64{{0.29, 0.008}}, zipfFrac: 0.18, zipfTheta: 1.10, zipfW: 0.007}),
		mk("dealII", 1.2, recipe{hotFrac: 0.03, streamW: 0.10, streamRepeat: 50,
			loops: [][2]float64{{0.27, 0.007}}, zipfFrac: 0.20, zipfTheta: 1.15, zipfW: 0.006}),
		mk("wrf", 1.3, recipe{hotFrac: 0.04, streamW: 0.09, streamRepeat: 55,
			loops: [][2]float64{{0.26, 0.0055}}, zipfFrac: 0.16, zipfTheta: 1.20, zipfW: 0.005}),
		mk("h264ref", 1.1, recipe{hotFrac: 0.04, streamW: 0.08, streamRepeat: 55,
			loops: [][2]float64{{0.32, 0.004}, {0.14, 0.002}}, zipfFrac: 0.15, zipfTheta: 1.20, zipfW: 0.0045}),
		mk("hmmer", 3.2, recipe{hotFrac: 0.03, streamW: 0.06, streamRepeat: 75,
			loops: [][2]float64{{0.26, 0.0035}}, zipfFrac: 0.04, zipfTheta: 1.30, zipfW: 0.003}),
		mk("tonto", 3.0, recipe{hotFrac: 0.03, streamW: 0.05, streamRepeat: 85,
			loops: [][2]float64{{0.24, 0.0028}}, zipfFrac: 0.035, zipfTheta: 1.30, zipfW: 0.0025}),
		mk("povray", 0.8, recipe{hotFrac: 0.02, streamW: 0.06, streamRepeat: 75,
			loops: [][2]float64{{0.16, 0.0009}}, zipfFrac: 0.10, zipfTheta: 1.30, zipfW: 0.003}),
		mk("sjeng", 0.6, recipe{hotFrac: 0.02, streamW: 0.05, streamRepeat: 85,
			loops: [][2]float64{{0.20, 0.0007}}, zipfFrac: 0.10, zipfTheta: 1.30, zipfW: 0.0025}),
		mk("namd", 0.5, recipe{hotFrac: 0.015, streamW: 0.035, streamRepeat: 90,
			loops: [][2]float64{{0.12, 0.0005}}, zipfFrac: 0.08, zipfTheta: 1.35, zipfW: 0.002}),
	}
}

// Program is a profiled workload ready for composition and partitioning.
type Program struct {
	Name string
	Rate float64
	// Fp is the program's HOTL footprint (drives composition and the
	// natural partition).
	Fp footprint.Footprint
	// Curve is the miss-ratio curve at unit granularity (drives the
	// partitioning optimizers).
	Curve mrc.Curve
}

// Profile generates and profiles one program under the given geometry.
func Profile(spec Spec, cfg Config) (Program, error) {
	return profileCtx(context.Background(), spec, cfg)
}

// profileCtx is Profile with a trace-span parent: the whole pass records
// as a "workload.profile" span with "workload.trace_generate" and
// "workload.reuse_collect"
// children, so -trace-events timelines show where profiling time goes.
func profileCtx(ctx context.Context, spec Spec, cfg Config) (Program, error) {
	if err := cfg.validate(); err != nil {
		return Program{}, err
	}
	ctx, ps := obs.StartTraceSpan(ctx, spanProfile, "profile")
	defer ps.End()
	seed := cfg.Seed*0x100000001b3 ^ hashName(spec.Name)
	gen := spec.Build(uint32(cfg.CacheBlocks()), seed)
	_, gs := obs.StartTraceSpan(ctx, spanTraceGenerate, "profile")
	tr := trace.Generate(gen, cfg.TraceLen)
	gs.Arg("accesses", int64(len(tr))).End()
	_, cs := obs.StartTraceSpan(ctx, spanReuseCollect, "profile")
	fp := footprint.FromTrace(tr)
	cs.End()
	curve := mrc.FromFootprint(spec.Name, fp, cfg.Units, cfg.BlocksPerUnit, spec.Rate)
	// Co-run programs run for the same wall time, so program i issues
	// rate_i·T accesses: weight miss counts by access rate, as the paper
	// does (Eq. 14's trace fractions f_i).
	curve.Accesses = int64(float64(cfg.TraceLen) * spec.Rate)
	return Program{
		Name:  spec.Name,
		Rate:  spec.Rate,
		Fp:    fp,
		Curve: curve,
	}, nil
}

func hashName(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// ProfileAll profiles every spec in parallel across the available CPUs and
// returns the programs in spec order. Cancelling ctx skips not-yet-started
// programs and returns ctx.Err(); a nil ctx never cancels.
func ProfileAll(ctx context.Context, specs []Spec, cfg Config) ([]Program, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	progs := make([]Program, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, s := range specs {
		wg.Add(1)
		go func(i int, s Spec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return
			}
			// One trace lane per program: profiling passes render as
			// parallel rows in the exported timeline.
			progs[i], errs[i] = profileCtx(obs.WithTraceLane(ctx, int64(i+1)), s, cfg)
		}(i, s)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if reg := obs.Enabled(); reg != nil {
		reg.Counter(mProgramsProfiled).Add(int64(len(specs)))
		reg.Counter(mTraceAccesses).Add(int64(len(specs)) * int64(cfg.TraceLen))
	}
	return progs, nil
}
