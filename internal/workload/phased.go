package workload

import (
	"fmt"

	"partitionshare/internal/trace"
)

// PhasedSpec declares a synthetic program with explicit phase behaviour —
// the workloads that violate the paper's random-phase assumption (§VIII)
// and motivate partition-sharing (Figure 1) and per-epoch repartitioning
// (internal/epoch).
type PhasedSpec struct {
	Name string
	Rate float64
	// Build returns the generator; phases align to PhaseLen accesses.
	Build func(cacheBlocks uint32, phaseLen int, seed uint64) trace.Generator
}

// PhasedSpecs returns eight programs with strong phase behaviour:
// antiphase pairs whose combined demand exceeds the cache in every phase
// but whose per-phase demands complement.
//
// Programs 2k and 2k+1 form an antiphase pair: one sweeps a big working
// set while the other sweeps a tiny one, swapping every phase. Pair
// working sets grow with k so that a mix of pairs gives the partitioner
// heterogeneous demand.
func PhasedSpecs() []PhasedSpec {
	mk := func(name string, rate float64, bigFrac, tinyFrac float64, bigFirst bool) PhasedSpec {
		return PhasedSpec{
			Name: name,
			Rate: rate,
			Build: func(cacheBlocks uint32, phaseLen int, seed uint64) trace.Generator {
				big := trace.Phase{
					Gen: trace.NewSawtooth(frac(cacheBlocks, bigFrac)),
					Len: phaseLen,
				}
				tiny := trace.Phase{
					Gen: trace.Region{
						Gen:  trace.NewSawtooth(frac(cacheBlocks, tinyFrac)),
						Base: 1 << 24,
					},
					Len: phaseLen,
				}
				if bigFirst {
					return trace.NewPhased(big, tiny)
				}
				return trace.NewPhased(tiny, big)
			},
		}
	}
	return []PhasedSpec{
		mk("phase-a1", 1.0, 0.45, 0.01, true),
		mk("phase-a2", 1.0, 0.45, 0.01, false),
		mk("phase-b1", 1.2, 0.30, 0.02, true),
		mk("phase-b2", 1.2, 0.30, 0.02, false),
		mk("phase-c1", 0.8, 0.55, 0.01, true),
		mk("phase-c2", 0.8, 0.55, 0.01, false),
		mk("phase-d1", 1.5, 0.20, 0.02, true),
		mk("phase-d2", 1.5, 0.20, 0.02, false),
	}
}

// GeneratePhased builds a phased program's trace with phases aligned to
// phaseLen.
func GeneratePhased(spec PhasedSpec, cfg Config, phaseLen int) (trace.Trace, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if phaseLen <= 0 || phaseLen > cfg.TraceLen {
		return nil, fmt.Errorf("workload: phase length %d out of range for trace of %d", phaseLen, cfg.TraceLen)
	}
	seed := cfg.Seed*0x9e3779b97f4a7c15 ^ hashName(spec.Name)
	gen := spec.Build(uint32(cfg.CacheBlocks()), phaseLen, seed)
	return trace.Generate(gen, cfg.TraceLen), nil
}
