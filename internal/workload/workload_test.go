package workload

import (
	"testing"

	"partitionshare/internal/compose"
)

func TestSpecsCount(t *testing.T) {
	specs := Specs()
	if len(specs) != 16 {
		t.Fatalf("got %d specs, want 16 (the paper's SPEC selection)", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		if names[s.Name] {
			t.Errorf("duplicate name %q", s.Name)
		}
		names[s.Name] = true
		if s.Rate <= 0 {
			t.Errorf("%s: non-positive rate", s.Name)
		}
		if s.Build == nil {
			t.Errorf("%s: nil builder", s.Name)
		}
	}
	// The paper's full list.
	for _, want := range []string{"perlbench", "bzip2", "mcf", "zeusmp", "namd",
		"dealII", "soplex", "povray", "hmmer", "sjeng", "h264ref", "tonto",
		"lbm", "omnetpp", "wrf", "sphinx3"} {
		if !names[want] {
			t.Errorf("missing program %q", want)
		}
	}
}

func TestProfileDeterministic(t *testing.T) {
	cfg := TestConfig()
	spec := Specs()[0]
	a, err := Profile(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Profile(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fp.M() != b.Fp.M() || a.Fp.N() != b.Fp.N() {
		t.Fatalf("profiles differ: m %d vs %d", a.Fp.M(), b.Fp.M())
	}
	for u := 0; u <= cfg.Units; u += 16 {
		if a.Curve.MissRatio(u) != b.Curve.MissRatio(u) {
			t.Fatalf("curves differ at %d units", u)
		}
	}
}

func TestProfileSeedChangesTrace(t *testing.T) {
	cfg := TestConfig()
	cfg2 := cfg
	cfg2.Seed = 99
	spec := Specs()[2]
	a, _ := Profile(spec, cfg)
	b, _ := Profile(spec, cfg2)
	same := true
	for u := 0; u <= cfg.Units; u += 8 {
		if a.Curve.MissRatio(u) != b.Curve.MissRatio(u) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical curves")
	}
}

func TestProfileAllSuite(t *testing.T) {
	cfg := TestConfig()
	progs, err := ProfileAll(nil, Specs(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 16 {
		t.Fatalf("got %d programs", len(progs))
	}
	byName := map[string]Program{}
	for i, p := range progs {
		if p.Name != Specs()[i].Name {
			t.Errorf("order not preserved: %d is %q", i, p.Name)
		}
		if err := p.Curve.Validate(); err != nil {
			t.Errorf("%s: invalid curve: %v", p.Name, err)
		}
		if p.Curve.Units() != cfg.Units {
			t.Errorf("%s: curve has %d units, want %d", p.Name, p.Curve.Units(), cfg.Units)
		}
		byName[p.Name] = p
	}

	equal := cfg.Units / 4
	// Qualitative calibration: lbm and sphinx3 top the equal-partition
	// miss ratios, namd and sjeng are at the bottom (paper Figure 5).
	lbm, sphinx := byName["lbm"].Curve.MissRatio(equal), byName["sphinx3"].Curve.MissRatio(equal)
	namd, sjeng := byName["namd"].Curve.MissRatio(equal), byName["sjeng"].Curve.MissRatio(equal)
	for name, p := range byName {
		mr := p.Curve.MissRatio(equal)
		if name != "lbm" && mr > lbm {
			t.Errorf("%s equal-mr %.4f exceeds lbm's %.4f", name, mr, lbm)
		}
		if name != "namd" && name != "povray" && name != "sjeng" && mr < namd {
			t.Errorf("%s equal-mr %.4f below namd's %.4f", name, mr, namd)
		}
	}
	if sphinx >= lbm {
		t.Errorf("sphinx3 (%.4f) should be below lbm (%.4f)", sphinx, lbm)
	}
	if sjeng < namd {
		t.Errorf("sjeng (%.5f) should be above namd (%.5f)", sjeng, namd)
	}

	// Every program's curve is non-increasing and at least one program is
	// non-convex (the STTW-defeating cliffs).
	nonConvex := 0
	for _, p := range progs {
		for u := 1; u <= cfg.Units; u++ {
			if p.Curve.MissRatio(u) > p.Curve.MissRatio(u-1)+1e-12 {
				t.Errorf("%s: miss ratio increases at %d units", p.Name, u)
				break
			}
		}
		if !p.Curve.IsConvex() {
			nonConvex++
		}
	}
	if nonConvex < 8 {
		t.Errorf("only %d non-convex curves; want at least half the suite", nonConvex)
	}
}

func TestGainersAndLosers(t *testing.T) {
	cfg := TestConfig()
	progs, err := ProfileAll(nil, Specs(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Program{}
	for _, p := range progs {
		byName[p.Name] = p
	}
	cp := func(n string) compose.Program {
		p := byName[n]
		return compose.Program{Name: p.Name, Fp: p.Fp, Rate: p.Rate}
	}
	equal := cfg.Units / 4

	// lbm in a moderate group gains from sharing (natural < equal).
	group := []compose.Program{cp("lbm"), cp("wrf"), cp("h264ref"), cp("namd")}
	mrs := compose.SharedMissRatios(group, float64(cfg.CacheBlocks()))
	if lbmEq := byName["lbm"].Curve.MissRatio(equal); mrs[0] >= lbmEq {
		t.Errorf("lbm: natural %.5f should beat equal %.5f", mrs[0], lbmEq)
	}
	// namd in the same group loses (squeezed by the streamer).
	if namdEq := byName["namd"].Curve.MissRatio(equal); mrs[3] <= namdEq {
		t.Errorf("namd: natural %.5f should lose to equal %.5f", mrs[3], namdEq)
	}

	// hmmer among moderate peers gains despite its low miss ratio.
	group = []compose.Program{cp("hmmer"), cp("povray"), cp("sjeng"), cp("namd")}
	mrs = compose.SharedMissRatios(group, float64(cfg.CacheBlocks()))
	if hmmerEq := byName["hmmer"].Curve.MissRatio(equal); mrs[0] >= hmmerEq {
		t.Errorf("hmmer: natural %.5f should beat equal %.5f among moderate peers", mrs[0], hmmerEq)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Units: 0, BlocksPerUnit: 4, TraceLen: 10},
		{Units: 4, BlocksPerUnit: 0, TraceLen: 10},
		{Units: 4, BlocksPerUnit: 4, TraceLen: 0},
	}
	for i, cfg := range bad {
		if _, err := Profile(Specs()[0], cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
		if _, err := ProfileAll(nil, Specs(), cfg); err == nil {
			t.Errorf("case %d: expected error from ProfileAll", i)
		}
	}
}

func TestCacheBlocks(t *testing.T) {
	cfg := Config{Units: 1024, BlocksPerUnit: 4, TraceLen: 1}
	if cfg.CacheBlocks() != 4096 {
		t.Fatalf("CacheBlocks = %d", cfg.CacheBlocks())
	}
}

func TestPhasedSpecs(t *testing.T) {
	specs := PhasedSpecs()
	if len(specs) != 8 {
		t.Fatalf("got %d phased specs, want 8", len(specs))
	}
	cfg := TestConfig()
	phaseLen := cfg.TraceLen / 8
	names := map[string]bool{}
	for _, s := range specs {
		if names[s.Name] {
			t.Fatalf("duplicate phased name %q", s.Name)
		}
		names[s.Name] = true
		tr, err := GeneratePhased(s, cfg, phaseLen)
		if err != nil {
			t.Fatal(err)
		}
		if len(tr) != cfg.TraceLen {
			t.Fatalf("%s: trace length %d", s.Name, len(tr))
		}
	}
}

func TestPhasedPairsAreAntiphase(t *testing.T) {
	cfg := TestConfig()
	phaseLen := cfg.TraceLen / 8
	specs := PhasedSpecs()
	a, err := GeneratePhased(specs[0], cfg, phaseLen)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GeneratePhased(specs[1], cfg, phaseLen)
	if err != nil {
		t.Fatal(err)
	}
	// In every aligned phase, exactly one of the pair touches many
	// distinct blocks.
	for p := 0; p+phaseLen <= cfg.TraceLen; p += phaseLen {
		da := a[p : p+phaseLen].DistinctData()
		db := b[p : p+phaseLen].DistinctData()
		big, small := da, db
		if db > da {
			big, small = db, da
		}
		if small*10 > big {
			t.Fatalf("phase at %d: distinct counts %d/%d not antiphase", p, da, db)
		}
	}
}

func TestGeneratePhasedErrors(t *testing.T) {
	cfg := TestConfig()
	spec := PhasedSpecs()[0]
	if _, err := GeneratePhased(spec, cfg, 0); err == nil {
		t.Error("bad phase length should error")
	}
	if _, err := GeneratePhased(spec, cfg, cfg.TraceLen*2); err == nil {
		t.Error("oversized phase length should error")
	}
	if _, err := GeneratePhased(spec, Config{}, 10); err == nil {
		t.Error("bad config should error")
	}
}
