package compose

import (
	"math"
	"testing"

	"partitionshare/internal/footprint"
	"partitionshare/internal/trace"
)

func feedbackProgs(t *testing.T) []Program {
	t.Helper()
	// A pure streamer (mr 1) and a large sawtooth sweep (mr well below 1
	// at its occupancy) at equal base rates. Both footprints keep growing
	// at the fill window, so occupancy responds to rate changes.
	stream := trace.Generate(trace.NewStreaming(1), 20000)
	sweep := trace.Generate(trace.NewSawtooth(600), 20000)
	return []Program{
		{Name: "stream", Fp: footprint.FromTrace(stream), Rate: 1},
		{Name: "sweep", Fp: footprint.FromTrace(sweep), Rate: 1},
	}
}

func TestFeedbackZeroPenaltyMatchesPlain(t *testing.T) {
	progs := feedbackProgs(t)
	c := 400.0
	res := NaturalPartitionWithFeedback(progs, c, 0, 10)
	if !res.Converged || res.Iterations != 1 {
		t.Fatalf("zero penalty should converge immediately: %+v", res)
	}
	plain := NaturalPartition(progs, c)
	for i := range plain {
		if math.Abs(res.Occupancy[i]-plain[i]) > 1e-9 {
			t.Errorf("occupancy %d: %v vs plain %v", i, res.Occupancy[i], plain[i])
		}
		if res.EffectiveRates[i] != progs[i].Rate {
			t.Errorf("rate %d changed: %v", i, res.EffectiveRates[i])
		}
	}
}

func TestFeedbackSlowsMissHeavyProgram(t *testing.T) {
	progs := feedbackProgs(t)
	c := 400.0
	res := NaturalPartitionWithFeedback(progs, c, 50, 200)
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	// The streamer misses constantly, so feedback must slow it more.
	if res.EffectiveRates[0] >= res.EffectiveRates[1] {
		t.Errorf("streamer rate %v should drop below looper rate %v",
			res.EffectiveRates[0], res.EffectiveRates[1])
	}
	// Slower streamer grabs less cache than in the plain model.
	plain := NaturalPartition(progs, c)
	if res.Occupancy[0] >= plain[0] {
		t.Errorf("feedback occupancy %v should shrink from plain %v", res.Occupancy[0], plain[0])
	}
	// Occupancies still fill the cache.
	sum := res.Occupancy[0] + res.Occupancy[1]
	if math.Abs(sum-c) > 1e-3 {
		t.Errorf("occupancies sum to %v, want %v", sum, c)
	}
}

func TestFeedbackMonotoneInPenalty(t *testing.T) {
	progs := feedbackProgs(t)
	c := 400.0
	prevRate := math.Inf(1)
	for _, penalty := range []float64{1, 10, 100} {
		res := NaturalPartitionWithFeedback(progs, c, penalty, 300)
		if res.EffectiveRates[0] > prevRate+1e-9 {
			t.Errorf("penalty %v: streamer rate %v rose above %v", penalty, res.EffectiveRates[0], prevRate)
		}
		prevRate = res.EffectiveRates[0]
	}
}

func TestFeedbackPanics(t *testing.T) {
	progs := feedbackProgs(t)
	for i, f := range []func(){
		func() { NaturalPartitionWithFeedback(progs, 100, -1, 10) },
		func() { NaturalPartitionWithFeedback(progs, 100, 1, 0) },
		func() { NaturalPartitionWithFeedback(nil, 100, 1, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
