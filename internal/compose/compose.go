// Package compose implements the paper's §IV–§V-A: footprint composition
// of co-run programs via stretching (Eq. 9), co-run miss-ratio prediction
// (Eq. 11), and the Natural Cache Partition (NCP) — the cache occupancies
// that free-for-all sharing settles into, which reduce partition-sharing to
// partitioning under the Natural Partition Assumption.
package compose

import (
	"fmt"
	"math"
	"sort"

	"partitionshare/internal/footprint"
)

// Program is one member of a co-run group.
type Program struct {
	Name string
	Fp   footprint.Footprint
	// Rate is the program's access rate (accesses per unit of wall time).
	// Only the ratios between co-run programs matter.
	Rate float64
}

func validate(progs []Program) {
	if len(progs) == 0 {
		panic("compose: empty program group")
	}
	for i, p := range progs {
		if p.Rate <= 0 {
			panic(fmt.Sprintf("compose: program %d (%s) has non-positive rate %v", i, p.Name, p.Rate))
		}
	}
}

// totalRate returns the sum of access rates.
func totalRate(progs []Program) float64 {
	var r float64
	for _, p := range progs {
		r += p.Rate
	}
	return r
}

// CombinedFp evaluates the composed footprint of the group at combined
// window length w (Eq. 9): each program's footprint is stretched
// horizontally by its share of the access stream, and the stretched
// footprints add because the programs share no data.
func CombinedFp(progs []Program, w float64) float64 {
	validate(progs)
	r := totalRate(progs)
	var sum float64
	for _, p := range progs {
		sum += p.Fp.At(w * p.Rate / r)
	}
	return sum
}

// TotalData returns the sum of the programs' total footprints (distinct
// data), the ceiling of the composed footprint.
func TotalData(progs []Program) float64 {
	var m float64
	for _, p := range progs {
		m += float64(p.Fp.M())
	}
	return m
}

// FillTime returns the combined window length w at which the composed
// footprint reaches c blocks, by bisection (the composed footprint is
// monotone). It returns +Inf when c exceeds the group's total data.
func FillTime(progs []Program, c float64) float64 {
	validate(progs)
	if c < 0 {
		panic(fmt.Sprintf("compose: negative cache size %v", c))
	}
	if c == 0 {
		return 0
	}
	if c >= TotalData(progs) {
		return math.Inf(1)
	}
	r := totalRate(progs)
	// Upper bound: the w at which every stretched argument covers its
	// whole trace.
	hi := 1.0
	for _, p := range progs {
		if b := float64(p.Fp.N()) * r / p.Rate; b > hi {
			hi = b
		}
	}
	lo := 0.0
	for i := 0; i < 100 && hi-lo > 1e-9*math.Max(1, hi); i++ {
		mid := (lo + hi) / 2
		if CombinedFp(progs, mid) >= c {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// NaturalPartition returns the natural cache partition for a shared cache
// of c blocks: occ[i] is program i's steady-state occupancy, the stretched
// footprint of program i at the combined fill time of c (Fig. 4). When the
// cache is larger than the group's total data, each program's occupancy is
// its total footprint (and the cache is not full). Occupancies sum to
// min(c, total data) up to bisection tolerance.
func NaturalPartition(progs []Program, c float64) []float64 {
	validate(progs)
	occ := make([]float64, len(progs))
	if c >= TotalData(progs) {
		for i, p := range progs {
			occ[i] = float64(p.Fp.M())
		}
		return occ
	}
	w := FillTime(progs, c)
	r := totalRate(progs)
	for i, p := range progs {
		occ[i] = p.Fp.At(w * p.Rate / r)
	}
	return occ
}

// NaturalPartitionUnits converts the natural partition to whole cache
// units (blocksPerUnit blocks each) summing exactly to units, using
// largest-remainder rounding. Cache size in blocks is units*blocksPerUnit.
func NaturalPartitionUnits(progs []Program, units int, blocksPerUnit int64) []int {
	if units <= 0 || blocksPerUnit <= 0 {
		panic(fmt.Sprintf("compose: invalid geometry units=%d blocksPerUnit=%d", units, blocksPerUnit))
	}
	occ := NaturalPartition(progs, float64(units)*float64(blocksPerUnit))
	return RoundToUnits(occ, units, blocksPerUnit)
}

// RoundToUnits scales block occupancies to whole units summing exactly to
// units via largest-remainder rounding. If the occupancies sum to less than
// the cache (cache bigger than data), the leftover units are spread to the
// largest remainders as well, keeping the total equal to units.
func RoundToUnits(occBlocks []float64, units int, blocksPerUnit int64) []int {
	type rem struct {
		idx  int
		frac float64
	}
	out := make([]int, len(occBlocks))
	rems := make([]rem, len(occBlocks))
	assigned := 0
	for i, b := range occBlocks {
		u := b / float64(blocksPerUnit)
		fl := math.Floor(u)
		out[i] = int(fl)
		assigned += int(fl)
		rems[i] = rem{i, u - fl}
	}
	left := units - assigned
	if left < 0 {
		// Rounding overshoot cannot happen (floors underestimate), but a
		// caller could pass occupancies exceeding the cache; trim from
		// the smallest fractions.
		sort.Slice(rems, func(a, b int) bool { return rems[a].frac < rems[b].frac })
		for k := 0; left < 0 && k < len(rems); k++ {
			if out[rems[k].idx] > 0 {
				out[rems[k].idx]--
				left++
			}
		}
		return out
	}
	sort.Slice(rems, func(a, b int) bool {
		// Strict ordering comparisons only: an epsilon here would break
		// the comparator's transitivity, and exact fractional ties must
		// fall through to the deterministic index order.
		if rems[a].frac > rems[b].frac {
			return true
		}
		if rems[a].frac < rems[b].frac {
			return false
		}
		return rems[a].idx < rems[b].idx
	})
	for k := 0; left > 0; k = (k + 1) % len(rems) {
		out[rems[k].idx]++
		left--
	}
	return out
}

// SharedMissRatios predicts each program's miss ratio in a freely shared
// cache of c blocks under the Natural Partition Assumption: program i
// performs as in a private partition of its natural occupancy,
// mr_i(occ_i).
func SharedMissRatios(progs []Program, c float64) []float64 {
	occ := NaturalPartition(progs, c)
	out := make([]float64, len(progs))
	for i, p := range progs {
		out[i] = p.Fp.MissRatio(occ[i])
	}
	return out
}

// SharedGroupMissRatio predicts the group's overall miss ratio (misses per
// combined access) in a freely shared cache of c blocks, Eq. 11: the
// rate-weighted mean of the per-program miss ratios, which equals
// fp(w+1) − c evaluated on the composed footprint.
func SharedGroupMissRatio(progs []Program, c float64) float64 {
	validate(progs)
	mrs := SharedMissRatios(progs, c)
	r := totalRate(progs)
	var sum float64
	for i, p := range progs {
		sum += mrs[i] * p.Rate / r
	}
	return sum
}

// SharedGroupMissRatioDirect predicts the group miss ratio directly from
// the composed footprint as fp(w+1) − c where fp(w) = c (Eq. 10 applied to
// Eq. 9). It equals SharedGroupMissRatio up to interpolation error and
// exists to test that identity.
func SharedGroupMissRatioDirect(progs []Program, c float64) float64 {
	validate(progs)
	if c >= TotalData(progs) {
		// Cold misses only: the rate-weighted per-program cold rates.
		r := totalRate(progs)
		var sum float64
		for _, p := range progs {
			sum += float64(p.Fp.M()) / float64(p.Fp.N()) * p.Rate / r
		}
		return sum
	}
	w := FillTime(progs, c)
	mr := CombinedFp(progs, w+1) - c
	if mr < 0 {
		return 0
	}
	if mr > 1 {
		return 1
	}
	return mr
}
