package compose

import (
	"fmt"
	"math"
)

// FeedbackResult reports a rate-feedback fixed point.
type FeedbackResult struct {
	// Occupancy is the natural partition at the converged rates.
	Occupancy []float64
	// MissRatios are the per-program miss ratios at those occupancies.
	MissRatios []float64
	// EffectiveRates are the converged access rates.
	EffectiveRates []float64
	// Iterations is the number of fixed-point steps taken.
	Iterations int
	// Converged reports whether the rates moved less than the tolerance
	// on the final step.
	Converged bool
}

// NaturalPartitionWithFeedback extends the natural partition with the
// feedback loop the paper leaves to future work (§IV footnote 4): a
// program that misses more stalls more, lowering its effective access
// rate, which in turn shrinks its share of the shared cache. The model is
//
//	rate_i' = rate_i / (1 + missPenalty · mr_i(occ_i))
//
// iterated (with 0.5 damping) to a fixed point. missPenalty is the
// average stall, in units of hit latencies, that one miss adds to an
// access (0 recovers the plain natural partition). It panics on a
// negative penalty or non-positive maxIter.
func NaturalPartitionWithFeedback(progs []Program, c float64, missPenalty float64, maxIter int) FeedbackResult {
	validate(progs)
	if missPenalty < 0 {
		panic(fmt.Sprintf("compose: negative miss penalty %v", missPenalty))
	}
	if maxIter <= 0 {
		panic(fmt.Sprintf("compose: non-positive iteration limit %d", maxIter))
	}
	const tol = 1e-9
	cur := make([]Program, len(progs))
	copy(cur, progs)
	res := FeedbackResult{
		EffectiveRates: make([]float64, len(progs)),
	}
	for i, p := range progs {
		res.EffectiveRates[i] = p.Rate
	}
	for iter := 1; iter <= maxIter; iter++ {
		res.Iterations = iter
		res.Occupancy = NaturalPartition(cur, c)
		res.MissRatios = make([]float64, len(cur))
		maxDelta := 0.0
		for i := range cur {
			res.MissRatios[i] = cur[i].Fp.MissRatio(res.Occupancy[i])
			target := progs[i].Rate / (1 + missPenalty*res.MissRatios[i])
			next := 0.5*res.EffectiveRates[i] + 0.5*target
			if d := math.Abs(next - res.EffectiveRates[i]); d > maxDelta {
				maxDelta = d
			}
			res.EffectiveRates[i] = next
			cur[i].Rate = next
		}
		if maxDelta < tol || missPenalty == 0 {
			res.Converged = true
			break
		}
	}
	return res
}
