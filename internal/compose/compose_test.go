package compose

import (
	"math"
	"math/rand/v2"
	"testing"

	"partitionshare/internal/cachesim"
	"partitionshare/internal/footprint"
	"partitionshare/internal/trace"
)

func randomTrace(seed uint64, n, pool int) trace.Trace {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	t := make(trace.Trace, n)
	for i := range t {
		t[i] = uint32(rng.IntN(pool))
	}
	return t
}

func prog(name string, t trace.Trace, rate float64) Program {
	return Program{Name: name, Fp: footprint.FromTrace(t), Rate: rate}
}

func TestCombinedFpSingleProgram(t *testing.T) {
	p := prog("a", randomTrace(1, 2000, 100), 1)
	for _, w := range []float64{1, 10, 100, 1000} {
		if got, want := CombinedFp([]Program{p}, w), p.Fp.At(w); math.Abs(got-want) > 1e-12 {
			t.Errorf("CombinedFp(single, %v) = %v, want %v", w, got, want)
		}
	}
}

func TestCombinedFpEqualRateStretch(t *testing.T) {
	tr := randomTrace(2, 2000, 100)
	a, b := prog("a", tr, 1), prog("b", tr, 1)
	for _, w := range []float64{2, 20, 200} {
		got := CombinedFp([]Program{a, b}, w)
		want := 2 * a.Fp.At(w/2)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("CombinedFp(w=%v) = %v, want %v", w, got, want)
		}
	}
}

func TestCombinedFpRateWeighting(t *testing.T) {
	tr := randomTrace(3, 2000, 100)
	a, b := prog("a", tr, 3), prog("b", tr, 1)
	w := 100.0
	got := CombinedFp([]Program{a, b}, w)
	want := a.Fp.At(w*0.75) + b.Fp.At(w*0.25)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("CombinedFp = %v, want %v", got, want)
	}
}

func TestFillTimeInvertsCombinedFp(t *testing.T) {
	progs := []Program{
		prog("a", randomTrace(4, 3000, 200), 2),
		prog("b", randomTrace(5, 3000, 150), 1),
	}
	for _, c := range []float64{10, 50, 150, 300} {
		w := FillTime(progs, c)
		if got := CombinedFp(progs, w); math.Abs(got-c) > 1e-3 {
			t.Errorf("CombinedFp(FillTime(%v)) = %v", c, got)
		}
	}
	if FillTime(progs, 0) != 0 {
		t.Error("FillTime(0) != 0")
	}
	if !math.IsInf(FillTime(progs, TotalData(progs)+1), 1) {
		t.Error("FillTime beyond total data should be +Inf")
	}
}

func TestNaturalPartitionSumsToCache(t *testing.T) {
	progs := []Program{
		prog("a", randomTrace(6, 3000, 200), 1),
		prog("b", randomTrace(7, 3000, 100), 2),
		prog("c", randomTrace(8, 3000, 300), 1),
	}
	c := 250.0
	occ := NaturalPartition(progs, c)
	var sum float64
	for _, o := range occ {
		sum += o
	}
	if math.Abs(sum-c) > 1e-3 {
		t.Errorf("occupancies sum to %v, want %v", sum, c)
	}
	for i, o := range occ {
		if o <= 0 {
			t.Errorf("program %d occupancy %v <= 0", i, o)
		}
	}
}

func TestNaturalPartitionSymmetry(t *testing.T) {
	tr := randomTrace(9, 3000, 200)
	progs := []Program{prog("a", tr, 1), prog("b", tr, 1)}
	occ := NaturalPartition(progs, 150)
	if math.Abs(occ[0]-occ[1]) > 1e-6 {
		t.Errorf("identical programs should split evenly: %v", occ)
	}
}

func TestNaturalPartitionCacheBiggerThanData(t *testing.T) {
	progs := []Program{
		prog("a", randomTrace(10, 1000, 50), 1),
		prog("b", randomTrace(11, 1000, 80), 1),
	}
	occ := NaturalPartition(progs, 1e6)
	if occ[0] != float64(progs[0].Fp.M()) || occ[1] != float64(progs[1].Fp.M()) {
		t.Errorf("oversized cache: occ = %v, want full footprints (%d, %d)",
			occ, progs[0].Fp.M(), progs[1].Fp.M())
	}
}

// Core §VII-C validation in miniature: the natural partition predicts the
// occupancies a simulated shared LRU cache actually settles into.
func TestNaturalPartitionMatchesSimulatedOccupancy(t *testing.T) {
	ta := randomTrace(12, 20000, 400) // bigger working set
	tb := randomTrace(13, 20000, 150) // smaller working set
	progs := []Program{prog("a", ta, 1), prog("b", tb, 1)}
	capacity := 300
	occ := NaturalPartition(progs, float64(capacity))

	iv := trace.InterleaveProportional([]trace.Trace{ta, tb}, []float64{1, 1}, 40000)
	res := cachesim.SimulateShared(iv, capacity, 20000)
	for p := 0; p < 2; p++ {
		rel := math.Abs(occ[p]-res.MeanOccupancy[p]) / res.MeanOccupancy[p]
		if rel > 0.10 {
			t.Errorf("program %d: predicted occupancy %.1f vs simulated %.1f (%.0f%% off)",
				p, occ[p], res.MeanOccupancy[p], rel*100)
		}
	}
}

// The NPA miss-ratio prediction must track the simulated shared cache.
func TestSharedMissRatiosMatchSimulation(t *testing.T) {
	ta := randomTrace(14, 20000, 400)
	tb := randomTrace(15, 20000, 150)
	progs := []Program{prog("a", ta, 1), prog("b", tb, 1)}
	capacity := 300
	pred := SharedMissRatios(progs, float64(capacity))

	iv := trace.InterleaveProportional([]trace.Trace{ta, tb}, []float64{1, 1}, 40000)
	res := cachesim.SimulateShared(iv, capacity, 10000)
	for p := 0; p < 2; p++ {
		if math.Abs(pred[p]-res.MissRatio(p)) > 0.04 {
			t.Errorf("program %d: predicted mr %.4f vs simulated %.4f", p, pred[p], res.MissRatio(p))
		}
	}
	groupPred := SharedGroupMissRatio(progs, float64(capacity))
	if math.Abs(groupPred-res.GroupMissRatio()) > 0.04 {
		t.Errorf("group: predicted %.4f vs simulated %.4f", groupPred, res.GroupMissRatio())
	}
}

func TestSharedGroupMissRatioDirectAgrees(t *testing.T) {
	progs := []Program{
		prog("a", randomTrace(16, 10000, 300), 2),
		prog("b", randomTrace(17, 10000, 200), 1),
	}
	for _, c := range []float64{50, 150, 350} {
		viaOcc := SharedGroupMissRatio(progs, c)
		direct := SharedGroupMissRatioDirect(progs, c)
		if math.Abs(viaOcc-direct) > 0.01 {
			t.Errorf("c=%v: via occupancies %.5f vs direct %.5f", c, viaOcc, direct)
		}
	}
}

func TestRoundToUnitsExactSum(t *testing.T) {
	occ := []float64{100.4, 200.3, 50.3} // 351 blocks = 2.74 units of 128
	got := RoundToUnits(occ, 3, 128)
	sum := 0
	for _, u := range got {
		sum += u
	}
	if sum != 3 {
		t.Fatalf("units sum to %d, want 3: %v", sum, got)
	}
}

func TestRoundToUnitsLargestRemainder(t *testing.T) {
	// 1.9 and 0.1 units with 2 units available: want [2, 0].
	got := RoundToUnits([]float64{243.2, 12.8}, 2, 128)
	if got[0] != 2 || got[1] != 0 {
		t.Fatalf("RoundToUnits = %v, want [2 0]", got)
	}
}

func TestRoundToUnitsOvershootTrims(t *testing.T) {
	// Occupancies exceeding cache (4 units requested, 3 available).
	got := RoundToUnits([]float64{256, 256}, 3, 128)
	sum := 0
	for _, u := range got {
		sum += u
	}
	if sum != 3 {
		t.Fatalf("units sum to %d, want 3: %v", sum, got)
	}
}

func TestNaturalPartitionUnits(t *testing.T) {
	progs := []Program{
		prog("a", randomTrace(18, 5000, 512), 1),
		prog("b", randomTrace(19, 5000, 256), 1),
	}
	units := NaturalPartitionUnits(progs, 4, 128)
	sum := 0
	for _, u := range units {
		sum += u
	}
	if sum != 4 {
		t.Fatalf("units = %v, sum %d, want 4", units, sum)
	}
	// The larger-working-set program should get at least as much.
	if units[0] < units[1] {
		t.Errorf("units = %v; program with larger working set got less", units)
	}
}

func TestPanics(t *testing.T) {
	p := prog("a", randomTrace(20, 100, 10), 1)
	bad := prog("b", randomTrace(21, 100, 10), 0)
	for i, f := range []func(){
		func() { CombinedFp(nil, 1) },
		func() { CombinedFp([]Program{bad}, 1) },
		func() { FillTime([]Program{p}, -1) },
		func() { NaturalPartitionUnits([]Program{p}, 0, 128) },
		func() { NaturalPartitionUnits([]Program{p}, 4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// Property: a program's natural occupancy grows with its access rate —
// faster programs grab more cache (the gainer/loser mechanism of §VII-B).
func TestOccupancyMonotoneInRate(t *testing.T) {
	base := randomTrace(30, 5000, 400)
	peer := randomTrace(31, 5000, 400)
	prev := 0.0
	for _, rate := range []float64{0.5, 1, 2, 4} {
		progs := []Program{prog("x", base, rate), prog("peer", peer, 1)}
		occ := NaturalPartition(progs, 300)
		if occ[0] < prev-1e-9 {
			t.Fatalf("rate %v: occupancy %v fell below %v", rate, occ[0], prev)
		}
		prev = occ[0]
	}
}

// Property: every program's occupancy grows with total cache size.
func TestOccupancyMonotoneInCache(t *testing.T) {
	progs := []Program{
		prog("a", randomTrace(32, 5000, 500), 1),
		prog("b", randomTrace(33, 5000, 250), 2),
	}
	prevA, prevB := 0.0, 0.0
	for _, c := range []float64{50, 150, 300, 600} {
		occ := NaturalPartition(progs, c)
		if occ[0] < prevA-1e-9 || occ[1] < prevB-1e-9 {
			t.Fatalf("cache %v: occupancies %v shrank from (%v, %v)", c, occ, prevA, prevB)
		}
		prevA, prevB = occ[0], occ[1]
	}
}

// Property: per-program shared miss ratios never improve when a new peer
// joins the cache (more contention, smaller occupancy).
func TestSharingMoreProgramsNeverHelps(t *testing.T) {
	a := prog("a", randomTrace(34, 5000, 400), 1)
	b := prog("b", randomTrace(35, 5000, 300), 1)
	c := prog("c", randomTrace(36, 5000, 350), 2)
	cache := 400.0
	duo := SharedMissRatios([]Program{a, b}, cache)
	trio := SharedMissRatios([]Program{a, b, c}, cache)
	if trio[0] < duo[0]-1e-9 || trio[1] < duo[1]-1e-9 {
		t.Fatalf("adding a peer improved someone: duo %v vs trio %v", duo, trio[:2])
	}
}

// Property: combined footprint is monotone in the window length.
func TestCombinedFpMonotone(t *testing.T) {
	progs := []Program{
		prog("a", randomTrace(37, 4000, 300), 1.5),
		prog("b", randomTrace(38, 4000, 200), 0.7),
	}
	prev := 0.0
	for w := 0.0; w <= 8000; w += 97 {
		v := CombinedFp(progs, w)
		if v < prev-1e-9 {
			t.Fatalf("combined fp fell at w=%v: %v < %v", w, v, prev)
		}
		prev = v
	}
}
