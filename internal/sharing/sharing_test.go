package sharing

import (
	"math"
	"math/big"
	"math/rand/v2"
	"testing"

	"partitionshare/internal/compose"
	"partitionshare/internal/footprint"
	"partitionshare/internal/trace"
)

func TestStirling2KnownValues(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {1, 1, 1}, {4, 1, 1}, {4, 2, 7}, {4, 3, 6}, {4, 4, 1},
		{5, 2, 15}, {5, 3, 25}, {6, 3, 90}, {10, 5, 42525}, {4, 5, 0}, {3, 0, 0},
	}
	for _, c := range cases {
		if got := Stirling2(c.n, c.k); got.Cmp(big.NewInt(c.want)) != 0 {
			t.Errorf("Stirling2(%d,%d) = %v, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestStirling2RowSumsToBell(t *testing.T) {
	// Bell numbers: B(1..8) = 1, 2, 5, 15, 52, 203, 877, 4140.
	bell := []int64{1, 2, 5, 15, 52, 203, 877, 4140}
	for n := 1; n <= 8; n++ {
		sum := big.NewInt(0)
		for k := 0; k <= n; k++ {
			sum.Add(sum, Stirling2(n, k))
		}
		if sum.Cmp(big.NewInt(bell[n-1])) != 0 {
			t.Errorf("sum of Stirling2(%d,·) = %v, want Bell %d", n, sum, bell[n-1])
		}
	}
}

func TestMultiset(t *testing.T) {
	cases := []struct {
		c, k int
		want int64
	}{
		{0, 0, 1}, {5, 0, 0}, {0, 3, 1}, {5, 1, 1}, {3, 2, 4}, {6, 3, 28},
	}
	for _, c := range cases {
		if got := Multiset(c.c, c.k); got.Cmp(big.NewInt(c.want)) != 0 {
			t.Errorf("Multiset(%d,%d) = %v, want %d", c.c, c.k, got, c.want)
		}
	}
}

// The paper's §II worked example: 4 programs, 8MB cache in 64B units
// (C = 131072) gives S2 = 375,368,690,761,743 and S3 = 375,317,149,057,025.
func TestPaperSearchSpaceNumbers(t *testing.T) {
	const c = 131072
	s2, ok2 := new(big.Int).SetString("375368690761743", 10)
	s3, ok3 := new(big.Int).SetString("375317149057025", 10)
	if !ok2 || !ok3 {
		t.Fatal("bad literals")
	}
	if got := SpacePartitionSharing(4, c); got.Cmp(s2) != 0 {
		t.Errorf("S2 = %v, want %v", got, s2)
	}
	if got := SpacePartitioningOnly(4, c); got.Cmp(s3) != 0 {
		t.Errorf("S3 = %v, want %v", got, s3)
	}
	// Partitioning-only covers 99.99% of the partition-sharing space.
	ratio := new(big.Float).Quo(new(big.Float).SetInt(s3), new(big.Float).SetInt(s2))
	f, _ := ratio.Float64()
	if f < 0.9998 {
		t.Errorf("S3/S2 = %v, want > 0.9998", f)
	}
}

// The paper's evaluation configuration: 4 programs, 1024 units of 8KB gives
// about 180 million partitioning-only arrangements ("(1026 choose 3)").
func TestPaperEvaluationSpace(t *testing.T) {
	got := SpacePartitioningOnly(4, 1023) // paper: C(1026,3) ≈ 180M
	want := new(big.Int).Binomial(1026, 3)
	if got.Cmp(want) != 0 {
		t.Errorf("S3(4,1023) = %v, want C(1026,3) = %v", got, want)
	}
	if f, _ := new(big.Float).SetInt(want).Float64(); math.Abs(f-1.79e8) > 0.02e8 {
		t.Errorf("C(1026,3) = %v, want ≈ 1.8e8", f)
	}
}

func TestS1IsStirling(t *testing.T) {
	if SpaceSharingMultipleCaches(4, 2).Cmp(big.NewInt(7)) != 0 {
		t.Error("S1(4,2) != 7")
	}
}

func TestSetPartitionsCounts(t *testing.T) {
	// Bell numbers again, via explicit enumeration.
	bell := []int{1, 2, 5, 15, 52, 203}
	for n := 1; n <= 6; n++ {
		parts := SetPartitions(n)
		if len(parts) != bell[n-1] {
			t.Errorf("SetPartitions(%d) has %d entries, want %d", n, len(parts), bell[n-1])
		}
		// Each partition covers every element exactly once.
		for _, groups := range parts {
			seen := make([]bool, n)
			for _, g := range groups {
				if len(g) == 0 {
					t.Fatalf("empty group in %v", groups)
				}
				for _, e := range g {
					if seen[e] {
						t.Fatalf("duplicate element in %v", groups)
					}
					seen[e] = true
				}
			}
			for e, ok := range seen {
				if !ok {
					t.Fatalf("element %d missing from %v", e, groups)
				}
			}
		}
	}
}

func TestSetPartitionsPanics(t *testing.T) {
	for i, n := range []int{0, 13} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			SetPartitions(n)
		}()
	}
}

func TestCompositionsCountAndSum(t *testing.T) {
	count := 0
	Compositions(5, 3, func(c []int) {
		count++
		if c[0]+c[1]+c[2] != 5 {
			t.Fatalf("composition %v does not sum to 5", c)
		}
	})
	// C(5+3-1, 3-1) = C(7,2) = 21.
	if count != 21 {
		t.Errorf("count = %d, want 21", count)
	}
}

func TestCompositionsPanics(t *testing.T) {
	for i, f := range []func(){
		func() { Compositions(-1, 2, func([]int) {}) },
		func() { Compositions(3, 0, func([]int) {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func randomTrace(seed uint64, n, pool int) trace.Trace {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	tr := make(trace.Trace, n)
	for i := range tr {
		tr[i] = uint32(rng.IntN(pool))
	}
	return tr
}

func progs3(t *testing.T) []compose.Program {
	t.Helper()
	return []compose.Program{
		{Name: "a", Fp: footprint.FromTrace(randomTrace(1, 6000, 300)), Rate: 1},
		{Name: "b", Fp: footprint.FromTrace(randomTrace(2, 6000, 150)), Rate: 1},
		{Name: "c", Fp: footprint.FromTrace(randomTrace(3, 6000, 500)), Rate: 2},
	}
}

func TestEvaluateSchemeSingletonMatchesSolo(t *testing.T) {
	ps := progs3(t)
	s := Scheme{Groups: [][]int{{0}, {1}, {2}}, Units: []int{2, 3, 3}}
	ev := EvaluateScheme(ps, s, 64)
	for p := range ps {
		want := ps[p].Fp.MissRatio(float64(s.Units[p]) * 64)
		if math.Abs(ev.MissRatios[p]-want) > 1e-12 {
			t.Errorf("program %d: mr %v, want solo %v", p, ev.MissRatios[p], want)
		}
	}
}

func TestEvaluateSchemeSharedGroup(t *testing.T) {
	ps := progs3(t)
	s := Scheme{Groups: [][]int{{0, 1}, {2}}, Units: []int{5, 3}}
	ev := EvaluateScheme(ps, s, 64)
	// Programs 0 and 1 behave as a shared cache of 320 blocks.
	want := compose.SharedMissRatios(ps[:2], 320)
	if math.Abs(ev.MissRatios[0]-want[0]) > 1e-12 || math.Abs(ev.MissRatios[1]-want[1]) > 1e-12 {
		t.Errorf("shared group mrs %v, want %v", ev.MissRatios[:2], want)
	}
	if ev.GroupMissRatio <= 0 {
		t.Error("group miss ratio should be positive")
	}
}

func TestEvaluateSchemePanics(t *testing.T) {
	ps := progs3(t)
	for i, s := range []Scheme{
		{Groups: [][]int{{0, 1, 2}}, Units: []int{1, 2}},      // mismatch
		{Groups: [][]int{{0, 1}, {}}, Units: []int{1, 2}},     // empty group
		{Groups: [][]int{{0, 1}, {1, 2}}, Units: []int{1, 2}}, // duplicate
		{Groups: [][]int{{0, 1}}, Units: []int{3}},            // missing program
		{Groups: [][]int{{0, 9}, {1, 2}}, Units: []int{1, 2}}, // bad index
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			EvaluateScheme(ps, s, 64)
		}()
	}
}

// The paper's central reduction (§V-A): under the natural-partition model,
// the best partitioning-only arrangement matches the best partition-sharing
// arrangement (up to unit-granularity rounding, which slightly favours
// sharing because natural occupancies are fractional).
func TestReductionPartitioningMatchesPartitionSharing(t *testing.T) {
	ps := progs3(t)
	// Same 512-block cache at three partitioning granularities. At coarse
	// granularity sharing can beat partitioning (fractional natural
	// occupancies); the gap must shrink as the unit shrinks (§II: "We
	// expect the solution in this space to approach the performance of
	// the optimal partition-sharing solution ... for higher partitioning
	// granularity").
	var prevGap float64 = math.Inf(1)
	for _, geom := range []struct {
		units         int
		blocksPerUnit int64
	}{{8, 64}, {16, 32}, {32, 16}} {
		res := Exhaustive(ps, geom.units, geom.blocksPerUnit)
		if res.BestPartitioningOnly.GroupMissRatio < res.Best.GroupMissRatio-1e-12 {
			t.Fatalf("partitioning-only (%v) better than overall best (%v) — impossible",
				res.BestPartitioningOnly.GroupMissRatio, res.Best.GroupMissRatio)
		}
		gap := (res.BestPartitioningOnly.GroupMissRatio - res.Best.GroupMissRatio) / res.Best.GroupMissRatio
		if gap > prevGap+1e-9 {
			t.Errorf("units=%d: reduction gap %.4f grew from %.4f at coarser granularity", geom.units, gap, prevGap)
		}
		prevGap = gap
	}
	if prevGap > 0.02 {
		t.Errorf("fine-granularity reduction gap %.4f, want < 2%%", prevGap)
	}
	// The search space size matches S2.
	res := Exhaustive(ps, 8, 64)
	want := SpacePartitionSharing(3, 8)
	if big.NewInt(int64(res.Evaluated)).Cmp(want) != 0 {
		t.Errorf("evaluated %d schemes, want S2 = %v", res.Evaluated, want)
	}
}

func TestExhaustivePanics(t *testing.T) {
	ps := progs3(t)
	for i, f := range []func(){
		func() { Exhaustive(nil, 4, 64) },
		func() { Exhaustive(ps, 0, 64) },
		func() { Exhaustive(ps, 4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestSchemeString(t *testing.T) {
	s := Scheme{Groups: [][]int{{0, 1}, {2}}, Units: []int{3, 5}}
	if got := s.String(); got != "{0,1}:3 {2}:5" {
		t.Errorf("String = %q", got)
	}
}

func BenchmarkSearchSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		SpacePartitionSharing(4, 131072)
	}
}

func BenchmarkExhaustive3x8(b *testing.B) {
	ps := []compose.Program{
		{Name: "a", Fp: footprint.FromTrace(randomTrace(1, 3000, 200)), Rate: 1},
		{Name: "b", Fp: footprint.FromTrace(randomTrace(2, 3000, 100)), Rate: 1},
		{Name: "c", Fp: footprint.FromTrace(randomTrace(3, 3000, 300)), Rate: 1},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Exhaustive(ps, 8, 64)
	}
}
