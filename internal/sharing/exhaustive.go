package sharing

import (
	"fmt"
	"math"

	"partitionshare/internal/compose"
)

// Scheme is one partition-sharing arrangement: programs grouped into
// partitions with a cache allocation per partition, in units.
type Scheme struct {
	// Groups[g] lists the program indices sharing partition g.
	Groups [][]int
	// Units[g] is partition g's size in cache units.
	Units []int
}

// String renders the scheme compactly, e.g. "{0,1}:3 {2}:5".
func (s Scheme) String() string {
	out := ""
	for g, members := range s.Groups {
		if g > 0 {
			out += " "
		}
		out += "{"
		for i, p := range members {
			if i > 0 {
				out += ","
			}
			out += fmt.Sprint(p)
		}
		out += fmt.Sprintf("}:%d", s.Units[g])
	}
	return out
}

// Evaluation is the predicted performance of a scheme.
type Evaluation struct {
	Scheme Scheme
	// MissRatios[p] is program p's predicted miss ratio: within each
	// shared partition, the natural-partition model applies.
	MissRatios []float64
	// GroupMissRatio is total predicted misses over total accesses.
	GroupMissRatio float64
}

// EvaluateScheme predicts the performance of a partition-sharing scheme
// under the HOTL model: each shared partition behaves as its own shared
// cache, so each program performs at its natural occupancy within its
// partition (§V-A). blocksPerUnit converts units to blocks.
func EvaluateScheme(progs []compose.Program, s Scheme, blocksPerUnit int64) Evaluation {
	if len(s.Groups) != len(s.Units) {
		panic(fmt.Sprintf("sharing: %d groups but %d unit entries", len(s.Groups), len(s.Units)))
	}
	ev := Evaluation{Scheme: s, MissRatios: make([]float64, len(progs))}
	seen := make([]bool, len(progs))
	var misses, accesses float64
	for g, members := range s.Groups {
		if len(members) == 0 {
			panic(fmt.Sprintf("sharing: group %d is empty", g))
		}
		sub := make([]compose.Program, len(members))
		for i, p := range members {
			if p < 0 || p >= len(progs) {
				panic(fmt.Sprintf("sharing: invalid program index %d", p))
			}
			if seen[p] {
				panic(fmt.Sprintf("sharing: program %d appears twice", p))
			}
			seen[p] = true
			sub[i] = progs[p]
		}
		blocks := float64(s.Units[g]) * float64(blocksPerUnit)
		var mrs []float64
		if len(sub) == 1 {
			mrs = []float64{sub[0].Fp.MissRatio(blocks)}
		} else {
			mrs = compose.SharedMissRatios(sub, blocks)
		}
		for i, p := range members {
			ev.MissRatios[p] = mrs[i]
			misses += mrs[i] * float64(progs[p].Fp.N())
			accesses += float64(progs[p].Fp.N())
		}
	}
	for p, ok := range seen {
		if !ok {
			panic(fmt.Sprintf("sharing: program %d not assigned to any group", p))
		}
	}
	if accesses > 0 {
		ev.GroupMissRatio = misses / accesses
	}
	return ev
}

// ExhaustiveResult reports the exhaustive search over all partition-sharing
// arrangements of a program group.
type ExhaustiveResult struct {
	// Best is the best arrangement over the entire space (any grouping).
	Best Evaluation
	// BestPartitioningOnly is the best arrangement restricted to
	// singleton groups (strict partitioning).
	BestPartitioningOnly Evaluation
	// Evaluated counts the arrangements examined.
	Evaluated int
}

// Exhaustive enumerates every grouping of the programs and every unit
// allocation to the groups of a cache with the given units, evaluating each
// under the HOTL model, and returns the best overall and the best
// partitioning-only arrangement. The search space is S2 (Eq. 2): keep
// programs and units small. Under the natural partition assumption, the two
// results coincide up to unit-granularity rounding — the paper's reduction
// of partition-sharing to partitioning.
func Exhaustive(progs []compose.Program, units int, blocksPerUnit int64) ExhaustiveResult {
	if len(progs) == 0 {
		panic("sharing: no programs")
	}
	if units < 1 || blocksPerUnit < 1 {
		panic(fmt.Sprintf("sharing: invalid geometry units=%d blocksPerUnit=%d", units, blocksPerUnit))
	}
	res := ExhaustiveResult{
		Best:                 Evaluation{GroupMissRatio: math.Inf(1)},
		BestPartitioningOnly: Evaluation{GroupMissRatio: math.Inf(1)},
	}
	for _, groups := range SetPartitions(len(progs)) {
		partitioningOnly := len(groups) == len(progs)
		Compositions(units, len(groups), func(alloc []int) {
			u := make([]int, len(alloc))
			copy(u, alloc)
			g := make([][]int, len(groups))
			copy(g, groups)
			ev := EvaluateScheme(progs, Scheme{Groups: g, Units: u}, blocksPerUnit)
			res.Evaluated++
			if ev.GroupMissRatio < res.Best.GroupMissRatio {
				res.Best = ev
			}
			if partitioningOnly && ev.GroupMissRatio < res.BestPartitioningOnly.GroupMissRatio {
				res.BestPartitioningOnly = ev
			}
		})
	}
	return res
}
