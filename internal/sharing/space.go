// Package sharing implements the partition-sharing machinery of the
// paper's §II: the three search-space sizes (Eq. 1–3), enumeration of
// groupings (set partitions) and cache-wall placements, and an exhaustive
// small-case partition-sharing optimizer used to verify empirically that
// optimal partitioning matches optimal partition-sharing under the natural
// partition assumption (§V-A).
package sharing

import (
	"fmt"
	"math/big"
)

// Stirling2 returns the Stirling number of the second kind {n, k}: the
// number of ways to partition n labelled items into k non-empty unlabelled
// groups.
func Stirling2(n, k int) *big.Int {
	if n < 0 || k < 0 {
		panic(fmt.Sprintf("sharing: Stirling2(%d, %d) undefined", n, k))
	}
	if k > n {
		return big.NewInt(0)
	}
	if n == 0 && k == 0 {
		return big.NewInt(1)
	}
	if k == 0 {
		return big.NewInt(0)
	}
	// S(n,k) = k*S(n-1,k) + S(n-1,k-1), row by row.
	prev := make([]*big.Int, n+1)
	cur := make([]*big.Int, n+1)
	for i := range prev {
		prev[i] = big.NewInt(0)
		cur[i] = big.NewInt(0)
	}
	prev[0] = big.NewInt(1) // row n=0
	for row := 1; row <= n; row++ {
		cur[0] = big.NewInt(0)
		for j := 1; j <= row && j <= k; j++ {
			t := new(big.Int).Mul(big.NewInt(int64(j)), prev[j])
			cur[j] = t.Add(t, prev[j-1])
		}
		copy(prev, cur)
	}
	return new(big.Int).Set(prev[k])
}

// Multiset returns the number of ways to distribute c indistinguishable
// cache units among k distinguishable partitions (stars and bars):
// C(c+k-1, k-1).
func Multiset(c, k int) *big.Int {
	if c < 0 || k < 0 {
		panic(fmt.Sprintf("sharing: Multiset(%d, %d) undefined", c, k))
	}
	if k == 0 {
		if c == 0 {
			return big.NewInt(1)
		}
		return big.NewInt(0)
	}
	return new(big.Int).Binomial(int64(c+k-1), int64(k-1))
}

// SpaceSharingMultipleCaches returns S1 (Eq. 1): the number of ways to
// split npr programs into nc non-empty shared caches — the Stirling number
// {npr, nc}.
func SpaceSharingMultipleCaches(npr, nc int) *big.Int {
	return Stirling2(npr, nc)
}

// SpacePartitionSharing returns S2 (Eq. 2): the number of partition-sharing
// arrangements of npr programs in a single cache of C units —
// Σ_{npa=1}^{npr} {npr, npa} · C(C+npa−1, npa−1).
func SpacePartitionSharing(npr, c int) *big.Int {
	if npr < 1 {
		panic(fmt.Sprintf("sharing: need at least 1 program, got %d", npr))
	}
	sum := big.NewInt(0)
	for npa := 1; npa <= npr; npa++ {
		term := new(big.Int).Mul(Stirling2(npr, npa), Multiset(c, npa))
		sum.Add(sum, term)
	}
	return sum
}

// SpacePartitioningOnly returns S3 (Eq. 3): the number of ways to assign C
// units among npr dedicated partitions — C(C+npr−1, npr−1).
func SpacePartitioningOnly(npr, c int) *big.Int {
	return Multiset(c, npr)
}

// SetPartitions enumerates every partition of {0,...,n-1} into non-empty
// groups, via restricted-growth strings. The total count is the Bell
// number B(n); callers should keep n small (n=10 gives 115975). It panics
// for n < 1 or n > 12.
func SetPartitions(n int) [][][]int {
	if n < 1 || n > 12 {
		panic(fmt.Sprintf("sharing: SetPartitions(%d) out of supported range [1,12]", n))
	}
	var out [][][]int
	rgs := make([]int, n)
	var rec func(i, max int)
	rec = func(i, max int) {
		if i == n {
			ngroups := max + 1
			groups := make([][]int, ngroups)
			for e, g := range rgs {
				groups[g] = append(groups[g], e)
			}
			out = append(out, groups)
			return
		}
		for g := 0; g <= max+1; g++ {
			rgs[i] = g
			nm := max
			if g > max {
				nm = g
			}
			rec(i+1, nm)
		}
	}
	rgs[0] = 0
	rec(1, 0)
	return out
}

// Compositions enumerates every way to write total as an ordered sum of
// parts non-negative integers, calling visit with each (the slice is reused
// between calls). There are C(total+parts-1, parts-1) compositions.
func Compositions(total, parts int, visit func([]int)) {
	if total < 0 || parts < 1 {
		panic(fmt.Sprintf("sharing: Compositions(%d, %d) undefined", total, parts))
	}
	comp := make([]int, parts)
	var rec func(i, left int)
	rec = func(i, left int) {
		if i == parts-1 {
			comp[i] = left
			visit(comp)
			return
		}
		for v := 0; v <= left; v++ {
			comp[i] = v
			rec(i+1, left-v)
		}
	}
	rec(0, total)
}
