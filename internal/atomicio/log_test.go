package atomicio

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"partitionshare/internal/faultinject"
)

func replayAll(t *testing.T, path string) (recs [][]byte, torn bool) {
	t.Helper()
	torn, err := ReplayLog(path, func(rec []byte) error {
		recs = append(recs, append([]byte{}, rec...))
		return nil
	})
	if err != nil {
		t.Fatalf("ReplayLog: %v", err)
	}
	return recs, torn
}

func TestLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("one"), []byte(""), bytes.Repeat([]byte{0xab}, 4096)}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, torn := replayAll(t, path)
	if torn {
		t.Fatalf("clean log reported torn")
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestLogMissingFileReplaysEmpty(t *testing.T) {
	recs, torn := replayAll(t, filepath.Join(t.TempDir(), "absent.log"))
	if torn || len(recs) != 0 {
		t.Fatalf("missing log: recs=%d torn=%v", len(recs), torn)
	}
}

// TestLogTornTail simulates a kill mid-append: a partial final frame on
// disk. Replay must deliver every earlier record and flag the tear.
func TestLogTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("keep-me")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("tear-me-apart")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(data) - 1; cut > len(data)-13; cut-- {
		trimmed := filepath.Join(t.TempDir(), "trimmed.log")
		writeRaw(t, trimmed, data[:cut])
		recs, torn := replayAll(t, trimmed)
		if !torn {
			t.Fatalf("cut at %d/%d not reported torn", cut, len(data))
		}
		if len(recs) != 1 || string(recs[0]) != "keep-me" {
			t.Fatalf("cut at %d: surviving records %q", cut, recs)
		}
	}
}

// TestLogCorruptTail flips a payload byte in the final record: the CRC
// must reject it while preserving everything before it.
func TestLogCorruptTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("keep-me")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("corrupt-me")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	writeRaw(t, path, data)
	recs, torn := replayAll(t, path)
	if !torn || len(recs) != 1 || string(recs[0]) != "keep-me" {
		t.Fatalf("corrupt tail: recs=%q torn=%v", recs, torn)
	}
}

// TestLogInjectedTornAppendRollsBack arms the partial-write fault: the
// failed append must truncate itself off so later appends stay intact.
func TestLogInjectedTornAppendRollsBack(t *testing.T) {
	plan := faultinject.NewPlan()
	plan.Set(FaultLogAppend, Rule2())
	faultinject.Enable(plan)
	defer faultinject.Enable(nil)

	path := filepath.Join(t.TempDir(), "j.log")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("first")); err != nil {
		t.Fatalf("append 0: %v", err)
	}
	if err := l.Append([]byte("torn-record")); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("append 1 = %v, want injected error", err)
	}
	if err := l.Append([]byte("third")); err != nil {
		t.Fatalf("append 2 after rollback: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, torn := replayAll(t, path)
	if torn {
		t.Fatalf("rolled-back log reported torn")
	}
	if len(recs) != 2 || string(recs[0]) != "first" || string(recs[1]) != "third" {
		t.Fatalf("surviving records %q", recs)
	}
}

// Rule2 arms the second hit (index 1) with a 3-byte truncation.
func Rule2() faultinject.Rule {
	return faultinject.Rule{After: 1, Count: 1, TruncateAt: 3}
}

// TestLogInjectedSyncFailure arms the pre-sync fault point: the append
// reports failure and rolls the frame back.
func TestLogInjectedSyncFailure(t *testing.T) {
	plan := faultinject.NewPlan()
	plan.Set(FaultLogSync, faultinject.Rule{Count: 1})
	faultinject.Enable(plan)
	defer faultinject.Enable(nil)

	path := filepath.Join(t.TempDir(), "j.log")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("doomed")); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("append = %v, want injected error", err)
	}
	if err := l.Append([]byte("fine")); err != nil {
		t.Fatalf("append after failure: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, torn := replayAll(t, path)
	if torn || len(recs) != 1 || string(recs[0]) != "fine" {
		t.Fatalf("surviving records %q torn=%v", recs, torn)
	}
}

// TestWriteFileInjectedFaults proves the WriteFile crash windows: a torn
// content write and a failed pre-rename sync both leave the destination
// byte-identical to its previous content.
func TestWriteFileInjectedFaults(t *testing.T) {
	for _, point := range []string{FaultWrite, FaultSync} {
		t.Run(point, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "out.txt")
			if err := WriteFileBytes(path, []byte("old content")); err != nil {
				t.Fatal(err)
			}
			plan := faultinject.NewPlan()
			plan.Set(point, faultinject.Rule{Count: 1, TruncateAt: 2})
			faultinject.Enable(plan)
			defer faultinject.Enable(nil)

			err := WriteFileBytes(path, []byte("new content"))
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("WriteFileBytes = %v, want injected error", err)
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "old content" {
				t.Fatalf("destination = %q after injected fault, want old content", got)
			}
			ents, err := os.ReadDir(filepath.Dir(path))
			if err != nil {
				t.Fatal(err)
			}
			if len(ents) != 1 {
				t.Fatalf("temp litter left behind: %v", ents)
			}
		})
	}
}

func writeRaw(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func ExampleReplayLog() {
	dir, _ := os.MkdirTemp("", "log")
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "j.log")
	l, _ := OpenLog(path)
	l.Append([]byte("a"))
	l.Append([]byte("b"))
	l.Close()
	n := 0
	ReplayLog(path, func(rec []byte) error { n++; return nil })
	fmt.Println(n)
	// Output: 2
}
