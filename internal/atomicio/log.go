package atomicio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"partitionshare/internal/faultinject"
)

// Append-only log with torn-tail-tolerant replay — the journal half of a
// snapshot+journal store (internal/service's tenant store). A rename-based
// atomic write is the wrong tool for an append log (rewriting the whole
// file per record is O(n²) in records), so this is the one other durable
// write primitive the package blesses: length- and CRC-framed records,
// each fsynced before Append returns, with a failed append truncated back
// off the file so the log never accumulates garbage between valid records.
//
// Crash contract: a record is durable iff Append returned nil. A crash —
// including kill -9 — mid-append leaves a torn final frame that Replay
// detects (short frame or CRC mismatch) and discards, reporting torn=true
// so the owner can compact. Records before the tail are never affected.

// Fault points in the log path (see the WriteFile points above).
const (
	// FaultLogAppend wraps the frame write: a firing partial-write rule
	// tears the appended frame mid-record.
	FaultLogAppend = "atomicio.log.append"
	// FaultLogSync fires between the frame write and its fsync.
	FaultLogSync = "atomicio.log.sync"
)

// ErrLogBroken reports an append log whose file offset could not be
// restored after a failed append; the log refuses further appends and
// the owner must compact (rewrite snapshot, recreate the log).
var ErrLogBroken = errors.New("atomicio: append log broken")

// maxLogRecord bounds a single record's declared length (64 MiB): replay
// of a corrupt length prefix must fail fast, not allocate gigabytes.
const maxLogRecord = 1 << 26

// A Log is a durable append-only record log. Not safe for concurrent
// Append; the owner serializes writers (the tenant store holds its own
// lock). Construct with OpenLog.
type Log struct {
	f      *os.File
	broken bool
}

// OpenLog opens (creating if absent) the append log at path.
func OpenLog(path string) (*Log, error) {
	// The raw write-mode OpenFile is legal here and only here: this file
	// is the blessed append-log primitive, inside the one package the
	// atomicwrite analyzer exempts.
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("atomicio: %w", err)
	}
	return &Log{f: f}, nil
}

// Append frames rec (uvarint length, CRC-32/IEEE, payload) onto the log
// and fsyncs. On any failure the log truncates itself back to the
// pre-append offset, so a failed append leaves no partial frame for the
// next Append to bury; if even the truncate fails, the log is marked
// broken and every later Append returns ErrLogBroken.
func (l *Log) Append(rec []byte) error {
	if l.broken {
		return ErrLogBroken
	}
	start, err := l.f.Seek(0, io.SeekEnd)
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	var hdr [binary.MaxVarintLen64 + 4]byte
	n := binary.PutUvarint(hdr[:], uint64(len(rec)))
	binary.LittleEndian.PutUint32(hdr[n:], crc32.ChecksumIEEE(rec))
	frame := append(append([]byte{}, hdr[:n+4]...), rec...)

	w := faultinject.Writer(FaultLogAppend, l.f)
	if _, err := w.Write(frame); err != nil {
		return l.rollback(start, err)
	}
	if err := faultinject.Hit(FaultLogSync); err != nil {
		return l.rollback(start, err)
	}
	if err := l.f.Sync(); err != nil {
		return l.rollback(start, err)
	}
	return nil
}

// rollback truncates a failed append's partial frame back off the file.
func (l *Log) rollback(start int64, cause error) error {
	if err := l.f.Truncate(start); err != nil {
		l.broken = true
		return fmt.Errorf("%w: truncate after failed append: %v (append: %v)", ErrLogBroken, err, cause)
	}
	return fmt.Errorf("atomicio: log append: %w", cause)
}

// Close closes the log file.
func (l *Log) Close() error {
	if l == nil || l.f == nil {
		return nil
	}
	return l.f.Close()
}

// ReplayLog reads every intact record at path in append order, calling
// fn for each. A torn or corrupt tail — a truncated frame, a CRC
// mismatch, an implausible length — stops the replay and reports
// torn=true; everything before it has already been delivered. A missing
// file replays zero records. fn errors abort the replay.
func ReplayLog(path string, fn func(rec []byte) error) (torn bool, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("atomicio: %w", err)
	}
	defer f.Close()

	data, err := io.ReadAll(f)
	if err != nil {
		return false, fmt.Errorf("atomicio: %w", err)
	}
	off := 0
	for off < len(data) {
		length, n := binary.Uvarint(data[off:])
		if n <= 0 || length > maxLogRecord {
			return true, nil
		}
		recStart := off + n + 4
		recEnd := recStart + int(length)
		if recEnd > len(data) || recStart > len(data) {
			return true, nil
		}
		sum := binary.LittleEndian.Uint32(data[off+n:])
		rec := data[recStart:recEnd]
		if crc32.ChecksumIEEE(rec) != sum {
			return true, nil
		}
		if err := fn(rec); err != nil {
			return false, err
		}
		off = recEnd
	}
	return false, nil
}
