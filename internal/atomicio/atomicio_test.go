package atomicio

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileBytes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFileBytes(path, []byte("hello\n")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello\n" {
		t.Fatalf("content = %q", got)
	}
}

func TestWriteFileReplacesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFileBytes(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileBytes(path, []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new" {
		t.Fatalf("content = %q", got)
	}
}

// A failing write callback must leave the old content intact and no
// temporary files behind.
func TestWriteFileFailureLeavesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFileBytes(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	werr := fmt.Errorf("boom")
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return werr
	})
	if !errors.Is(err, werr) {
		t.Fatalf("err = %v, want %v", err, werr)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "old" {
		t.Fatalf("content = %q, want old content preserved", got)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestWriteFileMissingDir(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nodir", "out.txt")
	if err := WriteFileBytes(path, []byte("x")); err == nil {
		t.Fatal("expected error for missing directory")
	}
}
