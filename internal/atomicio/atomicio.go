// Package atomicio writes files atomically: content goes to a temporary
// file in the destination directory and is renamed into place only after a
// successful write and sync. Readers therefore never observe a partially
// written file — a crashed or interrupted writer leaves either the old
// content or nothing, which is what lets the experiment harness checkpoint
// mid-sweep and the CSV/profile writers survive a Ctrl-C.
package atomicio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"partitionshare/internal/faultinject"
)

// Fault points (internal/faultinject) in the atomic write path. They are
// nil-check no-ops in production; chaos tests arm them to prove that an
// I/O error or torn write at any step leaves the destination untouched.
const (
	// FaultWrite wraps the writer handed to the write callback: a firing
	// partial-write rule truncates the temp-file content mid-stream.
	FaultWrite = "atomicio.write"
	// FaultSync fires between the content sync and the rename — the
	// widest crash window: the temp file is complete but the destination
	// still holds the old content.
	FaultSync = "atomicio.sync"
)

// WriteFile writes the output of write to path atomically. The write
// callback receives a buffered writer backed by a temporary file next to
// path; on success the temporary file is synced, closed, and renamed over
// path with mode 0o644. On any failure the temporary file is removed and
// path is left untouched.
func WriteFile(path string, write func(w io.Writer) error) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriter(tmp)
	if err = write(faultinject.Writer(FaultWrite, bw)); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	// Sync before rename so a crash right after the rename cannot leave an
	// empty or partial file under the final name.
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	if err = faultinject.Hit(FaultSync); err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	if err = tmp.Chmod(0o644); err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("atomicio: %w", err)
	}
	return nil
}

// WriteFileBytes writes data to path atomically.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}
