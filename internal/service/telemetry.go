package service

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"partitionshare/internal/obs"
)

// This file is the request-telemetry middleware: the wrap envelope every
// API handler runs under. It ingests (or mints) a W3C traceparent,
// threads the trace identity and a per-request stage collector through
// the context, opens the root service.req span the instrumented layers
// (admission, curves, solve, store) parent under, and — once the
// response is out — records the request into the RED rollups, the
// per-tenant bounded child set, the latency histogram (with a trace-ID
// exemplar), and the flight recorder. The same trace ID travels in the
// response traceparent header, the error envelope's trace_id field, and
// the flight-recorder record, so one identifier correlates all three.

// TraceparentHeader is the W3C trace-context header the service reads
// from requests and echoes on every response.
const TraceparentHeader = "traceparent"

// Admission outcomes recorded in flight-recorder entries.
const (
	outcomeAdmitted        = "admitted"
	outcomeQueued          = "queued"
	outcomeShed            = "shed"
	outcomeDeadlineInQueue = "deadline_in_queue"
)

// statusWriter observes the status code a handler writes so the
// telemetry defer can attribute the request after the fact. Handlers
// still set status exclusively through the envelope writers; this
// wrapper only watches.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	//vetkit:ignore(httpenvelope): transparent forwarder — the envelope writers run on top of this wrapper
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so the SSE stream handler can
// push events through the wrapper as they happen.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// reqTelemetry carries per-request attribution the inner layers fill in
// as they learn it: which tenant the request concerns, the envelope
// error code it ended with, and the admission outcome. It rides the
// context so handlers and the limiter report without new plumbing.
type reqTelemetry struct {
	mu      sync.Mutex
	tenant  string
	code    string
	outcome string
	epoch   int64
}

type reqTelemetryKey struct{}

// telemetryFrom returns the request's telemetry carrier, or nil outside
// the middleware (direct Service calls, tests) — all setters are
// nil-safe so instrumented code never branches.
func telemetryFrom(ctx context.Context) *reqTelemetry {
	if ctx == nil {
		return nil
	}
	rt, _ := ctx.Value(reqTelemetryKey{}).(*reqTelemetry)
	return rt
}

func (rt *reqTelemetry) setTenant(name string) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	rt.tenant = name
	rt.mu.Unlock()
}

func (rt *reqTelemetry) setCode(code string) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	rt.code = code
	rt.mu.Unlock()
}

func (rt *reqTelemetry) setOutcome(o string) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	rt.outcome = o
	rt.mu.Unlock()
}

// setEpoch records the plan epoch the request served or observed, for
// the flight-recorder record (correlates /debug/requests entries with
// the /debug/epochs timeline).
func (rt *reqTelemetry) setEpoch(epoch int64) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	rt.epoch = epoch
	rt.mu.Unlock()
}

func (rt *reqTelemetry) get() (tenant, code, outcome string, epoch int64) {
	if rt == nil {
		return "", "", "", 0
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.tenant, rt.code, rt.outcome, rt.epoch
}

// statusClass buckets an HTTP status for the by-class RED counters.
func statusClass(status int) string {
	switch {
	case status < 300:
		return "2xx"
	case status < 400:
		return "3xx"
	case status < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// startStage opens one traced request stage: a child span under the
// context's current span plus an entry in the request's stage
// collector. The returned context parents further spans (and carries
// the deadline) into the stage; done ends both. Works unchanged when
// tracing or stage collection is disabled.
func startStage(ctx context.Context, name string) (context.Context, func()) {
	//vetkit:ignore(obsname): stage names are forwarded spanReq* constants from the call sites
	sctx, span := obs.StartTraceSpan(ctx, name, "service")
	rs := obs.ReqStagesFrom(ctx)
	start := time.Now()
	return sctx, func() {
		span.End()
		rs.Add(name, time.Since(start))
	}
}

// wrap applies the common robustness-and-telemetry envelope: trace
// ingest, drain refusal, request deadline, per-route and per-tenant
// metrics, flight recording, and panic containment (a handler bug
// becomes a 500, never a daemon crash).
func (s *Service) wrap(route string, fn func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	return s.wrapWith(route, fn, true)
}

// wrapStream is the wrap variant for the change-feed endpoints: the
// same telemetry envelope, but without the per-request solve deadline —
// a long-poll or SSE stream legitimately outlives it; the handlers
// bound their own waits (?wait_ms capped by the default deadline) and
// end on client disconnect or feed shutdown.
func (s *Service) wrapStream(route string, fn func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	return s.wrapWith(route, fn, false)
}

func (s *Service) wrapWith(route string, fn func(http.ResponseWriter, *http.Request) error, applyDeadline bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		reg := obs.Enabled()
		reg.Counter(mHTTPRequestsPrefix + route).Add(1)

		// Trace ingest: adopt a well-formed caller trace ID (minting our
		// own span ID), replace anything malformed with a fresh identity,
		// and echo the chosen traceparent up front so even a shed or
		// panicking response carries it.
		tc, _ := obs.EnsureTraceContext(r.Header.Get(TraceparentHeader))
		w.Header().Set(TraceparentHeader, tc.Traceparent())
		ctx := obs.WithTraceContext(r.Context(), tc)
		ctx, stages := obs.WithReqStages(ctx)
		rt := &reqTelemetry{}
		ctx = context.WithValue(ctx, reqTelemetryKey{}, rt)
		ctx, root := obs.StartTraceSpan(ctx, spanReq, "service")
		r = r.WithContext(ctx)
		sw := &statusWriter{ResponseWriter: w}

		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				reg.Counter(mHTTPPanics).Add(1)
				obs.Logger().Error("handler panic", "route", route, "panic", fmt.Sprint(p))
				writeJSON(sw, http.StatusInternalServerError,
					apiError{Error: "internal", Detail: "handler panic", TraceID: tc.TraceIDString()})
			}
			root.End()
			s.recordRequest(reg, r, route, sw.status, tc.TraceIDString(), rt, stages, start)
		}()
		if s.draining.Load() {
			writeError(sw, r, ErrDraining)
			return
		}
		if !applyDeadline {
			if err := fn(sw, r); err != nil {
				writeError(sw, r, err)
			}
			return
		}
		dctx, cancel, err := s.requestContext(r)
		if err != nil {
			writeError(sw, r, err)
			return
		}
		defer cancel()
		if err := fn(sw, r.WithContext(dctx)); err != nil {
			writeError(sw, r, err)
		}
	}
}

// recordRequest files one finished request into every telemetry sink:
// RED rollups, the per-tenant child set, the per-route latency
// histogram (with the trace ID as the bucket's exemplar), and the
// flight recorder. Runs once per request, after the response is out.
func (s *Service) recordRequest(reg *obs.Registry, r *http.Request, route string, status int,
	traceID string, rt *reqTelemetry, stages *obs.ReqStages, start time.Time) {
	if status == 0 {
		status = http.StatusOK // handler wrote nothing: implicit 200
	}
	class := statusClass(status)
	dur := time.Since(start)
	reg.Counter(mRequests).Add(1)
	reg.Counter(mRequestsByClassPrefix + class).Add(1)
	switch status {
	case 499:
		reg.Counter(mRequestsCanceled).Add(1)
	case http.StatusGatewayTimeout:
		reg.Counter(mRequestsDeadline).Add(1)
	}
	reg.Histogram(mHTTPLatencyPrefix+route, obs.DurationBuckets()).
		ObserveExemplar(dur.Nanoseconds(), traceID)

	tenant, code, outcome, epoch := rt.get()
	if tenant != "" {
		child := reg.ChildSet(mTenantPrefix, s.cfg.TenantSeriesCap).Child(tenant)
		child.Counter(tenantRequestsPrefix + route).Add(1)
		if status >= 400 {
			child.Counter(tenantErrorsPrefix + class).Add(1)
		}
		child.Histogram(tenantLatencyPrefix+route, obs.DurationBuckets()).Observe(dur.Nanoseconds())
	}

	fr := obs.ActiveFlightRecorder()
	fr.Record(obs.RequestRecord{
		Method:  r.Method,
		Route:   route,
		Tenant:  tenant,
		Status:  status,
		Code:    code,
		Outcome: outcome,
		TraceID: traceID,
		Epoch:   epoch,
		StartNS: start.Sub(fr.Start()).Nanoseconds(),
		DurNS:   dur.Nanoseconds(),
		Stages:  stages.Stages(),
	})
}
