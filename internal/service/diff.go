package service

import "sort"

// A TenantDelta is one tenant's allocation change across an epoch
// transition: FromUnits is its share under the previous plan (0 when it
// just joined), ToUnits its share under the new one (0 when it left),
// DeltaUnits the signed difference.
type TenantDelta struct {
	Tenant     string `json:"tenant"`
	FromUnits  int    `json:"from_units"`
	ToUnits    int    `json:"to_units"`
	DeltaUnits int    `json:"delta_units"`
}

// A PlanDiff summarizes one epoch transition: the per-tenant deltas over
// the union of both plans' tenants, ranked movers first (by |delta|
// descending, name ascending to break ties), plus the churn summary —
// UnitsMoved is the total units that changed hands (the sum of positive
// deltas; equal to the sum of negative ones when total capacity is
// unchanged), Gained/Lost the tenants present only in the new/old plan.
type PlanDiff struct {
	FromEpoch  int64         `json:"from_epoch"`
	ToEpoch    int64         `json:"to_epoch"`
	Deltas     []TenantDelta `json:"deltas,omitempty"`
	UnitsMoved int           `json:"units_moved"`
	Gained     []string      `json:"gained,omitempty"`
	Lost       []string      `json:"lost,omitempty"`
}

// ComputePlanDiff diffs two epoch plans. Either side may be nil: a nil
// prev means every tenant of next is gained (the first epoch), a nil
// next means every tenant of prev is lost (the group emptied). Both nil
// yields the zero diff.
func ComputePlanDiff(prev, next *Plan) PlanDiff {
	d := PlanDiff{FromEpoch: -1, ToEpoch: -1}
	from := map[string]int{}
	if prev != nil {
		d.FromEpoch = prev.Epoch
		for i, t := range prev.Tenants {
			from[t] = prev.Alloc[i]
		}
	}
	to := map[string]int{}
	if next != nil {
		d.ToEpoch = next.Epoch
		for i, t := range next.Tenants {
			to[t] = next.Alloc[i]
		}
	}
	names := make([]string, 0, len(from)+len(to))
	for t := range from {
		names = append(names, t)
	}
	for t := range to {
		if _, dup := from[t]; !dup {
			names = append(names, t)
		}
	}
	for _, t := range names {
		fu, wasThere := from[t]
		tu, isThere := to[t]
		d.Deltas = append(d.Deltas, TenantDelta{Tenant: t, FromUnits: fu, ToUnits: tu, DeltaUnits: tu - fu})
		if !wasThere {
			d.Gained = append(d.Gained, t)
		}
		if !isThere {
			d.Lost = append(d.Lost, t)
		}
		if tu > fu {
			d.UnitsMoved += tu - fu
		}
	}
	sort.Slice(d.Deltas, func(i, j int) bool {
		ai, aj := abs(d.Deltas[i].DeltaUnits), abs(d.Deltas[j].DeltaUnits)
		if ai != aj {
			return ai > aj
		}
		return d.Deltas[i].Tenant < d.Deltas[j].Tenant
	})
	sort.Strings(d.Gained)
	sort.Strings(d.Lost)
	return d
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
