package service

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"partitionshare/internal/faultinject"
	"partitionshare/internal/obs"
)

// withTelemetry installs a fresh registry, tracer, and flight recorder
// for one test and restores the previous globals afterwards.
func withTelemetry(t *testing.T) (*obs.Registry, *obs.Tracer, *obs.FlightRecorder) {
	t.Helper()
	prevReg, prevTr, prevFr := obs.Enabled(), obs.ActiveTracer(), obs.ActiveFlightRecorder()
	reg := obs.NewRegistry()
	tr := obs.NewTracer(0, nil)
	fr := obs.NewFlightRecorder(0)
	obs.Enable(reg)
	obs.EnableTracer(tr)
	obs.EnableFlightRecorder(fr)
	t.Cleanup(func() {
		obs.Enable(prevReg)
		obs.EnableTracer(prevTr)
		obs.EnableFlightRecorder(prevFr)
	})
	return reg, tr, fr
}

// serveDirect runs one request through the service handler without a
// network listener.
func serveDirect(t *testing.T, h http.Handler, method, target, traceparent string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body != nil {
		req = httptest.NewRequest(method, target, strings.NewReader(string(body)))
	} else {
		req = httptest.NewRequest(method, target, nil)
	}
	if traceparent != "" {
		req.Header.Set(TraceparentHeader, traceparent)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// The tentpole acceptance path: a plan request carrying a W3C
// traceparent yields the same trace ID in the response header, the
// flight-recorder entry, and (on errors) the envelope — and the request
// renders as one span tree with the admission, curves, and solve stages
// parented under the root request span.
func TestHTTPTraceContextEndToEnd(t *testing.T) {
	_, tr, fr := withTelemetry(t)
	svc := newTestService(t, testConfig())
	if err := svc.Register(nil, "t1", testProfile(t, 1)); err != nil {
		t.Fatal(err)
	}
	h := svc.Handler()

	const inbound = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	const wantTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	rec := serveDirect(t, h, "POST", "/v1/plan", inbound, []byte(`{"tenants":["t1"]}`))
	if rec.Code != http.StatusOK {
		t.Fatalf("plan = %d %s", rec.Code, rec.Body.String())
	}

	// Response header: same trace ID, our own (new) span ID.
	echoed := rec.Header().Get(TraceparentHeader)
	tc, err := obs.ParseTraceparent(echoed)
	if err != nil {
		t.Fatalf("echoed traceparent %q malformed: %v", echoed, err)
	}
	if tc.TraceIDString() != wantTrace {
		t.Fatalf("echoed trace ID %s, want caller's %s", tc.TraceIDString(), wantTrace)
	}
	if strings.Contains(echoed, "00f067aa0ba902b7") {
		t.Fatal("response reused the caller's span ID")
	}

	// Span tree: a service.req root with the admission, curves, and
	// solve stages parented under it — at least 4 spans for one request.
	events := tr.Events()
	var rootID int64
	for _, ev := range events {
		if ev.Name == spanReq {
			rootID = ev.ID
		}
	}
	if rootID == 0 {
		t.Fatalf("no %s root span in %d events", spanReq, len(events))
	}
	parented := map[string]bool{}
	total := 0
	for _, ev := range events {
		total++
		if ev.Parent == rootID {
			parented[ev.Name] = true
		}
	}
	for _, want := range []string{spanReqAdmission, spanReqCurves, spanReqSolve} {
		if !parented[want] {
			t.Errorf("span %s not parented under %s (events: %+v)", want, spanReq, events)
		}
	}
	if total < 4 {
		t.Fatalf("plan request produced %d spans, want >= 4", total)
	}

	// Flight recorder: the request is on record with the same trace ID
	// and a per-stage breakdown.
	snap := fr.Snapshot()
	if len(snap.Recent) == 0 {
		t.Fatal("flight recorder empty")
	}
	got := snap.Recent[0]
	if got.TraceID != wantTrace {
		t.Fatalf("flight record trace ID %s, want %s", got.TraceID, wantTrace)
	}
	if got.Route != "plan_post" || got.Status != http.StatusOK || got.Tenant != "t1" {
		t.Fatalf("flight record = %+v", got)
	}
	if got.Outcome != outcomeAdmitted {
		t.Fatalf("flight record outcome %q, want %q", got.Outcome, outcomeAdmitted)
	}
	stageNames := map[string]bool{}
	for _, st := range got.Stages {
		stageNames[st.Name] = true
	}
	for _, want := range []string{spanReqAdmission, spanReqCurves, spanReqSolve} {
		if !stageNames[want] {
			t.Errorf("flight record missing stage %s: %+v", want, got.Stages)
		}
	}

	// Error path: header and envelope carry the same trace ID.
	rec = serveDirect(t, h, "POST", "/v1/plan", inbound, []byte(`{"tenants":["nope"]}`))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown tenant = %d", rec.Code)
	}
	var env apiError
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	hdr, err := obs.ParseTraceparent(rec.Header().Get(TraceparentHeader))
	if err != nil {
		t.Fatal(err)
	}
	if env.TraceID != hdr.TraceIDString() || env.TraceID != wantTrace {
		t.Fatalf("envelope trace_id %s vs header %s vs inbound %s: must all match",
			env.TraceID, hdr.TraceIDString(), wantTrace)
	}
	if env.Error != "not_found" {
		t.Fatalf("envelope code %s", env.Error)
	}
}

// Malformed traceparents are replaced with a fresh identity — never
// echoed back, never propagated into the trace tree.
func TestHTTPTraceparentMalformedReplaced(t *testing.T) {
	withTelemetry(t)
	svc := newTestService(t, testConfig())
	h := svc.Handler()
	cases := []string{
		"",
		"garbage",
		"00-zzzz2f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"00-00000000000000000000000000000000-0000000000000000-00",
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",
	}
	for _, in := range cases {
		rec := serveDirect(t, h, "GET", "/v1/tenants", in, nil)
		echoed := rec.Header().Get(TraceparentHeader)
		tc, err := obs.ParseTraceparent(echoed)
		if err != nil || !tc.Valid() {
			t.Fatalf("traceparent %q: echoed %q is not a valid fresh context (%v)", in, echoed, err)
		}
		if in != "" && strings.Contains(in, tc.TraceIDString()) {
			t.Fatalf("traceparent %q: malformed trace ID was propagated", in)
		}
	}
}

// A tenant-label flood over the HTTP surface stays capped: the live
// per-tenant series never exceed the configured cap, with the overflow
// folded into the "other" bucket and totals preserved.
func TestHTTPTenantFloodCapped(t *testing.T) {
	reg, _, _ := withTelemetry(t)
	cfg := testConfig()
	cfg.TenantSeriesCap = 8
	svc := newTestService(t, cfg)
	h := svc.Handler()

	const flood = 10_000
	for i := 0; i < flood; i++ {
		// Unknown tenants 404 — but each still carries a tenant label,
		// which is exactly the cardinality attack the cap defends against.
		rec := serveDirect(t, h, "GET", fmt.Sprintf("/v1/tenants/t%05d/mrc", i), "", nil)
		if rec.Code != http.StatusNotFound {
			t.Fatalf("request %d = %d", i, rec.Code)
		}
	}
	snap := reg.Snapshot()
	live := snap.Gauges[mTenantPrefix+"labels"]
	if live > 8 {
		t.Fatalf("live tenant series = %d, want <= 8", live)
	}
	var total int64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, mTenantPrefix) && strings.HasSuffix(name, ".requests.mrc") {
			total += v
		}
	}
	if total != flood {
		t.Fatalf("per-tenant request total = %d, want %d (overflow must absorb, not drop)", total, flood)
	}
	if snap.Counters[mTenantPrefix+"other.requests.mrc"] == 0 {
		t.Fatal("overflow bucket empty after flood")
	}
	if snap.Counters[mRequests] != flood {
		t.Fatalf("%s = %d, want %d", mRequests, snap.Counters[mRequests], flood)
	}
	if snap.Counters[mRequestsByClassPrefix+"4xx"] != flood {
		t.Fatalf("4xx class counter = %d, want %d", snap.Counters[mRequestsByClassPrefix+"4xx"], flood)
	}
}

// The 499/504 split: a request canceled by its own deadline counts as
// deadline (504), and the status-class rollup sees it as 5xx.
func TestHTTPDeadlineAndClassCounters(t *testing.T) {
	reg, _, fr := withTelemetry(t)
	srv, _ := startTestServer(t, testConfig())
	base := "http://" + srv.Addr()
	doReq(t, "PUT", base+"/v1/tenants/t1", profileBytes(t, testProfile(t, 1)))

	status, _ := doReq(t, "POST", base+"/v1/plan", []byte(`{"tenants":["t1"]}`))
	if status != http.StatusOK {
		t.Fatalf("warm-up plan = %d", status)
	}
	deadlineBefore := reg.Counter(mRequestsDeadline).Value()

	plan := faultinject.NewPlan()
	plan.Set(FaultSolve, faultinject.Rule{Err: faultinject.Benign, Delay: 100 * time.Millisecond})
	faultinject.Enable(plan)
	defer faultinject.Enable(nil)
	status, body := doReq(t, "POST", base+"/v1/plan?deadline_ms=10", []byte(`{"tenants":["t1"]}`))
	if status != http.StatusGatewayTimeout {
		t.Fatalf("slow solve = %d %s", status, body)
	}
	if got := reg.Counter(mRequestsDeadline).Value(); got != deadlineBefore+1 {
		t.Fatalf("%s = %d, want %d", mRequestsDeadline, got, deadlineBefore+1)
	}
	if reg.Counter(mRequestsByClassPrefix+"5xx").Value() == 0 {
		t.Fatal("5xx class counter not incremented by the 504")
	}
	if reg.Counter(mRequests).Value() < 3 {
		t.Fatalf("%s = %d, want >= 3", mRequests, reg.Counter(mRequests).Value())
	}

	// The failed request landed in the errored ring with its code.
	snap := fr.Snapshot()
	found := false
	for _, recd := range snap.Errored {
		if recd.Status == http.StatusGatewayTimeout && recd.Code == "deadline" {
			found = true
		}
	}
	if !found {
		t.Fatalf("504 not in the errored ring: %+v", snap.Errored)
	}
}

// Telemetry must be observation only: the same plan request served with
// tracing, metrics, and flight recording fully enabled and fully
// disabled returns byte-identical bodies.
func TestHTTPPlanBitExactTelemetryOnOff(t *testing.T) {
	run := func(t *testing.T, enable bool) []byte {
		if enable {
			withTelemetry(t)
		} else {
			prevReg, prevTr, prevFr := obs.Enabled(), obs.ActiveTracer(), obs.ActiveFlightRecorder()
			obs.Enable(nil)
			obs.EnableTracer(nil)
			obs.EnableFlightRecorder(nil)
			t.Cleanup(func() {
				obs.Enable(prevReg)
				obs.EnableTracer(prevTr)
				obs.EnableFlightRecorder(prevFr)
			})
		}
		svc := newTestService(t, testConfig())
		for i := uint64(1); i <= 3; i++ {
			if err := svc.Register(nil, fmt.Sprintf("t%d", i), testProfile(t, i)); err != nil {
				t.Fatal(err)
			}
		}
		rec := serveDirect(t, svc.Handler(), "POST", "/v1/plan", "", []byte(`{"tenants":["t1","t2","t3"]}`))
		if rec.Code != http.StatusOK {
			t.Fatalf("plan = %d %s", rec.Code, rec.Body.String())
		}
		return rec.Body.Bytes()
	}
	on := run(t, true)
	off := run(t, false)
	// Provenance carries inherently per-request fields (compute duration,
	// wall timestamp, trace identity); normalize those, then require the
	// rest of the two bodies — allocation, objective, and the
	// deterministic provenance (digest, solver path, cause) — to be
	// byte-identical.
	normalize := func(raw []byte) ([]byte, Plan) {
		var p Plan
		if err := json.Unmarshal(raw, &p); err != nil {
			t.Fatal(err)
		}
		if p.Provenance == nil {
			t.Fatalf("plan response missing provenance: %s", raw)
		}
		p.Provenance.ComputeNS = 0
		p.Provenance.UnixNS = 0
		p.Provenance.TraceID = ""
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		return b, p
	}
	onNorm, p := normalize(on)
	offNorm, _ := normalize(off)
	if string(onNorm) != string(offNorm) {
		t.Fatalf("plan bodies differ with telemetry on vs off:\n%s\nvs\n%s", onNorm, offNorm)
	}
	if len(p.Alloc) != 3 || math.IsNaN(p.Objective) {
		t.Fatalf("implausible plan %+v", p)
	}
	if p.Provenance.Cause != CauseAdHoc || p.Provenance.InputDigest == "" {
		t.Fatalf("implausible provenance %+v", p.Provenance)
	}
}
