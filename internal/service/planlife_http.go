package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// HTTP surface of the plan-lifecycle layer: the epoch history endpoint
// (GET /v1/plan/history), the change feed (GET /v1/plan/changes, both
// long-poll and SSE), and the human-readable /debug/epochs timeline.
// Both feed modes subscribe before reading history and serve events
// from the audit log, which publishEpoch writes before it publishes to
// the feed — so a wakeup can never observe the feed ahead of history,
// and no transition can slip between the backlog and the live stream.

// planHistoryResponse is GET /v1/plan/history's body: the retained
// epoch records after ?since_epoch, plus the newest epoch so a client
// can resume from it. Gap reports that the log's retention has already
// dropped records the client asked for (its next_epoch after since was
// not since+1); the client's view has a hole no replay can fill.
type planHistoryResponse struct {
	LastEpoch int64         `json:"last_epoch"`
	Gap       bool          `json:"gap,omitempty"`
	Events    []EpochRecord `json:"events"`
}

// sinceEpochParam parses ?since_epoch. Absent returns def; a value
// below -1 or malformed is a client error.
func sinceEpochParam(r *http.Request, def int64) (int64, error) {
	raw := r.URL.Query().Get("since_epoch")
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || v < -1 {
		return 0, fmt.Errorf("service: invalid since_epoch %q", raw)
	}
	return v, nil
}

// historyGap reports whether events resumed later than since+1 — the
// retention window has already dropped part of what the client missed.
func historyGap(since int64, events []EpochRecord) bool {
	return since >= 0 && len(events) > 0 && events[0].Provenance.Epoch > since+1
}

func (s *Service) handlePlanHistory(w http.ResponseWriter, r *http.Request) error {
	since, err := sinceEpochParam(r, -1)
	if err != nil {
		return err
	}
	events := s.audit.History(since)
	last := s.audit.LastEpoch()
	telemetryFrom(r.Context()).setEpoch(last)
	writeJSON(w, http.StatusOK, planHistoryResponse{
		LastEpoch: last,
		Gap:       historyGap(since, events),
		Events:    events,
	})
	return nil
}

// handlePlanChanges serves the change feed. Default mode is long-poll:
// the request returns as soon as an epoch newer than ?since_epoch
// exists (immediately, when history already has one), or with an empty
// event list once ?wait_ms expires — wait_ms is capped by the default
// request deadline, exactly like ?deadline_ms, so a poll can never pin
// a connection longer than any other request. ?stream=sse (or an
// Accept: text/event-stream header) upgrades to a server-sent-event
// stream instead. since_epoch defaults to the newest epoch — "changes
// from now on".
func (s *Service) handlePlanChanges(w http.ResponseWriter, r *http.Request) error {
	since, err := sinceEpochParam(r, s.audit.LastEpoch())
	if err != nil {
		return err
	}
	if r.URL.Query().Get("stream") == "sse" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		return s.streamPlanChanges(w, r, since)
	}

	wait := s.cfg.DefaultDeadline
	if raw := r.URL.Query().Get("wait_ms"); raw != "" {
		ms, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || ms < 0 {
			return fmt.Errorf("service: invalid wait_ms %q", raw)
		}
		if req := time.Duration(ms) * time.Millisecond; req < wait {
			wait = req
		}
	}

	// Subscribe before consulting history: an epoch landing between the
	// two is then either already in history or guaranteed to wake us.
	sub := s.feed.Subscribe()
	defer sub.Close()
	respond := func() error {
		events := s.audit.History(since)
		last := s.audit.LastEpoch()
		telemetryFrom(r.Context()).setEpoch(last)
		writeJSON(w, http.StatusOK, planHistoryResponse{
			LastEpoch: last,
			Gap:       historyGap(since, events),
			Events:    events,
		})
		return nil
	}
	if len(s.audit.History(since)) > 0 {
		return respond()
	}
	wctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()
	if _, _, err := sub.Next(wctx); err != nil {
		switch {
		case errors.Is(wctx.Err(), context.DeadlineExceeded) && r.Context().Err() == nil:
			return respond() // wait window over: an empty poll, not an error
		case errors.Is(err, ErrFeedClosed):
			return fmt.Errorf("plan change feed: %w", ErrDraining)
		default:
			return err
		}
	}
	return respond()
}

// streamPlanChanges is the SSE mode: the history backlog after since,
// then every live epoch as an "epoch" event, with a "gap" event
// whenever this subscriber's buffer overflowed (the client re-syncs
// from /v1/plan/history). The stream ends when the client disconnects
// or the feed shuts down (drain); per the feed's contract it never
// back-pressures the publisher.
func (s *Service) streamPlanChanges(w http.ResponseWriter, r *http.Request, since int64) error {
	sub := s.feed.Subscribe()
	defer sub.Close()
	backlog := s.audit.History(since)
	telemetryFrom(r.Context()).setEpoch(s.audit.LastEpoch())

	writeSSEHead(w)
	lastSent := since
	send := func(event string, v any) error {
		if err := writeSSEEvent(w, event, v); err != nil {
			return err
		}
		return nil
	}
	if historyGap(since, backlog) {
		if err := send("gap", map[string]any{"since_epoch": since}); err != nil {
			return nil
		}
	}
	for _, ev := range backlog {
		if err := send("epoch", ev); err != nil {
			return nil
		}
		lastSent = ev.Provenance.Epoch
	}
	flushSSE(w)
	for {
		recs, gap, err := sub.Next(r.Context())
		if err != nil {
			return nil // client gone or feed closed: the stream just ends
		}
		if gap {
			if err := send("gap", map[string]any{"since_epoch": lastSent}); err != nil {
				return nil
			}
		}
		for _, ev := range recs {
			if ev.Provenance.Epoch <= lastSent {
				continue // already delivered via the backlog
			}
			if err := send("epoch", ev); err != nil {
				return nil
			}
			lastSent = ev.Provenance.Epoch
		}
		flushSSE(w)
	}
}

// writeSSEHead commits the SSE response head: the event-stream content
// type and a 200, after which the connection is a one-way event pipe.
func writeSSEHead(w http.ResponseWriter) {
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
}

// writeSSEEvent frames one named event with a JSON data payload.
func writeSSEEvent(w http.ResponseWriter, event string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}

// flushSSE pushes buffered events down the wire between waits.
func flushSSE(w http.ResponseWriter) {
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// serveEpochsDebug renders the retained epoch timeline as text, newest
// last — the human pairing of /debug/requests (whose records carry the
// epoch they served) for triage without JSON tooling.
func (s *Service) serveEpochsDebug(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	events := s.audit.History(-1)
	fmt.Fprintf(w, "plan epochs (retained %d, last epoch %d)\n\n", len(events), s.audit.LastEpoch())
	for _, ev := range events {
		p := ev.Provenance
		fmt.Fprintf(w, "epoch %d  %s  cause=%s solver=%s warm=%v reused=%d compute=%s digest=%s trace=%s\n",
			p.Epoch, time.Unix(0, p.UnixNS).UTC().Format(time.RFC3339Nano),
			p.Cause, p.SolverPath, p.WarmStart, p.WarmReused,
			time.Duration(p.ComputeNS), p.InputDigest, p.TraceID)
		d := ev.Diff
		fmt.Fprintf(w, "  moved=%d units", d.UnitsMoved)
		if len(d.Gained) > 0 {
			fmt.Fprintf(w, "  gained=%v", d.Gained)
		}
		if len(d.Lost) > 0 {
			fmt.Fprintf(w, "  lost=%v", d.Lost)
		}
		fmt.Fprintln(w)
		for _, td := range d.Deltas {
			if td.DeltaUnits == 0 {
				continue
			}
			fmt.Fprintf(w, "    %-24s %4d -> %4d  (%+d)\n", td.Tenant, td.FromUnits, td.ToUnits, td.DeltaUnits)
		}
		fmt.Fprintln(w)
	}
}
