package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"partitionshare/internal/faultinject"
	"partitionshare/internal/partition"
	"partitionshare/internal/profileio"
)

// startTestServer boots a full server on an ephemeral port.
func startTestServer(t *testing.T, cfg Config) (*Server, *Service) {
	t.Helper()
	store, err := OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	svc, err := New(cfg, store)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	srv, err := StartServer(ctx, svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, svc
}

func doReq(t *testing.T, method, url string, body []byte) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func profileBytes(t *testing.T, p profileio.Profile) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := profileio.Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func apiCode(t *testing.T, body []byte) string {
	t.Helper()
	var e apiError
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("error envelope does not parse: %v: %s", err, body)
	}
	return e.Error
}

// TestHTTPEndToEnd exercises the whole API surface: registration,
// listing, MRC queries, ad-hoc plans (checked bit-exact against the
// reference), the background plan, deletion, and the typed error
// envelope for every failure class.
func TestHTTPEndToEnd(t *testing.T) {
	srv, svc := startTestServer(t, testConfig())
	base := "http://" + srv.Addr()

	// Empty daemon: no plan yet, typed 503.
	status, body := doReq(t, "GET", base+"/v1/plan", nil)
	if status != http.StatusServiceUnavailable || apiCode(t, body) != "no_plan" {
		t.Fatalf("GET /v1/plan on empty daemon = %d %s", status, body)
	}

	// Register two tenants via profile upload.
	for i := uint64(1); i <= 2; i++ {
		name := fmt.Sprintf("t%d", i)
		status, body := doReq(t, "PUT", base+"/v1/tenants/"+name, profileBytes(t, testProfile(t, i)))
		if status != http.StatusOK {
			t.Fatalf("PUT tenant %s = %d %s", name, status, body)
		}
	}
	status, body = doReq(t, "GET", base+"/v1/tenants", nil)
	if status != http.StatusOK || !strings.Contains(string(body), `"t1"`) {
		t.Fatalf("GET /v1/tenants = %d %s", status, body)
	}

	// MRC query at a custom geometry.
	status, body = doReq(t, "GET", base+"/v1/tenants/t1/mrc?units=16", nil)
	if status != http.StatusOK {
		t.Fatalf("GET mrc = %d %s", status, body)
	}
	var curve struct {
		MR []float64 `json:"MR"`
	}
	if err := json.Unmarshal(body, &curve); err != nil || len(curve.MR) != 17 {
		t.Fatalf("mrc response: err=%v len=%d body=%s", err, len(curve.MR), body)
	}

	// Ad-hoc plan, bit-exact vs the reference oracle.
	status, body = doReq(t, "POST", base+"/v1/plan", []byte(`{"tenants":["t1","t2"]}`))
	if status != http.StatusOK {
		t.Fatalf("POST /v1/plan = %d %s", status, body)
	}
	var plan Plan
	if err := json.Unmarshal(body, &plan); err != nil {
		t.Fatal(err)
	}
	assertPlanBitExact(t, svc, plan)

	// Background plan converges to the full group and is also exact.
	bg := waitForEpoch(t, svc, []string{"t1", "t2"})
	assertPlanBitExact(t, svc, bg)
	status, body = doReq(t, "GET", base+"/v1/plan", nil)
	if status != http.StatusOK {
		t.Fatalf("GET /v1/plan = %d %s", status, body)
	}
	var got Plan
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Degraded {
		t.Fatalf("fresh background plan flagged degraded: %s", body)
	}
	if math.Float64bits(got.Objective) != math.Float64bits(bg.Objective) {
		t.Fatalf("served plan objective %v, want %v", got.Objective, bg.Objective)
	}

	// Typed failures: unknown tenant, bad body, bad deadline.
	status, body = doReq(t, "POST", base+"/v1/plan", []byte(`{"tenants":["ghost"]}`))
	if status != http.StatusNotFound || apiCode(t, body) != "not_found" {
		t.Fatalf("unknown tenant = %d %s", status, body)
	}
	status, body = doReq(t, "POST", base+"/v1/plan", []byte(`{nope`))
	if status != http.StatusBadRequest || apiCode(t, body) != "bad_request" {
		t.Fatalf("bad body = %d %s", status, body)
	}
	status, body = doReq(t, "POST", base+"/v1/plan?deadline_ms=frogs", []byte(`{"tenants":["t1"]}`))
	if status != http.StatusBadRequest {
		t.Fatalf("bad deadline = %d %s", status, body)
	}
	status, body = doReq(t, "GET", base+"/v1/tenants/ghost/mrc", nil)
	if status != http.StatusNotFound {
		t.Fatalf("mrc unknown tenant = %d %s", status, body)
	}

	// Health and readiness.
	if status, _ := doReq(t, "GET", base+"/healthz", nil); status != http.StatusOK {
		t.Fatalf("healthz = %d", status)
	}
	if status, _ := doReq(t, "GET", base+"/readyz", nil); status != http.StatusOK {
		t.Fatalf("readyz = %d", status)
	}

	// Deletion.
	status, body = doReq(t, "DELETE", base+"/v1/tenants/t2", nil)
	if status != http.StatusOK {
		t.Fatalf("DELETE = %d %s", status, body)
	}
	status, body = doReq(t, "DELETE", base+"/v1/tenants/t2", nil)
	if status != http.StatusNotFound || apiCode(t, body) != "not_found" {
		t.Fatalf("double DELETE = %d %s", status, body)
	}
}

// TestHTTPDeadlineTyped: an injected slow solve must surface as a typed
// 504, not a hung connection.
func TestHTTPDeadlineTyped(t *testing.T) {
	srv, _ := startTestServer(t, testConfig())
	base := "http://" + srv.Addr()
	doReq(t, "PUT", base+"/v1/tenants/t1", profileBytes(t, testProfile(t, 1)))

	plan := faultinject.NewPlan()
	plan.Set(FaultSolve, faultinject.Rule{Err: faultinject.Benign, Delay: 100 * time.Millisecond})
	faultinject.Enable(plan)
	defer faultinject.Enable(nil)

	status, body := doReq(t, "POST", base+"/v1/plan?deadline_ms=10", []byte(`{"tenants":["t1"]}`))
	if status != http.StatusGatewayTimeout || apiCode(t, body) != "deadline" {
		t.Fatalf("slow solve = %d %s, want 504 deadline", status, body)
	}
}

// TestHTTPOverloadTyped: shed requests come back as structured 429s.
func TestHTTPOverloadTyped(t *testing.T) {
	cfg := testConfig()
	cfg.MaxInflight = 1
	cfg.QueueDepth = 0
	srv, svc := startTestServer(t, cfg)
	base := "http://" + srv.Addr()
	doReq(t, "PUT", base+"/v1/tenants/t1", profileBytes(t, testProfile(t, 1)))

	plan := faultinject.NewPlan()
	plan.Set(FaultSolve, faultinject.Rule{Err: faultinject.Benign, Delay: 300 * time.Millisecond})
	faultinject.Enable(plan)
	defer faultinject.Enable(nil)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		status, body := doReq(t, "POST", base+"/v1/plan", []byte(`{"tenants":["t1"]}`))
		if status != http.StatusOK {
			t.Errorf("pinned request = %d %s", status, body)
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for svc.limiter.Inflight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("pinned request never started solving")
		}
		time.Sleep(time.Millisecond)
	}
	status, body := doReq(t, "POST", base+"/v1/plan", []byte(`{"tenants":["t1"]}`))
	if status != http.StatusTooManyRequests || apiCode(t, body) != "overloaded" {
		t.Fatalf("overflow request = %d %s, want 429 overloaded", status, body)
	}
	wg.Wait()
}

// TestHTTPDrainZeroDropped: a drain initiated while a slow request is
// in flight must let it finish (200), refuse new work, and report a
// clean (zero-dropped) shutdown.
func TestHTTPDrainZeroDropped(t *testing.T) {
	srv, svc := startTestServer(t, testConfig())
	base := "http://" + srv.Addr()
	doReq(t, "PUT", base+"/v1/tenants/t1", profileBytes(t, testProfile(t, 1)))

	plan := faultinject.NewPlan()
	plan.Set(FaultSolve, faultinject.Rule{Err: faultinject.Benign, Delay: 200 * time.Millisecond})
	faultinject.Enable(plan)
	defer faultinject.Enable(nil)

	inflightDone := make(chan int, 1)
	go func() {
		status, _ := doReq(t, "POST", base+"/v1/plan", []byte(`{"tenants":["t1"]}`))
		inflightDone <- status
	}()
	deadline := time.Now().Add(2 * time.Second)
	for svc.limiter.Inflight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight request never started")
		}
		time.Sleep(time.Millisecond)
	}

	drainDone := make(chan error, 1)
	go func() { drainDone <- srv.Drain(5 * time.Second) }()

	// While draining, readiness flips and new work is refused. The
	// listener may already be closed — a connection error is an
	// acceptable refusal too; what matters is no new work is admitted.
	for !svc.Draining() {
		time.Sleep(time.Millisecond)
	}
	if resp, err := http.Get(base + "/readyz"); err == nil {
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("readyz while draining = %d", resp.StatusCode)
		}
		resp.Body.Close()
	}

	if status := <-inflightDone; status != http.StatusOK {
		t.Fatalf("in-flight request dropped during drain: status %d", status)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("drain reported dropped requests: %v", err)
	}
}

// TestHTTPPlanSolverPathRecorded: served plans carry the solver path so
// operators can audit which ladder rung produced an allocation.
func TestHTTPPlanSolverPathRecorded(t *testing.T) {
	srv, _ := startTestServer(t, testConfig())
	base := "http://" + srv.Addr()
	doReq(t, "PUT", base+"/v1/tenants/t1", profileBytes(t, testProfile(t, 1)))
	_, body := doReq(t, "POST", base+"/v1/plan", []byte(`{"tenants":["t1"]}`))
	var plan Plan
	if err := json.Unmarshal(body, &plan); err != nil {
		t.Fatal(err)
	}
	if plan.SolverPath == "" {
		t.Fatalf("plan has no solver path: %s", body)
	}
	if _, err := partition.ParseSolver("auto"); err != nil {
		t.Fatalf("solver ladder misconfigured: %v", err)
	}
}
