package service

import (
	"context"
	"errors"
	"fmt"

	"partitionshare/internal/obs"
)

// Admission errors; the HTTP layer maps them to typed 429/503 responses.
var (
	// ErrOverloaded reports that the solve queue is full: the request was
	// shed without doing any work. Clients should back off and retry.
	ErrOverloaded = errors.New("service: overloaded")
	// ErrDraining reports that the service is shutting down and admits no
	// new work; in-flight requests are unaffected.
	ErrDraining = errors.New("service: draining")
)

// A Limiter bounds concurrent solves and the queue behind them. Up to
// inflight requests run at once; up to queue more wait for a slot; the
// rest are shed immediately with ErrOverloaded. Shedding at the door
// instead of queueing unboundedly is what keeps p99 bounded under
// overload — a request that cannot start before its deadline is cheaper
// to reject in O(1) than to time out after holding memory.
type Limiter struct {
	slots chan struct{}
	queue chan struct{}
}

// NewLimiter builds a limiter admitting inflight concurrent holders and
// queue waiters. Non-positive values fall back to 1 and 0.
func NewLimiter(inflight, queue int) *Limiter {
	if inflight < 1 {
		inflight = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &Limiter{
		slots: make(chan struct{}, inflight),
		queue: make(chan struct{}, queue),
	}
}

// Acquire admits the caller or sheds it. On nil return the caller holds
// a slot and must Release. ErrOverloaded means the queue was already
// full; a context error means the caller's deadline expired while
// queued (both without acquiring anything). The slow path records the
// wait as a service.req.queue span (carrying the queue depth at entry)
// and reports the admission outcome into the request's telemetry.
func (l *Limiter) Acquire(ctx context.Context) error {
	// Fast path: a free slot admits without touching the queue.
	select {
	case l.slots <- struct{}{}:
		telemetryFrom(ctx).setOutcome(outcomeAdmitted)
		return nil
	default:
	}
	// Entering the queue is itself bounded: if the queue is full the
	// request sheds in O(1) without blocking.
	reg := obs.Enabled()
	select {
	case l.queue <- struct{}{}:
	default:
		reg.Counter(mAdmissionShed).Add(1)
		telemetryFrom(ctx).setOutcome(outcomeShed)
		return ErrOverloaded
	}
	depth := int64(len(l.queue))
	reg.Gauge(mAdmissionQueueDepth).Set(depth)
	_, span := obs.StartTraceSpan(ctx, spanReqQueue, "service")
	span.Arg("depth", depth)
	defer func() {
		span.End()
		<-l.queue
		reg.Gauge(mAdmissionQueueDepth).Set(int64(len(l.queue)))
	}()
	select {
	case l.slots <- struct{}{}:
		telemetryFrom(ctx).setOutcome(outcomeQueued)
		return nil
	case <-ctx.Done():
		reg.Counter(mAdmissionDeadlineInQueue).Add(1)
		telemetryFrom(ctx).setOutcome(outcomeDeadlineInQueue)
		return fmt.Errorf("service: queued past deadline: %w", ctx.Err())
	}
}

// Release returns a slot acquired by Acquire.
func (l *Limiter) Release() { <-l.slots }

// Inflight returns how many slots are currently held.
func (l *Limiter) Inflight() int { return len(l.slots) }
