package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"partitionshare/internal/obs"
	"partitionshare/internal/profileio"
)

// maxProfileBody bounds a profile upload (16 MiB) so a misbehaving
// client cannot balloon the daemon's memory.
const maxProfileBody = 16 << 20

// apiError is the JSON error envelope every non-2xx response carries.
// TraceID repeats the response traceparent's trace ID so a logged
// envelope correlates with the trace and the flight recorder without
// the headers.
type apiError struct {
	Error   string `json:"error"`  // stable machine-readable code
	Detail  string `json:"detail"` // human-readable cause
	TraceID string `json:"trace_id,omitempty"`
}

// errorCode maps service sentinels to (HTTP status, stable code).
func errorCode(err error) (int, string) {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests, "overloaded"
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, "draining"
	case errors.Is(err, ErrNoPlan):
		return http.StatusServiceUnavailable, "no_plan"
	case errors.Is(err, ErrTenantNotFound):
		return http.StatusNotFound, "not_found"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline"
	case errors.Is(err, context.Canceled):
		return 499, "canceled" // client went away; nginx's convention
	default:
		return http.StatusBadRequest, "bad_request"
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to do on error
}

// writeError renders err as the typed envelope, stamped with the
// request's trace ID, and records the envelope code into the request's
// telemetry carrier for the flight recorder.
func writeError(w http.ResponseWriter, r *http.Request, err error) {
	status, code := errorCode(err)
	obs.Enabled().Counter(mHTTPErrorsPrefix + code).Add(1)
	var traceID string
	if r != nil {
		traceID = obs.TraceIDFrom(r.Context())
		telemetryFrom(r.Context()).setCode(code)
	}
	writeJSON(w, status, apiError{Error: code, Detail: err.Error(), TraceID: traceID})
}

// Handler builds the service's HTTP API:
//
//	PUT    /v1/tenants/{name}       register/replace (body: hotlprof profile)
//	DELETE /v1/tenants/{name}       unregister
//	GET    /v1/tenants              list tenants
//	GET    /v1/tenants/{name}/mrc   miss-ratio curve (?units=N)
//	POST   /v1/plan                 ad-hoc group plan (JSON body)
//	GET    /v1/plan                 current background epoch plan
//	GET    /v1/plan/history         epoch audit records (?since_epoch=N)
//	GET    /v1/plan/changes         change feed: long-poll (?wait_ms=N) or SSE (?stream=sse)
//	GET    /healthz                 liveness (always 200 while the process runs)
//	GET    /readyz                  readiness (503 while draining)
//	GET    /metrics                 registry snapshot (JSON; ?format=prometheus)
//	GET    /metrics/prom            Prometheus text exposition
//	GET    /debug/requests          request flight recorder
//	GET    /debug/epochs            human-readable epoch timeline
//
// Every handler runs under a request deadline (?deadline_ms or the
// configured default), propagated through admission into the DP solve,
// and under the telemetry wrap (telemetry.go): traceparent in/out,
// request-scoped spans, RED metrics, flight recording.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/tenants/{name}", s.wrap("put_tenant", s.handlePutTenant))
	mux.HandleFunc("DELETE /v1/tenants/{name}", s.wrap("delete_tenant", s.handleDeleteTenant))
	mux.HandleFunc("GET /v1/tenants", s.wrap("list_tenants", s.handleListTenants))
	mux.HandleFunc("GET /v1/tenants/{name}/mrc", s.wrap("mrc", s.handleMRC))
	mux.HandleFunc("POST /v1/plan", s.wrap("plan_post", s.handlePlanPost))
	mux.HandleFunc("GET /v1/plan", s.wrap("plan_get", s.handlePlanGet))
	mux.HandleFunc("GET /v1/plan/history", s.wrap("plan_history", s.handlePlanHistory))
	// The change feed runs under the stream wrap: full telemetry, no
	// per-request deadline (the handler bounds its own waits).
	mux.HandleFunc("GET /v1/plan/changes", s.wrapStream("plan_changes", s.handlePlanChanges))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			writeError(w, r, fmt.Errorf("not ready: %w", ErrDraining))
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	// Observability endpoints ride the API listener too (outside the
	// telemetry wrap: a scrape is not a tenant request), so a deployment
	// without -debug-addr still has scrape and triage surfaces.
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prometheus" {
			obs.ServePrometheus(w)
			return
		}
		writeJSON(w, http.StatusOK, obs.Enabled().Snapshot())
	})
	mux.HandleFunc("GET /metrics/prom", func(w http.ResponseWriter, _ *http.Request) {
		obs.ServePrometheus(w)
	})
	mux.HandleFunc("GET /debug/requests", func(w http.ResponseWriter, _ *http.Request) {
		obs.ServeFlightRecorder(w)
	})
	mux.HandleFunc("GET /debug/epochs", func(w http.ResponseWriter, _ *http.Request) {
		s.serveEpochsDebug(w)
	})
	return mux
}

// requestContext derives the per-request deadline: ?deadline_ms if the
// client set one (bounded above by the service default so a client
// cannot pin a solve slot arbitrarily long), the default otherwise.
func (s *Service) requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	d := s.cfg.DefaultDeadline
	if raw := r.URL.Query().Get("deadline_ms"); raw != "" {
		ms, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || ms <= 0 {
			return nil, nil, fmt.Errorf("service: invalid deadline_ms %q", raw)
		}
		if req := time.Duration(ms) * time.Millisecond; req < d {
			d = req
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

func (s *Service) handlePutTenant(w http.ResponseWriter, r *http.Request) error {
	name := r.PathValue("name")
	telemetryFrom(r.Context()).setTenant(name)
	p, err := profileio.Read(http.MaxBytesReader(w, r.Body, maxProfileBody))
	if err != nil {
		return fmt.Errorf("service: profile body: %w", err)
	}
	if err := s.Register(r.Context(), name, p); err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, map[string]any{"tenant": name, "seq": s.store.Seq()})
	return nil
}

func (s *Service) handleDeleteTenant(w http.ResponseWriter, r *http.Request) error {
	name := r.PathValue("name")
	telemetryFrom(r.Context()).setTenant(name)
	if err := s.Unregister(r.Context(), name); err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, map[string]any{"tenant": name, "seq": s.store.Seq()})
	return nil
}

func (s *Service) handleListTenants(w http.ResponseWriter, r *http.Request) error {
	writeJSON(w, http.StatusOK, map[string]any{
		"tenants":  s.Tenants(),
		"seq":      s.store.Seq(),
		"degraded": s.Degraded(),
	})
	return nil
}

func (s *Service) handleMRC(w http.ResponseWriter, r *http.Request) error {
	units := 0
	if raw := r.URL.Query().Get("units"); raw != "" {
		u, err := strconv.Atoi(raw)
		if err != nil || u <= 0 {
			return fmt.Errorf("service: invalid units %q", raw)
		}
		units = u
	}
	telemetryFrom(r.Context()).setTenant(r.PathValue("name"))
	c, err := s.CurveFor(r.PathValue("name"), units)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, c)
	return nil
}

// planRequest is POST /v1/plan's body: the co-run group and optionally
// a non-default cache size.
type planRequest struct {
	Tenants []string `json:"tenants"`
	Units   int      `json:"units,omitempty"`
}

func (s *Service) handlePlanPost(w http.ResponseWriter, r *http.Request) error {
	var req planRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		return fmt.Errorf("service: plan request body: %w", err)
	}
	if len(req.Tenants) > 0 {
		// Attribute group plans to their first tenant — a single label
		// keeps the per-tenant family's cardinality linear in tenants,
		// not in observed groups.
		telemetryFrom(r.Context()).setTenant(req.Tenants[0])
	}
	plan, err := s.PlanFor(r.Context(), req.Tenants, req.Units)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, plan)
	return nil
}

func (s *Service) handlePlanGet(w http.ResponseWriter, r *http.Request) error {
	plan, ok := s.CurrentPlan()
	if !ok {
		return ErrNoPlan
	}
	telemetryFrom(r.Context()).setEpoch(plan.Epoch)
	writeJSON(w, http.StatusOK, plan)
	return nil
}
