package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"partitionshare/internal/atomicio"
	"partitionshare/internal/faultinject"
	"partitionshare/internal/obs"
)

// The epoch audit log: the durable half of the plan-lifecycle
// observability layer. Every epoch transition the re-optimizer publishes
// is appended here — provenance, structured diff, and the new plan's
// group and allocation — with the same snapshot+journal machinery and
// crash contract as the tenant store: an appended record is durable iff
// Append returned nil; a crash (including kill -9) mid-append leaves a
// torn tail that replay discards and compacts away; and recovery is
// deterministic — two opens of the same directory yield byte-identical
// canonical state. The log also carries the epoch counter across
// restarts: New seeds the service's epoch from LastEpoch, so epochs stay
// monotonic over the daemon's whole life, not one process's.

// FaultAuditAppend fires at the head of every audit append, before
// anything is journaled — the cheapest way to make an epoch's audit
// record fail (the epoch itself must still publish; audit failures are
// tolerated, counted, and logged, never propagated into the reopt loop).
const FaultAuditAppend = "service.audit.append"

// auditVersion is the audit snapshot schema version.
const auditVersion = 1

// defaultAuditRetain bounds how many epoch records the log keeps; older
// epochs fall off the front at append time (and therefore out of the
// next snapshot), bounding both memory and disk.
const defaultAuditRetain = 256

const (
	auditSnapshotFile = "epochs.json"
	auditJournalFile  = "epochs.log"
)

// An EpochRecord is one audited epoch transition: why and how the plan
// was computed (Provenance), what changed (Diff), and the resulting
// group and allocation. A record with an empty Tenants slice marks the
// group emptying (the last tenant unregistered; no plan is published).
type EpochRecord struct {
	Provenance PlanProvenance `json:"provenance"`
	Diff       PlanDiff       `json:"diff"`
	Tenants    []string       `json:"tenants,omitempty"`
	Alloc      []int          `json:"alloc,omitempty"`
	Units      int            `json:"units,omitempty"`
}

// auditDoc is the audit log's atomic snapshot: the retained records in
// epoch order, plus the highest epoch ever appended (which can exceed
// the last retained record's epoch only if retention trimmed everything,
// i.e. never in practice — it is the replay skip watermark).
type auditDoc struct {
	Version   int           `json:"version"`
	LastEpoch int64         `json:"last_epoch"`
	Records   []EpochRecord `json:"records"`
}

// An AuditLog is the durable, bounded record of epoch transitions.
// Construct with OpenAuditLog; safe for concurrent use.
type AuditLog struct {
	dir          string
	retain       int
	compactEvery int

	mu        sync.Mutex
	records   []EpochRecord // epoch ascending, at most retain entries
	lastEpoch int64
	log       *atomicio.Log
	logOps    int
}

// OpenAuditLog opens (creating if needed) the epoch audit log in dir,
// replaying the journal over the snapshot; a torn journal tail is
// discarded and compacted away exactly as the tenant store does.
// retain <= 0 and compactEvery <= 0 use the defaults.
func OpenAuditLog(dir string, retain, compactEvery int) (*AuditLog, error) {
	if retain <= 0 {
		retain = defaultAuditRetain
	}
	if compactEvery <= 0 {
		compactEvery = defaultCompactEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	a := &AuditLog{dir: dir, retain: retain, compactEvery: compactEvery}

	snapPath := filepath.Join(dir, auditSnapshotFile)
	if data, err := os.ReadFile(snapPath); err == nil {
		var doc auditDoc
		if err := json.Unmarshal(data, &doc); err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrStoreCorrupt, snapPath, err)
		}
		if doc.Version != auditVersion {
			return nil, fmt.Errorf("%w: %s: snapshot version %d (want %d)", ErrStoreCorrupt, snapPath, doc.Version, auditVersion)
		}
		a.records = doc.Records
		a.lastEpoch = doc.LastEpoch
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("service: %w", err)
	}

	jPath := filepath.Join(dir, auditJournalFile)
	replayed := 0
	torn, err := atomicio.ReplayLog(jPath, func(rec []byte) error {
		var er EpochRecord
		if err := json.Unmarshal(rec, &er); err != nil {
			// Framed but unparseable: damage the CRC cannot see; stop the
			// replay there, like a torn tail.
			return errStopReplay
		}
		if er.Provenance.Epoch <= a.lastEpoch {
			return nil // already folded into the snapshot
		}
		a.records = append(a.records, er)
		a.lastEpoch = er.Provenance.Epoch
		replayed++
		return nil
	})
	if errors.Is(err, errStopReplay) {
		torn, err = true, nil
	}
	if err != nil {
		return nil, err
	}
	a.trimLocked()
	a.logOps = replayed
	obs.Enabled().Counter(mAuditReplayed).Add(int64(replayed))

	if torn {
		obs.Enabled().Counter(mAuditTornRecovered).Add(1)
		obs.Logger().Warn("epoch audit journal had a torn tail; compacting", "dir", dir)
		if err := a.compactLocked(); err != nil {
			return nil, err
		}
	} else {
		if a.log, err = atomicio.OpenLog(jPath); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// Append records one epoch transition durably: journaled and fsynced
// before it is applied in memory, so an acknowledged record survives any
// crash. Records must arrive in epoch order (the reopt loop is the only
// writer).
func (a *AuditLog) Append(rec EpochRecord) error {
	if err := faultinject.Hit(FaultAuditAppend); err != nil {
		return fmt.Errorf("service: audit append: %w", err)
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.log == nil {
		return fmt.Errorf("service: audit log closed")
	}
	if err := a.log.Append(data); err != nil {
		return err
	}
	a.records = append(a.records, rec)
	a.lastEpoch = rec.Provenance.Epoch
	a.trimLocked()
	a.logOps++
	obs.Enabled().Counter(mAuditAppended).Add(1)
	if a.logOps < a.compactEvery {
		return nil
	}
	return a.compactLocked()
}

func (a *AuditLog) trimLocked() {
	if excess := len(a.records) - a.retain; excess > 0 {
		a.records = append([]EpochRecord(nil), a.records[excess:]...)
	}
}

// compactLocked folds the retained records into a fresh snapshot and
// resets the journal; same commit-point ordering as the tenant store
// (snapshot rename commits; stale journal records replay-skip by epoch).
func (a *AuditLog) compactLocked() error {
	if err := atomicio.WriteFile(filepath.Join(a.dir, auditSnapshotFile), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(auditDoc{Version: auditVersion, LastEpoch: a.lastEpoch, Records: a.records})
	}); err != nil {
		return err
	}
	if a.log != nil {
		if err := a.log.Close(); err != nil {
			return err
		}
		a.log = nil
	}
	jPath := filepath.Join(a.dir, auditJournalFile)
	if err := os.Remove(jPath); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("service: %w", err)
	}
	log, err := atomicio.OpenLog(jPath)
	if err != nil {
		return err
	}
	a.log = log
	a.logOps = 0
	obs.Enabled().Counter(mAuditCompactions).Add(1)
	return nil
}

// History returns the retained records with epoch > since, oldest first
// (a copy). since < 0 returns everything retained.
func (a *AuditLog) History(since int64) []EpochRecord {
	a.mu.Lock()
	defer a.mu.Unlock()
	i := 0
	for i < len(a.records) && a.records[i].Provenance.Epoch <= since {
		i++
	}
	return append([]EpochRecord(nil), a.records[i:]...)
}

// LastEpoch returns the highest epoch ever appended (0 before the first
// epoch). The service seeds its epoch counter from this at startup, so
// epochs stay monotonic across restarts.
func (a *AuditLog) LastEpoch() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastEpoch
}

// Len returns the number of retained records.
func (a *AuditLog) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.records)
}

// CanonicalBytes renders the retained records deterministically as
// indented JSON. Two logs holding the same records produce identical
// bytes regardless of snapshot/journal split; the chaos tests compare
// these across crash/recover cycles.
func (a *AuditLog) CanonicalBytes() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return json.MarshalIndent(auditDoc{Version: auditVersion, LastEpoch: a.lastEpoch, Records: a.records}, "", "  ")
}

// Compact forces a snapshot+journal-reset cycle.
func (a *AuditLog) Compact() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.compactLocked()
}

// Close closes the journal. Further appends fail; reads keep working.
func (a *AuditLog) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.log == nil {
		return nil
	}
	err := a.log.Close()
	a.log = nil
	return err
}
