package service

import (
	"context"
	"errors"
	"sync"

	"partitionshare/internal/obs"
)

// The plan change feed: the live half of the plan-lifecycle
// observability layer. The reopt loop publishes every epoch's audit
// record here after it lands in the audit log; HTTP long-poll and SSE
// subscribers (GET /v1/plan/changes) consume it. The backpressure
// contract is one-sided by design: Publish never blocks and never
// waits on a subscriber — a subscriber that falls more than its buffer
// behind loses its oldest pending records and is handed a gap marker
// instead, so a slow or stuck consumer can never back-pressure
// re-optimization. A consumer that sees gap=true re-syncs from
// GET /v1/plan/history, which retains what the buffer dropped.

// ErrFeedClosed reports a wait on a change feed that has shut down
// (service drain); subscribers should end their streams.
var ErrFeedClosed = errors.New("service: change feed closed")

// defaultFeedBuffer is the per-subscriber pending-record buffer when the
// config leaves FeedBuffer unset. Epoch records are small and epochs are
// churn-rate events, so a short buffer covers any live consumer; history
// covers the rest.
const defaultFeedBuffer = 16

// A ChangeFeed fans epoch records out to its subscribers. Construct with
// NewChangeFeed; safe for concurrent use.
type ChangeFeed struct {
	bufCap int

	mu     sync.Mutex
	subs   map[*FeedSub]struct{}
	closed bool
	done   chan struct{}
}

// NewChangeFeed returns a feed whose subscribers each buffer up to
// bufCap pending records (<= 0 means the default).
func NewChangeFeed(bufCap int) *ChangeFeed {
	if bufCap <= 0 {
		bufCap = defaultFeedBuffer
	}
	return &ChangeFeed{
		bufCap: bufCap,
		subs:   make(map[*FeedSub]struct{}),
		done:   make(chan struct{}),
	}
}

// Publish delivers rec to every subscriber, dropping each full
// subscriber's oldest pending record (and marking its gap) rather than
// waiting. Never blocks; publishing on a closed feed is a no-op.
func (f *ChangeFeed) Publish(rec EpochRecord) {
	reg := obs.Enabled()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	reg.Counter(mFeedEvents).Add(1)
	for sub := range f.subs {
		sub.mu.Lock()
		if len(sub.buf) >= f.bufCap {
			sub.buf = sub.buf[1:]
			sub.gap = true
			reg.Counter(mFeedDropped).Add(1)
		}
		sub.buf = append(sub.buf, rec)
		sub.mu.Unlock()
		select {
		case sub.notify <- struct{}{}:
		default:
		}
	}
}

// Subscribe registers a new subscriber, which receives every record
// published from now on. Callers must Close the subscription.
func (f *ChangeFeed) Subscribe() *FeedSub {
	sub := &FeedSub{feed: f, notify: make(chan struct{}, 1)}
	f.mu.Lock()
	f.subs[sub] = struct{}{}
	n := len(f.subs)
	f.mu.Unlock()
	obs.Enabled().Gauge(mFeedSubscribers).Set(int64(n))
	return sub
}

// Close shuts the feed down: pending buffers stay readable, every
// blocked Next wakes with ErrFeedClosed once drained, and later
// publishes are dropped. Idempotent.
func (f *ChangeFeed) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	close(f.done)
}

// Done is closed when the feed shuts down.
func (f *ChangeFeed) Done() <-chan struct{} { return f.done }

// A FeedSub is one subscriber's bounded view of the feed. Not safe for
// concurrent Next calls; one consumer goroutine per subscription.
type FeedSub struct {
	feed   *ChangeFeed
	notify chan struct{}

	mu  sync.Mutex
	buf []EpochRecord
	gap bool
}

// Next returns the pending records (oldest first) and whether the
// subscriber overflowed since the last call (gap=true means records
// were dropped; the consumer should surface the gap and re-sync from
// history). With nothing pending it blocks until a publish, ctx
// cancellation (returning ctx.Err()), or feed shutdown (returning
// ErrFeedClosed).
func (s *FeedSub) Next(ctx context.Context) (recs []EpochRecord, gap bool, err error) {
	for {
		s.mu.Lock()
		recs, gap = s.buf, s.gap
		s.buf, s.gap = nil, false
		s.mu.Unlock()
		if len(recs) > 0 || gap {
			return recs, gap, nil
		}
		select {
		case <-s.notify:
		case <-s.feed.done:
			// Drain once more: a publish may have raced the shutdown.
			s.mu.Lock()
			recs, gap = s.buf, s.gap
			s.buf, s.gap = nil, false
			s.mu.Unlock()
			if len(recs) > 0 || gap {
				return recs, gap, nil
			}
			return nil, false, ErrFeedClosed
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
}

// Close unsubscribes. Idempotent; a blocked Next is left to its ctx or
// the feed's shutdown.
func (s *FeedSub) Close() {
	f := s.feed
	f.mu.Lock()
	delete(f.subs, s)
	n := len(f.subs)
	f.mu.Unlock()
	obs.Enabled().Gauge(mFeedSubscribers).Set(int64(n))
}
