package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"partitionshare/internal/atomicio"
	"partitionshare/internal/faultinject"
)

// testEpochRecord builds a small deterministic epoch record.
func testEpochRecord(epoch int64) EpochRecord {
	return EpochRecord{
		Provenance: PlanProvenance{
			Epoch:       epoch,
			Cause:       CauseChurn,
			InputDigest: fmt.Sprintf("%032x", epoch),
			SolverPath:  "exact",
			WarmStart:   epoch > 1,
			ComputeNS:   1000 * epoch,
			UnixNS:      epoch, // fixed, so canonical bytes are comparable
		},
		Diff: PlanDiff{
			FromEpoch:  epoch - 1,
			ToEpoch:    epoch,
			Deltas:     []TenantDelta{{Tenant: "a", FromUnits: 10, ToUnits: 12, DeltaUnits: 2}},
			UnitsMoved: 2,
		},
		Tenants: []string{"a"},
		Alloc:   []int{12},
		Units:   12,
	}
}

func auditCanonical(t *testing.T, a *AuditLog) []byte {
	t.Helper()
	b, err := a.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestAuditLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenAuditLog(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for e := int64(1); e <= 5; e++ {
		if err := a.Append(testEpochRecord(e)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if a.LastEpoch() != 5 || a.Len() != 5 {
		t.Fatalf("LastEpoch=%d Len=%d, want 5/5", a.LastEpoch(), a.Len())
	}
	want := auditCanonical(t, a)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenAuditLog(dir, 0, 0)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if got := auditCanonical(t, re); !bytes.Equal(got, want) {
		t.Fatalf("reopened audit log diverges:\n%s\nvs\n%s", got, want)
	}
	// History filters by epoch, oldest first.
	h := re.History(3)
	if len(h) != 2 || h[0].Provenance.Epoch != 4 || h[1].Provenance.Epoch != 5 {
		t.Fatalf("History(3) = %+v", h)
	}
	if n := len(re.History(-1)); n != 5 {
		t.Fatalf("History(-1) returned %d records, want 5", n)
	}
	if n := len(re.History(5)); n != 0 {
		t.Fatalf("History(5) returned %d records, want 0", n)
	}
}

// TestAuditLogRetention drives more epochs than the retain bound and
// checks the window slides: old records fall off, LastEpoch does not.
func TestAuditLogRetention(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenAuditLog(dir, 4, 3) // small retain and compactEvery: both paths exercised
	if err != nil {
		t.Fatal(err)
	}
	for e := int64(1); e <= 10; e++ {
		if err := a.Append(testEpochRecord(e)); err != nil {
			t.Fatal(err)
		}
	}
	if a.Len() != 4 || a.LastEpoch() != 10 {
		t.Fatalf("Len=%d LastEpoch=%d, want 4/10", a.Len(), a.LastEpoch())
	}
	h := a.History(-1)
	if h[0].Provenance.Epoch != 7 {
		t.Fatalf("oldest retained epoch = %d, want 7", h[0].Provenance.Epoch)
	}
	want := auditCanonical(t, a)
	a.Close()
	re, err := OpenAuditLog(dir, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := auditCanonical(t, re); !bytes.Equal(got, want) {
		t.Fatalf("retention window not durable:\n%s\nvs\n%s", got, want)
	}
}

// TestAuditLogInjectedAppendFailure proves a failed append is not
// applied: memory and disk both stay at the last acknowledged record,
// and the log keeps working afterwards.
func TestAuditLogInjectedAppendFailure(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenAuditLog(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Append(testEpochRecord(1)); err != nil {
		t.Fatal(err)
	}
	want := auditCanonical(t, a)

	plan := faultinject.NewPlan()
	plan.Set(atomicio.FaultLogAppend, faultinject.Rule{Count: 1, TruncateAt: 5})
	faultinject.Enable(plan)
	err = a.Append(testEpochRecord(2))
	faultinject.Enable(nil)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Append under fault = %v, want injected error", err)
	}
	if got := auditCanonical(t, a); !bytes.Equal(got, want) {
		t.Fatalf("failed append mutated in-memory state")
	}
	a.Close()
	re, err := OpenAuditLog(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := auditCanonical(t, re); !bytes.Equal(got, want) {
		t.Fatalf("failed append leaked to disk")
	}
	if err := re.Append(testEpochRecord(2)); err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
}

// TestAuditLogTornJournalTail simulates a crash mid-append by truncating
// the journal: reopen keeps every fully-appended record and compacts,
// and a second reopen is byte-identical.
func TestAuditLogTornJournalTail(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenAuditLog(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Append(testEpochRecord(1)); err != nil {
		t.Fatal(err)
	}
	want := auditCanonical(t, a)
	if err := a.Append(testEpochRecord(2)); err != nil {
		t.Fatal(err)
	}
	a.Close()

	jPath := filepath.Join(dir, auditJournalFile)
	fi, err := os.Stat(jPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(jPath, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	re, err := OpenAuditLog(dir, 0, 0)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	if got := auditCanonical(t, re); !bytes.Equal(got, want) {
		t.Fatalf("torn-tail recovery state:\n%s\nwant\n%s", got, want)
	}
	if re.LastEpoch() != 1 {
		t.Fatalf("LastEpoch after torn recovery = %d, want 1", re.LastEpoch())
	}
	if err := re.Append(testEpochRecord(2)); err != nil {
		t.Fatalf("Append after torn recovery: %v", err)
	}
	after := auditCanonical(t, re)
	re.Close()
	re2, err := OpenAuditLog(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if got := auditCanonical(t, re2); !bytes.Equal(got, after) {
		t.Fatalf("second reopen diverges after torn recovery")
	}
}

// TestAuditAppendFailureDoesNotFailEpoch proves the tolerance contract:
// a broken audit disk must not stop plans from publishing — the epoch
// lands, only the audit record is lost (and counted).
func TestAuditAppendFailureDoesNotFailEpoch(t *testing.T) {
	svc := newTestService(t, testConfig())
	plan := faultinject.NewPlan()
	plan.Set(FaultAuditAppend, faultinject.Rule{Count: 1})
	faultinject.Enable(plan)
	defer faultinject.Enable(nil)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	svc.Start(ctx)
	if err := svc.Register(nil, "a", testProfile(t, 1)); err != nil {
		t.Fatal(err)
	}
	p := waitForEpoch(t, svc, []string{"a"})
	if p.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1 despite audit failure", p.Epoch)
	}
	if svc.Audit().LastEpoch() != 0 {
		t.Fatalf("audit recorded the epoch despite the injected failure")
	}
	// The next epoch audits normally.
	if err := svc.Register(nil, "b", testProfile(t, 2)); err != nil {
		t.Fatal(err)
	}
	waitForEpoch(t, svc, []string{"a", "b"})
	if svc.Audit().LastEpoch() != 2 {
		t.Fatalf("audit LastEpoch = %d after recovery, want 2", svc.Audit().LastEpoch())
	}
}

// TestAuditKill9ByteIdentical is the audit log's crash-safety
// differential, mirroring the tenant store's: a child appends epoch
// records, acking each durable append on stdout; the parent SIGKILLs it
// mid-stream, reopens the log twice, and requires (a) every acked epoch
// survived and (b) the two recoveries are byte-identical.
func TestAuditKill9ByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "TestAuditKill9Helper", "-test.v")
	cmd.Env = append(os.Environ(), "SERVICE_AUDIT_KILL9_DIR="+dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	acked := 0
	buf := make([]byte, 1)
	var line strings.Builder
	for acked < 5 {
		if _, err := out.Read(buf); err != nil {
			t.Fatalf("child exited early after %d acks: %v", acked, err)
		}
		if buf[0] != '\n' {
			line.WriteByte(buf[0])
			continue
		}
		if strings.HasPrefix(line.String(), "ack ") {
			acked++
		}
		line.Reset()
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	a1, err := OpenAuditLog(dir, 0, 0)
	if err != nil {
		t.Fatalf("recovery open 1: %v", err)
	}
	if a1.LastEpoch() < int64(acked) {
		t.Fatalf("acked epoch %d lost after kill -9: LastEpoch=%d", acked, a1.LastEpoch())
	}
	seen := map[int64]bool{}
	for _, rec := range a1.History(-1) {
		seen[rec.Provenance.Epoch] = true
	}
	for e := int64(1); e <= int64(acked); e++ {
		if !seen[e] {
			t.Fatalf("acked epoch %d missing from recovered history", e)
		}
	}
	c1 := auditCanonical(t, a1)
	a1.Close()

	a2, err := OpenAuditLog(dir, 0, 0)
	if err != nil {
		t.Fatalf("recovery open 2: %v", err)
	}
	c2 := auditCanonical(t, a2)
	a2.Close()
	if !bytes.Equal(c1, c2) {
		t.Fatalf("recovery is not deterministic:\n%s\nvs\n%s", c1, c2)
	}
}

// TestAuditKill9Helper is the child half of the kill -9 test; it only
// runs when re-exec'd with the env var set.
func TestAuditKill9Helper(t *testing.T) {
	dir := os.Getenv("SERVICE_AUDIT_KILL9_DIR")
	if dir == "" {
		t.Skip("helper process only")
	}
	a, err := OpenAuditLog(dir, 0, 3) // small compactEvery: the kill races compaction too
	if err != nil {
		t.Fatal(err)
	}
	for e := int64(1); e <= 10000; e++ {
		if err := a.Append(testEpochRecord(e)); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("ack %d\n", e)
		os.Stdout.Sync()
		time.Sleep(time.Millisecond)
	}
}
