package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"partitionshare/internal/mrc"
	"partitionshare/internal/obs"
)

// --- PlanDiff unit tests ----------------------------------------------

func TestComputePlanDiff(t *testing.T) {
	prev := &Plan{Epoch: 3, Tenants: []string{"a", "b", "c"}, Alloc: []int{10, 20, 34}}
	next := &Plan{Epoch: 4, Tenants: []string{"a", "c", "d"}, Alloc: []int{4, 40, 20}}
	d := ComputePlanDiff(prev, next)

	if d.FromEpoch != 3 || d.ToEpoch != 4 {
		t.Fatalf("epochs %d->%d, want 3->4", d.FromEpoch, d.ToEpoch)
	}
	// Moved units counts only one direction, so swaps are not doubled:
	// gains are d(+20) and c(+6); a loses 6 and b loses 20.
	if d.UnitsMoved != 26 {
		t.Fatalf("UnitsMoved = %d, want 26", d.UnitsMoved)
	}
	if len(d.Gained) != 1 || d.Gained[0] != "d" {
		t.Fatalf("Gained = %v, want [d]", d.Gained)
	}
	if len(d.Lost) != 1 || d.Lost[0] != "b" {
		t.Fatalf("Lost = %v, want [b]", d.Lost)
	}
	// Deltas rank by |delta| descending, ties by name.
	wantOrder := []struct {
		tenant string
		delta  int
	}{{"b", -20}, {"d", 20}, {"a", -6}, {"c", 6}}
	if len(d.Deltas) != len(wantOrder) {
		t.Fatalf("Deltas = %+v", d.Deltas)
	}
	for i, w := range wantOrder {
		got := d.Deltas[i]
		if got.Tenant != w.tenant || got.DeltaUnits != w.delta {
			t.Fatalf("delta[%d] = %+v, want %s %+d", i, got, w.tenant, w.delta)
		}
		if got.ToUnits-got.FromUnits != got.DeltaUnits {
			t.Fatalf("delta[%d] inconsistent: %+v", i, got)
		}
	}
}

func TestComputePlanDiffNilSides(t *testing.T) {
	p := &Plan{Epoch: 1, Tenants: []string{"a", "b"}, Alloc: []int{30, 34}}

	first := ComputePlanDiff(nil, p)
	if first.FromEpoch != -1 || first.ToEpoch != 1 {
		t.Fatalf("first epoch bounds %d->%d", first.FromEpoch, first.ToEpoch)
	}
	if len(first.Gained) != 2 || first.UnitsMoved != 64 {
		t.Fatalf("first diff = %+v", first)
	}

	last := ComputePlanDiff(p, nil)
	if len(last.Lost) != 2 || last.UnitsMoved != 0 {
		t.Fatalf("retirement diff = %+v (loss-only moves no units in)", last)
	}

	empty := ComputePlanDiff(nil, nil)
	if empty.UnitsMoved != 0 || len(empty.Deltas) != 0 {
		t.Fatalf("nil/nil diff = %+v", empty)
	}
}

// --- InputDigest unit tests -------------------------------------------

func TestInputDigestDeterministicAndSensitive(t *testing.T) {
	curve := func(seed float64) mrc.Curve {
		return mrc.Curve{MR: []float64{1, 0.5, seed}, Accesses: 1000, AccessRate: 10}
	}
	names := []string{"a", "b"}
	curves := []mrc.Curve{curve(0.25), curve(0.125)}

	base := InputDigest(names, curves, 64)
	if base == "" || base != InputDigest(names, curves, 64) {
		t.Fatalf("digest not deterministic: %q", base)
	}
	if got := InputDigest(names, curves, 32); got == base {
		t.Fatal("digest ignores the unit count")
	}
	if got := InputDigest([]string{"a", "c"}, curves, 64); got == base {
		t.Fatal("digest ignores tenant names")
	}
	perturbed := []mrc.Curve{curve(0.25), curve(0.1250001)}
	if got := InputDigest(names, perturbed, 64); got == base {
		t.Fatal("digest ignores curve values")
	}
	// Name/curve boundary shifts must not collide (length-prefixing).
	if InputDigest([]string{"ab"}, curves[:1], 64) == InputDigest([]string{"a"}, curves[:1], 64) {
		t.Fatal("digest is not boundary-safe on names")
	}
}

// --- Provenance -------------------------------------------------------

// TestPlanProvenanceOnEveryPath: ad-hoc plans carry ad_hoc provenance
// with epoch -1; published epoch plans carry churn provenance with the
// real epoch, and the digest matches an identical ad-hoc recompute.
func TestPlanProvenanceOnEveryPath(t *testing.T) {
	svc := newTestService(t, testConfig())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	svc.Start(ctx)

	if err := svc.Register(nil, "t1", testProfile(t, 1)); err != nil {
		t.Fatal(err)
	}
	adhoc, err := svc.PlanFor(context.Background(), []string{"t1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pv := adhoc.Provenance
	if pv == nil || pv.Cause != CauseAdHoc || pv.Epoch != -1 {
		t.Fatalf("ad-hoc provenance = %+v", pv)
	}
	if pv.InputDigest == "" || pv.SolverPath == "" || pv.ComputeNS <= 0 || pv.UnixNS == 0 {
		t.Fatalf("ad-hoc provenance incomplete: %+v", pv)
	}

	bg := waitForEpoch(t, svc, []string{"t1"})
	bpv := bg.Provenance
	if bpv == nil || bpv.Cause != CauseChurn || bpv.Epoch != bg.Epoch {
		t.Fatalf("epoch provenance = %+v", bpv)
	}
	// Same tenant set, same geometry: the input digests agree, tying the
	// served plan to the exact inputs that produced it.
	if bpv.InputDigest != pv.InputDigest {
		t.Fatalf("digest mismatch: epoch %q vs ad-hoc %q", bpv.InputDigest, pv.InputDigest)
	}
}

// TestEpochContinuityAcrossRestart: the epoch counter seeds from the
// audit log, so a restarted daemon continues the sequence instead of
// reissuing epoch 1 — /debug/requests and history stay unambiguous.
func TestEpochContinuityAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(testConfig(), store)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	svc.Start(ctx)
	if err := svc.Register(nil, "t1", testProfile(t, 1)); err != nil {
		t.Fatal(err)
	}
	p1 := waitForEpoch(t, svc, []string{"t1"})
	cancel()
	svc.Close()
	store.Close()

	store2, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	svc2, err := New(testConfig(), store2)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	svc2.Start(ctx2)
	if err := svc2.Register(nil, "t2", testProfile(t, 2)); err != nil {
		t.Fatal(err)
	}
	p2 := waitForEpoch(t, svc2, []string{"t1", "t2"})
	if p2.Epoch <= p1.Epoch {
		t.Fatalf("epoch went backwards across restart: %d then %d", p1.Epoch, p2.Epoch)
	}
	if h := svc2.Audit().History(-1); h[len(h)-1].Provenance.Epoch != p2.Epoch {
		t.Fatalf("audit tail %d, want %d", h[len(h)-1].Provenance.Epoch, p2.Epoch)
	}
}

// --- HTTP: history, long-poll, SSE, debug -----------------------------

func planUnits(p Plan) map[string]int {
	m := make(map[string]int, len(p.Tenants))
	for i, n := range p.Tenants {
		m[n] = p.Alloc[i]
	}
	return m
}

// assertDiffMatchesPlans checks an epoch event's deltas against the two
// actually-served plans — the acceptance criterion: the feed reports
// exactly the difference a client would compute from its own polls.
func assertDiffMatchesPlans(t *testing.T, d PlanDiff, before, after Plan) {
	t.Helper()
	wantFrom, wantTo := planUnits(before), planUnits(after)
	seen := map[string]bool{}
	for _, td := range d.Deltas {
		seen[td.Tenant] = true
		if td.FromUnits != wantFrom[td.Tenant] || td.ToUnits != wantTo[td.Tenant] {
			t.Fatalf("delta for %s = %+v, served plans say %d -> %d",
				td.Tenant, td, wantFrom[td.Tenant], wantTo[td.Tenant])
		}
		if td.DeltaUnits != td.ToUnits-td.FromUnits {
			t.Fatalf("inconsistent delta: %+v", td)
		}
	}
	moved := 0
	for n, to := range wantTo {
		if delta := to - wantFrom[n]; delta != 0 {
			if !seen[n] {
				t.Fatalf("tenant %s moved %+d units but has no delta entry", n, delta)
			}
			if delta > 0 {
				moved += delta
			}
		}
	}
	if d.UnitsMoved != moved {
		t.Fatalf("UnitsMoved = %d, recomputed %d from the served plans", d.UnitsMoved, moved)
	}
}

// TestHTTPPlanChangesLongPoll is the end-to-end churn acceptance test:
// register -> plan -> long-poll -> register -> the poll returns an epoch
// event whose deltas match the difference of the two served plans.
func TestHTTPPlanChangesLongPoll(t *testing.T) {
	srv, svc := startTestServer(t, testConfig())
	base := "http://" + srv.Addr()

	doReq(t, "PUT", base+"/v1/tenants/t1", profileBytes(t, testProfile(t, 1)))
	waitForEpoch(t, svc, []string{"t1"})
	_, body := doReq(t, "GET", base+"/v1/plan", nil)
	var plan1 Plan
	if err := json.Unmarshal(body, &plan1); err != nil {
		t.Fatal(err)
	}

	// Long-poll from plan1's epoch, then churn. Subscribe-before-history
	// in the handler makes this race-free regardless of arrival order.
	pollDone := make(chan planHistoryResponse, 1)
	go func() {
		_, body := doReq(t, "GET",
			fmt.Sprintf("%s/v1/plan/changes?since_epoch=%d&wait_ms=1500", base, plan1.Epoch), nil)
		var resp planHistoryResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Errorf("long-poll body: %v: %s", err, body)
		}
		pollDone <- resp
	}()
	time.Sleep(10 * time.Millisecond) // let the poll park (not required for correctness)
	doReq(t, "PUT", base+"/v1/tenants/t2", profileBytes(t, testProfile(t, 2)))
	waitForEpoch(t, svc, []string{"t1", "t2"})
	_, body = doReq(t, "GET", base+"/v1/plan", nil)
	var plan2 Plan
	if err := json.Unmarshal(body, &plan2); err != nil {
		t.Fatal(err)
	}

	var resp planHistoryResponse
	select {
	case resp = <-pollDone:
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll never returned")
	}
	if resp.Gap {
		t.Fatalf("gap on a fully retained window: %+v", resp)
	}
	if len(resp.Events) == 0 {
		t.Fatal("long-poll returned no events after churn")
	}
	ev := resp.Events[len(resp.Events)-1]
	if ev.Provenance.Epoch != plan2.Epoch || ev.Provenance.Cause != CauseChurn {
		t.Fatalf("event provenance = %+v, want churn epoch %d", ev.Provenance, plan2.Epoch)
	}
	if ev.Diff.FromEpoch != plan1.Epoch || ev.Diff.ToEpoch != plan2.Epoch {
		t.Fatalf("diff bounds %d->%d, want %d->%d",
			ev.Diff.FromEpoch, ev.Diff.ToEpoch, plan1.Epoch, plan2.Epoch)
	}
	assertDiffMatchesPlans(t, ev.Diff, plan1, plan2)

	// An expired empty poll is a 200 with no events, not an error.
	status, body := doReq(t, "GET",
		fmt.Sprintf("%s/v1/plan/changes?since_epoch=%d&wait_ms=20", base, plan2.Epoch), nil)
	if status != http.StatusOK {
		t.Fatalf("empty poll = %d %s", status, body)
	}
	if err := json.Unmarshal(body, &resp); err != nil || len(resp.Events) != 0 {
		t.Fatalf("empty poll body = %s (err %v)", body, err)
	}
	if resp.LastEpoch != plan2.Epoch {
		t.Fatalf("empty poll last_epoch = %d, want %d", resp.LastEpoch, plan2.Epoch)
	}
}

// readSSEEvents consumes the stream until want "epoch" events arrived
// (other event types are collected too) or the reader fails.
func readSSEEvents(t *testing.T, r *bufio.Reader, want int) (epochs []EpochRecord, others []string) {
	t.Helper()
	var event string
	for len(epochs) < want {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE stream ended early (%v) with %d/%d epoch events", err, len(epochs), want)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if event != "epoch" {
				others = append(others, event)
				continue
			}
			var rec EpochRecord
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &rec); err != nil {
				t.Fatalf("SSE data does not parse: %v: %s", err, line)
			}
			epochs = append(epochs, rec)
		}
	}
	return epochs, others
}

// TestHTTPPlanChangesSSE: the stream replays the backlog after
// since_epoch, then delivers live epochs; deltas again match the served
// plans.
func TestHTTPPlanChangesSSE(t *testing.T) {
	srv, svc := startTestServer(t, testConfig())
	base := "http://" + srv.Addr()

	doReq(t, "PUT", base+"/v1/tenants/t1", profileBytes(t, testProfile(t, 1)))
	waitForEpoch(t, svc, []string{"t1"})
	_, body := doReq(t, "GET", base+"/v1/plan", nil)
	var plan1 Plan
	if err := json.Unmarshal(body, &plan1); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/plan/changes?stream=sse&since_epoch=0", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(resp.Header.Get("Content-Type"), "text/event-stream") {
		t.Fatalf("SSE handshake = %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	reader := bufio.NewReader(resp.Body)

	// Backlog: epoch 1 arrives before any churn.
	backlog, _ := readSSEEvents(t, reader, 1)
	if backlog[0].Provenance.Epoch != plan1.Epoch {
		t.Fatalf("backlog epoch %d, want %d", backlog[0].Provenance.Epoch, plan1.Epoch)
	}

	// Live: churn while the stream is open.
	doReq(t, "PUT", base+"/v1/tenants/t2", profileBytes(t, testProfile(t, 2)))
	waitForEpoch(t, svc, []string{"t1", "t2"})
	_, body = doReq(t, "GET", base+"/v1/plan", nil)
	var plan2 Plan
	if err := json.Unmarshal(body, &plan2); err != nil {
		t.Fatal(err)
	}
	live, _ := readSSEEvents(t, reader, 1)
	if live[0].Provenance.Epoch != plan2.Epoch {
		t.Fatalf("live epoch %d, want %d", live[0].Provenance.Epoch, plan2.Epoch)
	}
	assertDiffMatchesPlans(t, live[0].Diff, plan1, plan2)
}

// TestHTTPPlanHistory: since_epoch filtering, last_epoch, and the gap
// flag when retention has dropped the records a client asks for.
func TestHTTPPlanHistory(t *testing.T) {
	cfg := testConfig()
	cfg.AuditRetain = 2
	srv, svc := startTestServer(t, cfg)
	base := "http://" + srv.Addr()

	var group []string
	for i := uint64(1); i <= 4; i++ {
		name := fmt.Sprintf("t%d", i)
		doReq(t, "PUT", base+"/v1/tenants/"+name, profileBytes(t, testProfile(t, i)))
		group = append(group, name)
		waitForEpoch(t, svc, group)
	}

	status, body := doReq(t, "GET", base+"/v1/plan/history?since_epoch=3", nil)
	if status != http.StatusOK {
		t.Fatalf("history = %d %s", status, body)
	}
	var resp planHistoryResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.LastEpoch != 4 || len(resp.Events) != 1 || resp.Events[0].Provenance.Epoch != 4 {
		t.Fatalf("history since 3 = %s", body)
	}
	if resp.Gap {
		t.Fatal("contiguous resume flagged as gap")
	}

	// since_epoch=0 asks for epochs 1..4, but retention only holds 3..4.
	_, body = doReq(t, "GET", base+"/v1/plan/history?since_epoch=0", nil)
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Gap {
		t.Fatalf("retention hole not flagged: %s", body)
	}
	if len(resp.Events) != 2 || resp.Events[0].Provenance.Epoch != 3 {
		t.Fatalf("retained window = %s", body)
	}

	// Malformed parameters are client errors.
	if status, _ := doReq(t, "GET", base+"/v1/plan/history?since_epoch=frogs", nil); status != http.StatusBadRequest {
		t.Fatalf("bad since_epoch = %d", status)
	}
	if status, _ := doReq(t, "GET", base+"/v1/plan/changes?wait_ms=-1", nil); status != http.StatusBadRequest {
		t.Fatalf("bad wait_ms = %d", status)
	}

	// The human timeline renders the same records.
	status, body = doReq(t, "GET", base+"/debug/epochs", nil)
	if status != http.StatusOK || !strings.Contains(string(body), "epoch 4") {
		t.Fatalf("/debug/epochs = %d %s", status, body)
	}
	if !strings.Contains(string(body), "cause=churn") {
		t.Fatalf("/debug/epochs missing provenance: %s", body)
	}
}

// TestFlightRecordCarriesEpoch: a served plan request's flight-recorder
// entry carries the epoch it served, linking /debug/requests to
// /debug/epochs.
func TestFlightRecordCarriesEpoch(t *testing.T) {
	_, _, fr := withTelemetry(t)
	svc := newTestService(t, testConfig())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	svc.Start(ctx)
	if err := svc.Register(nil, "t1", testProfile(t, 1)); err != nil {
		t.Fatal(err)
	}
	p := waitForEpoch(t, svc, []string{"t1"})

	rec := serveDirect(t, svc.Handler(), "GET", "/v1/plan", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/plan = %d %s", rec.Code, rec.Body.String())
	}
	snap := fr.Snapshot()
	var found bool
	for _, r := range snap.Recent {
		if r.Route == "plan_get" && r.Epoch == p.Epoch {
			found = true
		}
	}
	if !found {
		t.Fatalf("no plan_get record with epoch %d in %+v", p.Epoch, snap.Recent)
	}
}

// TestDrainClosesChangeFeed: Drain must wake a parked long-poll so
// shutdown cannot hang behind a subscriber; the poll resolves as a
// typed draining refusal (or a clean empty poll if it raced the close).
func TestDrainClosesChangeFeed(t *testing.T) {
	srv, svc := startTestServer(t, testConfig())
	base := "http://" + srv.Addr()
	doReq(t, "PUT", base+"/v1/tenants/t1", profileBytes(t, testProfile(t, 1)))
	p := waitForEpoch(t, svc, []string{"t1"})

	pollDone := make(chan int, 1)
	go func() {
		status, _ := doReq(t, "GET",
			fmt.Sprintf("%s/v1/plan/changes?since_epoch=%d&wait_ms=1900", base, p.Epoch), nil)
		pollDone <- status
	}()
	// Wait for the poll to actually subscribe before draining.
	deadline := time.Now().Add(2 * time.Second)
	for {
		svc.feed.mu.Lock()
		n := len(svc.feed.subs)
		svc.feed.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("long-poll never subscribed")
		}
		time.Sleep(time.Millisecond)
	}

	drainDone := make(chan error, 1)
	go func() { drainDone <- srv.Drain(5 * time.Second) }()
	select {
	case status := <-pollDone:
		if status != http.StatusServiceUnavailable && status != http.StatusOK {
			t.Fatalf("parked poll resolved with %d during drain", status)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("drain left the long-poll parked")
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestPlanChurnMetrics: the epoch gauge tracks the current epoch and
// units_moved accumulates, in both the registry and the exposition.
func TestPlanChurnMetrics(t *testing.T) {
	reg, _, _ := withTelemetry(t)
	svc := newTestService(t, testConfig())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	svc.Start(ctx)

	if err := svc.Register(nil, "t1", testProfile(t, 1)); err != nil {
		t.Fatal(err)
	}
	waitForEpoch(t, svc, []string{"t1"})
	if err := svc.Register(nil, "t2", testProfile(t, 2)); err != nil {
		t.Fatal(err)
	}
	p2 := waitForEpoch(t, svc, []string{"t1", "t2"})

	if got := reg.Gauge(mPlanEpoch).Value(); got != p2.Epoch {
		t.Fatalf("%s = %d, want %d", mPlanEpoch, got, p2.Epoch)
	}
	if reg.Counter(mPlanUnitsMoved).Value() <= 0 {
		t.Fatalf("%s never incremented", mPlanUnitsMoved)
	}
	var buf strings.Builder
	if err := obs.WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	expo := buf.String()
	for _, want := range []string{"service_plan_epoch", "service_plan_units_moved"} {
		if !strings.Contains(expo, want) {
			t.Fatalf("exposition missing %s:\n%s", want, expo)
		}
	}
}
