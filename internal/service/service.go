package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"partitionshare/internal/faultinject"
	"partitionshare/internal/mrc"
	"partitionshare/internal/obs"
	"partitionshare/internal/partition"
	"partitionshare/internal/profileio"
)

// Fault points in the solve paths.
const (
	// FaultSolve fires at the head of every ad-hoc plan solve (after
	// admission); a Delay rule simulates a slow solve, an error rule a
	// failing one.
	FaultSolve = "service.solve"
	// FaultReopt fires at the head of every background re-optimization
	// attempt; error rules with a Count window simulate transient
	// failures (driving the retry path), unbounded ones a persistent
	// outage (driving degraded mode).
	FaultReopt = "service.reopt"
)

// ErrNoPlan reports that no background plan has been published yet —
// either no tenants are registered or the first epoch has not finished.
var ErrNoPlan = errors.New("service: no plan published yet")

// Config parameterizes a Service. The zero value is not usable; fill in
// at least Units and BlocksPerUnit or use DefaultConfig.
type Config struct {
	// Units is the cache size in partition units for the shared plan and
	// the default geometry for ad-hoc requests.
	Units int
	// BlocksPerUnit scales footprint blocks to partition units.
	BlocksPerUnit int64
	// MaxInflight bounds concurrent solves; QueueDepth bounds how many
	// more may wait for a slot before requests shed with ErrOverloaded.
	MaxInflight int
	QueueDepth  int
	// DefaultDeadline applies to ad-hoc plan requests whose context has
	// no deadline; ReoptDeadline bounds each background epoch attempt.
	DefaultDeadline time.Duration
	ReoptDeadline   time.Duration
	// RetryMax is how many times a failed epoch re-optimization retries
	// (with exponential backoff from RetryBase, jittered) before the
	// service enters degraded mode and keeps serving the last good plan.
	RetryMax  int
	RetryBase time.Duration
	// TenantSeriesCap bounds the live per-tenant metric label set
	// (telemetry.go); tenants beyond it fold into the "other" overflow
	// series. Non-positive means the obs default.
	TenantSeriesCap int
	// FeedBuffer bounds each change-feed subscriber's pending-record
	// buffer; a subscriber further behind than this loses its oldest
	// records and sees a gap marker (feed.go). Non-positive means the
	// default.
	FeedBuffer int
	// AuditRetain bounds how many epoch records the audit log keeps;
	// AuditCompactEvery is how many appended records accumulate before
	// the log folds them into a fresh snapshot. Non-positive means the
	// defaults (audit.go).
	AuditRetain       int
	AuditCompactEvery int
	// Seed makes the backoff jitter deterministic for tests.
	Seed uint64
}

// DefaultConfig mirrors cmd/optpart's geometry so daemon plans are
// directly comparable to offline solves.
func DefaultConfig() Config {
	return Config{
		Units:             1024,
		BlocksPerUnit:     4,
		MaxInflight:       8,
		QueueDepth:        64,
		DefaultDeadline:   2 * time.Second,
		ReoptDeadline:     10 * time.Second,
		RetryMax:          3,
		RetryBase:         50 * time.Millisecond,
		TenantSeriesCap:   obs.DefaultChildSetCap,
		FeedBuffer:        defaultFeedBuffer,
		AuditRetain:       defaultAuditRetain,
		AuditCompactEvery: defaultCompactEvery,
		Seed:              1,
	}
}

func (c *Config) normalize() {
	d := DefaultConfig()
	if c.Units <= 0 {
		c.Units = d.Units
	}
	if c.BlocksPerUnit <= 0 {
		c.BlocksPerUnit = d.BlocksPerUnit
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = d.MaxInflight
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = d.QueueDepth
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = d.DefaultDeadline
	}
	if c.ReoptDeadline <= 0 {
		c.ReoptDeadline = d.ReoptDeadline
	}
	if c.RetryMax < 0 {
		c.RetryMax = d.RetryMax
	}
	if c.RetryBase <= 0 {
		c.RetryBase = d.RetryBase
	}
	if c.TenantSeriesCap <= 0 {
		c.TenantSeriesCap = d.TenantSeriesCap
	}
	if c.FeedBuffer <= 0 {
		c.FeedBuffer = d.FeedBuffer
	}
	if c.AuditRetain <= 0 {
		c.AuditRetain = d.AuditRetain
	}
	if c.AuditCompactEvery <= 0 {
		c.AuditCompactEvery = d.AuditCompactEvery
	}
}

// A Plan is a served partition decision: the co-run group, the optimal
// allocation, and its objective, all bit-exact with what a cold
// ReferenceOptimize of the same group computes (the differential tests
// pin this for fresh, warm-started, and degraded-stale plans alike).
type Plan struct {
	Epoch          int64     `json:"epoch"`
	Tenants        []string  `json:"tenants"`
	Units          int       `json:"units"`
	Alloc          []int     `json:"alloc"`
	Objective      float64   `json:"objective"`
	GroupMissRatio float64   `json:"group_miss_ratio"`
	MissRatios     []float64 `json:"miss_ratios"`
	SolverPath     string    `json:"solver_path,omitempty"`
	WarmReused     int       `json:"warm_reused_layers"`
	// Provenance records where this plan came from: the input digest,
	// solver path, warm/cold start, compute duration, triggering cause,
	// and trace (provenance.go). Every served plan carries one.
	Provenance *PlanProvenance `json:"provenance,omitempty"`
	// Degraded marks a plan served while it no longer reflects the
	// current tenant set — background re-optimization is failing or has
	// not caught up. The allocation is still the exact optimum for the
	// group listed in Tenants.
	Degraded bool `json:"degraded"`
}

// A Service owns the tenant registry, serves plan queries under
// admission control with deadline propagation, and re-optimizes the
// shared plan in the background as tenants churn, warm-starting from
// the incremental DP and falling back cold when the warm start is
// stale. Construct with New, then Start the background loop.
type Service struct {
	cfg     Config
	store   *Store
	limiter *Limiter

	// audit is the durable epoch record (audit.go); feed fans epoch
	// events out to /v1/plan/changes subscribers (feed.go).
	audit *AuditLog
	feed  *ChangeFeed

	mu         sync.Mutex
	curves     map[string]mrc.Curve // derived at cfg geometry
	order      []string             // registration order: the warm start's stable prefix
	churnTrace string               // trace ID of the last churn request, for epoch provenance

	// inc and rng are owned by the reopt goroutine exclusively.
	inc *partition.Incremental
	rng *rand.Rand

	plan     atomic.Pointer[Plan]
	epoch    atomic.Int64
	degraded atomic.Bool
	draining atomic.Bool

	churn   chan struct{}
	stopped chan struct{}
	started atomic.Bool
}

// New builds a Service over an opened store, deriving curves for every
// already-registered tenant at the configured geometry. The epoch audit
// log opens in the store's directory, and the epoch counter resumes
// from its last recorded epoch, so epochs are monotonic across daemon
// restarts, not just within one process.
func New(cfg Config, store *Store) (*Service, error) {
	cfg.normalize()
	audit, err := OpenAuditLog(store.Dir(), cfg.AuditRetain, cfg.AuditCompactEvery)
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg:     cfg,
		store:   store,
		limiter: NewLimiter(cfg.MaxInflight, cfg.QueueDepth),
		audit:   audit,
		feed:    NewChangeFeed(cfg.FeedBuffer),
		curves:  make(map[string]mrc.Curve),
		inc:     partition.NewIncremental(cfg.Units),
		rng:     rand.New(rand.NewPCG(cfg.Seed, 0x9e3779b97f4a7c15)),
		churn:   make(chan struct{}, 1),
		stopped: make(chan struct{}),
	}
	s.epoch.Store(audit.LastEpoch())
	obs.Enabled().Gauge(mPlanEpoch).Set(audit.LastEpoch())
	for _, name := range store.Names() {
		p, err := store.Get(name)
		if err != nil {
			return nil, err
		}
		s.curves[name] = s.deriveCurve(name, p, cfg.Units)
		s.order = append(s.order, name)
	}
	return s, nil
}

// Audit returns the service's epoch audit log.
func (s *Service) Audit() *AuditLog { return s.audit }

// Feed returns the service's plan change feed.
func (s *Service) Feed() *ChangeFeed { return s.feed }

// Close releases the service's plan-lifecycle resources: the change
// feed shuts down (waking every subscriber) and the audit journal
// closes. The tenant store is the caller's to close; Close does not
// stop the background loop (cancel its context first).
func (s *Service) Close() error {
	s.feed.Close()
	return s.audit.Close()
}

func (s *Service) deriveCurve(name string, p profileio.Profile, units int) mrc.Curve {
	c := mrc.FromFootprint(name, p.Footprint(), units, s.cfg.BlocksPerUnit, p.Rate)
	// Weight the program by its access rate, exactly as cmd/optpart does:
	// the group objective weighs programs by Accesses, so the scaling must
	// match for daemon-served and offline plans to agree bit-for-bit.
	c.Accesses = int64(float64(c.Accesses) * p.Rate)
	return c
}

// Config returns the service's normalized configuration.
func (s *Service) Config() Config { return s.cfg }

// Start launches the background re-optimization loop; it runs until ctx
// is cancelled. Safe to call once.
func (s *Service) Start(ctx context.Context) {
	if s.started.Swap(true) {
		return
	}
	go s.reoptLoop(ctx)
	if s.tenantCount() > 0 {
		s.signalChurn()
	}
}

// Stopped is closed when the background loop has exited.
func (s *Service) Stopped() <-chan struct{} { return s.stopped }

// SetDraining flips drain mode: new work is refused with ErrDraining
// while in-flight requests run to completion.
func (s *Service) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports whether the service refuses new work.
func (s *Service) Draining() bool { return s.draining.Load() }

// Degraded reports whether background re-optimization is failing and
// the published plan may be stale.
func (s *Service) Degraded() bool { return s.degraded.Load() }

// Register adds or replaces a tenant durably and schedules a background
// re-optimization. The store append runs under a service.req.store span
// when ctx carries a request trace (nil ctx is fine for direct callers).
func (s *Service) Register(ctx context.Context, name string, p profileio.Profile) error {
	if s.draining.Load() {
		return ErrDraining
	}
	_, done := startStage(ctx, spanReqStore)
	err := s.store.Put(name, p)
	done()
	if err != nil {
		return err
	}
	s.mu.Lock()
	if _, known := s.curves[name]; !known {
		s.order = append(s.order, name)
	}
	s.curves[name] = s.deriveCurve(name, p, s.cfg.Units)
	s.noteChurnTraceLocked(ctx)
	s.mu.Unlock()
	obs.Enabled().Counter(mTenantsRegistered).Add(1)
	s.signalChurn()
	return nil
}

// noteChurnTraceLocked remembers the triggering request's trace ID so
// the next epoch's provenance can point back at it. Later churn before
// the solve starts overwrites it — coalesced churn is attributed to its
// last trigger, matching the coalesced churn signal itself.
func (s *Service) noteChurnTraceLocked(ctx context.Context) {
	if ctx == nil {
		return
	}
	if tid := obs.TraceIDFrom(ctx); tid != "" {
		s.churnTrace = tid
	}
}

// takeChurnTrace consumes the pending churn trace ID.
func (s *Service) takeChurnTrace() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	tid := s.churnTrace
	s.churnTrace = ""
	return tid
}

// Unregister removes a tenant durably and schedules a background
// re-optimization. Like Register, the store mutation is traced as a
// service.req.store stage when ctx carries a request trace.
func (s *Service) Unregister(ctx context.Context, name string) error {
	if s.draining.Load() {
		return ErrDraining
	}
	_, done := startStage(ctx, spanReqStore)
	err := s.store.Delete(name)
	done()
	if err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.curves, name)
	for i, n := range s.order {
		if n == name {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.noteChurnTraceLocked(ctx)
	s.mu.Unlock()
	obs.Enabled().Counter(mTenantsUnregistered).Add(1)
	s.signalChurn()
	return nil
}

// Tenants returns the registered tenant names, sorted.
func (s *Service) Tenants() []string { return s.store.Names() }

func (s *Service) tenantCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// CurveFor derives the named tenant's miss-ratio curve at the requested
// cache size (units <= 0 uses the configured default).
func (s *Service) CurveFor(name string, units int) (mrc.Curve, error) {
	if units <= 0 {
		units = s.cfg.Units
	}
	if units == s.cfg.Units {
		s.mu.Lock()
		c, ok := s.curves[name]
		s.mu.Unlock()
		if ok {
			return c, nil
		}
	}
	p, err := s.store.Get(name)
	if err != nil {
		return mrc.Curve{}, err
	}
	return s.deriveCurve(name, p, units), nil
}

// PlanFor solves the optimal partition for an ad-hoc co-run group under
// admission control, with the request context's deadline propagated
// into the DP (a context with no deadline gets the configured default).
// Unknown tenants fail with ErrTenantNotFound; overload with
// ErrOverloaded; an expired deadline surfaces context.DeadlineExceeded
// via errors.Is.
func (s *Service) PlanFor(ctx context.Context, names []string, units int) (Plan, error) {
	if s.draining.Load() {
		return Plan{}, ErrDraining
	}
	if len(names) == 0 {
		return Plan{}, fmt.Errorf("service: empty tenant group")
	}
	if units <= 0 {
		units = s.cfg.Units
	}
	if _, has := ctx.Deadline(); !has {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.DefaultDeadline)
		defer cancel()
	}
	start := time.Now()
	actx, doneAdmission := startStage(ctx, spanReqAdmission)
	err := s.limiter.Acquire(actx)
	doneAdmission()
	if err != nil {
		return Plan{}, err
	}
	defer s.limiter.Release()

	_, doneCurves := startStage(ctx, spanReqCurves)
	curves := make([]mrc.Curve, len(names))
	for i, n := range names {
		c, err := s.CurveFor(n, units)
		if err != nil {
			doneCurves()
			return Plan{}, err
		}
		curves[i] = c
	}
	doneCurves()
	sctx, doneSolve := startStage(ctx, spanReqSolve)
	defer doneSolve()
	if err := faultinject.Hit(FaultSolve); err != nil {
		return Plan{}, fmt.Errorf("service: solve: %w", err)
	}
	if err := sctx.Err(); err != nil {
		return Plan{}, fmt.Errorf("service: solve: %w", err)
	}
	// workers=1 keeps the solve serial but cancellable: the kernel polls
	// ctx between DP layers, so the request deadline reaches every solve.
	solveStart := time.Now()
	sol, err := partition.OptimizeParallel(sctx, partition.Problem{Curves: curves, Units: units}, 1)
	if err != nil {
		return Plan{}, err
	}
	reg := obs.Enabled()
	reg.Counter(mPlanRequests).Add(1)
	reg.Histogram(mPlanLatencyNS, obs.DurationBuckets()).Observe(time.Since(start).Nanoseconds())
	return Plan{
		Epoch:          -1, // ad-hoc, not an epoch plan
		Tenants:        append([]string(nil), names...),
		Units:          units,
		Alloc:          append([]int(nil), sol.Alloc...),
		Objective:      sol.Objective,
		GroupMissRatio: sol.GroupMissRatio,
		MissRatios:     append([]float64(nil), sol.MissRatios...),
		SolverPath:     sol.SolverPath,
		Provenance: &PlanProvenance{
			Epoch:       -1,
			Cause:       CauseAdHoc,
			InputDigest: InputDigest(names, curves, units),
			SolverPath:  sol.SolverPath,
			ComputeNS:   time.Since(solveStart).Nanoseconds(),
			TraceID:     obs.TraceIDFrom(ctx),
			UnixNS:      time.Now().UnixNano(),
		},
	}, nil
}

// CurrentPlan returns the latest background epoch plan. ok=false means
// none has been published yet. The Degraded flag is recomputed at read
// time: it is set when re-optimization is failing or when the plan's
// tenant set no longer matches the registry (the plan is then the last
// good one — still exact for the group it lists).
func (s *Service) CurrentPlan() (Plan, bool) {
	p := s.plan.Load()
	if p == nil {
		return Plan{}, false
	}
	out := *p
	out.Degraded = s.degraded.Load() || !s.groupCurrent(p.Tenants)
	if out.Degraded {
		obs.Enabled().Counter(mPlanDegradedServed).Add(1)
	}
	return out, true
}

func (s *Service) groupCurrent(tenants []string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(tenants) != len(s.order) {
		return false
	}
	for i, n := range s.order {
		if tenants[i] != n {
			return false
		}
	}
	return true
}

func (s *Service) signalChurn() {
	select {
	case s.churn <- struct{}{}:
	default:
	}
}

// snapshotGroup copies the current co-run group in registration order —
// the order the warm start's prefix reuse keys off.
func (s *Service) snapshotGroup() ([]string, []mrc.Curve) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := append([]string(nil), s.order...)
	curves := make([]mrc.Curve, len(names))
	for i, n := range names {
		curves[i] = s.curves[n]
	}
	return names, curves
}

func (s *Service) reoptLoop(ctx context.Context) {
	defer close(s.stopped)
	ctx = obs.WithTraceLane(ctx, 7) // dedicated lane for epoch spans
	for {
		select {
		case <-ctx.Done():
			return
		case <-s.churn:
		}
		s.reoptimize(ctx)
	}
}

// reoptimize runs one epoch: solve the full registered group, retrying
// transient failures with jittered exponential backoff, and publish the
// result. Exhausted retries flip degraded mode — the last good plan
// keeps being served — until a later epoch succeeds.
func (s *Service) reoptimize(ctx context.Context) {
	reg := obs.Enabled()
	for attempt := 0; ; attempt++ {
		names, curves := s.snapshotGroup()
		if len(curves) == 0 {
			s.retireEpoch()
			return
		}
		plan, err := s.solveEpoch(ctx, names, curves)
		if err == nil {
			s.publishEpoch(plan)
			reg.Counter(mReoptEpochs).Add(1)
			reg.Gauge(mReoptWarmReused).Set(int64(plan.WarmReused))
			return
		}
		if ctx.Err() != nil {
			return // shutting down; not a degradation
		}
		if attempt >= s.cfg.RetryMax {
			s.degraded.Store(true)
			reg.Counter(mReoptFailures).Add(1)
			obs.Logger().Warn("re-optimization failed; serving last good plan",
				"attempts", attempt+1, "err", err)
			return
		}
		reg.Counter(mReoptRetries).Add(1)
		if !s.sleepBackoff(ctx, attempt) {
			return
		}
	}
}

// publishEpoch stamps the solved plan with its epoch number and full
// provenance, diffs it against the previous published plan, stores it,
// and fans the transition out: audit log first (so /v1/plan/history is
// already consistent when a feed event arrives), then churn metrics,
// then the change feed. Runs only on the reopt goroutine.
func (s *Service) publishEpoch(plan *Plan) {
	prev := s.plan.Load()
	cause := CauseChurn
	if s.degraded.Load() {
		cause = CauseRecovery
	}
	plan.Epoch = s.epoch.Add(1)
	plan.Provenance.Epoch = plan.Epoch
	plan.Provenance.Cause = cause
	plan.Provenance.TraceID = s.takeChurnTrace()
	plan.Provenance.UnixNS = time.Now().UnixNano()
	diff := ComputePlanDiff(prev, plan)
	s.plan.Store(plan)
	s.degraded.Store(false)

	rec := EpochRecord{
		Provenance: *plan.Provenance,
		Diff:       diff,
		Tenants:    plan.Tenants,
		Alloc:      plan.Alloc,
		Units:      plan.Units,
	}
	s.auditAppend(rec)

	reg := obs.Enabled()
	reg.Gauge(mPlanEpoch).Set(plan.Epoch)
	reg.Counter(mPlanUnitsMoved).Add(int64(diff.UnitsMoved))
	cs := reg.ChildSet(mPlanDeltaPrefix, s.cfg.TenantSeriesCap)
	for _, td := range diff.Deltas {
		if td.DeltaUnits != 0 {
			cs.Child(td.Tenant).Counter(planDeltaUnitsSuffix).Add(int64(abs(td.DeltaUnits)))
		}
	}
	s.feed.Publish(rec)
}

// retireEpoch handles the group emptying: the published plan is
// withdrawn, and — when there was one — the withdrawal is itself an
// audited, fed epoch transition (every tenant lost), so subscribers see
// the group end rather than silence.
func (s *Service) retireEpoch() {
	prev := s.plan.Load()
	s.plan.Store(nil)
	s.degraded.Store(false)
	if prev == nil {
		return
	}
	epoch := s.epoch.Add(1)
	diff := ComputePlanDiff(prev, nil)
	diff.ToEpoch = epoch
	rec := EpochRecord{
		Provenance: PlanProvenance{
			Epoch:       epoch,
			Cause:       CauseChurn,
			InputDigest: InputDigest(nil, nil, s.cfg.Units),
			TraceID:     s.takeChurnTrace(),
			UnixNS:      time.Now().UnixNano(),
		},
		Diff:  diff,
		Units: s.cfg.Units,
	}
	s.auditAppend(rec)
	obs.Enabled().Gauge(mPlanEpoch).Set(epoch)
	s.feed.Publish(rec)
}

// auditAppend records one epoch transition, tolerating failure: a
// broken audit disk must never stall or fail re-optimization, so errors
// are counted and logged, not propagated.
func (s *Service) auditAppend(rec EpochRecord) {
	if err := s.audit.Append(rec); err != nil {
		obs.Enabled().Counter(mAuditAppendFailures).Add(1)
		obs.Logger().Warn("epoch audit append failed", "epoch", rec.Provenance.Epoch, "err", err)
	}
}

// sleepBackoff waits RetryBase<<attempt plus up to 50% deterministic
// jitter, or until ctx cancels (returning false).
func (s *Service) sleepBackoff(ctx context.Context, attempt int) bool {
	d := s.cfg.RetryBase << uint(attempt)
	d += time.Duration(s.rng.Int64N(int64(d)/2 + 1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// solveEpoch runs one warm-started solve of the full group under the
// epoch deadline, falling back to a cold solve when the warm start is
// stale. Both paths produce the identical bit-exact solution; only the
// work differs.
func (s *Service) solveEpoch(ctx context.Context, names []string, curves []mrc.Curve) (*Plan, error) {
	dctx, cancel := context.WithTimeout(ctx, s.cfg.ReoptDeadline)
	defer cancel()
	sctx, span := obs.StartTraceSpan(dctx, spanReoptEpoch, "service")
	defer span.End()
	if err := faultinject.Hit(FaultReopt); err != nil {
		return nil, fmt.Errorf("service: reopt: %w", err)
	}
	if err := sctx.Err(); err != nil {
		return nil, fmt.Errorf("service: reopt: %w", err)
	}

	reg := obs.Enabled()
	digest := InputDigest(names, curves, s.cfg.Units)
	start := time.Now()
	warm := true
	var sol partition.Solution
	reused, err := s.inc.Rebase(sctx, curves)
	if err == nil {
		sol, err = s.inc.Solve()
		if err == nil {
			reg.Counter(mReoptWarm).Add(1)
			reg.Histogram(mReoptWarmNS, obs.DurationBuckets()).Observe(time.Since(start).Nanoseconds())
			// Outcome split for the churn dashboards: "warm" means prior
			// layers were actually reused; a fresh full push (first epoch,
			// wholesale group swap) is a cold solve that happened to run
			// through the incremental cache.
			if reused > 0 {
				reg.Counter(mPlanOutcomeWarm).Add(1)
			} else {
				reg.Counter(mPlanOutcomeCold).Add(1)
				warm = false
			}
		}
	}
	if err != nil {
		if !errors.Is(err, partition.ErrWarmStartStale) {
			return nil, err
		}
		// The warm start was rejected (stale layers, cancelled mid-push,
		// inconsistent cache); fall back to the cold path, which the
		// differential tests pin bit-exact vs the warm one.
		reg.Counter(mReoptCold).Add(1)
		reg.Counter(mPlanOutcomeStaleFall).Add(1)
		warm = false
		reused = 0
		start = time.Now()
		sol, err = partition.OptimizeParallel(sctx, partition.Problem{Curves: curves, Units: s.cfg.Units}, 1)
		if err != nil {
			return nil, err
		}
		reg.Histogram(mReoptColdNS, obs.DurationBuckets()).Observe(time.Since(start).Nanoseconds())
	}
	return &Plan{
		Tenants:        names,
		Units:          s.cfg.Units,
		Alloc:          append([]int(nil), sol.Alloc...),
		Objective:      sol.Objective,
		GroupMissRatio: sol.GroupMissRatio,
		MissRatios:     append([]float64(nil), sol.MissRatios...),
		SolverPath:     sol.SolverPath,
		WarmReused:     reused,
		// Epoch, Cause, TraceID, and UnixNS are stamped at publish time
		// (publishEpoch); the solve fills what only it knows.
		Provenance: &PlanProvenance{
			InputDigest: digest,
			SolverPath:  sol.SolverPath,
			WarmStart:   warm,
			WarmReused:  reused,
			ComputeNS:   time.Since(start).Nanoseconds(),
		},
	}, nil
}
