package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"partitionshare/internal/obs"
)

// TestLoadThroughputAndDrain is the acceptance load test: a worker pool
// hammers POST /v1/plan, the run must sustain >= 1000 requests/sec with
// the latency histogram (p99 source) landing in a parseable manifest,
// and a drain fired while the pool is still running must drop zero
// admitted requests — every response is either a 200 or a typed
// refusal, never a torn connection on an admitted solve.
func TestLoadThroughputAndDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	reg := obs.NewRegistry()
	obs.Enable(reg)
	defer obs.Enable(nil)

	cfg := testConfig()
	cfg.MaxInflight = runtime.GOMAXPROCS(0)
	cfg.QueueDepth = 1024
	srv, svc := startTestServer(t, cfg)
	base := "http://" + srv.Addr()
	for i := uint64(1); i <= 4; i++ {
		doReq(t, "PUT", base+fmt.Sprintf("/v1/tenants/t%d", i), profileBytes(t, testProfile(t, i)))
	}
	waitForEpoch(t, svc, []string{"t1", "t2", "t3", "t4"})

	const (
		workers   = 16
		perWorker = 200
	)
	body := []byte(`{"tenants":["t1","t2","t3","t4"]}`)
	var ok, typed, broken atomic.Int64
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: workers}}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, err := client.Post(base+"/v1/plan", "application/json", bytes.NewReader(body))
				if err != nil {
					broken.Add(1)
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
					typed.Add(1)
				default:
					broken.Add(1)
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := int64(workers * perWorker)
	if broken.Load() != 0 {
		t.Fatalf("%d requests failed untyped (network errors or 5xx)", broken.Load())
	}
	if ok.Load() == 0 {
		t.Fatal("no request succeeded")
	}
	rps := float64(total) / elapsed.Seconds()
	t.Logf("load: %d requests (%d ok, %d typed-shed) in %v = %.0f req/s",
		total, ok.Load(), typed.Load(), elapsed.Round(time.Millisecond), rps)
	if rps < 1000 {
		t.Fatalf("sustained only %.0f req/s, want >= 1000", rps)
	}

	// The latency histogram (p99's source of truth) lands in a manifest.
	manifestPath := filepath.Join(t.TempDir(), "load-manifest.json")
	m := obs.NewManifest("service-load-test", map[string]any{
		"workers": workers, "requests": total,
	}).Build(reg)
	if err := m.Write(manifestPath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Histograms map[string]obs.HistogramSummary `json:"histograms"`
	}
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("manifest does not parse: %v", err)
	}
	h, found := parsed.Histograms["service.plan.latency_ns"]
	if !found {
		t.Fatalf("manifest lacks the plan latency histogram: %s", data)
	}
	if h.Count != ok.Load() {
		t.Fatalf("latency histogram counted %d solves, want %d", h.Count, ok.Load())
	}

	// Drain while a second wave is in flight: zero admitted requests
	// dropped, every response accounted for.
	var wave2Broken atomic.Int64
	var wg2 sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			for i := 0; i < 50; i++ {
				resp, err := client.Post(base+"/v1/plan", "application/json", bytes.NewReader(body))
				if err != nil {
					// Connection refused after the listener closed is a
					// pre-admission refusal, not a dropped request.
					continue
				}
				if resp.StatusCode/100 == 5 && resp.StatusCode != http.StatusServiceUnavailable &&
					resp.StatusCode != http.StatusGatewayTimeout {
					wave2Broken.Add(1)
				}
				resp.Body.Close()
			}
		}()
	}
	time.Sleep(10 * time.Millisecond) // let the wave ramp
	if err := srv.Drain(10 * time.Second); err != nil {
		t.Fatalf("drain under load dropped in-flight requests: %v", err)
	}
	wg2.Wait()
	if wave2Broken.Load() != 0 {
		t.Fatalf("%d admitted requests got untyped failures during drain", wave2Broken.Load())
	}
}
