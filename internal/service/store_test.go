package service

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"partitionshare/internal/atomicio"
	"partitionshare/internal/faultinject"
	"partitionshare/internal/profileio"
	"partitionshare/internal/reuse"
	"partitionshare/internal/trace"
)

// testProfile builds a small deterministic tenant profile.
func testProfile(t testing.TB, seed uint64) profileio.Profile {
	t.Helper()
	g := trace.NewZipf(512, 0.7, seed)
	rp := reuse.Collect(trace.Generate(g, 4096))
	return profileio.Profile{Name: fmt.Sprintf("tenant-%d", seed), Rate: 1.0, Reuse: rp}
}

func canonical(t *testing.T, s *Store) []byte {
	t.Helper()
	b, err := s.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 3; i++ {
		if err := s.Put(fmt.Sprintf("t%d", i), testProfile(t, i)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	want := canonical(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if got := canonical(t, re); !bytes.Equal(got, want) {
		t.Fatalf("reopened store diverges:\n%s\nvs\n%s", got, want)
	}
	if names := re.Names(); strings.Join(names, ",") != "t1,t2,t3" {
		t.Fatalf("Names = %v", names)
	}
	p, err := re.Get("t2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "tenant-2" {
		t.Fatalf("Get returned profile %q", p.Name)
	}
}

func TestStoreDeleteAndNotFound(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", testProfile(t, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("a"); !errors.Is(err, ErrTenantNotFound) {
		t.Fatalf("double delete = %v, want ErrTenantNotFound", err)
	}
	if _, err := s.Get("a"); !errors.Is(err, ErrTenantNotFound) {
		t.Fatalf("Get deleted = %v, want ErrTenantNotFound", err)
	}
	want := canonical(t, s)
	s.Close()
	re, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := canonical(t, re); !bytes.Equal(got, want) {
		t.Fatalf("delete not durable:\n%s\nvs\n%s", got, want)
	}
}

// TestStoreCompaction drives enough churn to trigger automatic
// compaction and checks the state survives it and a reopen.
func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 11; i++ {
		if err := s.Put(fmt.Sprintf("t%d", i%5), testProfile(t, i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.logOps >= 4 {
		t.Fatalf("compaction never ran: logOps=%d", s.logOps)
	}
	want := canonical(t, s)
	s.Close()
	re, err := OpenStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := canonical(t, re); !bytes.Equal(got, want) {
		t.Fatalf("post-compaction reopen diverges")
	}
}

// TestStoreInjectedAppendFailure proves a failed journal append is not
// applied: the store's memory and disk state both stay at the last
// acknowledged operation.
func TestStoreInjectedAppendFailure(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("survivor", testProfile(t, 1)); err != nil {
		t.Fatal(err)
	}
	want := canonical(t, s)

	plan := faultinject.NewPlan()
	plan.Set(atomicio.FaultLogAppend, faultinject.Rule{Count: 1, TruncateAt: 5})
	faultinject.Enable(plan)
	err = s.Put("doomed", testProfile(t, 2))
	faultinject.Enable(nil)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Put under fault = %v, want injected error", err)
	}
	if got := canonical(t, s); !bytes.Equal(got, want) {
		t.Fatalf("failed Put mutated in-memory state")
	}
	// And the rolled-back journal replays cleanly after reopen.
	s.Close()
	re, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := canonical(t, re); !bytes.Equal(got, want) {
		t.Fatalf("failed Put leaked to disk")
	}
	if err := re.Put("doomed", testProfile(t, 2)); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
}

// TestStoreInjectedPutFault covers the store-level fault point.
func TestStoreInjectedPutFault(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	plan := faultinject.NewPlan()
	plan.Set(FaultStorePut, faultinject.Rule{Count: 1})
	faultinject.Enable(plan)
	defer faultinject.Enable(nil)
	if err := s.Put("x", testProfile(t, 1)); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Put = %v, want injected error", err)
	}
	if s.Len() != 0 {
		t.Fatalf("failed Put registered a tenant")
	}
}

// TestStoreTornJournalTail simulates a crash mid-append by truncating
// the journal file: reopen must keep every fully-appended record, flag
// the recovery, and leave a compacted clean store behind.
func TestStoreTornJournalTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("keep", testProfile(t, 1)); err != nil {
		t.Fatal(err)
	}
	want := canonical(t, s)
	if err := s.Put("torn", testProfile(t, 2)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	jPath := filepath.Join(dir, journalFile)
	fi, err := os.Stat(jPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(jPath, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	re, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	if got := canonical(t, re); !bytes.Equal(got, want) {
		t.Fatalf("torn-tail recovery state:\n%s\nwant\n%s", got, want)
	}
	// Recovery compacted: the journal is fresh and the store writable.
	if err := re.Put("after", testProfile(t, 3)); err != nil {
		t.Fatalf("Put after torn recovery: %v", err)
	}
	after := canonical(t, re)
	re.Close()
	re2, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if got := canonical(t, re2); !bytes.Equal(got, after) {
		t.Fatalf("second reopen diverges after torn recovery")
	}
}

// TestStoreKill9ByteIdentical is the crash-safety differential: a child
// process registers tenants, acking each durable Put on stdout; the
// parent SIGKILLs it mid-stream, reopens the store twice, and requires
// (a) every acked tenant survived and (b) the two recoveries are
// byte-identical.
func TestStoreKill9ByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "TestStoreKill9Helper", "-test.v")
	cmd.Env = append(os.Environ(), "SERVICE_STORE_KILL9_DIR="+dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Read acks until we have a few, then kill -9 mid-write-loop.
	acked := 0
	buf := make([]byte, 1)
	var line strings.Builder
	for acked < 5 {
		if _, err := out.Read(buf); err != nil {
			t.Fatalf("child exited early after %d acks: %v", acked, err)
		}
		if buf[0] != '\n' {
			line.WriteByte(buf[0])
			continue
		}
		if strings.HasPrefix(line.String(), "ack ") {
			acked++
		}
		line.Reset()
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	s1, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatalf("recovery open 1: %v", err)
	}
	for i := 1; i <= acked; i++ {
		if _, err := s1.Get("t" + strconv.Itoa(i)); err != nil {
			t.Fatalf("acked tenant t%d lost after kill -9: %v", i, err)
		}
	}
	c1 := canonical(t, s1)
	s1.Close()

	s2, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatalf("recovery open 2: %v", err)
	}
	c2 := canonical(t, s2)
	s2.Close()
	if !bytes.Equal(c1, c2) {
		t.Fatalf("recovery is not deterministic:\n%s\nvs\n%s", c1, c2)
	}
}

// TestStoreKill9Helper is the child half of the kill -9 test; it only
// runs when re-exec'd with the env var set.
func TestStoreKill9Helper(t *testing.T) {
	dir := os.Getenv("SERVICE_STORE_KILL9_DIR")
	if dir == "" {
		t.Skip("helper process only")
	}
	s, err := OpenStore(dir, 3) // small compactEvery: the kill races compaction too
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10000; i++ {
		if err := s.Put("t"+strconv.Itoa(i), testProfile(t, uint64(i))); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("ack %d\n", i)
		os.Stdout.Sync()
		time.Sleep(time.Millisecond)
	}
}
