package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"partitionshare/internal/faultinject"
	"partitionshare/internal/mrc"
	"partitionshare/internal/partition"
)

// testConfig is a small-geometry config whose solves run in
// microseconds, so load and churn tests stay fast.
func testConfig() Config {
	return Config{
		Units:           64,
		BlocksPerUnit:   4,
		MaxInflight:     8,
		QueueDepth:      32,
		DefaultDeadline: 2 * time.Second,
		ReoptDeadline:   2 * time.Second,
		RetryMax:        3,
		RetryBase:       time.Millisecond,
		Seed:            1,
	}
}

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	store, err := OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	svc, err := New(cfg, store)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

// waitForEpoch polls until the published plan covers exactly the wanted
// tenants and is not degraded.
func waitForEpoch(t *testing.T, svc *Service, want []string) Plan {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if p, ok := svc.CurrentPlan(); ok && !p.Degraded && len(p.Tenants) == len(want) {
			match := true
			for i := range want {
				if p.Tenants[i] != want[i] {
					match = false
					break
				}
			}
			if match {
				return p
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("no fresh plan for %v", want)
	return Plan{}
}

// assertPlanBitExact requires the served plan to match a from-scratch
// ReferenceOptimize of the same group bit for bit.
func assertPlanBitExact(t *testing.T, svc *Service, p Plan) {
	t.Helper()
	curves := make([]mrc.Curve, len(p.Tenants))
	for i, n := range p.Tenants {
		c, err := svc.CurveFor(n, p.Units)
		if err != nil {
			t.Fatal(err)
		}
		curves[i] = c
	}
	want, err := partition.ReferenceOptimize(partition.Problem{Curves: curves, Units: p.Units})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(p.Objective) != math.Float64bits(want.Objective) {
		t.Fatalf("objective %v vs reference %v", p.Objective, want.Objective)
	}
	for i := range p.Alloc {
		if p.Alloc[i] != want.Alloc[i] {
			t.Fatalf("alloc %v vs reference %v", p.Alloc, want.Alloc)
		}
	}
	for i := range p.MissRatios {
		if math.Float64bits(p.MissRatios[i]) != math.Float64bits(want.MissRatios[i]) {
			t.Fatalf("miss ratio %d: %v vs %v", i, p.MissRatios[i], want.MissRatios[i])
		}
	}
}

// TestPlanForBitExact: the ad-hoc request path serves the reference
// optimum for arbitrary co-run subsets and geometries.
func TestPlanForBitExact(t *testing.T) {
	svc := newTestService(t, testConfig())
	for i := uint64(1); i <= 4; i++ {
		if err := svc.Register(nil, fmt.Sprintf("t%d", i), testProfile(t, i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, tc := range []struct {
		names []string
		units int
	}{
		{[]string{"t1", "t2"}, 0},
		{[]string{"t3", "t1", "t4"}, 0},
		{[]string{"t1", "t2", "t3", "t4"}, 48},
		{[]string{"t2"}, 16},
	} {
		p, err := svc.PlanFor(context.Background(), tc.names, tc.units)
		if err != nil {
			t.Fatalf("PlanFor(%v): %v", tc.names, err)
		}
		assertPlanBitExact(t, svc, p)
	}
	if _, err := svc.PlanFor(context.Background(), []string{"ghost"}, 0); !errors.Is(err, ErrTenantNotFound) {
		t.Fatalf("unknown tenant = %v, want ErrTenantNotFound", err)
	}
	if _, err := svc.PlanFor(context.Background(), nil, 0); err == nil {
		t.Fatal("empty group accepted")
	}
}

// TestEpochChurnWarmStartBitExact drives tenant churn through the
// background loop: every published epoch plan must be bit-exact vs the
// reference, and later epochs must actually reuse warm-start layers.
func TestEpochChurnWarmStartBitExact(t *testing.T) {
	svc := newTestService(t, testConfig())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	svc.Start(ctx)

	var group []string
	for i := uint64(1); i <= 4; i++ {
		name := fmt.Sprintf("t%d", i)
		if err := svc.Register(nil, name, testProfile(t, i)); err != nil {
			t.Fatal(err)
		}
		group = append(group, name)
		p := waitForEpoch(t, svc, group)
		assertPlanBitExact(t, svc, p)
		if i > 1 && p.WarmReused == 0 {
			t.Fatalf("epoch %d reused no warm layers", p.Epoch)
		}
	}

	// Departure mid-list: prefix reuse shrinks but exactness holds.
	if err := svc.Unregister(nil, "t2"); err != nil {
		t.Fatal(err)
	}
	p := waitForEpoch(t, svc, []string{"t1", "t3", "t4"})
	assertPlanBitExact(t, svc, p)
	if p.WarmReused != 1 {
		t.Fatalf("after t2 left: reused %d layers, want 1 (the t1 prefix)", p.WarmReused)
	}

	// Last tenant gone: the plan clears.
	for _, n := range []string{"t1", "t3", "t4"} {
		if err := svc.Unregister(nil, n); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := svc.CurrentPlan(); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("plan not cleared after last tenant left")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestReoptTransientFailureRetries: a failure window shorter than the
// retry budget heals without ever entering degraded mode.
func TestReoptTransientFailureRetries(t *testing.T) {
	svc := newTestService(t, testConfig())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	svc.Start(ctx)

	plan := faultinject.NewPlan()
	plan.Set(FaultReopt, faultinject.Rule{Count: 2})
	faultinject.Enable(plan)
	defer faultinject.Enable(nil)

	if err := svc.Register(nil, "t1", testProfile(t, 1)); err != nil {
		t.Fatal(err)
	}
	p := waitForEpoch(t, svc, []string{"t1"})
	assertPlanBitExact(t, svc, p)
	if got := plan.Hits(FaultReopt); got < 3 {
		t.Fatalf("reopt attempted %d times, want >= 3 (2 failures + success)", got)
	}
	if svc.Degraded() {
		t.Fatal("transient failure left service degraded")
	}
}

// TestReoptPersistentFailureDegrades: when every retry fails, the last
// good plan keeps being served, flagged degraded, still bit-exact for
// its (stale) group; recovery clears the flag.
func TestReoptPersistentFailureDegrades(t *testing.T) {
	svc := newTestService(t, testConfig())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	svc.Start(ctx)

	if err := svc.Register(nil, "t1", testProfile(t, 1)); err != nil {
		t.Fatal(err)
	}
	waitForEpoch(t, svc, []string{"t1"})

	// Now every re-optimization fails: churn leaves the old plan serving.
	plan := faultinject.NewPlan()
	plan.Set(FaultReopt, faultinject.Rule{}) // fire forever
	faultinject.Enable(plan)
	if err := svc.Register(nil, "t2", testProfile(t, 2)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !svc.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("service never entered degraded mode")
		}
		time.Sleep(2 * time.Millisecond)
	}
	p, ok := svc.CurrentPlan()
	if !ok {
		t.Fatal("degraded mode dropped the last good plan")
	}
	if !p.Degraded {
		t.Fatal("stale plan not flagged degraded")
	}
	if len(p.Tenants) != 1 || p.Tenants[0] != "t1" {
		t.Fatalf("degraded plan covers %v, want the last good group [t1]", p.Tenants)
	}
	assertPlanBitExact(t, svc, p) // stale but still the exact optimum for its group

	// Heal the fault and trigger churn: the service recovers.
	faultinject.Enable(nil)
	svc.signalChurn()
	p = waitForEpoch(t, svc, []string{"t1", "t2"})
	assertPlanBitExact(t, svc, p)
	if svc.Degraded() {
		t.Fatal("degraded flag survived recovery")
	}
}

// TestPlanForDeadline: an injected slow solve pushes the request past
// its deadline; the error is context.DeadlineExceeded via errors.Is.
func TestPlanForDeadline(t *testing.T) {
	svc := newTestService(t, testConfig())
	if err := svc.Register(nil, "t1", testProfile(t, 1)); err != nil {
		t.Fatal(err)
	}
	plan := faultinject.NewPlan()
	plan.Set(FaultSolve, faultinject.Rule{Err: faultinject.Benign, Delay: 50 * time.Millisecond})
	faultinject.Enable(plan)
	defer faultinject.Enable(nil)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := svc.PlanFor(ctx, []string{"t1"}, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("slow solve = %v, want DeadlineExceeded", err)
	}
}

// TestOverloadSheds: with one slot and no queue, a second concurrent
// request sheds immediately with the typed sentinel.
func TestOverloadSheds(t *testing.T) {
	cfg := testConfig()
	cfg.MaxInflight = 1
	cfg.QueueDepth = 0
	svc := newTestService(t, cfg)
	if err := svc.Register(nil, "t1", testProfile(t, 1)); err != nil {
		t.Fatal(err)
	}
	// Pin the only slot with an injected slow solve.
	plan := faultinject.NewPlan()
	plan.Set(FaultSolve, faultinject.Rule{Err: faultinject.Benign, Delay: 300 * time.Millisecond})
	faultinject.Enable(plan)
	defer faultinject.Enable(nil)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := svc.PlanFor(context.Background(), []string{"t1"}, 0); err != nil {
			t.Errorf("pinned request failed: %v", err)
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for svc.limiter.Inflight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never acquired the slot")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := svc.PlanFor(context.Background(), []string{"t1"}, 0); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow request = %v, want ErrOverloaded", err)
	}
	wg.Wait()
}

// TestQueuedDeadline: with a queue, a waiter whose deadline expires
// while queued gets a context error, not a hang.
func TestQueuedDeadline(t *testing.T) {
	cfg := testConfig()
	cfg.MaxInflight = 1
	cfg.QueueDepth = 4
	svc := newTestService(t, cfg)
	if err := svc.Register(nil, "t1", testProfile(t, 1)); err != nil {
		t.Fatal(err)
	}
	plan := faultinject.NewPlan()
	plan.Set(FaultSolve, faultinject.Rule{Err: faultinject.Benign, Delay: 300 * time.Millisecond})
	faultinject.Enable(plan)
	defer faultinject.Enable(nil)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		svc.PlanFor(context.Background(), []string{"t1"}, 0)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for svc.limiter.Inflight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never acquired the slot")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := svc.PlanFor(ctx, []string{"t1"}, 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued-past-deadline = %v, want DeadlineExceeded", err)
	}
	wg.Wait()
}

// TestDrainingRefusesTyped: drain mode refuses new work with the typed
// sentinel on every entry point.
func TestDrainingRefusesTyped(t *testing.T) {
	svc := newTestService(t, testConfig())
	if err := svc.Register(nil, "t1", testProfile(t, 1)); err != nil {
		t.Fatal(err)
	}
	svc.SetDraining(true)
	if _, err := svc.PlanFor(context.Background(), []string{"t1"}, 0); !errors.Is(err, ErrDraining) {
		t.Fatalf("PlanFor while draining = %v, want ErrDraining", err)
	}
	if err := svc.Register(nil, "t2", testProfile(t, 2)); !errors.Is(err, ErrDraining) {
		t.Fatalf("Register while draining = %v, want ErrDraining", err)
	}
	if err := svc.Unregister(nil, "t1"); !errors.Is(err, ErrDraining) {
		t.Fatalf("Unregister while draining = %v, want ErrDraining", err)
	}
	svc.SetDraining(false)
	if _, err := svc.PlanFor(context.Background(), []string{"t1"}, 0); err != nil {
		t.Fatalf("PlanFor after drain lifted: %v", err)
	}
}

// TestServiceRestartRecoversTenants: a new Service over a reopened
// store re-derives every curve and serves identical plans.
func TestServiceRestartRecoversTenants(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(testConfig(), store)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 3; i++ {
		if err := svc.Register(nil, fmt.Sprintf("t%d", i), testProfile(t, i)); err != nil {
			t.Fatal(err)
		}
	}
	before, err := svc.PlanFor(context.Background(), []string{"t1", "t2", "t3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	store.Close()

	store2, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	svc2, err := New(testConfig(), store2)
	if err != nil {
		t.Fatal(err)
	}
	after, err := svc2.PlanFor(context.Background(), []string{"t1", "t2", "t3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(before.Objective) != math.Float64bits(after.Objective) {
		t.Fatalf("restart changed objective: %v vs %v", before.Objective, after.Objective)
	}
	for i := range before.Alloc {
		if before.Alloc[i] != after.Alloc[i] {
			t.Fatalf("restart changed allocation: %v vs %v", before.Alloc, after.Alloc)
		}
	}
}
