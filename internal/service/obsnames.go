package service

// Observability names for the partition service, package-prefixed
// dotted.snake per the obsname registry convention. Every metric and
// span name the service registers is declared here exactly once; the
// per-route HTTP names are built from the "…Prefix" constants plus the
// route or error code.
const (
	// Admission control (admission.go).
	mAdmissionShed            = "service.admission.shed"
	mAdmissionDeadlineInQueue = "service.admission.deadline_in_queue"
	mAdmissionQueueDepth      = "service.admission.queue_depth"

	// Request-scoped trace spans (telemetry.go, service.go, admission.go):
	// the per-request span tree rooted at service.req, parented through
	// the request context so one plan request renders as one trace.
	spanReq          = "service.req"
	spanReqAdmission = "service.req.admission"
	spanReqQueue     = "service.req.queue"
	spanReqCurves    = "service.req.curves"
	spanReqSolve     = "service.req.solve"
	spanReqStore     = "service.req.store"

	// RED rollups (telemetry.go): every request once, plus one counter
	// per status class ("…by_class." + 2xx/3xx/4xx/5xx), with the two
	// deadline outcomes 499 and 504 split out (canceled = client went
	// away, deadline = the request's own budget expired).
	mRequests              = "service.requests"
	mRequestsByClassPrefix = "service.requests.by_class."
	mRequestsCanceled      = "service.requests.canceled"
	mRequestsDeadline      = "service.requests.deadline"

	// Per-tenant RED family (telemetry.go): a bounded child set under
	// this prefix; full series names are mTenantPrefix + tenant + "." +
	// one of the suffix families below + route/class.
	mTenantPrefix        = "service.tenant."
	tenantRequestsPrefix = "requests."
	tenantErrorsPrefix   = "errors."
	tenantLatencyPrefix  = "latency_ns."

	// HTTP surface (http.go). The prefixes end in "." and are completed
	// with the route name or error code at the call site.
	mHTTPErrorsPrefix   = "service.http.errors."
	mHTTPRequestsPrefix = "service.http.requests."
	mHTTPLatencyPrefix  = "service.http.latency_ns."
	mHTTPPanics         = "service.http.panics"

	// Server lifecycle (server.go).
	mDrains        = "service.drains"
	mDrainNS       = "service.drain_ns"
	mDrainTimeouts = "service.drain_timeouts"

	// Tenant registry and planning (service.go).
	mTenantsRegistered   = "service.tenants.registered"
	mTenantsUnregistered = "service.tenants.unregistered"
	mPlanRequests        = "service.plan.requests"
	mPlanLatencyNS       = "service.plan.latency_ns"
	mPlanDegradedServed  = "service.plan.degraded_served"

	// Plan lifecycle (service.go, audit.go, feed.go; DESIGN.md §16).
	// The epoch gauge and churn counters track the published plan as it
	// evolves; the delta prefix is a bounded per-tenant ChildSet whose
	// full names are mPlanDeltaPrefix + tenant + "." + the suffix below;
	// the outcome counters split epochs by how the solve ran.
	mPlanEpoch            = "service.plan.epoch"
	mPlanUnitsMoved       = "service.plan.units_moved"
	mPlanDeltaPrefix      = "service.plan.delta."
	planDeltaUnitsSuffix  = "moved_units"
	mPlanOutcomeWarm      = "service.plan.outcome.warm"
	mPlanOutcomeCold      = "service.plan.outcome.cold"
	mPlanOutcomeStaleFall = "service.plan.outcome.stale_fallback"

	// Change feed (feed.go): fan-out volume, drop-oldest overflow, and
	// the live subscriber gauge.
	mFeedEvents      = "service.feed.events"
	mFeedDropped     = "service.feed.dropped"
	mFeedSubscribers = "service.feed.subscribers"

	// Epoch audit log (audit.go): mirrors the tenant-store trio plus the
	// append-side pair (appends are tolerated failures; the reopt loop
	// never blocks on them).
	mAuditAppended       = "service.audit.appended"
	mAuditAppendFailures = "service.audit.append_failures"
	mAuditReplayed       = "service.audit.replayed"
	mAuditTornRecovered  = "service.audit.torn_recovered"
	mAuditCompactions    = "service.audit.compactions"

	// Background re-optimization (service.go).
	spanReoptEpoch   = "service.reopt.epoch"
	mReoptEpochs     = "service.reopt.epochs"
	mReoptWarmReused = "service.reopt.warm_reused"
	mReoptFailures   = "service.reopt.failures"
	mReoptRetries    = "service.reopt.retries"
	mReoptWarm       = "service.reopt.warm"
	mReoptWarmNS     = "service.reopt.warm_ns"
	mReoptCold       = "service.reopt.cold"
	mReoptColdNS     = "service.reopt.cold_ns"

	// Durable tenant store (store.go).
	mStoreReplayed      = "service.store.replayed"
	mStoreTornRecovered = "service.store.torn_recovered"
	mStoreCompactions   = "service.store.compactions"
)
