package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"partitionshare/internal/obs"
)

// A Server binds a Service to a TCP listener and owns its lifecycle:
// start, serve, and a graceful drain that lets every in-flight request
// finish before the process exits.
type Server struct {
	svc  *Service
	http *http.Server
	lis  net.Listener
	err  chan error
}

// StartServer starts the service's background loop and its HTTP
// listener on addr (use "127.0.0.1:0" for an ephemeral port). The
// returned server is accepting requests; ctx bounds the background
// re-optimization loop.
func StartServer(ctx context.Context, svc *Service, addr string) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("service: listen %s: %w", addr, err)
	}
	svc.Start(ctx)
	srv := &Server{
		svc:  svc,
		http: &http.Server{Handler: svc.Handler()},
		lis:  lis,
		err:  make(chan error, 1),
	}
	go func() {
		if err := srv.http.Serve(lis); err != nil && !errors.Is(err, http.ErrServerClosed) {
			srv.err <- err
		}
		close(srv.err)
	}()
	obs.Logger().Info("partitiond listening", "addr", lis.Addr().String())
	return srv, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Err reports a serve failure; the channel closes when the serve loop
// exits.
func (s *Server) Err() <-chan error { return s.err }

// Drain gracefully shuts the server down: readiness flips, listeners
// stop accepting, every in-flight request runs to completion (bounded
// by timeout), and the background loop is left to its context. It
// returns nil when the drain completed with zero dropped requests; a
// deadline error means stragglers were cut off.
func (s *Server) Drain(timeout time.Duration) error {
	s.svc.SetDraining(true)
	// Shut the change feed down before the HTTP drain: open SSE streams
	// and long-polls are legitimate long-lived connections, and Shutdown
	// waits for them — closing the feed wakes every subscriber so their
	// handlers return and the drain can complete.
	s.svc.feed.Close()
	obs.Logger().Info("draining", "timeout", timeout)
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	start := time.Now()
	err := s.http.Shutdown(ctx)
	reg := obs.Enabled()
	reg.Counter(mDrains).Add(1)
	reg.Histogram(mDrainNS, obs.DurationBuckets()).Observe(time.Since(start).Nanoseconds())
	if err != nil {
		reg.Counter(mDrainTimeouts).Add(1)
		return fmt.Errorf("service: drain: %w", err)
	}
	return nil
}

// Close force-closes the listener and all connections; prefer Drain.
func (s *Server) Close() error { return s.http.Close() }
