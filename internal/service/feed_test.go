package service

import (
	"context"
	"errors"
	"testing"
	"time"
)

func feedRecord(epoch int64) EpochRecord {
	return EpochRecord{Provenance: PlanProvenance{Epoch: epoch, Cause: CauseChurn}}
}

// TestFeedDeliversInOrder: a subscriber sees every published record in
// publish order, possibly batched.
func TestFeedDeliversInOrder(t *testing.T) {
	f := NewChangeFeed(16)
	defer f.Close()
	sub := f.Subscribe()
	defer sub.Close()

	for e := int64(1); e <= 5; e++ {
		f.Publish(feedRecord(e))
	}
	var got []int64
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for len(got) < 5 {
		recs, gap, err := sub.Next(ctx)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if gap {
			t.Fatal("gap reported without overflow")
		}
		for _, r := range recs {
			got = append(got, r.Provenance.Epoch)
		}
	}
	for i, e := range got {
		if e != int64(i+1) {
			t.Fatalf("out-of-order delivery: %v", got)
		}
	}
}

// TestFeedOverflowGapNotBlock is the backpressure contract: a slow
// subscriber never blocks Publish; it loses the oldest records and is
// told about the loss via the gap flag.
func TestFeedOverflowGapNotBlock(t *testing.T) {
	f := NewChangeFeed(4)
	defer f.Close()
	sub := f.Subscribe()
	defer sub.Close()

	// Publish far past the buffer without draining. If Publish could
	// block, this loop would deadlock the test (caught by the timeout).
	done := make(chan struct{})
	go func() {
		defer close(done)
		for e := int64(1); e <= 100; e++ {
			f.Publish(feedRecord(e))
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Publish blocked on a slow subscriber")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	recs, gap, err := sub.Next(ctx)
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if !gap {
		t.Fatal("overflow did not set the gap flag")
	}
	if len(recs) != 4 {
		t.Fatalf("kept %d records, want the buffer bound 4", len(recs))
	}
	// Drop-oldest: the survivors are the newest records, still in order.
	for i, r := range recs {
		if r.Provenance.Epoch != int64(97+i) {
			t.Fatalf("survivor %d has epoch %d, want %d", i, r.Provenance.Epoch, 97+i)
		}
	}
	// The gap flag is one-shot: the next batch is clean.
	f.Publish(feedRecord(101))
	recs, gap, err = sub.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if gap || len(recs) != 1 || recs[0].Provenance.Epoch != 101 {
		t.Fatalf("post-gap batch = %v gap=%v", recs, gap)
	}
}

// TestFeedIndependentSubscribers: one slow subscriber's overflow does
// not lose records for a fast one.
func TestFeedIndependentSubscribers(t *testing.T) {
	f := NewChangeFeed(4)
	defer f.Close()
	slow := f.Subscribe()
	defer slow.Close()
	fast := f.Subscribe()
	defer fast.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	total := 0
	for e := int64(1); e <= 20; e++ {
		f.Publish(feedRecord(e))
		recs, gap, err := fast.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if gap {
			t.Fatal("draining subscriber overflowed")
		}
		total += len(recs)
	}
	if total != 20 {
		t.Fatalf("fast subscriber got %d records, want 20", total)
	}
	if _, gap, err := slow.Next(ctx); err != nil || !gap {
		t.Fatalf("slow subscriber gap=%v err=%v, want gap", gap, err)
	}
}

// TestFeedNextContextCancel: a blocked Next returns promptly with the
// context error when the caller gives up.
func TestFeedNextContextCancel(t *testing.T) {
	f := NewChangeFeed(4)
	defer f.Close()
	sub := f.Subscribe()
	defer sub.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, _, err := sub.Next(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Next on idle feed = %v, want DeadlineExceeded", err)
	}
}

// TestFeedCloseWakesSubscribers: Close wakes a blocked Next with
// ErrFeedClosed, and records published just before Close are still
// drained first.
func TestFeedCloseWakesSubscribers(t *testing.T) {
	f := NewChangeFeed(4)
	sub := f.Subscribe()
	defer sub.Close()

	errc := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		for {
			recs, _, err := sub.Next(ctx)
			if err != nil {
				errc <- err
				return
			}
			if len(recs) == 0 {
				errc <- errors.New("empty batch without error")
				return
			}
		}
	}()
	f.Publish(feedRecord(1))
	f.Close()
	f.Close() // idempotent
	select {
	case err := <-errc:
		if !errors.Is(err, ErrFeedClosed) {
			t.Fatalf("Next after close = %v, want ErrFeedClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not wake the subscriber")
	}
	f.Publish(feedRecord(2)) // no-op after close, must not panic
}
