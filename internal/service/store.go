// Package service is the partition-sharing daemon's core: a crash-safe
// multi-tenant profile store, admission-controlled plan solving with
// deadline propagation, and an epoch-based background re-optimizer that
// warm-starts from internal/partition's incremental DP and degrades to
// the last good plan instead of failing. cmd/partitiond wraps it in an
// HTTP/JSON API; the chaos tests drive every failure path through
// internal/faultinject.
package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"partitionshare/internal/atomicio"
	"partitionshare/internal/faultinject"
	"partitionshare/internal/obs"
	"partitionshare/internal/profileio"
)

// Typed sentinels for the store and service API; HTTP maps them to
// status codes, tests assert them with errors.Is.
var (
	// ErrTenantNotFound reports an operation on an unregistered tenant.
	ErrTenantNotFound = errors.New("service: tenant not found")
	// ErrStoreCorrupt reports a tenant store whose snapshot does not
	// parse; the journal's torn-tail tolerance never raises this — only
	// a damaged snapshot file does.
	ErrStoreCorrupt = errors.New("service: tenant store corrupt")
)

// Fault points in the store write path, beyond the atomicio-level ones.
const (
	// FaultStorePut fires at the head of a Put/Delete, before anything is
	// journaled — the cheapest way to make a registration fail.
	FaultStorePut = "service.store.put"
)

// storeVersion is the snapshot schema version.
const storeVersion = 1

// defaultCompactEvery is how many journaled ops accumulate before the
// store folds them into a fresh snapshot.
const defaultCompactEvery = 64

const (
	snapshotFile = "tenants.json"
	journalFile  = "journal.log"
)

// A Store is the durable tenant registry: profiles keyed by tenant name,
// persisted as an atomic snapshot plus a CRC-framed append journal. The
// crash contract, proven by the chaos tests: an operation is durable iff
// it returned nil; a crash — including kill -9 — at any instruction
// leaves the store recoverable to exactly the acknowledged operations,
// and recovery is deterministic (two opens of the same directory yield
// byte-identical canonical state).
type Store struct {
	dir          string
	compactEvery int

	mu      sync.Mutex
	tenants map[string]profileio.Profile
	seq     uint64 // sequence of the last applied operation
	log     *atomicio.Log
	logOps  int // journaled ops since the last snapshot
}

// journalRec is one journaled operation. Put carries the profile in its
// canonical hotlprof text form (JSON base64), so the journal is
// self-contained and versioned by the profile format itself.
type journalRec struct {
	Seq     uint64 `json:"seq"`
	Op      string `json:"op"` // "put" | "del"
	Name    string `json:"name"`
	Profile []byte `json:"profile,omitempty"`
}

// snapshotDoc is the atomic snapshot: every tenant in name order, plus
// the sequence number the snapshot is current through.
type snapshotDoc struct {
	Version int           `json:"version"`
	Seq     uint64        `json:"seq"`
	Tenants []snapshotRow `json:"tenants"`
}

type snapshotRow struct {
	Name    string `json:"name"`
	Profile []byte `json:"profile"`
}

// OpenStore opens (creating if needed) the tenant store in dir,
// replaying the journal over the snapshot. A torn journal tail — the
// signature of a crash mid-append — is discarded and immediately
// compacted away, so the next crash starts from a clean journal.
// compactEvery <= 0 uses the default.
func OpenStore(dir string, compactEvery int) (*Store, error) {
	if compactEvery <= 0 {
		compactEvery = defaultCompactEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	s := &Store{
		dir:          dir,
		compactEvery: compactEvery,
		tenants:      make(map[string]profileio.Profile),
	}

	snapPath := filepath.Join(dir, snapshotFile)
	if data, err := os.ReadFile(snapPath); err == nil {
		var doc snapshotDoc
		if err := json.Unmarshal(data, &doc); err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrStoreCorrupt, snapPath, err)
		}
		if doc.Version != storeVersion {
			return nil, fmt.Errorf("%w: %s: snapshot version %d (want %d)", ErrStoreCorrupt, snapPath, doc.Version, storeVersion)
		}
		for _, row := range doc.Tenants {
			p, err := profileio.Read(bytes.NewReader(row.Profile))
			if err != nil {
				return nil, fmt.Errorf("%w: %s: tenant %q: %v", ErrStoreCorrupt, snapPath, row.Name, err)
			}
			s.tenants[row.Name] = p
		}
		s.seq = doc.Seq
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("service: %w", err)
	}

	jPath := filepath.Join(dir, journalFile)
	replayed := 0
	torn, err := atomicio.ReplayLog(jPath, func(rec []byte) error {
		var jr journalRec
		if err := json.Unmarshal(rec, &jr); err != nil {
			// A record that framed correctly but does not parse is damage
			// the CRC cannot see; treat it like a torn tail by stopping
			// the replay there via a sentinel the caller squashes.
			return errStopReplay
		}
		if jr.Seq <= s.seq {
			return nil // already folded into the snapshot
		}
		switch jr.Op {
		case "put":
			p, err := profileio.Read(bytes.NewReader(jr.Profile))
			if err != nil {
				return errStopReplay
			}
			s.tenants[jr.Name] = p
		case "del":
			delete(s.tenants, jr.Name)
		default:
			return errStopReplay
		}
		s.seq = jr.Seq
		replayed++
		return nil
	})
	if errors.Is(err, errStopReplay) {
		torn, err = true, nil
	}
	if err != nil {
		return nil, err
	}
	s.logOps = replayed
	obs.Enabled().Counter(mStoreReplayed).Add(int64(replayed))

	if torn {
		obs.Enabled().Counter(mStoreTornRecovered).Add(1)
		obs.Logger().Warn("tenant journal had a torn tail; compacting", "dir", dir)
		if err := s.compactLocked(); err != nil {
			return nil, err
		}
	} else {
		if s.log, err = atomicio.OpenLog(jPath); err != nil {
			return nil, err
		}
	}
	return s, nil
}

var errStopReplay = errors.New("service: stop journal replay")

// Put registers (or replaces) a tenant profile durably: the operation is
// journaled and fsynced before it is applied in memory, so an
// acknowledged Put survives any crash.
func (s *Store) Put(name string, p profileio.Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if name == "" {
		return fmt.Errorf("service: empty tenant name")
	}
	if err := faultinject.Hit(FaultStorePut); err != nil {
		return fmt.Errorf("service: store put: %w", err)
	}
	var buf bytes.Buffer
	if err := profileio.Write(&buf, p); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(journalRec{Op: "put", Name: name, Profile: buf.Bytes()}); err != nil {
		return err
	}
	s.tenants[name] = p
	return s.maybeCompactLocked()
}

// Delete unregisters a tenant durably.
func (s *Store) Delete(name string) error {
	if err := faultinject.Hit(FaultStorePut); err != nil {
		return fmt.Errorf("service: store delete: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tenants[name]; !ok {
		return fmt.Errorf("%w: %q", ErrTenantNotFound, name)
	}
	if err := s.appendLocked(journalRec{Op: "del", Name: name}); err != nil {
		return err
	}
	delete(s.tenants, name)
	return s.maybeCompactLocked()
}

func (s *Store) appendLocked(jr journalRec) error {
	if s.log == nil {
		return fmt.Errorf("service: store closed")
	}
	jr.Seq = s.seq + 1
	rec, err := json.Marshal(jr)
	if err != nil {
		return err
	}
	if err := s.log.Append(rec); err != nil {
		return err
	}
	s.seq = jr.Seq
	s.logOps++
	return nil
}

func (s *Store) maybeCompactLocked() error {
	if s.logOps < s.compactEvery {
		return nil
	}
	return s.compactLocked()
}

// compactLocked folds the current state into a fresh snapshot and resets
// the journal. Failure order matters: the snapshot rename is the commit
// point; a crash before it keeps the old snapshot+journal, a crash after
// it but before the journal reset leaves stale journal records that
// replay skips by sequence number.
func (s *Store) compactLocked() error {
	if err := atomicio.WriteFile(filepath.Join(s.dir, snapshotFile), func(w io.Writer) error {
		doc, err := s.snapshotDocLocked()
		if err != nil {
			return err
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}); err != nil {
		return err
	}
	if s.log != nil {
		if err := s.log.Close(); err != nil {
			return err
		}
		s.log = nil
	}
	jPath := filepath.Join(s.dir, journalFile)
	if err := os.Remove(jPath); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("service: %w", err)
	}
	log, err := atomicio.OpenLog(jPath)
	if err != nil {
		return err
	}
	s.log = log
	s.logOps = 0
	obs.Enabled().Counter(mStoreCompactions).Add(1)
	return nil
}

func (s *Store) snapshotDocLocked() (snapshotDoc, error) {
	doc := snapshotDoc{Version: storeVersion, Seq: s.seq}
	names := make([]string, 0, len(s.tenants))
	for n := range s.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		var buf bytes.Buffer
		if err := profileio.Write(&buf, s.tenants[n]); err != nil {
			return doc, err
		}
		doc.Tenants = append(doc.Tenants, snapshotRow{Name: n, Profile: buf.Bytes()})
	}
	return doc, nil
}

// Get returns the named tenant's profile.
func (s *Store) Get(name string) (profileio.Profile, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.tenants[name]
	if !ok {
		return profileio.Profile{}, fmt.Errorf("%w: %q", ErrTenantNotFound, name)
	}
	return p, nil
}

// Names returns the registered tenant names, sorted.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.tenants))
	for n := range s.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered tenants.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tenants)
}

// Dir returns the store's directory — shared with the epoch audit log,
// so one -store flag names the daemon's whole durable footprint.
func (s *Store) Dir() string { return s.dir }

// Seq returns the sequence number of the last applied operation.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// CanonicalBytes renders the store's full state deterministically — the
// snapshot document, minus the sequence number, as indented JSON. Two
// stores holding the same tenants produce identical bytes regardless of
// operation history; the chaos tests compare these across crash/recover
// cycles.
func (s *Store) CanonicalBytes() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	doc, err := s.snapshotDocLocked()
	if err != nil {
		return nil, err
	}
	doc.Seq = 0
	return json.MarshalIndent(doc, "", "  ")
}

// Compact forces a snapshot+journal-reset cycle.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

// Close closes the journal. Further writes fail; reads keep working.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	err := s.log.Close()
	s.log = nil
	return err
}
