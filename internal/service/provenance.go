package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"partitionshare/internal/mrc"
)

// This file is the provenance half of the plan-lifecycle observability
// layer (DESIGN.md §16): every plan the service computes — epoch plans
// from the background re-optimizer and ad-hoc plans from POST /v1/plan —
// carries a PlanProvenance record saying exactly which inputs produced
// it, which solver rung ran, whether the warm start paid off, how long
// the solve took, and which request triggered it. The record is embedded
// in plan responses, epoch audit-log records, and change-feed events, so
// any plan observed anywhere can be traced back to its inputs.

// Plan causes: why a plan was computed. CauseChurn is the normal epoch
// trigger (a tenant registered or unregistered); CauseRecovery marks an
// epoch computed while the service was degraded (re-optimization had
// been failing and this solve restored freshness); CauseAdHoc marks a
// POST /v1/plan request plan, which is never an epoch.
const (
	CauseChurn    = "churn"
	CauseRecovery = "recovery"
	CauseAdHoc    = "ad_hoc"
)

// A PlanProvenance records where a plan came from. Epoch is the
// monotonic epoch counter (continued across restarts from the audit
// log) or -1 for ad-hoc plans; InputDigest is the deterministic digest
// of the solve's full input (tenant set, derived curves, cache size) —
// two plans with equal digests were computed from bit-identical inputs;
// WarmStart reports whether the incremental DP reused prior layers
// (WarmReused of them) rather than falling back to a cold solve;
// TraceID is the W3C trace ID of the triggering request, when one
// carried a trace (for epochs: the last churn request before the solve).
type PlanProvenance struct {
	Epoch       int64  `json:"epoch"`
	Cause       string `json:"cause"`
	InputDigest string `json:"input_digest"`
	SolverPath  string `json:"solver_path,omitempty"`
	WarmStart   bool   `json:"warm_start"`
	WarmReused  int    `json:"warm_reused_layers,omitempty"`
	ComputeNS   int64  `json:"compute_ns"`
	TraceID     string `json:"trace_id,omitempty"`
	UnixNS      int64  `json:"unix_ns"`
}

// InputDigest computes the deterministic digest of a solve's input: the
// cache size, the tenant names in solve order, and every curve's full
// numeric content (miss ratios bit-for-bit, access count, access rate).
// The encoding is length-prefixed little-endian, so no two distinct
// inputs share an encoding; the digest is the first 16 bytes of the
// SHA-256, hex-encoded (32 characters). names and curves must be
// parallel slices, exactly as handed to the optimizer.
func InputDigest(names []string, curves []mrc.Curve, units int) string {
	h := sha256.New()
	var b [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	wu(uint64(units))
	wu(uint64(len(names)))
	for i, n := range names {
		wu(uint64(len(n)))
		h.Write([]byte(n))
		c := curves[i]
		wu(uint64(len(c.MR)))
		for _, v := range c.MR {
			wu(math.Float64bits(v))
		}
		wu(uint64(c.Accesses))
		wu(math.Float64bits(c.AccessRate))
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}
