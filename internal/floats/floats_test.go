package floats

import (
	"math"
	"testing"
)

func TestWithinEps(t *testing.T) {
	cases := []struct {
		a, b, eps float64
		want      bool
	}{
		{1.0, 1.0, 1e-9, true},
		{0.0, 0.0, 1e-9, true},
		{1.0, 1.0 + 1e-12, 1e-9, true},
		{1.0, 1.0 + 1e-6, 1e-9, false},
		{1e6, 1e6 + 1e-4, 1e-9, true}, // relative clause: 1e-10 of magnitude
		{0.5, 0.6, 1e-9, false},
		{math.Inf(1), math.Inf(1), 1e-9, true},
		{math.Inf(1), math.Inf(-1), 1e-9, false},
		{math.NaN(), math.NaN(), 1e-9, false},
		{math.NaN(), 0, 1e-9, false},
		{-1e-12, 1e-12, 1e-9, true},
	}
	for _, c := range cases {
		if got := WithinEps(c.a, c.b, c.eps); got != c.want {
			t.Errorf("WithinEps(%v, %v, %v) = %v, want %v", c.a, c.b, c.eps, got, c.want)
		}
	}
}

func TestAlmostEqualSymmetric(t *testing.T) {
	pairs := [][2]float64{{0.25, 0.25 + 1e-12}, {3, 4}, {0, 1e-12}}
	for _, p := range pairs {
		if AlmostEqual(p[0], p[1]) != AlmostEqual(p[1], p[0]) {
			t.Errorf("AlmostEqual(%v, %v) not symmetric", p[0], p[1])
		}
	}
}
