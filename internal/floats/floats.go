// Package floats holds the approved tolerance helpers for comparing the
// pipeline's floating-point quantities — miss ratios, footprints,
// composed curves. Exact ==/!= on these values compares rounding
// accidents of long reductions (HOTL Eq. 11, 15–16) and is rejected by
// the floatcmp analyzer (DESIGN.md §10); comparisons route through this
// package instead so every tolerance is explicit and named.
package floats

import "math"

// DefaultEps is the tolerance used when a call site has no sharper
// requirement. Miss ratios live in [0, 1] and the composition pipeline
// is stable to ~1e-12 over the paper's trace lengths, so 1e-9 separates
// genuine differences from accumulated rounding with margin on both
// sides.
const DefaultEps = 1e-9

// AlmostEqual reports whether a and b are within DefaultEps, absolutely
// or relative to the larger magnitude. NaNs are never equal to
// anything, matching IEEE semantics rather than masking them.
func AlmostEqual(a, b float64) bool {
	return WithinEps(a, b, DefaultEps)
}

// WithinEps reports whether a and b differ by at most eps, absolutely
// or relative to the larger magnitude. The relative clause keeps the
// comparison meaningful for large footprints (thousands of blocks)
// where a fixed absolute tolerance would be too tight.
func WithinEps(a, b, eps float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b {
		return true
	}
	// Distinct infinities (or an infinity vs. anything finite) are a
	// genuine difference, not rounding; the relative clause below would
	// otherwise accept them via an infinite scale.
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= eps {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= eps*scale
}
