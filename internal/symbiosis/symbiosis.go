// Package symbiosis solves the co-run grouping problem that motivates the
// paper's composition theory (§IV: "For a scheduling problem with 20
// programs that need to be scheduled on 2 processors sharing a cache, we
// would like to predict cache performance based on 20 metrics, not
// 20-choose-2") and the program-symbiosis study of Wang et al. the paper
// builds on: assign programs to a set of shared caches so the total
// predicted miss count is minimal.
//
// Each candidate cache's performance is predicted compositionally from
// solo profiles (the natural partition), so evaluating a grouping costs
// no simulation — exactly the paper's point. Exhaustive search covers
// small instances; a swap-based local search scales to larger ones.
package symbiosis

import (
	"fmt"
	"math"

	"partitionshare/internal/compose"
	"partitionshare/internal/sharing"
)

// Grouping assigns each program (by index) to one cache.
type Grouping struct {
	// Caches[c] lists the program indices sharing cache c. Caches may be
	// empty.
	Caches [][]int
	// MissRatio is the predicted overall miss ratio (total misses over
	// total accesses) of the grouping.
	MissRatio float64
}

// predict returns total predicted misses and accesses for one cache's
// member set.
func predict(progs []compose.Program, members []int, cacheBlocks float64) (misses, accesses float64) {
	if len(members) == 0 {
		return 0, 0
	}
	sub := make([]compose.Program, len(members))
	for i, p := range members {
		sub[i] = progs[p]
	}
	var mrs []float64
	if len(sub) == 1 {
		mrs = []float64{sub[0].Fp.MissRatio(cacheBlocks)}
	} else {
		mrs = compose.SharedMissRatios(sub, cacheBlocks)
	}
	for i, p := range members {
		n := float64(progs[p].Fp.N())
		misses += mrs[i] * n
		accesses += n
	}
	return misses, accesses
}

// score computes a grouping's overall miss ratio.
func score(progs []compose.Program, caches [][]int, cacheBlocks float64) float64 {
	var misses, accesses float64
	for _, members := range caches {
		m, a := predict(progs, members, cacheBlocks)
		misses += m
		accesses += a
	}
	if accesses == 0 {
		return 0
	}
	return misses / accesses
}

func validate(progs []compose.Program, caches int, cacheBlocks float64) error {
	if len(progs) == 0 {
		return fmt.Errorf("symbiosis: no programs")
	}
	if caches < 1 {
		return fmt.Errorf("symbiosis: need at least one cache, got %d", caches)
	}
	if cacheBlocks <= 0 {
		return fmt.Errorf("symbiosis: non-positive cache size %v", cacheBlocks)
	}
	return nil
}

// Exhaustive finds the best assignment of programs to at most caches
// shared caches by enumerating every set partition with at most that many
// groups. Cost grows with the Bell number of len(progs); keep programs
// <= 10.
func Exhaustive(progs []compose.Program, caches int, cacheBlocks float64) (Grouping, error) {
	if err := validate(progs, caches, cacheBlocks); err != nil {
		return Grouping{}, err
	}
	if len(progs) > 10 {
		return Grouping{}, fmt.Errorf("symbiosis: %d programs too many for exhaustive search", len(progs))
	}
	best := Grouping{MissRatio: math.Inf(1)}
	for _, parts := range sharing.SetPartitions(len(progs)) {
		if len(parts) > caches {
			continue
		}
		mr := score(progs, parts, cacheBlocks)
		if mr < best.MissRatio {
			cp := make([][]int, len(parts))
			for i, g := range parts {
				cp[i] = append([]int(nil), g...)
			}
			best = Grouping{Caches: cp, MissRatio: mr}
		}
	}
	return best, nil
}

// Greedy finds a good assignment by balanced seeding followed by
// swap/move local search: programs are dealt round-robin, then single
// moves and pairwise swaps between caches are applied while they improve
// the predicted miss ratio. maxRounds bounds the local-search sweeps.
func Greedy(progs []compose.Program, caches int, cacheBlocks float64, maxRounds int) (Grouping, error) {
	if err := validate(progs, caches, cacheBlocks); err != nil {
		return Grouping{}, err
	}
	if maxRounds < 1 {
		return Grouping{}, fmt.Errorf("symbiosis: non-positive round limit %d", maxRounds)
	}
	assign := make([][]int, caches)
	for i := range progs {
		c := i % caches
		assign[c] = append(assign[c], i)
	}
	cur := score(progs, assign, cacheBlocks)

	locate := func(p int) (cache, pos int) {
		for c, members := range assign {
			for i, q := range members {
				if q == p {
					return c, i
				}
			}
		}
		panic("symbiosis: program lost during search")
	}
	for round := 0; round < maxRounds; round++ {
		improved := false
		// Moves: relocate one program to another cache.
		for p := range progs {
			from, pos := locate(p)
			for to := 0; to < caches; to++ {
				if to == from {
					continue
				}
				assign[from] = append(assign[from][:pos], assign[from][pos+1:]...)
				assign[to] = append(assign[to], p)
				if mr := score(progs, assign, cacheBlocks); mr < cur-1e-15 {
					cur = mr
					improved = true
				} else {
					// Revert.
					assign[to] = assign[to][:len(assign[to])-1]
					assign[from] = append(assign[from], 0)
					copy(assign[from][pos+1:], assign[from][pos:])
					assign[from][pos] = p
				}
				from, pos = locate(p)
			}
		}
		// Swaps: exchange two programs between caches.
		for p := 0; p < len(progs); p++ {
			for q := p + 1; q < len(progs); q++ {
				cp, ip := locate(p)
				cq, iq := locate(q)
				if cp == cq {
					continue
				}
				assign[cp][ip], assign[cq][iq] = q, p
				if mr := score(progs, assign, cacheBlocks); mr < cur-1e-15 {
					cur = mr
					improved = true
				} else {
					assign[cp][ip], assign[cq][iq] = p, q
				}
			}
		}
		if !improved {
			break
		}
	}
	return Grouping{Caches: assign, MissRatio: cur}, nil
}
