package symbiosis

import (
	"math/rand/v2"
	"testing"

	"partitionshare/internal/compose"
	"partitionshare/internal/footprint"
	"partitionshare/internal/trace"
)

func prog(name string, g trace.Generator, n int, rate float64) compose.Program {
	return compose.Program{Name: name, Fp: footprint.FromTrace(trace.Generate(g, n)), Rate: rate}
}

// streamers and loopers: the loopers need protection from the streamers,
// so the best 2-cache grouping separates them.
func mixedQuartet() []compose.Program {
	return []compose.Program{
		prog("stream1", trace.NewStreaming(1), 20000, 2),
		prog("stream2", trace.NewStreaming(1), 20000, 2),
		prog("loop1", trace.NewLoop(300, 1), 20000, 1),
		prog("loop2", trace.NewLoop(350, 1), 20000, 1),
	}
}

func TestExhaustiveSeparatesStreamersFromLoopers(t *testing.T) {
	progs := mixedQuartet()
	best, err := Exhaustive(progs, 2, 800)
	if err != nil {
		t.Fatal(err)
	}
	// The loopers (2,3) fit together in one 800-block cache; putting a
	// streamer with a looper would thrash it. Expect {0,1} | {2,3}.
	got := map[int]int{}
	for c, members := range best.Caches {
		for _, p := range members {
			got[p] = c
		}
	}
	if got[0] != got[1] || got[2] != got[3] || got[0] == got[2] {
		t.Errorf("grouping %v should pair the streamers and pair the loopers", best.Caches)
	}
	if best.MissRatio <= 0 || best.MissRatio > 1 {
		t.Errorf("miss ratio %v", best.MissRatio)
	}
}

func TestGreedyMatchesExhaustiveSmall(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 9))
	for trial := 0; trial < 5; trial++ {
		var progs []compose.Program
		for i := 0; i < 6; i++ {
			pool := uint32(rng.IntN(500) + 50)
			progs = append(progs, prog("p", trace.NewZipf(pool, 0.6, rng.Uint64()), 10000, 1))
		}
		ex, err := Exhaustive(progs, 2, 400)
		if err != nil {
			t.Fatal(err)
		}
		gr, err := Greedy(progs, 2, 400, 50)
		if err != nil {
			t.Fatal(err)
		}
		// Local search may stop at a local optimum, but must stay close.
		if gr.MissRatio > ex.MissRatio*1.10+1e-12 {
			t.Errorf("trial %d: greedy %.5f vs exhaustive %.5f", trial, gr.MissRatio, ex.MissRatio)
		}
		if gr.MissRatio < ex.MissRatio-1e-12 {
			t.Errorf("trial %d: greedy %.5f beats exhaustive %.5f — impossible", trial, gr.MissRatio, ex.MissRatio)
		}
	}
}

func TestGreedyCoversAllPrograms(t *testing.T) {
	progs := mixedQuartet()
	gr, err := Greedy(progs, 3, 500, 20)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, members := range gr.Caches {
		for _, p := range members {
			if seen[p] {
				t.Fatalf("program %d assigned twice: %v", p, gr.Caches)
			}
			seen[p] = true
		}
	}
	if len(seen) != len(progs) {
		t.Fatalf("only %d of %d programs assigned", len(seen), len(progs))
	}
}

func TestSingleCacheDegenerate(t *testing.T) {
	progs := mixedQuartet()
	ex, err := Exhaustive(progs, 1, 800)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Caches) != 1 || len(ex.Caches[0]) != 4 {
		t.Fatalf("single cache grouping = %v", ex.Caches)
	}
	gr, err := Greedy(progs, 1, 800, 5)
	if err != nil {
		t.Fatal(err)
	}
	if gr.MissRatio != ex.MissRatio {
		t.Errorf("single-cache scores differ: %v vs %v", gr.MissRatio, ex.MissRatio)
	}
}

func TestErrors(t *testing.T) {
	progs := mixedQuartet()
	if _, err := Exhaustive(nil, 2, 100); err == nil {
		t.Error("no programs")
	}
	if _, err := Exhaustive(progs, 0, 100); err == nil {
		t.Error("no caches")
	}
	if _, err := Exhaustive(progs, 2, 0); err == nil {
		t.Error("no capacity")
	}
	if _, err := Greedy(progs, 2, 100, 0); err == nil {
		t.Error("no rounds")
	}
	big := make([]compose.Program, 11)
	for i := range big {
		big[i] = progs[0]
	}
	if _, err := Exhaustive(big, 2, 100); err == nil {
		t.Error("too many programs for exhaustive")
	}
}

func BenchmarkGreedy12Programs(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	var progs []compose.Program
	for i := 0; i < 12; i++ {
		pool := uint32(rng.IntN(500) + 50)
		progs = append(progs, prog("p", trace.NewZipf(pool, 0.6, rng.Uint64()), 10000, 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Greedy(progs, 3, 400, 20); err != nil {
			b.Fatal(err)
		}
	}
}
