package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the request flight recorder: fixed-size rings of the
// most recent, slowest, and errored/shed requests, kept in memory so a
// 429/503/504 observed in a dashboard can be diagnosed after the fact
// — which request, which tenant, which trace ID, where the time went
// stage by stage — without any external tracing backend. It serves at
// /debug/requests on both the daemon's API listener and the -debug-addr
// server. Like the registry, tracer, and sampler, it is process-global
// behind an Enable/Active pair and nil-safe end to end.

// DefaultFlightCap is the per-ring capacity when a caller passes a
// non-positive one. Three rings × 64 records × ~300 B is well under
// 100 KiB — always-on territory.
const DefaultFlightCap = 64

// A StageTiming is one named request stage and the time it consumed,
// as recorded by the per-request stage collector (WithReqStages).
type StageTiming struct {
	Name  string `json:"name"`
	DurNS int64  `json:"dur_ns"`
}

// A RequestRecord is one completed request as the flight recorder keeps
// it: identity (method, route, tenant), result (status, error code,
// admission outcome), correlation (trace ID), and timing (start offset
// from the recorder's creation, duration, per-stage breakdown).
type RequestRecord struct {
	Method  string `json:"method"`
	Route   string `json:"route"`
	Tenant  string `json:"tenant,omitempty"`
	Status  int    `json:"status"`
	Code    string `json:"code,omitempty"` // envelope error code, "" on success
	Outcome string `json:"outcome,omitempty"`
	TraceID string `json:"trace_id,omitempty"`
	// Epoch is the plan epoch the request served or observed (0 when the
	// request did not touch a published plan), correlating a
	// /debug/requests entry with the /debug/epochs timeline.
	Epoch   int64         `json:"epoch,omitempty"`
	StartNS int64         `json:"start_ns"`
	DurNS   int64         `json:"dur_ns"`
	Stages  []StageTiming `json:"stages,omitempty"`
}

// A recordRing is a fixed-capacity overwrite ring of RequestRecords.
type recordRing struct {
	buf  []RequestRecord
	head int
	n    int
}

func (r *recordRing) add(rec RequestRecord) {
	r.buf[r.head] = rec
	r.head = (r.head + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// ordered returns newest-first.
func (r *recordRing) ordered() []RequestRecord {
	out := make([]RequestRecord, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.head-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// A FlightRecorder keeps the three request rings. The zero value is not
// usable; call NewFlightRecorder. All methods are safe for concurrent
// use and no-ops on a nil receiver.
type FlightRecorder struct {
	start time.Time

	mu      sync.Mutex
	recent  recordRing
	errored recordRing
	slowest []RequestRecord // descending by DurNS, at most cap entries
	cap     int
	total   int64
	errors  int64
}

// NewFlightRecorder returns a recorder whose rings hold up to capN
// records each (<= 0 means DefaultFlightCap).
func NewFlightRecorder(capN int) *FlightRecorder {
	if capN <= 0 {
		capN = DefaultFlightCap
	}
	return &FlightRecorder{
		start:   time.Now(),
		recent:  recordRing{buf: make([]RequestRecord, capN)},
		errored: recordRing{buf: make([]RequestRecord, capN)},
		cap:     capN,
	}
}

// Start returns the recorder's epoch, the zero point of record
// StartNS offsets (the zero time on nil).
func (fr *FlightRecorder) Start() time.Time {
	if fr == nil {
		return time.Time{}
	}
	return fr.start
}

// Record files one completed request into the recent ring, the errored
// ring when its status is an error (>= 400, including 499), and the
// slowest list when it ranks.
func (fr *FlightRecorder) Record(rec RequestRecord) {
	if fr == nil {
		return
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	fr.total++
	fr.recent.add(rec)
	if rec.Status >= 400 {
		fr.errors++
		fr.errored.add(rec)
	}
	// Insertion into the descending slowest list: find the rank, shift,
	// drop the tail past cap. cap is small (tens), so O(cap) is fine.
	i := len(fr.slowest)
	for i > 0 && fr.slowest[i-1].DurNS < rec.DurNS {
		i--
	}
	if i >= fr.cap {
		return
	}
	if len(fr.slowest) < fr.cap {
		fr.slowest = append(fr.slowest, RequestRecord{})
	}
	copy(fr.slowest[i+1:], fr.slowest[i:])
	fr.slowest[i] = rec
}

// A FlightSnapshot is the recorder's frozen, export-ready state:
// newest-first rings, the descending slowest list, and lifetime totals.
type FlightSnapshot struct {
	Total   int64           `json:"total"`
	Errors  int64           `json:"errors"`
	Recent  []RequestRecord `json:"recent,omitempty"`
	Slowest []RequestRecord `json:"slowest,omitempty"`
	Errored []RequestRecord `json:"errored,omitempty"`
}

// Snapshot freezes the recorder (zero snapshot on nil).
func (fr *FlightRecorder) Snapshot() FlightSnapshot {
	if fr == nil {
		return FlightSnapshot{}
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return FlightSnapshot{
		Total:   fr.total,
		Errors:  fr.errors,
		Recent:  fr.recent.ordered(),
		Slowest: append([]RequestRecord(nil), fr.slowest...),
		Errored: fr.errored.ordered(),
	}
}

// activeFlight is the process-global flight recorder, nil unless a
// command enabled one; mirrors the registry/tracer/sampler pattern.
var activeFlight atomic.Pointer[FlightRecorder]

// EnableFlightRecorder installs fr as the process-global recorder;
// EnableFlightRecorder(nil) disables recording again.
func EnableFlightRecorder(fr *FlightRecorder) { activeFlight.Store(fr) }

// ActiveFlightRecorder returns the process-global recorder, or nil.
func ActiveFlightRecorder() *FlightRecorder { return activeFlight.Load() }

// ReqStages is a per-request stage-timing collector, threaded through
// context so instrumented layers (admission, solve, store) report where
// a request's time went without any global state. A nil collector is a
// no-op, so instrumentation never branches on whether a request is
// being recorded.
type ReqStages struct {
	mu     sync.Mutex
	stages []StageTiming
}

type reqStagesKey struct{}

// WithReqStages attaches a fresh stage collector to ctx and returns
// both. A nil ctx starts from context.Background.
func WithReqStages(ctx context.Context) (context.Context, *ReqStages) {
	if ctx == nil {
		ctx = context.Background()
	}
	rs := &ReqStages{}
	return context.WithValue(ctx, reqStagesKey{}, rs), rs
}

// ReqStagesFrom returns the collector carried by ctx, or nil.
func ReqStagesFrom(ctx context.Context) *ReqStages {
	if ctx == nil {
		return nil
	}
	rs, _ := ctx.Value(reqStagesKey{}).(*ReqStages)
	return rs
}

// Add records one completed stage. Nil-safe and concurrent-safe (a
// request's stages may end on different goroutines).
func (rs *ReqStages) Add(name string, d time.Duration) {
	if rs == nil {
		return
	}
	rs.mu.Lock()
	rs.stages = append(rs.stages, StageTiming{Name: name, DurNS: d.Nanoseconds()})
	rs.mu.Unlock()
}

// Stages returns the recorded stages in completion order (a copy).
func (rs *ReqStages) Stages() []StageTiming {
	if rs == nil {
		return nil
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return append([]StageTiming(nil), rs.stages...)
}
