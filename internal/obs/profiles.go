package obs

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"

	"partitionshare/internal/atomicio"
)

// This file implements the -cpuprofile / -memprofile / -trace capture
// flags. CPU profiles and execution traces stream for the whole run, so
// they cannot go through atomicio.WriteFile's one-shot callback;
// instead they use the same commit protocol by hand: stream into an
// os.CreateTemp scratch file next to the destination, then
// fsync+close+rename on stop. A crash mid-run leaves only a dot-prefixed
// temp file, never a torn profile under the final name. The heap
// profile is a point-in-time snapshot and uses atomicio directly.
// internal/obs is, with internal/atomicio, one of the two packages the
// atomicwrite analyzer exempts for exactly this reason.

// streamedFile is an in-progress atomically-committed stream.
type streamedFile struct {
	tmp  *os.File
	path string
}

func newStreamedFile(path string) (*streamedFile, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	return &streamedFile{tmp: tmp, path: path}, nil
}

// commit fsyncs and renames the stream into place.
func (s *streamedFile) commit() error {
	if err := s.tmp.Sync(); err != nil {
		s.abort()
		return fmt.Errorf("obs: %w", err)
	}
	if err := s.tmp.Chmod(0o644); err != nil {
		s.abort()
		return fmt.Errorf("obs: %w", err)
	}
	if err := s.tmp.Close(); err != nil {
		os.Remove(s.tmp.Name())
		return fmt.Errorf("obs: %w", err)
	}
	if err := os.Rename(s.tmp.Name(), s.path); err != nil {
		os.Remove(s.tmp.Name())
		return fmt.Errorf("obs: %w", err)
	}
	return nil
}

// abort discards the stream, leaving the destination untouched.
func (s *streamedFile) abort() {
	s.tmp.Close()
	os.Remove(s.tmp.Name())
}

// StartCPUProfile begins CPU profiling into path. The returned stop
// function ends profiling and commits the profile atomically; it is
// safe to call exactly once (typically deferred).
func StartCPUProfile(path string) (stop func() error, err error) {
	sf, err := newStreamedFile(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(sf.tmp); err != nil {
		sf.abort()
		return nil, fmt.Errorf("obs: %w", err)
	}
	Logger().Info("cpu profiling started", "path", path)
	return func() error {
		pprof.StopCPUProfile()
		return sf.commit()
	}, nil
}

// StartTrace begins runtime execution tracing into path (view with
// `go tool trace`). The returned stop function ends the trace and
// commits it atomically.
func StartTrace(path string) (stop func() error, err error) {
	sf, err := newStreamedFile(path)
	if err != nil {
		return nil, err
	}
	if err := rtrace.Start(sf.tmp); err != nil {
		sf.abort()
		return nil, fmt.Errorf("obs: %w", err)
	}
	Logger().Info("execution tracing started", "path", path)
	return func() error {
		rtrace.Stop()
		return sf.commit()
	}, nil
}

// WriteHeapProfile snapshots the heap profile to path atomically. A GC
// runs first so the profile reflects live objects, matching the
// behaviour of net/http/pprof's heap endpoint.
func WriteHeapProfile(path string) error {
	runtime.GC()
	return atomicio.WriteFile(path, func(w io.Writer) error {
		return pprof.Lookup("heap").WriteTo(w, 0)
	})
}
