package obs

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// chromeDoc is the test-side decoding of the exported trace_event JSON.
type chromeDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		TID  int64          `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// Spans started under a span's returned context must record that span as
// their parent, across any nesting depth.
func TestTracerHierarchy(t *testing.T) {
	tr := NewTracer(0, nil)
	ctx, root := tr.Start(context.Background(), "root", "stage")
	cctx, child := tr.Start(ctx, "child", "op")
	_, grand := tr.Start(cctx, "grandchild", "op")
	grand.End()
	child.End()
	root.End()

	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	byName := map[string]TraceEvent{}
	for _, ev := range events {
		byName[ev.Name] = ev
	}
	if byName["root"].Parent != 0 {
		t.Errorf("root parent = %d, want 0", byName["root"].Parent)
	}
	if byName["child"].Parent != byName["root"].ID {
		t.Errorf("child parent = %d, want root id %d", byName["child"].Parent, byName["root"].ID)
	}
	if byName["grandchild"].Parent != byName["child"].ID {
		t.Errorf("grandchild parent = %d, want child id %d", byName["grandchild"].Parent, byName["child"].ID)
	}
}

// WithTraceLane assigns the row; descendants inherit it, and the span
// carried by the context survives the lane re-tag.
func TestTracerLanes(t *testing.T) {
	tr := NewTracer(0, nil)
	ctx, parent := tr.Start(context.Background(), "parent", "stage")
	lctx := WithTraceLane(ctx, 7)
	if id, lane := TraceParent(lctx); id != 1 || lane != 7 {
		t.Fatalf("TraceParent = (%d, %d), want (1, 7)", id, lane)
	}
	_, child := tr.Start(lctx, "child", "op")
	child.End()
	parent.End()

	for _, ev := range tr.Events() {
		switch ev.Name {
		case "parent":
			if ev.Lane != 0 {
				t.Errorf("parent lane = %d, want 0", ev.Lane)
			}
		case "child":
			if ev.Lane != 7 {
				t.Errorf("child lane = %d, want 7", ev.Lane)
			}
			if ev.Parent == 0 {
				t.Error("lane re-tag lost the parent span")
			}
		}
	}
}

// The in-memory buffer is capped; overflow is counted, not stored.
func TestTracerCap(t *testing.T) {
	tr := NewTracer(4, nil)
	for i := 0; i < 10; i++ {
		_, s := tr.Start(context.Background(), "op", "test")
		s.End()
	}
	if got := len(tr.Events()); got != 4 {
		t.Errorf("buffered events = %d, want 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Errorf("dropped = %d, want 6", got)
	}
}

// Every entry point must be a no-op on nil receivers and with no active
// tracer — the disabled-by-default contract the hot paths rely on.
func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, s := tr.Start(context.Background(), "x", "y")
	if s != nil || ctx == nil {
		t.Fatalf("nil tracer Start = (%v, %v)", ctx, s)
	}
	s.Arg("k", 1)
	s.End()
	if tr.Events() != nil || tr.Dropped() != 0 || tr.Close() != nil {
		t.Error("nil tracer methods are not inert")
	}

	if ActiveTracer() != nil {
		t.Fatal("tracer active at test start")
	}
	ctx2, s2 := StartTraceSpan(context.Background(), "x", "y")
	if s2 != nil {
		t.Error("StartTraceSpan returned a span with no active tracer")
	}
	if ctx2 == nil {
		t.Error("StartTraceSpan dropped the context")
	}
	// nil contexts are tolerated everywhere.
	StartTraceSpan(nil, "x", "y")
	WithTraceLane(nil, 1)
	if id, lane := TraceParent(nil); id != 0 || lane != 0 {
		t.Errorf("TraceParent(nil) = (%d, %d)", id, lane)
	}
}

// Concurrent span recording across goroutines must be safe (run under
// -race) and lose no events below the cap.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(0, nil)
	ctx, root := tr.Start(context.Background(), "root", "stage")
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wctx := WithTraceLane(ctx, int64(w+1))
			for i := 0; i < per; i++ {
				_, s := tr.Start(wctx, "op", "test")
				s.Arg("i", int64(i)).End()
			}
		}(w)
	}
	wg.Wait()
	root.End()

	events := tr.Events()
	if len(events) != workers*per+1 {
		t.Fatalf("events = %d, want %d", len(events), workers*per+1)
	}
	rootID := int64(1)
	for _, ev := range events {
		if ev.Name == "op" && ev.Parent != rootID {
			t.Fatalf("op parent = %d, want %d", ev.Parent, rootID)
		}
	}
	// Events() sorts by start offset.
	for i := 1; i < len(events); i++ {
		if events[i].StartNS < events[i-1].StartNS {
			t.Fatal("Events() not sorted by StartNS")
		}
	}
}

// The streamed writer must produce a valid Chrome trace_event document:
// header/footer intact after an atomic commit, one thread_name metadata
// record per lane, and span/parent IDs preserved in args.
func TestStartTraceEventsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	tw, err := StartTraceEvents(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(0, tw)
	ctx, root := tr.Start(context.Background(), "sweep", "stage")
	_, child := tr.Start(WithTraceLane(ctx, 3), "dp.solve", "dp")
	child.Arg("scheme", 4).End()
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil { // idempotent
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	var metaLanes, complete int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name != "thread_name" {
				t.Errorf("metadata event name = %q", ev.Name)
			}
			metaLanes++
		case "X":
			complete++
			if ev.PID != tracePID {
				t.Errorf("event pid = %d, want %d", ev.PID, tracePID)
			}
			if ev.Name == "dp.solve" {
				if ev.TID != 3 {
					t.Errorf("dp.solve tid = %d, want 3", ev.TID)
				}
				if ev.Args["parent"] != float64(1) {
					t.Errorf("dp.solve args.parent = %v, want 1", ev.Args["parent"])
				}
				if ev.Args["scheme"] != float64(4) {
					t.Errorf("dp.solve args.scheme = %v, want 4", ev.Args["scheme"])
				}
			}
		}
	}
	if metaLanes != 2 { // lane 0 and lane 3
		t.Errorf("thread_name metadata events = %d, want 2", metaLanes)
	}
	if complete != 2 {
		t.Errorf("complete events = %d, want 2", complete)
	}

	// The in-memory rendering matches the same document shape.
	buf, err := tr.ChromeTraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc2 chromeDoc
	if err := json.Unmarshal(buf, &doc2); err != nil {
		t.Fatalf("ChromeTraceJSON invalid: %v", err)
	}
	if len(doc2.TraceEvents) != len(doc.TraceEvents) {
		t.Errorf("in-memory events = %d, streamed = %d", len(doc2.TraceEvents), len(doc.TraceEvents))
	}
}

// Events past the in-memory cap must still reach the streamed sink — the
// file is bounded by disk, not by the buffer.
func TestTracerSinkBeyondCap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	tw, err := StartTraceEvents(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(2, tw)
	for i := 0; i < 5; i++ {
		_, s := tr.Start(context.Background(), "op", "test")
		s.End()
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	var complete int
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			complete++
		}
	}
	if complete != 5 {
		t.Errorf("streamed complete events = %d, want 5 (cap must not drop sink events)", complete)
	}
	if tr.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", tr.Dropped())
	}
}

// EnableTracer mirrors Enable: installs, serves, detaches.
func TestEnableTracer(t *testing.T) {
	if ActiveTracer() != nil {
		t.Fatal("tracer active at test start")
	}
	tr := NewTracer(0, nil)
	EnableTracer(tr)
	defer EnableTracer(nil)
	if ActiveTracer() != tr {
		t.Fatal("EnableTracer did not install the tracer")
	}
	_, s := StartTraceSpan(context.Background(), "op", "test")
	s.End()
	if got := len(tr.Events()); got != 1 {
		t.Errorf("events through the global tracer = %d, want 1", got)
	}
	EnableTracer(nil)
	if ActiveTracer() != nil {
		t.Error("EnableTracer(nil) did not detach")
	}
}
