package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestChildSetBasic(t *testing.T) {
	reg := NewRegistry()
	cs := reg.ChildSet("svc.tenant.", 4)
	cs.Child("acme").Counter("requests").Inc()
	cs.Child("acme").Counter("requests").Inc()
	cs.Child("beta").Counter("requests").Inc()

	snap := reg.Snapshot()
	if got := snap.Counters["svc.tenant.acme.requests"]; got != 2 {
		t.Fatalf("acme.requests = %d, want 2", got)
	}
	if got := snap.Counters["svc.tenant.beta.requests"]; got != 1 {
		t.Fatalf("beta.requests = %d, want 1", got)
	}
	if got := snap.Gauges["svc.tenant.labels"]; got != 2 {
		t.Fatalf("labels gauge = %d, want 2", got)
	}
	if _, ok := snap.Counters["svc.tenant.evicted"]; ok {
		t.Fatal("evicted counter present with no evictions")
	}

	// Same prefix returns the same set; the first capacity wins.
	if reg.ChildSet("svc.tenant.", 9999) != cs {
		t.Fatal("second ChildSet call returned a different set")
	}
}

// The acceptance criterion for bounded cardinality: a 10k-label flood
// leaves at most cap live labels, everything older absorbed into the
// overflow child with set-wide totals preserved exactly.
func TestChildSetFloodStaysCapped(t *testing.T) {
	const capN = 16
	const flood = 10_000
	reg := NewRegistry()
	cs := reg.ChildSet("svc.tenant.", capN)
	for i := 0; i < flood; i++ {
		cs.Child(fmt.Sprintf("tenant%05d", i)).Counter("requests").Inc()
	}
	live, evicted := cs.Labels()
	if live > capN {
		t.Fatalf("live labels = %d, want <= %d", live, capN)
	}
	if evicted != flood-capN {
		t.Fatalf("evicted = %d, want %d", evicted, flood-capN)
	}

	snap := reg.Snapshot()
	var total int64
	series := 0
	for name, v := range snap.Counters {
		if strings.HasSuffix(name, ".requests") && strings.HasPrefix(name, "svc.tenant.") {
			total += v
			series++
		}
	}
	if total != flood {
		t.Fatalf("sum over all tenant series = %d, want %d (eviction must absorb, not drop)", total, flood)
	}
	// live labels + the overflow child is the entire series universe.
	if series != capN+1 {
		t.Fatalf("exported series = %d, want %d live + 1 overflow", series, capN+1)
	}
	if snap.Counters["svc.tenant.other.requests"] != flood-capN {
		t.Fatalf("overflow bucket = %d, want %d", snap.Counters["svc.tenant.other.requests"], flood-capN)
	}
	if snap.Counters["svc.tenant.evicted"] != flood-capN {
		t.Fatalf("evicted counter = %d, want %d", snap.Counters["svc.tenant.evicted"], flood-capN)
	}
}

func TestChildSetLRURecency(t *testing.T) {
	reg := NewRegistry()
	cs := reg.ChildSet("svc.tenant.", 2)
	cs.Child("a").Counter("requests").Inc()
	cs.Child("b").Counter("requests").Inc()
	cs.Child("a").Counter("requests").Inc() // refresh a; b is now LRU
	cs.Child("c").Counter("requests").Inc() // evicts b

	snap := reg.Snapshot()
	if _, ok := snap.Counters["svc.tenant.b.requests"]; ok {
		t.Fatal("b should have been evicted (a was touched more recently)")
	}
	if got := snap.Counters["svc.tenant.a.requests"]; got != 2 {
		t.Fatalf("a.requests = %d, want 2 (recency refresh must keep the live series)", got)
	}
	if got := snap.Counters["svc.tenant.other.requests"]; got != 1 {
		t.Fatalf("overflow = %d, want b's count of 1", got)
	}
}

func TestChildSetHistogramAbsorb(t *testing.T) {
	reg := NewRegistry()
	cs := reg.ChildSet("svc.tenant.", 1)
	bounds := []int64{10, 100}
	cs.Child("a").Histogram("latency_ns", bounds).Observe(5)
	cs.Child("a").Histogram("latency_ns", bounds).Observe(50)
	cs.Child("b").Histogram("latency_ns", bounds).Observe(500) // evicts a

	snap := reg.Snapshot()
	oh := snap.Histograms["svc.tenant.other.latency_ns"]
	if oh.Count != 2 || oh.Sum != 55 {
		t.Fatalf("absorbed histogram = count %d sum %d, want 2/55", oh.Count, oh.Sum)
	}
	bh := snap.Histograms["svc.tenant.b.latency_ns"]
	if bh.Count != 1 || bh.Sum != 500 {
		t.Fatalf("live histogram = count %d sum %d, want 1/500", bh.Count, bh.Sum)
	}
}

func TestChildSetSanitizeAndOverflowLabel(t *testing.T) {
	reg := NewRegistry()
	cs := reg.ChildSet("svc.tenant.", 8)
	cs.Child("Team/Alpha!").Counter("requests").Inc()
	cs.Child("").Counter("requests").Inc()
	cs.Child(strings.Repeat("x", 500)).Counter("requests").Inc()
	// The reserved label addresses the overflow child directly and never
	// occupies a live slot.
	cs.Child(OverflowLabel).Counter("requests").Inc()
	cs.Child("OTHER").Counter("requests").Inc() // sanitizes to the reserved label

	snap := reg.Snapshot()
	if got := snap.Counters["svc.tenant.team_alpha_.requests"]; got != 1 {
		t.Fatalf("sanitized label series = %d, want 1", got)
	}
	if got := snap.Counters["svc.tenant._.requests"]; got != 1 {
		t.Fatalf("empty-label series = %d, want 1", got)
	}
	long := "svc.tenant." + strings.Repeat("x", maxLabelLen) + ".requests"
	if got := snap.Counters[long]; got != 1 {
		t.Fatalf("long label not truncated to %d bytes", maxLabelLen)
	}
	if got := snap.Counters["svc.tenant.other.requests"]; got != 2 {
		t.Fatalf("reserved-label series = %d, want 2", got)
	}
	if live, _ := cs.Labels(); live != 3 {
		t.Fatalf("live labels = %d, want 3 (reserved label must not take a slot)", live)
	}
}

func TestChildSetNilSafety(t *testing.T) {
	var reg *Registry
	cs := reg.ChildSet("svc.tenant.", 4)
	if cs != nil {
		t.Fatal("nil registry must hand out a nil set")
	}
	// The full chain must be callable without guards.
	cs.Child("a").Counter("requests").Inc()
	cs.Child("a").Histogram("latency_ns", DurationBuckets()).Observe(1)
	if live, evicted := cs.Labels(); live != 0 || evicted != 0 {
		t.Fatal("nil set reported labels")
	}
	var c *Child
	c.Counter("x").Inc()
	c.Histogram("y", nil).Observe(1)
}

func TestChildSetConcurrent(t *testing.T) {
	reg := NewRegistry()
	cs := reg.ChildSet("svc.tenant.", 8)
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// 32 distinct labels across 8 live slots forces constant
				// eviction under contention.
				cs.Child(fmt.Sprintf("t%d", (g*perG+i)%32)).Counter("requests").Inc()
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for name, v := range reg.Snapshot().Counters {
		if strings.HasSuffix(name, ".requests") {
			total += v
		}
	}
	if total != goroutines*perG {
		t.Fatalf("total = %d, want %d", total, goroutines*perG)
	}
	if live, _ := cs.Labels(); live > 8 {
		t.Fatalf("live labels = %d, want <= 8", live)
	}
}
