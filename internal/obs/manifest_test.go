package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// fixedManifest builds the manifest a deterministic run would produce:
// fixed config, fixed counter values, stages in a fixed order. Only
// Meta and the timing fields vary between runs, and Canonical drops
// exactly those.
func fixedManifest() *Manifest {
	reg := NewRegistry()
	reg.Counter("experiment_groups_completed_total").Add(1820)
	reg.Counter("experiment_groups_failed_total").Add(0)
	reg.Counter("partition_dp_cells_total").Add(2839200)
	reg.Gauge("experiment_workers").Set(4)
	h := reg.Histogram("experiment_group_ns", DurationBuckets())
	for i := 0; i < 1820; i++ {
		h.Observe(int64(i%7) * 1_000_000)
	}
	for _, stage := range []string{"profile", "sweep", "reports"} {
		_, s := reg.StartSpan(context.Background(), stage)
		s.End()
	}

	b := NewManifest("experiments", map[string]any{
		"small":     true,
		"groupsize": 4,
		"units":     64,
	})
	m := b.Build(reg)
	// A fixed sampled-history reduction: the summary values are
	// timing-dependent in real runs, but Canonical keeps only the sorted
	// name set, which is deterministic.
	m.TimeSeries = map[string]SeriesSummary{
		"experiment_groups_completed_total": {Samples: 3, Min: 0, Max: 1820, RatePerSec: 910},
		"experiment_workers":                {Samples: 3, Min: 4, Max: 4},
	}
	return m
}

// The canonical (comparable) portion of the manifest must be
// byte-deterministic for a fixed config — the golden file is the
// contract. Regenerate with: go test ./internal/obs -run Golden -update-golden
func TestManifestCanonicalGolden(t *testing.T) {
	m := fixedManifest()
	got, err := m.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "manifest_canonical.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, append(got, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSpace(got), bytes.TrimSpace(want)) {
		t.Errorf("canonical manifest drifted from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Two independent builds of the same run must agree byte-for-byte.
	again, err := fixedManifest().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, again) {
		t.Error("canonical manifest differs between identical builds")
	}
}

// The full manifest must round-trip through its atomic writer as valid
// JSON with the schema fields intact.
func TestManifestWriteRoundTrip(t *testing.T) {
	m := fixedManifest()
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("written manifest does not parse: %v", err)
	}
	if back.ManifestVersion != ManifestVersion {
		t.Errorf("manifest_version = %d, want %d", back.ManifestVersion, ManifestVersion)
	}
	if back.Tool != "experiments" {
		t.Errorf("tool = %q, want experiments", back.Tool)
	}
	if back.Counters["experiment_groups_completed_total"] != 1820 {
		t.Errorf("counters = %v, want experiment_groups_completed_total=1820", back.Counters)
	}
	if len(back.Stages) != 3 {
		t.Errorf("stages = %v, want 3 entries", back.Stages)
	}
	if back.Meta.GoVersion == "" || back.Meta.Version == "" {
		t.Errorf("meta missing build identity: %+v", back.Meta)
	}
	if back.Histograms["experiment_group_ns"].Count != 1820 {
		t.Errorf("histogram count = %d, want 1820", back.Histograms["experiment_group_ns"].Count)
	}
}

// No timestamps or host/build identity may appear in the canonical
// portion — that is what makes the golden comparison stable across
// machines and runs.
func TestManifestCanonicalOmitsMeta(t *testing.T) {
	got, err := fixedManifest().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal(got, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, forbidden := range []string{"meta", "stages", "wall_ns", "cpu_ns", "started"} {
		if _, ok := decoded[forbidden]; ok {
			t.Errorf("canonical manifest contains %q, which is run-varying", forbidden)
		}
	}
}

func TestBuildVersion(t *testing.T) {
	if v := BuildVersion(); v == "" {
		t.Error("BuildVersion returned empty string")
	}
}
