package obs

import (
	"container/list"
	"sync"
)

// This file is the bounded-cardinality pillar of the request-telemetry
// layer: per-label metric families (per-tenant RED series in the
// service) whose label space is capped. An unbounded map keyed by a
// client-supplied label is an OOM funnel — a tenant flood mints one
// series set per name — so a ChildSet keeps at most cap live labels in
// an LRU index and folds everything beyond it into a single "other"
// overflow child. Eviction is absorption, not deletion: the evicted
// label's counts merge into the overflow child, so totals across the
// set stay exact even while identities age out.

// DefaultChildSetCap bounds a child set's live label count when the
// caller passes a non-positive capacity. 256 labels × a handful of
// series each keeps a tenant-labeled family in the tens of kilobytes.
const DefaultChildSetCap = 256

// OverflowLabel is the reserved label of the overflow child. A real
// label that sanitizes to it shares the bucket (documented, not
// detected — the alternative is an unbounded collision map).
const OverflowLabel = "other"

// maxLabelLen truncates absurdly long labels before they become metric
// names; 48 bytes keeps full names readable in dashboards.
const maxLabelLen = 48

// A ChildSet is a bounded family of per-label children under one name
// prefix (which must end in "."; the obsname analyzer enforces that the
// prefix is a named constant). Obtain via Registry.ChildSet; all
// methods are safe for concurrent use and nil-safe end to end, so
// instrumentation chains reg.ChildSet(p, n).Child(l).Counter(s).Inc()
// without guarding.
type ChildSet struct {
	prefix string
	cap    int

	mu       sync.Mutex
	children map[string]*childEntry
	lru      *list.List // Front = most recently used; values are labels
	other    *Child
	evicted  int64 // labels absorbed into the overflow child
}

// childEntry pairs a child with its LRU element so a map hit refreshes
// recency in O(1).
type childEntry struct {
	child *Child
	elem  *list.Element
}

// A Child is one label's metric family: counters and histograms whose
// full names are prefix + label + "." + suffix. A nil Child (from a nil
// set) hands out nil no-op handles.
type Child struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
}

func newChild() *Child {
	return &Child{counters: make(map[string]*Counter), hists: make(map[string]*Histogram)}
}

// ChildSet returns the child set registered under prefix, creating it
// with the given live-label capacity on first use (<= 0 means
// DefaultChildSetCap; later calls reuse the first creation's capacity,
// mirroring Histogram bounds). A nil registry returns a nil set.
func (r *Registry) ChildSet(prefix string, capacity int) *ChildSet {
	if r == nil {
		return nil
	}
	if capacity <= 0 {
		capacity = DefaultChildSetCap
	}
	r.csMu.Lock()
	defer r.csMu.Unlock()
	cs := r.childSets[prefix]
	if cs == nil {
		cs = &ChildSet{
			prefix:   prefix,
			cap:      capacity,
			children: make(map[string]*childEntry),
			lru:      list.New(),
			other:    newChild(),
		}
		r.childSets[prefix] = cs
	}
	return cs
}

// Child returns the metric family for label, creating it on first use.
// The label is sanitized into a metric-name segment. When the set is at
// capacity, the least-recently-used label is absorbed into the overflow
// child to make room, so the live index never exceeds cap entries; the
// reserved OverflowLabel addresses the overflow child directly.
func (cs *ChildSet) Child(label string) *Child {
	if cs == nil {
		return nil
	}
	label = sanitizeLabel(label)
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if label == OverflowLabel {
		return cs.other
	}
	if e, ok := cs.children[label]; ok {
		cs.lru.MoveToFront(e.elem)
		return e.child
	}
	if len(cs.children) >= cs.cap {
		back := cs.lru.Back()
		old := back.Value.(string)
		cs.other.absorb(cs.children[old].child)
		delete(cs.children, old)
		cs.lru.Remove(back)
		cs.evicted++
	}
	c := newChild()
	cs.children[label] = &childEntry{child: c, elem: cs.lru.PushFront(label)}
	return c
}

// Labels reports the live label count (excluding the overflow child)
// and how many labels have been evicted into it.
func (cs *ChildSet) Labels() (live int, evicted int64) {
	if cs == nil {
		return 0, 0
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return len(cs.children), cs.evicted
}

// Counter returns the child's counter for suffix, creating it on first
// use. Nil-safe.
func (c *Child) Counter(suffix string) *Counter {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ctr := c.counters[suffix]
	if ctr == nil {
		ctr = &Counter{}
		c.counters[suffix] = ctr
	}
	return ctr
}

// Histogram returns the child's histogram for suffix, creating it on
// first use with the given bounds (later calls reuse the first
// creation's bounds). Nil-safe.
func (c *Child) Histogram(suffix string, bounds []int64) *Histogram {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.hists[suffix]
	if h == nil {
		h = newHistogram(bounds)
		c.hists[suffix] = h
	}
	return h
}

// absorb folds src's counts into c — the eviction path. Histograms
// merge bucket-by-bucket when the bounds agree (they always do for one
// suffix created through one call site); on a mismatch the counts fold
// into the receiver's +Inf bucket rather than being dropped. src's
// state is copied out under its lock before the receiver's handles are
// touched, so two Child locks are never held at once.
func (c *Child) absorb(src *Child) {
	src.mu.Lock()
	counters := make(map[string]int64, len(src.counters))
	for sfx, ctr := range src.counters {
		counters[sfx] = ctr.Value()
	}
	hists := make(map[string]*Histogram, len(src.hists))
	for sfx, h := range src.hists {
		hists[sfx] = h
	}
	src.mu.Unlock()
	for sfx, v := range counters {
		c.Counter(sfx).Add(v)
	}
	for sfx, h := range hists {
		c.Histogram(sfx, h.bounds).merge(h)
	}
}

// snapshotInto folds every child's metrics into the flat snapshot maps
// under prefix+label+"."+suffix names, plus the set's own meta-series:
// <prefix>labels (live label gauge) and <prefix>evicted (absorption
// counter). Called from Registry.Snapshot with csMu held.
func (cs *ChildSet) snapshotInto(snap *Snapshot) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	fold := func(label string, c *Child) {
		c.mu.Lock()
		defer c.mu.Unlock()
		base := cs.prefix + label + "."
		for sfx, ctr := range c.counters {
			snap.Counters[base+sfx] = ctr.Value()
		}
		for sfx, h := range c.hists {
			snap.Histograms[base+sfx] = h.summary()
		}
	}
	for label, e := range cs.children {
		fold(label, e.child)
	}
	fold(OverflowLabel, cs.other)
	snap.Gauges[cs.prefix+"labels"] = int64(len(cs.children))
	if cs.evicted > 0 {
		snap.Counters[cs.prefix+"evicted"] = cs.evicted
	}
}

// sanitizeLabel maps an arbitrary client-supplied label (tenant name)
// onto a metric-name segment: lowercase [a-z0-9_], non-empty, bounded
// length. Distinct labels can collide after sanitization; they then
// share a series, which is the documented trade for a bounded index.
func sanitizeLabel(label string) string {
	if label == "" {
		return "_"
	}
	b := make([]byte, 0, min(len(label), maxLabelLen))
	for i := 0; i < len(label) && len(b) < maxLabelLen; i++ {
		c := label[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_':
			b = append(b, c)
		case c >= 'A' && c <= 'Z':
			b = append(b, c-'A'+'a')
		default:
			b = append(b, '_')
		}
	}
	return string(b)
}
