package obs

import (
	"context"
	"sync"
	"testing"
)

// Concurrent counter/gauge/histogram updates must be race-clean (this
// file runs under -race in the tier-1 gate) and lose no updates.
func TestMetricsConcurrent(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 8
	const perG = 10000

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Handles are fetched inside the goroutine so GetOrCreate
			// races are exercised too.
			c := reg.Counter("ops_total")
			gauge := reg.Gauge("inflight")
			h := reg.Histogram("latency_ns", DurationBuckets())
			for i := 0; i < perG; i++ {
				c.Inc()
				gauge.Add(1)
				gauge.Add(-1)
				h.Observe(int64(i%4) * 500_000_000) // 0, 0.5s, 1s, 1.5s
			}
		}(g)
	}
	wg.Wait()

	snap := reg.Snapshot()
	if got := snap.Counters["ops_total"]; got != goroutines*perG {
		t.Errorf("ops_total = %d, want %d", got, goroutines*perG)
	}
	if got := snap.Gauges["inflight"]; got != 0 {
		t.Errorf("inflight = %d, want 0", got)
	}
	h := snap.Histograms["latency_ns"]
	if h.Count != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", h.Count, goroutines*perG)
	}
	var bucketSum int64
	for _, b := range h.Buckets {
		bucketSum += b.Count
	}
	if bucketSum != h.Count {
		t.Errorf("bucket counts sum to %d, want %d", bucketSum, h.Count)
	}
}

// Histogram bucketing: values at, below, and above the bounds land in
// the documented buckets (inclusive upper bound, implicit +Inf tail).
func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", []int64{10, 100})
	for _, v := range []int64{0, 10, 11, 100, 101, 1 << 40} {
		h.Observe(v)
	}
	s := reg.Snapshot().Histograms["h"]
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	want := map[int64]int64{10: 2, 100: 2} // plus +Inf: 2
	var infCount int64
	for _, b := range s.Buckets {
		if b.Inf {
			infCount = b.Count
			continue
		}
		if b.Count != want[b.LE] {
			t.Errorf("bucket le=%d count = %d, want %d", b.LE, b.Count, want[b.LE])
		}
	}
	if infCount != 2 {
		t.Errorf("+Inf bucket count = %d, want 2", infCount)
	}
	wantSum := int64(0 + 10 + 11 + 100 + 101 + 1<<40)
	if s.Sum != wantSum {
		t.Errorf("sum = %d, want %d", s.Sum, wantSum)
	}
}

// Every instrumentation entry point must be a no-op on nil receivers —
// that is the contract that keeps the disabled-registry hot path free.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	reg.Counter("c").Add(5)
	reg.Counter("c").Inc()
	reg.Gauge("g").Set(1)
	reg.Gauge("g").Add(-1)
	reg.Histogram("h", DurationBuckets()).Observe(7)
	_, sp := reg.StartSpan(context.Background(), "stage")
	sp.End()
	_, sp = reg.StartSpan(nil, "stage")
	sp.End()
	if got := reg.Counter("c").Value(); got != 0 {
		t.Errorf("nil counter value = %d, want 0", got)
	}
	if got := reg.Gauge("g").Value(); got != 0 {
		t.Errorf("nil gauge value = %d, want 0", got)
	}
	snap := reg.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 || len(snap.Spans) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", snap)
	}
	var r *Reporter
	r.Printf("dropped %d", 1)
	r.Println("dropped")
}

// The global enable switch: Enabled is nil until Enable installs a
// registry, and instrumented call chains work in both states.
func TestEnableDisable(t *testing.T) {
	if Enabled() != nil {
		t.Fatal("registry enabled at test start")
	}
	Enabled().Counter("x").Inc() // must not panic while disabled

	reg := NewRegistry()
	Enable(reg)
	defer Enable(nil)
	Enabled().Counter("x").Add(2)
	if got := reg.Counter("x").Value(); got != 2 {
		t.Errorf("counter via Enabled() = %d, want 2", got)
	}
	Enable(nil)
	if Enabled() != nil {
		t.Error("Enable(nil) did not disable the registry")
	}
}

// Spans record in completion order and measure non-negative durations.
func TestSpans(t *testing.T) {
	reg := NewRegistry()
	_, s1 := reg.StartSpan(context.Background(), "profile")
	s1.End()
	_, s2 := reg.StartSpan(context.Background(), "sweep")
	s2.End()
	spans := reg.Snapshot().Spans
	if len(spans) != 2 || spans[0].Name != "profile" || spans[1].Name != "sweep" {
		t.Fatalf("spans = %+v, want [profile sweep]", spans)
	}
	for _, s := range spans {
		if s.WallNS < 0 || s.CPUNS < 0 {
			t.Errorf("span %s has negative duration: %+v", s.Name, s)
		}
	}
}
