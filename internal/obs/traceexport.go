package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// This file exports TraceEvents in the Chrome trace_event JSON format,
// which Perfetto (https://ui.perfetto.dev) and chrome://tracing load
// directly. Each completed span becomes one "X" (complete) event:
// ts/dur in microseconds, pid fixed at 1, tid = the span's lane, and
// the span/parent IDs carried in args so the hierarchy survives even
// across lanes. Lane rows are named with "thread_name" metadata events
// the first time each lane appears.
//
// The writer streams: events are appended to a dot-prefixed
// os.CreateTemp scratch file as they end and the file is published by
// sync+rename on Close — the same commit protocol as the -cpuprofile /
// -trace streams in profiles.go, and exempt from the atomicwrite
// analyzer by construction (CreateTemp is scratch; only a fully synced
// file ever appears under the final name).

// tracePID is the fixed process ID stamped on every exported event;
// the trace models one process with one row ("thread") per lane.
const tracePID = 1

// A TraceWriter is an in-progress trace-events file. Create with
// StartTraceEvents, attach to a Tracer via NewTracer, commit with
// Close (usually through Tracer.Close).
type TraceWriter struct {
	mu        sync.Mutex
	sf        *streamedFile
	bw        *bufio.Writer
	wrote     bool
	err       error
	seenLanes map[int64]bool
	closeOnce sync.Once
	closeErr  error
}

// StartTraceEvents opens a streamed Chrome trace_event file at path.
// Events emitted to the writer accumulate in a temp file; Close
// commits it atomically under the final name.
func StartTraceEvents(path string) (*TraceWriter, error) {
	sf, err := newStreamedFile(path)
	if err != nil {
		return nil, err
	}
	w := &TraceWriter{
		sf:        sf,
		bw:        bufio.NewWriterSize(sf.tmp, 1<<16),
		seenLanes: make(map[int64]bool),
	}
	if _, err := w.bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		sf.abort()
		return nil, fmt.Errorf("obs: %w", err)
	}
	Logger().Info("trace events streaming", "path", path)
	return w, nil
}

// chromeEvent is the trace_event wire form of one span. ts and dur are
// microseconds; fractional microseconds keep full nanosecond precision.
type chromeEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat,omitempty"`
	Ph   string           `json:"ph"`
	TS   float64          `json:"ts"`
	Dur  float64          `json:"dur,omitempty"`
	PID  int              `json:"pid"`
	TID  int64            `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

// laneName is the metadata payload naming a lane's row in the viewer.
type laneMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	TID  int64             `json:"tid"`
	Args map[string]string `json:"args"`
}

// emit appends one completed span. Errors are sticky: the first write
// failure is kept and reported by Close, later emits are dropped.
func (w *TraceWriter) emit(ev TraceEvent) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	if !w.seenLanes[ev.Lane] {
		w.seenLanes[ev.Lane] = true
		name := "main"
		if ev.Lane != 0 {
			name = fmt.Sprintf("lane-%d", ev.Lane)
		}
		w.writeJSON(laneMeta{
			Name: "thread_name",
			Ph:   "M",
			PID:  tracePID,
			TID:  ev.Lane,
			Args: map[string]string{"name": name},
		})
	}
	// Copy the args: the span's map is shared with the in-memory buffer,
	// which must not see the exporter's id/parent additions.
	args := make(map[string]int64, len(ev.Args)+2)
	for k, v := range ev.Args {
		args[k] = v
	}
	args["id"] = ev.ID
	if ev.Parent != 0 {
		args["parent"] = ev.Parent
	}
	w.writeJSON(chromeEvent{
		Name: ev.Name,
		Cat:  ev.Cat,
		Ph:   "X",
		TS:   float64(ev.StartNS) / 1e3,
		Dur:  float64(ev.DurNS) / 1e3,
		PID:  tracePID,
		TID:  ev.Lane,
		Args: args,
	})
}

// writeJSON appends one element to the traceEvents array. Callers hold
// w.mu and have checked w.err.
func (w *TraceWriter) writeJSON(v any) {
	data, err := json.Marshal(v)
	if err != nil {
		w.err = fmt.Errorf("obs: %w", err)
		return
	}
	if w.wrote {
		if err := w.bw.WriteByte(','); err != nil {
			w.err = fmt.Errorf("obs: %w", err)
			return
		}
	}
	if _, err := w.bw.Write(data); err != nil {
		w.err = fmt.Errorf("obs: %w", err)
		return
	}
	w.wrote = true
}

// Close terminates the JSON document, flushes, and commits the file
// atomically (sync+rename). Idempotent; returns the first error seen
// anywhere in the stream.
func (w *TraceWriter) Close() error {
	if w == nil {
		return nil
	}
	w.closeOnce.Do(func() {
		w.mu.Lock()
		defer w.mu.Unlock()
		if w.err != nil {
			w.sf.abort()
			w.closeErr = w.err
			return
		}
		if _, err := w.bw.WriteString("]}\n"); err != nil {
			w.sf.abort()
			w.closeErr = fmt.Errorf("obs: %w", err)
			return
		}
		if err := w.bw.Flush(); err != nil {
			w.sf.abort()
			w.closeErr = fmt.Errorf("obs: %w", err)
			return
		}
		w.closeErr = w.sf.commit()
	})
	return w.closeErr
}

// ChromeTraceJSON renders the tracer's buffered events as a complete
// Chrome trace_event document (the same shape the streamed writer
// produces), for tests and ad-hoc export of an in-memory tracer.
func (t *Tracer) ChromeTraceJSON() ([]byte, error) {
	events := t.Events()
	doc := struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []any  `json:"traceEvents"`
	}{DisplayTimeUnit: "ms"}
	lanes := make(map[int64]bool)
	var laneOrder []int64
	for _, ev := range events {
		if !lanes[ev.Lane] {
			lanes[ev.Lane] = true
			laneOrder = append(laneOrder, ev.Lane)
		}
	}
	sort.Slice(laneOrder, func(i, j int) bool { return laneOrder[i] < laneOrder[j] })
	for _, lane := range laneOrder {
		name := "main"
		if lane != 0 {
			name = fmt.Sprintf("lane-%d", lane)
		}
		doc.TraceEvents = append(doc.TraceEvents, laneMeta{
			Name: "thread_name", Ph: "M", PID: tracePID, TID: lane,
			Args: map[string]string{"name": name},
		})
	}
	for _, ev := range events {
		args := make(map[string]int64, len(ev.Args)+2)
		for k, v := range ev.Args {
			args[k] = v
		}
		args["id"] = ev.ID
		if ev.Parent != 0 {
			args["parent"] = ev.Parent
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: ev.Name, Cat: ev.Cat, Ph: "X",
			TS: float64(ev.StartNS) / 1e3, Dur: float64(ev.DurNS) / 1e3,
			PID: tracePID, TID: ev.Lane, Args: args,
		})
	}
	return json.Marshal(doc)
}
