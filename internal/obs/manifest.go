package obs

import (
	"encoding/json"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"partitionshare/internal/atomicio"
)

// ManifestVersion is the current run-manifest schema version. Readers
// (the CI smoke checker, downstream tooling) reject other versions
// rather than guessing.
const ManifestVersion = 1

// ManifestMeta is the run's circumstantial record: build/version
// identity, host shape, and timing. Everything here is allowed to vary
// between runs — the deterministic portion of a manifest deliberately
// excludes it (see Canonical).
type ManifestMeta struct {
	Version   string `json:"version"` // git-describe-style build id
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	Started   string `json:"started"` // RFC 3339
	WallNS    int64  `json:"wall_ns"`
	CPUNS     int64  `json:"cpu_ns"`
}

// A Manifest is the durable record of one pipeline run: what was asked
// for (Config), what build ran it (Meta), what the stages cost
// (Stages), and what the pipeline actually did (Counters, Gauges,
// Histograms — groups completed/failed/resumed, DP cells evaluated,
// cache-sim accesses, per-group latency distribution). It is written
// through internal/atomicio, so a crash mid-flush never leaves a torn
// manifest.
type Manifest struct {
	ManifestVersion int            `json:"manifest_version"`
	Tool            string         `json:"tool"`
	Meta            ManifestMeta   `json:"meta"`
	Config          map[string]any `json:"config"`
	Stages          []SpanRecord   `json:"stages,omitempty"`

	Counters   map[string]int64            `json:"counters,omitempty"`
	Gauges     map[string]int64            `json:"gauges,omitempty"`
	Histograms map[string]HistogramSummary `json:"histograms,omitempty"`

	// TimeSeries holds the metrics sampler's per-series min/max/rate
	// reductions when a run sampled history (-metrics-interval);
	// commands fold it in via WithTimeSeries before writing.
	TimeSeries map[string]SeriesSummary `json:"time_series,omitempty"`
}

// A ManifestBuilder accumulates a run's identity from command startup
// to exit. The zero value is unusable; use NewManifest.
type ManifestBuilder struct {
	tool    string
	config  map[string]any
	started time.Time
	cpu0    time.Duration
}

// NewManifest starts a manifest for one command invocation. config is
// the flag/geometry record; it should contain only deterministic values
// (no times, no absolute paths that vary per run) so the manifest's
// comparable portion stays stable.
func NewManifest(tool string, config map[string]any) *ManifestBuilder {
	return &ManifestBuilder{
		tool:    tool,
		config:  config,
		started: time.Now(),
		cpu0:    processCPUTime(),
	}
}

// Build freezes the manifest from the registry's current state. A nil
// registry yields a manifest with empty metric sections.
func (b *ManifestBuilder) Build(reg *Registry) *Manifest {
	snap := reg.Snapshot()
	return &Manifest{
		ManifestVersion: ManifestVersion,
		Tool:            b.tool,
		Meta: ManifestMeta{
			Version:   BuildVersion(),
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			CPUs:      runtime.NumCPU(),
			Started:   b.started.UTC().Format(time.RFC3339),
			WallNS:    time.Since(b.started).Nanoseconds(),
			CPUNS:     (processCPUTime() - b.cpu0).Nanoseconds(),
		},
		Config:     b.config,
		Stages:     snap.Spans,
		Counters:   snap.Counters,
		Gauges:     snap.Gauges,
		Histograms: snap.Histograms,
	}
}

// WithTimeSeries folds a sampler's summaries into the manifest and
// returns it for chaining. A nil sampler leaves the manifest unchanged,
// so commands call this unconditionally.
func (m *Manifest) WithTimeSeries(s *Sampler) *Manifest {
	if sums := s.Summaries(); len(sums) > 0 {
		m.TimeSeries = sums
	}
	return m
}

// Write flushes the manifest to path atomically (write-temp+fsync+
// rename via internal/atomicio) as indented JSON. Map keys marshal
// sorted, so byte-level output is a function of the manifest's values.
func (m *Manifest) Write(path string) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
}

// CanonicalManifest is the deterministic portion of a manifest: given a
// fixed config and workload, two runs produce byte-identical canonical
// forms. Timing is reduced to structure — stage names in completion
// order, histogram observation counts — and Meta is dropped entirely.
type CanonicalManifest struct {
	ManifestVersion int              `json:"manifest_version"`
	Tool            string           `json:"tool"`
	Config          map[string]any   `json:"config"`
	StageNames      []string         `json:"stage_names,omitempty"`
	Counters        map[string]int64 `json:"counters,omitempty"`
	Gauges          map[string]int64 `json:"gauges,omitempty"`
	HistogramCounts map[string]int64 `json:"histogram_counts,omitempty"`

	// TimeSeriesNames is the sorted set of sampled series — which metrics
	// the sampler observed is deterministic even though their sampled
	// values (timing-dependent) are not.
	TimeSeriesNames []string `json:"time_series_names,omitempty"`
}

// Canonical projects the manifest onto its deterministic portion.
// Golden tests compare CanonicalJSON across runs; nothing in the result
// depends on wall-clock, CPU time, host, or build stamps.
func (m *Manifest) Canonical() CanonicalManifest {
	c := CanonicalManifest{
		ManifestVersion: m.ManifestVersion,
		Tool:            m.Tool,
		Config:          m.Config,
		Counters:        m.Counters,
		Gauges:          m.Gauges,
	}
	for _, s := range m.Stages {
		c.StageNames = append(c.StageNames, s.Name)
	}
	if len(m.Histograms) > 0 {
		c.HistogramCounts = make(map[string]int64, len(m.Histograms))
		for name, h := range m.Histograms {
			c.HistogramCounts[name] = h.Count
		}
	}
	for name := range m.TimeSeries {
		c.TimeSeriesNames = append(c.TimeSeriesNames, name)
	}
	sort.Strings(c.TimeSeriesNames)
	return c
}

// CanonicalJSON marshals the deterministic portion with stable key
// order (encoding/json sorts map keys).
func (m *Manifest) CanonicalJSON() ([]byte, error) {
	return json.MarshalIndent(m.Canonical(), "", "  ")
}

// BuildVersion returns a git-describe-style identifier for the running
// binary, synthesized from the module build info: the short VCS
// revision, a "-dirty" suffix when the working tree was modified, and
// the commit date. Binaries built outside a VCS checkout (go run from a
// tarball, test binaries) report "devel".
func BuildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	var rev, at string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.time":
			at = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			return v
		}
		return "devel"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	out := rev
	if dirty {
		out += "-dirty"
	}
	if at != "" {
		out += " (" + at + ")"
	}
	return out
}
