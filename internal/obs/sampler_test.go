package obs

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// The sampler must record history while running and always take a final
// sample at Stop, so even sub-interval runs capture their end state.
func TestSamplerHistory(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("work_total").Add(3)
	s := StartSampler(context.Background(), reg, time.Millisecond, 16)
	if s == nil {
		t.Fatal("StartSampler returned nil for a valid configuration")
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(s.History()) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	reg.Counter("work_total").Add(4)
	s.Stop()
	s.Stop() // idempotent

	hist := s.History()
	if len(hist) == 0 {
		t.Fatal("no samples recorded")
	}
	last := hist[len(hist)-1]
	if last.Counters["work_total"] != 7 {
		t.Errorf("final sample work_total = %d, want 7 (Stop must take a last sample)",
			last.Counters["work_total"])
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].AtNS < hist[i-1].AtNS {
			t.Fatal("history not chronological")
		}
	}
	if s.Interval() != time.Millisecond {
		t.Errorf("Interval = %v, want 1ms", s.Interval())
	}
}

// The ring buffer bounds retained history to its capacity, keeping the
// newest window.
func TestSamplerRingBound(t *testing.T) {
	reg := NewRegistry()
	s := StartSampler(context.Background(), reg, 100*time.Microsecond, 4)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		n := s.n
		s.mu.Unlock()
		if n >= 4 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	hist := s.History()
	if len(hist) != 4 {
		t.Fatalf("retained samples = %d, want capacity 4", len(hist))
	}
}

// Stopping the sampler (by Stop or context cancel) must release its
// goroutine — commands run it for the whole process lifetime, tests
// cannot.
func TestSamplerNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	reg := NewRegistry()
	s := StartSampler(context.Background(), reg, time.Millisecond, 8)
	s.Stop()
	waitNoLeak(t, before)

	before = runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	s2 := StartSampler(ctx, reg, time.Millisecond, 8)
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case <-s2.done:
			deadline = time.Time{}
		default:
			time.Sleep(time.Millisecond)
		}
		if deadline.IsZero() {
			break
		}
	}
	s2.Stop() // Stop after cancel is still safe
	waitNoLeak(t, before)
	if len(s2.History()) == 0 {
		t.Error("context cancel did not take a final sample")
	}
}

// Disabled configurations return nil, and every method on a nil sampler
// is inert — commands pass the (possibly nil) handle unconditionally.
func TestSamplerNil(t *testing.T) {
	if s := StartSampler(context.Background(), nil, time.Second, 8); s != nil {
		t.Error("nil registry must disable the sampler")
	}
	if s := StartSampler(context.Background(), NewRegistry(), 0, 8); s != nil {
		t.Error("zero interval must disable the sampler")
	}
	var s *Sampler
	s.Stop()
	if s.History() != nil || s.Interval() != 0 || s.Summaries() != nil {
		t.Error("nil sampler methods are not inert")
	}
	if ActiveSampler() != nil {
		t.Fatal("sampler active at test start")
	}
	EnableSampler(s)
	if ActiveSampler() != nil {
		t.Error("EnableSampler(nil) installed something")
	}
}

// Per-tenant child-set series fold into registry snapshots flat, so the
// sampler's history points carry them like any static counter — and
// their cardinality in each point is capped by the child set's LRU
// bound, keeping the ring's per-point size bounded too.
func TestSamplerHistoryIncludesChildSeries(t *testing.T) {
	reg := NewRegistry()
	cs := reg.ChildSet("svc.tenant.", 4)
	cs.Child("acme").Counter("requests").Add(5)
	s := StartSampler(context.Background(), reg, time.Millisecond, 16)
	deadline := time.Now().Add(5 * time.Second)
	for len(s.History()) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	hist := s.History()
	if len(hist) == 0 {
		t.Fatal("no samples recorded")
	}
	last := hist[len(hist)-1]
	if last.Counters["svc.tenant.acme.requests"] != 5 {
		t.Fatalf("final sample missing per-tenant series: %v", last.Counters)
	}
	if last.Gauges["svc.tenant.labels"] != 1 {
		t.Fatalf("final sample missing child-set label gauge: %v", last.Gauges)
	}
}

// Summaries reduce the retained window to per-series min/max/rate, with
// the name set from the registry (deterministic) rather than the samples.
func TestSamplerSummaries(t *testing.T) {
	reg := NewRegistry()
	ctr := reg.Counter("jobs_total")
	reg.Gauge("depth")
	s := StartSampler(context.Background(), reg, time.Millisecond, 64)
	ctr.Add(10)
	deadline := time.Now().Add(5 * time.Second)
	for len(s.History()) < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ctr.Add(10)
	s.Stop()

	sums := s.Summaries()
	js, ok := sums["jobs_total"]
	if !ok {
		t.Fatalf("summaries = %v, missing jobs_total", sums)
	}
	if js.Samples < 2 {
		t.Fatalf("jobs_total samples = %d, want >= 2", js.Samples)
	}
	if js.Min < 0 || js.Max > 20 || js.Min > js.Max {
		t.Errorf("jobs_total min/max = %d/%d, want within [0, 20]", js.Min, js.Max)
	}
	if js.Max != 20 {
		t.Errorf("jobs_total max = %d, want 20 (final sample)", js.Max)
	}
	if js.RatePerSec < 0 {
		t.Errorf("jobs_total rate = %v, want >= 0 for a counter", js.RatePerSec)
	}
	if _, ok := sums["depth"]; !ok {
		t.Error("gauge series missing from summaries")
	}
}
