package obs

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

// lockedBuffer lets the test read what concurrent reporters wrote
// without racing the writes themselves.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// Concurrent Printf calls must never interleave mid-line — the whole
// point of routing progress through one serialized reporter. Each
// goroutine writes distinctive full lines; every output line must be
// exactly one of them.
func TestReporterNoInterleaving(t *testing.T) {
	var buf lockedBuffer
	r := NewReporter(&buf)
	const goroutines = 8
	const lines = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < lines; i++ {
				r.Printf("worker=%d line=%d tail=%s\n", g, i, strings.Repeat("x", 40))
			}
		}(g)
	}
	wg.Wait()

	out := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(out) != goroutines*lines {
		t.Fatalf("got %d lines, want %d", len(out), goroutines*lines)
	}
	for _, line := range out {
		var g, i int
		var tail string
		if _, err := fmt.Sscanf(line, "worker=%d line=%d tail=%s", &g, &i, &tail); err != nil ||
			tail != strings.Repeat("x", 40) {
			t.Fatalf("interleaved or corrupt line: %q", line)
		}
	}
}

// The process-wide progress writer is swappable and serialized.
func TestProgressfRedirect(t *testing.T) {
	var buf lockedBuffer
	SetProgressWriter(&buf)
	defer SetProgressWriter(io.Discard)
	Progressf("completed %d/%d groups\n", 3, 10)
	Progressln("done")
	got := buf.String()
	if got != "completed 3/10 groups\ndone\n" {
		t.Errorf("progress output = %q", got)
	}
}

// The slog handler is process-wide and swappable; the level gate is
// shared so SetLogLevel applies without rebuilding handlers.
func TestLoggerSwapAndLevel(t *testing.T) {
	var buf lockedBuffer
	InitLogging(&buf, slog.LevelInfo, false)
	defer SetLogger(nil)

	Logger().Debug("hidden")
	Logger().Info("shown", "k", 1)
	if out := buf.String(); strings.Contains(out, "hidden") || !strings.Contains(out, "shown") {
		t.Errorf("level gating broken: %q", out)
	}

	SetLogLevel(slog.LevelDebug)
	Logger().Debug("now visible")
	if out := buf.String(); !strings.Contains(out, "now visible") {
		t.Errorf("SetLogLevel did not open the debug gate: %q", out)
	}

	var jbuf lockedBuffer
	InitLogging(&jbuf, slog.LevelInfo, true)
	Logger().Info("json line", "key", "value")
	if out := jbuf.String(); !strings.Contains(out, `"msg":"json line"`) {
		t.Errorf("JSON handler output = %q", out)
	}
}

func TestParseLogLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug,
		"info":  slog.LevelInfo,
		"":      slog.LevelInfo,
		"warn":  slog.LevelWarn,
		"error": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLogLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLogLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLogLevel("loud"); err == nil {
		t.Error("ParseLogLevel accepted garbage")
	}
}
