package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file renders a registry snapshot in the Prometheus text
// exposition format (version 0.0.4), the lingua franca of metrics
// scrapers, next to the existing JSON snapshot. The output is a pure
// function of the snapshot with fully deterministic ordering — names
// sorted within each section, buckets in bound order — so a golden
// file can pin the exact byte stream.
//
// Name mapping: the registry's dotted.snake names become underscore
// names (service.plan.requests → service_plan_requests); counters gain
// the conventional _total suffix. The original dotted name is preserved
// in the HELP line, so a dashboard query can be traced back to the
// constant that registered it. Histogram buckets convert from the
// registry's per-bucket counts to Prometheus's cumulative le-labeled
// form; elided empty buckets are harmless there because cumulative
// counts are monotone over any subset of bounds.

// PromContentType is the exposition content type scrapers expect.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the snapshot in Prometheus text format.
func WritePrometheus(w io.Writer, snap Snapshot) error {
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# HELP %s counter %s\n# TYPE %s counter\n%s %d\n",
			pn, name, pn, pn, snap.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s gauge %s\n# TYPE %s gauge\n%s %d\n",
			pn, name, pn, pn, snap.Gauges[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := writePromHistogram(w, name, snap.Histograms[name]); err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, h HistogramSummary) error {
	pn := promName(name)
	if _, err := fmt.Fprintf(w, "# HELP %s histogram %s\n# TYPE %s histogram\n", pn, name, pn); err != nil {
		return err
	}
	// Cumulative buckets in bound order; the summary's buckets are
	// already ascending with +Inf last when present. A +Inf bucket is
	// emitted unconditionally (it must equal _count).
	cum := int64(0)
	for _, b := range h.Buckets {
		if b.Inf {
			break // folded into the unconditional +Inf line below
		}
		cum += b.Count
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, b.LE, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
		pn, h.Count, pn, h.Sum, pn, h.Count); err != nil {
		return err
	}
	return nil
}

// promName maps a registry name onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_:], replacing everything else (dots, mostly)
// with underscores.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
