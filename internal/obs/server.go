package obs

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// publishOnce guards the single expvar registration. expvar's namespace
// is process-global and double-Publish panics, so the registry is
// published exactly once as a Func that reads whatever registry is
// enabled at serve time — tests can start and stop debug servers freely.
var publishOnce sync.Once

// PublishExpvar registers the "partitionshare" expvar export and
// reports whether this call performed the registration. A false return
// is the explicit already-published signal: expvar's namespace is
// process-global, so only the first call in a process registers, and a
// caller standing up a second registry must know its export rides the
// existing Func — which reads whatever registry Enabled() returns at
// serve time, not the registry that was live at publish time. The
// skipped case is also logged at debug level.
func PublishExpvar() bool {
	published := false
	publishOnce.Do(func() {
		published = true
		expvar.Publish("partitionshare", expvar.Func(func() any {
			return Enabled().Snapshot()
		}))
	})
	if !published {
		Logger().Debug("expvar export already published; /debug/vars tracks the currently enabled registry")
	}
	return published
}

// ServePrometheus writes the enabled registry's snapshot in Prometheus
// text exposition format. Shared by the debug server and the daemon's
// API mux, so both listeners expose an identical scrape surface.
func ServePrometheus(w http.ResponseWriter) {
	w.Header().Set("Content-Type", PromContentType)
	// The status line is out after the first write; an error mid-stream
	// means the scraper went away, and there is nothing left to signal.
	_ = WritePrometheus(w, Enabled().Snapshot())
}

// ServeFlightRecorder writes the active flight recorder's snapshot as
// indented JSON (an empty snapshot when recording is disabled). Shared
// by the debug server and the daemon's API mux.
func ServeFlightRecorder(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(ActiveFlightRecorder().Snapshot())
}

// A DebugServer is the optional -debug-addr HTTP listener: it serves
// the standard expvar page (/debug/vars, including the live registry
// snapshot under the "partitionshare" key, plus cmdline and memstats),
// a registry snapshot at /metrics (JSON; Prometheus text at
// /metrics/prom or ?format=prometheus), the request flight recorder at
// /debug/requests, and the full net/http/pprof suite under
// /debug/pprof/. Close is idempotent and waits for the serve goroutine
// to exit, so tests can assert no goroutine leaks.
type DebugServer struct {
	srv    *http.Server
	lis    net.Listener
	done   chan struct{} // closed when the serve goroutine returns
	cancel context.CancelFunc
	once   sync.Once
}

// StartDebugServer listens on addr (e.g. "localhost:6060"; ":0" picks a
// free port) and serves expvar, /metrics, and pprof until Close is
// called or ctx is cancelled. The returned server's Addr reports the
// bound address. An empty addr — the unset flag — returns (nil, nil),
// and every method on a nil *DebugServer is a no-op, so callers pass
// their -debug-addr value through unconditionally. Mounting pprof here,
// on a private mux, keeps the profiling endpoints off
// http.DefaultServeMux.
func StartDebugServer(ctx context.Context, addr string) (*DebugServer, error) {
	if addr == "" {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	PublishExpvar()
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}

	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prometheus" {
			ServePrometheus(w)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(Enabled().Snapshot())
	})
	mux.HandleFunc("/metrics/prom", func(w http.ResponseWriter, _ *http.Request) {
		ServePrometheus(w)
	})
	mux.HandleFunc("/debug/requests", func(w http.ResponseWriter, _ *http.Request) {
		ServeFlightRecorder(w)
	})
	mux.HandleFunc("/metrics/history", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		samp := ActiveSampler()
		hist := samp.History()
		if hist == nil {
			hist = []SeriesPoint{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			IntervalNS int64         `json:"interval_ns"`
			Samples    []SeriesPoint `json:"samples"`
		}{samp.Interval().Nanoseconds(), hist})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	watchCtx, cancel := context.WithCancel(ctx)
	ds := &DebugServer{
		srv:    &http.Server{Handler: mux},
		lis:    lis,
		done:   make(chan struct{}),
		cancel: cancel,
	}
	go func() {
		defer close(ds.done)
		// Serve returns http.ErrServerClosed on Shutdown/Close; any other
		// error means the listener died underneath us — log and carry on,
		// the debug server is never load-bearing.
		if err := ds.srv.Serve(lis); err != nil && !errors.Is(err, http.ErrServerClosed) {
			Logger().Warn("debug server stopped", "addr", lis.Addr().String(), "err", err)
		}
	}()
	go func() {
		<-watchCtx.Done()
		ds.shutdown()
	}()
	Logger().Info("debug server listening",
		"addr", lis.Addr().String(),
		"endpoints", "/debug/vars /metrics /metrics/prom /debug/requests /debug/pprof/")
	return ds, nil
}

// Addr returns the bound listen address (useful with ":0").
func (ds *DebugServer) Addr() string {
	if ds == nil {
		return ""
	}
	return ds.lis.Addr().String()
}

func (ds *DebugServer) shutdown() {
	ds.once.Do(func() {
		// Bounded graceful shutdown: in-flight scrapes get a moment to
		// finish, then the server closes hard.
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := ds.srv.Shutdown(ctx); err != nil {
			ds.srv.Close()
		}
	})
}

// Close stops the server and waits for its goroutines to exit. Safe to
// call multiple times and on a nil receiver.
func (ds *DebugServer) Close() error {
	if ds == nil {
		return nil
	}
	ds.cancel()
	ds.shutdown()
	<-ds.done
	return nil
}
