package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
)

// This file is the request-telemetry pillar's identity layer: a W3C
// trace-context (traceparent) implementation so one request carries one
// trace ID from the client, through admission, the DP solve, and the
// response — and, once tenants shard across daemons (ROADMAP item 1),
// across process boundaries. The format is the Trace Context
// recommendation's single-line header:
//
//	traceparent: 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//	             ^  ^ 16-byte trace-id (32 hex)     ^ 8-byte span-id   ^ flags
//	             version                             (16 hex)
//
// Parsing is strict where it must be (field lengths, hex alphabet,
// all-zero IDs are invalid per the spec) and lenient where the spec
// says to be (unknown future versions are accepted as long as the
// fields we understand are well-formed). A malformed header is never
// propagated: EnsureTraceContext replaces it with a freshly minted
// context, so junk from a client dies at the edge instead of fanning
// out through the trace tree.

// ErrMalformedTraceparent reports a traceparent header that does not
// parse; callers replace the header with a fresh context rather than
// propagating it.
var ErrMalformedTraceparent = errors.New("obs: malformed traceparent")

// A TraceContext is one request's W3C trace identity: the 16-byte trace
// ID shared by every span of the distributed trace, the 8-byte ID of
// the span that produced it (the caller's span on ingest, ours on
// egress), and the trace flags (bit 0: sampled).
type TraceContext struct {
	TraceID [16]byte
	SpanID  [8]byte
	Flags   byte
}

// Valid reports whether the context carries non-zero IDs — the spec
// treats all-zero trace or span IDs as invalid.
func (tc TraceContext) Valid() bool {
	return tc.TraceID != [16]byte{} && tc.SpanID != [8]byte{}
}

// TraceIDString returns the 32-hex-digit trace ID — the value echoed in
// response headers, error envelopes, flight-recorder entries, and
// histogram exemplars.
func (tc TraceContext) TraceIDString() string {
	return hex.EncodeToString(tc.TraceID[:])
}

// Traceparent renders the context as a version-00 traceparent header
// value.
func (tc TraceContext) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-%02x",
		hex.EncodeToString(tc.TraceID[:]), hex.EncodeToString(tc.SpanID[:]), tc.Flags)
}

// ParseTraceparent parses a traceparent header value. It accepts
// version-00 headers and, per the spec's forward-compatibility rule,
// higher versions whose leading fields are well-formed (version "ff" is
// explicitly invalid). Anything else — wrong field lengths, uppercase
// or non-hex digits, all-zero IDs, a version-00 header with trailing
// fields — fails with ErrMalformedTraceparent.
func ParseTraceparent(s string) (TraceContext, error) {
	var tc TraceContext
	parts := strings.Split(s, "-")
	if len(parts) < 4 {
		return tc, fmt.Errorf("%w: %d fields", ErrMalformedTraceparent, len(parts))
	}
	ver, ok := hexField(parts[0], 2)
	if !ok || ver == "ff" {
		return tc, fmt.Errorf("%w: version %q", ErrMalformedTraceparent, parts[0])
	}
	if ver == "00" && len(parts) != 4 {
		return tc, fmt.Errorf("%w: version 00 with %d fields", ErrMalformedTraceparent, len(parts))
	}
	traceID, ok := hexField(parts[1], 32)
	if !ok {
		return tc, fmt.Errorf("%w: trace-id %q", ErrMalformedTraceparent, parts[1])
	}
	spanID, ok := hexField(parts[2], 16)
	if !ok {
		return tc, fmt.Errorf("%w: parent-id %q", ErrMalformedTraceparent, parts[2])
	}
	flags, ok := hexField(parts[3], 2)
	if !ok {
		return tc, fmt.Errorf("%w: flags %q", ErrMalformedTraceparent, parts[3])
	}
	hex.Decode(tc.TraceID[:], []byte(traceID))
	hex.Decode(tc.SpanID[:], []byte(spanID))
	var f [1]byte
	hex.Decode(f[:], []byte(flags))
	tc.Flags = f[0]
	if !tc.Valid() {
		return TraceContext{}, fmt.Errorf("%w: all-zero id", ErrMalformedTraceparent)
	}
	return tc, nil
}

// hexField validates a fixed-width lowercase hex field.
func hexField(s string, width int) (string, bool) {
	if len(s) != width {
		return "", false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", false
		}
	}
	return s, true
}

// NewTraceContext mints a fresh sampled trace context with random IDs.
func NewTraceContext() TraceContext {
	var tc TraceContext
	// crypto/rand.Read never fails on supported platforms (it aborts the
	// process instead); the error return exists for exotic ones, where
	// falling back to a zero ID would break Valid — retry is pointless,
	// so panic loudly like the runtime would.
	if _, err := rand.Read(tc.TraceID[:]); err != nil {
		panic("obs: crypto/rand unavailable: " + err.Error())
	}
	if _, err := rand.Read(tc.SpanID[:]); err != nil {
		panic("obs: crypto/rand unavailable: " + err.Error())
	}
	tc.Flags = 0x01 // sampled
	return tc
}

// EnsureTraceContext ingests an inbound traceparent header: a
// well-formed header keeps its trace ID (continuing the caller's trace)
// with a freshly minted span ID for this process's root span; a missing
// or malformed header yields a brand-new context. fresh reports whether
// a new trace was started (the inbound value, if any, was discarded).
func EnsureTraceContext(header string) (tc TraceContext, fresh bool) {
	if header != "" {
		if in, err := ParseTraceparent(header); err == nil {
			in.SpanID = NewTraceContext().SpanID
			return in, false
		}
	}
	return NewTraceContext(), true
}

// tcKey carries a TraceContext through a context.Context.
type tcKey struct{}

// WithTraceContext attaches the trace context to ctx. A nil ctx starts
// from context.Background, mirroring the tracer's lenience.
func WithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, tcKey{}, tc)
}

// TraceContextFrom returns the trace context carried by ctx, ok=false
// when none is attached (the request is untraced).
func TraceContextFrom(ctx context.Context) (TraceContext, bool) {
	if ctx == nil {
		return TraceContext{}, false
	}
	tc, ok := ctx.Value(tcKey{}).(TraceContext)
	return tc, ok
}

// TraceIDFrom returns the 32-hex trace ID carried by ctx, or "" when
// the request is untraced — the form instrumentation wants for
// exemplars and flight-recorder entries.
func TraceIDFrom(ctx context.Context) string {
	tc, ok := TraceContextFrom(ctx)
	if !ok {
		return ""
	}
	return tc.TraceIDString()
}
