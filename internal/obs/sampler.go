package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the metrics-history pillar: a background Sampler that
// snapshots the registry's counters and gauges on a fixed interval into
// a bounded ring buffer. The history serves over the debug server's
// /metrics/history endpoint, and per-series min/max/rate summaries fold
// into the run manifest (Manifest.TimeSeries) so a finished run records
// not just end-of-run totals but how they evolved.

// DefaultSamplerCapacity is the default ring-buffer size. At the
// default 1 s interval that is ~8.5 minutes of history; longer runs
// keep the newest window.
//
// The ring is the sampler's memory bound: a long-running daemon holds
// at most capacity points regardless of uptime (TestSamplerRingBound
// pins this). Each point's size is itself bounded — it carries the
// registry's counter/gauge maps, whose name set is finite: static
// names are declared constants, and the only dynamic families
// (per-tenant child sets, childset.go) are capped by their LRU bound,
// so per-tenant series appear in /metrics/history without opening an
// unbounded-memory path.
const DefaultSamplerCapacity = 512

// A SeriesPoint is one sampler tick: the offset from the sampler's
// start and the registry's counter/gauge values at that instant.
type SeriesPoint struct {
	AtNS     int64            `json:"at_ns"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Gauges   map[string]int64 `json:"gauges,omitempty"`
}

// A SeriesSummary reduces one metric's sampled history: how many ticks
// observed it, its extremes, and its average rate of change over the
// observed window (per second; for counters this is the throughput, for
// gauges the net drift).
type SeriesSummary struct {
	Samples    int     `json:"samples"`
	Min        int64   `json:"min"`
	Max        int64   `json:"max"`
	RatePerSec float64 `json:"rate_per_sec"`
}

// A Sampler owns one background goroutine snapshotting a registry. The
// zero value is not usable; call StartSampler. All methods on a nil
// *Sampler are no-ops returning zero values, so commands pass their
// (possibly disabled) sampler around unconditionally.
type Sampler struct {
	reg      *Registry
	interval time.Duration
	start    time.Time

	mu   sync.Mutex
	ring []SeriesPoint
	head int // next write position
	n    int // filled entries (<= len(ring))

	stop    chan struct{}
	done    chan struct{} // closed when the sample goroutine exits
	stopped sync.Once
}

// StartSampler begins sampling reg every interval into a ring buffer of
// the given capacity (<= 0 means DefaultSamplerCapacity) and returns
// the running sampler. Sampling stops when ctx is cancelled or Stop is
// called, whichever comes first; both take a final sample before the
// goroutine exits, so even a run shorter than one interval records its
// end state. A nil registry or non-positive interval returns nil — the
// disabled configuration.
func StartSampler(ctx context.Context, reg *Registry, interval time.Duration, capacity int) *Sampler {
	if reg == nil || interval <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if capacity <= 0 {
		capacity = DefaultSamplerCapacity
	}
	s := &Sampler{
		reg:      reg,
		interval: interval,
		start:    time.Now(),
		ring:     make([]SeriesPoint, capacity),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go s.run(ctx)
	Logger().Info("metrics sampler started", "interval", interval, "capacity", capacity)
	return s
}

func (s *Sampler) run(ctx context.Context) {
	defer close(s.done)
	tick := time.NewTicker(s.interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			s.sample()
		case <-ctx.Done():
			s.sample()
			return
		case <-s.stop:
			s.sample()
			return
		}
	}
}

// sample appends one snapshot to the ring.
func (s *Sampler) sample() {
	snap := s.reg.Snapshot()
	pt := SeriesPoint{
		AtNS:     time.Since(s.start).Nanoseconds(),
		Counters: snap.Counters,
		Gauges:   snap.Gauges,
	}
	s.mu.Lock()
	s.ring[s.head] = pt
	s.head = (s.head + 1) % len(s.ring)
	if s.n < len(s.ring) {
		s.n++
	}
	s.mu.Unlock()
}

// Stop ends sampling after one final snapshot and waits for the
// goroutine to exit. Idempotent, safe concurrently and on nil.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.stopped.Do(func() { close(s.stop) })
	<-s.done
}

// History returns the buffered samples in chronological order (oldest
// first). The result is a copy.
func (s *Sampler) History() []SeriesPoint {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SeriesPoint, 0, s.n)
	first := (s.head - s.n + len(s.ring)) % len(s.ring)
	for i := 0; i < s.n; i++ {
		out = append(out, s.ring[(first+i)%len(s.ring)])
	}
	return out
}

// Interval returns the sampling interval (0 on nil).
func (s *Sampler) Interval() time.Duration {
	if s == nil {
		return 0
	}
	return s.interval
}

// Summaries reduces the sampled history to per-series min/max/rate.
// The series name set is taken from the registry's current contents —
// which for a deterministic run is itself deterministic — while the
// values reduce whatever window the ring retained; a series absent
// from every retained sample reports zero samples. Call after Stop (or
// at manifest-build time) for the final-state view.
func (s *Sampler) Summaries() map[string]SeriesSummary {
	if s == nil {
		return nil
	}
	hist := s.History()
	snap := s.reg.Snapshot()
	out := make(map[string]SeriesSummary, len(snap.Counters)+len(snap.Gauges))
	summarize := func(name string, at func(SeriesPoint) (int64, bool)) {
		var sum SeriesSummary
		var firstAt, lastAt int64
		var firstV, lastV int64
		for _, pt := range hist {
			v, ok := at(pt)
			if !ok {
				continue
			}
			if sum.Samples == 0 {
				sum.Min, sum.Max = v, v
				firstAt, firstV = pt.AtNS, v
			}
			if v < sum.Min {
				sum.Min = v
			}
			if v > sum.Max {
				sum.Max = v
			}
			lastAt, lastV = pt.AtNS, v
			sum.Samples++
		}
		if sum.Samples > 1 && lastAt > firstAt {
			sum.RatePerSec = float64(lastV-firstV) / (float64(lastAt-firstAt) / 1e9)
		}
		out[name] = sum
	}
	for name := range snap.Counters {
		n := name
		summarize(n, func(pt SeriesPoint) (int64, bool) { v, ok := pt.Counters[n]; return v, ok })
	}
	for name := range snap.Gauges {
		n := name
		summarize(n, func(pt SeriesPoint) (int64, bool) { v, ok := pt.Gauges[n]; return v, ok })
	}
	return out
}

// activeSampler is the process-wide sampler the debug server's
// /metrics/history endpoint reads, nil when sampling is disabled.
var activeSampler atomic.Pointer[Sampler]

// EnableSampler installs s as the process-global sampler for the debug
// server; EnableSampler(nil) detaches it.
func EnableSampler(s *Sampler) { activeSampler.Store(s) }

// ActiveSampler returns the process-global sampler, or nil.
func ActiveSampler() *Sampler { return activeSampler.Load() }
