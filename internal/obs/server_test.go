package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// get fetches a URL with a keep-alive-free client so the test leaves no
// idle-connection goroutines behind to confuse the leak check.
func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	tr := &http.Transport{DisableKeepAlives: true}
	client := &http.Client{Transport: tr, Timeout: 5 * time.Second}
	defer tr.CloseIdleConnections()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, body
}

// waitNoLeak asserts the goroutine count returns to the baseline.
func waitNoLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, now)
	}
}

// The -debug-addr server must serve expvar (including the live registry
// snapshot), the raw /metrics snapshot, and the pprof index, then shut
// down without leaking its serve/watch goroutines.
func TestDebugServerServesAndShutsDown(t *testing.T) {
	before := runtime.NumGoroutine()

	reg := NewRegistry()
	reg.Counter("experiment_groups_completed_total").Add(7)
	Enable(reg)
	defer Enable(nil)

	ds, err := StartDebugServer(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ds.Addr()

	code, body := get(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Errorf("/debug/vars status = %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Errorf("/debug/vars is not JSON: %v", err)
	} else if _, ok := vars["partitionshare"]; !ok {
		t.Errorf("/debug/vars missing partitionshare registry export; keys: %d", len(vars))
	}

	code, body = get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Errorf("/metrics status = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics is not a Snapshot: %v", err)
	}
	if snap.Counters["experiment_groups_completed_total"] != 7 {
		t.Errorf("/metrics counters = %v, want experiment_groups_completed_total=7", snap.Counters)
	}

	code, body = get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("/debug/pprof/ status = %d, body lacks profile index", code)
	}

	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	waitNoLeak(t, before)
}

// Cancelling the startup context must stop the server and release its
// goroutines — the command wiring relies on this for SIGINT cleanup.
func TestDebugServerContextCancel(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	ds, err := StartDebugServer(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ds.Addr()
	cancel()

	// The listener must actually close: poll until connects fail.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		tr := &http.Transport{DisableKeepAlives: true}
		client := &http.Client{Transport: tr, Timeout: time.Second}
		_, err := client.Get(fmt.Sprintf("http://%s/debug/vars", addr))
		tr.CloseIdleConnections()
		if err != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	ds.Close() // waits for the serve goroutine
	waitNoLeak(t, before)
}

// A nil DebugServer (the not-enabled path in commands) is inert.
func TestDebugServerNil(t *testing.T) {
	ds, err := StartDebugServer(context.Background(), "")
	if err != nil {
		t.Fatalf("empty addr: %v", err)
	}
	if ds != nil {
		t.Fatal("empty addr must not start a server")
	}
	if ds.Addr() != "" {
		t.Error("nil server has an address")
	}
	if err := ds.Close(); err != nil {
		t.Errorf("nil Close = %v", err)
	}
}

// Starting on a bad address reports the error instead of panicking or
// leaking.
func TestDebugServerBadAddr(t *testing.T) {
	before := runtime.NumGoroutine()
	if _, err := StartDebugServer(context.Background(), "256.0.0.1:99999"); err == nil {
		t.Fatal("no error for invalid address")
	}
	waitNoLeak(t, before)
}

// historyResponse mirrors the /metrics/history JSON shape.
type historyResponse struct {
	IntervalNS int64         `json:"interval_ns"`
	Samples    []SeriesPoint `json:"samples"`
}

// /metrics/history serves the active sampler's buffered points, and an
// empty (but valid) document when no sampler is installed.
func TestDebugServerMetricsHistory(t *testing.T) {
	before := runtime.NumGoroutine()
	reg := NewRegistry()
	reg.Counter("jobs_total").Add(5)
	Enable(reg)
	defer Enable(nil)

	ds, err := StartDebugServer(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ds.Addr()

	// No sampler installed: empty history, not an error.
	code, body := get(t, base+"/metrics/history")
	if code != http.StatusOK {
		t.Fatalf("/metrics/history status = %d with no sampler", code)
	}
	var hr historyResponse
	if err := json.Unmarshal(body, &hr); err != nil {
		t.Fatalf("/metrics/history is not JSON: %v", err)
	}
	if hr.IntervalNS != 0 || len(hr.Samples) != 0 {
		t.Errorf("no-sampler history = %+v, want empty", hr)
	}

	samp := StartSampler(context.Background(), reg, time.Millisecond, 16)
	EnableSampler(samp)
	defer EnableSampler(nil)
	deadline := time.Now().Add(5 * time.Second)
	for len(samp.History()) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	code, body = get(t, base+"/metrics/history")
	if code != http.StatusOK {
		t.Fatalf("/metrics/history status = %d", code)
	}
	if err := json.Unmarshal(body, &hr); err != nil {
		t.Fatalf("/metrics/history is not JSON: %v", err)
	}
	if hr.IntervalNS != time.Millisecond.Nanoseconds() {
		t.Errorf("interval_ns = %d, want %d", hr.IntervalNS, time.Millisecond.Nanoseconds())
	}
	if len(hr.Samples) == 0 {
		t.Fatal("history served no samples")
	}
	if hr.Samples[len(hr.Samples)-1].Counters["jobs_total"] != 5 {
		t.Errorf("served sample counters = %v, want jobs_total=5",
			hr.Samples[len(hr.Samples)-1].Counters)
	}

	samp.Stop()
	EnableSampler(nil)
	ds.Close()
	waitNoLeak(t, before)
}

// PublishExpvar registers exactly once per process: whichever call is
// first returns true, and every later call reports the duplicate with an
// explicit false instead of panicking in expvar.
func TestPublishExpvarReportsDuplicate(t *testing.T) {
	// Another test (or a debug server) may have published already, so the
	// first call's result is environment-dependent; the second call right
	// after it must always be the duplicate.
	first := PublishExpvar()
	second := PublishExpvar()
	if second {
		t.Errorf("second PublishExpvar = true, want false (first = %v)", first)
	}
}
