package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestFlightRecorderRings(t *testing.T) {
	fr := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		status := 200
		if i%3 == 0 {
			status = 503
		}
		fr.Record(RequestRecord{
			Route:  fmt.Sprintf("r%d", i),
			Status: status,
			DurNS:  int64(i) * 100,
		})
	}
	snap := fr.Snapshot()
	if snap.Total != 10 {
		t.Fatalf("total = %d, want 10", snap.Total)
	}
	if snap.Errors != 4 { // i = 0, 3, 6, 9
		t.Fatalf("errors = %d, want 4", snap.Errors)
	}
	if len(snap.Recent) != 4 || len(snap.Errored) != 4 || len(snap.Slowest) != 4 {
		t.Fatalf("ring sizes = %d/%d/%d, want 4 each", len(snap.Recent), len(snap.Errored), len(snap.Slowest))
	}
	// Recent is newest-first.
	if snap.Recent[0].Route != "r9" || snap.Recent[3].Route != "r6" {
		t.Fatalf("recent order wrong: %s .. %s", snap.Recent[0].Route, snap.Recent[3].Route)
	}
	// Slowest is descending by duration and capped.
	for i := 1; i < len(snap.Slowest); i++ {
		if snap.Slowest[i].DurNS > snap.Slowest[i-1].DurNS {
			t.Fatalf("slowest not descending at %d", i)
		}
	}
	if snap.Slowest[0].Route != "r9" {
		t.Fatalf("slowest[0] = %s, want r9", snap.Slowest[0].Route)
	}
	// Errored keeps only error-status records.
	for _, rec := range snap.Errored {
		if rec.Status < 400 {
			t.Fatalf("errored ring holds a %d", rec.Status)
		}
	}
}

func TestFlightRecorderSlowestRanking(t *testing.T) {
	fr := NewFlightRecorder(3)
	for _, d := range []int64{50, 10, 90, 30, 70} {
		fr.Record(RequestRecord{DurNS: d})
	}
	snap := fr.Snapshot()
	want := []int64{90, 70, 50}
	if len(snap.Slowest) != len(want) {
		t.Fatalf("slowest len = %d, want %d", len(snap.Slowest), len(want))
	}
	for i, d := range want {
		if snap.Slowest[i].DurNS != d {
			t.Fatalf("slowest[%d] = %d, want %d", i, snap.Slowest[i].DurNS, d)
		}
	}
}

func TestFlightRecorderNilAndGlobal(t *testing.T) {
	var fr *FlightRecorder
	fr.Record(RequestRecord{Status: 500}) // must not panic
	if snap := fr.Snapshot(); snap.Total != 0 {
		t.Fatal("nil recorder reported records")
	}
	if !fr.Start().IsZero() {
		t.Fatal("nil recorder reported a start time")
	}

	prev := ActiveFlightRecorder()
	defer EnableFlightRecorder(prev)
	live := NewFlightRecorder(0)
	EnableFlightRecorder(live)
	if ActiveFlightRecorder() != live {
		t.Fatal("EnableFlightRecorder did not install the recorder")
	}
	ActiveFlightRecorder().Record(RequestRecord{Status: 200})
	if ActiveFlightRecorder().Snapshot().Total != 1 {
		t.Fatal("record through the global handle lost")
	}
	EnableFlightRecorder(nil)
	ActiveFlightRecorder().Record(RequestRecord{Status: 200}) // disabled: no-op
}

func TestFlightRecorderConcurrent(t *testing.T) {
	fr := NewFlightRecorder(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				fr.Record(RequestRecord{Status: 200 + (i%2)*300, DurNS: int64(i)})
			}
		}()
	}
	wg.Wait()
	snap := fr.Snapshot()
	if snap.Total != 1600 {
		t.Fatalf("total = %d, want 1600", snap.Total)
	}
	if len(snap.Recent) != 8 || len(snap.Slowest) != 8 {
		t.Fatalf("rings overflowed their cap: %d/%d", len(snap.Recent), len(snap.Slowest))
	}
}

func TestReqStages(t *testing.T) {
	ctx, rs := WithReqStages(nil)
	if ReqStagesFrom(ctx) != rs {
		t.Fatal("collector not retrievable from context")
	}
	if ReqStagesFrom(nil) != nil {
		t.Fatal("nil context produced a collector")
	}
	rs.Add("admission", 5*time.Millisecond)
	rs.Add("solve", 7*time.Millisecond)
	got := rs.Stages()
	if len(got) != 2 || got[0].Name != "admission" || got[1].DurNS != (7*time.Millisecond).Nanoseconds() {
		t.Fatalf("stages = %+v", got)
	}
	// Nil collector: the instrumented path never branches.
	var nilRS *ReqStages
	nilRS.Add("x", time.Second)
	if nilRS.Stages() != nil {
		t.Fatal("nil collector returned stages")
	}
}
