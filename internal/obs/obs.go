// Package obs is the pipeline's observability layer: structured logging
// (log/slog with a process-wide swappable handler), a metrics registry
// (counters, gauges, fixed-bucket histograms; lock-sharded lookup,
// lock-free updates), stage spans (wall + process-CPU time plus
// runtime/trace regions), a run manifest flushed through
// internal/atomicio, and an optional debug HTTP server exposing the
// registry over expvar next to net/http/pprof.
//
// Everything is standard library only — the verify gate runs in offline
// containers — and everything is nil-safe: a disabled registry (the
// default) turns every instrumentation call in the hot pipeline into a
// nil-check that costs near zero, so library callers and tests never
// see the machinery unless a command enables it.
//
// The split of responsibilities:
//
//   - Logger()/SetLogger: diagnostics, on stderr by default. Machine
//     events (checkpoint flushes, server lifecycle) log here.
//   - Progressf/SetProgressWriter: human-facing progress and report
//     output, on stdout by default, serialized by a single mutex so
//     lines from concurrent goroutines never interleave mid-line.
//   - Registry: numbers. Enable() installs a process-global registry
//     that the instrumented packages (partition, reuse, experiment,
//     cachesim, workload) feed; Snapshot() freezes it for export.
//   - Manifest: the durable record of one run — config, version,
//     per-stage wall/CPU time, counters, histogram summaries, sampled
//     time-series reductions — written atomically so a crash never
//     leaves a torn manifest.
//   - Tracer (tracer.go): hierarchical trace events — fine-grained
//     parent/child spans with goroutine lanes, exported as Chrome
//     trace_event JSON (-trace-events) for Perfetto. EnableTracer
//     installs the process-global tracer the same way Enable installs
//     the registry.
//   - Sampler (sampler.go): background metrics-history sampling into a
//     bounded ring, served at /metrics/history and reduced into the
//     manifest. EnableSampler installs the process-global sampler.
package obs

import "sync/atomic"

// global is the process-wide registry consulted by the instrumented
// pipeline packages. It is nil until a command calls Enable, which is
// what keeps library use and tests untouched: every method on a nil
// *Registry (and on the nil metric handles it returns) is a no-op.
var global atomic.Pointer[Registry]

// Enable installs r as the process-global registry. Enable(nil)
// disables instrumentation again. Safe for concurrent use, though the
// intended pattern is a single Enable at command startup.
func Enable(r *Registry) { global.Store(r) }

// Enabled returns the process-global registry, or nil when
// instrumentation is disabled. Callers chain directly off the result —
// obs.Enabled().Counter("x").Add(n) — because every step is nil-safe.
func Enabled() *Registry { return global.Load() }
