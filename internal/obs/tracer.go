package obs

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the second-generation span layer: a hierarchical,
// time-resolved trace collector. Where the Registry's stage spans
// (span.go) produce the manifest's flat per-stage totals, the Tracer
// records every instrumented operation — per-group DP solves, DP pool
// layers, reuse shards, cache simulations, workload profiling passes,
// checkpoint flushes — as a TraceEvent carrying a span ID, its parent's
// ID (threaded through context.Context), a lane (worker/goroutine row),
// and wall-clock start/duration relative to the tracer's epoch. The
// whole set exports as Chrome trace_event JSON (traceexport.go) that
// loads directly in Perfetto or chrome://tracing.
//
// Like the Registry, the Tracer is nil-safe end to end: with no tracer
// enabled, StartTraceSpan is one atomic load plus a nil check and every
// span method is a no-op, so the instrumented hot paths cost nothing in
// the default configuration (the benchsnap ObsOverhead gate covers
// this).

// numTraceShards is the number of lock shards in the tracer's event
// buffer. Completed spans append under one shard mutex chosen by span
// ID, so concurrent sweep workers rarely contend.
const numTraceShards = 16

// DefaultTraceEventCap bounds the tracer's in-memory event buffer. A
// full -small experiments run records a few tens of thousands of
// events (~100 B each); the cap exists so a pathological caller cannot
// grow the buffer without bound. Events past the cap still stream to
// the -trace-events sink (which is bounded by disk, not memory) and
// are counted in Dropped.
const DefaultTraceEventCap = 1 << 18

// A TraceEvent is one completed span: an operation with identity,
// hierarchy, placement, and timing. StartNS is the offset from the
// tracer's epoch, so events are orderable without wall-clock stamps.
type TraceEvent struct {
	ID      int64            `json:"id"`
	Parent  int64            `json:"parent,omitempty"`
	Name    string           `json:"name"`
	Cat     string           `json:"cat,omitempty"`
	Lane    int64            `json:"lane"`
	StartNS int64            `json:"start_ns"`
	DurNS   int64            `json:"dur_ns"`
	Args    map[string]int64 `json:"args,omitempty"`
}

type traceShard struct {
	mu     sync.Mutex
	events []TraceEvent
}

// A Tracer collects TraceEvents. The zero value is not usable; call
// NewTracer. All methods are safe for concurrent use, and all methods
// on a nil *Tracer (and the nil spans it hands out) are no-ops.
type Tracer struct {
	epoch   time.Time
	nextID  atomic.Int64
	count   atomic.Int64
	dropped atomic.Int64
	cap     int64
	sink    *TraceWriter
	shards  [numTraceShards]traceShard
}

// NewTracer returns an empty tracer whose in-memory buffer holds at
// most capEvents events (<= 0 means DefaultTraceEventCap). sink, when
// non-nil, receives every completed event as it ends — including those
// past the in-memory cap — and is committed by Close.
func NewTracer(capEvents int, sink *TraceWriter) *Tracer {
	if capEvents <= 0 {
		capEvents = DefaultTraceEventCap
	}
	return &Tracer{epoch: time.Now(), cap: int64(capEvents), sink: sink}
}

// activeTracer is the process-wide tracer, nil unless a command enabled
// -trace-events (or a test installed one). Mirrors the Registry's
// Enable/Enabled pattern.
var activeTracer atomic.Pointer[Tracer]

// EnableTracer installs t as the process-global tracer;
// EnableTracer(nil) disables tracing again.
func EnableTracer(t *Tracer) { activeTracer.Store(t) }

// ActiveTracer returns the process-global tracer, or nil when tracing
// is disabled.
func ActiveTracer() *Tracer { return activeTracer.Load() }

// traceRef is the context payload: the current span's ID (parent for
// children) and the lane assigned to this goroutine's work.
type traceRef struct {
	id   int64
	lane int64
}

type traceRefKey struct{}

// WithTraceLane tags ctx with a lane number: spans started under the
// returned context (and their descendants) render on that row of the
// trace timeline. Lane numbers are caller-chosen labels — sweep workers
// use their worker index, reuse shards their shard index — and need not
// be unique across pipeline phases.
func WithTraceLane(ctx context.Context, lane int64) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	ref, _ := ctx.Value(traceRefKey{}).(traceRef)
	ref.lane = lane
	return context.WithValue(ctx, traceRefKey{}, ref)
}

// TraceParent returns the span ID and lane the given context carries
// (zero values when untraced).
func TraceParent(ctx context.Context) (id, lane int64) {
	if ctx == nil {
		return 0, 0
	}
	ref, _ := ctx.Value(traceRefKey{}).(traceRef)
	return ref.id, ref.lane
}

// A TraceSpan is one in-flight traced operation. End records it. A nil
// span (tracing disabled) is a no-op, so call sites never branch.
type TraceSpan struct {
	tr     *Tracer
	id     int64
	parent int64
	lane   int64
	name   string
	cat    string
	start  time.Time
	args   map[string]int64
}

// StartTraceSpan begins a span on the process-global tracer, parented
// under the span carried by ctx (none = a root span). The returned
// context carries the new span, so operations started under it become
// children. With tracing disabled this is one atomic load plus a nil
// check, and ctx is returned unchanged.
func StartTraceSpan(ctx context.Context, name, cat string) (context.Context, *TraceSpan) {
	t := ActiveTracer()
	if t == nil {
		return ctx, nil
	}
	return t.Start(ctx, name, cat)
}

// Start is StartTraceSpan on an explicit tracer.
func (t *Tracer) Start(ctx context.Context, name, cat string) (context.Context, *TraceSpan) {
	if t == nil {
		return ctx, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ref, _ := ctx.Value(traceRefKey{}).(traceRef)
	s := &TraceSpan{
		tr:     t,
		id:     t.nextID.Add(1),
		parent: ref.id,
		lane:   ref.lane,
		name:   name,
		cat:    cat,
		start:  time.Now(),
	}
	return context.WithValue(ctx, traceRefKey{}, traceRef{id: s.id, lane: ref.lane}), s
}

// Arg attaches a small numeric argument to the span (visible in the
// exported trace's args). Returns the span for chaining. Must not be
// called concurrently with End.
func (s *TraceSpan) Arg(key string, v int64) *TraceSpan {
	if s == nil {
		return nil
	}
	if s.args == nil {
		s.args = make(map[string]int64, 4)
	}
	s.args[key] = v
	return s
}

// End completes the span and records its event: into the tracer's
// sharded in-memory buffer (up to the cap) and, when a sink is
// attached, into the streamed trace-events file.
func (s *TraceSpan) End() {
	if s == nil {
		return
	}
	t := s.tr
	ev := TraceEvent{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		Cat:     s.cat,
		Lane:    s.lane,
		StartNS: s.start.Sub(t.epoch).Nanoseconds(),
		DurNS:   time.Since(s.start).Nanoseconds(),
		Args:    s.args,
	}
	if t.count.Add(1) <= t.cap {
		sh := &t.shards[s.id%numTraceShards]
		sh.mu.Lock()
		sh.events = append(sh.events, ev)
		sh.mu.Unlock()
	} else {
		t.dropped.Add(1)
	}
	if t.sink != nil {
		t.sink.emit(ev)
	}
}

// Events returns every buffered event, sorted by start offset (ties by
// span ID). The result is a copy; the tracer keeps collecting.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	var out []TraceEvent
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		out = append(out, sh.events...)
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartNS != out[j].StartNS {
			return out[i].StartNS < out[j].StartNS
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Dropped reports how many completed spans were discarded from the
// in-memory buffer because the cap was reached (streamed sinks still
// received them).
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Close commits the tracer's streamed sink, if any, and returns its
// error. The in-memory buffer stays readable. Safe on a nil tracer and
// idempotent through the sink's own once-guard.
func (t *Tracer) Close() error {
	if t == nil || t.sink == nil {
		return nil
	}
	return t.sink.Close()
}
