package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync"
	"sync/atomic"
)

// logLevel is the level gate shared by every handler InitLogging
// installs, so SetLogLevel takes effect without rebuilding the logger.
var logLevel slog.LevelVar

// logger is the process-wide structured logger. It starts nil and is
// materialized lazily by Logger so that importing obs never constructs
// handlers in library/test contexts that don't log.
var logger atomic.Pointer[slog.Logger]

// Logger returns the process-wide structured logger (never nil). The
// default is a text handler on stderr at Info level.
func Logger() *slog.Logger {
	if l := logger.Load(); l != nil {
		return l
	}
	l := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: &logLevel}))
	// Racing initializers may both build a default; either is fine.
	logger.CompareAndSwap(nil, l)
	return logger.Load()
}

// SetLogger swaps the process-wide logger. Passing nil restores the
// lazy default.
func SetLogger(l *slog.Logger) { logger.Store(l) }

// SetLogLevel adjusts the level of every handler installed by
// InitLogging (and of the lazy default handler).
func SetLogLevel(l slog.Level) { logLevel.Set(l) }

// InitLogging installs a fresh handler writing to w — JSON when json is
// set, logfmt-style text otherwise — and sets the level gate. Commands
// call this once from flag handling.
func InitLogging(w io.Writer, level slog.Level, json bool) {
	logLevel.Set(level)
	opts := &slog.HandlerOptions{Level: &logLevel}
	if json {
		SetLogger(slog.New(slog.NewJSONHandler(w, opts)))
	} else {
		SetLogger(slog.New(slog.NewTextHandler(w, opts)))
	}
}

// ParseLogLevel maps the conventional flag spellings to a slog.Level.
func ParseLogLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	var l slog.Level
	if err := l.UnmarshalText([]byte(s)); err != nil {
		return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
	}
	return l, nil
}

// A Reporter serializes human-facing output: each Printf formats the
// whole line first and issues exactly one Write under one mutex, so
// progress lines emitted by concurrent goroutines (the sweep workers,
// the checkpoint goroutine, the main loop) can never interleave
// mid-line. A nil Reporter discards output.
type Reporter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewReporter returns a reporter writing to w.
func NewReporter(w io.Writer) *Reporter { return &Reporter{w: w} }

// Printf formats and writes one chunk of output atomically with respect
// to other Reporter calls. Unlike fmt.Printf it never splits a write.
func (r *Reporter) Printf(format string, args ...any) {
	if r == nil {
		return
	}
	msg := fmt.Sprintf(format, args...)
	r.mu.Lock()
	defer r.mu.Unlock()
	io.WriteString(r.w, msg)
}

// Println writes one line atomically.
func (r *Reporter) Println(args ...any) {
	if r == nil {
		return
	}
	msg := fmt.Sprintln(args...)
	r.mu.Lock()
	defer r.mu.Unlock()
	io.WriteString(r.w, msg)
}

// progress is the process-wide reporter used by Progressf. Defaults to
// stdout; swapped atomically so tests can capture output.
var progress atomic.Pointer[Reporter]

func init() { progress.Store(NewReporter(os.Stdout)) }

// SetProgressWriter redirects process-wide progress output.
func SetProgressWriter(w io.Writer) { progress.Store(NewReporter(w)) }

// Progressf writes human-facing progress/report output through the
// single process-wide serialized reporter. It is the replacement for
// ad-hoc fmt.Printf in commands.
func Progressf(format string, args ...any) { progress.Load().Printf(format, args...) }

// Progressln writes one line through the process-wide reporter.
func Progressln(args ...any) { progress.Load().Println(args...) }
