package obs

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// The W3C parser is the trust boundary for client-supplied trace
// identity: anything malformed must be rejected (and, at the ingest
// helper, replaced with a fresh ID) — never crash, never propagate
// junk into the trace tree.
func TestParseTraceparent(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := []struct {
		name string
		in   string
		ok   bool
	}{
		{"valid version 00", valid, true},
		{"valid unsampled", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00", true},
		{"future version extra field", "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", true},
		{"empty", "", false},
		{"garbage", "not-a-traceparent", false},
		{"too few fields", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", false},
		{"version 00 extra field", valid + "-junk", false},
		{"version ff", "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},
		{"version one hex digit", "0-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},
		{"short trace id", "00-4bf92f3577b34da6a3ce929d0e0e473-00f067aa0ba902b7-01", false},
		{"long trace id", "00-4bf92f3577b34da6a3ce929d0e0e47366-00f067aa0ba902b7-01", false},
		{"uppercase trace id", "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", false},
		{"non-hex trace id", "00-4bf92f3577b34da6a3ce929d0e0e473g-00f067aa0ba902b7-01", false},
		{"all-zero trace id", "00-00000000000000000000000000000000-00f067aa0ba902b7-01", false},
		{"all-zero span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", false},
		{"short span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b-01", false},
		{"bad flags width", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-011", false},
		{"non-hex flags", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0x", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseTraceparent(tc.in)
			if tc.ok {
				if err != nil {
					t.Fatalf("ParseTraceparent(%q) = %v, want ok", tc.in, err)
				}
				if !got.Valid() {
					t.Fatalf("parsed context invalid: %+v", got)
				}
				return
			}
			if err == nil {
				t.Fatalf("ParseTraceparent(%q) accepted, want error", tc.in)
			}
			if !errors.Is(err, ErrMalformedTraceparent) {
				t.Fatalf("error %v is not ErrMalformedTraceparent", err)
			}
		})
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tc := NewTraceContext()
	if !tc.Valid() {
		t.Fatal("minted context invalid")
	}
	back, err := ParseTraceparent(tc.Traceparent())
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back != tc {
		t.Fatalf("round trip changed the context: %+v != %+v", back, tc)
	}
	if len(tc.TraceIDString()) != 32 || strings.ToLower(tc.TraceIDString()) != tc.TraceIDString() {
		t.Fatalf("TraceIDString %q not 32 lowercase hex digits", tc.TraceIDString())
	}
}

// EnsureTraceContext is the ingest rule: keep a well-formed caller's
// trace ID (with our own span ID), mint a fresh context otherwise.
func TestEnsureTraceContext(t *testing.T) {
	in := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tc, fresh := EnsureTraceContext(in)
	if fresh {
		t.Fatal("well-formed header reported fresh")
	}
	if got := tc.TraceIDString(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace ID not preserved: %s", got)
	}
	var callerSpan [8]byte
	copy(callerSpan[:], []byte{0x00, 0xf0, 0x67, 0xaa, 0x0b, 0xa9, 0x02, 0xb7})
	if tc.SpanID == callerSpan {
		t.Fatal("ingest must mint a new span ID, not reuse the caller's")
	}

	for _, bad := range []string{"", "garbage", "00-zzz-zzz-zz"} {
		tc, fresh := EnsureTraceContext(bad)
		if !fresh || !tc.Valid() {
			t.Fatalf("EnsureTraceContext(%q) = (%+v, fresh=%v), want a fresh valid context", bad, tc, fresh)
		}
	}

	// Two fresh contexts must not collide (random IDs).
	a, _ := EnsureTraceContext("")
	b, _ := EnsureTraceContext("")
	if a.TraceID == b.TraceID {
		t.Fatal("two fresh contexts share a trace ID")
	}
}

func TestTraceContextPlumbing(t *testing.T) {
	if _, ok := TraceContextFrom(context.Background()); ok {
		t.Fatal("empty context reported a trace context")
	}
	if id := TraceIDFrom(nil); id != "" {
		t.Fatalf("TraceIDFrom(nil) = %q, want empty", id)
	}
	tc := NewTraceContext()
	ctx := WithTraceContext(nil, tc)
	got, ok := TraceContextFrom(ctx)
	if !ok || got != tc {
		t.Fatalf("TraceContextFrom = (%+v, %v), want the attached context", got, ok)
	}
	if TraceIDFrom(ctx) != tc.TraceIDString() {
		t.Fatal("TraceIDFrom mismatch")
	}
}
