package obs

import (
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// numRegShards is the number of lock shards in a Registry's name→metric
// index. Lookups take one shard's RWMutex read lock; updates to the
// metric handles themselves are lock-free atomics, so the shards exist
// only to keep concurrent GetOrCreate lookups from serializing on a
// single mutex.
const numRegShards = 8

// A Registry is a set of named metrics. The zero value is not usable;
// call NewRegistry. All methods are safe for concurrent use, and all
// methods on a nil *Registry are no-ops returning nil handles, so
// instrumented code never branches on whether observability is enabled.
type Registry struct {
	shards [numRegShards]regShard

	// start anchors span StartNS offsets: every SpanRecord's StartNS is
	// relative to the registry's creation, making stages orderable
	// without wall-clock stamps in the manifest.
	start time.Time

	// spans is the ordered list of completed stage spans (span.go),
	// capped at maxSpanRecords; spansDropped counts the overflow.
	spanMu       sync.Mutex
	spans        []SpanRecord
	spansDropped int64

	// childSets are the bounded per-label metric families (childset.go),
	// keyed by name prefix; their series fold into snapshots flat.
	csMu      sync.Mutex
	childSets map[string]*ChildSet
}

type regShard struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{start: time.Now(), childSets: make(map[string]*ChildSet)}
	for i := range r.shards {
		r.shards[i].counters = make(map[string]*Counter)
		r.shards[i].gauges = make(map[string]*Gauge)
		r.shards[i].hists = make(map[string]*Histogram)
	}
	return r
}

func (r *Registry) shard(name string) *regShard {
	h := fnv.New32a()
	h.Write([]byte(name))
	return &r.shards[h.Sum32()%numRegShards]
}

// Counter returns the named counter, creating it on first use.
// A nil registry returns a nil handle whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	s := r.shard(name)
	s.mu.RLock()
	c := s.counters[name]
	s.mu.RUnlock()
	if c != nil {
		return c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c = s.counters[name]; c == nil {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	s := r.shard(name)
	s.mu.RLock()
	g := s.gauges[name]
	s.mu.RUnlock()
	if g != nil {
		return g
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if g = s.gauges[name]; g == nil {
		g = &Gauge{}
		s.gauges[name] = g
	}
	return g
}

// Histogram returns the named fixed-bucket histogram, creating it on
// first use with the given ascending upper bounds (an implicit +Inf
// bucket is appended). Later calls with the same name reuse the first
// creation's bounds. A nil registry returns a nil no-op handle.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	s := r.shard(name)
	s.mu.RLock()
	h := s.hists[name]
	s.mu.RUnlock()
	if h != nil {
		return h
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if h = s.hists[name]; h == nil {
		h = newHistogram(bounds)
		s.hists[name] = h
	}
	return h
}

func newHistogram(bounds []int64) *Histogram {
	b := append([]int64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// A Counter is a monotonically increasing integer. Updates are a single
// atomic add; a nil handle is a no-op.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// A Gauge is an instantaneous integer value. A nil handle is a no-op.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by delta (negative deltas decrease it).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on a nil handle).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// A Histogram counts observations into fixed buckets. The bounds are
// ascending inclusive upper limits; observations above the last bound
// land in an implicit +Inf bucket. Each bucket is its own atomic, so
// concurrent Observe calls contend only when they hit the same bucket,
// and never take a lock. A nil handle is a no-op.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Int64

	// exemplars holds at most one recent exemplar per bucket (lazily
	// allocated on the first ObserveExemplar), linking the bucket to a
	// trace ID so a latency outlier can be chased to its request.
	exemplars atomic.Pointer[exemplarSlab]
}

// exemplarSlab is the lazily allocated per-bucket exemplar store; a
// whole-slab atomic pointer keeps readers lock-free.
type exemplarSlab struct{ slots []atomic.Pointer[Exemplar] }

// An Exemplar ties one observed value to the trace that produced it.
type Exemplar struct {
	Value   int64  `json:"value"`
	TraceID string `json:"trace_id"`
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveExemplar records one value and, when traceID is non-empty,
// remembers it as the bucket's most recent exemplar. The exemplar store
// is one pointer swap per observation after a one-time allocation, so
// the traced path stays within the ObsOverhead budget.
func (h *Histogram) ObserveExemplar(v int64, traceID string) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	if traceID == "" {
		return
	}
	slab := h.exemplars.Load()
	if slab == nil {
		slab = &exemplarSlab{slots: make([]atomic.Pointer[Exemplar], len(h.counts))}
		if !h.exemplars.CompareAndSwap(nil, slab) {
			slab = h.exemplars.Load()
		}
	}
	slab.slots[i].Store(&Exemplar{Value: v, TraceID: traceID})
}

// merge folds src's buckets into h. Matching bounds merge bucket by
// bucket; mismatched ones (never produced by one call site, but merge
// must not corrupt) collapse src's whole count into h's +Inf bucket.
// The sum and total count fold either way, so set-wide totals are exact.
func (h *Histogram) merge(src *Histogram) {
	if h == nil || src == nil {
		return
	}
	same := len(h.bounds) == len(src.bounds)
	if same {
		for i := range h.bounds {
			if h.bounds[i] != src.bounds[i] {
				same = false
				break
			}
		}
	}
	if same {
		for i := range src.counts {
			h.counts[i].Add(src.counts[i].Load())
		}
	} else {
		h.counts[len(h.counts)-1].Add(src.count.Load())
	}
	h.count.Add(src.count.Load())
	h.sum.Add(src.sum.Load())
}

// BucketCount is one histogram bucket in a summary: the inclusive upper
// bound (0 marks the +Inf bucket via the Inf field) and its count.
type BucketCount struct {
	LE    int64 `json:"le"`
	Inf   bool  `json:"inf,omitempty"`
	Count int64 `json:"count"`
	// Exemplar is the bucket's most recent trace-linked observation,
	// when the instrumented path recorded one (ObserveExemplar).
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// HistogramSummary is a frozen histogram: total count, sum of observed
// values, and the per-bucket counts. Empty buckets are elided so
// summaries stay compact in manifests and expvar output.
type HistogramSummary struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

func (h *Histogram) summary() HistogramSummary {
	s := HistogramSummary{Count: h.count.Load(), Sum: h.sum.Load()}
	slab := h.exemplars.Load()
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		b := BucketCount{Count: c}
		if i < len(h.bounds) {
			b.LE = h.bounds[i]
		} else {
			b.Inf = true
		}
		if slab != nil {
			b.Exemplar = slab.slots[i].Load()
		}
		s.Buckets = append(s.Buckets, b)
	}
	return s
}

// A Snapshot is a frozen, export-ready view of a registry: plain maps
// and slices with no atomics, safe to marshal. Maps marshal with sorted
// keys, so snapshot JSON is deterministic for deterministic values.
type Snapshot struct {
	Counters   map[string]int64            `json:"counters,omitempty"`
	Gauges     map[string]int64            `json:"gauges,omitempty"`
	Histograms map[string]HistogramSummary `json:"histograms,omitempty"`
	Spans      []SpanRecord                `json:"spans,omitempty"`
}

// Snapshot freezes the registry. A nil registry yields a zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	snap.Counters = make(map[string]int64)
	snap.Gauges = make(map[string]int64)
	snap.Histograms = make(map[string]HistogramSummary)
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for name, c := range s.counters {
			snap.Counters[name] = c.Value()
		}
		for name, g := range s.gauges {
			snap.Gauges[name] = g.Value()
		}
		for name, h := range s.hists {
			snap.Histograms[name] = h.summary()
		}
		s.mu.RUnlock()
	}
	// Child sets fold in flat (prefix+label+"."+suffix), so every
	// exporter that reads snapshots — the JSON /metrics endpoint, the
	// Prometheus exposition, the sampler's history points, manifests —
	// sees the per-label series without knowing about the bound index.
	r.csMu.Lock()
	for _, cs := range r.childSets {
		cs.snapshotInto(&snap)
	}
	r.csMu.Unlock()
	r.spanMu.Lock()
	snap.Spans = append([]SpanRecord(nil), r.spans...)
	if r.spansDropped > 0 {
		// Surface the overflow where dashboards and manifests already
		// look, without a dedicated schema field.
		snap.Counters["obs_spans_dropped_total"] = r.spansDropped
	}
	r.spanMu.Unlock()
	return snap
}

// DurationBuckets returns the default histogram bounds for durations in
// nanoseconds: a coarse 1-3-10 exponential ladder from 100µs to 30s.
func DurationBuckets() []int64 {
	return []int64{
		100_000, 300_000, // 100µs, 300µs
		1_000_000, 3_000_000, // 1ms, 3ms
		10_000_000, 30_000_000, // 10ms, 30ms
		100_000_000, 300_000_000, // 100ms, 300ms
		1_000_000_000, 3_000_000_000, // 1s, 3s
		10_000_000_000, 30_000_000_000, // 10s, 30s
	}
}
