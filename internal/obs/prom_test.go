package obs

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// A fixed registry population whose Prometheus rendering is pinned by
// testdata/prom.golden. Regenerate with
//
//	go test ./internal/obs -run Prom -update-golden
func promFixture() *Registry {
	reg := NewRegistry()
	reg.Counter("service.plan.requests").Add(42)
	reg.Counter("service.req.shed").Add(3)
	reg.Gauge("service.queue.depth").Set(7)
	h := reg.Histogram("service.http.latency_ns.plan", []int64{1000, 10_000, 100_000})
	h.Observe(500)
	h.Observe(5_000)
	h.Observe(5_500)
	h.Observe(2_000_000) // +Inf bucket
	cs := reg.ChildSet("service.tenant.", 4)
	cs.Child("acme").Counter("requests.plan").Add(9)
	cs.Child("acme").Counter("errors.5xx").Add(1)
	return reg
}

func TestPrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, promFixture().Snapshot()); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	goldenPath := filepath.Join("testdata", "prom.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("prometheus exposition drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// Determinism is what makes the golden meaningful: repeated renders of
// the same snapshot must be byte-identical (map iteration must never
// leak into the output).
func TestPrometheusDeterministic(t *testing.T) {
	snap := promFixture().Snapshot()
	var first string
	for i := 0; i < 5; i++ {
		var b strings.Builder
		if err := WritePrometheus(&b, snap); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = b.String()
			continue
		}
		if b.String() != first {
			t.Fatalf("render %d differs from render 0", i)
		}
	}
}

// The exposition contract scrapers depend on: cumulative le-labeled
// buckets are monotone non-decreasing, the +Inf bucket equals _count,
// and counters carry the _total suffix.
func TestPrometheusHistogramContract(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, promFixture().Snapshot()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(b.String(), "\n")

	var prev int64 = -1
	var infCount, count int64
	sawInf, sawCount := false, false
	for _, line := range lines {
		switch {
		case strings.HasPrefix(line, "service_http_latency_ns_plan_bucket{le=\"+Inf\"}"):
			infCount, _ = strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			sawInf = true
			if infCount < prev {
				t.Fatalf("+Inf bucket %d below preceding cumulative %d", infCount, prev)
			}
		case strings.HasPrefix(line, "service_http_latency_ns_plan_bucket{"):
			v, _ := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if v < prev {
				t.Fatalf("cumulative buckets not monotone: %d after %d", v, prev)
			}
			prev = v
		case strings.HasPrefix(line, "service_http_latency_ns_plan_count "):
			count, _ = strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			sawCount = true
		}
	}
	if !sawInf || !sawCount {
		t.Fatal("histogram missing +Inf bucket or _count line")
	}
	if infCount != count {
		t.Fatalf("+Inf bucket %d != _count %d", infCount, count)
	}
	out := b.String()
	if !strings.Contains(out, "service_plan_requests_total 42") {
		t.Fatal("counter missing _total suffix or value")
	}
	if !strings.Contains(out, "# TYPE service_plan_requests_total counter") {
		t.Fatal("counter missing TYPE line")
	}
	// Child-set series fold in like any other counter.
	if !strings.Contains(out, "service_tenant_acme_requests_plan_total 9") {
		t.Fatal("per-tenant child series missing from exposition")
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"service.plan.requests": "service_plan_requests",
		"already_fine":          "already_fine",
		"with:colon":            "with:colon",
		"weird-chars/here":      "weird_chars_here",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
