//go:build !unix

package obs

import "time"

// processCPUTime is unavailable off unix; spans record zero CPU time.
func processCPUTime() time.Duration { return 0 }
