package obs

import (
	"context"
	"log/slog"
	rtrace "runtime/trace"
	"time"
)

// A SpanRecord is one completed pipeline stage: its name, wall-clock
// duration, and the process CPU time (user+system, all threads) that
// elapsed while it ran. CPU time is a process-wide delta — concurrent
// stages each see the whole process's burn — which is exactly the
// number the manifest wants: how much CPU the run spent while this
// stage was the active phase.
type SpanRecord struct {
	Name   string `json:"name"`
	WallNS int64  `json:"wall_ns"`
	CPUNS  int64  `json:"cpu_ns"`
}

// A Span is an in-flight stage measurement. End records it into the
// registry that created it. A nil Span (from a nil registry) is a
// no-op, so instrumented code never guards span creation.
type Span struct {
	reg       *Registry
	name      string
	startWall time.Time
	startCPU  time.Duration
	region    *rtrace.Region
}

// StartSpan begins a named stage: it opens a runtime/trace region (free
// unless `go tool trace` capture is on), snapshots wall and process-CPU
// clocks, and returns the span to End. ctx associates the trace region
// with any enclosing trace task; nil is allowed.
func (r *Registry) StartSpan(ctx context.Context, name string) *Span {
	if r == nil {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return &Span{
		reg:       r,
		name:      name,
		startWall: time.Now(),
		startCPU:  processCPUTime(),
		region:    rtrace.StartRegion(ctx, name),
	}
}

// End closes the span, appends its record to the registry, and logs the
// stage timing at debug level.
func (s *Span) End() {
	if s == nil {
		return
	}
	rec := SpanRecord{
		Name:   s.name,
		WallNS: time.Since(s.startWall).Nanoseconds(),
		CPUNS:  (processCPUTime() - s.startCPU).Nanoseconds(),
	}
	s.region.End()
	s.reg.spanMu.Lock()
	s.reg.spans = append(s.reg.spans, rec)
	s.reg.spanMu.Unlock()
	Logger().LogAttrs(context.Background(), slog.LevelDebug, "stage done",
		slog.String("stage", s.name),
		slog.Duration("wall", time.Duration(rec.WallNS)),
		slog.Duration("cpu", time.Duration(rec.CPUNS)))
}
