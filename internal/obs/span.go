package obs

import (
	"context"
	"log/slog"
	rtrace "runtime/trace"
	"time"
)

// maxSpanRecords caps the registry's stage-span list. Stage spans are
// coarse (a handful per run), so hitting the cap means an instrumented
// loop is misusing StartSpan; rather than growing without bound the
// registry drops the overflow, logs one warning, and surfaces the drop
// count as the obs_spans_dropped_total counter in snapshots and
// manifests. Fine-grained, high-volume timing belongs to the Tracer
// (tracer.go), whose buffer has its own cap.
const maxSpanRecords = 4096

// A SpanRecord is one completed pipeline stage: its name, the offset of
// its start from the registry's creation (so manifest stages are
// orderable even when stages overlap), its wall-clock duration, and the
// process CPU time (user+system, all threads) that elapsed while it
// ran. CPU time is a process-wide delta — concurrent stages each see
// the whole process's burn — which is exactly the number the manifest
// wants: how much CPU the run spent while this stage was the active
// phase.
type SpanRecord struct {
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	WallNS  int64  `json:"wall_ns"`
	CPUNS   int64  `json:"cpu_ns"`
}

// A Span is an in-flight stage measurement. End records it into the
// registry that created it. A nil Span (from a nil registry) is a
// no-op, so instrumented code never guards span creation.
type Span struct {
	reg       *Registry
	name      string
	startWall time.Time
	startCPU  time.Duration
	region    *rtrace.Region
	ts        *TraceSpan
}

// StartSpan begins a named stage: it opens a runtime/trace region (free
// unless `go tool trace` capture is on), a hierarchical tracer span
// (recorded in -trace-events output when tracing is enabled), snapshots
// wall and process-CPU clocks, and returns the span to End. The
// returned context carries the tracer span, so operations started under
// it become its children in the trace timeline; with tracing disabled
// it is the input context unchanged. ctx may be nil.
func (r *Registry) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if r == nil {
		return ctx, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, ts := StartTraceSpan(ctx, name, "stage")
	return ctx, &Span{
		reg:       r,
		name:      name,
		startWall: time.Now(),
		startCPU:  processCPUTime(),
		region:    rtrace.StartRegion(ctx, name),
		ts:        ts,
	}
}

// End closes the span, appends its record to the registry (dropping and
// counting it past the cap), and logs the stage timing at debug level.
func (s *Span) End() {
	if s == nil {
		return
	}
	rec := SpanRecord{
		Name:    s.name,
		StartNS: s.startWall.Sub(s.reg.start).Nanoseconds(),
		WallNS:  time.Since(s.startWall).Nanoseconds(),
		CPUNS:   (processCPUTime() - s.startCPU).Nanoseconds(),
	}
	s.region.End()
	s.ts.End()
	var dropped int64
	s.reg.spanMu.Lock()
	if len(s.reg.spans) < maxSpanRecords {
		s.reg.spans = append(s.reg.spans, rec)
	} else {
		s.reg.spansDropped++
		dropped = s.reg.spansDropped
	}
	s.reg.spanMu.Unlock()
	if dropped == 1 {
		Logger().Warn("stage span cap reached; dropping further spans",
			"cap", maxSpanRecords, "stage", s.name)
	}
	Logger().LogAttrs(context.Background(), slog.LevelDebug, "stage done",
		slog.String("stage", s.name),
		slog.Duration("wall", time.Duration(rec.WallNS)),
		slog.Duration("cpu", time.Duration(rec.CPUNS)))
}
