// Package faultinject is the chaos-test substrate: named fault points in
// production code (the atomic writer, the tenant store, the service's
// solver calls) consult a process-global plan that tests arm with
// deterministic error, latency, and partial-write rules. The design
// mirrors internal/obs's registry: a single atomic pointer that is nil in
// production, so every hook in a hot path costs one atomic load and a
// nil check — no build tags, no interfaces threaded through APIs.
//
// Determinism is the point. A rule fires on exact hit indices (skip the
// first After hits, then fire Count times), so a chaos test that arms
// "fail the second store save" exercises the same failure path on every
// run, and the recovery it asserts is reproducible bit for bit.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the default error returned by armed fault points; chaos
// tests assert recovery paths with errors.Is against it (or against the
// rule's custom Err).
var ErrInjected = errors.New("faultinject: injected fault")

// A Rule arms one fault point. The zero value fires on every hit with
// ErrInjected and no delay.
type Rule struct {
	// After is the number of hits that pass through before the rule
	// starts firing (0 = fire from the first hit).
	After int
	// Count is how many hits fire once triggered (0 = every hit after
	// After, forever).
	Count int
	// Err is the error returned by firing hits. nil means ErrInjected —
	// a Rule used purely for Delay should set Err to Benign.
	Err error
	// Delay is slept (uninterruptibly) by firing hits before returning,
	// modeling slow I/O or slow solves.
	Delay time.Duration
	// TruncateAt bounds the bytes a Writer-wrapped sink accepts while the
	// rule fires: writes past the limit fail with Err, modeling a torn
	// write. Ignored by Hit.
	TruncateAt int
}

// Benign marks a rule that delays without failing: a firing Hit sleeps
// Rule.Delay and then returns nil.
var Benign = errors.New("faultinject: benign (delay only)")

// A Plan is a set of armed fault points. The zero value is unusable;
// construct with NewPlan. Methods are safe for concurrent use.
type Plan struct {
	mu     sync.Mutex
	points map[string]*point
}

type point struct {
	rule Rule
	hits int
}

// NewPlan returns an empty plan.
func NewPlan() *Plan {
	return &Plan{points: make(map[string]*point)}
}

// Set arms (or re-arms, resetting the hit counter) the named point.
func (p *Plan) Set(name string, r Rule) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.points[name] = &point{rule: r}
}

// Clear disarms the named point.
func (p *Plan) Clear(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.points, name)
}

// Hits returns how many times the named point was consulted (armed or
// not, it counts only while armed — an unarmed point reports 0).
func (p *Plan) Hits(name string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pt := p.points[name]; pt != nil {
		return pt.hits
	}
	return 0
}

// hit consults the named point, returning the rule's verdict for this
// hit index: the delay to sleep, the error to return, and the byte limit
// for writer wrapping (-1 = unlimited).
func (p *Plan) hit(name string) (delay time.Duration, err error, limit int) {
	p.mu.Lock()
	pt := p.points[name]
	if pt == nil {
		p.mu.Unlock()
		return 0, nil, -1
	}
	idx := pt.hits
	pt.hits++
	r := pt.rule
	p.mu.Unlock()
	if idx < r.After {
		return 0, nil, -1
	}
	if r.Count > 0 && idx >= r.After+r.Count {
		return 0, nil, -1
	}
	err = r.Err
	if err == nil {
		err = fmt.Errorf("%w: point %q hit %d", ErrInjected, name, idx)
	}
	if errors.Is(err, Benign) {
		err = nil
	}
	limit = -1
	if r.TruncateAt > 0 || (r.TruncateAt == 0 && err != nil) {
		limit = r.TruncateAt
	}
	return r.Delay, err, limit
}

// active is the process-global plan. nil (the default, and the only
// state production processes ever see) disables every fault point.
var active atomic.Pointer[Plan]

// Enable installs p as the process-global plan; Enable(nil) disarms
// everything. Tests that arm a plan must disarm it on cleanup.
func Enable(p *Plan) { active.Store(p) }

// Active returns the installed plan, or nil when fault injection is off.
func Active() *Plan { return active.Load() }

// Hit consults the named fault point against the active plan: it sleeps
// the armed delay (if any) and returns the armed error (if the rule
// fires on this hit). With no plan installed it is a nil-check no-op —
// safe to leave in production hot paths.
func Hit(name string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	delay, err, _ := p.hit(name)
	if delay > 0 {
		time.Sleep(delay)
	}
	return err
}

// Writer wraps w with the named point's partial-write rule: if the rule
// fires on this hit, the returned writer accepts at most TruncateAt
// bytes and then fails with the rule's error — the injected torn write.
// With no plan installed (or a non-firing hit) it returns w unchanged.
func Writer(name string, w io.Writer) io.Writer {
	p := active.Load()
	if p == nil {
		return w
	}
	delay, err, limit := p.hit(name)
	if delay > 0 {
		time.Sleep(delay)
	}
	if err == nil || limit < 0 {
		return w
	}
	return &truncWriter{w: w, left: limit, err: err}
}

type truncWriter struct {
	w    io.Writer
	left int
	err  error
}

func (t *truncWriter) Write(b []byte) (int, error) {
	if t.left <= 0 {
		return 0, t.err
	}
	if len(b) <= t.left {
		n, err := t.w.Write(b)
		t.left -= n
		return n, err
	}
	n, err := t.w.Write(b[:t.left])
	t.left -= n
	if err != nil {
		return n, err
	}
	return n, t.err
}
