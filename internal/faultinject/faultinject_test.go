package faultinject

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestDisabledIsNoOp(t *testing.T) {
	Enable(nil)
	if err := Hit("anything"); err != nil {
		t.Fatalf("disabled Hit returned %v", err)
	}
	var buf bytes.Buffer
	w := Writer("anything", &buf)
	if _, err := w.Write([]byte("hello")); err != nil {
		t.Fatalf("disabled Writer failed: %v", err)
	}
	if buf.String() != "hello" {
		t.Fatalf("disabled Writer mangled output: %q", buf.String())
	}
}

func TestHitAfterCount(t *testing.T) {
	p := NewPlan()
	p.Set("pt", Rule{After: 2, Count: 2})
	Enable(p)
	defer Enable(nil)

	var got []bool
	for i := 0; i < 6; i++ {
		got = append(got, Hit("pt") != nil)
	}
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d: fired=%v want %v (all %v)", i, got[i], want[i], got)
		}
	}
	if h := p.Hits("pt"); h != 6 {
		t.Fatalf("Hits = %d, want 6", h)
	}
}

func TestHitWrapsErrInjected(t *testing.T) {
	p := NewPlan()
	p.Set("pt", Rule{})
	Enable(p)
	defer Enable(nil)
	if err := Hit("pt"); !errors.Is(err, ErrInjected) {
		t.Fatalf("default error %v does not wrap ErrInjected", err)
	}
}

func TestCustomError(t *testing.T) {
	custom := errors.New("disk on fire")
	p := NewPlan()
	p.Set("pt", Rule{Err: custom})
	Enable(p)
	defer Enable(nil)
	if err := Hit("pt"); !errors.Is(err, custom) {
		t.Fatalf("got %v, want custom error", err)
	}
}

func TestBenignDelayOnly(t *testing.T) {
	p := NewPlan()
	p.Set("pt", Rule{Err: Benign, Delay: 10 * time.Millisecond})
	Enable(p)
	defer Enable(nil)
	start := time.Now()
	if err := Hit("pt"); err != nil {
		t.Fatalf("benign rule returned error %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("benign rule did not delay (took %v)", d)
	}
}

func TestWriterTruncates(t *testing.T) {
	p := NewPlan()
	p.Set("pt", Rule{TruncateAt: 3})
	Enable(p)
	defer Enable(nil)

	var buf bytes.Buffer
	w := Writer("pt", &buf)
	n, err := w.Write([]byte("hello"))
	if n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("Write = (%d, %v), want (3, ErrInjected)", n, err)
	}
	if buf.String() != "hel" {
		t.Fatalf("sink got %q, want the 3-byte prefix", buf.String())
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-truncation write succeeded")
	}
}

func TestWriterPassThroughWhenNotFiring(t *testing.T) {
	p := NewPlan()
	p.Set("pt", Rule{After: 1, TruncateAt: 1})
	Enable(p)
	defer Enable(nil)

	var buf bytes.Buffer
	w := Writer("pt", &buf) // hit 0 < After: passes through
	if _, err := w.Write([]byte("hello")); err != nil {
		t.Fatalf("non-firing Writer failed: %v", err)
	}
	if buf.String() != "hello" {
		t.Fatalf("non-firing Writer truncated: %q", buf.String())
	}
}

func TestSetResetsHitCounter(t *testing.T) {
	p := NewPlan()
	p.Set("pt", Rule{After: 1})
	Enable(p)
	defer Enable(nil)
	Hit("pt")
	p.Set("pt", Rule{After: 1})
	if err := Hit("pt"); err != nil {
		t.Fatalf("re-armed rule fired on hit 0: %v", err)
	}
	if err := Hit("pt"); err == nil {
		t.Fatalf("re-armed rule did not fire on hit 1")
	}
}

func TestClear(t *testing.T) {
	p := NewPlan()
	p.Set("pt", Rule{})
	Enable(p)
	defer Enable(nil)
	p.Clear("pt")
	if err := Hit("pt"); err != nil {
		t.Fatalf("cleared point fired: %v", err)
	}
}
