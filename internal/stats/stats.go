// Package stats provides the small set of summary statistics used by the
// experiment harness: means, medians, percentiles, histograms, and the
// "improved by at least X%" counts reported in Table I of the paper.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	Min    float64
	Max    float64
	StdDev float64
}

// Summarize computes a Summary of xs. It returns a zero Summary when xs is
// empty.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Percentile(xs, 50)
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It does not modify xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted computes the percentile of an already-sorted sample.
func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// FractionAtLeast returns the fraction of xs that are >= threshold.
func FractionAtLeast(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x >= threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Improvement returns the relative improvement of new over old as a
// fraction: (old-new)/new. This matches the paper's Table I convention,
// where "Optimal improves Equal by 125%" means Equal's group miss ratio is
// 2.25x Optimal's. It returns 0 when new is 0 and old is 0, and +Inf when
// new is 0 but old is positive.
func Improvement(old, new float64) float64 {
	if new == 0 {
		if old == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (old - new) / new
}

// Histogram bins xs into nbins equal-width bins over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
}

// NewHistogram builds a Histogram of xs with nbins bins. Values exactly at
// Max fall in the last bin. It panics if nbins <= 0.
func NewHistogram(xs []float64, nbins int) Histogram {
	if nbins <= 0 {
		panic(fmt.Sprintf("stats: nbins must be positive, got %d", nbins))
	}
	h := Histogram{Counts: make([]int, nbins)}
	if len(xs) == 0 {
		return h
	}
	h.Min, h.Max = xs[0], xs[0]
	for _, x := range xs {
		if x < h.Min {
			h.Min = x
		}
		if x > h.Max {
			h.Max = x
		}
	}
	width := (h.Max - h.Min) / float64(nbins)
	for _, x := range xs {
		var b int
		if width > 0 {
			b = int((x - h.Min) / width)
		}
		if b >= nbins {
			b = nbins - 1
		}
		h.Counts[b]++
	}
	return h
}

// BinCenter returns the midpoint of bin i.
func (h Histogram) BinCenter(i int) float64 {
	width := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*width
}

// Pearson returns the Pearson correlation coefficient of the paired
// samples xs and ys. It panics on mismatched lengths and returns NaN for
// fewer than two points or zero variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: mismatched lengths %d vs %d", len(xs), len(ys)))
	}
	n := float64(len(xs))
	if n < 2 {
		return math.NaN()
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// WeightedMean returns the mean of xs weighted by ws. The slices must be the
// same length; it returns NaN for empty input or zero total weight.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic(fmt.Sprintf("stats: mismatched lengths %d vs %d", len(xs), len(ws)))
	}
	var num, den float64
	for i, x := range xs {
		num += x * ws[i]
		den += ws[i]
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}
