package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v, want zero", s)
	}
}

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 {
		t.Errorf("N = %d, want 5", s.N)
	}
	if s.Mean != 3 {
		t.Errorf("Mean = %v, want 3", s.Mean)
	}
	if s.Median != 3 {
		t.Errorf("Median = %v, want 3", s.Median)
	}
	if s.Min != 1 || s.Max != 5 {
		t.Errorf("Min,Max = %v,%v, want 1,5", s.Min, s.Max)
	}
	want := math.Sqrt(2.5)
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", s.StdDev, want)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Median != 7 || s.Min != 7 || s.Max != 7 || s.StdDev != 0 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {-5, 10}, {150, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Percentile mutated input: %v", xs)
	}
}

func TestPercentileEmpty(t *testing.T) {
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("Percentile(nil) should be NaN")
	}
}

func TestFractionAtLeast(t *testing.T) {
	xs := []float64{0.05, 0.10, 0.15, 0.25}
	if got := FractionAtLeast(xs, 0.10); got != 0.75 {
		t.Errorf("FractionAtLeast(0.10) = %v, want 0.75", got)
	}
	if got := FractionAtLeast(xs, 0.30); got != 0 {
		t.Errorf("FractionAtLeast(0.30) = %v, want 0", got)
	}
	if got := FractionAtLeast(nil, 0); got != 0 {
		t.Errorf("FractionAtLeast(nil) = %v, want 0", got)
	}
}

func TestImprovement(t *testing.T) {
	// Equal at 2.25x Optimal means Optimal improves Equal by 125%.
	if got := Improvement(2.25, 1.0); math.Abs(got-1.25) > 1e-12 {
		t.Errorf("Improvement(2.25, 1) = %v, want 1.25", got)
	}
	if got := Improvement(0, 0); got != 0 {
		t.Errorf("Improvement(0,0) = %v, want 0", got)
	}
	if got := Improvement(1, 0); !math.IsInf(got, 1) {
		t.Errorf("Improvement(1,0) = %v, want +Inf", got)
	}
	if got := Improvement(1, 1); got != 0 {
		t.Errorf("Improvement(1,1) = %v, want 0", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 10 {
		t.Fatalf("histogram total = %d, want 10", total)
	}
	// Max value lands in the last bin.
	if h.Counts[4] != 2 { // 8 and 9 (9 == Max)
		t.Errorf("last bin = %d, want 2 (got %v)", h.Counts[4], h.Counts)
	}
}

func TestHistogramConstant(t *testing.T) {
	h := NewHistogram([]float64{5, 5, 5}, 3)
	if h.Counts[0] != 3 {
		t.Fatalf("constant-input histogram = %v, want all in bin 0", h.Counts)
	}
}

func TestHistogramPanicsOnBadBins(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nbins=0")
		}
	}()
	NewHistogram([]float64{1}, 0)
}

func TestBinCenter(t *testing.T) {
	h := NewHistogram([]float64{0, 10}, 2)
	if got := h.BinCenter(0); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("BinCenter(0) = %v, want 2.5", got)
	}
	if got := h.BinCenter(1); math.Abs(got-7.5) > 1e-12 {
		t.Errorf("BinCenter(1) = %v, want 7.5", got)
	}
}

func TestWeightedMean(t *testing.T) {
	got := WeightedMean([]float64{1, 3}, []float64{1, 1})
	if got != 2 {
		t.Errorf("WeightedMean = %v, want 2", got)
	}
	got = WeightedMean([]float64{1, 3}, []float64{3, 1})
	if got != 1.5 {
		t.Errorf("WeightedMean = %v, want 1.5", got)
	}
	if !math.IsNaN(WeightedMean(nil, nil)) {
		t.Error("WeightedMean(nil,nil) should be NaN")
	}
}

func TestWeightedMeanPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched lengths")
		}
	}()
	WeightedMean([]float64{1}, []float64{1, 2})
}

// Property: the median is always between Min and Max, and the mean of a
// shifted sample shifts by the same amount.
func TestSummarizeProperties(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		if s.Median < s.Min || s.Median > s.Max {
			return false
		}
		shifted := make([]float64, len(xs))
		for i := range xs {
			shifted[i] = xs[i] + 100
		}
		s2 := Summarize(shifted)
		return math.Abs(s2.Mean-(s.Mean+100)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: percentiles are monotone in p.
func TestPercentileMonotone(t *testing.T) {
	f := func(raw []int16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(xs, pa) <= Percentile(xs, pb)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPearson(t *testing.T) {
	// Perfect positive and negative correlation.
	xs := []float64{1, 2, 3, 4}
	if got := Pearson(xs, []float64{2, 4, 6, 8}); math.Abs(got-1) > 1e-12 {
		t.Errorf("Pearson = %v, want 1", got)
	}
	if got := Pearson(xs, []float64{8, 6, 4, 2}); math.Abs(got+1) > 1e-12 {
		t.Errorf("Pearson = %v, want -1", got)
	}
	// Known value: r of (1,2,3) vs (1,3,2) = 0.5.
	if got := Pearson([]float64{1, 2, 3}, []float64{1, 3, 2}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Pearson = %v, want 0.5", got)
	}
	// Degenerate cases.
	if !math.IsNaN(Pearson([]float64{1}, []float64{2})) {
		t.Error("single point should be NaN")
	}
	if !math.IsNaN(Pearson([]float64{1, 1}, []float64{2, 3})) {
		t.Error("zero variance should be NaN")
	}
}

func TestPearsonPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Pearson([]float64{1}, []float64{1, 2})
}

func TestPearsonShiftScaleInvariant(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 3 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			ys[i] = float64(v)*3 + float64(i%7) // correlated with noise
		}
		a := Pearson(xs, ys)
		shifted := make([]float64, len(xs))
		for i := range xs {
			shifted[i] = xs[i]*2 + 100
		}
		b := Pearson(shifted, ys)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		return math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
