package profileio

import (
	"math/rand/v2"
	"path/filepath"
	"strings"
	"testing"

	"partitionshare/internal/footprint"
	"partitionshare/internal/reuse"
	"partitionshare/internal/trace"
)

func sampleProfile(t *testing.T) Profile {
	t.Helper()
	rng := rand.New(rand.NewPCG(1, 2))
	tr := make(trace.Trace, 5000)
	for i := range tr {
		tr[i] = uint32(rng.IntN(200))
	}
	return Profile{Name: "sample", Rate: 2.5, Reuse: reuse.Collect(tr)}
}

func TestRoundTrip(t *testing.T) {
	p := sampleProfile(t)
	var b strings.Builder
	if err := Write(&b, p); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != p.Name || got.Rate != p.Rate {
		t.Errorf("metadata changed: %+v", got)
	}
	if got.Reuse.N != p.Reuse.N || got.Reuse.M != p.Reuse.M {
		t.Errorf("n/m changed: %d/%d", got.Reuse.N, got.Reuse.M)
	}
	// The reconstructed footprint is bit-identical at every window.
	a, c := footprint.New(p.Reuse), got.Footprint()
	for w := int64(0); w <= p.Reuse.N; w += 37 {
		if a.AtInt(w) != c.AtInt(w) {
			t.Fatalf("fp(%d) changed: %v vs %v", w, a.AtInt(w), c.AtInt(w))
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	p := sampleProfile(t)
	path := filepath.Join(t.TempDir(), "p.hotl")
	if err := WriteFile(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "sample" {
		t.Errorf("name = %q", got.Name)
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected error")
	}
}

func TestWriteRejectsBadName(t *testing.T) {
	p := sampleProfile(t)
	p.Name = "two words"
	var b strings.Builder
	if err := Write(&b, p); err == nil {
		t.Fatal("expected error for whitespace in name")
	}
}

func TestReadRejectsCorrupt(t *testing.T) {
	p := sampleProfile(t)
	var b strings.Builder
	if err := Write(&b, p); err != nil {
		t.Fatal(err)
	}
	good := b.String()
	cases := []string{
		"",
		"nothotl v1\n",
		"hotlprof v2\n",
		strings.Replace(good, "rate 2.5", "rate -1", 1),
		strings.Replace(good, "reuse", "zeuse", 1),
		good[:len(good)/2],                         // truncated
		strings.Replace(good, "n 5000", "n 10", 1), // totals mismatch
		strings.Replace(good, "name sample", "noname x", 1),
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestReadRejectsInvalidHistEntries(t *testing.T) {
	bad := "hotlprof v1\nname x\nrate 1\nn 3 m 2\nreuse 1\n-1 1\nfirst 2\n1 1\n2 1\nlast 2\n1 1\n2 1\n"
	if _, err := Read(strings.NewReader(bad)); err == nil {
		t.Fatal("expected error for negative histogram value")
	}
}
