package profileio

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// The parse-failure taxonomy: everything unreadable wraps ErrCorrupt,
// except a recognised magic with an unknown version, which wraps
// ErrUnsupportedVersion so callers can distinguish "upgrade the tool"
// from "the file is damaged".
func TestReadErrorTaxonomy(t *testing.T) {
	p := sampleProfile(t)
	var b strings.Builder
	if err := Write(&b, p); err != nil {
		t.Fatal(err)
	}
	good := b.String()

	corrupt := []string{
		"",
		"nothotl v1\n",
		good[:len(good)/2],
		strings.Replace(good, "rate 2.5", "rate NaN", 1),
		strings.Replace(good, "rate 2.5", "rate +Inf", 1),
		strings.Replace(good, "rate 2.5", "rate 0", 1),
		// Histogram longer than the access count: k > n is implausible.
		"hotlprof v1\nname x\nrate 1\nn 3 m 2\nreuse 9999999\n1 1\n",
		// Count overflow bait: two entries for the same value summing
		// past int64.
		"hotlprof v1\nname x\nrate 1\nn 3 m 2\nreuse 2\n1 9223372036854775807\n1 9223372036854775807\nfirst 1\n1 2\nlast 1\n1 2\n",
	}
	for i, c := range corrupt {
		if _, err := Read(strings.NewReader(c)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("corrupt case %d: error = %v, want ErrCorrupt", i, err)
		}
	}

	if _, err := Read(strings.NewReader("hotlprof v2\n")); !errors.Is(err, ErrUnsupportedVersion) {
		t.Errorf("v2 error = %v, want ErrUnsupportedVersion", err)
	}
	if _, err := Read(strings.NewReader("hotlprof v2\n")); errors.Is(err, ErrCorrupt) {
		t.Error("version mismatch must not also claim the file is corrupt")
	}
}

// Validate must reject NaN/Inf/non-positive rates before they poison the
// footprint math, and Write must refuse to serialize such a profile.
func TestValidateRejectsBadRate(t *testing.T) {
	p := sampleProfile(t)
	for _, rate := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -3} {
		bad := p
		bad.Rate = rate
		if err := bad.Validate(); err == nil {
			t.Errorf("rate %v: Validate accepted it", rate)
		}
		var b strings.Builder
		if err := Write(&b, bad); err == nil {
			t.Errorf("rate %v: Write accepted it", rate)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
}
