package profileio

import (
	"math/rand/v2"
	"strings"
	"testing"

	"partitionshare/internal/reuse"
	"partitionshare/internal/trace"
)

// sampleSeedProfile builds a small valid profile for the seed corpus.
func sampleSeedProfile() Profile {
	rng := rand.New(rand.NewPCG(1, 2))
	tr := make(trace.Trace, 500)
	for i := range tr {
		tr[i] = uint32(rng.IntN(40))
	}
	return Profile{Name: "seed", Rate: 1.5, Reuse: reuse.Collect(tr)}
}

// FuzzProfileRoundTrip hardens the profile parser: arbitrary bytes must
// either fail with an error or parse into a profile that validates and
// survives a write→read round trip unchanged. The parser must never
// panic and never accept a profile its own Validate rejects.
func FuzzProfileRoundTrip(f *testing.F) {
	var b strings.Builder
	rng := sampleSeedProfile()
	if err := Write(&b, rng); err != nil {
		f.Fatal(err)
	}
	good := b.String()
	f.Add(good)
	f.Add("")
	f.Add("hotlprof v1\nname x\nrate 1\nn 3 m 2\n")
	f.Add("hotlprof v2\n")
	f.Add(strings.Replace(good, "rate", "late", 1))
	f.Add(good[:len(good)/3])

	f.Fuzz(func(t *testing.T, data string) {
		p, err := Read(strings.NewReader(data))
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("Read accepted a profile Validate rejects: %v", verr)
		}
		var out strings.Builder
		if err := Write(&out, p); err != nil {
			t.Fatalf("cannot re-serialize an accepted profile: %v", err)
		}
		q, err := Read(strings.NewReader(out.String()))
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if q.Name != p.Name || q.Rate != p.Rate || q.Reuse.N != p.Reuse.N || q.Reuse.M != p.Reuse.M {
			t.Fatalf("round trip changed the profile: %+v vs %+v", q, p)
		}
	})
}
