// Package profileio reads and writes program locality profiles — the
// counterpart of the paper's per-program "footprint files" (§VII-A, 242 KB
// to 375 KB of ASCII per program) that the optimizer consumes.
//
// A profile stores the reuse-time, first-access, and last-access histograms
// plus the trace length, distinct-data count, and access rate. That is
// exactly the information the HOTL footprint formula needs, so the full
// footprint function (and from it any miss-ratio curve and any composition)
// is reconstructed losslessly.
//
// Format (ASCII, line oriented):
//
//	hotlprof v1
//	name <string>
//	rate <float>
//	n <int> m <int>
//	reuse <k>
//	<value> <count>     (k lines, ascending value)
//	first <k>
//	...
//	last <k>
//	...
package profileio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"partitionshare/internal/footprint"
	"partitionshare/internal/reuse"
)

// Profile is the serializable form of one program's locality profile.
type Profile struct {
	Name  string
	Rate  float64
	Reuse reuse.Profile
}

// Footprint wraps the profile for HOTL evaluation.
func (p Profile) Footprint() footprint.Footprint { return footprint.New(p.Reuse) }

// Write serializes the profile.
func Write(w io.Writer, p Profile) error {
	bw := bufio.NewWriter(w)
	if strings.ContainsAny(p.Name, " \t\n") {
		return fmt.Errorf("profileio: name %q contains whitespace", p.Name)
	}
	fmt.Fprintln(bw, "hotlprof v1")
	fmt.Fprintf(bw, "name %s\n", p.Name)
	fmt.Fprintf(bw, "rate %g\n", p.Rate)
	fmt.Fprintf(bw, "n %d m %d\n", p.Reuse.N, p.Reuse.M)
	writeHist := func(label string, ts reuse.TailSum) {
		fmt.Fprintf(bw, "%s %d\n", label, ts.Len())
		ts.Each(func(v, c int64) {
			fmt.Fprintf(bw, "%d %d\n", v, c)
		})
	}
	writeHist("reuse", p.Reuse.Reuse)
	writeHist("first", p.Reuse.First)
	writeHist("last", p.Reuse.Last)
	return bw.Flush()
}

// Read parses a profile written by Write.
func Read(r io.Reader) (Profile, error) {
	br := bufio.NewReader(r)
	var p Profile
	var magic, version string
	if _, err := fmt.Fscan(br, &magic, &version); err != nil {
		return p, fmt.Errorf("profileio: bad header: %w", err)
	}
	if magic != "hotlprof" || version != "v1" {
		return p, fmt.Errorf("profileio: unsupported header %q %q", magic, version)
	}
	var key string
	if _, err := fmt.Fscan(br, &key, &p.Name); err != nil || key != "name" {
		return p, fmt.Errorf("profileio: expected name line (err %v)", err)
	}
	if _, err := fmt.Fscan(br, &key, &p.Rate); err != nil || key != "rate" {
		return p, fmt.Errorf("profileio: expected rate line (err %v)", err)
	}
	if p.Rate <= 0 {
		return p, fmt.Errorf("profileio: non-positive rate %v", p.Rate)
	}
	var n, m int64
	var mkey string
	if _, err := fmt.Fscan(br, &key, &n, &mkey, &m); err != nil || key != "n" || mkey != "m" {
		return p, fmt.Errorf("profileio: expected n/m line (err %v)", err)
	}
	if n <= 0 || m <= 0 || m > n {
		return p, fmt.Errorf("profileio: invalid n=%d m=%d", n, m)
	}
	readHist := func(label string) (reuse.TailSum, error) {
		var got string
		var k int
		if _, err := fmt.Fscan(br, &got, &k); err != nil || got != label {
			return reuse.TailSum{}, fmt.Errorf("profileio: expected %s histogram (got %q, err %v)", label, got, err)
		}
		if k < 0 {
			return reuse.TailSum{}, fmt.Errorf("profileio: negative histogram size %d", k)
		}
		hist := make(map[int64]int64, k)
		for i := 0; i < k; i++ {
			var v, c int64
			if _, err := fmt.Fscan(br, &v, &c); err != nil {
				return reuse.TailSum{}, fmt.Errorf("profileio: truncated %s histogram: %w", label, err)
			}
			if v <= 0 || c <= 0 {
				return reuse.TailSum{}, fmt.Errorf("profileio: invalid %s entry %d %d", label, v, c)
			}
			hist[v] += c
		}
		return reuse.NewTailSum(hist), nil
	}
	var err error
	p.Reuse.N, p.Reuse.M = n, m
	if p.Reuse.Reuse, err = readHist("reuse"); err != nil {
		return p, err
	}
	if p.Reuse.First, err = readHist("first"); err != nil {
		return p, err
	}
	if p.Reuse.Last, err = readHist("last"); err != nil {
		return p, err
	}
	// Full-trace profiles have exactly n−m reuse pairs; sampled profiles
	// (reuse.CollectSampled) scale counts uniformly and may land a few
	// percent off in either direction, so allow 10% slack over n−m.
	if got := p.Reuse.Reuse.Total(); got > n-m+(n-m)/10+1 {
		return p, fmt.Errorf("profileio: reuse histogram total %d far exceeds n-m = %d", got, n-m)
	}
	if got := p.Reuse.First.Total(); got != m {
		return p, fmt.Errorf("profileio: first histogram total %d, want m = %d", got, m)
	}
	if got := p.Reuse.Last.Total(); got != m {
		return p, fmt.Errorf("profileio: last histogram total %d, want m = %d", got, m)
	}
	return p, nil
}

// WriteFile serializes the profile to path.
func WriteFile(path string, p Profile) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, p); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile parses the profile at path.
func ReadFile(path string) (Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return Profile{}, err
	}
	defer f.Close()
	p, err := Read(f)
	if err != nil {
		return Profile{}, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}
