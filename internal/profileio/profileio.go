// Package profileio reads and writes program locality profiles — the
// counterpart of the paper's per-program "footprint files" (§VII-A, 242 KB
// to 375 KB of ASCII per program) that the optimizer consumes.
//
// A profile stores the reuse-time, first-access, and last-access histograms
// plus the trace length, distinct-data count, and access rate. That is
// exactly the information the HOTL footprint formula needs, so the full
// footprint function (and from it any miss-ratio curve and any composition)
// is reconstructed losslessly.
//
// Format (ASCII, line oriented):
//
//	hotlprof v1
//	name <string>
//	rate <float>
//	n <int> m <int>
//	reuse <k>
//	<value> <count>     (k lines, ascending value)
//	first <k>
//	...
//	last <k>
//	...
package profileio

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"partitionshare/internal/atomicio"
	"partitionshare/internal/footprint"
	"partitionshare/internal/reuse"
)

// Typed sentinel errors for the read path. Profile files are user data —
// truncated downloads, hand-edited histograms, the wrong file entirely —
// so every parse or invariant failure is a wrapped sentinel the caller can
// test with errors.Is, never a panic.
var (
	// ErrCorrupt reports a file that does not parse as a profile or whose
	// contents violate the profile invariants.
	ErrCorrupt = errors.New("profileio: corrupt profile")
	// ErrUnsupportedVersion reports a well-formed header with a version
	// this build does not speak.
	ErrUnsupportedVersion = errors.New("profileio: unsupported profile version")
)

// maxHistEntries caps a histogram's declared entry count. A corrupt or
// hostile size field would otherwise pre-allocate unbounded memory before
// the first entry is read; real profiles have at most one entry per
// distinct reuse time, far below this.
const maxHistEntries = 1 << 28

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Profile is the serializable form of one program's locality profile.
type Profile struct {
	Name  string
	Rate  float64
	Reuse reuse.Profile
}

// Footprint wraps the profile for HOTL evaluation.
func (p Profile) Footprint() footprint.Footprint { return footprint.New(p.Reuse) }

// Validate checks that the profile is serializable and internally
// consistent: a whitespace-free name, a positive finite rate, and
// histograms satisfying the reuse.Profile invariants. Read runs it on
// every parsed file; Write runs it before emitting anything, so a profile
// that round-trips is valid by construction.
func (p Profile) Validate() error {
	if p.Name == "" || strings.ContainsAny(p.Name, " \t\n") {
		return corrupt("invalid name %q", p.Name)
	}
	if !(p.Rate > 0) || math.IsInf(p.Rate, 0) {
		return corrupt("invalid rate %v", p.Rate)
	}
	if err := p.Reuse.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return nil
}

// Write serializes the profile.
func Write(w io.Writer, p Profile) error {
	bw := bufio.NewWriter(w)
	if err := p.Validate(); err != nil {
		return err
	}
	fmt.Fprintln(bw, "hotlprof v1")
	fmt.Fprintf(bw, "name %s\n", p.Name)
	fmt.Fprintf(bw, "rate %g\n", p.Rate)
	fmt.Fprintf(bw, "n %d m %d\n", p.Reuse.N, p.Reuse.M)
	writeHist := func(label string, ts reuse.TailSum) {
		fmt.Fprintf(bw, "%s %d\n", label, ts.Len())
		ts.Each(func(v, c int64) {
			fmt.Fprintf(bw, "%d %d\n", v, c)
		})
	}
	writeHist("reuse", p.Reuse.Reuse)
	writeHist("first", p.Reuse.First)
	writeHist("last", p.Reuse.Last)
	return bw.Flush()
}

// Read parses a profile written by Write. Parse failures and invariant
// violations wrap ErrCorrupt; a recognised magic with an unknown version
// wraps ErrUnsupportedVersion. Histogram sizes and entry values are
// bounds-checked before any proportional allocation, so a truncated or
// hostile file fails fast instead of exhausting memory.
func Read(r io.Reader) (Profile, error) {
	br := bufio.NewReader(r)
	var p Profile
	var magic, version string
	if _, err := fmt.Fscan(br, &magic, &version); err != nil {
		return p, corrupt("bad header: %v", err)
	}
	if magic != "hotlprof" {
		return p, corrupt("bad magic %q", magic)
	}
	if version != "v1" {
		return p, fmt.Errorf("%w: %q (want v1)", ErrUnsupportedVersion, version)
	}
	var key string
	if _, err := fmt.Fscan(br, &key, &p.Name); err != nil || key != "name" {
		return p, corrupt("expected name line (err %v)", err)
	}
	if _, err := fmt.Fscan(br, &key, &p.Rate); err != nil || key != "rate" {
		return p, corrupt("expected rate line (err %v)", err)
	}
	var n, m int64
	var mkey string
	if _, err := fmt.Fscan(br, &key, &n, &mkey, &m); err != nil || key != "n" || mkey != "m" {
		return p, corrupt("expected n/m line (err %v)", err)
	}
	if n <= 0 || m <= 0 || m > n {
		return p, corrupt("invalid n=%d m=%d", n, m)
	}
	readHist := func(label string) (reuse.TailSum, error) {
		var got string
		var k int64
		if _, err := fmt.Fscan(br, &got, &k); err != nil || got != label {
			return reuse.TailSum{}, corrupt("expected %s histogram (got %q, err %v)", label, got, err)
		}
		if k < 0 || k > maxHistEntries || k > n {
			// At most one entry per distinct value, and values are bounded
			// by the trace length, so k > n can never be legitimate.
			return reuse.TailSum{}, corrupt("implausible %s histogram size %d (n=%d)", label, k, n)
		}
		hist := make(map[int64]int64, k)
		for i := int64(0); i < k; i++ {
			var v, c int64
			if _, err := fmt.Fscan(br, &v, &c); err != nil {
				return reuse.TailSum{}, corrupt("truncated %s histogram: %v", label, err)
			}
			if v <= 0 || v > n || c <= 0 {
				return reuse.TailSum{}, corrupt("invalid %s entry %d %d (n=%d)", label, v, c, n)
			}
			if hist[v]+c < hist[v] {
				return reuse.TailSum{}, corrupt("%s count overflow at value %d", label, v)
			}
			hist[v] += c
		}
		return reuse.NewTailSum(hist), nil
	}
	var err error
	p.Reuse.N, p.Reuse.M = n, m
	if p.Reuse.Reuse, err = readHist("reuse"); err != nil {
		return p, err
	}
	if p.Reuse.First, err = readHist("first"); err != nil {
		return p, err
	}
	if p.Reuse.Last, err = readHist("last"); err != nil {
		return p, err
	}
	if err := p.Validate(); err != nil {
		return p, err
	}
	return p, nil
}

// WriteFile serializes the profile to path atomically (write-temp+rename):
// an interrupted write leaves any previous profile intact, never a torn
// file.
func WriteFile(path string, p Profile) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		return Write(w, p)
	})
}

// ReadFile parses the profile at path.
func ReadFile(path string) (Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return Profile{}, err
	}
	defer f.Close()
	p, err := Read(f)
	if err != nil {
		return Profile{}, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}
