package benchdiff

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSnap writes a snapshot file with the given labels to dir/name and
// returns its path.
func writeSnap(t *testing.T, dir, name string, snaps map[string]Snapshot) string {
	t.Helper()
	f := File{GoOS: "linux", GoArch: "amd64", CPUs: 8, Snapshots: snaps}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// Load round-trips the benchsnap schema and rejects empty or corrupt
// files before any comparison work.
func TestLoad(t *testing.T) {
	dir := t.TempDir()
	path := writeSnap(t, dir, "BENCH_PR1.json", map[string]Snapshot{
		"pr1": {"TableI": 100},
	})
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Snapshots["pr1"]["TableI"] != 100 {
		t.Errorf("loaded snapshot = %v", f.Snapshots)
	}

	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("Load of missing file succeeded")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("Load of corrupt JSON succeeded")
	}
	empty := writeSnap(t, dir, "empty.json", map[string]Snapshot{})
	if _, err := Load(empty); err == nil {
		t.Error("Load of label-free file succeeded")
	}
}

// ChooseLabel: explicit wins, then the BENCH_<label>.json filename
// convention, then a lone label; multiple labels with no hint is an
// error that names the candidates.
func TestChooseLabel(t *testing.T) {
	dir := t.TempDir()
	multi := map[string]Snapshot{"pr1": {"a": 1}, "pr4": {"a": 2}}
	path := writeSnap(t, dir, "BENCH_PR4.json", multi)
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}

	if got, err := ChooseLabel(f, path, "pr1"); err != nil || got != "pr1" {
		t.Errorf("explicit label = (%q, %v), want pr1", got, err)
	}
	if _, err := ChooseLabel(f, path, "nope"); err == nil {
		t.Error("explicit missing label accepted")
	}
	if got, err := ChooseLabel(f, path, ""); err != nil || got != "pr4" {
		t.Errorf("filename-derived label = (%q, %v), want pr4", got, err)
	}

	odd := writeSnap(t, dir, "results.json", map[string]Snapshot{"seed": {"a": 1}})
	fo, err := Load(odd)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := ChooseLabel(fo, odd, ""); err != nil || got != "seed" {
		t.Errorf("single-label fallback = (%q, %v), want seed", got, err)
	}

	amb := writeSnap(t, dir, "results2.json", multi)
	fa, err := Load(amb)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ChooseLabel(fa, amb, ""); err == nil {
		t.Error("ambiguous labels with no hint accepted")
	}
}

// Diff pairs benchmarks by name, computes percentage deltas for common
// ones, and keeps one-sided entries visible with a zero missing side.
func TestDiff(t *testing.T) {
	old := Snapshot{"common": 100, "removed": 50, "steady": 40}
	new := Snapshot{"common": 150, "added": 30, "steady": 40}
	deltas := Diff(old, new)
	if len(deltas) != 4 {
		t.Fatalf("deltas = %d, want 4", len(deltas))
	}
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if d := byName["common"]; !d.Both() || d.Pct != 50 {
		t.Errorf("common delta = %+v, want +50%%", d)
	}
	if d := byName["steady"]; d.Pct != 0 {
		t.Errorf("steady delta = %+v, want 0%%", d)
	}
	if d := byName["removed"]; d.NewNS != 0 || d.Both() {
		t.Errorf("removed delta = %+v, want one-sided", d)
	}
	if d := byName["added"]; d.OldNS != 0 || d.Both() {
		t.Errorf("added delta = %+v, want one-sided", d)
	}
	for i := 1; i < len(deltas); i++ {
		if deltas[i].Name < deltas[i-1].Name {
			t.Fatal("deltas not sorted by name")
		}
	}
}

// Regressions flags only both-sided slowdowns past the threshold — a
// synthetic +50% regression must trip it, improvements and one-sided
// entries must not.
func TestRegressions(t *testing.T) {
	deltas := Diff(
		Snapshot{"slow": 100, "fast": 100, "gone": 100, "edge": 100},
		Snapshot{"slow": 150, "fast": 50, "new": 100, "edge": 110},
	)
	regs := Regressions(deltas, 10)
	if len(regs) != 1 || regs[0].Name != "slow" {
		t.Fatalf("regressions at 10%% = %+v, want just slow", regs)
	}
	// edge is exactly +10%: not strictly greater, so not a regression.
	if regs := Regressions(deltas, 0); len(regs) != 1 || regs[0].Name != "slow" {
		t.Errorf("default-threshold regressions = %+v, want just slow", regs)
	}
	if regs := Regressions(deltas, 60); len(regs) != 0 {
		t.Errorf("regressions at 60%% = %+v, want none", regs)
	}
}

// Format renders an aligned header + one row per delta, with "-" for
// one-sided values.
func TestFormat(t *testing.T) {
	deltas := Diff(Snapshot{"a": 100, "gone": 10}, Snapshot{"a": 110})
	out := Format(deltas, "pr1", "pr5")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("table lines = %d, want 3:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "pr1 ns/op") || !strings.Contains(lines[0], "pr5 ns/op") {
		t.Errorf("header lacks labels: %q", lines[0])
	}
	if !strings.Contains(lines[1], "+10.00%") {
		t.Errorf("row a lacks delta: %q", lines[1])
	}
	if !strings.Contains(lines[2], "-") {
		t.Errorf("one-sided row lacks placeholder: %q", lines[2])
	}
}
