// Package benchdiff compares two benchsnap snapshot files benchstat-style:
// it loads the name → ns/op tables recorded under labels, computes
// per-benchmark deltas, renders them as an aligned text table, and flags
// regressions past a percentage threshold. cmd/benchdiff is the CLI; the
// logic lives here so it is unit-testable without fixture processes.
package benchdiff

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// DefaultThresholdPct is the regression threshold when the caller does
// not set one: a benchmark must slow down by more than this percentage
// to count as a regression. Benchmarks on this hardware are noisy at the
// few-percent level, so the default is deliberately coarse.
const DefaultThresholdPct = 10.0

// Snapshot maps a benchmark name to nanoseconds per operation — one
// label's column in a snapshot file.
type Snapshot map[string]int64

// File is the on-disk benchsnap snapshot schema. A file accumulates one
// Snapshot per label (e.g. "seed", "pr1", "pr5") so a single artifact
// documents a sequence of measurements on the same machine.
type File struct {
	GoOS      string              `json:"goos"`
	GoArch    string              `json:"goarch"`
	CPUs      int                 `json:"cpus"`
	Snapshots map[string]Snapshot `json:"snapshots"`
}

// Load reads and parses a snapshot file.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f := &File{}
	if err := json.Unmarshal(data, f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(f.Snapshots) == 0 {
		return nil, fmt.Errorf("%s: no snapshot labels", path)
	}
	return f, nil
}

// Labels returns the file's snapshot labels, sorted.
func (f *File) Labels() []string {
	labels := make([]string, 0, len(f.Snapshots))
	for l := range f.Snapshots {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return labels
}

// ChooseLabel picks which of the file's labels to compare. An explicit
// label wins (and must exist). Otherwise the filename convention decides:
// BENCH_PR4.json carries a "pr4" column, so the lowercased stem after
// "BENCH_" is tried first. A single-label file is unambiguous regardless
// of its name. Anything else is an error naming the candidates.
func ChooseLabel(f *File, path, explicit string) (string, error) {
	if explicit != "" {
		if _, ok := f.Snapshots[explicit]; !ok {
			return "", fmt.Errorf("%s: no label %q (have %v)", path, explicit, f.Labels())
		}
		return explicit, nil
	}
	base := strings.ToLower(filepath.Base(path))
	base = strings.TrimSuffix(base, filepath.Ext(base))
	if stem, ok := strings.CutPrefix(base, "bench_"); ok {
		if _, ok := f.Snapshots[stem]; ok {
			return stem, nil
		}
	}
	if labels := f.Labels(); len(labels) == 1 {
		return labels[0], nil
	}
	return "", fmt.Errorf("%s: ambiguous labels %v, pick one explicitly", path, f.Labels())
}

// A Delta is one benchmark's comparison. A zero OldNS or NewNS means the
// benchmark exists on only one side; Pct is meaningful only when both
// sides are present and positive.
type Delta struct {
	Name  string
	OldNS int64
	NewNS int64
	Pct   float64 // 100 * (new - old) / old
}

// Both reports whether the benchmark was measured on both sides.
func (d Delta) Both() bool { return d.OldNS > 0 && d.NewNS > 0 }

// Diff compares two snapshots benchmark-by-benchmark, returning one
// Delta per name from either side, sorted by name.
func Diff(old, new Snapshot) []Delta {
	names := map[string]bool{}
	for n := range old {
		names[n] = true
	}
	for n := range new {
		names[n] = true
	}
	deltas := make([]Delta, 0, len(names))
	for n := range names {
		d := Delta{Name: n, OldNS: old[n], NewNS: new[n]}
		if d.Both() {
			d.Pct = 100 * (float64(d.NewNS) - float64(d.OldNS)) / float64(d.OldNS)
		}
		deltas = append(deltas, d)
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	return deltas
}

// Regressions returns the deltas measured on both sides whose slowdown
// exceeds thresholdPct (<= 0 selects DefaultThresholdPct).
func Regressions(deltas []Delta, thresholdPct float64) []Delta {
	if thresholdPct <= 0 {
		thresholdPct = DefaultThresholdPct
	}
	var out []Delta
	for _, d := range deltas {
		if d.Both() && d.Pct > thresholdPct {
			out = append(out, d)
		}
	}
	return out
}

// Format renders the deltas as an aligned table with oldLabel/newLabel
// column headers. One-sided benchmarks show "-" on the missing side.
func Format(deltas []Delta, oldLabel, newLabel string) string {
	nameW := len("benchmark")
	for _, d := range deltas {
		if len(d.Name) > nameW {
			nameW = len(d.Name)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s  %14s  %14s  %9s\n", nameW, "benchmark",
		oldLabel+" ns/op", newLabel+" ns/op", "delta")
	for _, d := range deltas {
		oldCol, newCol, pctCol := "-", "-", "-"
		if d.OldNS > 0 {
			oldCol = fmt.Sprintf("%d", d.OldNS)
		}
		if d.NewNS > 0 {
			newCol = fmt.Sprintf("%d", d.NewNS)
		}
		if d.Both() {
			pctCol = fmt.Sprintf("%+.2f%%", d.Pct)
		}
		fmt.Fprintf(&b, "%-*s  %14s  %14s  %9s\n", nameW, d.Name, oldCol, newCol, pctCol)
	}
	return b.String()
}
