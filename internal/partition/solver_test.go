package partition

import (
	"math"
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"

	"partitionshare/internal/mrc"
)

// allSolvers enumerates every forced mode plus auto.
var allSolvers = []Solver{SolverAuto, SolverExact, SolverDC, SolverRefine}

// checkBitExact asserts that solving pr under every solver mode yields the
// reference solution bit for bit: objective, allocation, and tie-breaking.
func checkBitExact(t *testing.T, pr Problem, label string) {
	t.Helper()
	ref, err := ReferenceOptimize(pr)
	if err != nil {
		t.Fatalf("%s: reference: %v", label, err)
	}
	for _, sv := range allSolvers {
		pr.Solver = sv
		got, err := Optimize(pr)
		if err != nil {
			t.Fatalf("%s solver=%v: %v", label, sv, err)
		}
		if got.Objective != ref.Objective {
			t.Errorf("%s solver=%v (path %s): objective %v, reference %v",
				label, sv, got.SolverPath, got.Objective, ref.Objective)
		}
		if !reflect.DeepEqual(got.Alloc, ref.Alloc) {
			t.Errorf("%s solver=%v (path %s): alloc %v, reference %v",
				label, sv, got.SolverPath, got.Alloc, ref.Alloc)
		}
	}
}

func TestSolverModesBitExactRandom(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		n := int(seed%4) + 2
		units := int(seed%50) + 8
		pr := randProblem(seed, n, units)
		checkBitExact(t, pr, "random")
	}
}

// TestNonConvexForcedDCFallsBack feeds adversarial non-convex cost curves
// (sawtooth, random jumps, a flat row with one spike) through SolverDC:
// the convexity certificate must reject every layer, the path must report
// the exact kernel ran, and the result must match the reference bit for
// bit.
func TestNonConvexForcedDCFallsBack(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	units := 700 // above dcAutoMinWindow so d&c would fire if certified
	mk := func(f func(u int) float64) []float64 {
		row := make([]float64, units+1)
		for u := range row {
			row[u] = f(u)
		}
		return row
	}
	tab := [][]float64{
		mk(func(u int) float64 { // sawtooth: strictly non-convex everywhere
			return float64(1000-u) + 40*float64(u%2)
		}),
		mk(func(u int) float64 { // random jumps
			return rng.Float64() * 1000
		}),
		mk(func(u int) float64 { // flat with one concave spike
			if u == units/2 {
				return 2000
			}
			return 500
		}),
	}
	curves := make([]mrc.Curve, len(tab))
	for p := range curves {
		curves[p] = mkCurve("nc", 1000, 1, 0.5)
	}
	pr := Problem{Curves: curves, Units: units, CostTable: tab, Solver: SolverDC}
	got, err := Optimize(pr)
	if err != nil {
		t.Fatal(err)
	}
	if got.SolverPath != "exact" {
		t.Errorf("non-convex forced dc: path %q, want %q (certificate must reject)", got.SolverPath, "exact")
	}
	pr.Solver = SolverAuto
	checkBitExact(t, pr, "non-convex")
}

// TestConvexForcedDCFires builds exactly convex cost rows and checks the
// d&c/SMAWK rung both fires and matches the reference.
func TestConvexForcedDCFires(t *testing.T) {
	units := 900
	n := 3
	tab := make([][]float64, n)
	for p := range tab {
		row := make([]float64, units+1)
		for u := range row {
			d := float64(u - 200*(p+1))
			row[u] = d * d // exactly convex in float64 for |d| ≤ 2^26
		}
		tab[p] = row
	}
	curves := make([]mrc.Curve, n)
	for p := range curves {
		curves[p] = mkCurve("cv", 1000, 1, 0.5)
	}
	pr := Problem{Curves: curves, Units: units, CostTable: tab, Solver: SolverDC}
	got, err := Optimize(pr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got.SolverPath, "dc") {
		t.Errorf("convex forced dc: path %q, want a dc rung", got.SolverPath)
	}
	checkBitExact(t, pr, "convex")
}

// TestRefineDifferentialLargeC checks the refinement rung end to end on
// realistic random curves at sizes where auto mode selects it, against
// the forced-exact kernel and the reference.
func TestRefineDifferentialLargeC(t *testing.T) {
	if testing.Short() {
		t.Skip("large-C differential in -short mode")
	}
	for _, units := range []int{512, 1024, 2048} {
		for seed := uint64(1); seed <= 3; seed++ {
			pr := randProblem(seed, 3, units)
			pr.Solver = SolverRefine
			got, err := Optimize(pr)
			if err != nil {
				t.Fatal(err)
			}
			pr.Solver = SolverExact
			want, err := Optimize(pr)
			if err != nil {
				t.Fatal(err)
			}
			if got.Objective != want.Objective || !reflect.DeepEqual(got.Alloc, want.Alloc) {
				t.Errorf("units=%d seed=%d: refine (path %s) %v/%v vs exact %v/%v",
					units, seed, got.SolverPath, got.Objective, got.Alloc, want.Objective, want.Alloc)
			}
		}
	}
	// One reference-sized instance with the full bit-exactness cross-check.
	pr := randProblem(99, 4, 512)
	checkBitExact(t, pr, "refine-range")
}

// TestRefineAutoFires asserts auto mode actually takes the refinement rung
// at large C on well-behaved curves, and that bounds or minimax disable it.
func TestRefineAutoFires(t *testing.T) {
	pr := randProblem(5, 4, refineAutoMinUnits)
	got, err := Optimize(pr)
	if err != nil {
		t.Fatal(err)
	}
	if got.SolverPath != "refine" {
		t.Errorf("auto at C=%d: path %q, want %q", refineAutoMinUnits, got.SolverPath, "refine")
	}

	// Per-program bounds make the instance ineligible; auto must still solve
	// it exactly through the per-layer ladder.
	prB := randProblem(5, 4, refineAutoMinUnits)
	prB.MinAlloc = []int{10, 0, 0, 0}
	sol, err := Optimize(prB)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Alloc[0] < 10 {
		t.Errorf("bounds violated: %v", sol.Alloc)
	}
	if strings.Contains(sol.SolverPath, "refine") && sol.SolverPath == "refine" {
		t.Errorf("bounded instance took refine path: %q", sol.SolverPath)
	}
	ref, err := ReferenceOptimize(prB)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != ref.Objective || !reflect.DeepEqual(sol.Alloc, ref.Alloc) {
		t.Errorf("bounded large-C: %v/%v vs reference %v/%v", sol.Objective, sol.Alloc, ref.Objective, ref.Alloc)
	}

	prM := randProblem(5, 3, refineAutoMinUnits)
	prM.Combine = Minimax
	solM, err := Optimize(prM)
	if err != nil {
		t.Fatal(err)
	}
	if solM.SolverPath != "exact" {
		t.Errorf("minimax large-C: path %q, want exact", solM.SolverPath)
	}
}

// TestRefineNegativeCostsFallBack: negative custom costs must be declined
// by the refinement certificate (relative pruning margins are unsound
// under cancellation) and still solve bit-exactly.
func TestRefineNegativeCostsFallBack(t *testing.T) {
	units := 600
	n := 3
	rng := rand.New(rand.NewPCG(3, 9))
	tab := make([][]float64, n)
	for p := range tab {
		row := make([]float64, units+1)
		for u := range row {
			row[u] = rng.Float64()*200 - 100
		}
		tab[p] = row
	}
	curves := make([]mrc.Curve, n)
	for p := range curves {
		curves[p] = mkCurve("neg", 1000, 1, 0.5)
	}
	pr := Problem{Curves: curves, Units: units, CostTable: tab, Solver: SolverRefine}
	got, err := Optimize(pr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(got.SolverPath, "refine-fallback+") {
		t.Errorf("negative costs: path %q, want refine-fallback prefix", got.SolverPath)
	}
	pr.Solver = SolverAuto
	checkBitExact(t, pr, "negative-costs")
}

// TestSMAWKMatchesDirectScan cross-checks smawkSolve against a direct
// leftmost-argmin scan on random Monge matrices built as dp[j] + convex
// offsets — the exact shape dcLayer feeds it.
func TestSMAWKMatchesDirectScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 23))
	for trial := 0; trial < 30; trial++ {
		nRows := rng.IntN(120) + 1
		nCols := rng.IntN(120) + 1
		dp := make([]float64, nCols)
		for j := range dp {
			dp[j] = rng.Float64() * 100
		}
		// Convex offsets with random (non-negative) second differences;
		// duplicate plateaus exercise tie handling.
		off := make([]float64, nRows+nCols)
		slope := rng.Float64() * 2
		for i := 1; i < len(off); i++ {
			off[i] = off[i-1] + slope
			if rng.IntN(3) == 0 {
				slope += rng.Float64()
			}
		}
		A := func(t, j int) float64 { return dp[j] + off[t-j+nCols-1] }
		rows := make([]int, nRows)
		for i := range rows {
			rows[i] = i
		}
		cols := make([]int, nCols)
		for j := range cols {
			cols[j] = j
		}
		arg := smawkSolve(rows, cols, A)
		for i, r := range rows {
			bestV := A(r, 0)
			for j := 1; j < nCols; j++ {
				if A(r, j) < bestV {
					bestV = A(r, j)
				}
			}
			if got := A(r, arg[i]); got != bestV {
				t.Fatalf("trial %d row %d: smawk value %v, direct %v", trial, r, got, bestV)
			}
		}
		for i := 1; i < len(arg); i++ {
			if arg[i] < arg[i-1] {
				t.Fatalf("trial %d: argmins not monotone: %v", trial, arg)
			}
		}
	}
}

func TestSecondDiffNonnegExact(t *testing.T) {
	cases := []struct {
		a, b, c float64
		want    bool
	}{
		{0, 0, 0, true},
		{1, 1, 1, true},
		{1, 2, 3, true}, // exactly linear
		{1, 2, 2.5, false},
		{1e16, 1e16 + 1, 1e16 + 2, true}, // linear at the ulp edge
		{1e16, 1e16 + 2, 1e16 + 2, false},
		// fl(0.1)+fl(0.3) = 0.39999999999999999444… < 2·fl(0.2) =
		// 0.40000000000000002220… over the reals: the stored values are
		// *not* convex here even though the real numbers 0.1, 0.2, 0.3 are
		// linear — exactly the distinction the exact test must draw.
		{0.1, 0.2, 0.3, false},
	}
	for _, tc := range cases {
		if got := secondDiffNonneg(tc.a, tc.b, tc.c); got != tc.want {
			t.Errorf("secondDiffNonneg(%v,%v,%v) = %v, want %v", tc.a, tc.b, tc.c, got, tc.want)
		}
	}
}

func TestValidateSizeGuards(t *testing.T) {
	c := mkCurve("g", 100, 1, 0.5)
	pr := Problem{Curves: []mrc.Curve{c}, Units: MaxUnits + 1}
	if _, err := Optimize(pr); err == nil {
		t.Error("Units > MaxUnits accepted")
	}
	// Enough programs to push the cell product over maxSolveCells without
	// allocating anything: validate must fail before the DP allocates.
	many := make([]mrc.Curve, 20000)
	for i := range many {
		many[i] = c
	}
	pr = Problem{Curves: many, Units: 1 << 16}
	if _, err := Optimize(pr); err == nil {
		t.Error("oversized DP table accepted")
	}
}

// TestScratchPoolDropsOversized: solves beyond maxPooledCells must not pin
// their scratch in the pool (allocation-churn guard for C=65536 audits).
func TestScratchPoolDropsOversized(t *testing.T) {
	s := getScratch(3, 1<<21) // (3+1)·(2^21+1) cells > maxPooledCells
	if int64(len(s.buf)) <= maxPooledCells {
		t.Fatalf("test geometry wrong: buf %d cells", len(s.buf))
	}
	putScratch(s)
	s2 := getScratch(1, 4)
	if len(s2.buf) > 64 {
		t.Errorf("pool returned oversized scratch (%d cells) after put", len(s2.buf))
	}
	putScratch(s2)
}

func TestParseSolverRoundTrip(t *testing.T) {
	for _, sv := range allSolvers {
		got, err := ParseSolver(sv.String())
		if err != nil || got != sv {
			t.Errorf("ParseSolver(%q) = %v, %v", sv.String(), got, err)
		}
	}
	if got, err := ParseSolver(""); err != nil || got != SolverAuto {
		t.Errorf("ParseSolver(\"\") = %v, %v", got, err)
	}
	if _, err := ParseSolver("bogus"); err == nil {
		t.Error("ParseSolver(bogus) accepted")
	}
}

// TestRefineMatchesExactOnCostTables runs the refinement rung against
// forced-exact on piecewise-flat cost tables with long plateaus — the
// shape that stresses tie-breaking, since thousands of allocations share
// the optimal objective.
func TestRefineMatchesExactOnCostTables(t *testing.T) {
	units := 1024
	n := 4
	rng := rand.New(rand.NewPCG(21, 34))
	tab := make([][]float64, n)
	for p := range tab {
		row := make([]float64, units+1)
		v := 1000 * rng.Float64()
		for u := range row {
			row[u] = v
			if rng.IntN(64) == 0 {
				v *= rng.Float64()
			}
		}
		tab[p] = row
	}
	curves := make([]mrc.Curve, n)
	for p := range curves {
		curves[p] = mkCurve("pl", 1000, 1, 0.5)
	}
	pr := Problem{Curves: curves, Units: units, CostTable: tab}
	checkBitExact(t, pr, "plateaus")
	pr.Solver = SolverRefine
	got, err := Optimize(pr)
	if err != nil {
		t.Fatal(err)
	}
	if got.SolverPath != "refine" && !strings.HasPrefix(got.SolverPath, "refine-fallback+") {
		t.Errorf("plateaus forced refine: path %q", got.SolverPath)
	}
}

// TestLargeCParallelMatches: OptimizeParallel at a refine-eligible size
// must agree with sequential regardless of worker count.
func TestLargeCParallelMatches(t *testing.T) {
	pr := randProblem(8, 3, 2048)
	seq, err := Optimize(pr)
	if err != nil {
		t.Fatal(err)
	}
	par, err := OptimizeParallel(nil, pr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if par.Objective != seq.Objective || !reflect.DeepEqual(par.Alloc, seq.Alloc) {
		t.Errorf("parallel (path %s) %v/%v vs sequential (path %s) %v/%v",
			par.SolverPath, par.Objective, par.Alloc, seq.SolverPath, seq.Objective, seq.Alloc)
	}
	if math.Abs(par.GroupMissRatio-seq.GroupMissRatio) > 0 {
		t.Errorf("group miss ratio drifted: %v vs %v", par.GroupMissRatio, seq.GroupMissRatio)
	}
}
