package partition

import (
	"fmt"
	"math"

	"partitionshare/internal/mrc"
)

// QoSMinAlloc returns, for each program, the smallest allocation meeting
// its miss-ratio ceiling (quality-of-service target). A NaN or +Inf entry
// means "no target". It returns an error naming the first program whose
// target is unreachable even with the whole cache.
func QoSMinAlloc(curves []mrc.Curve, maxMR []float64) ([]int, error) {
	if len(curves) != len(maxMR) {
		return nil, fmt.Errorf("partition: %d curves but %d QoS targets", len(curves), len(maxMR))
	}
	mins := make([]int, len(curves))
	for p, c := range curves {
		target := maxMR[p]
		switch {
		case target < 0:
			return nil, fmt.Errorf("partition: program %q has negative QoS target %v", c.Name, target)
		case math.IsNaN(target) || target >= 1:
			mins[p] = 0
			continue
		}
		u := 0
		for ; u <= c.Units(); u++ {
			if c.MissRatio(u) <= target+1e-15 {
				break
			}
		}
		if u > c.Units() {
			return nil, fmt.Errorf("partition: program %q cannot reach miss ratio %v even with the whole cache (best %v)",
				c.Name, target, c.MissRatio(c.Units()))
		}
		mins[p] = u
	}
	return mins, nil
}

// OptimizeElastic implements elastic cache utility (the RECU approach the
// paper cites [18]): each program is guaranteed to perform no worse than
// it would with a lambda-fraction of its equal share (lambda in [0,1]).
// lambda = 1 is the paper's Equal baseline; lambda = 0 is unconstrained
// Optimal; values between trade fairness for throughput smoothly.
func OptimizeElastic(curves []mrc.Curve, units int, lambda float64) (Solution, error) {
	if lambda < 0 || lambda > 1 {
		return Solution{}, fmt.Errorf("partition: elastic lambda %v outside [0,1]", lambda)
	}
	equal := EqualAllocation(len(curves), units)
	shrunk := make(Allocation, len(curves))
	for p, u := range equal {
		shrunk[p] = int(lambda * float64(u))
	}
	return Optimize(Problem{
		Curves:   curves,
		Units:    units,
		MinAlloc: BaselineMinAlloc(curves, shrunk, DefaultBaselineTolerance),
	})
}

// OptimizeWithQoS minimizes the group miss count subject to each program
// meeting its miss-ratio ceiling (paper §V-B: the DP "can optimize for any
// objective function, for example, fairness and quality of service"). An
// entry of NaN or >= 1 in maxMR leaves that program unconstrained. It
// returns an error when the ceilings are individually unreachable or
// jointly exceed the cache.
func OptimizeWithQoS(curves []mrc.Curve, units int, maxMR []float64) (Solution, error) {
	mins, err := QoSMinAlloc(curves, maxMR)
	if err != nil {
		return Solution{}, err
	}
	sum := 0
	for _, m := range mins {
		sum += m
	}
	if sum > units {
		return Solution{}, fmt.Errorf("partition: QoS targets need %d units but the cache has %d", sum, units)
	}
	return Optimize(Problem{Curves: curves, Units: units, MinAlloc: mins})
}
