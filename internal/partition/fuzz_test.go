package partition

import (
	"testing"

	"partitionshare/internal/mrc"
)

// fuzzProblem decodes arbitrary fuzz bytes into a partitioning instance:
// byte 0 picks the program count, byte 1 the unit count, byte 2 the
// solver selection (auto, exact, forced d&c, forced refinement — the
// forced rungs must still match the reference bit-for-bit, falling back
// wherever their certificates reject the instance), and the rest become
// miss-ratio points in [0, 1] — arbitrary shapes, including non-monotone
// and non-convex curves, since the DP claims optimality with no
// assumptions on the curves.
func fuzzProblem(data []byte) (Problem, bool) {
	if len(data) < 3 {
		return Problem{}, false
	}
	n := int(data[0])%3 + 2      // 2..4 programs
	units := int(data[1])%24 + 2 // 2..25 units
	solver := Solver(int(data[2]) % 4)
	data = data[3:]
	curves := make([]mrc.Curve, n)
	for p := range curves {
		mr := make([]float64, units+1)
		for u := range mr {
			var b byte = 128
			if len(data) > 0 {
				b, data = data[0], data[1:]
			}
			mr[u] = float64(b) / 255
		}
		curves[p] = mrc.Curve{Name: "f", MR: mr, Accesses: int64(100 * (p + 1))}
	}
	return Problem{Curves: curves, Units: units, Solver: solver}, true
}

// FuzzOptimize differentially tests the pooled gather-form DP kernel
// against the straightforward reference DP on arbitrary curves: both must
// agree bit-for-bit (objective, allocation, tie-breaking) and never
// panic. The parallel solver must agree too.
func FuzzOptimize(f *testing.F) {
	f.Add([]byte{2, 8, 200, 150, 100, 50, 25, 10, 5, 1})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{3, 23, 255, 0, 255, 0, 255, 0, 128, 128, 64, 32})
	// One seed per forced solver rung: exact, d&c, refinement.
	f.Add([]byte{2, 20, 1, 240, 200, 160, 120, 90, 60, 40, 20, 10})
	f.Add([]byte{2, 20, 2, 240, 200, 160, 120, 90, 60, 40, 20, 10})
	f.Add([]byte{2, 20, 3, 240, 200, 160, 120, 90, 60, 40, 20, 10})

	f.Fuzz(func(t *testing.T, data []byte) {
		pr, ok := fuzzProblem(data)
		if !ok {
			return
		}
		// The reference is solver-blind; the selection must not change
		// results, only the computation strategy.
		refPr := pr
		refPr.Solver = SolverAuto
		want, errRef := ReferenceOptimize(refPr)
		got, errOpt := Optimize(pr)
		if (errRef == nil) != (errOpt == nil) {
			t.Fatalf("error disagreement: reference %v, optimized %v", errRef, errOpt)
		}
		if errRef != nil {
			return
		}
		if got.Objective != want.Objective {
			t.Fatalf("objective %v != reference %v", got.Objective, want.Objective)
		}
		for i := range want.Alloc {
			if got.Alloc[i] != want.Alloc[i] {
				t.Fatalf("alloc %v != reference %v", got.Alloc, want.Alloc)
			}
		}
		par, err := OptimizeParallel(nil, pr, 3)
		if err != nil {
			t.Fatalf("parallel solve failed: %v", err)
		}
		if par.Objective != want.Objective {
			t.Fatalf("parallel objective %v != reference %v", par.Objective, want.Objective)
		}
	})
}
