package partition

import (
	"testing"

	"partitionshare/internal/mrc"
)

// fuzzProblem decodes arbitrary fuzz bytes into a partitioning instance:
// byte 0 picks the program count, byte 1 the unit count, and the rest
// become miss-ratio points in [0, 1] — arbitrary shapes, including
// non-monotone and non-convex curves, since the DP claims optimality with
// no assumptions on the curves.
func fuzzProblem(data []byte) (Problem, bool) {
	if len(data) < 2 {
		return Problem{}, false
	}
	n := int(data[0])%3 + 2      // 2..4 programs
	units := int(data[1])%24 + 2 // 2..25 units
	data = data[2:]
	curves := make([]mrc.Curve, n)
	for p := range curves {
		mr := make([]float64, units+1)
		for u := range mr {
			var b byte = 128
			if len(data) > 0 {
				b, data = data[0], data[1:]
			}
			mr[u] = float64(b) / 255
		}
		curves[p] = mrc.Curve{Name: "f", MR: mr, Accesses: int64(100 * (p + 1))}
	}
	return Problem{Curves: curves, Units: units}, true
}

// FuzzOptimize differentially tests the pooled gather-form DP kernel
// against the straightforward reference DP on arbitrary curves: both must
// agree bit-for-bit (objective, allocation, tie-breaking) and never
// panic. The parallel solver must agree too.
func FuzzOptimize(f *testing.F) {
	f.Add([]byte{2, 8, 200, 150, 100, 50, 25, 10, 5, 1})
	f.Add([]byte{0, 0})
	f.Add([]byte{3, 23, 255, 0, 255, 0, 255, 0, 128, 128, 64, 32})

	f.Fuzz(func(t *testing.T, data []byte) {
		pr, ok := fuzzProblem(data)
		if !ok {
			return
		}
		want, errRef := ReferenceOptimize(pr)
		got, errOpt := Optimize(pr)
		if (errRef == nil) != (errOpt == nil) {
			t.Fatalf("error disagreement: reference %v, optimized %v", errRef, errOpt)
		}
		if errRef != nil {
			return
		}
		if got.Objective != want.Objective {
			t.Fatalf("objective %v != reference %v", got.Objective, want.Objective)
		}
		for i := range want.Alloc {
			if got.Alloc[i] != want.Alloc[i] {
				t.Fatalf("alloc %v != reference %v", got.Alloc, want.Alloc)
			}
		}
		par, err := OptimizeParallel(nil, pr, 3)
		if err != nil {
			t.Fatalf("parallel solve failed: %v", err)
		}
		if par.Objective != want.Objective {
			t.Fatalf("parallel objective %v != reference %v", par.Objective, want.Objective)
		}
	})
}
