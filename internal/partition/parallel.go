package partition

import (
	"context"
	"runtime"
	"sync"

	"partitionshare/internal/obs"
)

// OptimizeParallel computes the same optimum as Optimize but parallelizes
// each DP layer across CPUs. Within one layer (one program), the cell
// next[t] = min over u of combine(dp[t−u], cost(u)) depends only on the
// previous layer, so targets t are embarrassingly parallel; layers remain
// sequential. Useful at fine granularity (large C), where the O(P·C²) DP
// dominates: the paper chose 8 KB units specifically to keep this cost
// down (§VII-A) — parallelism is the other lever.
//
// The workers form a persistent pool created once per solve and
// resynchronized at each layer by a lightweight release/arrive barrier, so
// a solve costs `workers` goroutine creations rather than `workers × P`.
// Because every worker runs the same gather kernel as the serial path over
// a disjoint chunk of cells, the result — objective, allocation, and
// tie-breaking — is bit-identical to Optimize's for any worker count.
//
// Cancellation is checked between DP layers (each layer is a short,
// bounded burst of work); a cancelled solve returns ctx.Err() with the
// pool fully drained.
func OptimizeParallel(ctx context.Context, pr Problem, workers int) (Solution, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return solve(ctx, &pr, workers)
}

// dpPool is a persistent pool of DP-layer workers. The coordinator
// publishes the layer spec, releases each helper through its start channel,
// computes its own chunk, and waits on the barrier; channel send/receive
// pairs order the spec writes before the helpers' reads, and the WaitGroup
// orders the helpers' cell writes before the coordinator's buffer swap.
type dpPool struct {
	spec  *layerSpec
	cells int // C+1
	chunk int
	start []chan struct{} // one per helper (workers−1)
	wg    sync.WaitGroup
}

func newDPPool(workers, C int) *dpPool {
	cells := C + 1
	if workers > cells {
		workers = cells
	}
	p := &dpPool{
		cells: cells,
		chunk: (cells + workers - 1) / workers,
		start: make([]chan struct{}, workers-1),
	}
	for i := range p.start {
		p.start[i] = make(chan struct{}, 1)
		go p.helper(i)
	}
	return p
}

// helper processes chunk i+1 (the coordinator keeps chunk 0) each time it
// is released, until its start channel is closed. Per-worker tallies are
// kept in locals and flushed to the registry once at worker exit, so
// instrumentation adds zero synchronization to the layer barrier.
func (p *dpPool) helper(i int) {
	tLo := (i + 1) * p.chunk
	tHi := tLo + p.chunk - 1
	if tHi > p.cells-1 {
		tHi = p.cells - 1
	}
	var layers, cells int64
	for range p.start[i] {
		if tLo <= tHi {
			runLayerRange(p.spec, tLo, tHi)
			layers++
			cells += int64(tHi - tLo + 1)
		}
		p.wg.Done()
	}
	if reg := obs.Enabled(); reg != nil && layers > 0 {
		reg.Counter(mPoolWorkerLayers).Add(layers)
		reg.Counter(mPoolWorkerCells).Add(cells)
	}
}

// runLayer executes one DP layer across the pool and returns when every
// cell of next (and the layer's choice row) is written.
func (p *dpPool) runLayer(spec *layerSpec) {
	p.spec = spec
	p.wg.Add(len(p.start))
	for _, c := range p.start {
		c <- struct{}{}
	}
	tHi := p.chunk - 1
	if tHi > p.cells-1 {
		tHi = p.cells - 1
	}
	runLayerRange(spec, 0, tHi)
	p.wg.Wait()
}

func (p *dpPool) close() {
	for _, c := range p.start {
		close(c)
	}
}
