package partition

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// OptimizeParallel computes the same optimum as Optimize but parallelizes
// each DP layer across CPUs. Within one layer (one program), the cell
// next[t] = min over u of combine(dp[t−u], cost(u)) depends only on the
// previous layer, so targets t are embarrassingly parallel; layers remain
// sequential. Useful at fine granularity (large C), where the O(P·C²) DP
// dominates: the paper chose 8 KB units specifically to keep this cost
// down (§VII-A) — parallelism is the other lever.
//
// The objective value is identical to Optimize's; when several allocations
// tie, the two may return different (equally optimal) allocations.
func OptimizeParallel(pr Problem, workers int) (Solution, error) {
	if err := pr.validate(); err != nil {
		return Solution{}, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n, C := len(pr.Curves), pr.Units

	const inf = math.MaxFloat64
	dp := make([]float64, C+1)
	next := make([]float64, C+1)
	choice := make([][]int32, n)
	for k := range dp {
		dp[k] = inf
	}
	if pr.Combine == Minimax {
		dp[0] = math.Inf(-1)
	} else {
		dp[0] = 0
	}

	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		choice[p] = make([]int32, C+1)
		lo, hi := pr.bounds(p)
		costs := make([]float64, hi-lo+1)
		for u := lo; u <= hi; u++ {
			costs[u-lo] = pr.cost(p, u)
		}
		ch := choice[p]
		minimax := pr.Combine == Minimax
		chunk := (C + workers) / workers
		for w := 0; w < workers; w++ {
			tLo := w * chunk
			tHi := tLo + chunk - 1
			if tHi > C {
				tHi = C
			}
			if tLo > C {
				break
			}
			wg.Add(1)
			go func(tLo, tHi int) {
				defer wg.Done()
				for t := tLo; t <= tHi; t++ {
					best := inf
					bestU := int32(0)
					for u := lo; u <= hi && u <= t; u++ {
						prev := dp[t-u]
						if prev == inf {
							continue
						}
						var cand float64
						if minimax {
							cand = math.Max(prev, costs[u-lo])
						} else {
							cand = prev + costs[u-lo]
						}
						if cand < best {
							best = cand
							bestU = int32(u)
						}
					}
					next[t] = best
					ch[t] = bestU
				}
			}(tLo, tHi)
		}
		wg.Wait()
		dp, next = next, dp
	}

	if dp[C] == inf {
		return Solution{}, fmt.Errorf("partition: no feasible allocation (internal)")
	}
	alloc := make(Allocation, n)
	k := C
	for p := n - 1; p >= 0; p-- {
		u := int(choice[p][k])
		alloc[p] = u
		k -= u
	}
	if k != 0 {
		return Solution{}, fmt.Errorf("partition: reconstruction leftover %d units (internal)", k)
	}
	return pr.solution(alloc, dp[C]), nil
}
